#include "kmachine/kmachine.h"

#include <algorithm>

#include "support/require.h"

namespace dhc::kmachine {

KMachineCost::KMachineCost(NodeId n, std::uint32_t k, std::uint64_t bandwidth, std::uint64_t seed)
    : k_(k), bandwidth_(bandwidth) {
  DHC_REQUIRE(k >= 2, "k-machine model needs at least 2 machines");
  DHC_REQUIRE(bandwidth >= 1, "per-link bandwidth must be at least 1 message/round");
  machine_of_.resize(n);
  round_load_.assign(static_cast<std::size_t>(k) * k, 0);
  touched_links_.reserve(static_cast<std::size_t>(k) * (k - 1) / 2);
  support::Rng rng(seed ^ 0x6b6d616368696e65ULL);
  for (NodeId v = 0; v < n; ++v) {
    machine_of_[v] = static_cast<std::uint32_t>(rng.below(k));
  }
}

void KMachineCost::flush_round() const {
  std::uint64_t busiest = 0;
  for (const auto link : touched_links_) {
    busiest = std::max(busiest, round_load_[link]);
    round_load_[link] = 0;
  }
  if (busiest > 0) {
    rounds_accum_ += (busiest + bandwidth_ - 1) / bandwidth_;
  }
  touched_links_.clear();
}

void KMachineCost::on_send(NodeId from, NodeId to, std::uint64_t round) {
  record(from, to, round);
}

void KMachineCost::on_events(std::span<const congest::SendEvent> events) {
  // Events arrive in global send order (shard logs are merged in shard
  // order), so replaying them through the same per-message pricing yields
  // bit-identical link loads and round charges as the live feed.
  for (const congest::SendEvent& e : events) record(e.from, e.to, e.round);
}

void KMachineCost::record(NodeId from, NodeId to, std::uint64_t round) {
  if (round != current_round_) {
    flush_round();
    current_round_ = round;
  }
  const std::uint32_t a = machine_of_[from];
  const std::uint32_t b = machine_of_[to];
  if (a == b) {
    ++local_messages_;
    return;
  }
  ++cross_messages_;
  const std::uint32_t link = std::min(a, b) * k_ + std::max(a, b);
  const std::uint64_t load = ++round_load_[link];
  if (load == 1) touched_links_.push_back(link);
  busiest_link_total_ = std::max(busiest_link_total_, load);
}

std::uint64_t KMachineCost::kmachine_rounds() const {
  flush_round();
  return rounds_accum_;
}

KMachineReport convert_dhc2(const graph::Graph& g, std::uint64_t seed, std::uint32_t k,
                            std::uint64_t bandwidth, const core::Dhc2Config& base) {
  KMachineCost cost(g.n(), k, bandwidth, seed);
  core::Dhc2Config cfg = base;
  cfg.observer = &cost;
  const core::Result r = core::run_dhc2(g, seed, cfg);

  KMachineReport report;
  report.k = k;
  report.bandwidth = bandwidth;
  report.success = r.success;
  report.congest_rounds = r.metrics.rounds;
  report.kmachine_rounds = cost.kmachine_rounds();
  report.cross_messages = cost.cross_messages();
  report.local_messages = cost.local_messages();
  return report;
}

}  // namespace dhc::kmachine
