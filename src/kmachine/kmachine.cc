#include "kmachine/kmachine.h"

#include <algorithm>
#include <stdexcept>

#include "support/require.h"

namespace dhc::kmachine {

KMachineCost::KMachineCost(NodeId n, std::uint32_t k, std::uint64_t bandwidth, std::uint64_t seed)
    : k_(k), bandwidth_(bandwidth) {
  DHC_REQUIRE(k >= 2, "k-machine model needs at least 2 machines");
  DHC_REQUIRE(bandwidth >= 1, "per-link bandwidth must be at least 1 message/round");
  machine_of_.resize(n);
  round_load_.assign(static_cast<std::size_t>(k) * k, 0);
  touched_links_.reserve(static_cast<std::size_t>(k) * (k - 1) / 2);
  support::Rng rng(seed ^ 0x6b6d616368696e65ULL);
  for (NodeId v = 0; v < n; ++v) {
    machine_of_[v] = static_cast<std::uint32_t>(rng.below(k));
  }
}

void KMachineCost::flush_round() {
  std::uint64_t busiest = 0;
  for (const auto link : touched_links_) {
    busiest = std::max(busiest, round_load_[link]);
    round_load_[link] = 0;
  }
  if (busiest > 0) {
    const std::uint64_t charge = (busiest + bandwidth_ - 1) / bandwidth_;
    rounds_accum_ += charge;
    if (trace_ != nullptr) trace_->on_kround(current_round_, busiest, charge);
  }
  touched_links_.clear();
}

void KMachineCost::on_send(NodeId from, NodeId to, std::uint64_t round) {
  record(from, to, round);
}

void KMachineCost::on_events(std::span<const congest::SendEvent> events) {
  // Events arrive in global send order (shard logs are merged in shard
  // order), so replaying them through the same per-message pricing yields
  // bit-identical link loads and round charges as the live feed.
  for (const congest::SendEvent& e : events) record(e.from, e.to, e.round);
}

void KMachineCost::record(NodeId from, NodeId to, std::uint64_t round) {
  if (round != current_round_) {
    flush_round();
    current_round_ = round;
  }
  const std::uint32_t a = machine_of_[from];
  const std::uint32_t b = machine_of_[to];
  if (a == b) {
    ++local_messages_;
    return;
  }
  ++cross_messages_;
  const std::uint32_t link = std::min(a, b) * k_ + std::max(a, b);
  const std::uint64_t load = ++round_load_[link];
  if (load == 1) touched_links_.push_back(link);
  busiest_link_peak_ = std::max(busiest_link_peak_, load);
}

std::uint64_t KMachineCost::kmachine_rounds() const {
  // Price the in-progress round from a read-only scan.  The old
  // implementation flushed here — zeroing round_load_/touched_links_ for a
  // round that could still receive sends, which split that round's link
  // loads into separately-ceiled fragments and corrupted the total for any
  // mid-run reader.
  std::uint64_t busiest = 0;
  for (const auto link : touched_links_) busiest = std::max(busiest, round_load_[link]);
  return rounds_accum_ + (busiest > 0 ? (busiest + bandwidth_ - 1) / bandwidth_ : 0);
}

namespace {

/// Shared shape of every adapter: copy the base config, let the backend
/// control the observer, shard, and fault knobs, call the solver's entry
/// point.
template <class Config, class RunFn>
CongestAlgorithm make_adapter(Config base, RunFn run) {
  return [base = std::move(base), run](const graph::Graph& g, std::uint64_t seed,
                                       congest::MessageObserver* observer,
                                       std::uint32_t shards, const congest::FaultPlan* faults) {
    Config cfg = base;
    cfg.observer = observer;
    cfg.shards = shards;
    cfg.faults = faults;
    return run(g, seed, cfg);
  };
}

}  // namespace

CongestAlgorithm dra_algorithm(core::DraConfig base) {
  return make_adapter(std::move(base), core::run_dra);
}

CongestAlgorithm dhc1_algorithm(core::Dhc1Config base) {
  return make_adapter(std::move(base), core::run_dhc1);
}

CongestAlgorithm dhc2_algorithm(core::Dhc2Config base) {
  return make_adapter(std::move(base), core::run_dhc2);
}

CongestAlgorithm turau_algorithm(core::TurauConfig base) {
  return make_adapter(std::move(base), core::run_turau);
}

CongestAlgorithm upcast_algorithm(core::UpcastConfig base) {
  return make_adapter(std::move(base), core::run_upcast);
}

CongestAlgorithm algorithm_by_name(const std::string& name) {
  if (name == "dra") return dra_algorithm();
  if (name == "dhc1") return dhc1_algorithm();
  if (name == "dhc2") return dhc2_algorithm();
  if (name == "turau") return turau_algorithm();
  if (name == "upcast") return upcast_algorithm();
  if (name == "collect-all" || name == "collectall") {
    core::UpcastConfig cfg;
    cfg.collect_all = true;
    return upcast_algorithm(cfg);
  }
  throw std::invalid_argument("k-machine backend knows no algorithm '" + name +
                              "' (expected dra|dhc1|dhc2|turau|upcast|collect-all)");
}

KMachineOutcome run_kmachine(const CongestAlgorithm& algo, const graph::Graph& g,
                             std::uint64_t seed, const KMachineConfig& cfg) {
  DHC_REQUIRE(algo != nullptr, "run_kmachine needs an algorithm");
  const std::uint64_t partition_seed = cfg.partition_seed != 0 ? cfg.partition_seed : seed;
  KMachineCost cost(g.n(), cfg.k, cfg.bandwidth, partition_seed);
  cost.set_trace(cfg.trace);

  KMachineOutcome out;
  out.result = algo(g, seed, &cost, cfg.shards, nullptr);
  cost.finish();

  out.report.k = cfg.k;
  out.report.bandwidth = cfg.bandwidth;
  out.report.success = out.result.success;
  out.report.congest_rounds = out.result.metrics.rounds;
  out.report.kmachine_rounds = cost.kmachine_rounds();
  out.report.cross_messages = cost.cross_messages();
  out.report.local_messages = cost.local_messages();
  out.report.busiest_link_peak = cost.busiest_link_peak();
  return out;
}

KMachineReport convert_dhc2(const graph::Graph& g, std::uint64_t seed, std::uint32_t k,
                            std::uint64_t bandwidth, const core::Dhc2Config& base) {
  KMachineConfig cfg;
  cfg.k = k;
  cfg.bandwidth = bandwidth;
  cfg.partition_seed = seed;
  cfg.shards = base.shards;
  return run_kmachine(dhc2_algorithm(base), g, seed, cfg).report;
}

}  // namespace dhc::kmachine
