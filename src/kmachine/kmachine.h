// The k-machine model conversion (paper §IV; Klauck–Nanongkai–Pandurangan–
// Robinson [16]).
//
// In the k-machine model, k machines form a complete network; the n graph
// nodes are assigned to machines by a random vertex partition, and each of
// the k(k−1)/2 links carries O(polylog n) bits per round.  A CONGEST
// algorithm converts by direct simulation: each CONGEST round, every
// node-to-node message either stays inside a machine (free) or crosses one
// machine link; a CONGEST round whose busiest link carries L messages costs
// ⌈L / bandwidth⌉ k-machine rounds.
//
// KMachineCost implements that pricing as a congest::MessageObserver: hang
// it off any protocol run and read the converted round count afterwards.
// convert_dhc2() packages the paper's claim — "our fully-distributed
// algorithms can be used to obtain efficient algorithms in the k-machine
// model" — as a runnable experiment (EXP-K1): more machines means more
// parallel links, so converted rounds fall as k grows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/network.h"
#include "core/dhc2.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace dhc::kmachine {

using graph::NodeId;

/// Prices a CONGEST execution under the k-machine model.
///
/// Attach as NetworkConfig::observer: sequential rounds price each message
/// live through on_send(); sharded rounds deliver the merged per-round event
/// log through on_events() (congest/network.h), which walks the batch in the
/// exact global send order — the two feeds produce identical prices, pinned
/// by kmachine_test.
class KMachineCost : public congest::MessageObserver {
 public:
  /// Randomly partitions nodes 0..n-1 over k machines (the model's random
  /// vertex partition); each link carries `bandwidth` messages per round.
  KMachineCost(NodeId n, std::uint32_t k, std::uint64_t bandwidth, std::uint64_t seed);

  void on_send(NodeId from, NodeId to, std::uint64_t round) override;

  /// Merged-event-log pricing: one virtual call per shard log instead of one
  /// per message (the k-machine conversion rides the simulator's hottest
  /// path, so the batch entry point matters).
  void on_events(std::span<const congest::SendEvent> events) override;

  /// Which machine hosts node v.
  std::uint32_t machine_of(NodeId v) const { return machine_of_[v]; }

  /// Converted k-machine rounds so far (call after the run completes).
  std::uint64_t kmachine_rounds() const;

  std::uint64_t cross_messages() const { return cross_messages_; }
  std::uint64_t local_messages() const { return local_messages_; }
  std::uint64_t busiest_link_total() const { return busiest_link_total_; }

 private:
  void record(NodeId from, NodeId to, std::uint64_t round);
  void flush_round() const;

  std::uint32_t k_;
  std::uint64_t bandwidth_;
  std::vector<std::uint32_t> machine_of_;

  // Current-round link loads in a flat k×k table indexed a·k + b (a < b),
  // with the touched cells listed for O(links-used) flushing — on_send runs
  // once per simulated message, so it must not pay a hashed container.
  mutable std::vector<std::uint64_t> round_load_;
  mutable std::vector<std::uint32_t> touched_links_;
  mutable std::uint64_t current_round_ = 0;
  mutable std::uint64_t rounds_accum_ = 0;
  std::uint64_t cross_messages_ = 0;
  std::uint64_t local_messages_ = 0;
  std::uint64_t busiest_link_total_ = 0;
};

struct KMachineReport {
  std::uint32_t k = 0;
  std::uint64_t bandwidth = 0;
  bool success = false;
  std::uint64_t congest_rounds = 0;
  std::uint64_t kmachine_rounds = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t local_messages = 0;
};

/// Runs DHC2 on `g` and prices the execution on k machines with the given
/// per-link bandwidth (messages/round).  EXP-K1's workhorse.
KMachineReport convert_dhc2(const graph::Graph& g, std::uint64_t seed, std::uint32_t k,
                            std::uint64_t bandwidth, const core::Dhc2Config& base = {});

}  // namespace dhc::kmachine
