// The k-machine model as an execution backend (paper §IV; Klauck–Nanongkai–
// Pandurangan–Robinson [16]).
//
// In the k-machine model, k machines form a complete network; the n graph
// nodes are assigned to machines by a random vertex partition, and each of
// the k(k−1)/2 links carries O(polylog n) bits per round.  A CONGEST
// algorithm converts by direct simulation: each CONGEST round, every
// node-to-node message either stays inside a machine (free) or crosses one
// machine link; a CONGEST round whose busiest link carries L messages costs
// ⌈L / bandwidth⌉ k-machine rounds.
//
// Two layers implement that conversion:
//
//   * KMachineCost — the pricing observer.  Hang it off any protocol run
//     (congest::NetworkConfig::observer) and read the converted round count
//     at any time, including mid-run: pricing is a pure read of the current
//     state, never a mutation (see kmachine_rounds()).
//   * run_kmachine() — the backend.  It takes *any* registered CONGEST
//     algorithm as a CongestAlgorithm adapter (dra, dhc1, dhc2, turau,
//     upcast — or your own lambda), attaches the pricing observer, runs the
//     algorithm, and returns both the underlying core::Result (cycle
//     included, so callers can verify) and the full KMachineReport.
//
// convert_dhc2() remains as the DHC2 shorthand the original EXP-K1 used; it
// is now a thin wrapper over the backend.  The paper's claim — "our fully-
// distributed algorithms can be used to obtain efficient algorithms in the
// k-machine model" — is runnable for every algorithm: more machines means
// more parallel links, so converted rounds fall as k grows.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "congest/network.h"
#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/dra.h"
#include "core/result.h"
#include "core/turau.h"
#include "core/upcast.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace dhc::kmachine {

using graph::NodeId;

/// Prices a CONGEST execution under the k-machine model.
///
/// Attach as NetworkConfig::observer: sequential rounds price each message
/// live through on_send(); sharded rounds deliver the merged per-round event
/// log through on_events() (congest/network.h), which walks the batch in the
/// exact global send order — the two feeds produce identical prices, pinned
/// by kmachine_test.
class KMachineCost : public congest::MessageObserver {
 public:
  /// Randomly partitions nodes 0..n-1 over k machines (the model's random
  /// vertex partition); each link carries `bandwidth` messages per round.
  KMachineCost(NodeId n, std::uint32_t k, std::uint64_t bandwidth, std::uint64_t seed);

  void on_send(NodeId from, NodeId to, std::uint64_t round) override;

  /// Attach a flight-recorder sink: every completed CONGEST round with
  /// cross-machine traffic emits one on_kround(round, busiest, charge)
  /// event as it is priced.  Not owned; must outlive the run.
  void set_trace(congest::TraceSink* trace) { trace_ = trace; }

  /// Flushes the final in-progress round so its kround event reaches the
  /// trace sink (rounds normally flush when the *next* round's first send
  /// arrives — the last one has no successor).  Idempotent; kmachine_rounds()
  /// stays correct whether or not this ran.
  void finish() { flush_round(); }

  /// Merged-event-log pricing: one virtual call per shard log instead of one
  /// per message (the k-machine conversion rides the simulator's hottest
  /// path, so the batch entry point matters).
  void on_events(std::span<const congest::SendEvent> events) override;

  /// Which machine hosts node v.
  std::uint32_t machine_of(NodeId v) const { return machine_of_[v]; }

  /// Converted k-machine rounds so far, including the ⌈L/bandwidth⌉ charge
  /// of the CONGEST round currently in progress.  Idempotent and safe to
  /// call mid-run: the price is computed from a read-only snapshot of the
  /// in-progress round's link loads — nothing is flushed or zeroed, so a
  /// mid-round read (or a second read) can never split a round's charge.
  std::uint64_t kmachine_rounds() const;

  std::uint64_t cross_messages() const { return cross_messages_; }
  std::uint64_t local_messages() const { return local_messages_; }
  /// Peak single-round load (messages) of the busiest machine link — the
  /// largest ⌈L/bandwidth⌉ numerator any one round charged.  A peak, not a
  /// total.
  std::uint64_t busiest_link_peak() const { return busiest_link_peak_; }

 private:
  void record(NodeId from, NodeId to, std::uint64_t round);
  void flush_round();

  std::uint32_t k_;
  std::uint64_t bandwidth_;
  std::vector<std::uint32_t> machine_of_;

  // Current-round link loads in a flat k×k table indexed a·k + b (a < b),
  // with the touched cells listed for O(links-used) flushing — on_send runs
  // once per simulated message, so it must not pay a hashed container.
  std::vector<std::uint64_t> round_load_;
  std::vector<std::uint32_t> touched_links_;
  std::uint64_t current_round_ = 0;
  std::uint64_t rounds_accum_ = 0;
  std::uint64_t cross_messages_ = 0;
  std::uint64_t local_messages_ = 0;
  std::uint64_t busiest_link_peak_ = 0;
  congest::TraceSink* trace_ = nullptr;
};

/// What one k-machine execution cost.
struct KMachineReport {
  std::uint32_t k = 0;
  std::uint64_t bandwidth = 0;
  bool success = false;
  std::uint64_t congest_rounds = 0;
  std::uint64_t kmachine_rounds = 0;
  std::uint64_t cross_messages = 0;
  std::uint64_t local_messages = 0;
  /// Peak single-round load of the busiest machine link (messages).
  std::uint64_t busiest_link_peak = 0;
};

/// An algorithm the backend can drive: run a CONGEST protocol over `g` from
/// `seed` with `observer` attached, `shards` simulator shards (0 = the
/// DHC_SHARDS environment default; bitwise-neutral), and an optional fault
/// plan (nullptr = synchronous; non-null switches the simulator to the async
/// delivery regime — the `--model=async` backend), returning the solver's
/// Result.  The adapters below wrap the registered algorithms; any lambda
/// with this shape works too.
using CongestAlgorithm = std::function<core::Result(
    const graph::Graph& g, std::uint64_t seed, congest::MessageObserver* observer,
    std::uint32_t shards, const congest::FaultPlan* faults)>;

/// Adapters for the registered CONGEST algorithms.  Each captures a base
/// config and forwards the backend-controlled knobs (observer, shards).
CongestAlgorithm dra_algorithm(core::DraConfig base = {});
CongestAlgorithm dhc1_algorithm(core::Dhc1Config base = {});
CongestAlgorithm dhc2_algorithm(core::Dhc2Config base = {});
CongestAlgorithm turau_algorithm(core::TurauConfig base = {});
CongestAlgorithm upcast_algorithm(core::UpcastConfig base = {});

/// Adapter by runner-facing name: dra | dhc1 | dhc2 | turau | upcast |
/// collect-all (default configs).  Throws std::invalid_argument otherwise.
CongestAlgorithm algorithm_by_name(const std::string& name);

struct KMachineConfig {
  /// Number of machines (≥ 2).
  std::uint32_t k = 8;
  /// Per-link bandwidth, messages per k-machine round (≥ 1).
  std::uint64_t bandwidth = 32;
  /// Seed of the random vertex partition; 0 means "use the algorithm seed"
  /// (the convention of convert_dhc2 and the runner).
  std::uint64_t partition_seed = 0;
  /// Simulator shards for the underlying CONGEST run (0 = the DHC_SHARDS
  /// environment default).  Bitwise-neutral: the merged event log reproduces
  /// the sequential send order, so the price is shard-invariant (pinned by
  /// kmachine_test).
  std::uint32_t shards = 0;
  /// Optional flight-recorder sink for per-round pricing events (kround
  /// lines).  Network-level tracing rides the algorithm's base config; this
  /// one feeds the pricing observer.  Not owned, must outlive the run.
  congest::TraceSink* trace = nullptr;
};

/// The backend's full answer: the conversion pricing plus the underlying
/// CONGEST run (cycle included, so callers can verify the output and reuse
/// every solver stat).
struct KMachineOutcome {
  KMachineReport report;
  core::Result result;
};

/// Runs `algo` on `g` with the k-machine pricing observer attached and
/// returns the priced outcome.  The direct-simulation conversion of §IV:
/// one KMachineCost partition per call, every message either free (local)
/// or charged to its machine link.
KMachineOutcome run_kmachine(const CongestAlgorithm& algo, const graph::Graph& g,
                             std::uint64_t seed, const KMachineConfig& cfg);

/// Runs DHC2 on `g` and prices the execution on k machines with the given
/// per-link bandwidth (messages/round).  The original EXP-K1 entry point,
/// now a thin wrapper over run_kmachine().
KMachineReport convert_dhc2(const graph::Graph& g, std::uint64_t seed, std::uint32_t k,
                            std::uint64_t bandwidth, const core::Dhc2Config& base = {});

}  // namespace dhc::kmachine
