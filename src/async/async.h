// The async execution backend (`--model=async`).
//
// The paper's solvers — and Turau's — are specified for fully synchronous
// CONGEST rounds: every message takes exactly one round, nothing is lost,
// nobody fails.  This backend runs any registered CONGEST algorithm on the
// same Network engine with that assumption relaxed three ways, all
// seed-deterministically (congest/fault_plan.h):
//
//   * per-directed-edge delivery delays (fixed / uniform / geometric),
//   * per-message drop probabilities,
//   * node crash windows (crashed nodes neither step nor receive; they
//     rejoin silently when the window closes).
//
// Identical (seed, fault spec) pairs reproduce identical executions bitwise,
// including across shard counts, because every fault decision is a pure hash
// of the edge/node/round — never a draw from mutable RNG state (see the
// determinism argument in fault_plan.h and DESIGN.md §8).
//
// Mirrors the k-machine backend (kmachine/kmachine.h): run_async() drives a
// kmachine::CongestAlgorithm adapter and returns the verified core::Result
// plus a fault report.
#pragma once

#include <cstdint>

#include "congest/fault_plan.h"
#include "core/result.h"
#include "graph/graph.h"
#include "kmachine/kmachine.h"

namespace dhc::async {

struct AsyncConfig {
  /// Per-directed-edge latency distribution (congest/fault_plan.h specs).
  congest::DelaySpec delay;
  /// Per-message loss probability in [0, 1).
  double drop_prob = 0.0;
  /// Node crash schedule.
  congest::CrashSpec crash;
  /// Seed of the fault stream; 0 means "derive from the algorithm seed"
  /// (derive_fault_seed), the runner's convention — so the fault stream is
  /// independent of the protocol's own randomness but pinned by the trial.
  std::uint64_t fault_seed = 0;
  /// Cap on simulated rounds (0 = simulator default).  Faults can make a
  /// protocol diverge; the cap turns a hang into hit_round_limit reporting.
  std::uint64_t max_rounds = 0;
  /// Simulator shards (0 = DHC_SHARDS environment default; bitwise-neutral).
  std::uint32_t shards = 0;
  /// Reliable-delivery overlay (congest/reliable.h): kNone replays PR 7's
  /// lossy behavior; kAck adds per-link seq/ack + retransmission so solvers
  /// survive drops and crash windows.
  congest::ReliabilitySpec reliability;
  /// Retransmit timeout/backoff parameters (used only under kAck).
  congest::RtoSpec rto;
};

/// What the faults did to one run.
struct AsyncReport {
  bool success = false;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;                ///< messages *sent*
  std::uint64_t delayed_messages = 0;        ///< delivered with latency > 1
  std::uint64_t dropped_messages = 0;        ///< lost in transit
  std::uint64_t crash_dropped_messages = 0;  ///< arrived at a crashed node
  std::uint64_t crashed_steps = 0;           ///< activations lost to crashes
  std::uint64_t crashed_nodes = 0;           ///< nodes with a crash window
  std::uint64_t crashed_rejoins = 0;         ///< nodes back after their window
  std::uint64_t retransmits = 0;             ///< overlay re-sends
  std::uint64_t dup_suppressed = 0;          ///< duplicate arrivals suppressed
  std::uint64_t acks_sent = 0;               ///< standalone ack messages
  std::uint64_t payload_messages = 0;        ///< messages minus overlay traffic
  bool hit_round_limit = false;
  bool round_limit_live = false;  ///< limit hit with traffic still moving
};

/// The backend's full answer: the fault accounting plus the underlying run
/// (cycle included, so callers can verify the output and reuse every solver
/// stat).
struct AsyncOutcome {
  AsyncReport report;
  core::Result result;
};

/// The fault-stream seed the runner derives when AsyncConfig::fault_seed is
/// 0: a salted splitmix64 chain over the algorithm seed, so protocol
/// randomness and fault randomness never alias.
std::uint64_t derive_fault_seed(std::uint64_t algo_seed);

/// Runs `algo` on `g` under the configured fault plan and returns the
/// outcome.  Throws std::invalid_argument on malformed fault parameters.
AsyncOutcome run_async(const kmachine::CongestAlgorithm& algo, const graph::Graph& g,
                       std::uint64_t seed, const AsyncConfig& cfg);

}  // namespace dhc::async
