#include "async/async.h"

#include "support/require.h"
#include "support/rng.h"

namespace dhc::async {

std::uint64_t derive_fault_seed(std::uint64_t algo_seed) {
  // Same word-absorption chain as the runner's derive_seed(): absorb a salt
  // so the fault stream never aliases the protocol's own seed.
  std::uint64_t state = algo_seed;
  std::uint64_t h = support::splitmix64(state);
  state ^= 0xfa5e17ull;
  h ^= support::splitmix64(state);
  return h;
}

AsyncOutcome run_async(const kmachine::CongestAlgorithm& algo, const graph::Graph& g,
                       std::uint64_t seed, const AsyncConfig& cfg) {
  DHC_REQUIRE(algo != nullptr, "run_async needs an algorithm");
  const std::uint64_t fault_seed =
      cfg.fault_seed != 0 ? cfg.fault_seed : derive_fault_seed(seed);
  congest::FaultPlan plan(cfg.delay, cfg.drop_prob, cfg.crash, fault_seed,
                          cfg.max_rounds);
  plan.set_reliability(cfg.reliability, cfg.rto);

  AsyncOutcome out;
  out.result = algo(g, seed, nullptr, cfg.shards, &plan);

  const congest::Metrics& m = out.result.metrics;
  out.report.success = out.result.success;
  out.report.rounds = m.rounds;
  out.report.messages = m.messages;
  out.report.delayed_messages = m.delayed_messages;
  out.report.dropped_messages = m.dropped_messages;
  out.report.crash_dropped_messages = m.crash_dropped_messages;
  out.report.crashed_steps = m.crashed_steps;
  out.report.crashed_nodes = plan.crashed_node_count(g.n());
  out.report.crashed_rejoins = m.crashed_rejoins;
  out.report.retransmits = m.retransmits;
  out.report.dup_suppressed = m.dup_suppressed;
  out.report.acks_sent = m.acks_sent;
  out.report.payload_messages = m.payload_messages();
  out.report.hit_round_limit = m.hit_round_limit;
  out.report.round_limit_live = m.round_limit_live;
  return out;
}

}  // namespace dhc::async
