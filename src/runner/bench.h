// Perf-regression harness: named benchmark presets and the BENCH_congest
// artifact.
//
// `dhc_run --bench=NAME,...` runs each named preset (a frozen Scenario) on
// the trial-runner worker pool and records simulator *throughput* — wall
// time, trials/sec, messages/sec — plus the process peak RSS, as machine-
// readable JSON (BENCH_congest.json).  Every performance PR is measured
// against the previous artifact in the same format; the first baseline,
// captured from the pre-arena simulator, lives in
// bench/baselines/BENCH_congest_pre.json.
//
// Presets are frozen on purpose: a preset whose scenario drifts between
// commits measures nothing.  Add new presets instead of editing old ones.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace dhc::runner {

/// A named, frozen benchmark scenario.
struct BenchPreset {
  std::string name;
  std::string description;
  Scenario scenario;
};

/// All built-in presets, in execution order.  "comparison" is the headline
/// preset: the five-algorithm head-to-head at n = 2^12 (the grid the
/// trajectory's 2x targets are stated against); "perf-smoke" is the small
/// grid CI runs on every push.
const std::vector<BenchPreset>& bench_presets();

/// Preset by name, or nullptr.
const BenchPreset* find_bench_preset(const std::string& name);

/// One preset's measured throughput.
struct BenchMeasurement {
  std::string name;
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  /// The arbitrated thread/shard split this preset actually ran with
  /// (resolve_parallelism of the preset's trial count against the options) —
  /// recorded per preset because presets differ in trial count.
  unsigned threads = 1;
  std::uint32_t shards = 1;
  double wall_seconds = 0.0;
  double trials_per_sec = 0.0;
  /// Total CONGEST messages simulated across all trials and the resulting
  /// simulator throughput — the most layout-sensitive number here.
  std::uint64_t messages_total = 0;
  /// messages_total minus reliable-overlay retransmit/ack traffic (async
  /// presets; identical to messages_total everywhere else).  The bench gate
  /// compares this one: it pins the solver workload while letting RTO tuning
  /// change the overlay traffic.
  std::uint64_t payload_messages_total = 0;
  double messages_per_sec = 0.0;
  /// Peak RSS of this preset alone (VmHWM, reset via /proc/self/clear_refs
  /// before the preset runs).  Falls back to the monotone getrusage maximum
  /// on systems without the proc interface.
  long rss_peak_kb = 0;
  /// Max over trials of the logical in-flight message high-water mark
  /// (Metrics::arena_bytes_peak) — 0 for presets without a CONGEST network
  /// (sequential / cre).  Deterministic, unlike rss_peak_kb.
  std::uint64_t arena_bytes_peak = 0;
  /// The preset's per-node accounting mode (from its scenario) — the knob
  /// the mem-probe preset pair varies, so the artifact is self-describing.
  std::string node_stats = "full";
  /// Mean rounds per phase label over all trials (the runner's
  /// phase_<label>_rounds stats) — the per-preset phase/wall breakdown.
  std::map<std::string, double> phase_rounds_mean;
};

/// Expands and runs one preset, timing the run_trials() call only (scenario
/// expansion and artifact writing are excluded).
BenchMeasurement run_bench_preset(const BenchPreset& preset, const RunnerOptions& opt);

/// BENCH_congest.json: {"bench": "congest", "schema": 5, "threads": T,
/// "shards": S, "scenarios": [...]} where threads/shards are the requested
/// options (shards 0 = auto) and every scenario records the resolved
/// per-preset split, its node_stats mode, and a "phases" map of mean rounds
/// per phase label.  Field order is fixed so runs diff cleanly.  Schema 5
/// renames peak_rss_kb to rss_peak_kb (matching the per-trial stat) and adds
/// the per-preset arena_bytes_peak.
void write_bench_json(std::ostream& os, const std::vector<BenchMeasurement>& measurements,
                      unsigned threads, std::uint32_t shards);

/// Current process peak RSS in kilobytes (getrusage), 0 if unavailable.
long current_peak_rss_kb();

}  // namespace dhc::runner
