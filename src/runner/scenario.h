// Declarative experiment scenarios for the parallel trial runner.
//
// A Scenario names an experiment the way the paper's tables do: which
// algorithm(s), which graph family, and the lists of n / δ / c /
// merge-strategy values to sweep, plus how many seeded trials per cell.
// expand() turns it into the full cross-product of TrialConfigs, each
// carrying its own deterministically derived seeds — a trial is a pure
// function of its TrialConfig, which is what lets TrialRunner execute them
// on any number of threads with bitwise-identical results.
//
// Scenarios are parsed from --key=value flags (scenario_from_cli) or from a
// key=value scenario file (scenario_from_file); malformed specs throw
// std::invalid_argument, never half-parse.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/dhc2.h"
#include "graph/graph.h"
#include "support/cli.h"

namespace dhc::runner {

/// Which solver a trial runs.  kCollectAll is Upcast with collect_all set
/// (the trivial baseline); kTurau is the O(log n)-time comparison protocol
/// of arXiv:1805.06728 (DESIGN.md §2.4).  kDhc2KMachine is the legacy
/// spelling of "dhc2 under model = kmachine" — kept so old scenarios parse;
/// new sweeps should combine any algorithm with the model axis instead.
enum class Algorithm : std::uint8_t {
  kSequential,
  kDra,
  kDhc1,
  kDhc2,
  kUpcast,
  kCollectAll,
  kDhc2KMachine,
  kTurau,
  /// CRE — the linear-space sequential oracle (core/sequential_linear.h).
  /// Like kSequential it has no CONGEST execution, so it is rejected under
  /// model = kmachine / async and is never traced.
  kCre,
};

/// Which execution model prices a trial.  kCongest runs the plain CONGEST
/// simulation; kKMachine runs the same simulation through the k-machine
/// backend (src/kmachine, paper §IV): a random vertex partition over k
/// machines, per-link bandwidth B, converted rounds = Σ ⌈busiest link /
/// B⌉.  Under kKMachine the scenario's `machines` list becomes a sweep axis
/// for *every* algorithm, not just dhc2.  kAsync runs the same simulation
/// through the async backend (src/async): seed-deterministic per-edge
/// delivery delays, message drops, and node crash windows; the fault axes
/// (`delay_dist`, `drop_prob`, `crash_schedule`) multiply every cell.
enum class ExecutionModel : std::uint8_t { kCongest, kKMachine, kAsync };

/// Input graph family.  All families are parameterized through (c, δ): the
/// target edge probability is p = c·ln n / n^δ; G(n, M) matches its expected
/// edge count, the regular family its expected degree, and the powerlaw
/// family (Chung–Lu with exponent-2.5 power-law weights) its average degree.
enum class GraphFamily : std::uint8_t { kGnp, kGnm, kRegular, kPowerlaw };

std::string to_string(Algorithm a);
std::string to_string(ExecutionModel m);
std::string to_string(GraphFamily f);
std::string to_string(core::MergeStrategy s);

/// Parse the spellings accepted in flags and scenario files; throw
/// std::invalid_argument on anything else.
Algorithm parse_algorithm(const std::string& s);
ExecutionModel parse_execution_model(const std::string& s);
GraphFamily parse_graph_family(const std::string& s);
core::MergeStrategy parse_merge_strategy(const std::string& s);

/// A declarative experiment: the cross product of every list below (merge
/// strategies apply only to DHC2-based algorithms, machine counts only to
/// the k-machine conversion) times `seeds` trials per cell.
struct Scenario {
  std::string name = "scenario";
  std::vector<Algorithm> algos = {Algorithm::kDhc2};
  /// Execution model (spec key `model`): congest | kmachine.  Under
  /// kmachine, every algorithm in `algos` is run through the k-machine
  /// backend and `machines` multiplies every cell.
  ExecutionModel model = ExecutionModel::kCongest;
  GraphFamily family = GraphFamily::kGnp;
  std::vector<std::int64_t> sizes = {512};
  std::vector<double> deltas = {0.5};
  std::vector<double> cs = {2.5};
  std::vector<core::MergeStrategy> merges = {core::MergeStrategy::kMinForward};
  /// Machine counts for the k-machine sweep (spec keys `machines` or
  /// `k_list`): every algorithm under model = kmachine, plus the legacy
  /// kDhc2KMachine algorithm under model = congest.
  std::vector<std::int64_t> machines = {8};
  /// Per-link bandwidth (messages/round) for the k-machine pricing.
  std::int64_t bandwidth = 32;
  /// Async fault axes (model = async only; congest/fault_plan.h spec
  /// grammar).  Each list is a sweep axis multiplying every cell; the
  /// defaults are the no-fault singletons, so non-async scenarios expand to
  /// exactly the trial lists (and seeds) they always did.
  std::vector<std::string> delay_dists = {"none"};
  std::vector<double> drop_probs = {0.0};
  std::vector<std::string> crash_schedules = {"none"};
  /// Reliability modes for the async transport (congest/reliable.h): "none"
  /// loses dropped messages for good, "ack" re-sends until acknowledged.  A
  /// sweep axis like the fault axes above, excluded from both derived seeds
  /// so reliability=ack cells stay paired with their reliability=none
  /// controls.
  std::vector<std::string> reliabilities = {"none"};
  /// Retransmit timeout/backoff spec shared by every reliability=ack cell
  /// (congest/reliable.h grammar: rto:K[:MULT[:MAX]]).
  std::string rto = "rto:4:2:16";
  /// Per-trial round budget under model = async (0 = engine default).  Fault
  /// injection can livelock a protocol that assumes reliable synchronous
  /// delivery; a budget turns that into a fast hit_round_limit failure
  /// instead of a 50M-round crawl to the engine ceiling.
  std::uint64_t max_rounds = 0;
  /// Seeded trials per configuration cell.
  std::uint64_t seeds = 5;
  /// Root seed; every trial's graph/algorithm seeds are derived from it.
  std::uint64_t base_seed = 1;
  /// Per-node accounting mode for every CONGEST trial (spec key
  /// `node_stats`: full | streaming | off).  Streaming keeps fixed-size
  /// digests instead of the five per-node vectors — the large-n mode.
  /// Headline metrics are identical in every mode.
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;

  /// Throws std::invalid_argument when any field is out of range (empty
  /// lists, δ outside (0, 1], n < 4, seeds == 0, ...).
  void validate() const;
};

/// One executable trial: a configuration cell plus a trial index and the
/// derived seeds.  Everything a worker thread needs, nothing shared.
struct TrialConfig {
  std::size_t config_index = 0;   ///< Which cross-product cell this trial belongs to.
  std::uint64_t trial_index = 0;  ///< 0-based seed index within the cell.
  Algorithm algo = Algorithm::kDhc2;
  /// kKMachine for every trial priced by the k-machine backend (scenarios
  /// with model = kmachine, and the legacy kDhc2KMachine algorithm).
  ExecutionModel model = ExecutionModel::kCongest;
  GraphFamily family = GraphFamily::kGnp;
  graph::NodeId n = 0;
  double delta = 0.0;
  double c = 0.0;
  core::MergeStrategy merge = core::MergeStrategy::kMinForward;
  std::uint32_t machines = 0;     ///< 0 unless model == kKMachine.
  std::uint64_t bandwidth = 0;    ///< 0 unless model == kKMachine.
  /// Async fault parameters ("none"/0.0 unless model == kAsync).  The fault
  /// axes are excluded from both derived seeds: trials differing only in
  /// fault intensity run the same instance with the same protocol
  /// randomness, so degradation sweeps are paired comparisons.
  std::string delay_dist = "none";
  double drop_prob = 0.0;
  std::string crash_schedule = "none";
  /// Async transport reliability ("none" unless model == kAsync).  Excluded
  /// from the derived seeds like the fault axes, so ack/none cells pair.
  std::string reliability = "none";
  std::string rto;                ///< empty unless model == kAsync.
  std::uint64_t max_rounds = 0;   ///< 0 unless model == kAsync (0 = engine default).
  std::uint64_t graph_seed = 0;
  std::uint64_t algo_seed = 0;
};

/// Expands the scenario into the full, deterministically ordered and seeded
/// trial list.  Calling expand() twice on the same scenario yields identical
/// configs (including seeds); validate() is invoked first.  Graph seeds
/// depend only on (base_seed, family, n, delta, c, trial index): trials that
/// differ in algorithm, merge strategy, or machine count run on identical
/// instances, so head-to-head sweeps are paired comparisons.  Algorithm
/// seeds additionally ignore the machine-count axis, so k-machine cells
/// differing only in k price the *same* underlying execution.
std::vector<TrialConfig> expand(const Scenario& s);

/// Builds a Scenario from a key=value map (the shared core of file and CLI
/// parsing).  Recognized keys: name, algos (or algo), model, family, sizes,
/// deltas, cs, merges, machines (or k_list), bandwidth, seeds, seed,
/// node_stats, delay_dist, drop_prob, crash_schedule, reliability, rto,
/// max_rounds.  Unknown keys and malformed values throw
/// std::invalid_argument.
Scenario scenario_from_spec(const std::map<std::string, std::string>& spec);

/// Parses a scenario file: one `key = value` per line, `#` comments and
/// blank lines ignored.  Throws std::invalid_argument on unreadable files or
/// malformed content.
Scenario scenario_from_file(const std::string& path);

/// Builds a Scenario from command-line flags.  When --scenario=FILE is
/// present the file provides the baseline and any other flags override it;
/// otherwise defaults are used.  Flag names match the spec keys, with
/// --algo/--algos and --seed/--seeds both accepted.
Scenario scenario_from_cli(const support::Cli& cli);

}  // namespace dhc::runner
