// Folds per-trial results into per-configuration summaries and artifacts.
//
// The aggregator is the runner's reporting half: it groups TrialResults by
// their scenario cell, reduces each group with support/stats (success rate;
// mean/median/p95 of rounds, messages, bits, peak memory over the
// *successful* trials; means of every named stat over *all* trials), and
// renders three views — an aligned support::Table for stdout, a JSON
// artifact for the bench trajectory, and a CSV for spreadsheets.  All
// serialization is deterministic: equal summaries produce byte-identical
// output, which is how the thread-count-invariance tests compare runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario.h"
#include "runner/trial_runner.h"
#include "support/table.h"

namespace dhc::runner {

/// Digest of one measurement over the successful trials of a cell.
struct MetricSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Aggregate of all trials sharing one scenario cell.
struct ConfigSummary {
  /// The cell's parameters (trial_index and seeds are zeroed).
  TrialConfig config;
  std::uint64_t trials = 0;
  std::uint64_t successes = 0;
  double success_rate = 0.0;
  /// Over successful trials only (a failed trial's cost is not a cost of
  /// solving; success_rate carries the failure information).
  MetricSummary rounds, messages, bits, memory;
  /// Mean of each TrialResult::stats key over all trials of the cell.
  std::map<std::string, double> stat_means;
  /// Sum of per-trial wall clocks; informational, never serialized.
  double wall_seconds_total = 0.0;
  /// Flight-recorder trace files of the cell's trials, in trial order; empty
  /// when tracing was off.  Serialized into the JSON artifact (after
  /// "stats") only when non-empty, so untraced artifacts are unchanged.
  std::vector<std::string> trace_files;
};

/// Groups `results` by trials[i].config_index and reduces each group.
/// Requires results.size() == trials.size(); summaries come back ordered by
/// config_index.
std::vector<ConfigSummary> aggregate(const std::vector<TrialConfig>& trials,
                                     const std::vector<TrialResult>& results);

/// One row per configuration cell: parameters, success, and the headline
/// round/message/memory digests.
support::Table summary_table(const std::vector<ConfigSummary>& summaries);

/// JSON artifact: {"scenario": name, "configs": [...]} with every summary
/// field except wall clocks.  Deterministic number formatting.
void write_json(std::ostream& os, const std::string& scenario_name,
                const std::vector<ConfigSummary>& summaries);

/// Flat CSV with one row per configuration cell: the fixed parameter and
/// digest columns, then one `stat_<key>` column per stat-mean key appearing
/// in any cell (sorted union; cells without the stat stay empty).
void write_csv(std::ostream& os, const std::vector<ConfigSummary>& summaries);

}  // namespace dhc::runner
