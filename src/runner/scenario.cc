#include "runner/scenario.h"

#include <bit>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <stdexcept>

#include "congest/fault_plan.h"
#include "support/require.h"
#include "support/rng.h"

namespace dhc::runner {

std::string to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kSequential: return "sequential";
    case Algorithm::kDra: return "dra";
    case Algorithm::kDhc1: return "dhc1";
    case Algorithm::kDhc2: return "dhc2";
    case Algorithm::kUpcast: return "upcast";
    case Algorithm::kCollectAll: return "collect-all";
    case Algorithm::kDhc2KMachine: return "dhc2-kmachine";
    case Algorithm::kTurau: return "turau";
    case Algorithm::kCre: return "cre";
  }
  return "?";
}

std::string to_string(ExecutionModel m) {
  switch (m) {
    case ExecutionModel::kCongest: return "congest";
    case ExecutionModel::kKMachine: return "kmachine";
    case ExecutionModel::kAsync: return "async";
  }
  return "?";
}

std::string to_string(GraphFamily f) {
  switch (f) {
    case GraphFamily::kGnp: return "gnp";
    case GraphFamily::kGnm: return "gnm";
    case GraphFamily::kRegular: return "regular";
    case GraphFamily::kPowerlaw: return "powerlaw";
  }
  return "?";
}

std::string to_string(core::MergeStrategy s) {
  return s == core::MergeStrategy::kMinForward ? "minforward" : "fullqueue";
}

Algorithm parse_algorithm(const std::string& s) {
  if (s == "sequential" || s == "seq" || s == "rotation") return Algorithm::kSequential;
  if (s == "dra") return Algorithm::kDra;
  if (s == "dhc1") return Algorithm::kDhc1;
  if (s == "dhc2") return Algorithm::kDhc2;
  if (s == "upcast") return Algorithm::kUpcast;
  if (s == "collect-all" || s == "collectall") return Algorithm::kCollectAll;
  if (s == "dhc2-kmachine" || s == "kmachine") return Algorithm::kDhc2KMachine;
  if (s == "turau") return Algorithm::kTurau;
  if (s == "cre") return Algorithm::kCre;
  throw std::invalid_argument("unknown algorithm '" + s +
                              "' (expected sequential|dra|dhc1|dhc2|upcast|collect-all|"
                              "dhc2-kmachine|turau|cre)");
}

ExecutionModel parse_execution_model(const std::string& s) {
  if (s == "congest") return ExecutionModel::kCongest;
  if (s == "kmachine" || s == "k-machine") return ExecutionModel::kKMachine;
  if (s == "async") return ExecutionModel::kAsync;
  throw std::invalid_argument("unknown execution model '" + s +
                              "' (expected congest|kmachine|async)");
}

GraphFamily parse_graph_family(const std::string& s) {
  if (s == "gnp") return GraphFamily::kGnp;
  if (s == "gnm") return GraphFamily::kGnm;
  if (s == "regular") return GraphFamily::kRegular;
  if (s == "powerlaw" || s == "power-law" || s == "chung-lu") return GraphFamily::kPowerlaw;
  throw std::invalid_argument("unknown graph family '" + s +
                              "' (expected gnp|gnm|regular|powerlaw)");
}

core::MergeStrategy parse_merge_strategy(const std::string& s) {
  if (s == "minforward" || s == "min-forward") return core::MergeStrategy::kMinForward;
  if (s == "fullqueue" || s == "full-queue") return core::MergeStrategy::kFullQueue;
  throw std::invalid_argument("unknown merge strategy '" + s +
                              "' (expected minforward|fullqueue)");
}

void Scenario::validate() const {
  DHC_REQUIRE(!name.empty(), "scenario name must not be empty");
  DHC_REQUIRE(!algos.empty(), "scenario needs at least one algorithm");
  DHC_REQUIRE(!sizes.empty(), "scenario needs at least one graph size");
  DHC_REQUIRE(!deltas.empty(), "scenario needs at least one delta");
  DHC_REQUIRE(!cs.empty(), "scenario needs at least one density constant c");
  DHC_REQUIRE(!merges.empty(), "scenario needs at least one merge strategy");
  DHC_REQUIRE(!machines.empty(), "scenario needs at least one machine count");
  DHC_REQUIRE(seeds >= 1, "seeds must be >= 1");
  DHC_REQUIRE(bandwidth >= 1, "k-machine bandwidth must be >= 1");
  for (const auto n : sizes) {
    DHC_REQUIRE(n >= 4, "graph size must be >= 4, got " << n);
  }
  for (const double d : deltas) {
    DHC_REQUIRE(d > 0.0 && d <= 1.0, "delta must lie in (0, 1], got " << d);
  }
  for (const double c : cs) {
    DHC_REQUIRE(c > 0.0, "density constant c must be positive, got " << c);
  }
  for (const auto k : machines) {
    DHC_REQUIRE(k >= 2, "machine count must be >= 2, got " << k);
  }
  if (model == ExecutionModel::kKMachine) {
    for (const Algorithm a : algos) {
      DHC_REQUIRE(a != Algorithm::kSequential && a != Algorithm::kCre,
                  "the sequential baselines have no CONGEST execution to price "
                  "in the k-machine model");
    }
  }
  DHC_REQUIRE(!delay_dists.empty(), "scenario needs at least one delay distribution");
  DHC_REQUIRE(!drop_probs.empty(), "scenario needs at least one drop probability");
  DHC_REQUIRE(!crash_schedules.empty(), "scenario needs at least one crash schedule");
  DHC_REQUIRE(!reliabilities.empty(), "scenario needs at least one reliability mode");
  for (const auto& spec : delay_dists) congest::DelaySpec::parse(spec);  // throws if malformed
  for (const auto& spec : crash_schedules) congest::CrashSpec::parse(spec);
  for (const auto& spec : reliabilities) congest::ReliabilitySpec::parse(spec);
  congest::RtoSpec::parse(rto);
  for (const double p : drop_probs) {
    DHC_REQUIRE(p >= 0.0 && p < 1.0, "drop_prob must lie in [0, 1), got " << p);
  }
  if (model == ExecutionModel::kAsync) {
    for (const Algorithm a : algos) {
      DHC_REQUIRE(a != Algorithm::kSequential && a != Algorithm::kCre,
                  "the sequential baselines have no CONGEST execution to run asynchronously");
      DHC_REQUIRE(a != Algorithm::kDhc2KMachine,
                  "the legacy dhc2-kmachine algorithm forces the k-machine backend; "
                  "combine algo dhc2 with model = async instead");
    }
  } else {
    const bool faults_requested = delay_dists != std::vector<std::string>{"none"} ||
                                  drop_probs != std::vector<double>{0.0} ||
                                  crash_schedules != std::vector<std::string>{"none"};
    DHC_REQUIRE(!faults_requested,
                "delay_dist / drop_prob / crash_schedule need model = async");
    const bool reliability_requested =
        reliabilities != std::vector<std::string>{"none"} || rto != Scenario{}.rto;
    DHC_REQUIRE(!reliability_requested, "reliability / rto need model = async");
    DHC_REQUIRE(max_rounds == 0, "max_rounds needs model = async");
  }
}

namespace {

/// Derives a nonzero per-trial seed by folding words into a splitmix64
/// chain — stable across platforms and independent of execution order.
std::uint64_t derive_seed(std::uint64_t base, std::initializer_list<std::uint64_t> words,
                          std::uint64_t salt) {
  std::uint64_t state = base;
  std::uint64_t h = support::splitmix64(state);
  for (const std::uint64_t w : words) {
    state ^= w;
    h ^= support::splitmix64(state);
  }
  state ^= salt;
  h ^= support::splitmix64(state);
  return h | 1;
}

bool uses_merge_strategy(Algorithm a) {
  return a == Algorithm::kDhc2 || a == Algorithm::kDhc2KMachine;
}

}  // namespace

std::vector<TrialConfig> expand(const Scenario& s) {
  s.validate();
  std::vector<TrialConfig> trials;
  std::size_t cell = 0;
  // Seed identity of a cell *excluding* the machine-count axis: k-machine
  // cells that differ only in k draw the same algo_seed, so they run — and
  // price — the *same* underlying CONGEST execution (the partition seed is
  // the algo_seed too).  In scenarios without a multi-k axis the machines
  // loop has one iteration everywhere and seed_group advances in lockstep
  // with cell, so their seeds are unchanged; a multi-k sweep necessarily
  // renumbers the seeds of any algorithms listed after it.
  std::size_t seed_group = 0;
  static const std::vector<std::int64_t> kNoMachines = {0};
  static const std::vector<core::MergeStrategy> kDefaultMerge = {
      core::MergeStrategy::kMinForward};
  static const std::vector<std::string> kNoFaultSpec = {"none"};
  static const std::vector<double> kNoDrop = {0.0};
  for (const Algorithm algo : s.algos) {
    // The k-machine backend prices every algorithm when the scenario selects
    // the model; the legacy kDhc2KMachine algorithm forces it for its own
    // cells so old scenarios keep their meaning.
    const bool kmachine =
        s.model == ExecutionModel::kKMachine || algo == Algorithm::kDhc2KMachine;
    const bool async = s.model == ExecutionModel::kAsync;
    const auto& merges = uses_merge_strategy(algo) ? s.merges : kDefaultMerge;
    const auto& machines = kmachine ? s.machines : kNoMachines;
    // The fault axes iterate only under model = async (validate() already
    // rejects non-default axes elsewhere), so non-async scenarios keep the
    // exact loop structure — and therefore the exact cell numbering and
    // seeds — they always had.
    const auto& delay_axis = async ? s.delay_dists : kNoFaultSpec;
    const auto& drop_axis = async ? s.drop_probs : kNoDrop;
    const auto& crash_axis = async ? s.crash_schedules : kNoFaultSpec;
    const auto& reliability_axis = async ? s.reliabilities : kNoFaultSpec;
    for (const auto size : s.sizes) {
      for (const double delta : s.deltas) {
        for (const double c : s.cs) {
          for (const core::MergeStrategy merge : merges) {
            for (const auto k : machines) {
              for (const auto& delay_dist : delay_axis) {
                for (const double drop_prob : drop_axis) {
                  for (const auto& crash_schedule : crash_axis) {
                    for (const auto& reliability : reliability_axis) {
                      for (std::uint64_t t = 0; t < s.seeds; ++t) {
                        TrialConfig tc;
                        tc.config_index = cell;
                        tc.trial_index = t;
                        tc.algo = algo;
                        tc.model = kmachine ? ExecutionModel::kKMachine
                                            : (async ? ExecutionModel::kAsync
                                                     : ExecutionModel::kCongest);
                        tc.family = s.family;
                        tc.n = static_cast<graph::NodeId>(size);
                        tc.delta = delta;
                        tc.c = c;
                        tc.merge = merge;
                        tc.machines = static_cast<std::uint32_t>(k);
                        tc.bandwidth = kmachine ? static_cast<std::uint64_t>(s.bandwidth) : 0;
                        tc.delay_dist = delay_dist;
                        tc.drop_prob = drop_prob;
                        tc.crash_schedule = crash_schedule;
                        tc.reliability = reliability;
                        tc.rto = async ? s.rto : "";
                        tc.max_rounds = async ? s.max_rounds : 0;
                        // The graph seed depends only on the instance
                        // parameters, so trials that differ in algorithm /
                        // merge strategy / machine count / fault intensity
                        // but share (family, n, delta, c, trial) run on the
                        // *same* graph — head-to-head comparisons are paired
                        // by construction.  The algorithm seed is per
                        // seed_group: per-cell except that the machine-count,
                        // fault, and reliability axes are excluded, so cells
                        // differing only in k, fault intensity, or transport
                        // reliability run the same underlying execution
                        // (faults perturb it from identical initial
                        // randomness).
                        tc.graph_seed = derive_seed(
                            s.base_seed,
                            {static_cast<std::uint64_t>(s.family),
                             static_cast<std::uint64_t>(tc.n),
                             std::bit_cast<std::uint64_t>(delta),
                             std::bit_cast<std::uint64_t>(c), t},
                            0x67);
                        tc.algo_seed = derive_seed(s.base_seed, {seed_group, t}, 0xa1);
                        trials.push_back(tc);
                      }
                      ++cell;
                    }
                  }
                }
              }
            }
            ++seed_group;
          }
        }
      }
    }
  }
  return trials;
}

namespace {

std::vector<std::string> split_commas(const std::string& key, const std::string& value) {
  if (value.empty()) throw std::invalid_argument("scenario key '" + key + "' has an empty value");
  std::vector<std::string> parts;
  std::istringstream is(value);
  std::string part;
  while (std::getline(is, part, ',')) {
    if (part.empty()) {
      throw std::invalid_argument("scenario key '" + key + "' has an empty list element in '" +
                                  value + "'");
    }
    parts.push_back(part);
  }
  return parts;
}

std::int64_t parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario key '" + key + "' expects an integer, got '" + value +
                                "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument("trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("scenario key '" + key + "' expects a number, got '" + value +
                                "'");
  }
}

std::vector<std::int64_t> parse_int_list(const std::string& key, const std::string& value) {
  std::vector<std::int64_t> out;
  for (const auto& part : split_commas(key, value)) out.push_back(parse_int(key, part));
  return out;
}

std::vector<double> parse_double_list(const std::string& key, const std::string& value) {
  std::vector<double> out;
  for (const auto& part : split_commas(key, value)) out.push_back(parse_double(key, part));
  return out;
}

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

}  // namespace

Scenario scenario_from_spec(const std::map<std::string, std::string>& spec) {
  if (spec.contains("machines") && spec.contains("k_list")) {
    throw std::invalid_argument("scenario keys 'machines' and 'k_list' are aliases; "
                                "use only one");
  }
  Scenario s;
  for (const auto& [key, value] : spec) {
    if (key == "name") {
      s.name = value;
    } else if (key == "algo" || key == "algos") {
      s.algos.clear();
      for (const auto& part : split_commas(key, value)) s.algos.push_back(parse_algorithm(part));
    } else if (key == "model") {
      s.model = parse_execution_model(value);
    } else if (key == "family") {
      s.family = parse_graph_family(value);
    } else if (key == "sizes") {
      s.sizes = parse_int_list(key, value);
    } else if (key == "deltas") {
      s.deltas = parse_double_list(key, value);
    } else if (key == "cs") {
      s.cs = parse_double_list(key, value);
    } else if (key == "merges") {
      s.merges.clear();
      for (const auto& part : split_commas(key, value)) {
        s.merges.push_back(parse_merge_strategy(part));
      }
    } else if (key == "machines" || key == "k_list") {
      s.machines = parse_int_list(key, value);
    } else if (key == "bandwidth") {
      s.bandwidth = parse_int(key, value);
    } else if (key == "seeds") {
      s.seeds = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "seed") {
      s.base_seed = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "node_stats") {
      s.node_stats = congest::parse_node_stats_mode(value);
    } else if (key == "delay_dist") {
      s.delay_dists = split_commas(key, value);
    } else if (key == "drop_prob") {
      s.drop_probs = parse_double_list(key, value);
    } else if (key == "crash_schedule") {
      s.crash_schedules = split_commas(key, value);
    } else if (key == "reliability") {
      s.reliabilities = split_commas(key, value);
    } else if (key == "rto") {
      s.rto = value;
    } else if (key == "max_rounds") {
      s.max_rounds = static_cast<std::uint64_t>(parse_int(key, value));
    } else {
      throw std::invalid_argument("unknown scenario key '" + key + "'");
    }
  }
  s.validate();
  return s;
}

Scenario scenario_from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open scenario file '" + path + "'");
  std::map<std::string, std::string> spec;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) +
                                  ": expected key = value, got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) + ": empty key");
    }
    if (spec.contains(key)) {
      throw std::invalid_argument(path + ":" + std::to_string(lineno) + ": duplicate key '" +
                                  key + "'");
    }
    spec[key] = value;
  }
  return scenario_from_spec(spec);
}

Scenario scenario_from_cli(const support::Cli& cli) {
  Scenario s;
  if (cli.has("scenario")) s = scenario_from_file(cli.get_string("scenario", ""));
  s.name = cli.get_string("name", s.name);
  for (const char* key : {"algo", "algos"}) {
    if (!cli.has(key)) continue;
    s.algos.clear();
    for (const auto& part : split_commas(key, cli.get_string(key, ""))) {
      s.algos.push_back(parse_algorithm(part));
    }
  }
  if (cli.has("model")) s.model = parse_execution_model(cli.get_string("model", ""));
  if (cli.has("family")) s.family = parse_graph_family(cli.get_string("family", ""));
  if (cli.has("sizes")) s.sizes = cli.get_int_list("sizes", {});
  if (cli.has("deltas")) s.deltas = cli.get_double_list("deltas", {});
  if (cli.has("cs")) s.cs = cli.get_double_list("cs", {});
  if (cli.has("merges")) {
    s.merges.clear();
    for (const auto& part : split_commas("merges", cli.get_string("merges", ""))) {
      s.merges.push_back(parse_merge_strategy(part));
    }
  }
  {
    // --machines / --k / --k_list are aliases; more than one is ambiguous.
    const char* seen = nullptr;
    for (const char* key : {"machines", "k", "k_list"}) {
      if (!cli.has(key)) continue;
      if (seen != nullptr) {
        throw std::invalid_argument(std::string("flags --") + seen + " and --" + key +
                                    " are aliases; pass only one");
      }
      seen = key;
      s.machines = cli.get_int_list(key, {});
    }
  }
  if (cli.has("bandwidth")) s.bandwidth = cli.get_int("bandwidth", s.bandwidth);
  if (cli.has("seeds")) s.seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 0));
  if (cli.has("seed")) s.base_seed = static_cast<std::uint64_t>(cli.get_int("seed", 0));
  if (cli.has("node_stats")) {
    s.node_stats = congest::parse_node_stats_mode(cli.get_string("node_stats", ""));
  }
  if (cli.has("delay_dist")) {
    s.delay_dists = split_commas("delay_dist", cli.get_string("delay_dist", ""));
  }
  if (cli.has("drop_prob")) s.drop_probs = cli.get_double_list("drop_prob", {});
  if (cli.has("max_rounds")) {
    s.max_rounds = static_cast<std::uint64_t>(cli.get_int("max_rounds", 0));
  }
  if (cli.has("crash_schedule")) {
    s.crash_schedules = split_commas("crash_schedule", cli.get_string("crash_schedule", ""));
  }
  if (cli.has("reliability")) {
    s.reliabilities = split_commas("reliability", cli.get_string("reliability", ""));
  }
  if (cli.has("rto")) s.rto = cli.get_string("rto", s.rto);
  s.validate();
  return s;
}

}  // namespace dhc::runner
