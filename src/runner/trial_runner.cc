#include "runner/trial_runner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "async/async.h"
#include "congest/fault_plan.h"
#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/dra.h"
#include "core/sequential.h"
#include "core/sequential_linear.h"
#include "core/turau.h"
#include "core/upcast.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/hamiltonian.h"
#include "kmachine/kmachine.h"
#include "runner/bench.h"
#include "support/rng.h"
#include "support/worker_pool.h"
#include "trace/recorder.h"

namespace dhc::runner {

graph::Graph make_trial_instance(const TrialConfig& t) {
  support::Rng rng(t.graph_seed);
  const double p = graph::edge_probability(t.n, t.c, t.delta);  // clamped to 1 by the callee
  switch (t.family) {
    case GraphFamily::kGnp:
      return graph::gnp(t.n, p, rng);
    case GraphFamily::kGnm: {
      const double pairs = static_cast<double>(t.n) * (t.n - 1) / 2.0;
      const auto m = static_cast<std::uint64_t>(std::llround(p * pairs));
      return graph::gnm(t.n, std::min<std::uint64_t>(m, static_cast<std::uint64_t>(pairs)), rng);
    }
    case GraphFamily::kRegular: {
      // Match the G(n, p) expected degree, adjusted to a feasible even-sum
      // degree sequence (configuration model needs n·d even and d < n).
      auto d = static_cast<std::uint32_t>(std::llround(p * (t.n - 1)));
      d = std::max<std::uint32_t>(d, 3);
      d = std::min<std::uint32_t>(d, t.n - 1);
      if ((static_cast<std::uint64_t>(t.n) * d) % 2 != 0) {
        d = d + 1 < t.n ? d + 1 : d - 1;
      }
      return graph::random_regular(t.n, d, rng);
    }
    case GraphFamily::kPowerlaw: {
      // Chung–Lu with the paper-standard power-law exponent β = 2.5, scaled
      // to the G(n, p) expected average degree so (c, δ) sweeps stay
      // density-comparable across families.
      const double average_degree = std::max(p * (t.n - 1), 1.0);
      const auto weights = graph::power_law_weights(t.n, /*beta=*/2.5, average_degree);
      return graph::chung_lu(weights, rng);
    }
  }
  throw std::logic_error("unreachable graph family");
}

namespace {

// Moves the per-algorithm stats map (heap-allocated string keys, one map
// per trial) and failure string into the TrialResult instead of copying
// them; everything else on `r` — in particular `r.cycle`, which callers
// verify afterwards — is left untouched.
void fill_from_result(TrialResult& out, core::Result& r) {
  out.success = r.success;
  out.failure_reason = std::move(r.failure_reason);
  out.rounds = static_cast<double>(r.metrics.rounds);
  out.messages = static_cast<double>(r.metrics.messages);
  out.bits = static_cast<double>(r.metrics.bits);
  out.peak_memory = static_cast<double>(r.metrics.max_node_peak_memory());
  out.barriers = static_cast<double>(r.metrics.barrier_count);
  out.accounted_rounds = static_cast<double>(r.metrics.accounted_rounds());
  out.stats = std::move(r.stats);

  // Observability passthrough: the barrier/phase accounting and the per-node
  // sent-distribution digest become stat_ columns in every artifact.
  out.stats["barrier_count"] = static_cast<double>(r.metrics.barrier_count);
  out.stats["accounted_rounds"] = static_cast<double>(r.metrics.accounted_rounds());
  for (const auto& [label, from_round] : r.metrics.phase_marks) {
    const std::string key = "phase_" + label + "_rounds";
    if (out.stats.contains(key)) continue;  // repeated labels: one summed entry
    out.stats[key] = static_cast<double>(r.metrics.phase_rounds(label));
  }
  if (r.metrics.sent_summary.count > 0) {
    out.stats["node_sent_p50"] = r.metrics.sent_summary.p50;
    out.stats["node_sent_p95"] = r.metrics.sent_summary.p95;
    out.stats["node_sent_p99"] = r.metrics.sent_summary.p99;
  }
  // Logical in-flight message high-water mark (congest/metrics.h): a count of
  // messages × sizeof(Message), never allocator capacity, so it is bitwise
  // identical across thread counts, shard counts, and arena budgets.
  out.stats["arena_bytes_peak"] = static_cast<double>(r.metrics.arena_bytes_peak);
}

// Instance facts recorded for every trial, whatever the model or solver;
// must run *after* fill_from_result (which replaces the stats map).
void add_instance_stats(TrialResult& out, const graph::Graph& g, const TrialConfig& t) {
  out.stats["graph_m"] = static_cast<double>(g.m());
  out.stats["graph_connected"] = graph::is_connected(g) ? 1.0 : 0.0;
  out.stats["mean_degree"] = t.n > 0 ? 2.0 * static_cast<double>(g.m()) / t.n : 0.0;
}

void verify_incidence(TrialResult& out, const graph::Graph& g,
                      const graph::CycleIncidence& cycle) {
  if (!out.success) return;
  const auto v = graph::verify_cycle_incidence(g, cycle);
  if (!v.ok()) {
    out.success = false;
    out.failure_reason = "verifier: " + *v.failure;
  }
}

// Maps a TrialConfig to the adapter that runs its CONGEST solver — the
// single place scenario parameters are forwarded into solver configs,
// shared by both execution models so a congest and a k-machine run of the
// same cell can never drift apart.  kSequential is not a CONGEST
// algorithm: returns null.
kmachine::CongestAlgorithm congest_algorithm_for(const TrialConfig& t,
                                                 congest::TraceSink* trace,
                                                 congest::NodeStatsMode node_stats) {
  // The adapters overwrite only (observer, shards), so the flight-recorder
  // sink and the node-stats mode ride in the base configs.
  switch (t.algo) {
    case Algorithm::kSequential:
    case Algorithm::kCre:
      return nullptr;
    case Algorithm::kDra: {
      core::DraConfig cfg;
      cfg.trace = trace;
      cfg.node_stats = node_stats;
      return kmachine::dra_algorithm(cfg);
    }
    case Algorithm::kDhc1: {
      core::Dhc1Config cfg;
      cfg.trace = trace;
      cfg.node_stats = node_stats;
      return kmachine::dhc1_algorithm(cfg);
    }
    case Algorithm::kDhc2:
    case Algorithm::kDhc2KMachine: {
      core::Dhc2Config cfg;
      cfg.delta = t.delta;
      cfg.merge_strategy = t.merge;
      cfg.trace = trace;
      cfg.node_stats = node_stats;
      return kmachine::dhc2_algorithm(cfg);
    }
    case Algorithm::kTurau: {
      core::TurauConfig cfg;
      cfg.trace = trace;
      cfg.node_stats = node_stats;
      return kmachine::turau_algorithm(cfg);
    }
    case Algorithm::kUpcast:
    case Algorithm::kCollectAll: {
      core::UpcastConfig cfg;
      cfg.collect_all = t.algo == Algorithm::kCollectAll;
      cfg.trace = trace;
      cfg.node_stats = node_stats;
      return kmachine::upcast_algorithm(cfg);
    }
  }
  throw std::logic_error("unreachable algorithm");
}

// Runs one trial through the k-machine execution backend (src/kmachine):
// any CONGEST algorithm, a random vertex partition over t.machines machines
// seeded from the trial's algo_seed, per-link bandwidth t.bandwidth.  The
// headline `rounds` are the converted k-machine rounds; the raw CONGEST
// rounds and the full pricing report land in stats.
void run_kmachine_trial(TrialResult& out, const graph::Graph& g, const TrialConfig& t,
                        const TrialOptions& opt, trace::TraceRecorder* rec) {
  const bool verify = opt.verify;
  const kmachine::CongestAlgorithm algo = congest_algorithm_for(t, rec, opt.node_stats);
  if (algo == nullptr) {
    out.failure_reason =
        "sequential has no CONGEST execution to price in the k-machine model";
    return;
  }

  kmachine::KMachineConfig kcfg;
  kcfg.k = t.machines;
  kcfg.bandwidth = t.bandwidth;
  kcfg.partition_seed = t.algo_seed;
  kcfg.shards = opt.shards;
  kcfg.trace = rec;
  auto priced = kmachine::run_kmachine(algo, g, t.algo_seed, kcfg);
  if (rec != nullptr) rec->finalize(priced.result.metrics);
  fill_from_result(out, priced.result);
  out.rounds = static_cast<double>(priced.report.kmachine_rounds);
  out.stats["congest_rounds"] = static_cast<double>(priced.report.congest_rounds);
  out.stats["kmachine_rounds"] = static_cast<double>(priced.report.kmachine_rounds);
  out.stats["cross_messages"] = static_cast<double>(priced.report.cross_messages);
  out.stats["local_messages"] = static_cast<double>(priced.report.local_messages);
  out.stats["busiest_link_peak"] = static_cast<double>(priced.report.busiest_link_peak);
  if (verify) verify_incidence(out, g, priced.result.cycle);
}

// Runs one trial through the async execution backend (src/async): the same
// CONGEST adapter, with seed-deterministic delivery delays / drops / crash
// windows injected by the network.  Faulted runs may legitimately fail
// (hit_round_limit, invalid cycle); the fault accounting lands in stats so
// artifacts explain *why*.
void run_async_trial(TrialResult& out, const graph::Graph& g, const TrialConfig& t,
                     const TrialOptions& opt, trace::TraceRecorder* rec) {
  const kmachine::CongestAlgorithm algo = congest_algorithm_for(t, rec, opt.node_stats);
  if (algo == nullptr) {
    out.failure_reason = "sequential has no CONGEST execution to run under the async model";
    return;
  }

  async::AsyncConfig acfg;
  acfg.delay = congest::DelaySpec::parse(t.delay_dist);
  acfg.drop_prob = t.drop_prob;
  acfg.crash = congest::CrashSpec::parse(t.crash_schedule);
  acfg.max_rounds = t.max_rounds;
  acfg.shards = opt.shards;
  acfg.reliability = congest::ReliabilitySpec::parse(t.reliability);
  acfg.rto = t.rto.empty() ? congest::RtoSpec{} : congest::RtoSpec::parse(t.rto);
  auto outcome = async::run_async(algo, g, t.algo_seed, acfg);
  if (rec != nullptr) rec->finalize(outcome.result.metrics);
  fill_from_result(out, outcome.result);
  // A round-limit failure is ambiguous on its own: a quiescent network means
  // the protocol *stalled* (e.g. a lost message nobody re-sends), while
  // pending traffic means it was still *live* (delay-induced livelock).
  // Suffix the reason so sweeps can tell them apart without reading traces.
  if (outcome.report.hit_round_limit) {
    out.failure_reason += outcome.report.round_limit_live ? " (live)" : " (stalled)";
  }
  out.stats["delayed_messages"] = static_cast<double>(outcome.report.delayed_messages);
  out.stats["dropped_messages"] = static_cast<double>(outcome.report.dropped_messages);
  out.stats["crash_dropped_messages"] =
      static_cast<double>(outcome.report.crash_dropped_messages);
  out.stats["crashed_steps"] = static_cast<double>(outcome.report.crashed_steps);
  out.stats["crashed_nodes"] = static_cast<double>(outcome.report.crashed_nodes);
  out.stats["crashed_rejoins"] = static_cast<double>(outcome.report.crashed_rejoins);
  out.stats["retransmits"] = static_cast<double>(outcome.report.retransmits);
  out.stats["dup_suppressed"] = static_cast<double>(outcome.report.dup_suppressed);
  out.stats["acks_sent"] = static_cast<double>(outcome.report.acks_sent);
  out.stats["payload_messages"] = static_cast<double>(outcome.report.payload_messages);
  out.stats["hit_round_limit"] = outcome.report.hit_round_limit ? 1.0 : 0.0;
  out.stats["round_limit_live"] = outcome.report.round_limit_live ? 1.0 : 0.0;
  if (opt.verify) verify_incidence(out, g, outcome.result.cycle);
}

TrialResult run_trial_unchecked(const TrialConfig& t, const TrialOptions& opt) {
  const bool verify = opt.verify;
  const std::uint32_t shards = opt.shards;
  TrialResult out;
  const graph::Graph g = make_trial_instance(t);

  // Sequential trials have no network to tap; everything else records when a
  // trace directory is set.
  const bool tracing = !opt.trace_dir.empty() && t.algo != Algorithm::kSequential &&
                       t.algo != Algorithm::kCre;
  trace::TraceRecorder recorder;
  trace::TraceRecorder* rec = tracing ? &recorder : nullptr;
  if (rec != nullptr) {
    trace::TraceMeta meta;
    meta.algo = to_string(t.algo);
    meta.model = to_string(t.model);
    meta.family = to_string(t.family);
    meta.merge = to_string(t.merge);
    meta.n = t.n;
    meta.m = g.m();
    meta.delta = t.delta;
    meta.c = t.c;
    meta.graph_seed = t.graph_seed;
    meta.algo_seed = t.algo_seed;
    meta.machines = t.machines;
    meta.bandwidth = t.bandwidth;
    meta.shards = shards != 0 ? shards : congest::default_shards();
    meta.node_stats = congest::to_string(opt.node_stats);
    meta.config_index = t.config_index;
    meta.trial_index = t.trial_index;
    recorder.set_meta(std::move(meta));
  }

  if (t.model == ExecutionModel::kKMachine || t.algo == Algorithm::kDhc2KMachine) {
    run_kmachine_trial(out, g, t, opt, rec);
  } else if (t.model == ExecutionModel::kAsync) {
    run_async_trial(out, g, t, opt, rec);
  } else if (t.algo == Algorithm::kSequential) {
    support::Rng rng(t.algo_seed);
    const auto r = core::rotation_hamiltonian_cycle(g, rng);
    out.success = r.success;
    out.failure_reason = r.failure_reason;
    out.rounds = static_cast<double>(r.stats.steps);
    out.stats["steps"] = static_cast<double>(r.stats.steps);
    out.stats["extensions"] = static_cast<double>(r.stats.extensions);
    out.stats["rotations"] = static_cast<double>(r.stats.rotations);
    if (out.success && verify) {
      const auto v = graph::verify_cycle_order(g, r.cycle);
      if (!v.ok()) {
        out.success = false;
        out.failure_reason = "verifier: " + *v.failure;
      }
    }
  } else if (t.algo == Algorithm::kCre) {
    // The linear-space oracle: same seed discipline as kSequential, so a cre
    // cell pairs with any CONGEST cell that shares (family, n, delta, c, t).
    support::Rng rng(t.algo_seed);
    const auto r = core::cre_hamiltonian_cycle(g, rng);
    out.success = r.success;
    out.failure_reason = r.failure_reason;
    out.rounds = static_cast<double>(r.stats.steps);
    out.stats["steps"] = static_cast<double>(r.stats.steps);
    out.stats["extensions"] = static_cast<double>(r.stats.extensions);
    out.stats["rotations"] = static_cast<double>(r.stats.rotations);
    out.stats["resamples"] = static_cast<double>(r.stats.resamples);
    if (out.success && verify) {
      const auto v = graph::verify_cycle_order(g, r.cycle);
      if (!v.ok()) {
        out.success = false;
        out.failure_reason = "verifier: " + *v.failure;
      }
    }
  } else {
    // Plain CONGEST execution, through the same adapter the k-machine path
    // uses (no observer attached).
    auto r = congest_algorithm_for(t, rec, opt.node_stats)(
        g, t.algo_seed, /*observer=*/nullptr, shards, /*faults=*/nullptr);
    if (rec != nullptr) rec->finalize(r.metrics);
    fill_from_result(out, r);
    if (verify) verify_incidence(out, g, r.cycle);
  }

  add_instance_stats(out, g, t);

  if (rec != nullptr && rec->finalized()) {
    rec->set_outcome(out.success, out.failure_reason);
    const std::string path = opt.trace_dir + "/trace_c" + std::to_string(t.config_index) +
                             "_t" + std::to_string(t.trial_index) + ".ndjson";
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    rec->write_ndjson(os);
    os.flush();
    if (!os) throw std::runtime_error("cannot write trace file '" + path + "'");
    out.trace_file = path;
  }
  return out;
}

}  // namespace

TrialResult run_trial(const TrialConfig& t, bool verify, std::uint32_t shards) {
  TrialOptions opt;
  opt.verify = verify;
  opt.shards = shards;
  return run_trial(t, opt);
}

TrialResult run_trial(const TrialConfig& t, const TrialOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  TrialResult out;
  try {
    out = run_trial_unchecked(t, opt);
  } catch (const std::exception& e) {
    out = TrialResult{};
    out.success = false;
    out.failure_reason = std::string("exception: ") + e.what();
  }
  if (opt.track_rss) {
    // Process-wide peak at trial end: monotone, so under trial-parallelism
    // the last trial's value is the run's peak.  Opt-in because it is not
    // deterministic (see RunnerOptions::track_rss).
    out.stats["rss_peak_kb"] = static_cast<double>(current_peak_rss_kb());
  }
  out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

ResolvedParallelism resolve_parallelism(std::size_t trial_count, const RunnerOptions& opt) {
  const unsigned hw = support::WorkerPool::hardware_lanes();
  // Clamp the requested budget against the hardware *before* the
  // trial-count min: asking for 64 threads on an 8-way box runs 8 of them,
  // and the artifacts record the 8 that actually ran.
  const unsigned budget = opt.threads == 0 ? hw : std::max(1u, std::min(opt.threads, hw));

  ResolvedParallelism r;
  if (trial_count == 0) {
    // Nothing to run: report the neutral 1×1 split instead of falling into
    // the few-huge-trials branch, which would hand the whole budget to the
    // shard axis of trials that don't exist (and record that fiction in
    // bench artifacts).
    return r;
  }
  if (opt.shards != 0) {
    // Explicit shard count: honored verbatim — the shard *partition* is a
    // determinism knob, not a thread count; the in-trial pool caps its own
    // workers at the hardware.
    r.shards = opt.shards;
  } else if (congest::default_shards() != 1) {
    // A DHC_SHARDS environment default is as explicit as a flag (it is how
    // the CI shard matrix drives everything sharded).
    r.shards = congest::default_shards();
  } else if (trial_count >= budget) {
    // Many small trials: trial-parallelism uses the whole budget.
    r.shards = 1;
  } else {
    // Few huge trials: split the budget, leftover lanes become shards.
    r.shards = budget / static_cast<unsigned>(std::max<std::size_t>(trial_count, 1));
  }
  r.shards = std::max<std::uint32_t>(r.shards, 1);

  // Oversubscription clamp: concurrent trials shrink so that
  // trials × min(shards, budget) never exceeds the budget.
  const unsigned lanes_per_trial = std::min<unsigned>(r.shards, budget);
  r.threads = std::max(1u, budget / lanes_per_trial);
  if (trial_count > 0) {
    r.threads = std::min<unsigned>(r.threads, static_cast<unsigned>(trial_count));
  }
  return r;
}

std::vector<TrialResult> run_trials(const std::vector<TrialConfig>& trials,
                                    const RunnerOptions& opt) {
  return run_trials(trials, opt, resolve_parallelism(trials.size(), opt));
}

std::vector<TrialResult> run_trials(const std::vector<TrialConfig>& trials,
                                    const RunnerOptions& opt,
                                    const ResolvedParallelism& par) {
  std::vector<TrialResult> results(trials.size());
  if (trials.empty()) return results;

  // Workers claim trial indices from the pool's shared cursor and write into
  // their own slot; result content depends only on (TrialConfig, verify) —
  // the shard count is behavior-neutral by construction — so neither the
  // claim order nor the thread/shard split can affect aggregates.
  TrialOptions topt;
  topt.verify = opt.verify;
  topt.shards = par.shards;
  topt.trace_dir = opt.trace_dir;
  topt.node_stats = opt.node_stats;
  topt.track_rss = opt.track_rss;
  support::WorkerPool pool(par.threads);
  pool.run(trials.size(), [&](std::size_t i) {
    results[i] = run_trial(trials[i], topt);
  });
  return results;
}

}  // namespace dhc::runner
