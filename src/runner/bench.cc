#include "runner/bench.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include <sys/resource.h>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace dhc::runner {

namespace {

std::vector<BenchPreset> make_presets() {
  std::vector<BenchPreset> presets;

  {
    // The acceptance grid: all five CONGEST solvers head-to-head on paired
    // G(n, p) instances at n = 2^12, the paper's delta = 1/2 regime.  This
    // is the message-volume-bound workload (tens of millions of messages
    // per trial), so it isolates the simulator hot path.
    BenchPreset p;
    p.name = "comparison";
    p.description = "five-algorithm head-to-head at n=4096 (simulator-bound)";
    p.scenario.name = "bench-comparison";
    p.scenario.algos = {Algorithm::kDhc1, Algorithm::kDhc2, Algorithm::kTurau,
                        Algorithm::kUpcast, Algorithm::kCollectAll};
    p.scenario.sizes = {4096};
    p.scenario.deltas = {0.5};
    p.scenario.cs = {2.5};
    p.scenario.seeds = 2;
    p.scenario.base_seed = 800;
    presets.push_back(std::move(p));
  }
  {
    // Mid-size sweep: the same five algorithms at n = 2^10, more seeds, so
    // per-trial fixed costs (graph generation, verification) carry more
    // relative weight than in "comparison".
    BenchPreset p;
    p.name = "comparison-1k";
    p.description = "five-algorithm head-to-head at n=1024";
    p.scenario.name = "bench-comparison-1k";
    p.scenario.algos = {Algorithm::kDhc1, Algorithm::kDhc2, Algorithm::kTurau,
                        Algorithm::kUpcast, Algorithm::kCollectAll};
    p.scenario.sizes = {1024};
    p.scenario.deltas = {0.5};
    p.scenario.cs = {2.5};
    p.scenario.seeds = 3;
    p.scenario.base_seed = 800;
    presets.push_back(std::move(p));
  }
  {
    // DHC2 density grid: exercises the partitioned setup (many groups, many
    // barriers) rather than raw flooding volume.
    BenchPreset p;
    p.name = "dhc2-grid";
    p.description = "dhc2 over a (n, delta) grid (barrier/wake-up bound)";
    p.scenario.name = "bench-dhc2-grid";
    p.scenario.algos = {Algorithm::kDhc2};
    p.scenario.sizes = {512, 1024, 2048};
    p.scenario.deltas = {0.5, 0.75};
    p.scenario.cs = {2.5};
    p.scenario.seeds = 3;
    p.scenario.base_seed = 801;
    presets.push_back(std::move(p));
  }
  {
    // The k-machine execution backend (paper §IV) as a workload family:
    // four CONGEST solvers priced under a random vertex partition at two
    // machine counts.  Exercises the full observer/event-log path on top of
    // the simulator, so it tracks conversion overhead as well as solver
    // throughput.
    BenchPreset p;
    p.name = "kmachine_sweep";
    p.description = "four algorithms priced in the k-machine model, k in {4, 16}";
    p.scenario.name = "bench-kmachine-sweep";
    p.scenario.model = ExecutionModel::kKMachine;
    p.scenario.algos = {Algorithm::kDra, Algorithm::kDhc1, Algorithm::kDhc2,
                        Algorithm::kTurau};
    p.scenario.sizes = {1024};
    p.scenario.deltas = {0.5};
    p.scenario.cs = {2.5};
    p.scenario.machines = {4, 16};
    p.scenario.bandwidth = 32;
    p.scenario.seeds = 2;
    p.scenario.base_seed = 803;
    presets.push_back(std::move(p));
  }
  {
    // Memory-probe pair: one node-count-dominated cell run twice, once per
    // node-stats mode.  The only difference between the two presets is the
    // accounting mode, so the rss_peak_kb delta in the artifact is the
    // measured cost of full per-node accounting (40 B/node plus arena slack)
    // over the streaming accumulators (16 B/node).  The instance is a huge
    // *sub-connectivity* G(n, m) (mean degree ~1): Turau floods its sparse
    // setup and then aborts gracefully on the disconnect, so per-round
    // message volume stays tiny and the per-node accounting dominates the
    // footprint — at n = 2^21 the measured drop is ~100 MB (~11%).  The 0/1
    // success in the artifact is by design; the probe measures allocation,
    // not solving.
    BenchPreset p;
    p.name = "mem-probe-full";
    p.description = "turau at n=2^21 (instant abort), full per-node stats (RSS probe)";
    p.scenario.name = "bench-mem-probe-full";
    p.scenario.algos = {Algorithm::kTurau};
    p.scenario.family = GraphFamily::kGnm;
    p.scenario.sizes = {2097152};
    p.scenario.deltas = {1.0};
    p.scenario.cs = {0.07};
    p.scenario.seeds = 1;
    p.scenario.base_seed = 804;
    p.scenario.node_stats = congest::NodeStatsMode::kFull;
    presets.push_back(std::move(p));
  }
  {
    BenchPreset p;
    p.name = "mem-probe-streaming";
    p.description = "turau at n=2^21 (instant abort), streaming per-node stats (RSS probe)";
    p.scenario.name = "bench-mem-probe-streaming";
    p.scenario.algos = {Algorithm::kTurau};
    p.scenario.family = GraphFamily::kGnm;
    p.scenario.sizes = {2097152};
    p.scenario.deltas = {1.0};
    p.scenario.cs = {0.07};
    p.scenario.seeds = 1;
    p.scenario.base_seed = 804;
    p.scenario.node_stats = congest::NodeStatsMode::kStreaming;
    presets.push_back(std::move(p));
  }
  {
    // The async fault-injection backend as a workload family: all five
    // solvers under drop probabilities crossed with the reliability axis.
    // The reliability=none x drop>0 cells replay PR 7's headline (every
    // solver stalls); the reliability=ack cells measure what reliability
    // costs instead — retransmit amplification per solver at each loss rate
    // (the drop axes are excluded from the derived seeds, so the
    // drop_prob=0 column doubles as the paired control, and the ack x
    // drop=0 cells are bitwise-identical to their none controls).
    BenchPreset p;
    p.name = "fault_sweep";
    p.description =
        "five solvers under async drops x {none, ack} reliability "
        "(retransmit-amplification curves)";
    p.scenario.name = "bench-fault-sweep";
    p.scenario.model = ExecutionModel::kAsync;
    p.scenario.algos = {Algorithm::kDhc2, Algorithm::kDhc1, Algorithm::kDra,
                        Algorithm::kUpcast, Algorithm::kTurau};
    p.scenario.sizes = {256};
    p.scenario.deltas = {0.5};
    p.scenario.cs = {2.5};
    p.scenario.delay_dists = {"fixed:1"};
    p.scenario.drop_probs = {0.0, 0.02, 0.05};
    p.scenario.reliabilities = {"none", "ack"};
    // Dropped messages stall solvers that assume reliable delivery; the
    // budget turns the reliability=none loss cells into fast
    // hit_round_limit failures so the bench measures overlay overhead, not
    // stall endurance.
    p.scenario.max_rounds = 200000;
    p.scenario.seeds = 2;
    p.scenario.base_seed = 805;
    presets.push_back(std::move(p));
  }
  {
    // The tentpole acceptance probe: one verified G(n, p) trial at n = 2^20
    // solved by the linear-space cre oracle.  The preset exists to record —
    // as BENCH_mem_flatten.json — that a million-node verified trial fits in
    // well under 4 GB after the flattening pass; its rss_peak_kb is the
    // headline number the bench gate then pins.
    BenchPreset p;
    p.name = "mem-flatten";
    p.description = "cre oracle solves + verifies one G(n,p) trial at n=2^20 (RSS probe)";
    p.scenario.name = "bench-mem-flatten";
    p.scenario.algos = {Algorithm::kCre};
    p.scenario.sizes = {1048576};
    p.scenario.deltas = {1.0};
    // c = 6 is the same supercritical density the differential tests pin:
    // the used-edge discipline consumes degree as it walks, so densities
    // near the Hamiltonicity threshold strand the head (event E2) even on
    // instances that do contain a cycle.
    p.scenario.cs = {6.0};
    p.scenario.seeds = 1;
    p.scenario.base_seed = 806;
    presets.push_back(std::move(p));
  }
  {
    // CI-sized smoke preset: every solver once, small n, a few seconds.
    BenchPreset p;
    p.name = "perf-smoke";
    p.description = "small grid for CI perf smoke runs";
    p.scenario.name = "bench-perf-smoke";
    p.scenario.algos = {Algorithm::kDhc1, Algorithm::kDhc2, Algorithm::kTurau,
                        Algorithm::kUpcast, Algorithm::kCollectAll};
    p.scenario.sizes = {256};
    p.scenario.deltas = {0.5};
    p.scenario.cs = {2.5};
    p.scenario.seeds = 2;
    p.scenario.base_seed = 802;
    presets.push_back(std::move(p));
  }
  return presets;
}

}  // namespace

const std::vector<BenchPreset>& bench_presets() {
  static const std::vector<BenchPreset> presets = make_presets();
  return presets;
}

const BenchPreset* find_bench_preset(const std::string& name) {
  for (const auto& p : bench_presets()) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

long current_peak_rss_kb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return usage.ru_maxrss;  // kilobytes on Linux
}

namespace {

// Linux keeps a *resettable* RSS high-water mark: writing "5" to
// /proc/self/clear_refs zeroes VmHWM, so each preset can report its own
// peak instead of inheriting the process-lifetime maximum from whichever
// earlier preset was largest.  Returns false when the proc interface is
// unavailable (non-Linux), in which case ru_maxrss is the fallback.
bool reset_rss_peak() {
#if defined(__GLIBC__)
  // Freed-but-retained allocator pages from an earlier preset stay resident
  // and would dominate the reset high-water mark; hand them back first so
  // the next preset's VmHWM reflects its own working set.
  malloc_trim(0);
#endif
  std::ofstream f("/proc/self/clear_refs");
  if (!f) return false;
  f << "5\n";
  f.flush();
  return static_cast<bool>(f);
}

long read_rss_hwm_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmHWM:", 0) == 0) return std::strtol(line.c_str() + 6, nullptr, 10);
  }
  return 0;
}

}  // namespace

BenchMeasurement run_bench_preset(const BenchPreset& preset, const RunnerOptions& opt) {
  BenchMeasurement m;
  m.name = preset.name;
  m.node_stats = congest::to_string(preset.scenario.node_stats);

  // The preset's frozen scenario owns the accounting mode (the mem-probe
  // pair differs only there); everything else comes from the caller.
  RunnerOptions run_opt = opt;
  run_opt.node_stats = preset.scenario.node_stats;

  const auto trials = expand(preset.scenario);
  m.trials = trials.size();
  // Resolve once and pass the same value to the run, so the recorded split
  // is by construction the split that executed.
  const ResolvedParallelism par = resolve_parallelism(trials.size(), opt);
  m.threads = par.threads;
  m.shards = par.shards;

  const bool per_preset_rss = reset_rss_peak();
  const auto start = std::chrono::steady_clock::now();
  const auto results = run_trials(trials, run_opt, par);
  m.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  for (const auto& r : results) {
    if (r.success) ++m.successes;
    m.messages_total += static_cast<std::uint64_t>(r.messages);
    // Async trials report payload_messages (messages minus overlay
    // retransmit/ack traffic); everywhere else the two counters coincide.
    const auto payload = r.stats.find("payload_messages");
    m.payload_messages_total += payload != r.stats.end()
                                    ? static_cast<std::uint64_t>(payload->second)
                                    : static_cast<std::uint64_t>(r.messages);
    for (const auto& [key, value] : r.stats) {
      if (key.rfind("phase_", 0) == 0) m.phase_rounds_mean[key] += value;
    }
    const auto arena = r.stats.find("arena_bytes_peak");
    if (arena != r.stats.end()) {
      m.arena_bytes_peak =
          std::max(m.arena_bytes_peak, static_cast<std::uint64_t>(arena->second));
    }
  }
  if (!results.empty()) {
    for (auto& [key, sum] : m.phase_rounds_mean) sum /= static_cast<double>(results.size());
  }
  if (m.wall_seconds > 0.0) {
    m.trials_per_sec = static_cast<double>(m.trials) / m.wall_seconds;
    m.messages_per_sec = static_cast<double>(m.messages_total) / m.wall_seconds;
  }
  m.rss_peak_kb = per_preset_rss ? read_rss_hwm_kb() : current_peak_rss_kb();
  return m;
}

void write_bench_json(std::ostream& os, const std::vector<BenchMeasurement>& measurements,
                      unsigned threads, std::uint32_t shards) {
  os << "{\n  \"bench\": \"congest\",\n  \"schema\": 5,\n  \"threads\": " << threads
     << ",\n  \"shards\": " << shards << ",\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    const auto& m = measurements[i];
    os << "    {\"name\": \"" << m.name << "\", \"trials\": " << m.trials
       << ", \"successes\": " << m.successes << ", \"threads\": " << m.threads
       << ", \"shards\": " << m.shards << ", \"wall_seconds\": " << m.wall_seconds
       << ", \"trials_per_sec\": " << m.trials_per_sec
       << ", \"messages_total\": " << m.messages_total
       << ", \"payload_messages_total\": " << m.payload_messages_total
       << ", \"messages_per_sec\": " << m.messages_per_sec
       << ", \"rss_peak_kb\": " << m.rss_peak_kb
       << ", \"arena_bytes_peak\": " << m.arena_bytes_peak
       << ", \"node_stats\": \"" << m.node_stats << "\", \"phases\": {";
    bool first = true;
    for (const auto& [key, value] : m.phase_rounds_mean) {
      os << (first ? "" : ", ") << '"' << key << "\": " << value;
      first = false;
    }
    os << "}}" << (i + 1 < measurements.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace dhc::runner
