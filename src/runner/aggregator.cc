#include "runner/aggregator.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>

#include "support/require.h"
#include "support/stats.h"

namespace dhc::runner {

namespace {

MetricSummary summarize_metric(const std::vector<double>& values) {
  MetricSummary m;
  m.count = values.size();
  if (values.empty()) return m;
  const auto s = support::summarize(values);
  m.mean = s.mean;
  m.median = s.median;
  m.min = s.min;
  m.max = s.max;
  m.p95 = support::quantile(values, 0.95);
  return m;
}

/// Deterministic JSON/CSV number rendering: integers print without a
/// fraction, everything else round-trips through %.17g.
std::string fmt_num(double v) {
  if (std::isfinite(v) && std::floor(v) == v && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

void write_metric_json(std::ostream& os, const char* name, const MetricSummary& m) {
  os << '"' << name << "\": {\"count\": " << m.count << ", \"mean\": " << fmt_num(m.mean)
     << ", \"median\": " << fmt_num(m.median) << ", \"p95\": " << fmt_num(m.p95)
     << ", \"min\": " << fmt_num(m.min) << ", \"max\": " << fmt_num(m.max) << '}';
}

}  // namespace

std::vector<ConfigSummary> aggregate(const std::vector<TrialConfig>& trials,
                                     const std::vector<TrialResult>& results) {
  DHC_REQUIRE(trials.size() == results.size(),
              "aggregate needs one result per trial, got " << results.size() << " results for "
                                                           << trials.size() << " trials");
  struct Group {
    TrialConfig config;
    std::vector<double> rounds, messages, bits, memory;
    std::map<std::string, double> stat_sums;
    std::vector<std::string> trace_files;
    std::uint64_t trials = 0;
    std::uint64_t successes = 0;
    double wall = 0.0;
  };
  // One counting pass so each cell's metric vectors are reserved exactly
  // once instead of growing geometrically while trials stream in.
  std::map<std::size_t, std::size_t> cell_sizes;
  for (const auto& t : trials) ++cell_sizes[t.config_index];

  std::map<std::size_t, Group> groups;
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const auto& t = trials[i];
    const auto& r = results[i];
    auto& g = groups[t.config_index];
    if (g.trials == 0) {
      g.config = t;
      g.config.trial_index = 0;
      g.config.graph_seed = 0;
      g.config.algo_seed = 0;
      const std::size_t cell = cell_sizes[t.config_index];
      g.rounds.reserve(cell);
      g.messages.reserve(cell);
      g.bits.reserve(cell);
      g.memory.reserve(cell);
    }
    ++g.trials;
    g.wall += r.wall_seconds;
    if (!r.trace_file.empty()) g.trace_files.push_back(r.trace_file);
    for (const auto& [key, value] : r.stats) g.stat_sums[key] += value;
    if (!r.success) continue;
    ++g.successes;
    g.rounds.push_back(r.rounds);
    g.messages.push_back(r.messages);
    g.bits.push_back(r.bits);
    g.memory.push_back(r.peak_memory);
  }

  std::vector<ConfigSummary> out;
  out.reserve(groups.size());
  for (auto& [index, g] : groups) {
    (void)index;
    ConfigSummary s;
    s.config = g.config;
    s.trials = g.trials;
    s.successes = g.successes;
    s.success_rate = static_cast<double>(g.successes) / static_cast<double>(g.trials);
    s.rounds = summarize_metric(g.rounds);
    s.messages = summarize_metric(g.messages);
    s.bits = summarize_metric(g.bits);
    s.memory = summarize_metric(g.memory);
    for (const auto& [key, sum] : g.stat_sums) {
      s.stat_means[key] = sum / static_cast<double>(g.trials);
    }
    s.wall_seconds_total = g.wall;
    s.trace_files = std::move(g.trace_files);
    out.push_back(std::move(s));
  }
  return out;
}

support::Table summary_table(const std::vector<ConfigSummary>& summaries) {
  support::Table table({"algo", "model", "family", "n", "delta", "c", "merge", "k", "success",
                        "med rounds", "p95 rounds", "med msgs", "med mem"});
  for (const auto& s : summaries) {
    const auto& c = s.config;
    table.add_row({to_string(c.algo), to_string(c.model), to_string(c.family),
                   support::Table::num(static_cast<std::uint64_t>(c.n)),
                   support::Table::num(c.delta, 2), support::Table::num(c.c, 2),
                   to_string(c.merge),
                   c.machines == 0 ? "-" : support::Table::num(static_cast<std::uint64_t>(c.machines)),
                   std::to_string(s.successes) + "/" + std::to_string(s.trials),
                   s.successes == 0 ? "-" : support::Table::num(s.rounds.median, 0),
                   s.successes == 0 ? "-" : support::Table::num(s.rounds.p95, 0),
                   s.successes == 0 ? "-" : support::Table::num(s.messages.median, 0),
                   s.successes == 0 ? "-" : support::Table::num(s.memory.median, 0)});
  }
  return table;
}

void write_json(std::ostream& os, const std::string& scenario_name,
                const std::vector<ConfigSummary>& summaries) {
  os << "{\n  \"scenario\": \"" << json_escape(scenario_name) << "\",\n  \"configs\": [";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& s = summaries[i];
    const auto& c = s.config;
    os << (i == 0 ? "" : ",") << "\n    {\n";
    os << "      \"algo\": \"" << to_string(c.algo) << "\",\n";
    os << "      \"model\": \"" << to_string(c.model) << "\",\n";
    os << "      \"family\": \"" << to_string(c.family) << "\",\n";
    os << "      \"n\": " << c.n << ",\n";
    os << "      \"delta\": " << fmt_num(c.delta) << ",\n";
    os << "      \"c\": " << fmt_num(c.c) << ",\n";
    os << "      \"merge\": \"" << to_string(c.merge) << "\",\n";
    os << "      \"machines\": " << c.machines << ",\n";
    os << "      \"bandwidth\": " << c.bandwidth << ",\n";
    if (c.model == ExecutionModel::kAsync) {
      // Async-only fields, emitted conditionally so every pre-async artifact
      // stays byte-identical (same pattern as trace_files below).
      os << "      \"delay_dist\": \"" << json_escape(c.delay_dist) << "\",\n";
      os << "      \"drop_prob\": " << fmt_num(c.drop_prob) << ",\n";
      os << "      \"crash_schedule\": \"" << json_escape(c.crash_schedule) << "\",\n";
      os << "      \"reliability\": \"" << json_escape(c.reliability) << "\",\n";
      os << "      \"rto\": \"" << json_escape(c.rto) << "\",\n";
      os << "      \"max_rounds\": " << c.max_rounds << ",\n";
    }
    os << "      \"trials\": " << s.trials << ",\n";
    os << "      \"successes\": " << s.successes << ",\n";
    os << "      \"success_rate\": " << fmt_num(s.success_rate) << ",\n";
    os << "      ";
    write_metric_json(os, "rounds", s.rounds);
    os << ",\n      ";
    write_metric_json(os, "messages", s.messages);
    os << ",\n      ";
    write_metric_json(os, "bits", s.bits);
    os << ",\n      ";
    write_metric_json(os, "memory", s.memory);
    os << ",\n      \"stats\": {";
    bool first = true;
    for (const auto& [key, value] : s.stat_means) {
      os << (first ? "" : ", ") << '"' << json_escape(key) << "\": " << fmt_num(value);
      first = false;
    }
    os << '}';
    if (!s.trace_files.empty()) {
      os << ",\n      \"trace_files\": [";
      for (std::size_t j = 0; j < s.trace_files.size(); ++j) {
        os << (j == 0 ? "" : ", ") << '"' << json_escape(s.trace_files[j]) << '"';
      }
      os << ']';
    }
    os << "\n    }";
  }
  os << "\n  ]\n}\n";
}

void write_csv(std::ostream& os, const std::vector<ConfigSummary>& summaries) {
  // Fixed columns first, then one `stat_<key>` column per stat-mean key seen
  // in *any* summary (sorted union, so the header is deterministic and every
  // model-specific stat — kmachine_rounds, busiest_link_peak, ... — is
  // exported).  Cells without that stat stay empty.
  std::set<std::string> stat_columns;
  for (const auto& s : summaries) {
    for (const auto& [key, value] : s.stat_means) {
      (void)value;
      stat_columns.insert(key);
    }
  }
  os << "algo,model,family,n,delta,c,merge,machines,bandwidth,trials,successes,success_rate,"
        "rounds_mean,rounds_median,rounds_p95,messages_mean,messages_median,messages_p95,"
        "bits_median,memory_median";
  for (const auto& key : stat_columns) os << ",stat_" << key;
  os << '\n';
  for (const auto& s : summaries) {
    const auto& c = s.config;
    os << to_string(c.algo) << ',' << to_string(c.model) << ',' << to_string(c.family) << ','
       << c.n << ',' << fmt_num(c.delta) << ',' << fmt_num(c.c) << ',' << to_string(c.merge)
       << ',' << c.machines << ',' << c.bandwidth << ',' << s.trials << ',' << s.successes
       << ',' << fmt_num(s.success_rate) << ',' << fmt_num(s.rounds.mean) << ','
       << fmt_num(s.rounds.median) << ',' << fmt_num(s.rounds.p95) << ','
       << fmt_num(s.messages.mean) << ',' << fmt_num(s.messages.median) << ','
       << fmt_num(s.messages.p95) << ',' << fmt_num(s.bits.median) << ','
       << fmt_num(s.memory.median);
    for (const auto& key : stat_columns) {
      os << ',';
      const auto it = s.stat_means.find(key);
      if (it != s.stat_means.end()) os << fmt_num(it->second);
    }
    os << '\n';
  }
}

}  // namespace dhc::runner
