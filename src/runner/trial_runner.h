// Parallel execution of expanded scenario trials.
//
// Every trial is a pure function of its TrialConfig — the graph is generated
// from graph_seed, the solver from algo_seed, and no state is shared between
// trials — so run_trials() can hand the list to a std::thread worker pool
// and still produce results that are bitwise independent of thread count and
// scheduling order: workers write into a pre-sized vector slot keyed by the
// trial's position, never append.  Only wall_seconds varies between runs,
// and it is excluded from every aggregate and artifact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario.h"

namespace dhc::runner {

/// Outcome of one trial, reduced to the aggregatable measurements.
struct TrialResult {
  bool success = false;
  std::string failure_reason;

  /// CONGEST cost (for kSequential: rounds counts solver steps, the rest 0;
  /// for kDhc2KMachine: rounds is the converted k-machine round count and
  /// the raw CONGEST rounds are stats["congest_rounds"]).
  double rounds = 0.0;
  double messages = 0.0;
  double bits = 0.0;
  /// Max over nodes of peak registered memory, words.
  double peak_memory = 0.0;
  double barriers = 0.0;
  double accounted_rounds = 0.0;

  /// Algorithm counters passed through from core::Result::stats, plus the
  /// instance facts graph_m, graph_connected (0/1), and mean_degree.
  std::map<std::string, double> stats;

  /// Wall-clock of this trial on its worker thread.  Informational only:
  /// never aggregated or serialized (it would break thread-count
  /// determinism).
  double wall_seconds = 0.0;
};

struct RunnerOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Verify returned cycles against the input graph (recommended; the
  /// k-machine conversion reports success only, nothing to verify).
  bool verify = true;
};

/// Generates a trial's input graph deterministically from its graph_seed and
/// instance parameters (family, n, delta, c).  Exposed so tests can pin the
/// DESIGN.md §3 pairing guarantee: trials that differ only in algorithm,
/// merge strategy, or machine count receive bitwise-identical graphs.
graph::Graph make_trial_instance(const TrialConfig& t);

/// Generates the instance deterministically from `t` and runs its solver.
/// Failures (including thrown std::exception) are reported as unsuccessful
/// results, never propagated.
TrialResult run_trial(const TrialConfig& t, bool verify = true);

/// Runs all trials on a worker pool and returns results in trial order.
/// Aggregate-relevant fields are identical for every `opt.threads` value.
std::vector<TrialResult> run_trials(const std::vector<TrialConfig>& trials,
                                    const RunnerOptions& opt = {});

}  // namespace dhc::runner
