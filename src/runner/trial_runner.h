// Parallel execution of expanded scenario trials.
//
// Every trial is a pure function of its TrialConfig — the graph is generated
// from graph_seed, the solver from algo_seed, and no state is shared between
// trials — so run_trials() can hand the list to a support::WorkerPool and
// still produce results that are bitwise independent of thread count and
// scheduling order: workers write into a pre-sized vector slot keyed by the
// trial's position, never append.  Only wall_seconds varies between runs,
// and it is excluded from every aggregate and artifact.
//
// The thread budget is arbitrated between the two parallelism axes
// (resolve_parallelism): many small trials run trial-parallel with
// sequential simulators; few huge trials run near-serially with *sharded*
// simulators (congest/network.h), which are bitwise identical to the
// sequential ones — so aggregates are also independent of the shard split.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "runner/scenario.h"

namespace dhc::runner {

/// Outcome of one trial, reduced to the aggregatable measurements.
struct TrialResult {
  bool success = false;
  std::string failure_reason;

  /// CONGEST cost (for kSequential: rounds counts solver steps, the rest 0;
  /// for k-machine-model trials: rounds is the converted k-machine round
  /// count and the raw CONGEST rounds are stats["congest_rounds"], with the
  /// cross/local split and busiest_link_peak alongside).
  double rounds = 0.0;
  double messages = 0.0;
  double bits = 0.0;
  /// Max over nodes of peak registered memory, words.
  double peak_memory = 0.0;
  double barriers = 0.0;
  double accounted_rounds = 0.0;

  /// Algorithm counters passed through from core::Result::stats, plus the
  /// instance facts graph_m, graph_connected (0/1), and mean_degree.
  std::map<std::string, double> stats;

  /// Wall-clock of this trial on its worker thread.  Informational only:
  /// never aggregated or serialized (it would break thread-count
  /// determinism).
  double wall_seconds = 0.0;

  /// Path of the NDJSON flight-recorder trace written for this trial, empty
  /// when tracing was off (or the trial is sequential — no network to tap).
  std::string trace_file;
};

struct RunnerOptions {
  /// Worker-thread budget shared by trial- and shard-parallelism; 0 means
  /// std::thread::hardware_concurrency().  Always clamped to the hardware
  /// before any other arbitration, so the resolved split describes what
  /// actually ran.
  unsigned threads = 1;
  /// Verify returned cycles against the input graph (recommended; applies
  /// to k-machine-model trials too — the backend returns the underlying
  /// solver's cycle).
  bool verify = true;
  /// Simulator shards per trial.  0 = auto: prefer trial-parallelism when
  /// there are at least as many trials as budget lanes, otherwise hand the
  /// leftover lanes to each trial as shards (few huge trials — the regime
  /// where runner-level parallelism is useless).  Any value produces
  /// bitwise-identical aggregates; only wall-clock changes.
  std::uint32_t shards = 0;
  /// When non-empty, every CONGEST trial writes a flight-recorder trace to
  /// `trace_dir`/trace_c<config>_t<trial>.ndjson (see src/trace/).  The
  /// directory must exist.  Trace counters are deterministic and
  /// shard-invariant; only wall fields vary between runs.
  std::string trace_dir{};
  /// Per-node accounting mode for every CONGEST trial (see
  /// congest::NodeStatsMode).  Headline metrics are mode-invariant.
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
  /// Record stats["rss_peak_kb"] (the process peak RSS, getrusage, at the
  /// end of each trial) on every result.  Off by default: the value is
  /// machine- and scheduling-dependent, so it must never enter artifacts
  /// that are compared bitwise across thread counts.
  bool track_rss = false;
};

/// Per-trial knobs of run_trial — RunnerOptions minus the thread budget.
struct TrialOptions {
  bool verify = true;
  /// 0 = the DHC_SHARDS environment default.
  std::uint32_t shards = 0;
  std::string trace_dir;
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
  /// See RunnerOptions::track_rss.
  bool track_rss = false;
};

/// The arbitrated thread/shard split for a run: `threads` concurrent trials,
/// each simulated with `shards` shards (threads × shards stays within the
/// clamped budget; an explicit RunnerOptions::shards is honored as the
/// partition count, and the in-trial pool caps its own workers at the
/// hardware).  Recorded in artifacts so bench JSONs are self-describing.
struct ResolvedParallelism {
  unsigned threads = 1;
  std::uint32_t shards = 1;
};

/// Resolves `opt` against the machine and the trial count.
ResolvedParallelism resolve_parallelism(std::size_t trial_count, const RunnerOptions& opt);

/// Generates a trial's input graph deterministically from its graph_seed and
/// instance parameters (family, n, delta, c).  Exposed so tests can pin the
/// DESIGN.md §3 pairing guarantee: trials that differ only in algorithm,
/// merge strategy, or machine count receive bitwise-identical graphs.
graph::Graph make_trial_instance(const TrialConfig& t);

/// Generates the instance deterministically from `t` and runs its solver
/// with `shards` simulator shards (0 = the DHC_SHARDS environment default;
/// every value yields bitwise-identical results).  Failures (including
/// thrown std::exception) are reported as unsuccessful results, never
/// propagated.
TrialResult run_trial(const TrialConfig& t, bool verify = true, std::uint32_t shards = 0);

/// Same, with tracing and node-stats knobs.  A failure to write the trace
/// file is a trial failure (reported, never thrown).
TrialResult run_trial(const TrialConfig& t, const TrialOptions& opt);

/// Runs all trials on a worker pool and returns results in trial order.
/// Aggregate-relevant fields are identical for every `opt.threads` /
/// `opt.shards` value.
std::vector<TrialResult> run_trials(const std::vector<TrialConfig>& trials,
                                    const RunnerOptions& opt = {});

/// Same, with the thread/shard split already resolved — callers that record
/// the split in an artifact (run_bench_preset) pass the exact value they
/// recorded, so the artifact can never drift from what ran.
std::vector<TrialResult> run_trials(const std::vector<TrialConfig>& trials,
                                    const RunnerOptions& opt,
                                    const ResolvedParallelism& par);

}  // namespace dhc::runner
