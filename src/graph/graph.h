// Immutable undirected graph in compressed-sparse-row form.
//
// This is the substrate every other subsystem builds on: the CONGEST
// simulator walks neighbor spans when delivering messages, the generators
// produce edge lists that are frozen into a Graph, and the verifier checks
// cycle edges against has_edge().  Neighbor lists are sorted, so adjacency
// queries are O(log deg) and iteration order is deterministic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dhc::graph {

/// Node identifier; nodes of an n-node graph are 0 .. n-1.
using NodeId = std::uint32_t;

/// An undirected edge; canonical form has first <= second.
using Edge = std::pair<NodeId, NodeId>;

/// Immutable undirected simple graph (no self-loops, no parallel edges).
class Graph {
 public:
  /// Builds a graph on `n` nodes from an edge list.  Self-loops are
  /// rejected; duplicate edges (in either orientation) are merged.
  Graph(NodeId n, const std::vector<Edge>& edges);

  /// Number of nodes.
  NodeId n() const { return n_; }

  /// Number of (undirected) edges.
  std::size_t m() const { return adjacency_.size() / 2; }

  /// Degree of `v`.
  std::size_t degree(NodeId v) const {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of `v`.
  std::span<const NodeId> neighbors(NodeId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// Returned by neighbor_rank() when the queried pair is not an edge.
  static constexpr std::size_t kNoRank = static_cast<std::size_t>(-1);

  /// Position of `v` in u's sorted neighbor list (so offsets[u] + rank is
  /// the directed-edge id of u→v), or kNoRank if (u, v) is not an edge.
  /// O(log deg(u)); the CONGEST send path's only per-message graph query.
  std::size_t neighbor_rank(NodeId u, NodeId v) const {
    const NodeId* first = adjacency_.data() + offsets_[u];
    const NodeId* last = adjacency_.data() + offsets_[u + 1];
    const NodeId* it = std::lower_bound(first, last, v);
    return (it != last && *it == v) ? static_cast<std::size_t>(it - first) : kNoRank;
  }

  /// Raw CSR row-offset table (n+1 entries); offsets()[v] is the index of
  /// v's first neighbor in adjacency().
  std::span<const std::uint64_t> row_offsets() const { return offsets_; }

  /// Raw CSR adjacency array (2m entries, sorted within each row).
  std::span<const NodeId> adjacency() const { return adjacency_; }

  /// Adjacency test in O(log deg(u)).
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges in canonical (u < v) form, sorted.
  std::vector<Edge> edges() const;

  /// Maximum degree over all nodes (0 for the empty graph).
  std::size_t max_degree() const;

 private:
  NodeId n_;
  std::vector<std::uint64_t> offsets_;  // n+1 entries
  std::vector<NodeId> adjacency_;       // 2m entries, sorted per node
};

/// The subgraph induced by `nodes` (which must be distinct, valid ids).
/// Returns the new graph plus the mapping new-id -> old-id; new ids follow
/// the order of `nodes`.
struct InducedSubgraph {
  Graph graph;
  std::vector<NodeId> to_original;
};
InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

}  // namespace dhc::graph
