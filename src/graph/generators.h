// Random and structured graph generators.
//
// The paper's input model is G(n, p) with p = c·ln n / n^δ; §IV also points
// at G(n, M) and random regular graphs as natural extensions.  Structured
// graphs (cycles, cliques, stars, Petersen) serve as test fixtures with
// known Hamiltonicity.
#pragma once

#include <cstdint>

#include "graph/graph.h"
#include "support/rng.h"

namespace dhc::graph {

/// Erdős–Rényi G(n, p): every pair is an edge independently with
/// probability p.  Runs in O(n + m) expected time via Batagelj–Brandes
/// geometric skipping, so sparse graphs never touch all n² pairs.
Graph gnp(NodeId n, double p, support::Rng& rng);

/// G(n, M): a uniformly random graph with exactly M distinct edges.
/// Requires M <= n(n-1)/2.
Graph gnm(NodeId n, std::uint64_t m, support::Rng& rng);

/// Random d-regular graph via the configuration model with restarts
/// (rejecting self-loops/multi-edges).  Requires n*d even, d < n.
Graph random_regular(NodeId n, std::uint32_t d, support::Rng& rng);

/// The edge probability the paper parameterizes by: p = c·ln n / n^δ.
/// δ = 1 is the Hamiltonicity threshold regime; δ = 1/2 is DHC1's regime.
double edge_probability(NodeId n, double c, double delta);

/// Cycle 0-1-…-(n-1)-0; Hamiltonian by construction.  Requires n >= 3.
Graph cycle_graph(NodeId n);

/// Complete graph K_n.
Graph complete_graph(NodeId n);

/// Star K_{1,n-1}; has no Hamiltonian cycle for n >= 4 (and n == 3 is a path).
Graph star_graph(NodeId n);

/// Path 0-1-…-(n-1); never Hamiltonian for n >= 3.
Graph path_graph(NodeId n);

/// The Petersen graph: 10 nodes, 3-regular, famously *not* Hamiltonian
/// (but traceable).  A classic verifier test fixture.
Graph petersen_graph();

/// Complete bipartite graph K_{a,b}; Hamiltonian iff a == b >= 2.
Graph complete_bipartite_graph(NodeId a, NodeId b);

/// Chung–Lu random graph [6] (paper §I: the model "used extensively to
/// model and analyze real-world networks"): edge (u, v) appears with
/// probability min(1, w_u·w_v / Σw), independently; node u's expected
/// degree is ≈ w_u.  Runs in O(n + m) expected time.
Graph chung_lu(std::span<const double> weights, support::Rng& rng);

/// Power-law weight sequence for chung_lu: w_i ∝ (i+1)^{-1/(β-1)} scaled to
/// the given average degree (β > 2 keeps the mean finite).
std::vector<double> power_law_weights(NodeId n, double beta, double average_degree);

}  // namespace dhc::graph
