#include "graph/io.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "support/require.h"

namespace dhc::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.n() << ' ' << g.m() << '\n';
  for (const auto& [u, v] : g.edges()) {
    os << u << ' ' << v << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  DHC_REQUIRE(static_cast<bool>(is >> n >> m), "edge list: missing 'n m' header");
  DHC_REQUIRE(n <= std::numeric_limits<NodeId>::max(), "edge list: n too large");
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    DHC_REQUIRE(static_cast<bool>(is >> u >> v),
                "edge list: expected " << m << " edges, got " << i);
    DHC_REQUIRE(u < n && v < n, "edge list: edge (" << u << "," << v << ") out of range");
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Graph(static_cast<NodeId>(n), edges);
}

void write_cycle(std::ostream& os, const CycleOrder& cycle) {
  os << cycle.order.size() << '\n';
  for (const NodeId v : cycle.order) os << v << '\n';
}

CycleOrder read_cycle(std::istream& is) {
  std::uint64_t n = 0;
  DHC_REQUIRE(static_cast<bool>(is >> n), "cycle: missing length header");
  CycleOrder cycle;
  cycle.order.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    DHC_REQUIRE(static_cast<bool>(is >> v), "cycle: expected " << n << " nodes, got " << i);
    cycle.order.push_back(static_cast<NodeId>(v));
  }
  return cycle;
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  DHC_REQUIRE(os.good(), "cannot open " << path << " for writing");
  write_edge_list(os, g);
  DHC_REQUIRE(os.good(), "write to " << path << " failed");
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  DHC_REQUIRE(is.good(), "cannot open " << path << " for reading");
  return read_edge_list(is);
}

}  // namespace dhc::graph
