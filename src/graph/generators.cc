#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/require.h"

namespace dhc::graph {

Graph gnp(NodeId n, double p, support::Rng& rng) {
  DHC_REQUIRE(p >= 0.0 && p <= 1.0, "gnp probability " << p << " outside [0,1]");
  std::vector<Edge> edges;
  if (p <= 0.0 || n < 2) return Graph(n, edges);
  if (p >= 1.0) return complete_graph(n);

  // Batagelj–Brandes: walk the lower-triangular pair sequence with
  // geometric skips; expected work O(n + m).
  const double log1mp = std::log1p(-p);
  edges.reserve(static_cast<std::size_t>(p * static_cast<double>(n) * (n - 1) / 2 * 1.1) + 16);
  std::uint64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::uint64_t>(n);
  while (v < nn) {
    w += 1 + static_cast<std::int64_t>(rng.geometric_skip(log1mp));
    while (w >= static_cast<std::int64_t>(v) && v < nn) {
      w -= static_cast<std::int64_t>(v);
      ++v;
    }
    if (v < nn) {
      edges.emplace_back(static_cast<NodeId>(v), static_cast<NodeId>(w));
    }
  }
  return Graph(n, edges);
}

Graph gnm(NodeId n, std::uint64_t m, support::Rng& rng) {
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  DHC_REQUIRE(m <= max_edges, "gnm: " << m << " edges exceed maximum " << max_edges);
  // Sample m distinct pair-indices, then decode index -> (u, v) in the
  // lower-triangular enumeration: index = v(v-1)/2 + u with u < v.
  std::vector<Edge> edges;
  edges.reserve(m);
  for (const std::uint64_t idx : rng.sample_distinct(max_edges, m)) {
    // v = floor((1 + sqrt(1 + 8 idx)) / 2); adjust for floating error.
    auto v = static_cast<std::uint64_t>((1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(idx))) / 2.0);
    while (v * (v - 1) / 2 > idx) --v;
    while ((v + 1) * v / 2 <= idx) ++v;
    const std::uint64_t u = idx - v * (v - 1) / 2;
    edges.emplace_back(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return Graph(n, edges);
}

Graph random_regular(NodeId n, std::uint32_t d, support::Rng& rng) {
  DHC_REQUIRE(d < n, "random_regular: degree " << d << " must be < n = " << n);
  DHC_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0, "random_regular: n*d must be even");
  if (d == 0) return Graph(n, {});

  // Configuration model with per-pair rejection: repeatedly match the first
  // remaining stub with a random other stub, rejecting self-loops and
  // duplicate edges locally.  Unlike whole-matching restarts (expected
  // e^{(d²-1)/4} attempts), this stays practical for d in the tens; a full
  // restart only happens in the rare event the tail of the pairing wedges.
  constexpr int kMaxRestarts = 1000;
  constexpr int kMaxLocalTries = 64;
  for (int attempt = 0; attempt < kMaxRestarts; ++attempt) {
    std::vector<NodeId> stubs(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t k = 0; k < d; ++k) stubs[static_cast<std::size_t>(v) * d + k] = v;
    }
    rng.shuffle(std::span<NodeId>(stubs));
    std::vector<Edge> edges;
    edges.reserve(stubs.size() / 2);
    // dhc-lint: allow(R2) -- membership-only duplicate-edge filter, never iterated; edge order comes from the seeded stub shuffle alone
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    const auto key = [](NodeId a, NodeId b) {
      return (static_cast<std::uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    };
    bool ok = true;
    while (!stubs.empty() && ok) {
      const NodeId u = stubs.back();
      stubs.pop_back();
      ok = false;
      for (int tries = 0; tries < kMaxLocalTries && !stubs.empty(); ++tries) {
        const std::size_t j = static_cast<std::size_t>(rng.below(stubs.size()));
        const NodeId v = stubs[j];
        if (v == u || seen.contains(key(u, v))) continue;
        stubs[j] = stubs.back();
        stubs.pop_back();
        seen.insert(key(u, v));
        edges.emplace_back(u, v);
        ok = true;
        break;
      }
    }
    if (ok && stubs.empty()) return Graph(n, edges);
  }
  DHC_REQUIRE(false, "random_regular: configuration model failed to converge for n="
                         << n << " d=" << d);
  return Graph(0, {});  // unreachable
}

double edge_probability(NodeId n, double c, double delta) {
  DHC_REQUIRE(n >= 2, "edge_probability needs n >= 2");
  DHC_REQUIRE(c > 0.0, "edge_probability needs c > 0");
  DHC_REQUIRE(delta > 0.0 && delta <= 1.0, "edge_probability needs delta in (0, 1]");
  const double p = c * std::log(static_cast<double>(n)) / std::pow(static_cast<double>(n), delta);
  return std::min(p, 1.0);
}

Graph cycle_graph(NodeId n) {
  DHC_REQUIRE(n >= 3, "cycle_graph needs n >= 3");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v < n; ++v) edges.emplace_back(v, static_cast<NodeId>((v + 1) % n));
  return Graph(n, edges);
}

Graph complete_graph(NodeId n) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) edges.emplace_back(u, v);
  }
  return Graph(n, edges);
}

Graph star_graph(NodeId n) {
  DHC_REQUIRE(n >= 2, "star_graph needs n >= 2");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 1; v < n; ++v) edges.emplace_back(0, v);
  return Graph(n, edges);
}

Graph path_graph(NodeId n) {
  DHC_REQUIRE(n >= 2, "path_graph needs n >= 2");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  return Graph(n, edges);
}

Graph petersen_graph() {
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i—i+5.
  std::vector<Edge> edges;
  for (NodeId i = 0; i < 5; ++i) {
    edges.emplace_back(i, (i + 1) % 5);
    edges.emplace_back(static_cast<NodeId>(i + 5), static_cast<NodeId>((i + 2) % 5 + 5));
    edges.emplace_back(i, static_cast<NodeId>(i + 5));
  }
  return Graph(10, edges);
}

Graph chung_lu(std::span<const double> weights, support::Rng& rng) {
  const auto n = static_cast<NodeId>(weights.size());
  double total = 0.0;
  for (const double w : weights) {
    DHC_REQUIRE(w >= 0.0, "chung_lu weights must be non-negative");
    total += w;
  }
  std::vector<Edge> edges;
  if (n < 2 || total <= 0.0) return Graph(n, edges);

  // Sort nodes by descending weight; then for each u, walk candidates v > u
  // with geometric skipping at rate p_max = w_u·w_v_first / total and thin
  // by the true probability — the standard O(n + m) Chung–Lu sampler
  // (Miller–Hagberg).
  std::vector<NodeId> order(n);
  for (NodeId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return weights[a] > weights[b]; });

  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const double wu = weights[order[i]];
    if (wu <= 0.0) break;
    std::size_t j = i + 1;
    double p = std::min(1.0, wu * weights[order[j]] / total);
    while (j < order.size() && p > 0.0) {
      if (p < 1.0) {
        j += static_cast<std::size_t>(rng.geometric_skip(std::log1p(-p)));
      }
      if (j >= order.size()) break;
      const double q = std::min(1.0, wu * weights[order[j]] / total);
      if (rng.uniform01() < q / p) {
        edges.emplace_back(order[i], order[j]);
      }
      p = q;
      ++j;
    }
  }
  return Graph(n, edges);
}

std::vector<double> power_law_weights(NodeId n, double beta, double average_degree) {
  DHC_REQUIRE(beta > 2.0, "power_law_weights needs beta > 2 (finite mean)");
  DHC_REQUIRE(average_degree > 0.0, "average degree must be positive");
  std::vector<double> weights(n);
  const double exponent = -1.0 / (beta - 1.0);
  double sum = 0.0;
  for (NodeId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, exponent);
    sum += weights[i];
  }
  const double scale = average_degree * static_cast<double>(n) / sum;
  for (auto& w : weights) w *= scale;
  return weights;
}

Graph complete_bipartite_graph(NodeId a, NodeId b) {
  DHC_REQUIRE(a >= 1 && b >= 1, "complete_bipartite_graph needs both sides non-empty");
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) edges.emplace_back(u, static_cast<NodeId>(a + v));
  }
  return Graph(static_cast<NodeId>(a + b), edges);
}

}  // namespace dhc::graph
