#include "graph/graph.h"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "support/require.h"

namespace dhc::graph {

namespace {

// Edges are canonicalized into packed (u << 32) | v keys, whose numeric
// order is exactly the lexicographic pair order.  Generators that emit
// edges in scan order (G(n, p) geometric skipping, collected edge lists in
// node order) pass the is_sorted check and skip sorting entirely; anything
// else gets an LSD radix sort — for the multi-million-edge lists the dense
// experiments build, that replaces the comparison sort that used to
// dominate Graph construction.
void sort_keys(std::vector<std::uint64_t>& keys, NodeId n) {
  if (keys.empty() || std::is_sorted(keys.begin(), keys.end())) return;
  // u occupies bits [32, 32 + bit_width(n-1)); v the low bits.
  const std::uint32_t key_bits =
      32 + std::max<std::uint32_t>(1, std::bit_width(std::uint64_t{n - 1}));
  constexpr std::uint32_t kDigitBits = 16;
  constexpr std::size_t kBuckets = 1u << kDigitBits;
  std::vector<std::uint64_t> scratch(keys.size());
  std::vector<std::size_t> count(kBuckets);
  for (std::uint32_t shift = 0; shift < key_bits; shift += kDigitBits) {
    std::fill(count.begin(), count.end(), 0);
    for (const auto k : keys) ++count[(k >> shift) & (kBuckets - 1)];
    std::size_t sum = 0;
    for (auto& c : count) {
      const std::size_t next = sum + c;
      c = sum;
      sum = next;
    }
    for (const auto k : keys) scratch[count[(k >> shift) & (kBuckets - 1)]++] = k;
    keys.swap(scratch);
  }
}

}  // namespace

Graph::Graph(NodeId n, const std::vector<Edge>& edges) : n_(n) {
  std::vector<std::uint64_t> keys;
  keys.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    DHC_REQUIRE(u < n && v < n, "edge (" << u << "," << v << ") outside node range [0," << n << ")");
    DHC_REQUIRE(u != v, "self-loop at node " << u);
    keys.push_back((std::uint64_t{std::min(u, v)} << 32) | std::max(u, v));
  }
  sort_keys(keys, n);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<Edge> canonical;
  canonical.reserve(keys.size());
  for (const auto k : keys) {
    canonical.emplace_back(static_cast<NodeId>(k >> 32), static_cast<NodeId>(k));
  }

  std::vector<std::uint64_t> degree(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : canonical) {
    ++degree[static_cast<std::size_t>(u) + 1];
    ++degree[static_cast<std::size_t>(v) + 1];
  }
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] = offsets_[i - 1] + degree[i];

  adjacency_.assign(offsets_[n], 0);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  // Scattering the (u, v)-sorted canonical list fills every row in sorted
  // order without a per-row sort pass: node w's lower neighbors arrive from
  // edges (u, w) in increasing u, all of which precede every edge (w, x)
  // (first component u < w), whose increasing-x order appends the higher
  // neighbors.  graph_core_test pins this invariant against a reference
  // adjacency built with std::set.
  for (const auto& [u, v] : canonical) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  DHC_REQUIRE(u < n_ && v < n_, "has_edge(" << u << "," << v << ") outside node range");
  return neighbor_rank(u, v) != kNoRank;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> to_original(nodes.begin(), nodes.end());
  std::vector<NodeId> to_new(g.n(), static_cast<NodeId>(-1));
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    const NodeId old_id = to_original[i];
    DHC_REQUIRE(old_id < g.n(), "induced_subgraph: node " << old_id << " out of range");
    DHC_REQUIRE(to_new[old_id] == static_cast<NodeId>(-1),
                "induced_subgraph: duplicate node " << old_id);
    to_new[old_id] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    for (NodeId w : g.neighbors(to_original[i])) {
      const NodeId j = to_new[w];
      if (j != static_cast<NodeId>(-1) && static_cast<NodeId>(i) < j) {
        edges.emplace_back(static_cast<NodeId>(i), j);
      }
    }
  }
  return InducedSubgraph{Graph(static_cast<NodeId>(to_original.size()), edges),
                         std::move(to_original)};
}

}  // namespace dhc::graph
