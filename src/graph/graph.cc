#include "graph/graph.h"

#include <algorithm>

#include "support/require.h"

namespace dhc::graph {

Graph::Graph(NodeId n, const std::vector<Edge>& edges) : n_(n) {
  std::vector<Edge> canonical;
  canonical.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    DHC_REQUIRE(u < n && v < n, "edge (" << u << "," << v << ") outside node range [0," << n << ")");
    DHC_REQUIRE(u != v, "self-loop at node " << u);
    canonical.emplace_back(std::min(u, v), std::max(u, v));
  }
  std::sort(canonical.begin(), canonical.end());
  canonical.erase(std::unique(canonical.begin(), canonical.end()), canonical.end());

  std::vector<std::uint64_t> degree(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [u, v] : canonical) {
    ++degree[static_cast<std::size_t>(u) + 1];
    ++degree[static_cast<std::size_t>(v) + 1];
  }
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) offsets_[i] = offsets_[i - 1] + degree[i];

  adjacency_.assign(offsets_[n], 0);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : canonical) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  // Canonical edge order already emits each node's neighbors in increasing
  // order of the *other* endpoint only for u < v halves; sort per node to
  // guarantee the invariant.
  for (NodeId v = 0; v < n; ++v) {
    std::sort(adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
              adjacency_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]));
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  DHC_REQUIRE(u < n_ && v < n_, "has_edge(" << u << "," << v << ") outside node range");
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(m());
  for (NodeId u = 0; u < n_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (NodeId v = 0; v < n_; ++v) best = std::max(best, degree(v));
  return best;
}

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<NodeId> to_original(nodes.begin(), nodes.end());
  std::vector<NodeId> to_new(g.n(), static_cast<NodeId>(-1));
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    const NodeId old_id = to_original[i];
    DHC_REQUIRE(old_id < g.n(), "induced_subgraph: node " << old_id << " out of range");
    DHC_REQUIRE(to_new[old_id] == static_cast<NodeId>(-1),
                "induced_subgraph: duplicate node " << old_id);
    to_new[old_id] = static_cast<NodeId>(i);
  }
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    for (NodeId w : g.neighbors(to_original[i])) {
      const NodeId j = to_new[w];
      if (j != static_cast<NodeId>(-1) && static_cast<NodeId>(i) < j) {
        edges.emplace_back(static_cast<NodeId>(i), j);
      }
    }
  }
  return InducedSubgraph{Graph(static_cast<NodeId>(to_original.size()), edges),
                         std::move(to_original)};
}

}  // namespace dhc::graph
