// Classic graph algorithms used by the simulator and the experiments.
//
// BFS distances back the CONGEST BFS-tree tests, the diameter routines back
// the Chung–Lu Θ(ln n / ln ln n) diameter experiment (EXP-D1) that the
// paper's round accounting leans on, and connectivity backs failure
// injection (disconnected inputs must fail gracefully, not hang).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace dhc::graph {

/// Distance label for unreachable nodes.
inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// Hop distances from `source` (kUnreachable where disconnected).
std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source);

/// Eccentricity of `source` within its component (max finite BFS distance).
std::uint32_t eccentricity(const Graph& g, NodeId source);

/// Exact diameter via all-sources BFS — O(n·m), intended for n ≲ 10⁴.
/// Returns 0 for graphs with fewer than 2 nodes; requires connectivity.
std::uint32_t exact_diameter(const Graph& g);

/// Diameter lower bound from `samples` random double-sweeps; cheap for
/// large graphs, exact on trees, a good estimate on random graphs.
std::uint32_t estimated_diameter(const Graph& g, support::Rng& rng, std::uint32_t samples = 8);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

/// Component id per node (0-based, by discovery order) and component count.
struct Components {
  std::vector<std::uint32_t> label;
  std::uint32_t count = 0;
};
Components connected_components(const Graph& g);

}  // namespace dhc::graph
