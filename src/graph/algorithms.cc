#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "support/require.h"

namespace dhc::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId source) {
  DHC_REQUIRE(source < g.n(), "bfs source " << source << " out of range");
  std::vector<std::uint32_t> dist(g.n(), kUnreachable);
  std::vector<NodeId> frontier{source};
  dist[source] = 0;
  std::uint32_t level = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (const NodeId v : frontier) {
      for (const NodeId w : g.neighbors(v)) {
        if (dist[w] == kUnreachable) {
          dist[w] = level;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::uint32_t eccentricity(const Graph& g, NodeId source) {
  std::uint32_t ecc = 0;
  for (const std::uint32_t d : bfs_distances(g, source)) {
    if (d != kUnreachable) ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t exact_diameter(const Graph& g) {
  if (g.n() < 2) return 0;
  DHC_REQUIRE(is_connected(g), "exact_diameter requires a connected graph");
  std::uint32_t diameter = 0;
  for (NodeId v = 0; v < g.n(); ++v) diameter = std::max(diameter, eccentricity(g, v));
  return diameter;
}

std::uint32_t estimated_diameter(const Graph& g, support::Rng& rng, std::uint32_t samples) {
  if (g.n() < 2) return 0;
  std::uint32_t best = 0;
  for (std::uint32_t s = 0; s < samples; ++s) {
    const auto start = static_cast<NodeId>(rng.below(g.n()));
    // Double sweep: BFS from a random node, then BFS from the farthest node.
    const auto d1 = bfs_distances(g, start);
    NodeId far = start;
    std::uint32_t far_dist = 0;
    for (NodeId v = 0; v < g.n(); ++v) {
      if (d1[v] != kUnreachable && d1[v] >= far_dist) {
        far_dist = d1[v];
        far = v;
      }
    }
    best = std::max(best, eccentricity(g, far));
  }
  return best;
}

bool is_connected(const Graph& g) {
  if (g.n() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

Components connected_components(const Graph& g) {
  Components comp;
  comp.label.assign(g.n(), kUnreachable);
  std::vector<NodeId> stack;
  for (NodeId root = 0; root < g.n(); ++root) {
    if (comp.label[root] != kUnreachable) continue;
    stack.push_back(root);
    comp.label[root] = comp.count;
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(v)) {
        if (comp.label[w] == kUnreachable) {
          comp.label[w] = comp.count;
          stack.push_back(w);
        }
      }
    }
    ++comp.count;
  }
  return comp;
}

}  // namespace dhc::graph
