#include "graph/hamiltonian.h"

#include <algorithm>
#include <sstream>

#include "support/require.h"

namespace dhc::graph {

VerifyResult verify_cycle_order(const Graph& g, const CycleOrder& cycle) {
  const auto n = static_cast<std::size_t>(g.n());
  if (n < 3) return VerifyResult::fail("graph has fewer than 3 nodes; no cycle possible");
  if (cycle.order.size() != n) {
    std::ostringstream os;
    os << "order length " << cycle.order.size() << " != n = " << n;
    return VerifyResult::fail(os.str());
  }
  std::vector<bool> seen(n, false);
  for (const NodeId v : cycle.order) {
    if (v >= g.n()) {
      std::ostringstream os;
      os << "order contains invalid node " << v;
      return VerifyResult::fail(os.str());
    }
    if (seen[v]) {
      std::ostringstream os;
      os << "node " << v << " appears twice in the order";
      return VerifyResult::fail(os.str());
    }
    seen[v] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId u = cycle.order[i];
    const NodeId v = cycle.order[(i + 1) % n];
    if (!g.has_edge(u, v)) {
      std::ostringstream os;
      os << "consecutive cycle nodes (" << u << "," << v << ") are not adjacent in the graph";
      return VerifyResult::fail(os.str());
    }
  }
  return VerifyResult::success();
}

VerifyResult verify_cycle_incidence(const Graph& g, const CycleIncidence& inc) {
  const auto n = static_cast<std::size_t>(g.n());
  if (n < 3) return VerifyResult::fail("graph has fewer than 3 nodes; no cycle possible");
  if (inc.neighbors_of.size() != n) {
    std::ostringstream os;
    os << "incidence covers " << inc.neighbors_of.size() << " nodes, expected " << n;
    return VerifyResult::fail(os.str());
  }
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto [a, b] = inc.neighbors_of[v];
    if (a >= g.n() || b >= g.n()) {
      std::ostringstream os;
      os << "node " << v << " names an out-of-range cycle neighbor";
      return VerifyResult::fail(os.str());
    }
    if (a == b) {
      std::ostringstream os;
      os << "node " << v << " names the same cycle neighbor twice (" << a << ")";
      return VerifyResult::fail(os.str());
    }
    if (a == v || b == v) {
      std::ostringstream os;
      os << "node " << v << " names itself as a cycle neighbor";
      return VerifyResult::fail(os.str());
    }
    for (const NodeId w : {a, b}) {
      if (!g.has_edge(v, w)) {
        std::ostringstream os;
        os << "claimed cycle edge (" << v << "," << w << ") is not in the graph";
        return VerifyResult::fail(os.str());
      }
      const auto& back = inc.neighbors_of[w];
      if (back[0] != v && back[1] != v) {
        std::ostringstream os;
        os << "asymmetric incidence: " << v << " names " << w << " but not vice versa";
        return VerifyResult::fail(os.str());
      }
    }
  }
  // Degree and symmetry hold; now ensure a single n-cycle (not 2+ disjoint ones).
  const auto order = order_from_incidence(inc);
  if (!order.has_value()) {
    return VerifyResult::fail("incident edges form multiple disjoint cycles, not one n-cycle");
  }
  return VerifyResult::success();
}

CycleIncidence incidence_from_order(const CycleOrder& cycle) {
  const std::size_t n = cycle.order.size();
  DHC_REQUIRE(n >= 3, "cycle must visit at least 3 nodes");
  NodeId max_id = 0;
  for (const NodeId v : cycle.order) max_id = std::max(max_id, v);
  CycleIncidence inc;
  inc.neighbors_of.assign(static_cast<std::size_t>(max_id) + 1, {0, 0});
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId prev = cycle.order[(i + n - 1) % n];
    const NodeId next = cycle.order[(i + 1) % n];
    inc.neighbors_of[cycle.order[i]] = {prev, next};
  }
  return inc;
}

std::optional<CycleOrder> order_from_incidence(const CycleIncidence& inc) {
  const std::size_t n = inc.neighbors_of.size();
  if (n < 3) return std::nullopt;
  CycleOrder cycle;
  cycle.order.reserve(n);
  NodeId prev = inc.neighbors_of[0][0];
  NodeId cur = 0;
  for (std::size_t steps = 0; steps < n; ++steps) {
    cycle.order.push_back(cur);
    const auto [a, b] = inc.neighbors_of[cur];
    if (a >= n || b >= n) return std::nullopt;
    const NodeId next = (a == prev) ? b : a;
    prev = cur;
    cur = next;
  }
  if (cur != 0) return std::nullopt;  // walk did not close after n steps
  // Closing is not enough: ensure all nodes were visited exactly once.
  std::vector<bool> seen(n, false);
  for (const NodeId v : cycle.order) {
    if (seen[v]) return std::nullopt;
    seen[v] = true;
  }
  return cycle;
}

std::vector<Edge> cycle_edges(const CycleOrder& cycle) {
  const std::size_t n = cycle.order.size();
  DHC_REQUIRE(n >= 3, "cycle must visit at least 3 nodes");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId u = cycle.order[i];
    const NodeId v = cycle.order[(i + 1) % n];
    edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  return edges;
}

}  // namespace dhc::graph
