// Hamiltonian cycle representations and verification.
//
// The paper's output convention (§I-A) is distributed: "each node will know
// which of its incident edges belong to the HC (exactly two of them)".  We
// support both that per-node incident form and the centralized visiting
// order, with checked conversions.  Every solver result in libdhc is passed
// through verify_* in tests — a cycle is never trusted, always checked
// against the input graph.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace dhc::graph {

/// A Hamiltonian cycle as a visiting order: order[0], order[1], …,
/// order[n-1], back to order[0].  Valid iff `order` is a permutation of the
/// nodes and consecutive nodes (cyclically) are adjacent in the graph.
struct CycleOrder {
  std::vector<NodeId> order;
};

/// Per-node view: the two cycle neighbors of each node (the paper's output
/// convention).  neighbors_of[v] = {predecessor, successor} in some
/// traversal direction; the pair is unordered for verification purposes.
struct CycleIncidence {
  std::vector<std::array<NodeId, 2>> neighbors_of;
};

/// Outcome of verification; `ok()` or a human-readable failure reason.
struct VerifyResult {
  std::optional<std::string> failure;
  bool ok() const { return !failure.has_value(); }
  static VerifyResult success() { return {}; }
  static VerifyResult fail(std::string reason) { return {std::move(reason)}; }
};

/// Checks that `cycle` is a Hamiltonian cycle of `g`.
VerifyResult verify_cycle_order(const Graph& g, const CycleOrder& cycle);

/// Checks the distributed form: every node names exactly two distinct cycle
/// neighbors, naming is symmetric, all named edges exist in `g`, and the
/// named edges form one cycle through all n nodes (not a union of smaller
/// cycles).
VerifyResult verify_cycle_incidence(const Graph& g, const CycleIncidence& inc);

/// Converts a visiting order to the per-node form.  Requires n >= 3.
CycleIncidence incidence_from_order(const CycleOrder& cycle);

/// Reconstructs a visiting order by walking the per-node form from node 0.
/// Returns std::nullopt when the incidence is not a single n-cycle.
std::optional<CycleOrder> order_from_incidence(const CycleIncidence& inc);

/// The n edges of the cycle in canonical form.
std::vector<Edge> cycle_edges(const CycleOrder& cycle);

}  // namespace dhc::graph
