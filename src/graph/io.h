// Plain-text graph and cycle serialization.
//
// Interop glue for a library users actually adopt: dump generated instances
// for external tools, reload recorded instances for regression tests, and
// persist solver outputs.  Format: first line "n m", then one "u v" pair
// per line (edge list); cycles are one node id per line in visiting order.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "graph/hamiltonian.h"

namespace dhc::graph {

/// Writes `g` as an edge list ("n m" header, then "u v" lines).
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses an edge list written by write_edge_list.  Throws
/// std::invalid_argument on malformed input (bad header, out-of-range ids,
/// trailing junk).
Graph read_edge_list(std::istream& is);

/// Writes a cycle as one node id per line, visiting order.
void write_cycle(std::ostream& os, const CycleOrder& cycle);

/// Parses a cycle written by write_cycle.
CycleOrder read_cycle(std::istream& is);

/// Convenience: file-path overloads (throw on I/O failure).
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace dhc::graph
