// Distributed output verification.
//
// The paper's output convention leaves each node knowing its two cycle
// edges — but a deployment should not have to trust the solver.  This
// protocol checks the claim *in the CONGEST model itself*:
//
//   1. neighbor agreement (1 round): every node tells its two claimed cycle
//      neighbors; a node whose claims are not mirrored raises an alarm;
//   2. token walk (≤ n+1 rounds): the global leader (from a BFS-tree setup)
//      launches a token along the claimed cycle carrying a hop counter; a
//      node visited twice, a dead end, or a counter mismatch at the leader
//      rejects; the token returning to the leader after exactly n hops
//      accepts;
//   3. verdict broadcast (O(depth) rounds): the leader announces the
//      verdict over the BFS tree; alarms raised in step 1 override.
//
// Total: O(n) rounds — the same order as the trivial CONGEST bound, which
// is optimal for exact verification of a single cycle by token traversal,
// and entirely bandwidth-legal.  Used by tests as an in-model cross-check
// of the offline verifier.
#pragma once

#include "congest/network.h"
#include "core/result.h"
#include "graph/graph.h"
#include "graph/hamiltonian.h"

namespace dhc::core {

struct DistributedVerifyResult {
  bool accepted = false;
  std::string reason;             // set when rejected
  congest::Metrics metrics;
};

/// Verifies `claim` against `g` in-model.  `claim.neighbors_of[v]` is what
/// node v believes its two cycle edges are (the solver output); entries may
/// be arbitrary garbage — the protocol must reject without crashing or
/// violating CONGEST.
DistributedVerifyResult run_distributed_verify(const graph::Graph& g,
                                               const graph::CycleIncidence& claim,
                                               std::uint64_t seed = 0);

}  // namespace dhc::core
