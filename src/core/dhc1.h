// DHC1 — Distributed Hamiltonian Cycle Algorithm 1 (paper §II-A, Alg. 2).
//
// The p = c·ln n / √n regime.  Phase 1 partitions the graph into K ≈ √n
// random color classes of expected size √n and runs the Distributed
// Rotation Algorithm in each (exactly DHC2's Phase 1).  Phase 2 contracts
// one cycle edge (vᵢ, uᵢ) per sub-cycle into a *hypernode* — uᵢ is the
// in-port and vᵢ = pred(uᵢ) the out-port — and runs a rotation algorithm
// over the K-node hypernode graph G′; splicing the hypernode cycle through
// every sub-cycle yields the Hamiltonian cycle of G (paper Fig. 1).
//
// Port discipline (DESIGN.md §2.1): the paper treats G′ as an undirected
// G(K, 1−(1−p)²) and runs DRA unchanged, but a hypernode must be entered
// at one port and exited at the other, and a rotation is realizable only
// when the discovered physical edge lands on the port currently facing the
// path suffix.  We therefore track ports explicitly:
//   * hypernode state lives at the *agent* (uᵢ); the partner port (vᵢ)
//     holds its own unused port-edge list and fires on request,
//   * all four port-port connector types are allowed (edge probability
//     1−(1−p)⁴ ≥ the paper's 1−(1−p)²),
//   * a rotation edge landing on the wrong port is rejected and the head
//     redraws — a constant-factor step overhead measured by EXP-A2.
// Rotation broadcasts travel the global BFS tree (2·depth settle), since
// hypernodes are scattered across the whole graph.
//
// Phase-2 sub-phases, each ending at a quiescence barrier: pick (leaders
// draw a random cycle position; that node becomes the agent), announce
// (ports introduce themselves to physical neighbors), census (convergecast
// counts live hypernodes and the minimum color — its agent seeds the hyper
// path), hyper-DRA, and assignment (ports learn their final G′ edges).
#pragma once

#include <cstdint>

#include "core/dhc2.h"
#include "core/dra.h"
#include "core/result.h"
#include "graph/graph.h"

namespace dhc::core {

struct Dhc1Config {
  /// Partition count; defaults to round(√n) per the paper.
  std::uint32_t num_colors_override = 0;

  /// Phase-2 step budget multiplier over K·ln K (wrong-port rejections
  /// roughly double the steps the plain analysis predicts).
  double hyper_step_multiplier = 32.0;

  /// Independent Phase-2 retries (hypernode rotation restarts with fresh
  /// randomness when a port starves; see DraConfig::max_attempts).
  std::uint32_t max_hyper_attempts = 8;

  DraConfig dra;

  /// Optional message tap for alternative cost models (k-machine, §IV; not
  /// owned, must outlive the run).
  congest::MessageObserver* observer = nullptr;

  /// Simulator shard count for intra-trial parallelism (0 = the DHC_SHARDS
  /// environment default; results are bitwise identical for every value —
  /// see congest::NetworkConfig::shards).
  std::uint32_t shards = 0;

  /// Optional fault plan: non-null runs the solver under the async delivery
  /// regime (--model=async; congest/fault_plan.h).  Not owned.
  const congest::FaultPlan* faults = nullptr;

  /// Optional flight-recorder sink (not owned, must outlive the run).
  congest::TraceSink* trace = nullptr;

  /// Per-node accounting mode (full vectors / streaming digests / off).
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
};

/// Runs DHC1 end to end.  On success the cycle is in per-node incident-edge
/// form; `stats` includes Phase-2 counters ("wrong_port_rejects",
/// "hyper_steps", "hyper_rotations", "live_hypernodes").
Result run_dhc1(const graph::Graph& g, std::uint64_t seed, const Dhc1Config& cfg = {});

}  // namespace dhc::core
