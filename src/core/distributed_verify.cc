#include "core/distributed_verify.h"

#include <algorithm>
#include <atomic>

#include "congest/setup.h"
#include "support/require.h"

namespace dhc::core {

using congest::Context;
using congest::kNoNode;
using congest::Message;
using congest::Network;
using graph::NodeId;

namespace {

constexpr std::uint16_t kClaim = 32;    // {other}: "you are my cycle neighbor; my other is <other>"
constexpr std::uint16_t kToken = 33;    // {hops}: cycle walk
constexpr std::uint16_t kAlarm = 34;    // {}: local inconsistency, flooded
constexpr std::uint16_t kVerdict = 35;  // {accepted}: leader's broadcast

class VerifyProtocol : public congest::Protocol {
 public:
  VerifyProtocol(NodeId n, const graph::CycleIncidence& claim)
      : n_(n), claim_(&claim), setup_(n, /*base_tag=*/1) {
    visited_.assign(n, 0);
  }

  void step(Context& ctx) override {
    const NodeId x = ctx.self();
    switch (stage_) {
      case Stage::kSetup:
        setup_.step(ctx);
        return;
      case Stage::kClaims: {
        if (stage_seen_[x] == 0) {
          stage_seen_[x] = 1;
          announce_claims(ctx);
          // Wake up next round to check mirroring even if nobody names us.
          ctx.wake_in(1);
          return;
        }
        // Second round of the stage: check mirroring.
        process_claim_replies(ctx);
        return;
      }
      case Stage::kWalk: {
        // Alarms first: once a node has seen (and forwarded) an alarm it
        // stops forwarding the token, so alarm and token never share an
        // edge in one round.
        for (const Message& msg : ctx.inbox()) {
          if (msg.tag == kAlarm && alarm_seen_[x] == 0) {
            alarm_seen_[x] = 1;
            alarm_raised_.store(true, std::memory_order_relaxed);
            const auto nb = ctx.neighbors();
            for (std::size_t i = 0; i < nb.size(); ++i) {
              if (nb[i] != msg.from) ctx.send_to_rank(i, msg);
            }
          }
        }
        for (const Message& msg : ctx.inbox()) {
          if (msg.tag == kToken && alarm_seen_[x] == 0) {
            forward_token(ctx, static_cast<std::uint64_t>(msg.data[0]), msg.from);
          }
        }
        // The leader launches the token when woken at stage start.
        if (stage_seen_[x] == 1 && setup_.is_leader(x) && alarm_seen_[x] == 0) {
          stage_seen_[x] = 2;
          launch_token(ctx);
        }
        return;
      }
      case Stage::kVerdictStage: {
        for (const Message& msg : ctx.inbox()) {
          if (msg.tag == kVerdict) {
            setup_.forward_on_tree(ctx, msg, msg.from);
          }
        }
        if (stage_seen_[x] == 2 && setup_.is_leader(x)) {
          stage_seen_[x] = 3;
          const Message verdict = Message::make(kVerdict, {accepted_ && !alarm_raised_ ? 1 : 0});
          setup_.forward_on_tree(ctx, verdict, kNoNode);
        }
        return;
      }
      case Stage::kDone:
        return;
    }
  }

  void begin(Context&) override {}

  bool on_quiescence(Network& net) override {
    switch (stage_) {
      case Stage::kSetup:
        if (!setup_started_) {
          setup_started_ = true;
          net.mark_phase("setup");
          setup_.advance(net);
          return true;
        }
        setup_.advance(net);
        if (setup_.done()) {
          stage_ = Stage::kClaims;
          net.mark_phase("claims");
          net.wake_all();
        }
        return true;
      case Stage::kClaims:
        stage_ = Stage::kWalk;
        net.mark_phase("walk");
        for (NodeId v = 0; v < n_; ++v) {
          if (setup_.is_leader(v)) net.wake(v);
          stage_seen_[v] = 1;
        }
        return true;
      case Stage::kWalk:
        stage_ = Stage::kVerdictStage;
        net.mark_phase("verdict");
        for (NodeId v = 0; v < n_; ++v) {
          if (setup_.is_leader(v)) {
            stage_seen_[v] = 2;
            net.wake(v);
          }
        }
        return true;
      case Stage::kVerdictStage:
        stage_ = Stage::kDone;
        return false;
      case Stage::kDone:
        return false;
    }
    return false;
  }

  /// Stage 1a: tell both claimed neighbors who they are to me.
  void announce_claims(Context& ctx) {
    const NodeId x = ctx.self();
    const auto [a, b] = claim_->neighbors_of[x];
    const auto nb = ctx.neighbors();
    const auto adjacent = [&](NodeId w) {
      return w < n_ && std::binary_search(nb.begin(), nb.end(), w);
    };
    if (a == b || !adjacent(a) || !adjacent(b)) {
      raise_alarm(ctx, "claimed edges invalid");
      return;
    }
    ctx.send(a, Message::make(kClaim, {b}));
    ctx.send(b, Message::make(kClaim, {a}));
  }

  /// Stage 1b: I must be named by exactly my two claimed neighbors.
  void process_claim_replies(Context& ctx) {
    const NodeId x = ctx.self();
    const auto [a, b] = claim_->neighbors_of[x];
    std::uint32_t named_by_a = 0;
    std::uint32_t named_by_b = 0;
    std::uint32_t named_by_other = 0;
    for (const Message& msg : ctx.inbox()) {
      if (msg.tag != kClaim) continue;
      if (msg.from == a) {
        ++named_by_a;
      } else if (msg.from == b) {
        ++named_by_b;
      } else {
        ++named_by_other;
      }
    }
    if (named_by_a != 1 || named_by_b != 1 || named_by_other != 0) {
      raise_alarm(ctx, "claims not mirrored");
    }
  }

  bool physically_adjacent(Context& ctx, NodeId w) const {
    const auto nb = ctx.neighbors();
    return w < n_ && std::binary_search(nb.begin(), nb.end(), w);
  }

  void launch_token(Context& ctx) {
    const NodeId x = ctx.self();
    visited_[x] = 1;
    const NodeId next = claim_->neighbors_of[x][1];
    if (!physically_adjacent(ctx, next)) {
      raise_alarm(ctx, "leader's claimed edge is not a graph edge");
      return;
    }
    ctx.send(next, Message::make(kToken, {1}));
  }

  void forward_token(Context& ctx, std::uint64_t hops, NodeId from) {
    const NodeId x = ctx.self();
    if (setup_.is_leader(x)) {
      // Token returned: accept iff it took exactly n hops.
      accepted_ = (hops == n_);
      token_done_ = true;
      return;
    }
    if (visited_[x] != 0) {
      raise_alarm(ctx, "token revisited a node");
      return;
    }
    visited_[x] = 1;
    const auto [a, b] = claim_->neighbors_of[x];
    const NodeId next = (a == from) ? b : a;
    if (hops >= n_ || !physically_adjacent(ctx, next)) {
      raise_alarm(ctx, "walk escaped the claimed cycle");
      return;
    }
    ctx.send(next, Message::make(kToken, {static_cast<std::int64_t>(hops + 1)}));
  }

  void raise_alarm(Context& ctx, const char* why) {
    const NodeId x = ctx.self();
    alarm_raised_ = true;
    // Record the node's first local reason; the run-level reason is reduced
    // after the run as the earliest (round, node) record — the same answer
    // the old shared first-write-wins string produced under sequential
    // stepping, but free of cross-node writes in sharded rounds.
    if (reason_round_[x] == kNoReason) {
      reason_round_[x] = ctx.round();
      reason_of_[x] = why;
    }
    if (alarm_seen_[x] != 0) return;  // an alarm already passed through here
    alarm_seen_[x] = 1;
    const Message msg = Message::make(kAlarm);
    const std::size_t degree = ctx.degree();
    for (std::size_t i = 0; i < degree; ++i) ctx.send_to_rank(i, msg);
  }

  /// Earliest alarm reason by (round, node id) — the sequential first-wins
  /// order.  Empty when no node alarmed.
  std::string first_reason() const {
    std::uint64_t best_round = kNoReason;
    const char* best = nullptr;
    for (NodeId v = 0; v < n_; ++v) {
      if (reason_round_[v] < best_round) {
        best_round = reason_round_[v];
        best = reason_of_[v];
      }
    }
    return best == nullptr ? std::string() : std::string(best);
  }

  static constexpr std::uint64_t kNoReason = static_cast<std::uint64_t>(-1);

  enum class Stage : std::uint8_t { kSetup, kClaims, kWalk, kVerdictStage, kDone };

  NodeId n_;
  const graph::CycleIncidence* claim_;
  congest::SetupComponent setup_;
  Stage stage_ = Stage::kSetup;
  bool setup_started_ = false;
  bool accepted_ = false;    // leader-only writer
  bool token_done_ = false;  // leader-only writer
  std::atomic<bool> alarm_raised_{false};  // same-value stores from many nodes
  std::vector<std::uint8_t> stage_seen_ = std::vector<std::uint8_t>(n_, 0);
  std::vector<std::uint8_t> alarm_seen_ = std::vector<std::uint8_t>(n_, 0);
  std::vector<std::uint8_t> visited_;
  std::vector<std::uint64_t> reason_round_ = std::vector<std::uint64_t>(n_, kNoReason);
  std::vector<const char*> reason_of_ = std::vector<const char*>(n_, nullptr);
};

}  // namespace

DistributedVerifyResult run_distributed_verify(const graph::Graph& g,
                                               const graph::CycleIncidence& claim,
                                               std::uint64_t seed) {
  DistributedVerifyResult out;
  if (g.n() < 3) {
    out.reason = "graph has fewer than 3 nodes";
    return out;
  }
  if (claim.neighbors_of.size() != g.n()) {
    out.reason = "claim does not cover every node";
    return out;
  }
  congest::NetworkConfig cfg;
  cfg.seed = seed;
  congest::Network net(g, cfg);
  VerifyProtocol protocol(g.n(), claim);
  out.metrics = net.run(protocol);
  if (protocol.alarm_raised_) {
    out.accepted = false;
    const std::string why = protocol.first_reason();
    out.reason = why.empty() ? "alarm raised" : why;
    return out;
  }
  if (!protocol.token_done_ || !protocol.accepted_) {
    out.accepted = false;
    out.reason = protocol.token_done_ ? "token hop count mismatch" : "token never returned";
    return out;
  }
  out.accepted = true;
  return out;
}

}  // namespace dhc::core
