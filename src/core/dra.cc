#include "core/dra.h"

#include <algorithm>
#include <cmath>

#include "support/require.h"

namespace dhc::core {

using congest::Context;
using congest::Message;
using congest::Network;

DraComponent::DraComponent(NodeId n, std::uint16_t base_tag, const congest::SetupComponent* setup,
                           DraConfig cfg)
    : n_(n), base_tag_(base_tag), setup_(setup), cfg_(cfg) {
  DHC_REQUIRE(setup != nullptr, "DraComponent needs a SetupComponent");
  flags_.assign(n, 0);
  unused_len_.assign(n, 0);
  cycindex_.assign(n, 0);
  pred_.assign(n, kNoNode);
  succ_.assign(n, kNoNode);
  pending_target_.assign(n, kNoNode);
  my_steps_.assign(n, 0);
  last_seq_.assign(n, 0);
  attempt_.assign(n, 0);
  attempt_start_steps_.assign(n, 0);
}

void DraComponent::start(Network& net) {
  DHC_CHECK(setup_->done(), "DraComponent started before setup finished");
  // Size the unused-edge slab exactly: one prefix-sum pass over the
  // same-partition adjacency, then a single arena allocation replaces the
  // former n per-node vectors.  start() runs serially (before any sharded
  // step), and each node later fills only its own disjoint slice.
  const graph::Graph& g = net.graph();
  DHC_CHECK(g.adjacency().size() < std::uint64_t{1} << 32,
            "unused-edge slab offsets are u32; graph too large");
  slab_base_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (NodeId v = 0; v < n_; ++v) {
    std::uint32_t cnt = 0;
    for (const NodeId w : g.neighbors(v)) {
      if (setup_->same_group(v, w)) ++cnt;
    }
    slab_base_[v + 1] = slab_base_[v] + cnt;
  }
  unused_slab_ = arena_.alloc_array<NodeId>(slab_base_[n_]);
  for (NodeId v = 0; v < n_; ++v) {
    if (setup_->is_leader(v)) net.wake(v);
  }
}

std::uint64_t DraComponent::settle_delay(NodeId v) const {
  return 2ULL * setup_->tree_depth(v) + 2;
}

std::uint64_t DraComponent::step_budget(NodeId v) const {
  const double s = std::max<double>(setup_->component_size(v), 3.0);
  return static_cast<std::uint64_t>(cfg_.step_multiplier * s * std::log(s)) + 16;
}

std::uint32_t DraComponent::refill_unused(Context& ctx) {
  const NodeId v = ctx.self();
  NodeId* slot = unused_slab_.data() + slab_base_[v];
  std::uint32_t len = 0;
  for (const NodeId w : ctx.neighbors()) {
    if (setup_->same_group(v, w)) slot[len++] = w;
  }
  unused_len_[v] = len;
  return len;
}

void DraComponent::ensure_init(Context& ctx) {
  const NodeId v = ctx.self();
  if ((flags_[v] & kInited) != 0) return;
  flags_[v] |= kInited;
  // Paper Alg. 1 line 3: the per-node unused edge list, one word per entry.
  ctx.charge_memory(static_cast<std::int64_t>(refill_unused(ctx)));
}

void DraComponent::remove_unused(NodeId v, NodeId w) {
  NodeId* list = unused_slab_.data() + slab_base_[v];
  std::uint32_t& len = unused_len_[v];
  for (std::uint32_t i = 0; i < len; ++i) {
    if (list[i] == w) {
      list[i] = list[len - 1];
      --len;
      return;
    }
  }
}

void DraComponent::broadcast(Context& ctx, const Message& msg, NodeId exclude) {
  const NodeId v = ctx.self();
  if (cfg_.broadcast == BroadcastMode::kTree) {
    setup_->forward_on_tree(ctx, msg, exclude);
  } else {
    const auto nb = ctx.neighbors();
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const NodeId w = nb[i];
      if (w != exclude && setup_->same_group(v, w)) ctx.send_to_rank(i, msg);
    }
  }
}

void DraComponent::finish_node(Context& ctx, bool succeeded) {
  const NodeId v = ctx.self();
  if ((flags_[v] & kDone) != 0) return;
  flags_[v] |= kDone;
  if (succeeded) flags_[v] |= kSuccess;
  ++done_count_;
  if (setup_->is_leader(v)) {
    if (succeeded) {
      ++succeeded_groups_;
    } else {
      ++aborted_groups_;
    }
    max_group_steps_.update_max(my_steps_[v]);
  }
  (void)ctx;
}

void DraComponent::step(Context& ctx) {
  const NodeId v = ctx.self();
  ensure_init(ctx);

  // Leader bootstrap: the partition leader is the initial head (Alg. 1
  // line 5: "only one v becomes head, v.cycindex ← 1").
  if (cycindex_[v] == 0 && (flags_[v] & kDone) == 0 && setup_->is_leader(v) &&
      ctx.inbox().empty()) {
    if (setup_->component_size(v) < 3) {
      // A cycle needs at least 3 nodes; tiny or fragmented partitions abort.
      my_steps_[v] = 0;
      ++tiny_aborts_;
      abort_group(ctx);
      return;
    }
    cycindex_[v] = 1;
    flags_[v] |= kIsHead;
    act_as_head(ctx);
    return;
  }

  for (const Message& msg : ctx.inbox()) {
    if (msg.tag == tag_progress()) {
      on_progress(ctx, msg);
    } else if (msg.tag == tag_rotation()) {
      const auto seq = static_cast<std::uint64_t>(msg.data[3]);
      if ((flags_[v] & kDone) != 0 || seq <= last_seq_[v]) continue;
      last_seq_[v] = seq;
      broadcast(ctx, msg, msg.from);
      apply_rotation(ctx, msg);
    } else if (msg.tag == tag_success() || msg.tag == tag_abort()) {
      const auto seq = static_cast<std::uint64_t>(msg.data[0]);
      if ((flags_[v] & kDone) != 0 || seq <= last_seq_[v]) continue;
      last_seq_[v] = seq;
      broadcast(ctx, msg, msg.from);
      finish_node(ctx, msg.tag == tag_success());
    } else if (msg.tag == tag_restart()) {
      const auto seq = static_cast<std::uint64_t>(msg.data[0]);
      if ((flags_[v] & kDone) != 0 || seq <= last_seq_[v]) continue;
      last_seq_[v] = seq;
      broadcast(ctx, msg, msg.from);
      reset_for_attempt(ctx);
    }
  }

  // A head woken by its post-rotation settle timer acts now.
  if ((flags_[v] & (kIsHead | kDone)) == kIsHead && ctx.inbox().empty() && cycindex_[v] != 0 &&
      succ_[v] == kNoNode) {
    act_as_head(ctx);
  }
}

void DraComponent::act_as_head(Context& ctx) {
  const NodeId v = ctx.self();
  if (my_steps_[v] - attempt_start_steps_[v] >= step_budget(v)) {
    ++budget_aborts_;
    abort_or_restart(ctx);  // event E1: step budget exhausted
    return;
  }
  std::span<NodeId> list = unused_list(v);
  if (list.empty()) {
    ++starved_aborts_;
    abort_or_restart(ctx);  // event E2: head starved
    return;
  }
  const std::size_t idx = static_cast<std::size_t>(ctx.rng().below(list.size()));
  const NodeId target = list[idx];
  list[idx] = list[list.size() - 1];
  --unused_len_[v];
  ctx.charge_memory(-1);
  ctx.charge_compute(1);

  my_steps_[v] += 1;
  pending_target_[v] = target;
  // Optimistic: on extension or closure `target` is this node's path
  // successor; a rotation overwrites it when it applies (head_id == self).
  succ_[v] = target;
  ctx.send(target, Message::make(tag_progress(),
                                 {cycindex_[v], static_cast<std::int64_t>(my_steps_[v])}));
}

void DraComponent::abort_or_restart(Context& ctx) {
  const NodeId v = ctx.self();
  if (attempt_[v] + 1 >= cfg_.max_attempts) {
    abort_group(ctx);
    return;
  }
  // Restart the partition with fresh randomness: broadcast a restart, reset
  // locally; the leader re-bootstraps after the broadcast settles.
  ++restarts_;
  const std::uint64_t seq = my_steps_[v] + 1;
  last_seq_[v] = seq;
  broadcast(ctx, Message::make(tag_restart(), {static_cast<std::int64_t>(seq)}), kNoNode);
  my_steps_[v] = seq;
  reset_for_attempt(ctx);
}

void DraComponent::reset_for_attempt(Context& ctx) {
  const NodeId v = ctx.self();
  attempt_[v] += 1;
  // Step counters stay monotonic across attempts — they double as broadcast
  // sequence numbers, so resetting them would break flood deduplication.
  my_steps_[v] = std::max(my_steps_[v], last_seq_[v]);
  attempt_start_steps_[v] = my_steps_[v];
  cycindex_[v] = 0;
  pred_[v] = kNoNode;
  succ_[v] = kNoNode;
  pending_target_[v] = kNoNode;
  flags_[v] &= static_cast<std::uint8_t>(~kIsHead);
  const auto old_size = static_cast<std::int64_t>(unused_len_[v]);
  ctx.charge_memory(static_cast<std::int64_t>(refill_unused(ctx)) - old_size);
  if (setup_->is_leader(v)) ctx.wake_in(settle_delay(v));
}

void DraComponent::abort_group(Context& ctx) {
  const NodeId v = ctx.self();
  const auto seq = static_cast<std::int64_t>(my_steps_[v] + 1);
  last_seq_[v] = my_steps_[v] + 1;
  broadcast(ctx, Message::make(tag_abort(), {seq}), kNoNode);
  finish_node(ctx, /*succeeded=*/false);
}

void DraComponent::on_progress(Context& ctx, const Message& msg) {
  const NodeId v = ctx.self();
  if ((flags_[v] & kDone) != 0) return;
  const auto pos = static_cast<std::uint32_t>(msg.data[0]);
  const auto steps = static_cast<std::uint64_t>(msg.data[1]);
  remove_unused(v, msg.from);  // Alg. 1 line 13
  ctx.charge_memory(-1);
  ctx.charge_compute(1);
  my_steps_[v] = steps;

  if (cycindex_[v] == 0) {
    // First visit: join the path and become head (Alg. 1 lines 14–15).
    cycindex_[v] = pos + 1;
    pred_[v] = msg.from;
    succ_[v] = kNoNode;
    flags_[v] |= kIsHead;
    ++extensions_;
    act_as_head(ctx);
    return;
  }
  if (pos == setup_->component_size(v) && cycindex_[v] == 1) {
    // The path spans the partition and the head reached v1: cycle closed
    // (Alg. 1 line 12).
    pred_[v] = msg.from;
    const auto seq = static_cast<std::int64_t>(steps + 1);
    last_seq_[v] = steps + 1;
    broadcast(ctx, Message::make(tag_success(), {seq}), kNoNode);
    finish_node(ctx, /*succeeded=*/true);
    return;
  }
  // Already on the path: rotate (Alg. 1 lines 16–17).  This node is v_j;
  // its new path successor is the old head.
  ++rotations_;
  succ_[v] = msg.from;
  last_seq_[v] = steps;
  const Message rot = Message::make(
      tag_rotation(), {pos, cycindex_[v], msg.from, static_cast<std::int64_t>(steps)});
  broadcast(ctx, rot, kNoNode);
}

void DraComponent::apply_rotation(Context& ctx, const Message& msg) {
  const NodeId v = ctx.self();
  const auto h = static_cast<std::uint32_t>(msg.data[0]);
  const auto j = static_cast<std::uint32_t>(msg.data[1]);
  const auto head_id = static_cast<NodeId>(msg.data[2]);
  const auto seq = static_cast<std::uint64_t>(msg.data[3]);

  const std::uint32_t i = cycindex_[v];
  if (i <= j || i > h) return;  // outside the reversed segment

  // Renumber (Alg. 1 lines 19–20) and flip path orientation.
  cycindex_[v] = h + j + 1 - i;
  std::swap(pred_[v], succ_[v]);
  ctx.charge_compute(1);
  if (head_id == v) {
    // The old head's new predecessor is the node it hit (v_j).
    pred_[v] = pending_target_[v];
  }
  if (cycindex_[v] == h) {
    // New head (Alg. 1 lines 21–22): wait out the broadcast, then act.
    succ_[v] = kNoNode;
    flags_[v] |= kIsHead;
    my_steps_[v] = seq;
    ctx.wake_in(settle_delay(v));
  } else {
    flags_[v] &= static_cast<std::uint8_t>(~kIsHead);
  }
}

graph::CycleIncidence DraComponent::incidence() const {
  graph::CycleIncidence inc;
  inc.neighbors_of.resize(n_);
  for (NodeId v = 0; v < n_; ++v) {
    inc.neighbors_of[v] = {pred_[v], succ_[v]};
  }
  return inc;
}

// ---------------------------------------------------------------------------
// Standalone runner
// ---------------------------------------------------------------------------

namespace {

class StandaloneDraProtocol : public congest::Protocol {
 public:
  StandaloneDraProtocol(NodeId n, const DraConfig& cfg)
      : setup(n, /*base_tag=*/1), dra(n, /*base_tag=*/16, &setup, cfg) {}

  void begin(Context&) override {}

  void step(Context& ctx) override {
    if (!setup.done()) {
      setup.step(ctx);
    } else {
      dra.step(ctx);
    }
  }

  bool on_quiescence(Network& net) override {
    if (!setup.done()) {
      setup.advance(net);
      if (setup.done()) {
        net.mark_phase("dra");
        net.set_barrier_cost(2 * setup.tree_depth(0) + 2);
        dra.start(net);
      }
      return true;
    }
    return false;  // DRA self-paces; quiescence after it means done
  }

  congest::SetupComponent setup;
  DraComponent dra;
};

}  // namespace

Result run_dra(const graph::Graph& g, std::uint64_t seed, const DraConfig& cfg) {
  Result result;
  if (g.n() < 3) {
    result.failure_reason = "graph has fewer than 3 nodes";
    return result;
  }
  congest::NetworkConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.observer = cfg.observer;
  net_cfg.shards = cfg.shards;
  net_cfg.trace = cfg.trace;
  net_cfg.node_stats = cfg.node_stats;
  net_cfg.faults = cfg.faults;
  congest::Network net(g, net_cfg);
  StandaloneDraProtocol protocol(g.n(), cfg);
  result.metrics = net.run(protocol);

  result.stats["steps"] = static_cast<double>(protocol.dra.max_group_steps());
  result.stats["extensions"] = static_cast<double>(protocol.dra.total_extensions());
  result.stats["rotations"] = static_cast<double>(protocol.dra.total_rotations());
  result.stats["restarts"] = static_cast<double>(protocol.dra.restarts());
  result.stats["tree_depth"] = static_cast<double>(protocol.setup.tree_depth(0));

  if (result.metrics.hit_round_limit) {
    result.failure_reason = "round limit exceeded";
    return result;
  }
  if (!protocol.dra.all_succeeded()) {
    result.failure_reason = "rotation head aborted (starved or budget exhausted)";
    return result;
  }
  result.success = true;
  result.cycle = protocol.dra.incidence();
  return result;
}

}  // namespace dhc::core
