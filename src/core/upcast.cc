#include "core/upcast.h"

#include <cmath>
#include <optional>

#include "congest/network.h"
#include "congest/setup.h"
#include "support/atomic_stats.h"
#include "support/flat_queue.h"
#include "support/require.h"

namespace dhc::core {

using congest::Context;
using congest::kNoNode;
using congest::Message;
using congest::Network;
using graph::NodeId;

namespace {

constexpr std::uint16_t kRecord = 32;  // {u, w}: sampled edge (u, w), origin u
constexpr std::uint16_t kDown = 33;    // {w, pred, succ}: w's cycle edges

class UpcastProtocol : public congest::Protocol {
 public:
  UpcastProtocol(NodeId n, const UpcastConfig& cfg)
      : n_(n), cfg_(cfg), setup_(n, /*base_tag=*/1) {
    up_queue_.resize(n);
    down_queue_.resize(n);
    route_.resize(n);
    child_used_stamp_.assign(n, 0);
    pump_stamp_.assign(n, 0);
    incidence_.neighbors_of.assign(n, {kNoNode, kNoNode});
  }

  void begin(Context&) override {}

  void step(Context& ctx) override {
    const NodeId x = ctx.self();
    switch (stage_) {
      case Stage::kSetup:
        setup_.step(ctx);
        return;
      case Stage::kUpcast: {
        if (stage_seen_[x] != 1) {
          stage_seen_[x] = 1;
          sample_edges(ctx);
        }
        for (const Message& msg : ctx.inbox()) {
          if (msg.tag != kRecord) continue;
          const auto u = static_cast<NodeId>(msg.data[0]);
          const auto w = static_cast<NodeId>(msg.data[1]);
          // Remember which child leads to origin u (downcast routing).  The
          // table is a flat per-node array: every relayed record probes it
          // once, and the old per-node hash maps paid a hashed insert per
          // probe (tens of millions per collect-all run).
          if (route_entry(x, u) == kNoNode) {
            route_entry(x, u) = msg.from;
            ctx.charge_memory(2);
          }
          if (setup_.parent(x) == kNoNode) {
            root_edges_.emplace_back(std::min(u, w), std::max(u, w));
            ctx.charge_memory(2);
          } else {
            up_queue_[x].emplace_back(u, w);
            ctx.charge_memory(2);
          }
        }
        pump_up(ctx);
        return;
      }
      case Stage::kSolve: {
        if (setup_.parent(x) == kNoNode) root_solve(ctx);
        return;
      }
      case Stage::kDowncast: {
        for (const Message& msg : ctx.inbox()) {
          if (msg.tag != kDown) continue;
          const auto w = static_cast<NodeId>(msg.data[0]);
          if (w == x) {
            incidence_.neighbors_of[x] = {static_cast<NodeId>(msg.data[1]),
                                          static_cast<NodeId>(msg.data[2])};
          } else {
            down_queue_[x].emplace_back(
                std::array<std::int64_t, 3>{msg.data[0], msg.data[1], msg.data[2]});
            ctx.charge_memory(3);
          }
        }
        pump_down(ctx);
        return;
      }
      case Stage::kInit:
      case Stage::kDone:
        return;
    }
  }

  bool on_quiescence(Network& net) override {
    switch (stage_) {
      case Stage::kInit:
        stage_ = Stage::kSetup;
        net.mark_phase("setup");
        setup_.advance(net);
        return true;
      case Stage::kSetup:
        setup_.advance(net);
        if (setup_.done()) {
          net.set_barrier_cost(2ULL * setup_.tree_depth(0) + 2);
          stage_ = Stage::kUpcast;
          net.mark_phase("upcast");
          net.wake_all();
        }
        return true;
      case Stage::kUpcast: {
        stage_ = Stage::kSolve;
        net.mark_phase("solve");
        // Wake the root (the global leader, node with min id = leader(0)).
        net.wake(setup_.leader(0));
        return true;
      }
      case Stage::kSolve:
        if (!failure_.empty()) {
          stage_ = Stage::kDone;
          return false;
        }
        stage_ = Stage::kDowncast;
        net.mark_phase("downcast");
        net.wake(setup_.leader(0));
        return true;
      case Stage::kDowncast:
        stage_ = Stage::kDone;
        return false;
      case Stage::kDone:
        return false;
    }
    return false;
  }

  /// Paper step 3: sample c′·log n incident edges, independently at random.
  void sample_edges(Context& ctx) {
    const NodeId x = ctx.self();
    const auto nb = ctx.neighbors();
    std::vector<std::uint64_t> chosen;
    if (cfg_.collect_all) {
      chosen.resize(nb.size());
      for (std::size_t i = 0; i < nb.size(); ++i) chosen[i] = i;
    } else {
      const auto want = static_cast<std::uint64_t>(
          std::ceil(cfg_.sample_c * std::log(std::max<double>(n_, 2.0))));
      const auto k = std::min<std::uint64_t>(want, nb.size());
      if (k == 0) return;
      chosen = ctx.rng().sample_distinct(nb.size(), k);
    }
    sampled_ += chosen.size();
    if (setup_.parent(x) == kNoNode) {
      for (const auto i : chosen) {
        const NodeId w = nb[static_cast<std::size_t>(i)];
        root_edges_.emplace_back(std::min(x, w), std::max(x, w));
      }
      ctx.charge_memory(static_cast<std::int64_t>(2 * chosen.size()));
    } else {
      for (const auto i : chosen) {
        up_queue_[x].emplace_back(x, nb[static_cast<std::size_t>(i)]);
      }
      ctx.charge_memory(static_cast<std::int64_t>(2 * chosen.size()));
      // The caller's step() pumps the first record this same round.
    }
  }

  /// One record per round toward the parent (CONGEST pipelining).
  void pump_up(Context& ctx) {
    const NodeId x = ctx.self();
    auto& q = up_queue_[x];
    if (q.empty() || setup_.parent(x) == kNoNode) return;
    const auto [u, w] = q.front();
    q.pop_front();
    ctx.charge_memory(-2);
    setup_.send_to_parent(ctx, Message::make(kRecord, {u, w}));
    if (!q.empty()) ctx.wake_in(1);
  }

  void root_solve(Context& ctx) {
    const NodeId x = ctx.self();
    graph::Graph sampled(n_, root_edges_);
    RotationResult solved = rotation_hamiltonian_cycle(sampled, ctx.rng(), cfg_.root_solver);
    ctx.charge_compute(solved.stats.steps);
    root_solve_steps_ = solved.stats.steps;
    if (!solved.success) {
      failure_ = "root failed to find a Hamiltonian cycle in the sampled graph: " +
                 solved.failure_reason;
      return;
    }
    // Queue each node's cycle edges for targeted downcast.
    const auto inc = graph::incidence_from_order(solved.cycle);
    for (NodeId w = 0; w < n_; ++w) {
      const auto [a, b] = inc.neighbors_of[w];
      if (w == x) {
        incidence_.neighbors_of[x] = {a, b};
      } else {
        down_queue_[x].push_back({w, a, b});
        ctx.charge_memory(3);
      }
    }
  }

  /// One record per round per child edge, routed by origin.
  void pump_down(Context& ctx) {
    const NodeId x = ctx.self();
    auto& q = down_queue_[x];
    if (q.empty()) return;
    // Per-child budget this round: scan the queue, send at most one record
    // to each child, keep the rest.  child_used_stamp_ marks children used
    // in this pass — each slot belongs to exactly one tree parent, so the
    // stamp sequence is per-parent (pump_stamp_[x]) and pumping nodes in
    // parallel shards never touch each other's slots.  Unsent records are
    // compacted in order in place — no scratch buffer, so nothing can
    // persist on a reused pool thread between trials.
    const std::uint64_t stamp = ++pump_stamp_[x];
    q.retain([&](const std::array<std::int64_t, 3>& rec) {
      const auto w = static_cast<NodeId>(rec[0]);
      const NodeId child = route_entry(x, w);
      if (child == kNoNode) {
        // No route: the target never upcast anything (disconnected input);
        // drop the record — verification will fail cleanly.
        ctx.charge_memory(-3);
        return false;
      }
      if (child_used_stamp_[child] == stamp) return true;
      child_used_stamp_[child] = stamp;
      ctx.charge_memory(-3);
      ctx.send(child, Message::make(kDown, {rec[0], rec[1], rec[2]}));
      return false;
    });
    if (!q.empty()) ctx.wake_in(1);
  }

  enum class Stage : std::uint8_t { kInit, kSetup, kUpcast, kSolve, kDowncast, kDone };

  /// route_[x·n + u] = the child of x on the path to origin u (kNoNode when
  /// unknown).  Flat n×n array, allocated lazily per node via route rows —
  /// see route_entry(); total footprint n²·4 bytes only if every node routes.
  NodeId& route_entry(NodeId x, NodeId u) {
    auto& row = route_[x];
    if (row.empty()) row.assign(n_, kNoNode);
    return row[u];
  }

  NodeId n_;
  UpcastConfig cfg_;
  congest::SetupComponent setup_;
  Stage stage_ = Stage::kInit;
  std::string failure_;
  std::vector<std::uint8_t> stage_seen_ = std::vector<std::uint8_t>(n_, 0);
  std::vector<support::FlatQueue<std::pair<NodeId, NodeId>>> up_queue_;
  std::vector<support::FlatQueue<std::array<std::int64_t, 3>>> down_queue_;
  std::vector<std::vector<NodeId>> route_;  // per node: origin -> child rows
  std::vector<std::uint64_t> child_used_stamp_;  // per child slot; written by its parent only
  std::vector<std::uint64_t> pump_stamp_;        // per pumping parent
  std::vector<graph::Edge> root_edges_;
  graph::CycleIncidence incidence_;
  support::ShardCounter<std::uint64_t> sampled_ = 0;  // bumped from sharded steps
  std::uint64_t root_solve_steps_ = 0;  // root-only writer
};

}  // namespace

Result run_upcast(const graph::Graph& g, std::uint64_t seed, const UpcastConfig& cfg) {
  Result result;
  if (g.n() < 3) {
    result.failure_reason = "graph has fewer than 3 nodes";
    return result;
  }
  congest::NetworkConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.observer = cfg.observer;
  net_cfg.shards = cfg.shards;
  net_cfg.trace = cfg.trace;
  net_cfg.node_stats = cfg.node_stats;
  net_cfg.faults = cfg.faults;
  congest::Network net(g, net_cfg);
  UpcastProtocol protocol(g.n(), cfg);
  result.metrics = net.run(protocol);

  result.stats["sampled_edges"] = static_cast<double>(protocol.sampled_);
  result.stats["root_edges"] = static_cast<double>(protocol.root_edges_.size());
  result.stats["root_solve_steps"] = static_cast<double>(protocol.root_solve_steps_);
  result.stats["tree_depth"] = static_cast<double>(protocol.setup_.tree_depth(0));

  if (result.metrics.hit_round_limit) {
    result.failure_reason = "round limit exceeded";
    return result;
  }
  if (!protocol.failure_.empty()) {
    result.failure_reason = protocol.failure_;
    return result;
  }
  result.cycle = protocol.incidence_;
  const auto verdict = graph::verify_cycle_incidence(g, result.cycle);
  if (!verdict.ok()) {
    result.failure_reason = "final cycle invalid: " + *verdict.failure;
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace dhc::core
