// DHC2 — Distributed Hamiltonian Cycle Algorithm 2 (paper §II-B, Alg. 3).
//
// Works on G(n, p) with p = c·ln n / n^δ for any δ ∈ (0, 1]:
//
//  Phase 1  Every node draws a uniform color in [1..K], K ≈ n^{1−δ}; each
//           color class (expected size n^δ, concentrated by Lemma 7) runs
//           the Distributed Rotation Algorithm in parallel and produces a
//           sub-Hamiltonian-cycle.
//
//  Phase 2  ⌈log₂ K⌉ merge levels (Fig. 3): at each level cycles with
//           consecutive colors (odd c, c+1) merge over a *bridge* — cycle
//           edges (v, succ v) ∈ C_i and (u, u′) ∈ C_j joined by physical
//           edges (v, u) and (succ v, u′).  Discovery: active nodes send
//           verify(succ v) to color-(c+1) neighbors; a passive u asks its
//           cycle neighbors whether they see succ v (Alg. 3 lines 14–16);
//           confirmed bridges flow back to v and the minimum candidate is
//           agreed by improvement-flooding inside C_i.  The winner builds
//           the bridge and both cycles renumber via two floods — every node
//           recomputes its index locally from (t, q_u, side, sizes), the
//           distributed analogue of the paper's "trivial renumbering".
//           Colors halve (color ← ⌈color/2⌉) and the next level begins.
//
// Model notes (see DESIGN.md §2): verify bursts serialize on cycle edges in
// the CONGEST model, which the paper's constant-round-merge accounting
// glosses over.  MergeStrategy::kMinForward checks only each passive node's
// minimum candidate (constant rounds per merge, the cost Theorem 10
// assumes); kFullQueue serializes the full queue (the literal Alg. 3,
// stronger success probability, Θ(p·|C|) rounds at late levels).  EXP-A3
// measures the gap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "congest/network.h"
#include "congest/setup.h"
#include "core/dra.h"
#include "core/result.h"
#include "support/atomic_stats.h"
#include "support/flat_queue.h"
#include "graph/graph.h"

namespace dhc::core {

enum class MergeStrategy : std::uint8_t { kMinForward, kFullQueue };

struct Dhc2Config {
  /// Density exponent δ: the graph is expected to have p ≈ c·ln n / n^δ.
  /// Partitions number K ≈ n^{1−δ}.  δ = 1 means a single partition (pure
  /// DRA); δ = 0.5 reproduces DHC1's Phase-1 geometry.
  double delta = 0.5;

  /// Overrides the partition count when nonzero (used by tests/ablations).
  std::uint32_t num_colors_override = 0;

  MergeStrategy merge_strategy = MergeStrategy::kMinForward;
  DraConfig dra;

  /// Optional message tap for alternative cost models (k-machine, §IV).
  congest::MessageObserver* observer = nullptr;

  /// Simulator shard count for intra-trial parallelism (0 = the DHC_SHARDS
  /// environment default; results are bitwise identical for every value —
  /// see congest::NetworkConfig::shards).
  std::uint32_t shards = 0;

  /// Optional fault plan: non-null runs the solver under the async delivery
  /// regime (--model=async; congest/fault_plan.h).  Not owned.
  const congest::FaultPlan* faults = nullptr;

  /// Optional flight-recorder sink (not owned, must outlive the run).
  congest::TraceSink* trace = nullptr;

  /// Per-node accounting mode (full vectors / streaming digests / off).
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
};

/// The Phase-2 merge engine; embedded in the DHC2 protocol and driven
/// through (discovery, build) sub-phase pairs per level.
class MergeEngine {
 public:
  /// `setup` groups must hold color0-1 per node; `dra` must be finished and
  /// fully successful.  Uses message tags base_tag..base_tag+10.
  MergeEngine(NodeId n, std::uint16_t base_tag, const congest::SetupComponent* setup,
              const DraComponent* dra, std::uint32_t num_colors, MergeStrategy strategy);

  std::uint32_t total_levels() const { return total_levels_; }
  std::uint32_t levels_started() const { return levels_started_; }
  bool levels_remaining() const { return levels_started_ < total_levels_; }

  /// Starts the next level's discovery sub-phase (wakes everyone).
  void start_level(congest::Network& net);

  /// Starts the current level's build sub-phase (wakes everyone).
  void start_build(congest::Network& net);

  void step(congest::Context& ctx);

  /// Final per-node incidence after all levels (paper output convention).
  graph::CycleIncidence incidence() const;

  /// True when node 0's cycle spans all n nodes (cheap final sanity check;
  /// callers still run the full verifier).
  bool spanning_cycle_claimed() const { return csize_[0] == n_; }

  std::uint64_t bridges_built() const { return bridges_built_; }
  std::uint64_t candidates_found() const { return candidates_found_; }
  std::uint64_t verify_messages() const { return verify_messages_; }

  /// Per-level breakdown (index 0 = first merge level; Fig. 3 / EXP-L8).
  /// Materialized from the atomic tallies; one entry per started level.
  std::vector<std::uint64_t> bridges_per_level() const {
    return {bridges_per_level_.begin(), bridges_per_level_.begin() + levels_started_};
  }
  std::vector<std::uint64_t> candidates_per_level() const {
    return {candidates_per_level_.begin(), candidates_per_level_.begin() + levels_started_};
  }

 private:
  struct Candidate {
    NodeId u = kNoNode;
    NodeId uprime = kNoNode;
    NodeId v = kNoNode;
    std::uint32_t partner_size = 0;
    bool valid() const { return u != kNoNode; }
    /// Paper Alg. 3 line 11: the minimum candidate wins.
    bool operator<(const Candidate& o) const {
      if (u != o.u) return u < o.u;
      if (uprime != o.uprime) return uprime < o.uprime;
      return v < o.v;
    }
  };

  enum class SubPhase : std::uint8_t { kDiscovery, kBuild };

  std::uint16_t tag(std::uint16_t off) const { return static_cast<std::uint16_t>(base_tag_ + off); }
  // 0 verify, 1 check, 2 checkReply, 3 found, 4 cand, 5 build,
  // 6 buildPartner, 7 buildCut, 8 renumI, 9 renumJ

  std::uint32_t cur_color(NodeId x) const;
  bool flood_same_color(NodeId v, NodeId w) const;
  void flood_color(congest::Context& ctx, const congest::Message& msg,
                   NodeId exclude = congest::kNoNode);
  void ensure_level(congest::Context& ctx);
  void on_discovery_start(congest::Context& ctx);
  void on_build_start(congest::Context& ctx);
  void process_check_queue(congest::Context& ctx);
  void handle_message(congest::Context& ctx, const congest::Message& msg);
  void improve_candidate(congest::Context& ctx, const Candidate& cand);
  void apply_renum_i(congest::Context& ctx, std::uint32_t t, std::uint32_t sj);
  void apply_renum_j(congest::Context& ctx, std::uint32_t t, std::uint32_t qu, bool side_succ,
                     std::uint32_t si);

  NodeId n_;
  std::uint16_t base_tag_;
  const congest::SetupComponent* setup_;
  MergeStrategy strategy_;
  std::uint32_t num_colors_;
  std::uint32_t total_levels_ = 0;
  std::uint32_t levels_started_ = 0;
  SubPhase sub_phase_ = SubPhase::kDiscovery;

  // Per-node booleans plus the 2-bit check-reply count, packed into one
  // byte per node (was seven u8 vectors).  Distinct nodes touch distinct
  // bytes, so parallel shards stepping different nodes never race.
  static constexpr std::uint8_t kAlive = 1u << 0;
  static constexpr std::uint8_t kRenumDone = 1u << 1;
  static constexpr std::uint8_t kBridgeEndpoint = 1u << 2;
  static constexpr std::uint8_t kCheckInFlight = 1u << 3;
  static constexpr std::uint8_t kReplyYesSucc = 1u << 4;
  static constexpr std::uint8_t kReplyYesPred = 1u << 5;
  static constexpr unsigned kReplyCountShift = 6;  // bits 6–7: replies seen (0..2)
  std::vector<std::uint8_t> mflags_;

  // Cycle state (seeded from Phase 1, rewritten by merges).
  std::vector<NodeId> pred_;
  std::vector<NodeId> succ_;
  std::vector<std::uint32_t> cycindex_;
  std::vector<std::uint32_t> csize_;

  // Level-local state.
  std::vector<std::uint32_t> level_seen_;   // (level*2 + subphase) marker
  std::vector<Candidate> best_cand_;
  // Pending (w, v) adjacency checks; FlatQueue keeps FIFO order without
  // the O(queue) erase-from-front of the old inner vectors.
  std::vector<support::FlatQueue<std::pair<NodeId, NodeId>>> check_queue_;
  std::vector<NodeId> cur_w_;
  std::vector<NodeId> cur_v_;
  // Deferred flood emissions: kind 0 = none, 1 = kRenumI, 2 = kRenumJ.
  std::vector<std::uint8_t> pending_kind_;
  std::vector<std::uint64_t> pending_round_;
  std::vector<std::int64_t> pending_a_;
  std::vector<std::int64_t> pending_b_;
  std::vector<std::int64_t> pending_c_;
  std::vector<std::int64_t> pending_d_;

  // Aggregate statistics, bumped from sharded step paths (relaxed atomics;
  // sums are order-free, so results stay shard-invariant).
  support::ShardCounter<std::uint64_t> bridges_built_ = 0;
  support::ShardCounter<std::uint64_t> candidates_found_ = 0;
  support::ShardCounter<std::uint64_t> verify_messages_ = 0;
  std::vector<support::ShardCounter<std::uint64_t>> bridges_per_level_;
  std::vector<support::ShardCounter<std::uint64_t>> candidates_per_level_;
};

/// Runs DHC2 end to end on `g`.  On success the returned cycle is in the
/// per-node incident-edge form; callers should verify it against `g`.
/// Stats include phase rounds, merge levels, bridges, and step counts.
Result run_dhc2(const graph::Graph& g, std::uint64_t seed, const Dhc2Config& cfg = {});

}  // namespace dhc::core
