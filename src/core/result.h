// Shared result type for the distributed Hamiltonian-cycle algorithms.
//
// Every solver (DRA, DHC1, DHC2, Upcast, CollectAll) reports through this
// struct: outcome, the cycle in the paper's per-node incident-edge form, the
// CONGEST cost metrics, and algorithm-specific counters for the experiment
// harness.  Randomized failure is a value, not an exception — callers decide
// whether a failed trial is acceptable (success-probability experiments
// count them on purpose).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "graph/hamiltonian.h"

namespace dhc::core {

struct Result {
  bool success = false;
  std::string failure_reason;

  /// The paper's output convention (§I-A): each node's two HC-incident
  /// edges.  Populated (and verified by callers) only on success.
  graph::CycleIncidence cycle;

  /// CONGEST cost of the run (rounds, messages, bits, memory, balance).
  congest::Metrics metrics;

  /// Algorithm-specific counters, e.g. "steps", "rotations",
  /// "wrong_port_rejects", "merge_levels", "root_solve_steps".  The runner
  /// moves this map into its TrialResult (one map per trial — don't copy).
  std::map<std::string, double> stats;

  /// Algorithm-specific series, e.g. DHC2's "bridges_per_level".
  std::map<std::string, std::vector<double>> series;

  double stat(const std::string& key) const {
    const auto it = stats.find(key);
    return it == stats.end() ? 0.0 : it->second;
  }
};

}  // namespace dhc::core
