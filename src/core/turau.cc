#include "core/turau.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "congest/network.h"
#include "congest/setup.h"
#include "support/atomic_stats.h"
#include "support/require.h"
#include "support/rng.h"

namespace dhc::core {

using congest::Context;
using congest::kNoNode;
using congest::Message;
using congest::Network;
using graph::NodeId;

namespace {

// Message tags (setup uses 1..5).
constexpr std::uint16_t kMatchPropose = 40;  // {}: matching proposal to a lower id
constexpr std::uint16_t kMatchAccept = 41;   // {}: proposal accepted, edge joins a path
constexpr std::uint16_t kTailInfo = 42;      // {tail id}: forwarded along succ to the head
constexpr std::uint16_t kHeadInfo = 43;      // {head id}: forwarded along pred to the tail
constexpr std::uint16_t kAnnounce = 44;      // {}: passive tail advertises to all neighbors
constexpr std::uint16_t kJoinPropose = 45;   // {proposer's tail}: active head -> passive tail
constexpr std::uint16_t kJoinAccept = 46;    // {acceptor's head}: tail -> winning head
constexpr std::uint16_t kRotate = 47;        // {}: closing head asks w to become its succ
constexpr std::uint16_t kRotAck = 48;        // {}: w accepted, head starts the suffix flip
constexpr std::uint16_t kFlip = 49;          // {w, tail}: orientation flip along old pred chain
constexpr std::uint16_t kClose = 50;         // {}: head -> tail, final cycle edge

class TurauProtocol : public congest::Protocol {
 public:
  TurauProtocol(NodeId n, std::uint64_t seed, const TurauConfig& cfg)
      : n_(n), seed_(seed), cfg_(cfg), setup_(n, /*base_tag=*/1) {
    pred_.assign(n, kNoNode);
    succ_.assign(n, kNoNode);
    tail_know_.assign(n, kNoNode);
    head_know_.assign(n, kNoNode);
    seen_token_.assign(n, 0);
    max_levels_ = static_cast<std::uint64_t>(
                      cfg_.level_multiplier *
                      std::ceil(std::log2(std::max<double>(n, 4.0)))) +
                  32;
  }

  void begin(Context&) override {}

  void step(Context& ctx) override {
    const NodeId v = ctx.self();
    if (stage_ == Stage::kSetup) {
      setup_.step(ctx);
      return;
    }
    if (seen_token_[v] != token_) {
      seen_token_[v] = token_;
      stage_init(ctx);
    }
    handle_inbox(ctx);
  }

  bool on_quiescence(Network& net) override {
    if (!failure_.empty()) return false;
    switch (stage_) {
      case Stage::kInit:
        stage_ = Stage::kSetup;
        net.mark_phase("setup");
        setup_.advance(net);
        return true;
      case Stage::kSetup:
        setup_.advance(net);
        if (setup_.done()) {
          net.set_barrier_cost(2ULL * setup_.tree_depth(0) + 2);
          if (setup_.component_size(0) != n_) {
            failure_ = "graph is disconnected (leader component covers " +
                       std::to_string(setup_.component_size(0)) + " of " + std::to_string(n_) +
                       " nodes)";
            return false;
          }
          stage_ = Stage::kMatch;
          net.mark_phase("match");
          wake_all(net);
        }
        return true;
      case Stage::kMatch:
        stage_ = Stage::kEndpointInfo;
        net.mark_phase("endpoint-info");
        wake_all(net);
        return true;
      case Stage::kEndpointInfo:
        initial_paths_ = count_tails();
        stage_ = Stage::kMerge;
        net.mark_phase("merge");
        wake_all(net);
        return true;
      case Stage::kMerge: {
        const std::uint32_t paths = count_tails();
        paths_per_level_.push_back(static_cast<double>(paths));
        ++levels_run_;
        if (paths == 1) {
          stage_ = Stage::kClose;
          net.mark_phase("close");
          return wake_closer(net);
        }
        if (levels_run_ >= max_levels_) {
          failure_ = "merging stalled at " + std::to_string(paths) + " paths after " +
                     std::to_string(levels_run_) + " levels";
          return false;
        }
        wake_all(net);
        return true;
      }
      case Stage::kClose: {
        if (count_tails() == 0) {
          stage_ = Stage::kDone;  // cycle closed
          return false;
        }
        return wake_closer(net);
      }
      case Stage::kDone:
        return false;
    }
    return false;
  }

  graph::CycleIncidence incidence() const {
    graph::CycleIncidence inc;
    inc.neighbors_of.resize(n_);
    for (NodeId v = 0; v < n_; ++v) inc.neighbors_of[v] = {pred_[v], succ_[v]};
    return inc;
  }

  enum class Stage : std::uint8_t {
    kInit,
    kSetup,
    kMatch,
    kEndpointInfo,
    kMerge,
    kClose,
    kDone,
  };

  // --- first step of a node in the current stage/level ----------------------

  void stage_init(Context& ctx) {
    switch (stage_) {
      case Stage::kMatch:
        match_init(ctx);
        return;
      case Stage::kEndpointInfo:
        endpoint_info_init(ctx);
        return;
      case Stage::kMerge:
        merge_level_init(ctx);
        return;
      case Stage::kClose:
        if (succ_[ctx.self()] == kNoNode) act_as_closer(ctx);
        return;
      case Stage::kInit:
      case Stage::kSetup:
      case Stage::kDone:
        return;
    }
  }

  /// Sample the sparse random subgraph and propose to one lower-id candidate
  /// (DESIGN.md §2.4: ids strictly decrease along accepted chains, so the
  /// initial structure is acyclic without any coordination).
  void match_init(Context& ctx) {
    const NodeId v = ctx.self();
    const auto nb = ctx.neighbors();
    if (nb.empty()) return;
    const auto want = static_cast<std::uint64_t>(
        std::ceil(cfg_.sample_c * std::log(std::max<double>(n_, 2.0))));
    const auto k = std::min<std::uint64_t>(want, nb.size());
    const auto chosen = ctx.rng().sample_distinct(nb.size(), k);
    ctx.charge_memory(static_cast<std::int64_t>(k));
    sampled_edges_ += k;
    std::vector<NodeId> lower;
    for (const auto i : chosen) {
      const NodeId w = nb[static_cast<std::size_t>(i)];
      if (w < v) lower.push_back(w);
    }
    ctx.charge_compute(k);
    if (lower.empty()) return;
    const NodeId target = lower[ctx.rng().below(lower.size())];
    ctx.send(target, Message::make(kMatchPropose));
  }

  /// Endpoints introduce themselves to the far end of their path, pipelined
  /// along the path edges; afterwards every tail knows its head and vice
  /// versa — the pair both ends derive the level coins from.
  void endpoint_info_init(Context& ctx) {
    const NodeId v = ctx.self();
    ctx.charge_memory(4);  // pred/succ + the two endpoint words
    if (pred_[v] == kNoNode) {
      tail_know_[v] = v;
      if (succ_[v] != kNoNode) ctx.send(succ_[v], Message::make(kTailInfo, {v}));
    }
    if (succ_[v] == kNoNode) {
      head_know_[v] = v;
      if (pred_[v] != kNoNode) ctx.send(pred_[v], Message::make(kHeadInfo, {v}));
    }
  }

  /// Level coin shared by both endpoints of a path: derived from the run
  /// seed, the level, and the (tail, head) pair — no communication needed.
  bool path_active(NodeId tail, NodeId head, std::uint64_t level) const {
    std::uint64_t state = seed_ + 0x9e3779b97f4a7c15ULL * (level + 1);
    std::uint64_t h = support::splitmix64(state);
    state ^= static_cast<std::uint64_t>(tail) + 1;
    h ^= support::splitmix64(state);
    state ^= (static_cast<std::uint64_t>(head) + 1) << 32;
    h ^= support::splitmix64(state);
    return (h & 1) != 0;
  }

  void merge_level_init(Context& ctx) {
    const NodeId v = ctx.self();
    const bool is_tail = pred_[v] == kNoNode;
    if (!is_tail) return;  // heads act on announcements, interiors relay
    if (path_active(tail_know_[v], head_know_[v], levels_run_)) return;
    // Passive tail: advertise to every neighbor; active heads pick targets
    // among the advertisements they hear.
    const Message msg = Message::make(kAnnounce);
    const std::size_t degree = ctx.degree();
    for (std::size_t i = 0; i < degree; ++i) ctx.send_to_rank(i, msg);
    ctx.charge_compute(degree);
  }

  void handle_inbox(Context& ctx) {
    const NodeId v = ctx.self();
    // Collected per round: all matching/merge proposals arrive in lockstep.
    std::vector<NodeId> match_proposers;
    std::vector<NodeId> announcers;
    std::vector<std::pair<NodeId, NodeId>> join_proposals;  // (head, its tail)

    for (const Message& msg : ctx.inbox()) {
      switch (msg.tag) {
        case kMatchPropose:
          match_proposers.push_back(msg.from);
          break;
        case kMatchAccept:
          succ_[v] = msg.from;
          break;
        case kTailInfo:
          if (succ_[v] == kNoNode) {
            tail_know_[v] = static_cast<NodeId>(msg.data[0]);
          } else {
            ctx.send(succ_[v], msg);
          }
          break;
        case kHeadInfo:
          if (pred_[v] == kNoNode) {
            head_know_[v] = static_cast<NodeId>(msg.data[0]);
          } else {
            ctx.send(pred_[v], msg);
          }
          break;
        case kAnnounce:
          announcers.push_back(msg.from);
          break;
        case kJoinPropose:
          join_proposals.emplace_back(msg.from, static_cast<NodeId>(msg.data[0]));
          break;
        case kJoinAccept:
          on_join_accept(ctx, msg);
          break;
        case kRotate: {
          // w: splice the closing head in as path successor; the displaced
          // successor learns its new role from the flip chain.
          DHC_CHECK(succ_[v] != kNoNode, "rotation target must not be the head");
          succ_[v] = msg.from;
          ctx.send(msg.from, Message::make(kRotAck));
          break;
        }
        case kRotAck: {
          // Old head: rewire to w and launch the orientation flip of the old
          // suffix toward the new head (DESIGN.md §2.4).
          const NodeId old_pred = pred_[v];
          DHC_CHECK(old_pred != kNoNode, "closing head must have a path predecessor");
          pred_[v] = msg.from;
          succ_[v] = old_pred;
          ctx.send(old_pred,
                   Message::make(kFlip, {msg.from, static_cast<std::int64_t>(tail_know_[v])}));
          break;
        }
        case kFlip: {
          const auto w = static_cast<NodeId>(msg.data[0]);
          if (pred_[v] == w) {
            // Displaced node: becomes the new head of the rotated path.
            pred_[v] = msg.from;
            succ_[v] = kNoNode;
            tail_know_[v] = static_cast<NodeId>(msg.data[1]);
            head_know_[v] = v;
          } else {
            const NodeId old_pred = pred_[v];
            pred_[v] = msg.from;
            succ_[v] = old_pred;
            ctx.send(old_pred, msg);
          }
          ctx.charge_compute(1);
          break;
        }
        case kClose:
          pred_[v] = msg.from;
          break;
        default:
          break;  // setup tags are consumed before we leave Stage::kSetup
      }
    }

    if (!match_proposers.empty() && stage_ == Stage::kMatch && pred_[v] == kNoNode) {
      const NodeId winner = match_proposers[ctx.rng().below(match_proposers.size())];
      pred_[v] = winner;
      ctx.send(winner, Message::make(kMatchAccept));
    }
    if (!announcers.empty()) on_announcements(ctx, announcers);
    if (!join_proposals.empty()) on_join_proposals(ctx, join_proposals);
  }

  /// Active head: propose to one uniformly random announcing (passive) tail.
  void on_announcements(Context& ctx, const std::vector<NodeId>& announcers) {
    const NodeId v = ctx.self();
    if (stage_ != Stage::kMerge || succ_[v] != kNoNode) return;
    if (!path_active(tail_know_[v], head_know_[v], levels_run_)) return;
    const NodeId target = announcers[ctx.rng().below(announcers.size())];
    ctx.send(target,
             Message::make(kJoinPropose, {static_cast<std::int64_t>(tail_know_[v])}));
    ctx.charge_compute(1);
  }

  /// Passive tail: accept one proposal; the merged path's far endpoints
  /// learn their new partner through relays pipelined along the path.
  void on_join_proposals(Context& ctx, const std::vector<std::pair<NodeId, NodeId>>& proposals) {
    const NodeId v = ctx.self();
    if (stage_ != Stage::kMerge || pred_[v] != kNoNode) return;
    const auto& [head, head_tail] = proposals[ctx.rng().below(proposals.size())];
    pred_[v] = head;
    ctx.send(head, Message::make(kJoinAccept, {static_cast<std::int64_t>(head_know_[v])}));
    // The merged path's head learns its new tail through the same relay that
    // established the endpoint invariant after matching.
    if (succ_[v] != kNoNode) {
      ctx.send(succ_[v], Message::make(kTailInfo, {static_cast<std::int64_t>(head_tail)}));
    } else {
      tail_know_[v] = head_tail;  // singleton: this node stays the head
    }
    ++merges_;
  }

  /// Active head whose proposal was accepted: adopt the edge and tell this
  /// path's tail who the merged path's head is.
  void on_join_accept(Context& ctx, const Message& msg) {
    const NodeId v = ctx.self();
    succ_[v] = msg.from;
    const auto new_head = msg.data[0];
    if (pred_[v] == kNoNode) {
      head_know_[v] = static_cast<NodeId>(new_head);  // singleton: stays the tail
    } else {
      ctx.send(pred_[v], Message::make(kHeadInfo, {new_head}));
    }
  }

  /// Closing head: close the cycle if the tail is a neighbor, otherwise
  /// rotate at a random neighbor to redraw the head.
  void act_as_closer(Context& ctx) {
    const NodeId v = ctx.self();
    const NodeId tail = tail_know_[v];
    const auto nb = ctx.neighbors();
    ctx.charge_compute(1);
    if (std::binary_search(nb.begin(), nb.end(), tail)) {
      succ_[v] = tail;
      ctx.send(tail, Message::make(kClose));
      return;
    }
    if (nb.size() == 1 && nb[0] == pred_[v]) {
      failure_ = "closing head has no rotation edge";
      return;
    }
    NodeId w;
    do {
      w = nb[ctx.rng().below(nb.size())];
    } while (w == pred_[v]);  // rotating at the predecessor is a no-op
    ctx.send(w, Message::make(kRotate));
  }

  // --- helpers over global state (used from on_quiescence barriers) --------

  void wake_all(Network& net) {
    ++token_;
    net.wake_all();
  }

  /// Wakes the single head for one close-or-rotate activation, charging it
  /// against the rotation budget (every activation that does not close
  /// performs exactly one rotation).
  bool wake_closer(Network& net) {
    if (close_attempts_ >= cfg_.max_close_attempts) {
      failure_ =
          "closing budget exhausted after " + std::to_string(close_attempts_) + " rotations";
      return false;
    }
    ++close_attempts_;
    ++token_;
    for (NodeId v = 0; v < n_; ++v) {
      if (succ_[v] == kNoNode) {
        net.wake(v);
        return true;
      }
    }
    failure_ = "no head found while closing";  // unreachable by construction
    return false;
  }

  std::uint32_t count_tails() const {
    std::uint32_t tails = 0;
    for (NodeId v = 0; v < n_; ++v) {
      if (pred_[v] == kNoNode) ++tails;
    }
    return tails;
  }

  NodeId n_;
  std::uint64_t seed_;
  TurauConfig cfg_;
  congest::SetupComponent setup_;
  Stage stage_ = Stage::kInit;
  std::string failure_;

  std::uint64_t token_ = 0;
  std::vector<std::uint64_t> seen_token_;
  std::vector<NodeId> pred_;
  std::vector<NodeId> succ_;
  std::vector<NodeId> tail_know_;  // endpoint knowledge: the path's tail id
  std::vector<NodeId> head_know_;  // endpoint knowledge: the path's head id

  std::uint64_t max_levels_ = 0;
  std::uint64_t levels_run_ = 0;  // advanced at quiescence barriers only
  // Bumped from sharded step paths (relaxed atomics; order-free sums).
  support::ShardCounter<std::uint64_t> merges_ = 0;
  support::ShardCounter<std::uint64_t> sampled_edges_ = 0;
  std::uint32_t initial_paths_ = 0;   // written at quiescence barriers only
  std::uint32_t close_attempts_ = 0;  // written at quiescence barriers only
  std::vector<double> paths_per_level_;
};

}  // namespace

Result run_turau(const graph::Graph& g, std::uint64_t seed, const TurauConfig& cfg) {
  Result result;
  if (g.n() < 3) {
    result.failure_reason = "graph has fewer than 3 nodes";
    return result;
  }
  congest::NetworkConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.observer = cfg.observer;
  net_cfg.shards = cfg.shards;
  net_cfg.trace = cfg.trace;
  net_cfg.node_stats = cfg.node_stats;
  net_cfg.faults = cfg.faults;
  congest::Network net(g, net_cfg);
  TurauProtocol protocol(g.n(), seed, cfg);
  result.metrics = net.run(protocol);

  result.stats["initial_paths"] = static_cast<double>(protocol.initial_paths_);
  result.stats["merge_levels"] = static_cast<double>(protocol.levels_run_);
  result.stats["merges"] = static_cast<double>(protocol.merges_);
  result.stats["close_attempts"] = static_cast<double>(protocol.close_attempts_);
  result.stats["sampled_edges"] = static_cast<double>(protocol.sampled_edges_);
  result.stats["tree_depth"] = static_cast<double>(protocol.setup_.tree_depth(0));
  result.series["paths_per_level"] = protocol.paths_per_level_;

  if (result.metrics.hit_round_limit) {
    result.failure_reason = "round limit exceeded";
    return result;
  }
  if (!protocol.failure_.empty()) {
    result.failure_reason = protocol.failure_;
    return result;
  }
  result.cycle = protocol.incidence();
  const auto verdict = graph::verify_cycle_incidence(g, result.cycle);
  if (!verdict.ok()) {
    result.failure_reason = "final cycle invalid: " + *verdict.failure;
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace dhc::core
