// The Upcast algorithm (paper §III) and the trivial collect-everything
// baseline (§I-A).
//
// Steps (paper §III-A): elect a leader, build a BFS tree rooted at it, have
// every node sample Θ(log n) of its incident edges and upcast them to the
// root (pipelined, one edge record per tree edge per round), let the root
// solve locally with the sequential rotation algorithm, and downcast each
// node's two cycle edges back (routed along the reverse upcast paths).
//
// The algorithm stays within the CONGEST bandwidth but is *not* fully
// distributed: the root stores Θ(n log n) words and does Θ(n log n) local
// work — the asymmetry EXP-L1 measures against DHC2.  Round complexity is
// O(log n / p) (Theorems 17/19): the BFS tree of a random graph is balanced
// (Lemmas 11–15 / 18), so upcast congestion divides evenly.
//
// With `collect_all` set, every node ships *all* incident edges: the trivial
// O(m)-round upper bound the paper opens with, used as the baseline in
// EXP-C1.
#pragma once

#include <cstdint>

#include "congest/network.h"
#include "core/result.h"
#include "core/sequential.h"
#include "graph/graph.h"

namespace dhc::core {

struct UpcastConfig {
  /// Every node samples ceil(sample_c · ln n) incident edges (paper step 3's
  /// c′ log n).  Clamped to the node's degree.
  double sample_c = 3.0;

  /// Ship all incident edges instead of a sample (the CollectAll baseline).
  bool collect_all = false;

  /// Root's local solver budget.
  RotationConfig root_solver;

  /// Optional message tap for alternative cost models (k-machine, §IV; not
  /// owned, must outlive the run).
  congest::MessageObserver* observer = nullptr;

  /// Simulator shard count for intra-trial parallelism (0 = the DHC_SHARDS
  /// environment default; results are bitwise identical for every value —
  /// see congest::NetworkConfig::shards).
  std::uint32_t shards = 0;

  /// Optional fault plan: non-null runs the solver under the async delivery
  /// regime (--model=async; congest/fault_plan.h).  Not owned.
  const congest::FaultPlan* faults = nullptr;

  /// Optional flight-recorder sink (not owned, must outlive the run).
  congest::TraceSink* trace = nullptr;

  /// Per-node accounting mode (full vectors / streaming digests / off).
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
};

/// Runs Upcast (or CollectAll) end to end.  Stats include "root_edges",
/// "root_solve_steps", "tree_depth", and the metrics expose the root's
/// memory/traffic asymmetry.
Result run_upcast(const graph::Graph& g, std::uint64_t seed, const UpcastConfig& cfg = {});

}  // namespace dhc::core
