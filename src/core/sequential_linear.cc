#include "core/sequential_linear.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/path_treap.h"
#include "support/require.h"

namespace dhc::core {

using graph::Graph;
using graph::NodeId;

namespace {

// After this many uniform draws that all land on used edges, switch to the
// exact two-pass scan.  16 keeps the expected extra scan probability at
// (used fraction)^16 — negligible until a row is almost fully consumed,
// which is exactly when the O(deg) scan is about to report starvation
// anyway.
constexpr int kMaxResamples = 16;

}  // namespace

CreResult cre_hamiltonian_cycle(const Graph& g, support::Rng& rng, const CreConfig& cfg) {
  CreResult result;
  const NodeId n = g.n();
  if (n < 3) {
    result.failure_reason = "graph has fewer than 3 nodes";
    return result;
  }

  const std::uint64_t max_steps =
      cfg.max_steps_override != 0
          ? cfg.max_steps_override
          : static_cast<std::uint64_t>(cfg.step_multiplier * static_cast<double>(n) *
                                       std::log(static_cast<double>(n))) +
                16;

  // Streaming used-edge filter: one bit per directed CSR edge id
  // (row_offsets[u] + rank of v in u's row).  Consuming an edge sets both
  // directions, so either endpoint's draw skips it — the same semantics as
  // the rotation solver's unordered_set at 1/384th the bytes per edge.
  const auto row_off = g.row_offsets();
  const std::size_t total_directed = row_off.empty() ? 0 : row_off[n];
  std::vector<std::uint64_t> used((total_directed + 63) / 64, 0);
  const auto is_used = [&](std::size_t id) {
    return (used[id >> 6] >> (id & 63)) & 1u;
  };
  const auto mark_used = [&](NodeId a, std::size_t id_ab, NodeId b) {
    used[id_ab >> 6] |= std::uint64_t{1} << (id_ab & 63);
    const std::size_t rank_ba = g.neighbor_rank(b, a);
    DHC_CHECK(rank_ba != Graph::kNoRank, "CSR adjacency not symmetric");
    const std::size_t id_ba = row_off[b] + rank_ba;
    used[id_ba >> 6] |= std::uint64_t{1} << (id_ba & 63);
  };

  PathTreap path(n, rng.next_u64());
  NodeId head = static_cast<NodeId>(rng.below(n));  // random v1 (paper §II-A2)
  path.append(head);

  while (result.stats.steps < max_steps) {
    // Uniform draw among the head's unused incident edges: bounded rejection
    // sampling over the CSR row, then an exact two-pass scan.  Both stages
    // are uniform over the unused entries, so the mixture is too.
    const auto row = g.neighbors(head);
    const std::size_t base = row_off[head];
    const std::size_t deg = row.size();
    NodeId target = static_cast<NodeId>(-1);
    std::size_t target_rank = 0;
    for (int t = 0; t < kMaxResamples && deg > 0; ++t) {
      const std::size_t r = static_cast<std::size_t>(rng.below(deg));
      if (!is_used(base + r)) {
        target = row[r];
        target_rank = r;
        break;
      }
      result.stats.resamples += 1;
    }
    if (target == static_cast<NodeId>(-1)) {
      std::size_t unused_count = 0;
      for (std::size_t i = 0; i < deg; ++i) {
        if (!is_used(base + i)) ++unused_count;
      }
      if (unused_count == 0) {
        result.failure_reason = "head ran out of unused edges (event E2)";
        return result;
      }
      std::size_t pick = static_cast<std::size_t>(rng.below(unused_count));
      for (std::size_t i = 0; i < deg; ++i) {
        if (is_used(base + i)) continue;
        if (pick == 0) {
          target = row[i];
          target_rank = i;
          break;
        }
        --pick;
      }
    }
    mark_used(head, base + target_rank, target);
    result.stats.steps += 1;

    if (!path.contains(target)) {
      // Extension: the path grows by one node; the new node becomes head.
      path.append(target);
      head = target;
      result.stats.extensions += 1;
      continue;
    }

    const std::uint32_t h = path.size();
    const std::uint32_t j = path.position(target);
    if (j == 1 && h == n) {
      // pos = |V| and the head holds an edge to v1: the cycle closes.
      result.success = true;
      result.cycle.order = path.to_vector();
      return result;
    }
    // Rotation (paper Fig. 2): v1..vj vj+1..vh  →  v1..vj vh..vj+1.
    path.rotate_suffix(j);
    head = path.at(h);
    result.stats.rotations += 1;
  }

  result.failure_reason = "step budget exhausted (event E1)";
  return result;
}

}  // namespace dhc::core
