// Turau's distributed Hamiltonian-cycle algorithm for dense random graphs
// (arXiv:1805.06728), the modern O(log n)-time point of comparison to the
// source paper's DHC1/DHC2 (DESIGN.md §2.4).
//
// The algorithm grows a system of vertex-disjoint paths covering all nodes
// and merges them in parallel until one Hamiltonian path remains, then
// closes it into a cycle:
//
//   Sample  — every node draws ceil(sample_c·ln n) incident edges, the
//             sparse random subgraph the initial paths are built from,
//   Match   — one propose/accept exchange on the sampled edges; each node
//             proposes to one lower-id candidate and accepts at most one
//             proposal, so the accepted edges form paths (ids strictly
//             decrease along a path — no cycles by construction),
//   Merge   — O(log n) levels: every path derives a shared coin from its
//             (tail, head) endpoint pair; passive tails announce to their
//             neighbors, active heads propose to one announcing tail, tails
//             accept one proposal, and the merged path's far endpoints learn
//             their new partner by a relay pipelined along the path edges.
//             Active-to-passive orientation makes premature cycles
//             impossible, so the path count shrinks geometrically,
//   Close   — the head of the final Hamiltonian path closes the cycle if it
//             sees the tail, and otherwise performs a rotation (paper Fig. 2
//             style) at a random neighbor to redraw the head.
//
// Progress between phases/levels uses the quiescence barriers of DESIGN.md
// §2.3 (counted and priced in Metrics).  Stalled merging or closing aborts
// with a failure result, never hangs.
#pragma once

#include <cstdint>

#include "congest/network.h"
#include "core/result.h"
#include "graph/graph.h"

namespace dhc::core {

struct TurauConfig {
  /// Every node samples ceil(sample_c·ln n) incident edges for the initial
  /// matching (clamped to the node's degree).
  double sample_c = 4.0;

  /// Merge-level budget: level_multiplier·ceil(log₂ n) + 32 levels before
  /// the run aborts as stalled (a level can be unproductive when the shared
  /// coins land badly or endpoint adjacencies are missing).
  double level_multiplier = 8.0;

  /// Rotations attempted while closing the final Hamiltonian path before
  /// giving up (each succeeds with probability ≈ p).
  std::uint32_t max_close_attempts = 64;

  /// Optional message tap for alternative cost models (k-machine, §IV; not
  /// owned, must outlive the run).
  congest::MessageObserver* observer = nullptr;

  /// Simulator shard count for intra-trial parallelism (0 = the DHC_SHARDS
  /// environment default; results are bitwise identical for every value —
  /// see congest::NetworkConfig::shards).
  std::uint32_t shards = 0;

  /// Optional fault plan: non-null runs the solver under the async delivery
  /// regime (--model=async; congest/fault_plan.h).  Not owned.
  const congest::FaultPlan* faults = nullptr;

  /// Optional flight-recorder sink (not owned, must outlive the run).
  congest::TraceSink* trace = nullptr;

  /// Per-node accounting mode (full vectors / streaming digests / off).
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
};

/// Runs Turau's algorithm end to end.  On success the cycle is in the
/// paper's per-node incident-edge form; `stats` includes "initial_paths",
/// "merge_levels", "close_attempts", and "sampled_edges", and
/// `series["paths_per_level"]` records the path count after every merge
/// level.  Requires p well above the connectivity threshold (the regime of
/// arXiv:1805.06728) for a high success rate.
Result run_turau(const graph::Graph& g, std::uint64_t seed, const TurauConfig& cfg = {});

}  // namespace dhc::core
