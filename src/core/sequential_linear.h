// CRE — the linear-space cycle-rotation-extension sequential solver, used as
// the paired-trial verification oracle at million-node scale (algorithm name
// `cre`).
//
// The classic rotation solver (core/sequential.h) re-materializes per-node
// adjacency copies (2m extra NodeIds) plus an unordered_set of used edges
// (~48 B/edge) — at n = 2^20 the oracle costs more memory than the trial it
// verifies.  CRE keeps the rotation-extension core (Angluin–Valiant; the
// modern treatment is the CRE algorithm of arXiv:1903.03007 and the O(n)-whp
// algorithm of arXiv:2012.02551) but works directly on the shared CSR graph:
//
//  * the used-edge set is a bitset over directed CSR edge ids (2m bits =
//    m/4 bytes; the "streaming used-edge filter"),
//  * the head's draw rejection-samples its CSR row for an unused edge (a
//    bounded number of tries), falling back to an exact two-pass
//    uniform-among-unused scan when the row is mostly consumed — the draw
//    distribution is uniform over unused incident edges either way,
//  * the path is the same O(log n)-per-rotation PathTreap.
//
// Working set: 2m bits + ~29 B/node, on top of the (shared, read-only) CSR.
// Expected time is O(n log n) draws at the G(n, p) densities the paper
// studies — linear in the input size m·p⁻¹-wise, which is what makes a
// verified n = 2^20 trial fit beside the simulator in one machine.
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/hamiltonian.h"
#include "support/rng.h"

namespace dhc::core {

struct CreConfig {
  /// Step budget multiplier: the run aborts after multiplier·n·ln n steps
  /// (the same Theorem-2-shaped budget as the rotation solver).
  double step_multiplier = 16.0;

  /// Optional absolute step budget; overrides the multiplier when nonzero.
  std::uint64_t max_steps_override = 0;
};

struct CreStats {
  std::uint64_t steps = 0;       // head actions (extensions + rotations + closure)
  std::uint64_t extensions = 0;  // path grew by a new node
  std::uint64_t rotations = 0;   // path suffix reversed
  std::uint64_t resamples = 0;   // rejection-sampling retries that hit a used edge
};

struct CreResult {
  bool success = false;
  std::string failure_reason;
  graph::CycleOrder cycle;  // valid iff success
  CreStats stats;
};

/// Runs CRE on `g`.  Succeeds whp when p ≳ c·ln n / n for sufficiently large
/// c; returns failure (never throws) when the head runs out of unused edges
/// or the step budget is exhausted — the same E1/E2 failure taxonomy as the
/// rotation solver, so runner classification is shared.
CreResult cre_hamiltonian_cycle(const graph::Graph& g, support::Rng& rng,
                                const CreConfig& cfg = {});

}  // namespace dhc::core
