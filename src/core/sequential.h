// Sequential Hamiltonian-cycle solvers.
//
// Two roles in the reproduction:
//  * rotation_hamiltonian_cycle — the Angluin–Valiant rotation algorithm
//    ([1], [20]; paper §II intuition and Theorem 2's step model).  It is the
//    local solver the Upcast root runs (§III, step 4), the step-count model
//    for EXP-T2 at large n, and the sequential baseline in EXP-C1.
//  * exact_hamiltonian_cycle — exponential backtracking, used as ground
//    truth in tests on small graphs (Petersen, K_{a,b}, …).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "graph/hamiltonian.h"
#include "support/rng.h"

namespace dhc::core {

struct RotationConfig {
  /// Step budget multiplier: the run aborts after multiplier·n·ln n steps
  /// (Theorem 2 proves 7·n·ln n suffices whp at c ≥ 86; the default leaves
  /// slack for the practical small-c regime the experiments explore).
  double step_multiplier = 16.0;

  /// Optional absolute step budget; overrides the multiplier when nonzero.
  std::uint64_t max_steps_override = 0;
};

struct RotationStats {
  std::uint64_t steps = 0;       // total head actions (extensions + rotations)
  std::uint64_t extensions = 0;  // path grew by a new node
  std::uint64_t rotations = 0;   // path suffix reversed
};

struct RotationResult {
  bool success = false;
  std::string failure_reason;
  graph::CycleOrder cycle;  // valid iff success
  RotationStats stats;
};

/// Runs the rotation algorithm on `g`.  Succeeds whp when p ≳ c·ln n / n for
/// sufficiently large c (Theorem 2); returns failure (never throws) when the
/// head runs out of unused edges or the step budget is exhausted.
RotationResult rotation_hamiltonian_cycle(const graph::Graph& g, support::Rng& rng,
                                          const RotationConfig& cfg = {});

/// Exhaustive backtracking with degree pruning; practical for n ≲ 30.
/// Returns std::nullopt when the graph has no Hamiltonian cycle.
std::optional<graph::CycleOrder> exact_hamiltonian_cycle(const graph::Graph& g);

/// The paper's step bound from Theorem 2: 7·n·ln n.
double theorem2_step_bound(graph::NodeId n);

}  // namespace dhc::core
