#include "core/dhc2.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "support/require.h"

namespace dhc::core {

using congest::Context;
using congest::Message;
using congest::Network;

namespace {

// Message tag offsets within the MergeEngine's tag block.
constexpr std::uint16_t kVerify = 0;        // {w = succ(v)}                 v → u
constexpr std::uint16_t kCheck = 1;         // {w, v}                        u → u′
constexpr std::uint16_t kCheckReply = 2;    // {w, v, yes}                   u′ → u
constexpr std::uint16_t kFound = 3;         // {u′, |C_j|}                   u → v
constexpr std::uint16_t kCand = 4;          // {u, u′, v, |C_j|}             flood in C_i
constexpr std::uint16_t kBuild = 5;         // {t, |C_i|, w, u′}             v → u
constexpr std::uint16_t kBuildPartner = 6;  // {w}                           u → u′
constexpr std::uint16_t kBuildCut = 7;      // {u′}                          v → succ(v)
constexpr std::uint16_t kRenumI = 8;        // {t, |C_j|}                    flood in C_i
constexpr std::uint16_t kRenumJ = 9;        // {t, q_u, side, |C_i|}         flood in C_j

}  // namespace

MergeEngine::MergeEngine(NodeId n, std::uint16_t base_tag, const congest::SetupComponent* setup,
                         const DraComponent* dra, std::uint32_t num_colors, MergeStrategy strategy)
    : n_(n), base_tag_(base_tag), setup_(setup), strategy_(strategy), num_colors_(num_colors) {
  DHC_REQUIRE(setup != nullptr && dra != nullptr, "MergeEngine needs setup and DRA results");
  total_levels_ = 0;
  while ((1u << total_levels_) < num_colors_) ++total_levels_;

  mflags_.assign(n, 0);
  pred_.assign(n, kNoNode);
  succ_.assign(n, kNoNode);
  cycindex_.assign(n, 0);
  csize_.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    if (dra->node_succeeded(v)) {
      mflags_[v] = kAlive;
      pred_[v] = dra->path_pred(v);
      succ_[v] = dra->path_succ(v);
      cycindex_[v] = dra->cycle_index(v);
      csize_[v] = setup->component_size(v);
    }
  }

  level_seen_.assign(n, 0);
  best_cand_.assign(n, {});
  check_queue_.assign(n, {});
  cur_w_.assign(n, kNoNode);
  cur_v_.assign(n, kNoNode);
  pending_kind_.assign(n, 0);
  pending_round_.assign(n, 0);
  pending_a_.assign(n, 0);
  pending_b_.assign(n, 0);
  pending_c_.assign(n, 0);
  pending_d_.assign(n, 0);

  // Per-level tallies are preallocated (atomic counters are not movable);
  // only the first levels_started_ entries are ever exposed.
  bridges_per_level_ = std::vector<support::ShardCounter<std::uint64_t>>(total_levels_);
  candidates_per_level_ = std::vector<support::ShardCounter<std::uint64_t>>(total_levels_);
}

std::uint32_t MergeEngine::cur_color(NodeId x) const {
  // Initial colors are 1..K stored as group 0..K-1; after ℓ halvings the
  // current color is ⌈c/2^ℓ⌉ = (group >> ℓ) + 1.
  const std::uint32_t shift = levels_started_ == 0 ? 0 : levels_started_ - 1;
  return (setup_->group_of(x) >> shift) + 1;
}

bool MergeEngine::flood_same_color(NodeId v, NodeId w) const { return cur_color(v) == cur_color(w); }

void MergeEngine::flood_color(Context& ctx, const Message& msg, NodeId exclude) {
  // One pre-built message to every same-color neighbor (minus `exclude`):
  // the candidate/renumber flood loops carry most of DHC2's traffic, so the
  // own-color lookup is hoisted and sends go by rank (no per-message
  // neighbor search).
  const std::uint32_t mine = cur_color(ctx.self());
  const auto nb = ctx.neighbors();
  for (std::size_t i = 0; i < nb.size(); ++i) {
    const NodeId w = nb[i];
    if (w != exclude && cur_color(w) == mine) ctx.send_to_rank(i, msg);
  }
}

void MergeEngine::start_level(Network& net) {
  DHC_CHECK(levels_remaining(), "start_level called with no levels remaining");
  ++levels_started_;
  sub_phase_ = SubPhase::kDiscovery;
  net.wake_all();
}

void MergeEngine::start_build(Network& net) {
  sub_phase_ = SubPhase::kBuild;
  net.wake_all();
}

void MergeEngine::ensure_level(Context& ctx) {
  const NodeId x = ctx.self();
  const std::uint32_t marker = levels_started_ * 2 + (sub_phase_ == SubPhase::kBuild ? 1 : 0);
  if (level_seen_[x] == marker) return;
  level_seen_[x] = marker;
  if (sub_phase_ == SubPhase::kDiscovery) {
    on_discovery_start(ctx);
  } else {
    on_build_start(ctx);
  }
}

void MergeEngine::on_discovery_start(Context& ctx) {
  const NodeId x = ctx.self();
  best_cand_[x] = {};
  mflags_[x] &= kAlive;  // clear every level-local bit, keep liveness
  check_queue_[x].clear();
  pending_kind_[x] = 0;

  // Active side (Alg. 3 lines 6–7): odd-colored cycles look for bridges to
  // their even partner color.
  if ((mflags_[x] & kAlive) == 0 || succ_[x] == kNoNode) return;
  const std::uint32_t mine = cur_color(x);
  if (mine % 2 == 0) return;
  const Message msg = Message::make(tag(kVerify), {succ_[x]});
  const auto nb = ctx.neighbors();
  for (std::size_t i = 0; i < nb.size(); ++i) {
    if (cur_color(nb[i]) == mine + 1) {
      ctx.send_to_rank(i, msg);
      ++verify_messages_;
    }
  }
}

void MergeEngine::on_build_start(Context& ctx) {
  const NodeId x = ctx.self();
  const Candidate& cand = best_cand_[x];
  if ((mflags_[x] & kAlive) == 0 || !cand.valid() || cand.v != x) return;
  // This node's candidate won the in-partition minimum (Alg. 3 lines 11–12):
  // build the bridge.
  const auto t = cycindex_[x];
  const auto s_i = csize_[x];
  const NodeId w = succ_[x];
  ctx.send(cand.u, Message::make(tag(kBuild), {t, s_i, w, cand.uprime}));
  ctx.send(w, Message::make(tag(kBuildCut), {cand.uprime}));
  // v's own link/size updates; index t is unchanged.
  succ_[x] = cand.u;
  csize_[x] = s_i + cand.partner_size;
  mflags_[x] |= kRenumDone;
  ++bridges_built_;
  ++bridges_per_level_[levels_started_ - 1];
  // The C_i renumber flood leaves next round (same-round sends to succ(v)
  // would collide with kBuildCut on that edge).
  pending_kind_[x] = 1;
  pending_round_[x] = ctx.round();
  pending_a_[x] = t;
  pending_b_[x] = cand.partner_size;
  ctx.wake_in(1);
}

void MergeEngine::improve_candidate(Context& ctx, const Candidate& cand) {
  const NodeId x = ctx.self();
  if (best_cand_[x].valid() && !(cand < best_cand_[x])) return;
  best_cand_[x] = cand;
  const Message msg = Message::make(
      tag(kCand), {cand.u, cand.uprime, cand.v, static_cast<std::int64_t>(cand.partner_size)});
  flood_color(ctx, msg);
}

void MergeEngine::apply_renum_i(Context& ctx, std::uint32_t t, std::uint32_t sj) {
  const NodeId x = ctx.self();
  if ((mflags_[x] & kAlive) == 0) return;
  if (cycindex_[x] > t) cycindex_[x] += sj;
  csize_[x] += sj;
  ctx.charge_compute(1);
}

void MergeEngine::apply_renum_j(Context& ctx, std::uint32_t t, std::uint32_t qu, bool side_succ,
                                std::uint32_t si) {
  const NodeId x = ctx.self();
  if ((mflags_[x] & kAlive) == 0) return;
  const std::uint32_t sj = csize_[x];
  const std::uint32_t qx = cycindex_[x];
  // New index: t + 1 + d where d walks C_j from u in the traversal
  // direction (away from the cut edge); covers the endpoints too.
  const std::uint64_t diff = side_succ
                                 ? (static_cast<std::uint64_t>(qu) + sj - qx) % sj
                                 : (static_cast<std::uint64_t>(qx) + sj - qu) % sj;
  cycindex_[x] = t + 1 + static_cast<std::uint32_t>(diff);
  csize_[x] = si + sj;
  if (side_succ && (mflags_[x] & kBridgeEndpoint) == 0) {
    std::swap(pred_[x], succ_[x]);
  }
  ctx.charge_compute(1);
}

void MergeEngine::process_check_queue(Context& ctx) {
  const NodeId x = ctx.self();
  if ((mflags_[x] & (kAlive | kRenumDone | kBridgeEndpoint)) != kAlive) return;
  if ((mflags_[x] & kCheckInFlight) != 0 || check_queue_[x].empty()) return;
  const auto [w, v] = check_queue_[x].front();
  check_queue_[x].pop_front();
  ctx.charge_memory(-2);
  // In flight; reply bits and count start fresh for this (w, v).
  mflags_[x] = static_cast<std::uint8_t>(
      (mflags_[x] & ~(kReplyYesSucc | kReplyYesPred | (3u << kReplyCountShift))) | kCheckInFlight);
  cur_w_[x] = w;
  cur_v_[x] = v;
  // Ask both cycle neighbors whether they are adjacent to w (Alg. 3 line 15).
  ctx.send(succ_[x], Message::make(tag(kCheck), {w, v}));
  ctx.send(pred_[x], Message::make(tag(kCheck), {w, v}));
}

void MergeEngine::step(Context& ctx) {
  const NodeId x = ctx.self();
  ensure_level(ctx);

  // Pass 1: build/renumber traffic.  Renumber state must settle before the
  // check queue fires again, or queue messages would collide with flood
  // forwards on cycle edges.
  for (const Message& msg : ctx.inbox()) {
    if (msg.tag < base_tag_ || msg.tag > tag(kRenumJ)) continue;
    const auto off = static_cast<std::uint16_t>(msg.tag - base_tag_);
    if (off == kBuild || off == kBuildPartner || off == kBuildCut || off == kRenumI ||
        off == kRenumJ) {
      handle_message(ctx, msg);
    }
  }
  // Pass 2: discovery traffic; candidate improvements are folded so the
  // flood forwards at most once per round (CONGEST capacity).
  Candidate incoming;
  NodeId min_verify_w = kNoNode;
  NodeId min_verify_v = kNoNode;
  for (const Message& msg : ctx.inbox()) {
    if (msg.tag < base_tag_ || msg.tag > tag(kRenumJ)) continue;
    const auto off = static_cast<std::uint16_t>(msg.tag - base_tag_);
    switch (off) {
      case kVerify: {
        if ((mflags_[x] & kAlive) == 0 || succ_[x] == kNoNode) break;
        const auto w = static_cast<NodeId>(msg.data[0]);
        if (strategy_ == MergeStrategy::kFullQueue) {
          check_queue_[x].emplace_back(w, msg.from);
          ctx.charge_memory(2);
        } else if (min_verify_w == kNoNode || w < min_verify_w ||
                   (w == min_verify_w && msg.from < min_verify_v)) {
          min_verify_w = w;
          min_verify_v = msg.from;
        }
        break;
      }
      case kCheck: {
        const auto w = static_cast<NodeId>(msg.data[0]);
        const bool yes = std::binary_search(ctx.neighbors().begin(), ctx.neighbors().end(), w);
        ctx.charge_compute(1);
        ctx.send(msg.from, Message::make(tag(kCheckReply), {w, msg.data[1], yes ? 1 : 0}));
        break;
      }
      case kCheckReply: {
        if ((mflags_[x] & kCheckInFlight) == 0) break;
        if (static_cast<NodeId>(msg.data[0]) != cur_w_[x] ||
            static_cast<NodeId>(msg.data[1]) != cur_v_[x]) {
          break;
        }
        // Saturating 2-bit count: both checks send exactly two kChecks, so
        // it never exceeds 2 in practice; saturation guards the packing.
        if ((mflags_[x] >> kReplyCountShift) < 3) {
          mflags_[x] = static_cast<std::uint8_t>(mflags_[x] + (1u << kReplyCountShift));
        }
        if (msg.data[2] != 0) {
          if (msg.from == succ_[x]) mflags_[x] |= kReplyYesSucc;
          if (msg.from == pred_[x]) mflags_[x] |= kReplyYesPred;
        }
        break;
      }
      case kFound: {
        Candidate cand;
        cand.u = msg.from;
        cand.uprime = static_cast<NodeId>(msg.data[0]);
        cand.v = x;
        cand.partner_size = static_cast<std::uint32_t>(msg.data[1]);
        if (!incoming.valid() || cand < incoming) incoming = cand;
        ++candidates_found_;
        ++candidates_per_level_[levels_started_ - 1];
        break;
      }
      case kCand: {
        Candidate cand;
        cand.u = static_cast<NodeId>(msg.data[0]);
        cand.uprime = static_cast<NodeId>(msg.data[1]);
        cand.v = static_cast<NodeId>(msg.data[2]);
        cand.partner_size = static_cast<std::uint32_t>(msg.data[3]);
        if (!incoming.valid() || cand < incoming) incoming = cand;
        break;
      }
      default:
        break;
    }
  }

  if (min_verify_w != kNoNode) {
    // kMinForward: only the minimum (w, v) pair is checked (DESIGN.md §2.2).
    check_queue_[x].emplace_back(min_verify_w, min_verify_v);
    ctx.charge_memory(2);
  }
  if (incoming.valid()) improve_candidate(ctx, incoming);

  // Completed adjacency checks produce a confirmed bridge for v.
  if ((mflags_[x] & kCheckInFlight) != 0 && (mflags_[x] >> kReplyCountShift) >= 2) {
    mflags_[x] &= static_cast<std::uint8_t>(~kCheckInFlight);
    NodeId uprime = kNoNode;
    if ((mflags_[x] & kReplyYesSucc) != 0) {
      uprime = succ_[x];  // paper line 16 prefers succ(v)
    } else if ((mflags_[x] & kReplyYesPred) != 0) {
      uprime = pred_[x];
    }
    if (uprime != kNoNode) {
      ctx.send(cur_v_[x], Message::make(tag(kFound),
                                        {uprime, static_cast<std::int64_t>(csize_[x])}));
    }
  }

  // Deferred renumber floods (kept a round apart from the build messages
  // that share cycle edges).
  if (pending_kind_[x] != 0 && ctx.round() > pending_round_[x]) {
    Message msg;
    if (pending_kind_[x] == 1) {
      msg = Message::make(tag(kRenumI), {pending_a_[x], pending_b_[x]});
    } else {
      msg = Message::make(tag(kRenumJ),
                          {pending_a_[x], pending_b_[x], pending_c_[x], pending_d_[x]});
    }
    pending_kind_[x] = 0;
    flood_color(ctx, msg);
  }

  process_check_queue(ctx);
  if (!check_queue_[x].empty() && (mflags_[x] & kCheckInFlight) == 0) ctx.wake_in(1);
}

void MergeEngine::handle_message(Context& ctx, const Message& msg) {
  const NodeId x = ctx.self();
  const auto off = static_cast<std::uint16_t>(msg.tag - base_tag_);
  switch (off) {
    case kBuild: {
      if ((mflags_[x] & (kAlive | kBridgeEndpoint | kRenumDone)) != kAlive) break;
      const auto t = static_cast<std::uint32_t>(msg.data[0]);
      const auto s_i = static_cast<std::uint32_t>(msg.data[1]);
      const auto w = static_cast<NodeId>(msg.data[2]);
      const auto uprime = static_cast<NodeId>(msg.data[3]);
      if (uprime != succ_[x] && uprime != pred_[x]) break;  // stale/corrupt
      const bool side_succ = (uprime == succ_[x]);
      const std::uint32_t q_u = cycindex_[x];
      const std::uint32_t s_j = csize_[x];
      // u's links: predecessor is v, successor is the remaining old cycle
      // neighbor (the cut edge (u, u′) disappears from the cycle).
      const NodeId other = side_succ ? pred_[x] : succ_[x];
      pred_[x] = msg.from;
      succ_[x] = other;
      cycindex_[x] = t + 1;
      csize_[x] = s_i + s_j;
      mflags_[x] |= kBridgeEndpoint | kRenumDone;
      ctx.send(uprime, Message::make(tag(kBuildPartner), {w}));
      // C_j's renumber flood goes out next round (this round's edge to u′
      // carries kBuildPartner).
      pending_kind_[x] = 2;
      pending_round_[x] = ctx.round();
      pending_a_[x] = t;
      pending_b_[x] = q_u;
      pending_c_[x] = side_succ ? 1 : 0;
      pending_d_[x] = s_i;
      ctx.wake_in(1);
      break;
    }
    case kBuildPartner: {
      if ((mflags_[x] & (kAlive | kBridgeEndpoint)) != kAlive) break;
      const auto w = static_cast<NodeId>(msg.data[0]);
      // u′'s successor becomes succ(v) (= w); its predecessor is the
      // remaining old neighbor (the cut edge (u, u′) disappears).
      const NodeId other = (pred_[x] == msg.from) ? succ_[x] : pred_[x];
      pred_[x] = other;
      succ_[x] = w;
      mflags_[x] |= kBridgeEndpoint;
      break;
    }
    case kBuildCut: {
      if ((mflags_[x] & kAlive) == 0) break;
      const auto uprime = static_cast<NodeId>(msg.data[0]);
      // succ(v)'s predecessor becomes u′ (the edge (v, succ v) is cut).
      if (pred_[x] == msg.from) {
        pred_[x] = uprime;
      } else if (succ_[x] == msg.from) {
        succ_[x] = uprime;
      }
      break;
    }
    case kRenumI: {
      if ((mflags_[x] & kRenumDone) != 0) break;
      mflags_[x] |= kRenumDone;
      flood_color(ctx, msg, msg.from);
      apply_renum_i(ctx, static_cast<std::uint32_t>(msg.data[0]),
                    static_cast<std::uint32_t>(msg.data[1]));
      break;
    }
    case kRenumJ: {
      if ((mflags_[x] & kRenumDone) != 0) break;
      mflags_[x] |= kRenumDone;
      flood_color(ctx, msg, msg.from);
      apply_renum_j(ctx, static_cast<std::uint32_t>(msg.data[0]),
                    static_cast<std::uint32_t>(msg.data[1]), msg.data[2] != 0,
                    static_cast<std::uint32_t>(msg.data[3]));
      break;
    }
    default:
      break;
  }
}

graph::CycleIncidence MergeEngine::incidence() const {
  graph::CycleIncidence inc;
  inc.neighbors_of.resize(n_);
  for (NodeId v = 0; v < n_; ++v) inc.neighbors_of[v] = {pred_[v], succ_[v]};
  return inc;
}

// ---------------------------------------------------------------------------
// DHC2 protocol
// ---------------------------------------------------------------------------

namespace {

class Dhc2Protocol : public congest::Protocol {
 public:
  Dhc2Protocol(NodeId n, std::uint32_t num_colors, const Dhc2Config& cfg)
      : n_(n), num_colors_(num_colors), cfg_(cfg), colors_(n, 0) {}

  void begin(Context& ctx) override {
    // Paper Alg. 2 line 6: every node draws a uniform random color.
    colors_[ctx.self()] = static_cast<std::uint32_t>(ctx.rng().below(num_colors_));
  }

  void step(Context& ctx) override {
    switch (stage_) {
      case Stage::kGlobalSetup:
        global_setup_->step(ctx);
        break;
      case Stage::kPartitionSetup:
        partition_setup_->step(ctx);
        break;
      case Stage::kDra:
        dra_->step(ctx);
        break;
      case Stage::kMergeDiscovery:
      case Stage::kMergeBuild:
        merge_->step(ctx);
        break;
      case Stage::kInit:
      case Stage::kDone:
        break;
    }
  }

  bool on_quiescence(Network& net) override {
    switch (stage_) {
      case Stage::kInit:
        global_setup_.emplace(n_, /*base_tag=*/1);
        net.mark_phase("global_setup");
        stage_ = Stage::kGlobalSetup;
        global_setup_->advance(net);
        return true;
      case Stage::kGlobalSetup:
        global_setup_->advance(net);
        if (global_setup_->done()) {
          // The global BFS tree prices the phase barriers (termination
          // detection = convergecast + broadcast over it).
          net.set_barrier_cost(2ULL * global_setup_->tree_depth(0) + 2);
          partition_setup_.emplace(n_, /*base_tag=*/8, colors_);
          net.mark_phase("partition_setup");
          stage_ = Stage::kPartitionSetup;
          partition_setup_->advance(net);
        }
        return true;
      case Stage::kPartitionSetup:
        partition_setup_->advance(net);
        if (partition_setup_->done()) {
          dra_.emplace(n_, /*base_tag=*/16, &*partition_setup_, cfg_.dra);
          net.mark_phase("dra");
          stage_ = Stage::kDra;
          dra_->start(net);
        }
        return true;
      case Stage::kDra:
        if (!dra_->all_succeeded()) {
          failure_ = "Phase 1 failed: " + std::to_string(dra_->aborted_groups()) +
                     " partition(s) aborted";
          stage_ = Stage::kDone;
          return false;
        }
        if (num_colors_ == 1) {
          stage_ = Stage::kDone;
          return false;  // δ = 1: the single partition's cycle is the answer
        }
        merge_.emplace(n_, /*base_tag=*/32, &*partition_setup_, &*dra_, num_colors_,
                       cfg_.merge_strategy);
        net.mark_phase("merge");
        stage_ = Stage::kMergeDiscovery;
        merge_->start_level(net);
        return true;
      case Stage::kMergeDiscovery:
        stage_ = Stage::kMergeBuild;
        merge_->start_build(net);
        return true;
      case Stage::kMergeBuild:
        if (merge_->levels_remaining()) {
          stage_ = Stage::kMergeDiscovery;
          merge_->start_level(net);
          return true;
        }
        stage_ = Stage::kDone;
        return false;
      case Stage::kDone:
        return false;
    }
    return false;
  }

  enum class Stage {
    kInit,
    kGlobalSetup,
    kPartitionSetup,
    kDra,
    kMergeDiscovery,
    kMergeBuild,
    kDone
  };

  NodeId n_;
  std::uint32_t num_colors_;
  Dhc2Config cfg_;
  std::vector<std::uint32_t> colors_;
  Stage stage_ = Stage::kInit;
  std::string failure_;
  std::optional<congest::SetupComponent> global_setup_;
  std::optional<congest::SetupComponent> partition_setup_;
  std::optional<DraComponent> dra_;
  std::optional<MergeEngine> merge_;
};

}  // namespace

Result run_dhc2(const graph::Graph& g, std::uint64_t seed, const Dhc2Config& cfg) {
  Result result;
  const NodeId n = g.n();
  if (n < 3) {
    result.failure_reason = "graph has fewer than 3 nodes";
    return result;
  }
  DHC_REQUIRE(cfg.delta > 0.0 && cfg.delta <= 1.0, "delta must lie in (0, 1]");

  // K ≈ n^{1−δ} partitions of expected size n^δ (paper §II-B).
  std::uint32_t num_colors = cfg.num_colors_override;
  if (num_colors == 0) {
    num_colors = static_cast<std::uint32_t>(
        std::llround(std::pow(static_cast<double>(n), 1.0 - cfg.delta)));
    num_colors = std::max<std::uint32_t>(num_colors, 1);
  }

  congest::NetworkConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.observer = cfg.observer;
  net_cfg.shards = cfg.shards;
  net_cfg.trace = cfg.trace;
  net_cfg.node_stats = cfg.node_stats;
  net_cfg.faults = cfg.faults;
  congest::Network net(g, net_cfg);
  Dhc2Protocol protocol(n, num_colors, cfg);
  result.metrics = net.run(protocol);

  result.stats["num_colors"] = static_cast<double>(num_colors);
  result.stats["dra_steps"] =
      protocol.dra_ ? static_cast<double>(protocol.dra_->max_group_steps()) : 0.0;
  result.stats["aborted_partitions"] =
      protocol.dra_ ? static_cast<double>(protocol.dra_->aborted_groups()) : 0.0;
  if (protocol.dra_) {
    result.stats["starved_aborts"] = static_cast<double>(protocol.dra_->starved_aborts());
    result.stats["budget_aborts"] = static_cast<double>(protocol.dra_->budget_aborts());
    result.stats["tiny_aborts"] = static_cast<double>(protocol.dra_->tiny_aborts());
    result.stats["dra_rotations"] = static_cast<double>(protocol.dra_->total_rotations());
    result.stats["dra_extensions"] = static_cast<double>(protocol.dra_->total_extensions());
    result.stats["dra_restarts"] = static_cast<double>(protocol.dra_->restarts());
  }
  if (protocol.merge_) {
    result.stats["merge_levels"] = static_cast<double>(protocol.merge_->total_levels());
    result.stats["bridges_built"] = static_cast<double>(protocol.merge_->bridges_built());
    result.stats["verify_messages"] = static_cast<double>(protocol.merge_->verify_messages());
    result.stats["candidates_found"] = static_cast<double>(protocol.merge_->candidates_found());
    auto& bridges = result.series["bridges_per_level"];
    for (const auto b : protocol.merge_->bridges_per_level()) {
      bridges.push_back(static_cast<double>(b));
    }
    auto& cands = result.series["candidates_per_level"];
    for (const auto c : protocol.merge_->candidates_per_level()) {
      cands.push_back(static_cast<double>(c));
    }
  }
  if (protocol.global_setup_) {
    result.stats["global_tree_depth"] =
        static_cast<double>(protocol.global_setup_->tree_depth(0));
  }

  if (result.metrics.hit_round_limit) {
    result.failure_reason = "round limit exceeded";
    return result;
  }
  if (!protocol.failure_.empty()) {
    result.failure_reason = protocol.failure_;
    return result;
  }

  result.cycle = protocol.merge_ ? protocol.merge_->incidence() : protocol.dra_->incidence();
  const auto verdict = graph::verify_cycle_incidence(g, result.cycle);
  if (!verdict.ok()) {
    result.failure_reason = "final cycle invalid: " + *verdict.failure;
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace dhc::core
