#include "core/path_treap.h"

#include <algorithm>

#include "support/require.h"

namespace dhc::core {

PathTreap::PathTreap(NodeId capacity, std::uint64_t seed) {
  const std::size_t n = capacity;
  left_.assign(n, kNull);
  right_.assign(n, kNull);
  parent_.assign(n, kNull);
  size_.assign(n, 1);
  flip_.assign(n, 0);
  prio_.assign(n, 0);
  on_path_.assign(n, 0);
  support::Rng rng(seed);
  for (auto& p : prio_) p = rng.next_u64();
}

void PathTreap::push_down(std::uint32_t t) const {
  if (flip_[t] == 0) return;
  std::swap(left_[t], right_[t]);
  if (left_[t] != kNull) flip_[left_[t]] ^= 1;
  if (right_[t] != kNull) flip_[right_[t]] ^= 1;
  flip_[t] = 0;
}

void PathTreap::pull_up(std::uint32_t t) {
  std::uint32_t s = 1;
  if (left_[t] != kNull) {
    s += size_[left_[t]];
    parent_[left_[t]] = t;
  }
  if (right_[t] != kNull) {
    s += size_[right_[t]];
    parent_[right_[t]] = t;
  }
  size_[t] = s;
}

std::uint32_t PathTreap::merge(std::uint32_t a, std::uint32_t b) {
  if (a == kNull) return b;
  if (b == kNull) return a;
  if (prio_[a] > prio_[b]) {
    push_down(a);
    right_[a] = merge(right_[a], b);
    pull_up(a);
    return a;
  }
  push_down(b);
  left_[b] = merge(a, left_[b]);
  pull_up(b);
  return b;
}

std::pair<std::uint32_t, std::uint32_t> PathTreap::split(std::uint32_t t, std::uint32_t k) {
  if (t == kNull) return {kNull, kNull};
  push_down(t);
  const std::uint32_t left_size = (left_[t] == kNull) ? 0 : size_[left_[t]];
  if (k <= left_size) {
    auto [a, b] = split(left_[t], k);
    left_[t] = b;
    pull_up(t);
    if (a != kNull) parent_[a] = kNull;
    return {a, t};
  }
  auto [a, b] = split(right_[t], k - left_size - 1);
  right_[t] = a;
  pull_up(t);
  if (b != kNull) parent_[b] = kNull;
  return {t, b};
}

void PathTreap::append(NodeId v) {
  DHC_REQUIRE(v < on_path_.size(), "append: node " << v << " beyond treap capacity");
  DHC_REQUIRE(on_path_[v] == 0, "append: node " << v << " is already on the path");
  on_path_[v] = 1;
  left_[v] = kNull;
  right_[v] = kNull;
  parent_[v] = kNull;
  size_[v] = 1;
  flip_[v] = 0;
  root_ = merge(root_, v);
  if (root_ != kNull) parent_[root_] = kNull;
}

std::uint32_t PathTreap::position(NodeId v) const {
  DHC_REQUIRE(v < on_path_.size() && on_path_[v] == 1, "position: node " << v << " not on path");
  // Settle lazy flips along the root→v chain, then count by subtree sizes.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t t = v; t != kNull; t = parent_[t]) chain.push_back(t);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) push_down(*it);

  std::uint32_t pos = (left_[v] == kNull) ? 1 : size_[left_[v]] + 1;
  for (std::uint32_t t = v; parent_[t] != kNull; t = parent_[t]) {
    const std::uint32_t p = parent_[t];
    if (right_[p] == t) {
      pos += 1 + ((left_[p] == kNull) ? 0 : size_[left_[p]]);
    }
  }
  return pos;
}

NodeId PathTreap::at(std::uint32_t pos) const {
  DHC_REQUIRE(pos >= 1 && pos <= size(), "at: position " << pos << " outside path of size " << size());
  std::uint32_t t = root_;
  while (true) {
    push_down(t);
    const std::uint32_t left_size = (left_[t] == kNull) ? 0 : size_[left_[t]];
    if (pos == left_size + 1) return static_cast<NodeId>(t);
    if (pos <= left_size) {
      t = left_[t];
    } else {
      pos -= left_size + 1;
      t = right_[t];
    }
  }
}

void PathTreap::rotate_suffix(std::uint32_t j) {
  DHC_REQUIRE(j >= 1 && j <= size(), "rotate_suffix: split point " << j << " outside path");
  auto [a, b] = split(root_, j);
  if (b != kNull) flip_[b] ^= 1;
  root_ = merge(a, b);
  if (root_ != kNull) parent_[root_] = kNull;
}

void PathTreap::collect(std::uint32_t t, std::vector<NodeId>& out) const {
  if (t == kNull) return;
  push_down(t);
  collect(left_[t], out);
  out.push_back(static_cast<NodeId>(t));
  collect(right_[t], out);
}

std::vector<NodeId> PathTreap::to_vector() const {
  std::vector<NodeId> out;
  out.reserve(size());
  collect(root_, out);
  return out;
}

}  // namespace dhc::core
