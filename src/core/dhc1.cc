#include "core/dhc1.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "congest/setup.h"
#include "support/require.h"

namespace dhc::core {

using congest::Context;
using congest::Message;
using congest::Network;

namespace {

// Phase-2 message tags (base 64).
constexpr std::uint16_t kPick = 64;          // {r}                    partition tree
constexpr std::uint16_t kPartner = 65;       // {}                     agent → pred
constexpr std::uint16_t kAnnounce = 66;      // {hyper}                port → neighbors
constexpr std::uint16_t kCountUp = 67;       // {count, min_group}     global tree up
constexpr std::uint16_t kCountDown = 68;     // {K_live, first_group}  global tree down
constexpr std::uint16_t kFire = 69;          // {pos, steps}           agent → exit port
constexpr std::uint16_t kFired = 70;         // {y_hyper, y_node}      exit port → agent
constexpr std::uint16_t kFireEmpty = 71;     // {}                     exit port → agent
constexpr std::uint16_t kHProgress = 72;     // {pos, steps, from_hyper}  port x → port y
constexpr std::uint16_t kHJoin = 73;         // {pos, steps, from_hyper, x_node}  y → agent
constexpr std::uint16_t kHRejectToPort = 74; // {steps}                agent_j → port y
constexpr std::uint16_t kHRejectBack = 75;   // {steps}                y → x → agent_h
constexpr std::uint16_t kHRotation = 76;     // {h, j, head_hyper, seq}  global tree
constexpr std::uint16_t kHSuccess = 77;      // {}                     global tree
constexpr std::uint16_t kHAbort = 78;        // {}                     global tree
constexpr std::uint16_t kAssign = 79;        // {remote}               agent → port
constexpr std::uint16_t kHRestart = 80;      // {}                     global tree

constexpr std::uint32_t kNoHyper = static_cast<std::uint32_t>(-1);

struct PortEdge {
  NodeId node = kNoNode;        // the remote port node
  std::uint32_t hyper = kNoHyper;  // the remote hypernode (color group)
};

struct HyperLink {
  std::uint32_t hyper = kNoHyper;
  NodeId my_port = kNoNode;
  NodeId remote = kNoNode;
  bool valid() const { return hyper != kNoHyper; }
};

class Dhc1Protocol : public congest::Protocol {
 public:
  Dhc1Protocol(NodeId n, std::uint32_t num_colors, const Dhc1Config& cfg)
      : n_(n), num_colors_(num_colors), cfg_(cfg), colors_(n, 0) {
    is_agent_.assign(n, 0);
    is_partner_.assign(n, 0);
    partner_of_.assign(n, kNoNode);
    port_unused_.assign(n, {});
    last_progress_from_.assign(n, kNoNode);
    assigned_remote_.assign(n, kNoNode);
    hypindex_.assign(n, 0);
    pred_link_.assign(n, {});
    succ_link_.assign(n, {});
    pend_link_.assign(n, {});
    up_reports_.assign(n, 0);
    up_count_.assign(n, 0);
    up_min_.assign(n, kNoHyper);
  }

  void begin(Context& ctx) override {
    colors_[ctx.self()] = static_cast<std::uint32_t>(ctx.rng().below(num_colors_));
  }

  // -- stage routing ---------------------------------------------------

  void step(Context& ctx) override {
    switch (stage_) {
      case Stage::kGlobalSetup:
        global_setup_->step(ctx);
        return;
      case Stage::kPartitionSetup:
        partition_setup_->step(ctx);
        return;
      case Stage::kDra:
        dra_->step(ctx);
        return;
      case Stage::kPickStage:
      case Stage::kAnnounceStage:
      case Stage::kCensus:
      case Stage::kHyper:
        phase2_step(ctx);
        return;
      case Stage::kInit:
      case Stage::kDone:
        return;
    }
  }

  bool parallel_step_safe() const override {
    // Phase 1 (setup trees + per-partition DRA) honors the per-node
    // discipline and shards cleanly — it also carries nearly all of DHC1's
    // message volume.  Phase 2's hypernode walk deliberately coordinates
    // through shared protocol scalars (head_, hyper_steps_, hyper_done_,
    // the census results) as a simulator shortcut; those sparse rounds step
    // sequentially under every shard count.
    return stage_ == Stage::kInit || stage_ == Stage::kGlobalSetup ||
           stage_ == Stage::kPartitionSetup || stage_ == Stage::kDra;
  }

  bool on_quiescence(Network& net) override {
    switch (stage_) {
      case Stage::kInit:
        global_setup_.emplace(n_, /*base_tag=*/1);
        net.mark_phase("global_setup");
        stage_ = Stage::kGlobalSetup;
        global_setup_->advance(net);
        return true;
      case Stage::kGlobalSetup:
        global_setup_->advance(net);
        if (global_setup_->done()) {
          net.set_barrier_cost(2ULL * global_setup_->tree_depth(0) + 2);
          partition_setup_.emplace(n_, /*base_tag=*/8, colors_);
          net.mark_phase("partition_setup");
          stage_ = Stage::kPartitionSetup;
          partition_setup_->advance(net);
        }
        return true;
      case Stage::kPartitionSetup:
        partition_setup_->advance(net);
        if (partition_setup_->done()) {
          dra_.emplace(n_, /*base_tag=*/16, &*partition_setup_, cfg_.dra);
          net.mark_phase("dra");
          stage_ = Stage::kDra;
          dra_->start(net);
        }
        return true;
      case Stage::kDra:
        if (!dra_->all_succeeded()) {
          failure_ = "Phase 1 failed: " + std::to_string(dra_->aborted_groups()) +
                     " partition(s) aborted";
          stage_ = Stage::kDone;
          return false;
        }
        net.mark_phase("hyper");
        stage_ = Stage::kPickStage;
        // Leaders draw the hypernode position.
        for (NodeId v = 0; v < n_; ++v) {
          if (partition_setup_->is_leader(v)) net.wake(v);
        }
        return true;
      case Stage::kPickStage:
        stage_ = Stage::kAnnounceStage;
        net.wake_all();
        return true;
      case Stage::kAnnounceStage:
        stage_ = Stage::kCensus;
        net.wake_all();
        return true;
      case Stage::kCensus:
        stage_ = Stage::kHyper;
        // The first hypernode's agent bootstraps on the census broadcast it
        // already received; wake agents so the head can start.
        for (NodeId v = 0; v < n_; ++v) {
          if (is_agent_[v] != 0) net.wake(v);
        }
        return true;
      case Stage::kHyper:
        stage_ = Stage::kDone;
        return false;
      case Stage::kDone:
        return false;
    }
    return false;
  }

  // -- phase 2 ----------------------------------------------------------

  void phase2_step(Context& ctx) {
    const NodeId x = ctx.self();

    // Stage-entry actions (nodes are woken at each sub-phase start).
    if (stage_ == Stage::kPickStage && stage_seen_[x] != 1) {
      stage_seen_[x] = 1;
      if (partition_setup_->is_leader(x)) {
        const auto size = partition_setup_->component_size(x);
        const auto r = static_cast<std::uint32_t>(1 + ctx.rng().below(size));
        handle_pick(ctx, r);
      }
    } else if (stage_ == Stage::kAnnounceStage && stage_seen_[x] != 2) {
      stage_seen_[x] = 2;
      if (is_agent_[x] != 0 || is_partner_[x] != 0) {
        const Message msg = Message::make(kAnnounce, {colors_[x]});
        const std::size_t degree = ctx.degree();
        for (std::size_t i = 0; i < degree; ++i) ctx.send_to_rank(i, msg);
      }
    } else if (stage_ == Stage::kCensus && stage_seen_[x] != 3) {
      stage_seen_[x] = 3;
      maybe_census_up(ctx);
    }

    for (const Message& msg : ctx.inbox()) handle_phase2_message(ctx, msg);

    // Deferred partner recruitment (see handle_pick).
    if (pending_partner_[x] != 0 && ctx.round() > pending_partner_round_[x]) {
      pending_partner_[x] = 0;
      ctx.send(partner_of_[x], Message::make(kPartner));
    }

    // Deferred port assignments after success.
    if (is_agent_[x] != 0 && agent_assigned_[x] == 1 &&
        ctx.round() > agent_assigned_round_[x]) {
      agent_assigned_[x] = 2;
      assign_ports(ctx);
      return;
    }

    // A hyper head woken by its settle timer acts now.
    if (stage_ == Stage::kHyper && is_agent_[x] != 0 && hyper_done_ == 0 && head_ == colors_[x] &&
        ctx.inbox().empty() && hypindex_[x] != 0 && !succ_link_[x].valid()) {
      fire(ctx);
    }
    // The first head bootstraps when woken after the census.
    if (stage_ == Stage::kHyper && is_agent_[x] != 0 && hyper_done_ == 0 && hypindex_[x] == 0 &&
        ctx.inbox().empty() && colors_[x] == first_group_ && head_ == kNoHyper) {
      if (k_live_ < 3) {
        hyper_abort(ctx);
        return;
      }
      hypindex_[x] = 1;
      head_ = colors_[x];
      fire(ctx);
    }
  }

  void handle_pick(Context& ctx, std::uint32_t r) {
    const NodeId x = ctx.self();
    // Relay the pick down the partition tree; the node at cycle position r
    // becomes the agent and recruits its cycle predecessor as partner (one
    // round later — the partner may also be a tree child receiving the pick
    // relay this round).
    if (dra_->cycle_index(x) == r) {
      is_agent_[x] = 1;
      partner_of_[x] = dra_->path_pred(x);
      pending_partner_[x] = 1;
      pending_partner_round_[x] = ctx.round();
      ctx.wake_in(1);
    }
    partition_setup_->send_to_children(ctx, Message::make(kPick, {r}));
  }

  void maybe_census_up(Context& ctx) {
    const NodeId x = ctx.self();
    if (up_reports_[x] != global_setup_->children(x).size()) return;
    const std::uint32_t count = up_count_[x] + (is_agent_[x] != 0 ? 1 : 0);
    const std::uint32_t mine = (is_agent_[x] != 0) ? colors_[x] : kNoHyper;
    const std::uint32_t min_group = std::min(up_min_[x], mine);
    up_reports_[x] = static_cast<std::uint32_t>(-1);  // sent
    if (global_setup_->parent(x) != kNoNode) {
      global_setup_->send_to_parent(
          ctx, Message::make(kCountUp, {count, static_cast<std::int64_t>(min_group)}));
    } else {
      // Root: publish the census.
      k_live_ = count;
      first_group_ = min_group;
      global_setup_->send_to_children(
          ctx, Message::make(kCountDown, {count, static_cast<std::int64_t>(min_group)}));
    }
  }

  void handle_phase2_message(Context& ctx, const Message& msg) {
    const NodeId x = ctx.self();
    switch (msg.tag) {
      case kPick:
        handle_pick(ctx, static_cast<std::uint32_t>(msg.data[0]));
        break;
      case kPartner: {
        is_partner_[x] = 1;
        partner_of_[x] = msg.from;  // the agent is the partner's cycle successor
        break;
      }
      case kAnnounce: {
        const auto hyper = static_cast<std::uint32_t>(msg.data[0]);
        if ((is_agent_[x] != 0 || is_partner_[x] != 0) && hyper != colors_[x]) {
          port_unused_[x].push_back({msg.from, hyper});
          port_all_[x].push_back({msg.from, hyper});
          ctx.charge_memory(4);
        }
        break;
      }
      case kCountUp: {
        up_count_[x] += static_cast<std::uint32_t>(msg.data[0]);
        up_min_[x] = std::min(up_min_[x], static_cast<std::uint32_t>(msg.data[1]));
        up_reports_[x] += 1;
        maybe_census_up(ctx);
        break;
      }
      case kCountDown: {
        k_live_ = static_cast<std::uint32_t>(msg.data[0]);
        first_group_ = static_cast<std::uint32_t>(msg.data[1]);
        global_setup_->send_to_children(ctx, msg);
        break;
      }
      case kFire: {
        // This node is the exit port: draw a random unused port edge.
        const auto pos = static_cast<std::uint32_t>(msg.data[0]);
        const auto steps = static_cast<std::uint64_t>(msg.data[1]);
        fire_from_port(ctx, pos, steps);
        break;
      }
      case kFired: {
        // Record the tentative successor link (mirrors DRA's optimistic succ).
        pend_link_[x] = {static_cast<std::uint32_t>(msg.data[0]),
                         /*my_port=*/last_fire_port_[x], static_cast<NodeId>(msg.data[1])};
        succ_link_[x] = pend_link_[x];
        break;
      }
      case kFireEmpty: {
        ++starved_;
        hyper_abort(ctx);
        break;
      }
      case kHProgress: {
        // Arriving at port y: consume the edge and hand over to the agent.
        const auto from_hyper = static_cast<std::uint32_t>(msg.data[2]);
        auto& list = port_unused_[x];
        for (std::size_t i = 0; i < list.size(); ++i) {
          if (list[i].node == msg.from) {
            list[i] = list.back();
            list.pop_back();
            ctx.charge_memory(-2);
            break;
          }
        }
        last_progress_from_[x] = msg.from;
        const Message join = Message::make(
            kHJoin, {msg.data[0], msg.data[1], from_hyper, msg.from});
        if (is_agent_[x] != 0) {
          handle_join(ctx, join, /*entry_port=*/x);
        } else {
          ctx.send(partner_of_[x], join);
        }
        break;
      }
      case kHJoin:
        handle_join(ctx, msg, /*entry_port=*/msg.from == partner_of_[x] ? partner_of_[x] : x);
        break;
      case kHRejectToPort: {
        // Route the rejection back along the discovered edge.
        if (last_progress_from_[x] != kNoNode) {
          ctx.send(last_progress_from_[x], Message::make(kHRejectBack, {msg.data[0]}));
        }
        break;
      }
      case kHRejectBack: {
        if (is_agent_[x] != 0) {
          // The head retries with a fresh draw.
          hyper_steps_ = static_cast<std::uint64_t>(msg.data[0]);
          succ_link_[x] = {};
          pend_link_[x] = {};
          fire(ctx);
        } else {
          ctx.send(partner_of_[x], msg);
        }
        break;
      }
      case kHRotation: {
        global_setup_->forward_on_tree(ctx, msg, msg.from);
        if (is_agent_[x] != 0) apply_hyper_rotation(ctx, msg);
        break;
      }
      case kHSuccess: {
        global_setup_->forward_on_tree(ctx, msg, msg.from);
        hyper_done_ = 1;
        if (is_agent_[x] != 0 && agent_assigned_[x] == 0) {
          // Assignments leave next round: this round's tree forwards may
          // share an edge with the partner.
          agent_assigned_[x] = 1;
          agent_assigned_round_[x] = ctx.round();
          ctx.wake_in(1);
        }
        break;
      }
      case kHAbort: {
        global_setup_->forward_on_tree(ctx, msg, msg.from);
        hyper_done_ = 2;
        break;
      }
      case kHRestart: {
        global_setup_->forward_on_tree(ctx, msg, msg.from);
        apply_hyper_restart(ctx);
        break;
      }
      case kAssign: {
        assigned_remote_[x] = static_cast<NodeId>(msg.data[0]);
        break;
      }
      default:
        break;
    }
  }

  /// Head agent: ask the current exit port to draw an edge.
  void fire(Context& ctx) {
    const NodeId x = ctx.self();
    if (hyper_steps_ >= hyper_budget()) {
      ++budget_aborts_;
      hyper_abort(ctx);
      return;
    }
    hyper_steps_ += 1;
    // Exit port: the port not used by the predecessor link; the first
    // hypernode (no pred) prefers its agent port, falling back to the
    // partner port when the agent port has no edges left.
    NodeId exit = kNoNode;
    if (pred_link_[x].valid()) {
      exit = (pred_link_[x].my_port == x) ? partner_of_[x] : x;
    } else {
      exit = !port_unused_[x].empty() ? x : partner_of_[x];
    }
    last_fire_port_[x] = exit;
    const auto pos = static_cast<std::int64_t>(hypindex_[x]);
    const auto steps = static_cast<std::int64_t>(hyper_steps_);
    if (exit == x) {
      fire_from_port(ctx, static_cast<std::uint32_t>(pos), static_cast<std::uint64_t>(steps));
    } else {
      ctx.send(exit, Message::make(kFire, {pos, steps}));
    }
  }

  /// Exit-port node: draw a random unused port edge and send progress.
  void fire_from_port(Context& ctx, std::uint32_t pos, std::uint64_t steps) {
    const NodeId x = ctx.self();
    const NodeId agent = (is_agent_[x] != 0) ? x : partner_of_[x];
    auto& list = port_unused_[x];
    if (list.empty()) {
      if (agent == x) {
        ++starved_;
        hyper_abort(ctx);
      } else {
        ctx.send(agent, Message::make(kFireEmpty));
      }
      return;
    }
    const std::size_t idx = static_cast<std::size_t>(ctx.rng().below(list.size()));
    const PortEdge edge = list[idx];
    list[idx] = list.back();
    list.pop_back();
    ctx.charge_memory(-2);
    ctx.send(edge.node,
             Message::make(kHProgress, {pos, static_cast<std::int64_t>(steps), colors_[x]}));
    const Message fired =
        Message::make(kFired, {edge.hyper, edge.node});
    if (agent == x) {
      pend_link_[x] = {edge.hyper, x, edge.node};
      succ_link_[x] = pend_link_[x];
    } else {
      ctx.send(agent, fired);
    }
  }

  /// Agent of hypernode j: a progress edge reached port `entry_port`.
  void handle_join(Context& ctx, const Message& msg, NodeId entry_port) {
    const NodeId x = ctx.self();
    if (hyper_done_ != 0) return;
    const auto pos = static_cast<std::uint32_t>(msg.data[0]);
    const auto steps = static_cast<std::uint64_t>(msg.data[1]);
    const auto from_hyper = static_cast<std::uint32_t>(msg.data[2]);
    const auto x_node = static_cast<NodeId>(msg.data[3]);
    // entry_port: the port of this hypernode the edge landed on.  When the
    // join was relayed by the partner, that port is the partner.
    const NodeId y = (msg.tag == kHJoin && msg.from == partner_of_[x]) ? partner_of_[x] : x;
    (void)entry_port;

    if (hypindex_[x] == 0) {
      // Extension: join the hyper path; this agent becomes the head.
      hypindex_[x] = pos + 1;
      pred_link_[x] = {from_hyper, y, x_node};
      succ_link_[x] = {};
      head_ = colors_[x];
      hyper_steps_ = steps;
      ++extensions_;
      fire(ctx);
      return;
    }
    if (hypindex_[x] == 1 && pos == k_live_ && y != succ_link_[x].my_port) {
      // The hyper cycle closes on the first hypernode's free port.
      pred_link_[x] = {from_hyper, y, x_node};
      hyper_steps_ = steps;
      hyper_done_ = 1;
      broadcast_global(ctx, Message::make(kHSuccess));
      agent_assigned_[x] = 1;
      agent_assigned_round_[x] = ctx.round();
      ctx.wake_in(1);
      return;
    }
    if (succ_link_[x].valid() && y == succ_link_[x].my_port) {
      // Valid rotation: the edge landed on the suffix-facing port.
      ++rotations_;
      succ_link_[x] = {from_hyper, y, x_node};
      broadcast_global(ctx,
                       Message::make(kHRotation, {pos, hypindex_[x], from_hyper,
                                                  static_cast<std::int64_t>(steps)}));
      return;
    }
    // Wrong port: unrealizable rotation; tell the head to redraw.
    ++wrong_port_rejects_;
    const Message reject = Message::make(kHRejectToPort, {static_cast<std::int64_t>(steps)});
    if (y == x) {
      // The edge landed on the agent port itself; route straight back.
      if (last_progress_from_[x] != kNoNode) {
        ctx.send(last_progress_from_[x], Message::make(kHRejectBack, {reject.data[0]}));
      }
    } else {
      ctx.send(y, reject);
    }
  }

  void apply_hyper_rotation(Context& ctx, const Message& msg) {
    const NodeId x = ctx.self();
    if (hyper_done_ != 0) return;
    const auto h = static_cast<std::uint32_t>(msg.data[0]);
    const auto j = static_cast<std::uint32_t>(msg.data[1]);
    const auto head_hyper = static_cast<std::uint32_t>(msg.data[2]);
    const auto seq = static_cast<std::uint64_t>(msg.data[3]);
    const std::uint32_t i = hypindex_[x];
    if (i <= j || i > h) return;
    hypindex_[x] = h + j + 1 - i;
    std::swap(pred_link_[x], succ_link_[x]);
    if (head_hyper == colors_[x]) pred_link_[x] = pend_link_[x];
    if (hypindex_[x] == h) {
      succ_link_[x] = {};
      head_ = colors_[x];
      hyper_steps_ = seq;
      ctx.wake_in(2ULL * global_setup_->tree_depth(x) + 2);
    }
  }

  void hyper_abort(Context& ctx) {
    if (hyper_done_ != 0) return;
    if (hyper_attempt_ + 1 < cfg_.max_hyper_attempts && k_live_ >= 3) {
      // Retry Phase 2 with fresh randomness: everyone resets hyper state
      // and ports refill their edge lists (the DRA restart trick, one
      // level up).
      ++hyper_restarts_;
      broadcast_global(ctx, Message::make(kHRestart));
      apply_hyper_restart(ctx);
      return;
    }
    hyper_done_ = 2;
    broadcast_global(ctx, Message::make(kHAbort));
  }

  void apply_hyper_restart(Context& ctx) {
    const NodeId x = ctx.self();
    if (restart_seen_[x] == hyper_restarts_) return;
    restart_seen_[x] = hyper_restarts_;
    hypindex_[x] = 0;
    pred_link_[x] = {};
    succ_link_[x] = {};
    pend_link_[x] = {};
    if (is_agent_[x] != 0 || is_partner_[x] != 0) {
      port_unused_[x] = port_all_[x];
      last_progress_from_[x] = kNoNode;
    }
    // Shared hyper bookkeeping resets with the first application.
    if (head_ != kNoHyper || hyper_steps_ != 0) {
      head_ = kNoHyper;
      hyper_steps_ = 0;
      hyper_attempt_ += 1;
    }
    // The first hypernode's agent re-bootstraps once the broadcast settles.
    if (is_agent_[x] != 0 && colors_[x] == first_group_) {
      ctx.wake_in(2ULL * global_setup_->tree_depth(x) + 2);
    }
  }

  /// On success: agents tell each port the remote endpoint of its G′ edge.
  void assign_ports(Context& ctx) {
    const NodeId x = ctx.self();
    for (const HyperLink* link : {&pred_link_[x], &succ_link_[x]}) {
      if (!link->valid()) continue;
      if (link->my_port == x) {
        assigned_remote_[x] = link->remote;
      } else {
        ctx.send(link->my_port, Message::make(kAssign, {link->remote}));
      }
    }
  }

  void broadcast_global(Context& ctx, const Message& msg) {
    global_setup_->forward_on_tree(ctx, msg, kNoNode);
  }

  std::uint64_t hyper_budget() const {
    const double k = std::max<double>(k_live_, 3.0);
    return static_cast<std::uint64_t>(cfg_.hyper_step_multiplier * k * std::log(k)) + 16;
  }

  /// Builds the final per-node incidence: ports splice their G′ edge with
  /// the sub-cycle edge facing away from their partner; everyone else keeps
  /// both sub-cycle edges.
  graph::CycleIncidence final_incidence() const {
    graph::CycleIncidence inc;
    inc.neighbors_of.resize(n_);
    for (NodeId v = 0; v < n_; ++v) {
      if (is_agent_[v] != 0) {
        inc.neighbors_of[v] = {dra_->path_succ(v), assigned_remote_[v]};
      } else if (is_partner_[v] != 0) {
        inc.neighbors_of[v] = {dra_->path_pred(v), assigned_remote_[v]};
      } else {
        inc.neighbors_of[v] = {dra_->path_pred(v), dra_->path_succ(v)};
      }
    }
    return inc;
  }

  enum class Stage {
    kInit,
    kGlobalSetup,
    kPartitionSetup,
    kDra,
    kPickStage,
    kAnnounceStage,
    kCensus,
    kHyper,
    kDone
  };

  NodeId n_;
  std::uint32_t num_colors_;
  Dhc1Config cfg_;
  std::vector<std::uint32_t> colors_;
  Stage stage_ = Stage::kInit;
  std::string failure_;
  std::optional<congest::SetupComponent> global_setup_;
  std::optional<congest::SetupComponent> partition_setup_;
  std::optional<DraComponent> dra_;

  // Phase-2 per-node state.
  std::vector<std::uint8_t> stage_seen_ = std::vector<std::uint8_t>(n_, 0);
  std::vector<std::uint8_t> is_agent_;
  std::vector<std::uint8_t> is_partner_;
  std::vector<NodeId> partner_of_;
  std::vector<std::vector<PortEdge>> port_unused_;
  std::vector<std::vector<PortEdge>> port_all_ = std::vector<std::vector<PortEdge>>(n_);
  std::vector<std::uint32_t> restart_seen_ = std::vector<std::uint32_t>(n_, 0);
  std::uint32_t hyper_attempt_ = 0;
  std::uint32_t hyper_restarts_ = 0;
  std::vector<NodeId> last_progress_from_;
  std::vector<NodeId> assigned_remote_;
  std::vector<NodeId> last_fire_port_ = std::vector<NodeId>(n_, kNoNode);
  std::vector<std::uint32_t> hypindex_;
  std::vector<HyperLink> pred_link_;
  std::vector<HyperLink> succ_link_;
  std::vector<HyperLink> pend_link_;
  std::vector<std::uint32_t> up_reports_;
  std::vector<std::uint32_t> up_count_;
  std::vector<std::uint32_t> up_min_;

  // Hyper-path bookkeeping (agent-side; single head at a time).
  std::uint32_t k_live_ = 0;
  std::uint32_t first_group_ = kNoHyper;
  std::uint32_t head_ = kNoHyper;
  std::uint64_t hyper_steps_ = 0;
  std::uint8_t hyper_done_ = 0;  // 1 success, 2 abort
  std::vector<std::uint8_t> agent_assigned_ = std::vector<std::uint8_t>(n_, 0);
  std::vector<std::uint64_t> agent_assigned_round_ = std::vector<std::uint64_t>(n_, 0);
  std::vector<std::uint8_t> pending_partner_ = std::vector<std::uint8_t>(n_, 0);
  std::vector<std::uint64_t> pending_partner_round_ = std::vector<std::uint64_t>(n_, 0);

  // Counters for the experiment harness.
  std::uint64_t extensions_ = 0;
  std::uint64_t rotations_ = 0;
  std::uint64_t wrong_port_rejects_ = 0;
  std::uint32_t starved_ = 0;
  std::uint32_t budget_aborts_ = 0;
};

}  // namespace

Result run_dhc1(const graph::Graph& g, std::uint64_t seed, const Dhc1Config& cfg) {
  Result result;
  const NodeId n = g.n();
  if (n < 12) {
    result.failure_reason = "DHC1 needs at least 12 nodes (3 hypernodes of size >= 3)";
    return result;
  }
  std::uint32_t num_colors = cfg.num_colors_override;
  if (num_colors == 0) {
    num_colors =
        static_cast<std::uint32_t>(std::llround(std::sqrt(static_cast<double>(n))));
  }
  num_colors = std::max<std::uint32_t>(num_colors, 3);

  congest::NetworkConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.observer = cfg.observer;
  net_cfg.shards = cfg.shards;
  net_cfg.trace = cfg.trace;
  net_cfg.node_stats = cfg.node_stats;
  net_cfg.faults = cfg.faults;
  congest::Network net(g, net_cfg);
  Dhc1Protocol protocol(n, num_colors, cfg);
  result.metrics = net.run(protocol);

  result.stats["num_colors"] = static_cast<double>(num_colors);
  result.stats["live_hypernodes"] = static_cast<double>(protocol.k_live_);
  result.stats["hyper_steps"] = static_cast<double>(protocol.hyper_steps_);
  result.stats["hyper_rotations"] = static_cast<double>(protocol.rotations_);
  result.stats["hyper_extensions"] = static_cast<double>(protocol.extensions_);
  result.stats["wrong_port_rejects"] = static_cast<double>(protocol.wrong_port_rejects_);
  result.stats["hyper_restarts"] = static_cast<double>(protocol.hyper_restarts_);
  result.stats["dra_restarts"] =
      protocol.dra_ ? static_cast<double>(protocol.dra_->restarts()) : 0.0;
  if (protocol.global_setup_) {
    result.stats["global_tree_depth"] =
        static_cast<double>(protocol.global_setup_->tree_depth(0));
  }

  if (result.metrics.hit_round_limit) {
    result.failure_reason = "round limit exceeded";
    return result;
  }
  if (!protocol.failure_.empty()) {
    result.failure_reason = protocol.failure_;
    return result;
  }
  if (protocol.hyper_done_ != 1) {
    result.failure_reason = "Phase 2 failed: hypernode rotation aborted";
    return result;
  }

  result.cycle = protocol.final_incidence();
  const auto verdict = graph::verify_cycle_incidence(g, result.cycle);
  if (!verdict.ok()) {
    result.failure_reason = "final cycle invalid: " + *verdict.failure;
    return result;
  }
  result.success = true;
  return result;
}

}  // namespace dhc::core
