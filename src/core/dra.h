// DRA — the Distributed Rotation Algorithm (paper Algorithm 1).
//
// A single head per partition grows a Hamiltonian path: it draws a random
// unused incident edge and sends progress(pos) along it.  A fresh receiver
// joins the path and becomes the head; a receiver already on the path
// triggers a *rotation* — it broadcasts rotation(h, j, head) through its
// partition and every node renumbers its path index locally (Fig. 2):
//
//   i ← h + j + 1 − i   for j < i ≤ h,  swapping path pred/succ.
//
// The node whose new index is h becomes the head; it waits 2·depth+2 rounds
// (the broadcast settle time — all nodes know their partition tree depth
// from setup) before acting, so indices are never read stale.  The cycle
// closes when the head at pos = |partition| draws the edge to the node with
// index 1 (the leader).  A starved head (empty unused list, event E2) or an
// exhausted step budget (event E1) aborts the partition — failure is
// reported, never hung.
//
// DraComponent runs *all* partitions concurrently (they are disjoint color
// classes, so their messages never share an edge).  It is embedded by the
// DHC1/DHC2 protocols for Phase 1 and wrapped by run_dra() for standalone
// use (one partition spanning the whole graph).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/network.h"
#include "congest/setup.h"
#include "core/result.h"
#include "graph/graph.h"
#include "support/arena.h"
#include "support/atomic_stats.h"

namespace dhc::core {

using congest::kNoNode;
using graph::NodeId;

/// How rotation/success/abort broadcasts traverse a partition:
/// kTree — along the partition's BFS tree (O(partition) messages/broadcast),
/// kFlood — flooding every same-partition edge, the paper's literal wording
/// (O(partition edges) messages/broadcast).  Same Θ(depth) round cost;
/// EXP-A1 measures the difference.
enum class BroadcastMode : std::uint8_t { kTree, kFlood };

struct DraConfig {
  BroadcastMode broadcast = BroadcastMode::kTree;
  /// Abort an attempt after multiplier·s·ln s steps (Theorem 2 proves
  /// 7·s·ln s suffices whp for c ≥ 86; the default leaves slack for small c).
  double step_multiplier = 16.0;
  /// Independent retries per partition before giving up.  At the proof
  /// constants (c ≥ 86) a single attempt succeeds whp; at the practical
  /// densities the experiments explore, per-attempt starvation (event E2)
  /// has small constant probability, and restarting with fresh randomness
  /// drives partition failure to (small)^attempts — the "extend to failure
  /// probability O(1/n^α)" knob of Theorem 2, realized as restarts.
  std::uint32_t max_attempts = 8;

  /// Optional message tap for alternative cost models (k-machine, §IV; not
  /// owned, must outlive the run).
  congest::MessageObserver* observer = nullptr;

  /// Simulator shard count for intra-trial parallelism (0 = the DHC_SHARDS
  /// environment default; results are bitwise identical for every value —
  /// see congest::NetworkConfig::shards).
  std::uint32_t shards = 0;

  /// Optional fault plan: non-null runs the solver under the async delivery
  /// regime (--model=async; congest/fault_plan.h).  Not owned.
  const congest::FaultPlan* faults = nullptr;

  /// Optional flight-recorder sink (not owned, must outlive the run).
  congest::TraceSink* trace = nullptr;

  /// Per-node accounting mode (full vectors / streaming digests / off).
  congest::NodeStatsMode node_stats = congest::NodeStatsMode::kFull;
};

/// Per-partition rotation engine, embedded in an enclosing Protocol.
/// Requires a finished SetupComponent (leaders, trees, sizes, depths).
class DraComponent {
 public:
  /// Uses message tags base_tag..base_tag+3.
  DraComponent(NodeId n, std::uint16_t base_tag, const congest::SetupComponent* setup,
               DraConfig cfg);

  /// Uses message tags base_tag..base_tag+4.
  /// Wakes every partition leader; call once, after setup is done.
  void start(congest::Network& net);

  /// Handles this component's messages and head duties; call from the
  /// enclosing Protocol::step while the component is running.
  void step(congest::Context& ctx);

  /// True when every node's partition has finished (success or abort).
  bool all_done() const { return done_count_ == n_; }

  /// True when all partitions succeeded.
  bool all_succeeded() const { return all_done() && aborted_groups_ == 0; }

  bool node_done(NodeId v) const { return (flags_[v] & kDone) != 0; }
  bool node_succeeded(NodeId v) const { return (flags_[v] & kSuccess) != 0; }

  /// Path/cycle state (valid for nodes of succeeded partitions).
  std::uint32_t cycle_index(NodeId v) const { return cycindex_[v]; }
  NodeId path_pred(NodeId v) const { return pred_[v]; }
  NodeId path_succ(NodeId v) const { return succ_[v]; }

  /// Event counters for the experiment harness.
  std::uint64_t total_extensions() const { return extensions_; }
  std::uint64_t total_rotations() const { return rotations_; }
  std::uint64_t max_group_steps() const { return max_group_steps_; }
  std::uint32_t aborted_groups() const { return aborted_groups_; }
  std::uint32_t succeeded_groups() const { return succeeded_groups_; }
  std::uint32_t starved_aborts() const { return starved_aborts_; }    // event E2
  std::uint32_t budget_aborts() const { return budget_aborts_; }      // event E1
  std::uint32_t tiny_aborts() const { return tiny_aborts_; }          // |partition| < 3
  std::uint32_t restarts() const { return restarts_; }

  /// The per-node incidence (paper output convention) over all partitions:
  /// neighbors_of[v] = {pred, succ}.  Only meaningful where partitions
  /// succeeded; failed partitions leave kNoNode entries.
  graph::CycleIncidence incidence() const;

 private:
  std::uint16_t tag_progress() const { return base_tag_; }
  std::uint16_t tag_rotation() const { return static_cast<std::uint16_t>(base_tag_ + 1); }
  std::uint16_t tag_success() const { return static_cast<std::uint16_t>(base_tag_ + 2); }
  std::uint16_t tag_abort() const { return static_cast<std::uint16_t>(base_tag_ + 3); }
  std::uint16_t tag_restart() const { return static_cast<std::uint16_t>(base_tag_ + 4); }

  /// Node `v`'s live slice of the unused-edge slab (first unused_len_[v]
  /// entries of its CSR row).
  std::span<NodeId> unused_list(NodeId v) {
    return unused_slab_.subspan(slab_base_[v], unused_len_[v]);
  }
  /// Refills `v`'s slice with its same-partition neighbors; returns the new
  /// length.  Slices are disjoint per node, so parallel shards never alias.
  std::uint32_t refill_unused(congest::Context& ctx);

  void ensure_init(congest::Context& ctx);
  void act_as_head(congest::Context& ctx);
  void abort_or_restart(congest::Context& ctx);
  void abort_group(congest::Context& ctx);
  void reset_for_attempt(congest::Context& ctx);
  void broadcast(congest::Context& ctx, const congest::Message& msg, NodeId exclude);
  void on_progress(congest::Context& ctx, const congest::Message& msg);
  void apply_rotation(congest::Context& ctx, const congest::Message& msg);
  void finish_node(congest::Context& ctx, bool succeeded);
  std::uint64_t settle_delay(NodeId v) const;
  std::uint64_t step_budget(NodeId v) const;
  void remove_unused(NodeId v, NodeId w);

  NodeId n_;
  std::uint16_t base_tag_;
  const congest::SetupComponent* setup_;
  DraConfig cfg_;

  // Per-node booleans, bit-packed into one byte per node (was four u8
  // vectors).  Distinct nodes touch distinct bytes, so parallel shards
  // stepping different nodes never race.
  static constexpr std::uint8_t kInited = 1;
  static constexpr std::uint8_t kIsHead = 2;
  static constexpr std::uint8_t kDone = 4;
  static constexpr std::uint8_t kSuccess = 8;
  std::vector<std::uint8_t> flags_;

  // The per-node unused-edge lists (Alg. 1 line 3), flattened: one slab
  // carved from the arena in start(), sliced by exact same-partition degree
  // prefix sums.  Replaces n per-node std::vectors (24 B header + a heap
  // block each) with 4 B/entry + 8 B/node of offsets.
  support::Arena arena_;
  std::span<NodeId> unused_slab_;
  std::vector<std::uint32_t> slab_base_;  // n_+1 prefix sums into unused_slab_
  std::vector<std::uint32_t> unused_len_;

  std::vector<std::uint32_t> cycindex_;
  std::vector<NodeId> pred_;
  std::vector<NodeId> succ_;
  std::vector<NodeId> pending_target_;
  std::vector<std::uint64_t> my_steps_;
  std::vector<std::uint64_t> last_seq_;
  std::vector<std::uint32_t> attempt_;
  std::vector<std::uint64_t> attempt_start_steps_;

  // Aggregate statistics, bumped from step paths where several partitions
  // may be running in parallel shards — hence ShardCounter (relaxed atomic;
  // sums and maxima are order-free, so results stay shard-invariant).
  support::ShardCounter<std::uint32_t> done_count_ = 0;
  support::ShardCounter<std::uint64_t> extensions_ = 0;
  support::ShardCounter<std::uint64_t> rotations_ = 0;
  support::ShardCounter<std::uint64_t> max_group_steps_ = 0;
  support::ShardCounter<std::uint32_t> aborted_groups_ = 0;
  support::ShardCounter<std::uint32_t> succeeded_groups_ = 0;
  support::ShardCounter<std::uint32_t> starved_aborts_ = 0;
  support::ShardCounter<std::uint32_t> budget_aborts_ = 0;
  support::ShardCounter<std::uint32_t> tiny_aborts_ = 0;
  support::ShardCounter<std::uint32_t> restarts_ = 0;
};

/// Runs DRA standalone with the whole graph as a single partition (the
/// regime of Theorem 2: succeeds whp when p ≥ c·ln n / n, c large enough).
/// `seed` drives all randomness; the returned cycle (on success) is in the
/// paper's per-node form and should be checked with verify_cycle_incidence.
Result run_dra(const graph::Graph& g, std::uint64_t seed, const DraConfig& cfg = {});

}  // namespace dhc::core
