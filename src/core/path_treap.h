// Implicit treap with lazy reversal — the path representation behind the
// sequential rotation solver.
//
// The rotation step (paper Fig. 2) reverses the path suffix v_{j+1}..v_h.
// A naive array pays O(h−j) per rotation, which makes the O(n log n)-step
// algorithm quadratic; this treap supports append, position-of-node,
// node-at-position, and reverse-suffix in O(log n) expected each, so the
// Upcast root can solve instances with tens of thousands of nodes.
//
// Each graph node appears at most once on the path, so treap slots are
// indexed directly by NodeId.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "support/rng.h"

namespace dhc::core {

using graph::NodeId;

class PathTreap {
 public:
  /// Prepares slots for nodes 0..capacity-1; the path starts empty.
  explicit PathTreap(NodeId capacity, std::uint64_t seed = 0x9d2c5680);

  /// Number of nodes currently on the path.
  std::uint32_t size() const { return root_ == kNull ? 0 : size_[root_]; }

  /// True iff `v` is on the path.
  bool contains(NodeId v) const { return on_path_[v] != 0; }

  /// Appends `v` to the end of the path; `v` must not already be on it.
  void append(NodeId v);

  /// 1-based position of `v` on the path; `v` must be on the path.
  std::uint32_t position(NodeId v) const;

  /// Node at 1-based position `pos` (1 <= pos <= size()).
  NodeId at(std::uint32_t pos) const;

  /// The rotation step: reverses the suffix at positions j+1..size().
  /// Requires 1 <= j <= size().
  void rotate_suffix(std::uint32_t j);

  /// The full path, front (position 1) to back.
  std::vector<NodeId> to_vector() const;

 private:
  static constexpr std::uint32_t kNull = static_cast<std::uint32_t>(-1);

  void push_down(std::uint32_t t) const;
  void pull_up(std::uint32_t t);
  /// Splits the subtree `t` into (first k, rest); returns {left, right}.
  std::pair<std::uint32_t, std::uint32_t> split(std::uint32_t t, std::uint32_t k);
  std::uint32_t merge(std::uint32_t a, std::uint32_t b);
  void collect(std::uint32_t t, std::vector<NodeId>& out) const;

  // Node storage, indexed by NodeId.  `mutable` members change under lazy
  // flip propagation, which is logically const (the sequence is unchanged).
  mutable std::vector<std::uint32_t> left_;
  mutable std::vector<std::uint32_t> right_;
  mutable std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  mutable std::vector<std::uint8_t> flip_;
  std::vector<std::uint64_t> prio_;
  std::vector<std::uint8_t> on_path_;
  std::uint32_t root_ = kNull;
};

}  // namespace dhc::core
