#include "core/sequential.h"

#include <algorithm>
#include <cmath>

#include "core/path_treap.h"
#include "support/require.h"

namespace dhc::core {

using graph::CycleOrder;
using graph::Graph;

double theorem2_step_bound(graph::NodeId n) {
  return 7.0 * static_cast<double>(n) * std::log(static_cast<double>(std::max<NodeId>(n, 2)));
}

RotationResult rotation_hamiltonian_cycle(const Graph& g, support::Rng& rng,
                                          const RotationConfig& cfg) {
  RotationResult result;
  const NodeId n = g.n();
  if (n < 3) {
    result.failure_reason = "graph has fewer than 3 nodes";
    return result;
  }

  const std::uint64_t max_steps =
      cfg.max_steps_override != 0
          ? cfg.max_steps_override
          : static_cast<std::uint64_t>(cfg.step_multiplier * static_cast<double>(n) *
                                       std::log(static_cast<double>(n))) +
                16;

  // Per-node unused-edge lists (paper Alg. 1 line 3).  Edges consumed by
  // either endpoint are recorded in `used` and skipped lazily, so both
  // endpoints' removals (line 13) cost O(1) amortized.
  std::vector<std::vector<NodeId>> unused(n);
  for (NodeId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    unused[v].assign(nb.begin(), nb.end());
  }
  // Streaming used-edge filter: one bit per directed CSR edge id
  // (row_offsets[a] + rank of b in a's row).  Both directions are set when an
  // edge is consumed, so either endpoint's lazy skip sees it — the same
  // membership semantics as an unordered_set of edge keys at a fraction of
  // the bytes and with no rehash jitter.
  const auto row_off = g.row_offsets();
  const std::size_t total_directed = row_off.empty() ? 0 : row_off[n];
  std::vector<std::uint64_t> used((total_directed + 63) / 64, 0);
  const auto edge_id = [&](NodeId a, NodeId b) {
    const std::size_t rank = g.neighbor_rank(a, b);
    DHC_CHECK(rank != Graph::kNoRank, "unused-list entry is not an edge");
    return row_off[a] + rank;
  };
  const auto is_used = [&](std::size_t id) { return (used[id >> 6] >> (id & 63)) & 1u; };
  const auto mark_used = [&](std::size_t id) { used[id >> 6] |= std::uint64_t{1} << (id & 63); };

  PathTreap path(n, rng.next_u64());
  NodeId head = static_cast<NodeId>(rng.below(n));  // random v1 (paper §II-A2)
  path.append(head);

  while (result.stats.steps < max_steps) {
    // Draw a random unused edge at the head, skipping entries consumed from
    // the other side.
    auto& list = unused[head];
    NodeId target = graph::NodeId(-1);
    while (!list.empty()) {
      const std::size_t idx = static_cast<std::size_t>(rng.below(list.size()));
      const NodeId candidate = list[idx];
      list[idx] = list.back();
      list.pop_back();
      if (!is_used(edge_id(head, candidate))) {
        target = candidate;
        break;
      }
    }
    if (target == graph::NodeId(-1)) {
      result.failure_reason = "head ran out of unused edges (event E2)";
      return result;
    }
    mark_used(edge_id(head, target));
    mark_used(edge_id(target, head));
    result.stats.steps += 1;

    if (!path.contains(target)) {
      // Extension: the path grows by one node; the new node becomes head.
      path.append(target);
      head = target;
      result.stats.extensions += 1;
      continue;
    }

    const std::uint32_t h = path.size();
    const std::uint32_t j = path.position(target);
    if (j == 1 && h == n) {
      // pos = |V| and the head holds an edge to v1: the cycle closes
      // (paper Alg. 1 line 12).
      result.success = true;
      result.cycle.order = path.to_vector();
      return result;
    }
    // Rotation (paper Fig. 2): v1..vj vj+1..vh  →  v1..vj vh..vj+1.
    path.rotate_suffix(j);
    head = path.at(h);
    result.stats.rotations += 1;
  }

  result.failure_reason = "step budget exhausted (event E1)";
  return result;
}

namespace {

bool exact_dfs(const Graph& g, std::vector<NodeId>& order, std::vector<bool>& visited) {
  const NodeId n = g.n();
  if (order.size() == n) {
    return g.has_edge(order.back(), order.front());
  }
  const NodeId v = order.back();
  for (const NodeId w : g.neighbors(v)) {
    if (visited[w]) continue;
    visited[w] = true;
    order.push_back(w);
    if (exact_dfs(g, order, visited)) return true;
    order.pop_back();
    visited[w] = false;
  }
  return false;
}

}  // namespace

std::optional<CycleOrder> exact_hamiltonian_cycle(const Graph& g) {
  const NodeId n = g.n();
  if (n < 3) return std::nullopt;
  for (NodeId v = 0; v < n; ++v) {
    if (g.degree(v) < 2) return std::nullopt;  // a cycle needs degree >= 2
  }
  std::vector<NodeId> order{0};
  std::vector<bool> visited(n, false);
  visited[0] = true;
  if (exact_dfs(g, order, visited)) {
    CycleOrder cycle;
    cycle.order = std::move(order);
    return cycle;
  }
  return std::nullopt;
}

}  // namespace dhc::core
