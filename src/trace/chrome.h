// Chrome trace_event export for flight-recorder traces: load the result in
// chrome://tracing or https://ui.perfetto.dev.  Phase spans become "X"
// (complete) events; per-round activity becomes "C" (counter) tracks.
#pragma once

#include <iosfwd>

#include "trace/reader.h"

namespace dhc::trace {

/// Writes `data` as a Chrome trace_event JSON document.  The time axis is
/// the cumulative per-round wall clock when the trace carries wall times;
/// when walls were zeroed at write time (deterministic traces) it falls back
/// to one microsecond per simulated round, so the structure stays visible.
void write_chrome_trace(const TraceData& data, std::ostream& os);

}  // namespace dhc::trace
