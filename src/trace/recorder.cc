#include "trace/recorder.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/require.h"

namespace dhc::trace {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out.push_back('\\');
      out.push_back(ch);
    } else if (static_cast<unsigned char>(ch) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", ch);
      out += buf;
    } else {
      out.push_back(ch);
    }
  }
  return out;
}

/// Doubles in the meta line (delta, c) render via %.17g so equal runs are
/// byte-equal; integers elsewhere stream directly.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

void TraceRecorder::on_phase(const std::string& label, std::uint64_t first_round) {
  phases_.push_back({label, first_round});
}

void TraceRecorder::on_round(const congest::RoundTrace& t) {
  RoundRecord r;
  r.round = t.round;
  r.phase = phases_.empty() ? RoundRecord::kNoPhase
                            : static_cast<std::uint32_t>(phases_.size() - 1);
  r.active = t.active;
  r.sent = t.sent;
  r.bits = t.bits;
  r.wakeups = t.wakeups;
  r.wall_ns = t.wall_ns;
  r.sharded = t.sharded;
  r.shard_wall_ns.assign(t.shard_wall_ns.begin(), t.shard_wall_ns.end());
  r.shard_active.assign(t.shard_active.begin(), t.shard_active.end());
  rounds_.push_back(std::move(r));
}

void TraceRecorder::on_barrier(std::uint64_t round, std::uint64_t charge_rounds) {
  barriers_.push_back({round, charge_rounds});
}

void TraceRecorder::on_kround(std::uint64_t congest_round, std::uint64_t busiest_link,
                              std::uint64_t charge) {
  krounds_.push_back({congest_round, busiest_link, charge});
  kround_charge_total_ += charge;
}

void TraceRecorder::on_faults(const congest::FaultTrace& t) {
  faults_.push_back({t.round, t.delayed, t.dropped, t.crash_dropped, t.crashed_steps});
}

void TraceRecorder::on_retrans(const congest::RetransTrace& t) {
  retrans_.push_back({t.round, t.retransmits, t.dup_suppressed, t.acks_sent});
}

void TraceRecorder::on_rejoin(std::uint64_t round, std::uint64_t nodes) {
  rejoins_.push_back({round, nodes});
}

void TraceRecorder::finalize(const congest::Metrics& metrics) {
  metrics_ = metrics;
  // Only the totals, summaries, and phase marks are needed for the summary
  // line; drop the per-node vectors so the recorder stays small.
  metrics_.node_messages_sent.clear();
  metrics_.node_messages_received.clear();
  metrics_.node_memory_words.clear();
  metrics_.node_peak_memory_words.clear();
  metrics_.node_compute_ops.clear();
  metrics_.node_sent32.clear();
  metrics_.node_mem_cur32.clear();
  metrics_.node_mem_peak32.clear();
  metrics_.node_compute32.clear();

  // Some protocols only mark their first phase after a few setup rounds
  // (standalone DRA wakes and builds its BFS tree before marking "dra"); a
  // synthetic "(untagged)" span covers those so the spans always partition
  // [first round, rounds + 1) and Σ span counters == the run totals.
  std::vector<PhaseMark> marks = phases_;
  if (!rounds_.empty() &&
      (marks.empty() || rounds_.front().round < marks.front().from_round)) {
    marks.insert(marks.begin(), {"(untagged)", rounds_.front().round});
  }

  spans_.clear();
  spans_.reserve(marks.size());
  std::size_t round_cursor = 0;
  std::size_t barrier_cursor = 0;
  for (std::size_t i = 0; i < marks.size(); ++i) {
    PhaseSpan span;
    span.label = marks[i].label;
    span.from_round = marks[i].from_round;
    span.to_round =
        i + 1 < marks.size() ? marks[i + 1].from_round : metrics.rounds + 1;
    span.rounds = span.to_round > span.from_round ? span.to_round - span.from_round : 0;
    // Round and barrier records are in ascending round order, so one pass of
    // two cursors attributes each to its span.  A barrier recorded at round
    // R fired after R and belongs to the span containing R; barriers before
    // the first mark (round 0 quiescence) attach to the first span.
    while (round_cursor < rounds_.size() && rounds_[round_cursor].round < span.to_round) {
      const RoundRecord& r = rounds_[round_cursor];
      if (r.round >= span.from_round) {
        span.stepped += 1;
        span.sent += r.sent;
        span.bits += r.bits;
        span.wall_ns += r.wall_ns;
      }
      ++round_cursor;
    }
    while (barrier_cursor < barriers_.size() &&
           (barriers_[barrier_cursor].round < span.to_round || i + 1 == marks.size())) {
      span.barriers += 1;
      ++barrier_cursor;
    }
    spans_.push_back(std::move(span));
  }
  finalized_ = true;
}

void TraceRecorder::set_outcome(bool success, std::string failure_reason) {
  success_ = success;
  failure_reason_ = std::move(failure_reason);
}

void TraceRecorder::write_ndjson(std::ostream& os, const TraceWriteOptions& opt) const {
  DHC_REQUIRE(finalized_, "TraceRecorder::write_ndjson requires finalize()");
  const auto wall = [&](std::uint64_t ns) { return opt.walls ? ns : 0; };

  os << "{\"type\":\"meta\",\"schema\":4"
     << ",\"algo\":\"" << json_escape(meta_.algo) << '"'
     << ",\"model\":\"" << json_escape(meta_.model) << '"'
     << ",\"family\":\"" << json_escape(meta_.family) << '"'
     << ",\"merge\":\"" << json_escape(meta_.merge) << '"'
     << ",\"n\":" << meta_.n << ",\"m\":" << meta_.m
     << ",\"delta\":" << fmt_double(meta_.delta) << ",\"c\":" << fmt_double(meta_.c)
     << ",\"graph_seed\":" << meta_.graph_seed << ",\"algo_seed\":" << meta_.algo_seed
     << ",\"machines\":" << meta_.machines << ",\"bandwidth\":" << meta_.bandwidth
     << ",\"node_stats\":\"" << json_escape(meta_.node_stats) << '"'
     << ",\"config_index\":" << meta_.config_index
     << ",\"trial_index\":" << meta_.trial_index;
  if (opt.shard_profile) os << ",\"shards\":" << meta_.shards;
  os << "}\n";

  // The chronological stream: phase marks, rounds, fault/retrans deltas,
  // rejoin marks, k-round charges, and barriers merged by round (a phase
  // mark at round R precedes R's record; a fault delta, a retrans delta, a
  // rejoin mark, a k-round charge, and a barrier at R follow it, in that
  // order).
  std::size_t pi = 0, ri = 0, fi = 0, xi = 0, ji = 0, ki = 0, bi = 0;
  const auto phase_key = [&] { return pi < phases_.size() ? phases_[pi].from_round * 8 + 0
                                                          : ~std::uint64_t{0}; };
  const auto round_key = [&] { return ri < rounds_.size() ? rounds_[ri].round * 8 + 1
                                                          : ~std::uint64_t{0}; };
  const auto fault_key = [&] { return fi < faults_.size() ? faults_[fi].round * 8 + 2
                                                          : ~std::uint64_t{0}; };
  const auto retrans_key = [&] { return xi < retrans_.size() ? retrans_[xi].round * 8 + 3
                                                             : ~std::uint64_t{0}; };
  const auto rejoin_key = [&] { return ji < rejoins_.size() ? rejoins_[ji].round * 8 + 4
                                                            : ~std::uint64_t{0}; };
  const auto kround_key = [&] { return ki < krounds_.size() ? krounds_[ki].congest_round * 8 + 5
                                                            : ~std::uint64_t{0}; };
  const auto barrier_key = [&] { return bi < barriers_.size() ? barriers_[bi].round * 8 + 6
                                                              : ~std::uint64_t{0}; };
  while (true) {
    const std::uint64_t keys[7] = {phase_key(),  round_key(),  fault_key(), retrans_key(),
                                   rejoin_key(), kround_key(), barrier_key()};
    const std::uint64_t best =
        std::min({keys[0], keys[1], keys[2], keys[3], keys[4], keys[5], keys[6]});
    if (best == ~std::uint64_t{0}) break;
    if (best == keys[0]) {
      os << "{\"type\":\"phase\",\"label\":\"" << json_escape(phases_[pi].label)
         << "\",\"from\":" << phases_[pi].from_round << "}\n";
      ++pi;
    } else if (best == keys[1]) {
      const RoundRecord& r = rounds_[ri];
      os << "{\"type\":\"round\",\"r\":" << r.round << ",\"phase\":\""
         << (r.phase == RoundRecord::kNoPhase ? std::string()
                                              : json_escape(phases_[r.phase].label))
         << "\",\"active\":" << r.active << ",\"sent\":" << r.sent << ",\"bits\":" << r.bits
         << ",\"wake\":" << r.wakeups << ",\"wall_ns\":" << wall(r.wall_ns);
      if (opt.shard_profile && r.sharded) {
        os << ",\"shard_active\":[";
        for (std::size_t i = 0; i < r.shard_active.size(); ++i) {
          os << (i == 0 ? "" : ",") << r.shard_active[i];
        }
        os << "],\"shard_wall_ns\":[";
        for (std::size_t i = 0; i < r.shard_wall_ns.size(); ++i) {
          os << (i == 0 ? "" : ",") << wall(r.shard_wall_ns[i]);
        }
        os << ']';
      }
      os << "}\n";
      ++ri;
    } else if (best == keys[2]) {
      const FaultRecord& f = faults_[fi];
      os << "{\"type\":\"fault\",\"r\":" << f.round << ",\"delayed\":" << f.delayed
         << ",\"dropped\":" << f.dropped << ",\"crash_dropped\":" << f.crash_dropped
         << ",\"crashed_steps\":" << f.crashed_steps << "}\n";
      ++fi;
    } else if (best == keys[3]) {
      const RetransRecord& x = retrans_[xi];
      os << "{\"type\":\"retrans\",\"r\":" << x.round << ",\"retransmits\":" << x.retransmits
         << ",\"dup_suppressed\":" << x.dup_suppressed << ",\"acks_sent\":" << x.acks_sent
         << "}\n";
      ++xi;
    } else if (best == keys[4]) {
      os << "{\"type\":\"rejoin\",\"r\":" << rejoins_[ji].round
         << ",\"nodes\":" << rejoins_[ji].nodes << "}\n";
      ++ji;
    } else if (best == keys[5]) {
      os << "{\"type\":\"kround\",\"r\":" << krounds_[ki].congest_round
         << ",\"busiest\":" << krounds_[ki].busiest << ",\"charge\":" << krounds_[ki].charge
         << "}\n";
      ++ki;
    } else {
      os << "{\"type\":\"barrier\",\"r\":" << barriers_[bi].round
         << ",\"charge\":" << barriers_[bi].charge << "}\n";
      ++bi;
    }
  }

  for (const PhaseSpan& s : spans_) {
    os << "{\"type\":\"span\",\"label\":\"" << json_escape(s.label) << "\",\"from\":"
       << s.from_round << ",\"to\":" << s.to_round << ",\"rounds\":" << s.rounds
       << ",\"stepped\":" << s.stepped << ",\"sent\":" << s.sent << ",\"bits\":" << s.bits
       << ",\"barriers\":" << s.barriers << ",\"wall_ns\":" << wall(s.wall_ns) << "}\n";
  }

  os << "{\"type\":\"summary\",\"rounds\":" << metrics_.rounds
     << ",\"messages\":" << metrics_.messages << ",\"bits\":" << metrics_.bits
     << ",\"barriers\":" << metrics_.barrier_count
     << ",\"barrier_cost_rounds\":" << metrics_.barrier_cost_rounds
     << ",\"accounted_rounds\":" << metrics_.accounted_rounds()
     << ",\"hit_round_limit\":" << (metrics_.hit_round_limit ? 1 : 0)
     << ",\"max_node_sent\":" << metrics_.max_node_messages_sent()
     << ",\"max_node_peak_memory\":" << metrics_.max_node_peak_memory()
     << ",\"max_node_compute\":" << metrics_.max_node_compute()
     << ",\"arena_bytes_peak\":" << metrics_.arena_bytes_peak;
  if (!krounds_.empty()) os << ",\"kmachine_rounds\":" << kround_charge_total_;
  if (metrics_.delayed_messages != 0 || metrics_.dropped_messages != 0 ||
      metrics_.crash_dropped_messages != 0 || metrics_.crashed_steps != 0) {
    os << ",\"delayed_messages\":" << metrics_.delayed_messages
       << ",\"dropped_messages\":" << metrics_.dropped_messages
       << ",\"crash_dropped_messages\":" << metrics_.crash_dropped_messages
       << ",\"crashed_steps\":" << metrics_.crashed_steps;
  }
  if (metrics_.retransmits != 0 || metrics_.dup_suppressed != 0 || metrics_.acks_sent != 0) {
    os << ",\"retransmits\":" << metrics_.retransmits
       << ",\"dup_suppressed\":" << metrics_.dup_suppressed
       << ",\"acks_sent\":" << metrics_.acks_sent
       << ",\"payload_messages\":" << metrics_.payload_messages();
  }
  if (metrics_.crashed_rejoins != 0) {
    os << ",\"crashed_rejoins\":" << metrics_.crashed_rejoins;
  }
  if (metrics_.hit_round_limit) {
    os << ",\"round_limit_live\":" << (metrics_.round_limit_live ? 1 : 0);
  }
  os << "}\n";

  os << "{\"type\":\"outcome\",\"success\":" << (success_ ? "true" : "false")
     << ",\"failure_reason\":\"" << json_escape(failure_reason_) << "\"}\n";
}

}  // namespace dhc::trace
