#include "trace/reader.h"

#include <fstream>
#include <istream>
#include <stdexcept>

#include "support/json.h"

namespace dhc::trace {

namespace {

using support::JsonValue;

std::uint32_t phase_index_for(const std::vector<PhaseMark>& phases, const std::string& label) {
  if (label.empty()) return RoundRecord::kNoPhase;
  // Rounds reference the most recent mark, so search from the back.
  for (std::size_t i = phases.size(); i > 0; --i) {
    if (phases[i - 1].label == label) return static_cast<std::uint32_t>(i - 1);
  }
  return RoundRecord::kNoPhase;
}

}  // namespace

std::string TraceData::meta_str(const std::string& key) const {
  const auto it = meta_strings.find(key);
  return it == meta_strings.end() ? std::string() : it->second;
}

std::uint64_t TraceData::meta_u64(const std::string& key) const {
  const auto it = meta_ints.find(key);
  return it == meta_ints.end() ? 0 : it->second;
}

std::uint64_t TraceData::summary_u64(const std::string& key) const {
  const auto it = summary.find(key);
  return it == summary.end() ? 0 : it->second;
}

TraceData read_trace(std::istream& in) {
  TraceData data;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue v;
    try {
      v = support::parse_json(line);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("trace line " + std::to_string(lineno) + ": " + e.what());
    }
    const std::string& type = v.str("type");
    if (type == "meta") {
      for (const auto& [key, val] : v.as_object()) {
        if (key == "type") continue;
        if (val.is_string()) {
          data.meta_strings[key] = val.as_string();
        } else if (val.is_number()) {
          data.meta_numbers[key] = val.as_double();
          if (val.is_integral()) data.meta_ints[key] = val.as_u64();
        }
      }
      data.schema = v.u64("schema");
    } else if (type == "phase") {
      data.phases.push_back({v.str("label"), v.u64("from")});
    } else if (type == "round") {
      RoundRecord r;
      r.round = v.u64("r");
      r.phase = phase_index_for(data.phases, v.str("phase"));
      r.active = v.u64("active");
      r.sent = v.u64("sent");
      r.bits = v.u64("bits");
      r.wakeups = v.u64("wake");
      r.wall_ns = v.u64("wall_ns");
      if (const JsonValue* sa = v.find("shard_active"); sa != nullptr) {
        r.sharded = true;
        for (const JsonValue& e : sa->as_array()) {
          r.shard_active.push_back(static_cast<std::uint32_t>(e.as_u64()));
        }
        for (const JsonValue& e : v.get("shard_wall_ns").as_array()) {
          r.shard_wall_ns.push_back(e.as_u64());
        }
      }
      data.rounds.push_back(std::move(r));
    } else if (type == "barrier") {
      data.barriers.push_back({v.u64("r"), v.u64("charge")});
    } else if (type == "kround") {
      data.krounds.push_back({v.u64("r"), v.u64("busiest"), v.u64("charge")});
    } else if (type == "fault") {
      data.faults.push_back({v.u64("r"), v.u64("delayed"), v.u64("dropped"),
                             v.u64("crash_dropped"), v.u64("crashed_steps")});
    } else if (type == "retrans") {
      data.retrans.push_back(
          {v.u64("r"), v.u64("retransmits"), v.u64("dup_suppressed"), v.u64("acks_sent")});
    } else if (type == "rejoin") {
      data.rejoins.push_back({v.u64("r"), v.u64("nodes")});
    } else if (type == "span") {
      PhaseSpan s;
      s.label = v.str("label");
      s.from_round = v.u64("from");
      s.to_round = v.u64("to");
      s.rounds = v.u64("rounds");
      s.stepped = v.u64("stepped");
      s.sent = v.u64("sent");
      s.bits = v.u64("bits");
      s.barriers = v.u64("barriers");
      s.wall_ns = v.u64("wall_ns");
      data.spans.push_back(std::move(s));
    } else if (type == "summary") {
      for (const auto& [key, val] : v.as_object()) {
        if (key == "type" || !val.is_number()) continue;
        data.summary[key] = val.as_u64();
      }
    } else if (type == "outcome") {
      data.success = v.get("success").as_bool();
      data.failure_reason = v.str("failure_reason");
      data.has_outcome = true;
    } else {
      throw std::invalid_argument("trace line " + std::to_string(lineno) +
                                  ": unknown record type \"" + type + '"');
    }
  }
  if (data.schema < 1 || data.schema > 4) {
    throw std::invalid_argument("trace stream missing a schema-1/2/3/4 meta line");
  }
  return data;
}

TraceData read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file: " + path);
  return read_trace(in);
}

}  // namespace dhc::trace
