// The flight recorder: accumulates one run's trace events and writes them
// as NDJSON (newline-delimited JSON, one record per line — streamable,
// grep-able, diff-able).
//
// Schema v3 (DESIGN.md §7; v2 = v1 plus the "fault" line type for async
// runs; v3 = v2 plus the "retrans" and "rejoin" line types for the reliable
// overlay and crash-window recovery).  Line types, in file order:
//
//   meta     run identity: algo/model/family/n/m/seeds/…, node_stats mode,
//            and (shard-profile fields) the shard count
//   phase    a phase mark: {"type":"phase","label":L,"from":R}
//   round    one executed round: r, phase label, active, sent, bits, wake,
//            wall_ns, and on sharded rounds the per-shard profile arrays
//   fault    per-round fault-injection deltas (async runs, rounds where
//            something was delayed/dropped/crashed only)
//   retrans  per-round reliable-overlay deltas (reliability=ack runs, rounds
//            with retransmit/duplicate/ack activity only)
//   rejoin   the round crashed nodes silently rejoined, with their count
//            (async runs with a crash window only)
//   barrier  a quiescence barrier: round it fired after + round charge
//   kround   one k-machine-priced CONGEST round (k-machine runs only)
//   span     per-phase rollup computed at finalize: [from,to) rounds,
//            stepped rounds, messages, bits, barriers, wall_ns
//   summary  the run's Metrics totals (+ kmachine_rounds when priced)
//   outcome  success flag and failure reason
//
// Determinism: every field is a pure function of (graph, seed, protocol)
// except the wall-clock fields, whose names all contain "wall"; and every
// counter is shard-invariant, the only shard-dependent fields being the
// explicit shard-profile ones (meta "shards", round "sharded"/"shard_*").
// TraceWriteOptions can zero the former and omit the latter, which is how
// the golden-schema and shard-invariance tests compare traces bytewise.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "congest/metrics.h"
#include "congest/trace_sink.h"

namespace dhc::trace {

/// Run identity stamped on the meta line.
struct TraceMeta {
  std::string algo;
  std::string model = "congest";
  std::string family;
  std::string merge;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  double delta = 0.0;
  double c = 0.0;
  std::uint64_t graph_seed = 0;
  std::uint64_t algo_seed = 0;
  std::uint32_t machines = 0;
  std::uint64_t bandwidth = 0;
  std::uint32_t shards = 1;            ///< shard-profile field
  std::string node_stats = "full";
  std::uint64_t config_index = 0;
  std::uint64_t trial_index = 0;
};

struct RoundRecord {
  std::uint64_t round = 0;
  std::uint32_t phase = kNoPhase;  ///< index into phase labels, or kNoPhase
  std::uint64_t active = 0;
  std::uint64_t sent = 0;
  std::uint64_t bits = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t wall_ns = 0;  // wall field
  bool sharded = false;       // shard-profile field
  std::vector<std::uint64_t> shard_wall_ns;  // wall + shard-profile
  std::vector<std::uint32_t> shard_active;   // shard-profile

  static constexpr std::uint32_t kNoPhase = 0xffffffffu;
};

struct PhaseMark {
  std::string label;
  std::uint64_t from_round = 0;
};

struct BarrierRecord {
  std::uint64_t round = 0;
  std::uint64_t charge = 0;
};

struct KRoundRecord {
  std::uint64_t congest_round = 0;
  std::uint64_t busiest = 0;
  std::uint64_t charge = 0;
};

/// Per-round fault-injection deltas (async runs; emitted only for rounds
/// where at least one counter is nonzero).  Mirrors congest::FaultTrace.
struct FaultRecord {
  std::uint64_t round = 0;
  std::uint64_t delayed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t crash_dropped = 0;
  std::uint64_t crashed_steps = 0;
};

/// Per-round reliable-overlay deltas (reliability=ack runs; emitted only for
/// rounds with overlay activity).  Mirrors congest::RetransTrace.
struct RetransRecord {
  std::uint64_t round = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t acks_sent = 0;
};

/// The round crashed nodes silently rejoined with stale state (async runs
/// with a crash window; at most one per run).
struct RejoinRecord {
  std::uint64_t round = 0;
  std::uint64_t nodes = 0;
};

/// Per-phase rollup over one span [from, to): computed by finalize().  Spans
/// partition [first round, rounds + 1); rounds executed before the first
/// phase mark get a synthetic "(untagged)" span so Σ span counters always
/// equal the run totals.
struct PhaseSpan {
  std::string label;
  std::uint64_t from_round = 0;
  std::uint64_t to_round = 0;  ///< exclusive; last span ends at rounds + 1
  std::uint64_t rounds = 0;    ///< to - from (idle gap rounds included)
  std::uint64_t stepped = 0;   ///< rounds that actually executed steps
  std::uint64_t sent = 0;
  std::uint64_t bits = 0;
  std::uint64_t barriers = 0;
  std::uint64_t wall_ns = 0;   // wall field: sum of contained round walls
};

struct TraceWriteOptions {
  /// false → every wall field is written as 0 (byte-stable across runs).
  bool walls = true;
  /// false → shard-profile fields are omitted entirely (byte-stable across
  /// shard counts).
  bool shard_profile = true;
};

class TraceRecorder final : public congest::TraceSink {
 public:
  void set_meta(TraceMeta meta) { meta_ = std::move(meta); }
  const TraceMeta& meta() const { return meta_; }

  // --- TraceSink ---
  void on_phase(const std::string& label, std::uint64_t first_round) override;
  void on_round(const congest::RoundTrace& t) override;
  void on_barrier(std::uint64_t round, std::uint64_t charge_rounds) override;
  void on_kround(std::uint64_t congest_round, std::uint64_t busiest_link,
                 std::uint64_t charge) override;
  void on_faults(const congest::FaultTrace& t) override;
  void on_retrans(const congest::RetransTrace& t) override;
  void on_rejoin(std::uint64_t round, std::uint64_t nodes) override;

  /// Computes the per-phase spans and captures the run totals.  Call once,
  /// after the run; write_ndjson() requires it.
  void finalize(const congest::Metrics& metrics);

  void set_outcome(bool success, std::string failure_reason);

  /// Writes the full NDJSON stream.  Requires finalize().
  void write_ndjson(std::ostream& os, const TraceWriteOptions& opt = {}) const;

  // --- accessors for tests and in-process consumers ---
  const std::vector<PhaseMark>& phases() const { return phases_; }
  const std::vector<RoundRecord>& rounds() const { return rounds_; }
  const std::vector<BarrierRecord>& barriers() const { return barriers_; }
  const std::vector<KRoundRecord>& krounds() const { return krounds_; }
  const std::vector<FaultRecord>& faults() const { return faults_; }
  const std::vector<RetransRecord>& retrans() const { return retrans_; }
  const std::vector<RejoinRecord>& rejoins() const { return rejoins_; }
  const std::vector<PhaseSpan>& spans() const { return spans_; }
  std::uint64_t kmachine_rounds_total() const { return kround_charge_total_; }
  const congest::Metrics& metrics() const { return metrics_; }
  bool finalized() const { return finalized_; }

 private:
  TraceMeta meta_;
  std::vector<PhaseMark> phases_;
  std::vector<RoundRecord> rounds_;
  std::vector<BarrierRecord> barriers_;
  std::vector<KRoundRecord> krounds_;
  std::vector<FaultRecord> faults_;
  std::vector<RetransRecord> retrans_;
  std::vector<RejoinRecord> rejoins_;
  std::vector<PhaseSpan> spans_;
  std::uint64_t kround_charge_total_ = 0;
  congest::Metrics metrics_;  // node vectors cleared at finalize (totals only)
  bool finalized_ = false;
  bool success_ = false;
  std::string failure_reason_;
};

}  // namespace dhc::trace
