// Human-readable rollups over parsed traces: the per-phase summary table,
// the two-trace diff, and the shard-imbalance report dhc_trace prints.
#pragma once

#include <iosfwd>

#include "trace/reader.h"

namespace dhc::trace {

/// Prints the run header (algo, n, seeds, outcome), the per-phase table
/// (rounds / stepped / messages / bits / barriers / wall ms), and the
/// summary totals.  The per-phase "rounds" column sums to the run's round
/// count by construction (spans tile [first mark, rounds + 1)).
void print_summary(const TraceData& data, std::ostream& os);

/// Prints a phase-by-phase comparison of two traces (label-matched spans,
/// summed over repeated labels), with absolute and relative deltas on
/// rounds, messages, and bits, then the summary-counter deltas.  Returns
/// the number of counters that differ (0 = traces agree on every counter).
int print_diff(const TraceData& a, const TraceData& b, std::ostream& os);

/// Prints the shard-profile report: for each sharded round group, the
/// active-node and wall-time split across shards and the imbalance factor
/// max/mean.  Says so when the trace carries no shard profile.
void print_imbalance(const TraceData& data, std::ostream& os);

}  // namespace dhc::trace
