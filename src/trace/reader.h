// Reads a flight-recorder NDJSON trace (schema v1, v2, or v3, see
// recorder.h) back into typed records for the dhc_trace tool and tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "trace/recorder.h"

namespace dhc::trace {

/// One parsed trace file.  Field names mirror the writer-side structs; the
/// meta and summary lines are kept as maps so the reader survives additive
/// schema growth (unknown keys pass through).
struct TraceData {
  std::uint64_t schema = 0;
  std::map<std::string, std::string> meta_strings;
  std::map<std::string, double> meta_numbers;
  /// Integral meta fields (seeds, n, m, ...) exactly — 64-bit seeds do not
  /// survive the double round-trip in meta_numbers.
  std::map<std::string, std::uint64_t> meta_ints;

  std::vector<PhaseMark> phases;
  std::vector<RoundRecord> rounds;        ///< phase index resolved vs `phases`
  std::vector<BarrierRecord> barriers;
  std::vector<KRoundRecord> krounds;
  std::vector<FaultRecord> faults;        ///< schema v2+ async runs only
  std::vector<RetransRecord> retrans;     ///< schema v3 reliability=ack runs only
  std::vector<RejoinRecord> rejoins;      ///< schema v3 crash-window runs only
  std::vector<PhaseSpan> spans;

  std::map<std::string, std::uint64_t> summary;
  bool success = false;
  std::string failure_reason;
  bool has_outcome = false;

  /// meta string field, or "" when absent.
  std::string meta_str(const std::string& key) const;
  /// integral meta field, or 0 when absent.
  std::uint64_t meta_u64(const std::string& key) const;
  /// summary counter, or 0 when absent.
  std::uint64_t summary_u64(const std::string& key) const;
};

/// Parses one NDJSON trace stream.  Throws std::invalid_argument on malformed
/// lines or unknown line types (the schema is closed per version).
TraceData read_trace(std::istream& in);

/// Convenience: opens and reads `path`; throws std::runtime_error when the
/// file cannot be opened.
TraceData read_trace_file(const std::string& path);

}  // namespace dhc::trace
