#include "trace/summary.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "support/table.h"

namespace dhc::trace {

namespace {

using support::Table;

/// Spans aggregated by label, first-appearance order (DHC2 marks "merge"
/// once per level; the table shows one row per label).
struct PhaseAgg {
  std::string label;
  std::uint64_t spans = 0;
  std::uint64_t rounds = 0;
  std::uint64_t stepped = 0;
  std::uint64_t sent = 0;
  std::uint64_t bits = 0;
  std::uint64_t barriers = 0;
  std::uint64_t wall_ns = 0;
};

std::vector<PhaseAgg> aggregate_phases(const TraceData& data) {
  std::vector<PhaseAgg> out;
  for (const PhaseSpan& s : data.spans) {
    PhaseAgg* agg = nullptr;
    for (PhaseAgg& a : out) {
      if (a.label == s.label) {
        agg = &a;
        break;
      }
    }
    if (agg == nullptr) {
      out.push_back({});
      out.back().label = s.label;
      agg = &out.back();
    }
    agg->spans += 1;
    agg->rounds += s.rounds;
    agg->stepped += s.stepped;
    agg->sent += s.sent;
    agg->bits += s.bits;
    agg->barriers += s.barriers;
    agg->wall_ns += s.wall_ns;
  }
  return out;
}

std::string wall_ms(std::uint64_t ns) { return Table::num(static_cast<double>(ns) / 1e6, 3); }

/// "wall" in a counter name marks it nondeterministic; diffs report but do
/// not count those.
bool is_wall_key(const std::string& key) { return key.find("wall") != std::string::npos; }

}  // namespace

void print_summary(const TraceData& data, std::ostream& os) {
  os << "trace: algo=" << data.meta_str("algo") << " model=" << data.meta_str("model")
     << " family=" << data.meta_str("family");
  os << " n=" << data.meta_u64("n") << " m=" << data.meta_u64("m")
     << " graph_seed=" << data.meta_u64("graph_seed")
     << " algo_seed=" << data.meta_u64("algo_seed")
     << " node_stats=" << data.meta_str("node_stats") << '\n';
  if (data.has_outcome) {
    os << "outcome: " << (data.success ? "success" : "FAILURE");
    if (!data.failure_reason.empty()) os << " (" << data.failure_reason << ')';
    os << '\n';
  }

  Table t({"phase", "spans", "rounds", "stepped", "messages", "bits", "barriers", "wall_ms"});
  PhaseAgg total;
  total.label = "TOTAL";
  for (const PhaseAgg& a : aggregate_phases(data)) {
    t.add_row({a.label, Table::num(a.spans), Table::num(a.rounds), Table::num(a.stepped),
               Table::num(a.sent), Table::num(a.bits), Table::num(a.barriers),
               wall_ms(a.wall_ns)});
    total.spans += a.spans;
    total.rounds += a.rounds;
    total.stepped += a.stepped;
    total.sent += a.sent;
    total.bits += a.bits;
    total.barriers += a.barriers;
    total.wall_ns += a.wall_ns;
  }
  t.add_row({total.label, Table::num(total.spans), Table::num(total.rounds),
             Table::num(total.stepped), Table::num(total.sent), Table::num(total.bits),
             Table::num(total.barriers), wall_ms(total.wall_ns)});
  t.print(os);

  os << "summary:";
  for (const auto& [key, value] : data.summary) os << ' ' << key << '=' << value;
  os << '\n';
  if (!data.krounds.empty()) {
    os << "kmachine: " << data.krounds.size() << " priced rounds\n";
  }
}

int print_diff(const TraceData& a, const TraceData& b, std::ostream& os) {
  int differing = 0;

  os << "diff: " << a.meta_str("algo") << " (A) vs " << b.meta_str("algo") << " (B)\n";

  const std::vector<PhaseAgg> pa = aggregate_phases(a);
  const std::vector<PhaseAgg> pb = aggregate_phases(b);
  std::vector<std::string> labels;
  for (const PhaseAgg& p : pa) labels.push_back(p.label);
  for (const PhaseAgg& p : pb) {
    if (std::find(labels.begin(), labels.end(), p.label) == labels.end()) {
      labels.push_back(p.label);
    }
  }
  const auto lookup = [](const std::vector<PhaseAgg>& v, const std::string& label) {
    for (const PhaseAgg& p : v) {
      if (p.label == label) return p;
    }
    return PhaseAgg{};
  };

  Table t({"phase", "rounds A", "rounds B", "d_rounds", "msgs A", "msgs B", "d_msgs", "bits A",
           "bits B", "d_bits"});
  const auto delta = [](std::uint64_t x, std::uint64_t y) {
    const auto d = static_cast<std::int64_t>(y) - static_cast<std::int64_t>(x);
    std::string s = std::to_string(d);
    if (d > 0) s.insert(s.begin(), '+');
    return s;
  };
  for (const std::string& label : labels) {
    const PhaseAgg x = lookup(pa, label);
    const PhaseAgg y = lookup(pb, label);
    t.add_row({label, Table::num(x.rounds), Table::num(y.rounds), delta(x.rounds, y.rounds),
               Table::num(x.sent), Table::num(y.sent), delta(x.sent, y.sent),
               Table::num(x.bits), Table::num(y.bits), delta(x.bits, y.bits)});
    if (x.rounds != y.rounds || x.sent != y.sent || x.bits != y.bits) ++differing;
  }
  t.print(os);

  std::vector<std::string> keys;
  for (const auto& [key, value] : a.summary) keys.push_back(key);
  for (const auto& [key, value] : b.summary) {
    if (a.summary.find(key) == a.summary.end()) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  for (const std::string& key : keys) {
    const std::uint64_t x = a.summary_u64(key);
    const std::uint64_t y = b.summary_u64(key);
    if (x == y) continue;
    os << "summary." << key << ": " << x << " -> " << y;
    if (is_wall_key(key)) {
      os << " (wall; not counted)";
    } else {
      ++differing;
    }
    os << '\n';
  }

  os << (differing == 0 ? "traces agree on every counter\n"
                        : "counters differ: " + std::to_string(differing) + "\n");
  return differing;
}

void print_imbalance(const TraceData& data, std::ostream& os) {
  std::vector<std::uint64_t> shard_wall;
  std::vector<std::uint64_t> shard_active;
  std::uint64_t sharded_rounds = 0;
  double worst_active_factor = 0.0;
  double worst_wall_factor = 0.0;
  for (const RoundRecord& r : data.rounds) {
    if (!r.sharded || r.shard_active.empty()) continue;
    ++sharded_rounds;
    if (shard_wall.size() < r.shard_active.size()) {
      shard_wall.resize(r.shard_active.size(), 0);
      shard_active.resize(r.shard_active.size(), 0);
    }
    std::uint64_t act_sum = 0, act_max = 0, wall_sum = 0, wall_max = 0;
    for (std::size_t s = 0; s < r.shard_active.size(); ++s) {
      shard_active[s] += r.shard_active[s];
      act_sum += r.shard_active[s];
      act_max = std::max(act_max, static_cast<std::uint64_t>(r.shard_active[s]));
      if (s < r.shard_wall_ns.size()) {
        shard_wall[s] += r.shard_wall_ns[s];
        wall_sum += r.shard_wall_ns[s];
        wall_max = std::max(wall_max, r.shard_wall_ns[s]);
      }
    }
    const double k = static_cast<double>(r.shard_active.size());
    if (act_sum > 0) {
      worst_active_factor =
          std::max(worst_active_factor,
                   static_cast<double>(act_max) * k / static_cast<double>(act_sum));
    }
    if (wall_sum > 0) {
      worst_wall_factor =
          std::max(worst_wall_factor,
                   static_cast<double>(wall_max) * k / static_cast<double>(wall_sum));
    }
  }

  if (sharded_rounds == 0) {
    os << "no sharded rounds in trace (run with DHC_SHARDS>1 or --shards to profile)\n";
    return;
  }

  os << "shard imbalance over " << sharded_rounds << " sharded rounds ("
     << shard_wall.size() << " shards)\n";
  Table t({"shard", "active_total", "wall_ms"});
  std::uint64_t act_sum = 0, wall_sum = 0;
  for (std::size_t s = 0; s < shard_wall.size(); ++s) {
    t.add_row({Table::num(static_cast<std::uint64_t>(s)), Table::num(shard_active[s]),
               wall_ms(shard_wall[s])});
    act_sum += shard_active[s];
    wall_sum += shard_wall[s];
  }
  t.print(os);
  const double k = static_cast<double>(shard_wall.size());
  if (act_sum > 0) {
    const std::uint64_t act_max = *std::max_element(shard_active.begin(), shard_active.end());
    os << "active imbalance (max/mean): overall "
       << Table::num(static_cast<double>(act_max) * k / static_cast<double>(act_sum), 3)
       << ", worst round " << Table::num(worst_active_factor, 3) << '\n';
  }
  if (wall_sum > 0) {
    const std::uint64_t wall_max = *std::max_element(shard_wall.begin(), shard_wall.end());
    os << "wall imbalance (max/mean):   overall "
       << Table::num(static_cast<double>(wall_max) * k / static_cast<double>(wall_sum), 3)
       << ", worst round " << Table::num(worst_wall_factor, 3) << '\n';
  }
}

}  // namespace dhc::trace
