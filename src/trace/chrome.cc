#include "trace/chrome.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace dhc::trace {

namespace {

std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", us);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void write_chrome_trace(const TraceData& data, std::ostream& os) {
  // Build the time axis: each executed round occupies [start, end) in
  // microseconds; idle (skipped) rounds take no time on the wall axis and
  // one tick on the fallback round axis.
  std::uint64_t total_wall = 0;
  for (const RoundRecord& r : data.rounds) total_wall += r.wall_ns;
  const bool use_walls = total_wall > 0;

  std::map<std::uint64_t, std::pair<double, double>> round_times;  // round -> {start, end} us
  double cursor = 0.0;
  std::uint64_t last_round = 0;
  for (const RoundRecord& r : data.rounds) {
    if (!use_walls && r.round > last_round + 1 && last_round != 0) {
      cursor += static_cast<double>(r.round - last_round - 1);  // idle gap ticks
    }
    const double dur = use_walls ? static_cast<double>(r.wall_ns) / 1000.0 : 1.0;
    round_times[r.round] = {cursor, cursor + dur};
    cursor += dur;
    last_round = r.round;
  }
  const double end_of_time = cursor;

  // Maps a round number to a point on the axis: the start of that round if
  // it executed, else the start of the next executed round (or the end).
  const auto time_at = [&](std::uint64_t round) {
    const auto it = round_times.lower_bound(round);
    return it == round_times.end() ? end_of_time : it->second.first;
  };

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  const std::string algo = data.meta_str("algo");
  sep();
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\",\"args\":{\"name\":\""
     << escape(algo.empty() ? "dhc" : algo) << "\"}}";

  for (const PhaseSpan& s : data.spans) {
    const double ts = time_at(s.from_round);
    const double te = std::max(ts, time_at(s.to_round));
    sep();
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"" << escape(s.label)
       << "\",\"ts\":" << fmt_us(ts) << ",\"dur\":" << fmt_us(te - ts)
       << ",\"args\":{\"rounds\":" << s.rounds << ",\"stepped\":" << s.stepped
       << ",\"sent\":" << s.sent << ",\"bits\":" << s.bits << ",\"barriers\":" << s.barriers
       << "}}";
  }

  for (const RoundRecord& r : data.rounds) {
    const double ts = round_times[r.round].first;
    sep();
    os << "{\"ph\":\"C\",\"pid\":1,\"name\":\"round activity\",\"ts\":" << fmt_us(ts)
       << ",\"args\":{\"active\":" << r.active << ",\"sent\":" << r.sent
       << ",\"wake\":" << r.wakeups << "}}";
  }

  for (const BarrierRecord& b : data.barriers) {
    sep();
    os << "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"s\":\"g\",\"name\":\"barrier\",\"ts\":"
       << fmt_us(time_at(b.round + 1)) << ",\"args\":{\"round\":" << b.round
       << ",\"charge\":" << b.charge << "}}";
  }

  os << "\n]}\n";
}

}  // namespace dhc::trace
