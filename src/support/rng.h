// Deterministic random number generation for libdhc.
//
// Randomized distributed algorithms must be replayable: a run is a pure
// function of (graph seed, algorithm seed).  Rng wraps xoshiro256**, seeded
// through splitmix64 per the authors' recommendation, and exposes the handful
// of distributions the algorithms need.  Per-node streams are derived with
// Rng::stream(), so protocol output never depends on simulator scheduling
// order and nodes cannot accidentally share randomness.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "support/require.h"

namespace dhc::support {

/// splitmix64 step; used for seeding and stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable PRNG (xoshiro256**) with derived sub-streams.
///
/// Satisfies std::uniform_random_bit_generator, so it also plugs into
/// standard-library distributions where convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds yield equal sequences on every platform.
  explicit Rng(std::uint64_t seed = 0) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  /// Next 64 uniformly random bits.
  result_type operator()() { return next_u64(); }

  result_type next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); bound must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) {
    DHC_REQUIRE(bound > 0, "uniform bound must be positive");
    // Unbiased rejection sampling on the top bits: draw until the value
    // falls below the largest multiple of `bound` representable in 64 bits.
    const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                                (std::numeric_limits<std::uint64_t>::max() % bound + 1) % bound;
    while (true) {
      const std::uint64_t x = next_u64();
      if (x <= limit) return x % bound;
    }
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    DHC_REQUIRE(lo <= hi, "uniform range is empty: [" << lo << ", " << hi << "]");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // span == 0 means the full 64-bit range.
    const std::uint64_t draw = (span == 0) ? next_u64() : below(span);
    return lo + static_cast<std::int64_t>(draw);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial: true with probability p (clamped to [0, 1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Geometric skip for Batagelj–Brandes G(n,p) generation: the number of
  /// candidate slots to skip before the next present edge, i.e. a sample of
  /// floor(ln(U) / ln(1-p)) with U uniform in (0,1).  Requires 0 < p < 1.
  std::uint64_t geometric_skip(double log1mp) {
    // log1mp = ln(1-p), precomputed by the caller (it is loop-invariant).
    DHC_REQUIRE(log1mp < 0.0, "geometric_skip requires ln(1-p) < 0");
    double u = uniform01();
    while (u <= 0.0) u = uniform01();  // avoid log(0)
    return static_cast<std::uint64_t>(std::log(u) / log1mp);
  }

  /// Uniformly random element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    DHC_REQUIRE(!items.empty(), "pick from empty span");
    return items[below(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (Floyd's algorithm); returned in
  /// insertion order, deterministic for a given state.  Requires k <= n.
  std::vector<std::uint64_t> sample_distinct(std::uint64_t n, std::uint64_t k);

  /// Derives an independent child stream; stream(i) != stream(j) for i != j
  /// and children are statistically independent of the parent's future output.
  Rng stream(std::uint64_t stream_id) const {
    std::uint64_t sm = state_[0] ^ rotl(state_[2], 13) ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    Rng child(0);
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dhc::support
