// Spawn-once worker pool with barrier-style dispatch.
//
// Both parallel layers of libdhc — trial-level parallelism in the runner and
// shard-level parallelism inside the CONGEST simulator — need the same
// primitive: run N independent tasks across a fixed set of threads and block
// until every task has finished.  The simulator dispatches once per *round*
// (potentially hundreds of thousands of times per trial), so the pool keeps
// its threads alive between generations and wakes them with a short
// spin-then-sleep gate instead of spawning; the caller thread participates
// as a worker, so a pool of size 1 spawns no threads at all and executes
// every task inline, in task order.
//
// Each run() publishes an immutable, reference-counted generation record
// (task function, count, claim cursor); workers claim task indices from the
// generation they joined, so a worker that wakes late can only ever touch
// its own generation's cursor, never a newer one — run() may be called
// again immediately after returning without racing stragglers.
//
// Determinism contract: the pool only decides *when* tasks run, never what
// they compute.  Tasks are claimed from a shared cursor, so callers must
// not depend on which worker runs which task; callers that need a
// deterministic work partition (the simulator's shard slices) encode it in
// the task index.  With one worker, tasks run in ascending index order on
// the caller thread — the degenerate case is plain sequential execution.
//
// Exceptions thrown by a task are captured; the one with the LOWEST task
// index is rethrown on the caller thread after the barrier, once every
// other task of the generation has finished.  Lowest-index selection keeps
// error reporting deterministic for callers whose task order is meaningful
// — the simulator's shard slices partition the id-sorted active set, so
// the lowest-index shard error is exactly the error the sequential stepper
// would have hit first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dhc::support {

class WorkerPool {
 public:
  /// A pool of `workers` total execution lanes (caller included): spawns
  /// `workers - 1` threads.  `workers` is clamped to at least 1.
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs fn(0), fn(1), ..., fn(tasks - 1) across the pool and the calling
  /// thread, returning once all have completed.  Rethrows the captured task
  /// exception with the lowest task index, if any.  Not reentrant: one
  /// run() at a time per pool.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// Total execution lanes, caller included.
  unsigned workers() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Lanes appropriate for this machine: hardware_concurrency, at least 1.
  static unsigned hardware_lanes();

 private:
  /// One dispatch generation.  Immutable except for the claim cursor, the
  /// completion count, and the error slot.
  struct Generation {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t task_count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};
    std::mutex error_mu;
    std::exception_ptr first_error;                  // error of the lowest-index…
    std::size_t first_error_index = std::size_t(-1);  // …failed task
  };

  void worker_loop();
  void work_through(Generation& gen);

  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::atomic<std::uint64_t> generation_id_{0};  // bumped by run(); workers chase it
  std::shared_ptr<Generation> current_;          // guarded by mu_
  std::atomic<bool> shutdown_{false};
};

}  // namespace dhc::support
