// A FIFO queue on one flat vector: pop_front advances a cursor instead of
// shifting or chunk-hopping.
//
// The CONGEST protocols keep one pipelining queue per node (upcast records,
// verification checks) and push/pop one element per simulated round.
// std::deque pays chunked allocation and pointer-chasing for that pattern;
// FlatQueue appends to contiguous storage and reclaims it wholesale when the
// queue drains (the common case: a pipeline empties completely between
// bursts).  Iteration order and push/pop semantics match std::deque, so
// swapping one for the other is observation-equivalent.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace dhc::support {

template <typename T>
class FlatQueue {
 public:
  bool empty() const { return head_ == items_.size(); }
  std::size_t size() const { return items_.size() - head_; }

  void push_back(const T& value) { items_.push_back(value); }
  void push_back(T&& value) { items_.push_back(std::move(value)); }
  template <typename... Args>
  void emplace_back(Args&&... args) {
    items_.emplace_back(std::forward<Args>(args)...);
  }

  const T& front() const { return items_[head_]; }

  void pop_front() {
    ++head_;
    if (head_ == items_.size()) clear();
  }

  /// Drops everything but keeps the storage for reuse.
  void clear() {
    items_.clear();
    head_ = 0;
  }

  /// The live elements, oldest first (for whole-queue scans).
  const T* begin() const { return items_.data() + head_; }
  const T* end() const { return items_.data() + items_.size(); }

  /// One-sweep stable filter: keeps the elements `keep` returns true for, in
  /// order, compacting them in place to the front of the storage.  Replaces
  /// the old swap-with-scratch-buffer idiom (`assign_kept`), which needed a
  /// caller-owned keep vector — a footgun on the persistent worker pool,
  /// where a `static thread_local` scratch buffer outlives the trial that
  /// grew it.  In-place compaction has no scratch state at all.
  template <typename Pred>
  void retain(Pred&& keep) {
    std::size_t w = 0;
    for (std::size_t r = head_; r < items_.size(); ++r) {
      if (keep(items_[r])) {
        if (w != r) items_[w] = std::move(items_[r]);
        ++w;
      }
    }
    items_.resize(w);
    head_ = 0;
  }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
};

}  // namespace dhc::support
