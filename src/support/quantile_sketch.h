// Fixed-size streaming quantile sketch for per-node load distributions.
//
// The million-node goal (ROADMAP) rules out keeping one double per node just
// to report p50/p95/p99 of the per-node message/memory/compute totals, and
// the trace/metrics pipeline needs those quantiles to be deterministic and
// mergeable.  This sketch is a base-2 log-linear histogram (the HDR/DDSketch
// family, integer-only so results are bit-identical on every platform):
//
//   * values below kLinearCutoff land in one bucket each — exact counts,
//     exact quantiles.  Per-node totals in practice are small integers, so
//     the common case pays no approximation at all.
//   * larger values bucket by (exponent, top kSubBits mantissa bits): the
//     bucket's relative width is 2^-kSubBits, so a reported quantile value
//     is within a factor (1 ± 2^-(kSubBits+1)) of some sample at a rank
//     within the bucket — the "sketch error bound" quoted in DESIGN.md §7.
//
// The footprint is a fixed ~3k buckets of 8 bytes regardless of how many
// values stream in; count/sum/min/max are tracked exactly on the side.
// add() order never affects the state, so sketches are shard- and
// thread-order invariant, and merge() is plain bucket-wise addition.
#pragma once

#include <cstdint>
#include <vector>

namespace dhc::support {

class QuantileSketch {
 public:
  /// Values below this are binned exactly (one bucket per integer).
  static constexpr std::uint64_t kLinearCutoff = 1024;
  /// Mantissa bits kept per power of two in the log region.
  static constexpr std::uint32_t kSubBits = 5;
  /// Worst-case relative half-width of a log-region bucket: quantile values
  /// ≥ kLinearCutoff are within ±relative_error() of the true sample value
  /// at that rank (values below the cutoff are exact).
  static constexpr double relative_error() { return 1.0 / (1u << (kSubBits + 1)); }

  QuantileSketch();

  void add(std::uint64_t value);

  /// Bucket-wise union; exact side stats combine exactly.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  /// Value estimate at quantile q in [0, 1] (0 → min, 1 → max).  Exact for
  /// values below kLinearCutoff; otherwise within relative_error().
  double quantile(double q) const;

 private:
  static std::size_t bucket_of(std::uint64_t v);
  static double bucket_value(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace dhc::support
