// Minimal --key=value flag parser shared by benches and examples.
//
// Every experiment binary accepts the same flag style (e.g. --n=4096
// --seeds=5 --c=4.0) so sweeps are scriptable without pulling in a
// full-blown CLI library.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dhc::support {

/// Parsed command line: flags of the form --key=value (or bare --key,
/// stored with value "true").  Unrecognized positional arguments throw.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Typed getters; return `fallback` when the flag is absent and throw
  /// std::invalid_argument when present but malformed.
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_string(const std::string& key, const std::string& fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --sizes=256,512,1024.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> fallback) const;
  /// Comma-separated double list, e.g. --deltas=0.3,0.5,0.7.
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> fallback) const;

  /// Comma-separated string list, e.g. --algos=dhc2,turau.  Empty elements
  /// (and an empty value) throw — a trailing or doubled comma is always a
  /// typo, never a request for the empty string.
  std::vector<std::string> get_string_list(const std::string& key,
                                           std::vector<std::string> fallback) const;

 private:
  std::map<std::string, std::string> flags_;
};

}  // namespace dhc::support
