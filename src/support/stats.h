// Small statistics toolkit for the benchmark harness and tests.
//
// The experiments in EXPERIMENTS.md report medians/means over seeds, check
// concentration claims (Lemmas 4, 7, 11–15), and fit log-log slopes against
// the theorems' round bounds; this header provides exactly those operations.
#pragma once

#include <cstddef>
#include <vector>

namespace dhc::support {

/// Streaming mean/variance accumulator (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double max = 0.0;
  double p90 = 0.0;
};

/// Computes a Summary of `values` (copies and sorts internally).
Summary summarize(std::vector<double> values);

/// Quantile by linear interpolation of the sorted sample; q in [0, 1].
double quantile(std::vector<double> values, double q);

/// Least-squares fit of y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Least-squares fit of log(y) = a + b*log(x); returns slope b — the
/// empirical polynomial exponent used by the scaling experiments.
/// All inputs must be positive.
double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace dhc::support
