#include "support/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/require.h"

namespace dhc::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DHC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  DHC_REQUIRE(cells.size() == headers_.size(),
              "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E' && c != '%' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      const bool right = looks_numeric(row[c]);
      os << (right ? std::right : std::left) << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::num(std::uint64_t value) { return std::to_string(value); }

}  // namespace dhc::support
