#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/require.h"

namespace dhc::support {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  DHC_REQUIRE(!values.empty(), "quantile of empty sample");
  DHC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level " << q << " outside [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  DHC_REQUIRE(!values.empty(), "summarize of empty sample");
  OnlineStats online;
  for (double v : values) online.add(v);
  Summary s;
  s.count = values.size();
  s.mean = online.mean();
  s.stddev = online.stddev();
  s.min = online.min();
  s.max = online.max();
  s.median = quantile(values, 0.5);
  s.p90 = quantile(values, 0.9);
  return s;
}

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  DHC_REQUIRE(xs.size() == ys.size(), "fit_line: size mismatch");
  DHC_REQUIRE(xs.size() >= 2, "fit_line needs at least two points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  DHC_REQUIRE(denom != 0.0, "fit_line: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

double loglog_slope(const std::vector<double>& xs, const std::vector<double>& ys) {
  DHC_REQUIRE(xs.size() == ys.size(), "loglog_slope: size mismatch");
  std::vector<double> lx(xs.size());
  std::vector<double> ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    DHC_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0, "loglog_slope requires positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_line(lx, ly).slope;
}

}  // namespace dhc::support
