#include "support/cli.h"

#include <sstream>
#include <stdexcept>

#include "support/require.h"

namespace dhc::support {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    DHC_REQUIRE(arg.rfind("--", 0) == 0, "unexpected positional argument: " << arg);
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags_[arg.substr(2)] = "true";
    } else {
      flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.contains(key); }

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects an integer, got '" + it->second + "'");
  }
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + key + " expects a number, got '" + it->second + "'");
  }
}

std::string Cli::get_string(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::invalid_argument("flag --" + key + " expects true/false, got '" + it->second + "'");
}

namespace {

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> parts;
  std::istringstream is(s);
  std::string part;
  while (std::getline(is, part, ',')) parts.push_back(part);
  return parts;
}

}  // namespace

std::vector<std::int64_t> Cli::get_int_list(const std::string& key,
                                            std::vector<std::int64_t> fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  std::vector<std::int64_t> out;
  for (const auto& part : split_commas(it->second)) {
    try {
      out.push_back(std::stoll(part));
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + key + " expects integers, got '" + part + "'");
    }
  }
  return out;
}

std::vector<double> Cli::get_double_list(const std::string& key,
                                         std::vector<double> fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  std::vector<double> out;
  for (const auto& part : split_commas(it->second)) {
    try {
      out.push_back(std::stod(part));
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + key + " expects numbers, got '" + part + "'");
    }
  }
  return out;
}

std::vector<std::string> Cli::get_string_list(const std::string& key,
                                              std::vector<std::string> fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  const auto out = split_commas(it->second);
  if (out.empty()) {
    throw std::invalid_argument("flag --" + key + " has an empty value");
  }
  for (const auto& part : out) {
    if (part.empty()) {
      throw std::invalid_argument("flag --" + key + " has an empty list element in '" +
                                  it->second + "'");
    }
  }
  return out;
}

}  // namespace dhc::support
