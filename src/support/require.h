// Precondition / invariant checking for libdhc.
//
// The library reports contract violations by throwing: callers that feed a
// solver an empty graph or a malformed configuration get a std::invalid_argument
// (DHC_REQUIRE), while broken internal invariants surface as std::logic_error
// (DHC_CHECK).  Both carry the failing expression and source location so that
// test failures and user bug reports are actionable.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dhc::support {

/// Thrown by DHC_CHECK when an internal invariant is violated (a libdhc bug).
class InvariantViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void throw_requirement_failure(const char* expr, const char* file, int line,
                                                   const std::string& what) {
  std::ostringstream os;
  os << "requirement failed: " << expr;
  if (!what.empty()) os << " — " << what;
  os << " [" << file << ':' << line << ']';
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant_failure(const char* expr, const char* file, int line,
                                                 const std::string& what) {
  std::ostringstream os;
  os << "invariant violated: " << expr;
  if (!what.empty()) os << " — " << what;
  os << " [" << file << ':' << line << ']';
  throw InvariantViolation(os.str());
}

}  // namespace detail

}  // namespace dhc::support

/// Validate a caller-supplied precondition; throws std::invalid_argument on failure.
#define DHC_REQUIRE(expr, msg)                                                              \
  do {                                                                                      \
    if (!(expr)) {                                                                          \
      ::dhc::support::detail::throw_requirement_failure(#expr, __FILE__, __LINE__,          \
                                                        (std::ostringstream{} << msg).str()); \
    }                                                                                       \
  } while (false)

/// Validate an internal invariant; throws dhc::support::InvariantViolation on failure.
#define DHC_CHECK(expr, msg)                                                                \
  do {                                                                                      \
    if (!(expr)) {                                                                          \
      ::dhc::support::detail::throw_invariant_failure(#expr, __FILE__, __LINE__,            \
                                                      (std::ostringstream{} << msg).str()); \
    }                                                                                       \
  } while (false)
