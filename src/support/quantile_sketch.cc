#include "support/quantile_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace dhc::support {

namespace {

constexpr std::uint32_t kSubCount = 1u << QuantileSketch::kSubBits;
// Smallest exponent in the log region: values < 2^kLinearExp are exact.
constexpr std::uint32_t kLinearExp = 10;
static_assert(QuantileSketch::kLinearCutoff == (1ull << kLinearExp));
constexpr std::size_t kLogBuckets = (64 - kLinearExp) * kSubCount;

}  // namespace

QuantileSketch::QuantileSketch()
    : buckets_(static_cast<std::size_t>(kLinearCutoff) + kLogBuckets, 0) {}

std::size_t QuantileSketch::bucket_of(std::uint64_t v) {
  if (v < kLinearCutoff) return static_cast<std::size_t>(v);
  const std::uint32_t e = static_cast<std::uint32_t>(std::bit_width(v)) - 1;
  const std::uint64_t sub = (v >> (e - kSubBits)) & (kSubCount - 1);
  return static_cast<std::size_t>(kLinearCutoff) +
         static_cast<std::size_t>(e - kLinearExp) * kSubCount + static_cast<std::size_t>(sub);
}

double QuantileSketch::bucket_value(std::size_t bucket) {
  if (bucket < kLinearCutoff) return static_cast<double>(bucket);
  const std::size_t log_index = bucket - static_cast<std::size_t>(kLinearCutoff);
  const std::uint32_t e = kLinearExp + static_cast<std::uint32_t>(log_index / kSubCount);
  const std::uint64_t sub = log_index % kSubCount;
  const double lo = std::ldexp(1.0 + static_cast<double>(sub) / kSubCount, static_cast<int>(e));
  const double width = std::ldexp(1.0, static_cast<int>(e - kSubBits));
  return lo + width / 2.0;
}

void QuantileSketch::add(std::uint64_t value) {
  buckets_[bucket_of(value)] += 1;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  count_ += 1;
  sum_ += static_cast<double>(value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
  sum_ += other.sum_;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Endpoints snap to the exactly-tracked extremes so p0/p100 never carry
  // bucket error (the interior clamp alone cannot raise a low bucket
  // representative up to the true max).
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max_);
  // Nearest-rank over the bucketed distribution.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(std::llround(q * static_cast<double>(count_ - 1)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      const double v = bucket_value(i);
      return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

}  // namespace dhc::support
