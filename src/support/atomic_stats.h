// Statistics counters safe to bump from concurrently stepped protocol code.
//
// Sharded rounds (congest/network.h) step disjoint slices of the active set
// in parallel, so protocol-level aggregate counters incremented inside
// step() would race as plain integers.  ShardCounter makes the increment a
// relaxed atomic fetch-add — sums are independent of execution order, so
// every metric stays bitwise deterministic for any shard count — while
// reading through the implicit conversion keeps call sites unchanged.
// Reads are meant for code that runs between rounds (on_quiescence, result
// extraction after Network::run); the pool barrier orders them after all
// increments of the round.
#pragma once

#include <atomic>

namespace dhc::support {

template <typename T>
class ShardCounter {
 public:
  ShardCounter(T init = 0) : v_(init) {}  // NOLINT: implicit by design

  ShardCounter& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  ShardCounter& operator+=(T delta) {
    v_.fetch_add(delta, std::memory_order_relaxed);
    return *this;
  }

  /// Monotone maximum — max is commutative, so the result is order-free.
  void update_max(T candidate) {
    T seen = v_.load(std::memory_order_relaxed);
    while (candidate > seen &&
           !v_.compare_exchange_weak(seen, candidate, std::memory_order_relaxed)) {
    }
  }

  operator T() const { return v_.load(std::memory_order_relaxed); }  // NOLINT

 private:
  std::atomic<T> v_;
};

}  // namespace dhc::support
