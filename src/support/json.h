// A minimal JSON value + recursive-descent parser.
//
// Powers the trace reader (NDJSON lines) and the bench regression gate
// (comparing BENCH_*.json artifacts), so it only needs to parse what libdhc
// itself writes: objects, arrays, strings with \"/\\/\uXXXX escapes, numbers,
// true/false/null.  Numbers are kept both ways — as double and, when the
// text is integral and in range, as uint64 — because trace counters are
// 64-bit and must not round-trip through a double.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dhc::support {

class JsonValue;

using JsonArray = std::vector<JsonValue>;
/// std::map keeps keys sorted — iteration order is deterministic, which the
/// trace tools rely on when re-emitting objects.
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_integer(std::uint64_t u);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  /// True when the source text was integral and fits uint64 (as_u64 is safe).
  bool is_integral() const { return kind_ == Kind::kNumber && has_int_; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::invalid_argument on kind mismatch.
  bool as_bool() const;
  double as_double() const;
  /// The exact integer when the source text was integral; throws if the
  /// number was written as a fraction/exponent or is out of uint64 range.
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member lookup; throws std::invalid_argument when `key` is absent
  /// (get) or returns nullptr (find).
  const JsonValue& get(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;

  /// Convenience: get(key).as_u64() / as_double() / as_string().
  std::uint64_t u64(const std::string& key) const { return get(key).as_u64(); }
  double number(const std::string& key) const { return get(key).as_double(); }
  const std::string& str(const std::string& key) const { return get(key).as_string(); }

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t int_ = 0;
  bool has_int_ = false;
  std::string str_;
  // Indirect so JsonValue stays movable-cheap despite the recursive types.
  std::shared_ptr<JsonArray> arr_;
  std::shared_ptr<JsonObject> obj_;
};

/// Parses one JSON document from `text`; requires the whole string to be
/// consumed (trailing whitespace allowed).  Throws std::invalid_argument with
/// a byte offset on malformed input.
JsonValue parse_json(const std::string& text);

}  // namespace dhc::support
