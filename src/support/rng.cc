#include "support/rng.h"

#include <cmath>
#include <unordered_set>

namespace dhc::support {

std::vector<std::uint64_t> Rng::sample_distinct(std::uint64_t n, std::uint64_t k) {
  DHC_REQUIRE(k <= n, "cannot sample " << k << " distinct values from [0, " << n << ")");
  // Floyd's algorithm: k iterations, expected O(k) hash operations.
  // dhc-lint: allow(R2) -- membership-only collision check; Floyd's algorithm appends to `result` in draw order, the set is probed, never iterated
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::uint64_t> result;
  result.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = below(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

}  // namespace dhc::support
