#include "support/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace dhc::support {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("json parse error at byte " + std::to_string(pos) + ": " + what);
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue::make_bool(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue::make_bool(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue::make_null();
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue::make_object(std::move(obj));
      }
      fail(pos_, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue::make_array(std::move(arr));
      }
      fail(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail(pos_ - 1, "bad hex digit in \\u escape");
          }
          // libdhc only ever escapes control characters, so a plain UTF-8
          // encoding of the BMP code point suffices (no surrogate pairs).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default: fail(pos_ - 1, "unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      fail(start, "expected a value");
    }
    const std::string tok = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size() || errno == ERANGE) fail(start, "bad number");
    if (integral && tok[0] != '-') {
      errno = 0;
      const unsigned long long u = std::strtoull(tok.c_str(), &end, 10);
      if (end == tok.c_str() + tok.size() && errno != ERANGE) {
        return JsonValue::make_integer(static_cast<std::uint64_t>(u));
      }
    }
    return JsonValue::make_number(d);
  }
};

[[noreturn]] void kind_error(const char* want) {
  throw std::invalid_argument(std::string("json value is not ") + want);
}

}  // namespace

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = d;
  return v;
}

JsonValue JsonValue::make_integer(std::uint64_t u) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.num_ = static_cast<double>(u);
  v.int_ = u;
  v.has_int_ = true;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return num_;
}

std::uint64_t JsonValue::as_u64() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  if (!has_int_) kind_error("an integral number");
  return int_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return str_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return *arr_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return *obj_;
}

const JsonValue& JsonValue::get(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw std::invalid_argument("json object has no key \"" + key + '"');
  return *v;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) kind_error("an object");
  const auto it = obj_->find(key);
  return it == obj_->end() ? nullptr : &it->second;
}

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace dhc::support
