#include "support/worker_pool.h"

#include <algorithm>

namespace dhc::support {

namespace {

// Workers spin briefly before sleeping on the condition variable: the
// simulator dispatches once per round, and a sleep/wake pair per round would
// cost more than the round itself on sparse rounds.  The budget is small
// enough that an idle pool (quiescent network, runner waiting on one slow
// trial) still parks its threads promptly.
constexpr int kSpinIterations = 1 << 14;

}  // namespace

WorkerPool::WorkerPool(unsigned workers) {
  const unsigned lanes = std::max(1u, workers);
  threads_.reserve(lanes - 1);
  for (unsigned i = 0; i + 1 < lanes; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_.store(true, std::memory_order_relaxed);
  }
  start_cv_.notify_all();
  for (auto& th : threads_) th.join();
}

unsigned WorkerPool::hardware_lanes() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void WorkerPool::work_through(Generation& gen) {
  for (std::size_t i = gen.next.fetch_add(1, std::memory_order_relaxed); i < gen.task_count;
       i = gen.next.fetch_add(1, std::memory_order_relaxed)) {
    try {
      (*gen.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(gen.error_mu);
      if (i < gen.first_error_index) {
        gen.first_error_index = i;
        gen.first_error = std::current_exception();
      }
    }
    if (gen.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last task of the generation: wake the caller.  Taking mu_ orders the
      // notification against the caller's predicate check, so the wakeup
      // cannot be lost.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    bool fresh = false;
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (shutdown_.load(std::memory_order_acquire)) return;
      if (generation_id_.load(std::memory_order_acquire) != seen) {
        fresh = true;
        break;
      }
    }
    std::shared_ptr<Generation> gen;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (!fresh) {
        start_cv_.wait(lock, [&] {
          return shutdown_.load(std::memory_order_relaxed) ||
                 generation_id_.load(std::memory_order_relaxed) != seen;
        });
      }
      if (shutdown_.load(std::memory_order_relaxed)) return;
      seen = generation_id_.load(std::memory_order_relaxed);
      gen = current_;
    }
    if (gen) work_through(*gen);
  }
}

void WorkerPool::run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (threads_.empty()) {
    // Degenerate pool: plain sequential execution in task order, exceptions
    // propagating directly — identical semantics, zero synchronization.
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }

  auto gen = std::make_shared<Generation>();
  gen->fn = &fn;
  gen->task_count = tasks;
  gen->pending.store(tasks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = gen;
    generation_id_.fetch_add(1, std::memory_order_release);
  }
  start_cv_.notify_all();

  // The caller is a worker too.
  work_through(*gen);

  if (gen->pending.load(std::memory_order_acquire) != 0) {
    // Spin briefly for stragglers (typical shard imbalance is microseconds),
    // then sleep until the last worker signals.
    for (int spin = 0; spin < kSpinIterations; ++spin) {
      if (gen->pending.load(std::memory_order_acquire) == 0) break;
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock,
                  [&] { return gen->pending.load(std::memory_order_acquire) == 0; });
  }

  if (gen->first_error) std::rethrow_exception(gen->first_error);
}

}  // namespace dhc::support
