// A bump allocator with high-water accounting — the backing store for the
// solvers' CSR-style per-node state slabs.
//
// The million-node regime (ROADMAP "Million-node trials") dies on per-node
// std::vectors: one vector per node costs a 24-byte header plus a separate
// heap block (allocator metadata, fragmentation) even when the payload is a
// handful of words.  The flattened layout instead carves every node's slice
// out of one contiguous slab sized by a prefix sum over the graph's CSR
// rows, so per-node cost is exactly the payload plus one 32-bit length.
//
// Arena hands out those slabs: allocations bump a pointer inside a block,
// oversized requests get an exactly-sized block of their own, and nothing is
// freed until release()/destruction (the solvers' slabs live for one run).
// bytes_live/bytes_peak make the footprint observable — DESIGN.md §10's
// state-packing tables and the runner's memory columns read them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "support/require.h"

namespace dhc::support {

class Arena {
 public:
  /// Blocks are carved in `block_bytes` chunks; requests larger than that
  /// get an exactly-sized block (no rounding a 150 MB slab up to a power of
  /// two).
  explicit Arena(std::size_t block_bytes = std::size_t{1} << 20)
      : block_bytes_(block_bytes) {
    DHC_REQUIRE(block_bytes_ > 0, "arena block size must be positive");
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A value-initialized array of `count` Ts carved from the arena.  The
  /// span stays valid until release()/destruction; T must not need a
  /// destructor (nothing is ever destroyed individually).
  template <typename T>
  std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed wholesale; T must not own resources");
    if (count == 0) return {};
    T* p = static_cast<T*>(alloc_bytes(count * sizeof(T), alignof(T)));
    std::uninitialized_value_construct_n(p, count);
    return {p, count};
  }

  /// Frees every block.  Outstanding spans dangle; callers drop them first.
  void release() {
    blocks_.clear();
    cur_ = end_ = nullptr;
    bytes_live_ = 0;
    bytes_reserved_ = 0;
  }

  /// Bytes handed out since construction/release (excludes alignment pad).
  std::size_t bytes_live() const { return bytes_live_; }

  /// High-water mark of bytes_live() over the arena's lifetime.
  std::size_t bytes_peak() const { return bytes_peak_; }

  /// Bytes actually reserved from the system (blocks, including slack).
  std::size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    auto p = reinterpret_cast<std::uintptr_t>(cur_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~static_cast<std::uintptr_t>(align - 1);
    if (cur_ == nullptr || aligned + bytes > reinterpret_cast<std::uintptr_t>(end_)) {
      // A fresh block: normal requests share block_bytes_ chunks, oversized
      // ones get an exact fit (alignment slack included).
      const std::size_t need = bytes + align - 1;
      const std::size_t size = need > block_bytes_ ? need : block_bytes_;
      blocks_.push_back(std::make_unique<std::byte[]>(size));
      bytes_reserved_ += size;
      cur_ = blocks_.back().get();
      end_ = cur_ + size;
      return alloc_bytes(bytes, align);
    }
    cur_ = reinterpret_cast<std::byte*>(aligned + bytes);
    bytes_live_ += bytes;
    if (bytes_live_ > bytes_peak_) bytes_peak_ = bytes_live_;
    return reinterpret_cast<void*>(aligned);
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  std::size_t bytes_live_ = 0;
  std::size_t bytes_peak_ = 0;
  std::size_t bytes_reserved_ = 0;
};

}  // namespace dhc::support
