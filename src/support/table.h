// Fixed-width table printer for the benchmark harness.
//
// Every experiment binary prints its series as an aligned text table (the
// repository's equivalent of the paper's figures), so output stays greppable
// and diffable across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dhc::support {

/// Column-aligned text table.  Usage:
///   Table t({"n", "rounds", "success"});
///   t.add_row({"1024", "813", "1.00"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }

  /// Renders with a header rule, right-aligning numeric-looking cells.
  void print(std::ostream& os) const;

  /// Convenience: formats a double with `precision` significant decimals.
  static std::string num(double value, int precision = 2);
  /// Convenience: formats an integer count.
  static std::string num(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dhc::support
