#include "congest/setup.h"

#include <algorithm>
#include <limits>

#include "support/require.h"

namespace dhc::congest {

namespace {

constexpr std::uint32_t kNoLevel = std::numeric_limits<std::uint32_t>::max();

// Rank of neighbor `w` in v's sorted neighbor span; `w` must be a neighbor
// (it arrived as msg.from).  Paid once per tree-edge adoption so that every
// later tree send is O(1).
std::uint32_t rank_of(Context& ctx, NodeId w) {
  const auto nb = ctx.neighbors();
  return static_cast<std::uint32_t>(std::lower_bound(nb.begin(), nb.end(), w) - nb.begin());
}

}  // namespace

SetupComponent::SetupComponent(NodeId n, std::uint16_t base_tag, std::vector<std::uint32_t> group_of)
    : base_tag_(base_tag), group_of_(std::move(group_of)) {
  DHC_REQUIRE(group_of_.size() == n, "group_of must have one entry per node");
  multi_group_ = !group_of_.empty() &&
                 !std::all_of(group_of_.begin(), group_of_.end(),
                              [&](std::uint32_t g) { return g == group_of_[0]; });
  phase_seen_.assign(n, static_cast<std::uint8_t>(Phase::kIdle));
  min_seen_.assign(n, kNoNode);
  level_.assign(n, kNoLevel);
  parent_.assign(n, kNoNode);
  parent_rank_.assign(n, 0);
  children_.assign(n, {});
  child_ranks_.assign(n, {});
  up_reports_.assign(n, 0);
  up_size_.assign(n, 0);
  up_depth_.assign(n, 0);
  comp_size_.assign(n, 0);
  comp_depth_.assign(n, 0);
}

SetupComponent::SetupComponent(NodeId n, std::uint16_t base_tag)
    : SetupComponent(n, base_tag, std::vector<std::uint32_t>(n, 0)) {}

void SetupComponent::advance(Network& net) {
  DHC_CHECK(phase_ != Phase::kDone, "advance() called on a finished SetupComponent");
  switch (phase_) {
    case Phase::kIdle:
      // Group announcement is only needed when groups actually differ.
      phase_ = multi_group_ ? Phase::kShare : Phase::kElect;
      break;
    case Phase::kShare:
      phase_ = Phase::kElect;
      break;
    case Phase::kElect:
      phase_ = Phase::kBfs;
      break;
    case Phase::kBfs:
      phase_ = Phase::kUp;
      break;
    case Phase::kUp:
      phase_ = Phase::kDown;
      break;
    case Phase::kDown:
      phase_ = Phase::kDone;
      return;  // no more work; don't wake anyone
    case Phase::kDone:
      return;
  }
  net.wake_all();
}

void SetupComponent::step(Context& ctx) {
  const NodeId v = ctx.self();
  if (phase_seen_[v] != static_cast<std::uint8_t>(phase_)) {
    phase_seen_[v] = static_cast<std::uint8_t>(phase_);
    start_phase(ctx);
  }
  // Election improvements are batched: forwarding each improving message
  // separately could put two messages on one edge in one round.
  NodeId best_candidate = kNoNode;
  for (const Message& msg : ctx.inbox()) {
    if (msg.tag == tag_elect()) {
      best_candidate = std::min(best_candidate, static_cast<NodeId>(msg.data[0]));
    } else if (msg.tag >= base_tag_ && msg.tag <= tag_down()) {
      handle(ctx, msg);
    }
  }
  if (best_candidate < min_seen_[v]) {
    min_seen_[v] = best_candidate;
    ctx.charge_compute(1);
    flood_group(ctx, Message::make(tag_elect(), {best_candidate}));
  }
}

// Sends one pre-built message to every same-group neighbor.  The message is
// constructed once (not per neighbor) and sent by rank, and the group filter
// is skipped entirely for single-group components — this loop carries the
// bulk of all simulated traffic (Share/Elect/BFS flooding).
void SetupComponent::flood_group(Context& ctx, const Message& msg) const {
  const auto nb = ctx.neighbors();
  if (!multi_group_) {
    for (std::size_t i = 0; i < nb.size(); ++i) ctx.send_to_rank(i, msg);
    return;
  }
  const std::uint32_t group = group_of_[ctx.self()];
  for (std::size_t i = 0; i < nb.size(); ++i) {
    if (group_of_[nb[i]] == group) ctx.send_to_rank(i, msg);
  }
}

void SetupComponent::start_phase(Context& ctx) {
  const NodeId v = ctx.self();
  switch (phase_) {
    case Phase::kShare: {
      // Tell every physical neighbor which group we are in (paper Alg. 2
      // line 6: colors are local random choices, so neighbors must be told).
      const Message msg = Message::make(tag_share(), {static_cast<std::int64_t>(group_of_[v])});
      const std::size_t degree = ctx.degree();
      for (std::size_t i = 0; i < degree; ++i) ctx.send_to_rank(i, msg);
      // A node stores its neighbors' groups: one word per neighbor.
      ctx.charge_memory(static_cast<std::int64_t>(degree));
      break;
    }
    case Phase::kElect: {
      min_seen_[v] = v;
      flood_group(ctx, Message::make(tag_elect(), {v}));
      break;
    }
    case Phase::kBfs: {
      if (min_seen_[v] == v) {
        level_[v] = 0;
        announce_bfs(ctx);
      }
      break;
    }
    case Phase::kUp: {
      // Leaves start the size/depth convergecast.
      maybe_send_up(ctx);
      break;
    }
    case Phase::kDown: {
      if (min_seen_[v] == v && level_[v] == 0) {
        comp_size_[v] = up_size_[v];
        comp_depth_[v] = up_depth_[v];
        send_to_children(ctx, Message::make(tag_down(), {comp_size_[v], comp_depth_[v]}));
      }
      break;
    }
    case Phase::kIdle:
    case Phase::kDone:
      break;
  }
}

void SetupComponent::handle(Context& ctx, const Message& msg) {
  const NodeId v = ctx.self();
  if (msg.tag == tag_share()) {
    return;  // cost accounted; group table is read from group_of_
  }
  if (msg.tag == tag_bfs()) {
    const auto lvl = static_cast<std::uint32_t>(msg.data[0]);
    const auto claimed_parent = static_cast<NodeId>(msg.data[1]);
    if (claimed_parent == v) {
      children_[v].push_back(msg.from);
      child_ranks_[v].push_back(rank_of(ctx, msg.from));
      ctx.charge_memory(1);
    }
    if (level_[v] == kNoLevel) {
      // Synchronous BFS: all first announcements arrive in the same round.
      // Adopt a *uniformly random* announcer as parent — Lemmas 13–15 rely
      // on random attachment for subtree balance (min-id tie-breaking would
      // funnel nearly all of L2 under the smallest-id L1 node and destroy
      // the upcast congestion bound of Lemma 16).
      level_[v] = lvl + 1;
      std::uint32_t candidates = 0;
      for (const Message& other : ctx.inbox()) {
        if (other.tag == tag_bfs() && static_cast<std::uint32_t>(other.data[0]) == lvl) {
          ++candidates;
        }
      }
      std::uint64_t pick = ctx.rng().below(std::max<std::uint32_t>(candidates, 1));
      parent_[v] = msg.from;
      for (const Message& other : ctx.inbox()) {
        if (other.tag == tag_bfs() && static_cast<std::uint32_t>(other.data[0]) == lvl) {
          if (pick-- == 0) {
            parent_[v] = other.from;
            break;
          }
        }
      }
      parent_rank_[v] = rank_of(ctx, parent_[v]);
      announce_bfs(ctx);
    }
    return;
  }
  if (msg.tag == tag_up()) {
    up_size_[v] += static_cast<std::uint32_t>(msg.data[0]);
    up_depth_[v] = std::max(up_depth_[v], static_cast<std::uint32_t>(msg.data[1]));
    up_reports_[v] += 1;
    maybe_send_up(ctx);
    return;
  }
  if (msg.tag == tag_down()) {
    comp_size_[v] = static_cast<std::uint32_t>(msg.data[0]);
    comp_depth_[v] = static_cast<std::uint32_t>(msg.data[1]);
    send_to_children(ctx, Message::make(tag_down(), {comp_size_[v], comp_depth_[v]}));
    return;
  }
}

void SetupComponent::announce_bfs(Context& ctx) {
  const NodeId v = ctx.self();
  const std::int64_t parent_field =
      (parent_[v] == kNoNode) ? static_cast<std::int64_t>(kNoNode) : parent_[v];
  flood_group(ctx, Message::make(tag_bfs(), {level_[v], parent_field}));
}

void SetupComponent::maybe_send_up(Context& ctx) {
  const NodeId v = ctx.self();
  if (level_[v] == kNoLevel) return;  // isolated from any leader (empty group edge case)
  if (up_reports_[v] != children_[v].size()) return;
  const std::uint32_t size = up_size_[v] + 1;
  const std::uint32_t depth = std::max(up_depth_[v], level_[v]);
  up_size_[v] = size;
  up_depth_[v] = depth;
  if (parent_[v] != kNoNode) {
    send_to_parent(ctx, Message::make(tag_up(), {size, depth}));
  }
  // Leaders finalize in the Down phase.
  // Guard against double-sends if maybe_send_up is called again: mark done.
  up_reports_[v] = std::numeric_limits<std::uint32_t>::max();
}

void SetupComponent::forward_on_tree(Context& ctx, const Message& msg, NodeId exclude) const {
  const NodeId v = ctx.self();
  if (parent_[v] != kNoNode && parent_[v] != exclude) send_to_parent(ctx, msg);
  send_to_children(ctx, msg, exclude);
}

}  // namespace dhc::congest
