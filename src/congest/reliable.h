// Reliable-delivery overlay for the async execution model.
//
// PR 7's first finding was that a 2% per-message drop rate stalls every
// solver to hit_round_limit, because no protocol in the paper re-sends (the
// CONGEST model assumes reliable links).  This overlay restores that
// assumption *under* a lossy FaultPlan, as a transport layer inside the
// Network rather than a patch to five solvers (DESIGN.md §9):
//
//   - every directed link carries a sequence number per payload message and
//     a cumulative ack (highest contiguously delivered seq) piggybacked on
//     whatever traffic flows the other way;
//   - a receiver that got payload but has nothing to send back emits a
//     standalone ack message (header-only) one round later;
//   - the sender buffers unacked messages and retransmits them all
//     (go-back-N) when a deterministic per-link timer fires, with
//     exponential backoff (RtoSpec: initial timeout, multiplier, cap);
//   - the receiver delivers in order exactly once: stale seqs are counted as
//     duplicates and re-acked, ahead-of-order seqs are buffered.
//
// Determinism: the overlay consumes no RNG stream — all state transitions
// are pure functions of the (deterministic) send/arrival/timer schedule, and
// retransmitted messages flow through the same FaultPlan hash decisions as
// first sends.  All overlay bookkeeping runs on the serial paths of the
// engine (enqueue_async / maturation / timer service), which the shard merge
// already replays in global send order, so runs stay bitwise identical at
// any shard count.  Because the fault seed and the drop/delay hashes are
// untouched, reliability=ack runs remain paired (common random numbers)
// with their reliability=none controls on the same axes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "congest/message.h"
#include "graph/graph.h"

namespace dhc::congest {

/// Retransmit-timer parameters.  Spec strings use ':' separators so they
/// survive comma-separated scenario axis lists:
///   "rto:K"            retransmit after K rounds without ack progress
///   "rto:K:MULT"       timeout multiplies by MULT per consecutive fire
///   "rto:K:MULT:MAX"   backoff capped at MAX rounds
/// The "rto:" prefix is optional ("4:2:16" parses the same).  K must cover a
/// link round trip (data latency + 1 round ack delay + ack latency) or every
/// message is retransmitted spuriously; at unit delays the round trip is 3,
/// so the default 4 is the tightest spurious-free timeout.  Tight matters:
/// the paper's solvers calibrate settle timers for unit latency, and a large
/// RTO turns every drop into cross-link skew they cannot absorb (DESIGN.md
/// §9 measures the tolerance cliff).
struct RtoSpec {
  std::uint64_t initial = 4;
  std::uint64_t mult = 2;
  std::uint64_t max = 16;

  /// Parses a spec string; throws std::invalid_argument on malformed input.
  static RtoSpec parse(const std::string& spec);
  std::string to_string() const;
};

/// Reliability mode for the async backend:
///   "none"  messages lost to drops stay lost (PR 7 behavior)
///   "ack"   the seq/ack/retransmit overlay above
struct ReliabilitySpec {
  enum class Kind : std::uint8_t { kNone, kAck };

  Kind kind = Kind::kNone;

  /// Parses a spec string; throws std::invalid_argument on malformed input.
  static ReliabilitySpec parse(const std::string& spec);
  std::string to_string() const;

  bool active() const { return kind == Kind::kAck; }
};

/// Per-link reliable-channel state machine.  Owned by the Network and driven
/// from its serial paths only; the Network remains responsible for routing
/// the messages this class produces through the FaultPlan (drops, delays,
/// link FIFO) and for all Metrics accounting.
class ReliableOverlay {
 public:
  ReliableOverlay(const graph::Graph& g, RtoSpec rto);

  /// Receiver-side classification of one matured message.
  enum class Arrival : std::uint8_t {
    kDeliver,    ///< next in-order payload: deliver, then drain_in_order()
    kBuffer,     ///< ahead of order: held until the gap fills
    kDuplicate,  ///< already delivered (or already buffered): suppress
    kAck,        ///< standalone ack: transport-only, nothing to deliver
  };

  /// Sender path, called for every protocol send on directed edge `edge`
  /// (msg.from/msg.to already set).  Stamps a fresh sequence number and the
  /// piggybacked cumulative ack for the reverse direction, buffers a
  /// retransmit copy, and arms the link's timer if idle.
  void stamp_and_buffer(std::size_t edge, Message& msg, std::uint64_t now);

  /// Receiver path, called for every matured arrival on `edge` (the sending
  /// direction's id).  Processes the piggybacked ack against the reverse
  /// link, schedules the ack owed for payload, and classifies the payload.
  Arrival on_arrival(std::size_t edge, const Message& msg, std::uint64_t now);

  /// After a kDeliver: appends the buffered messages that became in-order,
  /// in sequence order, and advances the receive cursor past them.
  void drain_in_order(std::size_t edge, std::vector<Message>& out);

  /// Fires every timer due at `now`, appending the messages the transport
  /// owes the network — retransmit copies (rel_seq > 0, refreshed rel_ack)
  /// and standalone acks (rel_seq == 0) — in deterministic timer order.
  /// Timers owned by a currently crashed endpoint defer instead of firing
  /// (the work survives the crash window; see DESIGN.md §9).
  void collect_due(std::uint64_t now, const std::function<bool(NodeId)>& crashed,
                   std::vector<Message>& out);

  /// True while any link still owes traffic (unacked payload or a pending
  /// standalone ack) — the overlay's contribution to the quiescence check.
  bool any_pending() const { return live_timers_ != 0; }

  /// Earliest round > `now` holding a live timer (UINT64_MAX when none);
  /// folded into the engine's event-driven round advance.
  std::uint64_t next_event_round(std::uint64_t now) const;

  std::size_t reverse_edge(std::size_t edge) const { return reverse_edge_[edge]; }

 private:
  enum class TimerKind : std::uint8_t { kRetransmit, kAck };
  struct TimerEntry {
    std::uint32_t edge = 0;
    TimerKind kind = TimerKind::kRetransmit;
  };

  // The timer wheel mirrors the Network's wake-up wheel geometry: one bucket
  // per upcoming round, far-future timers in an ordered map.  Entries are
  // hints, not state: re-arming files a new entry and leaves the old one
  // stale; the due arrays below are the ground truth, checked at fire time
  // (and by next_event_round), so stale entries are dropped for free.
  static constexpr std::uint64_t kWheelBits = 10;
  static constexpr std::uint64_t kWheelSize = 1ull << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSize - 1;

  void file_timer(std::uint64_t now, std::uint64_t fire, std::uint32_t edge, TimerKind kind);
  void process_ack(std::size_t edge, std::uint32_t ack, std::uint64_t now);
  void schedule_ack(std::size_t edge, std::uint64_t now);
  void fire_entry(const TimerEntry& e, std::uint64_t now,
                  const std::function<bool(NodeId)>& crashed, std::vector<Message>& out);

  RtoSpec rto_;

  // Static link tables (CSR edge ids): the opposite direction of each
  // directed edge, and its sending endpoint (head(e) == tail(reverse(e))).
  std::vector<std::uint32_t> reverse_edge_;
  std::vector<NodeId> edge_tail_;

  // Sender state, per directed edge.  send_buf_ holds unacked messages in
  // seq order; retrans_due_ == 0 means the timer is disarmed (timers always
  // fire at rounds >= 1).
  std::vector<std::uint32_t> next_seq_;
  std::vector<std::uint32_t> acked_to_;
  std::vector<std::vector<Message>> send_buf_;
  std::vector<std::uint64_t> retrans_due_;
  std::vector<std::uint64_t> cur_rto_;

  // Receiver state, per directed edge: next expected seq, the out-of-order
  // buffer (sorted by seq), and the round a standalone ack is owed at
  // (0 = none pending).
  std::vector<std::uint32_t> recv_next_;
  std::vector<std::vector<Message>> recv_buf_;
  std::vector<std::uint64_t> ack_due_;

  std::vector<std::vector<TimerEntry>> timer_wheel_;
  std::map<std::uint64_t, std::vector<TimerEntry>> far_timers_;
  std::vector<TimerEntry> fire_scratch_;  // collect_due working set, reused
  std::size_t live_timers_ = 0;           // armed retransmit + ack timers
};

}  // namespace dhc::congest
