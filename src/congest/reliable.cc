#include "congest/reliable.h"

#include <algorithm>
#include <stdexcept>

namespace dhc::congest {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t next = s.find(sep, pos);
    if (next == std::string::npos) {
      out.push_back(s.substr(pos));
      return out;
    }
    out.push_back(s.substr(pos, next - pos));
    pos = next + 1;
  }
}

std::uint64_t parse_u64(const std::string& s, const char* what) {
  std::size_t used = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("rto spec: bad ") + what + " '" + s + "'");
  }
  if (used != s.size()) {
    throw std::invalid_argument(std::string("rto spec: bad ") + what + " '" + s + "'");
  }
  return v;
}

// Keeps the backoff arithmetic (cur * mult, capped at max) far from overflow.
constexpr std::uint64_t kMaxTimeout = 1'000'000'000;

}  // namespace

RtoSpec RtoSpec::parse(const std::string& spec) {
  std::vector<std::string> parts = split(spec, ':');
  std::size_t i = 0;
  if (!parts.empty() && parts[0] == "rto") i = 1;
  const std::size_t count = parts.size() - i;
  if (parts.size() == i || count > 3) {
    throw std::invalid_argument("rto spec '" + spec + "' (expected rto:K[:MULT[:MAX]])");
  }
  RtoSpec r;
  r.initial = parse_u64(parts[i], "timeout");
  r.mult = count >= 2 ? parse_u64(parts[i + 1], "multiplier") : 2;
  // Omitted cap: the default 16, lifted so it never undercuts the timeout.
  r.max = count >= 3 ? parse_u64(parts[i + 2], "cap") : std::max<std::uint64_t>(16, r.initial);
  if (r.initial < 1 || r.initial > kMaxTimeout) {
    throw std::invalid_argument("rto spec '" + spec + "': timeout must be in [1, 1e9]");
  }
  if (r.mult < 1) {
    throw std::invalid_argument("rto spec '" + spec + "': multiplier must be >= 1");
  }
  if (r.max < r.initial || r.max > kMaxTimeout) {
    throw std::invalid_argument("rto spec '" + spec + "': cap must be in [timeout, 1e9]");
  }
  return r;
}

std::string RtoSpec::to_string() const {
  return "rto:" + std::to_string(initial) + ":" + std::to_string(mult) + ":" +
         std::to_string(max);
}

ReliabilitySpec ReliabilitySpec::parse(const std::string& spec) {
  ReliabilitySpec r;
  if (spec == "none") {
    r.kind = Kind::kNone;
  } else if (spec == "ack") {
    r.kind = Kind::kAck;
  } else {
    throw std::invalid_argument("reliability spec '" + spec + "' (expected none|ack)");
  }
  return r;
}

std::string ReliabilitySpec::to_string() const {
  return kind == Kind::kAck ? "ack" : "none";
}

ReliableOverlay::ReliableOverlay(const graph::Graph& g, RtoSpec rto) : rto_(rto) {
  const auto offsets = g.row_offsets();
  const std::size_t total = offsets.empty() ? 0 : static_cast<std::size_t>(offsets.back());
  reverse_edge_.resize(total);
  edge_tail_.resize(total);
  for (NodeId u = 0; u < g.n(); ++u) {
    const auto nb = g.neighbors(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const std::size_t e = offsets[u] + i;
      const NodeId v = nb[i];
      edge_tail_[e] = u;
      reverse_edge_[e] = static_cast<std::uint32_t>(offsets[v] + g.neighbor_rank(v, u));
    }
  }
  next_seq_.assign(total, 1);
  acked_to_.assign(total, 0);
  send_buf_.assign(total, {});
  retrans_due_.assign(total, 0);
  cur_rto_.assign(total, rto_.initial);
  recv_next_.assign(total, 1);
  recv_buf_.assign(total, {});
  ack_due_.assign(total, 0);
  timer_wheel_.resize(kWheelSize);
}

void ReliableOverlay::file_timer(std::uint64_t now, std::uint64_t fire, std::uint32_t edge,
                                 TimerKind kind) {
  if (fire - now < kWheelSize) {
    timer_wheel_[fire & kWheelMask].push_back({edge, kind});
  } else {
    far_timers_[fire].push_back({edge, kind});
  }
}

void ReliableOverlay::stamp_and_buffer(std::size_t edge, Message& msg, std::uint64_t now) {
  const std::size_t rev = reverse_edge_[edge];
  msg.rel_seq = next_seq_[edge]++;
  msg.rel_ack = recv_next_[rev] - 1;
  if (ack_due_[rev] != 0) {
    // This send piggybacks the ack owed for the reverse direction.
    ack_due_[rev] = 0;
    --live_timers_;
  }
  send_buf_[edge].push_back(msg);
  if (retrans_due_[edge] == 0) {
    cur_rto_[edge] = rto_.initial;
    retrans_due_[edge] = now + rto_.initial;
    file_timer(now, retrans_due_[edge], static_cast<std::uint32_t>(edge),
               TimerKind::kRetransmit);
    ++live_timers_;
  }
}

void ReliableOverlay::process_ack(std::size_t edge, std::uint32_t ack, std::uint64_t now) {
  if (ack <= acked_to_[edge]) return;
  acked_to_[edge] = ack;
  auto& buf = send_buf_[edge];
  std::size_t k = 0;
  while (k < buf.size() && buf[k].rel_seq <= ack) ++k;
  if (k != 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(k));
  if (retrans_due_[edge] == 0) return;
  if (buf.empty()) {
    retrans_due_[edge] = 0;
    --live_timers_;
    cur_rto_[edge] = rto_.initial;
  } else {
    // Ack progress restarts the timer (fresh timeout) for the new oldest
    // unacked message; the old wheel entry goes stale.
    cur_rto_[edge] = rto_.initial;
    retrans_due_[edge] = now + rto_.initial;
    file_timer(now, retrans_due_[edge], static_cast<std::uint32_t>(edge),
               TimerKind::kRetransmit);
  }
}

void ReliableOverlay::schedule_ack(std::size_t edge, std::uint64_t now) {
  if (ack_due_[edge] != 0) return;
  ack_due_[edge] = now + 1;
  file_timer(now, now + 1, static_cast<std::uint32_t>(edge), TimerKind::kAck);
  ++live_timers_;
}

ReliableOverlay::Arrival ReliableOverlay::on_arrival(std::size_t edge, const Message& msg,
                                                     std::uint64_t now) {
  process_ack(reverse_edge_[edge], msg.rel_ack, now);
  if (msg.rel_seq == 0) return Arrival::kAck;
  schedule_ack(edge, now);
  const std::uint32_t seq = msg.rel_seq;
  if (seq < recv_next_[edge]) return Arrival::kDuplicate;
  if (seq == recv_next_[edge]) {
    recv_next_[edge] += 1;
    return Arrival::kDeliver;
  }
  // Ahead of order: insert by seq (links are FIFO, so arrivals are already
  // near-sorted and this scans at most a few tail slots).
  auto& buf = recv_buf_[edge];
  std::size_t pos = buf.size();
  while (pos > 0 && buf[pos - 1].rel_seq >= seq) {
    if (buf[pos - 1].rel_seq == seq) return Arrival::kDuplicate;
    --pos;
  }
  buf.insert(buf.begin() + static_cast<std::ptrdiff_t>(pos), msg);
  return Arrival::kBuffer;
}

void ReliableOverlay::drain_in_order(std::size_t edge, std::vector<Message>& out) {
  auto& buf = recv_buf_[edge];
  std::size_t k = 0;
  while (k < buf.size() && buf[k].rel_seq == recv_next_[edge]) {
    out.push_back(buf[k]);
    recv_next_[edge] += 1;
    ++k;
  }
  if (k != 0) buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(k));
}

void ReliableOverlay::fire_entry(const TimerEntry& t, std::uint64_t now,
                                 const std::function<bool(NodeId)>& crashed,
                                 std::vector<Message>& out) {
  const std::size_t e = t.edge;
  if (t.kind == TimerKind::kRetransmit) {
    if (retrans_due_[e] != now) return;  // stale hint
    auto& buf = send_buf_[e];
    if (buf.empty()) {
      retrans_due_[e] = 0;
      --live_timers_;
      return;
    }
    if (crashed(edge_tail_[e])) {
      // A crashed sender can't act; the buffer survives and the timer
      // re-arms at the same timeout (the crash, not congestion, is the
      // cause) so retransmission resumes after the rejoin.
      retrans_due_[e] = now + cur_rto_[e];
      file_timer(now, retrans_due_[e], t.edge, TimerKind::kRetransmit);
      return;
    }
    // Go-back-N: re-send every unacked message with a refreshed piggyback
    // ack (which also covers any standalone ack owed on the reverse link).
    const std::size_t rev = reverse_edge_[e];
    const std::uint32_t piggy = recv_next_[rev] - 1;
    if (ack_due_[rev] != 0) {
      ack_due_[rev] = 0;
      --live_timers_;
    }
    for (const Message& m : buf) {
      Message& copy = out.emplace_back(m);
      copy.rel_ack = piggy;
    }
    cur_rto_[e] = std::min(cur_rto_[e] * rto_.mult, rto_.max);
    retrans_due_[e] = now + cur_rto_[e];
    file_timer(now, retrans_due_[e], t.edge, TimerKind::kRetransmit);
  } else {
    if (ack_due_[e] != now) return;  // stale hint
    const std::size_t rev = reverse_edge_[e];
    if (crashed(edge_tail_[rev])) {
      // The ack is owed by e's head, which is crashed; retry next round.
      ack_due_[e] = now + 1;
      file_timer(now, ack_due_[e], t.edge, TimerKind::kAck);
      return;
    }
    Message& ack = out.emplace_back();
    ack.from = edge_tail_[rev];
    ack.to = edge_tail_[e];
    ack.rel_seq = 0;  // standalone ack: no payload, header only
    ack.rel_ack = recv_next_[e] - 1;
    ack_due_[e] = 0;
    --live_timers_;
  }
}

void ReliableOverlay::collect_due(std::uint64_t now,
                                  const std::function<bool(NodeId)>& crashed,
                                  std::vector<Message>& out) {
  // Far entries first (they were armed earliest), then the wheel bucket in
  // append order — a fixed, deterministic service order.  Far keys the
  // event-driven advance jumped past hold only stale hints (a live timer's
  // round is always visited); fire_entry's due check discards them.
  while (!far_timers_.empty() && far_timers_.begin()->first <= now) {
    fire_scratch_.swap(far_timers_.begin()->second);
    far_timers_.erase(far_timers_.begin());
    for (const TimerEntry& t : fire_scratch_) fire_entry(t, now, crashed, out);
    fire_scratch_.clear();
  }
  auto& bucket = timer_wheel_[now & kWheelMask];
  // Swap out before firing: re-arms file into other buckets (fire rounds are
  // always > now and wheel distances < kWheelSize), never this one.
  fire_scratch_.swap(bucket);
  for (const TimerEntry& t : fire_scratch_) fire_entry(t, now, crashed, out);
  fire_scratch_.clear();
}

std::uint64_t ReliableOverlay::next_event_round(std::uint64_t now) const {
  if (live_timers_ == 0) return static_cast<std::uint64_t>(-1);
  const auto entry_live_at = [&](const TimerEntry& t, std::uint64_t fire) {
    return t.kind == TimerKind::kRetransmit ? retrans_due_[t.edge] == fire
                                            : ack_due_[t.edge] == fire;
  };
  std::uint64_t best = static_cast<std::uint64_t>(-1);
  // A live far timer can sit closer than kWheelSize once rounds advance, so
  // the far map is scanned unconditionally, not just past the wheel horizon.
  for (const auto& [fire, entries] : far_timers_) {
    if (fire <= now) continue;  // stale keys awaiting their cleanup sweep
    bool live = false;
    for (const TimerEntry& t : entries) {
      if (entry_live_at(t, fire)) {
        live = true;
        break;
      }
    }
    if (live) {
      best = fire;
      break;
    }
  }
  for (std::uint64_t r = now + 1; r < now + kWheelSize && r < best; ++r) {
    for (const TimerEntry& t : timer_wheel_[r & kWheelMask]) {
      if (entry_live_at(t, r)) {
        best = r;
        break;
      }
    }
    if (best == r) break;
  }
  return best;
}

}  // namespace dhc::congest
