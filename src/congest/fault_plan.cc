#include "congest/fault_plan.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/rng.h"

namespace dhc::congest {

namespace {

// Salts keep the three fault questions statistically independent even though
// they share one fault seed.  Arbitrary odd constants, fixed forever (they
// are part of the golden-pinned behavior).
constexpr std::uint64_t kDelaySalt = 0xd31a7ull;
constexpr std::uint64_t kDropSalt = 0xd70b2ull;
constexpr std::uint64_t kCrashSalt = 0xc4a54ull;

/// splitmix64 word-absorption chain, same construction as the runner's
/// derive_seed(): absorb each argument into the state between draws so every
/// (seed, w0, w1, salt) tuple lands in an unrelated part of the stream.
std::uint64_t hash_words(std::uint64_t seed, std::uint64_t w0, std::uint64_t w1,
                         std::uint64_t salt) {
  std::uint64_t state = seed;
  std::uint64_t h = support::splitmix64(state);
  state ^= w0;
  h ^= support::splitmix64(state);
  state ^= w1;
  h ^= support::splitmix64(state);
  state ^= salt;
  h ^= support::splitmix64(state);
  return h;
}

/// Uniform [0, 1) from a hash, the same 53-bit construction as Rng::uniform01.
double u01(std::uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

/// Unbiased-enough bounded map: (h * span) >> 64.  Bias is < span / 2^64,
/// irrelevant at experiment scale, and unlike rejection sampling it stays a
/// pure function of the hash.
std::uint64_t bounded(std::uint64_t h, std::uint64_t span) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(h) * static_cast<unsigned __int128>(span)) >> 64);
}

std::vector<std::string> split(const std::string& spec, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = spec.find(sep, begin);
    parts.push_back(spec.substr(begin, end - begin));
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return parts;
}

std::uint64_t parse_u64(const std::string& s, const std::string& spec) {
  try {
    std::size_t pos = 0;
    if (s.empty() || s[0] == '-') throw std::invalid_argument(s);
    const unsigned long long v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer '" + s + "' in fault spec '" + spec + "'");
  }
}

double parse_double(const std::string& s, const std::string& spec) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number '" + s + "' in fault spec '" + spec + "'");
  }
}

}  // namespace

DelaySpec DelaySpec::parse(const std::string& spec) {
  const auto parts = split(spec, ':');
  DelaySpec d;
  if (parts[0] == "none") {
    if (parts.size() != 1) throw std::invalid_argument("delay spec 'none' takes no arguments");
    return d;
  }
  if (parts[0] == "fixed") {
    if (parts.size() != 2) throw std::invalid_argument("delay spec: expected fixed:K");
    d.kind = Kind::kFixed;
    d.a = parse_u64(parts[1], spec);
    if (d.a < 1) throw std::invalid_argument("fixed delay must be >= 1 in '" + spec + "'");
    return d;
  }
  if (parts[0] == "uniform") {
    if (parts.size() != 3) throw std::invalid_argument("delay spec: expected uniform:A:B");
    d.kind = Kind::kUniform;
    d.a = parse_u64(parts[1], spec);
    d.b = parse_u64(parts[2], spec);
    if (d.a < 1 || d.b < d.a) {
      throw std::invalid_argument("uniform delay needs 1 <= A <= B in '" + spec + "'");
    }
    return d;
  }
  if (parts[0] == "geometric") {
    if (parts.size() != 2) throw std::invalid_argument("delay spec: expected geometric:P");
    d.kind = Kind::kGeometric;
    d.p = parse_double(parts[1], spec);
    if (!(d.p > 0.0) || d.p > 1.0) {
      throw std::invalid_argument("geometric delay needs 0 < P <= 1 in '" + spec + "'");
    }
    return d;
  }
  throw std::invalid_argument("unknown delay distribution '" + spec +
                              "' (want none | fixed:K | uniform:A:B | geometric:P)");
}

std::string DelaySpec::to_string() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kFixed:
      return "fixed:" + std::to_string(a);
    case Kind::kUniform:
      return "uniform:" + std::to_string(a) + ":" + std::to_string(b);
    case Kind::kGeometric: {
      std::string s = "geometric:" + std::to_string(p);
      return s;
    }
  }
  return "none";
}

CrashSpec CrashSpec::parse(const std::string& spec) {
  const auto parts = split(spec, ':');
  CrashSpec c;
  if (parts[0] == "none") {
    if (parts.size() != 1) throw std::invalid_argument("crash spec 'none' takes no arguments");
    return c;
  }
  if (parts[0] == "random") {
    if (parts.size() != 4) {
      throw std::invalid_argument("crash spec: expected random:FRAC:START:DUR");
    }
    c.kind = Kind::kRandom;
    c.fraction = parse_double(parts[1], spec);
    c.start = parse_u64(parts[2], spec);
    c.duration = parse_u64(parts[3], spec);
    if (!(c.fraction >= 0.0) || c.fraction >= 1.0) {
      throw std::invalid_argument("crash fraction must be in [0, 1) in '" + spec + "'");
    }
    return c;
  }
  throw std::invalid_argument("unknown crash schedule '" + spec +
                              "' (want none | random:FRAC:START:DUR)");
}

std::string CrashSpec::to_string() const {
  if (kind == Kind::kNone) return "none";
  return "random:" + std::to_string(fraction) + ":" + std::to_string(start) + ":" +
         std::to_string(duration);
}

FaultPlan::FaultPlan(DelaySpec delay, double drop_prob, CrashSpec crash,
                     std::uint64_t fault_seed, std::uint64_t round_limit)
    : delay_(delay),
      drop_prob_(drop_prob),
      crash_(crash),
      fault_seed_(fault_seed),
      round_limit_(round_limit) {
  if (!(drop_prob_ >= 0.0) || drop_prob_ >= 1.0) {
    throw std::invalid_argument("drop_prob must be in [0, 1)");
  }
}

std::uint64_t FaultPlan::delay(NodeId from, NodeId to) const {
  switch (delay_.kind) {
    case DelaySpec::Kind::kNone:
      return 1;
    case DelaySpec::Kind::kFixed:
      return delay_.a;
    case DelaySpec::Kind::kUniform: {
      const std::uint64_t h = hash_words(fault_seed_, from, to, kDelaySalt);
      return delay_.a + bounded(h, delay_.b - delay_.a + 1);
    }
    case DelaySpec::Kind::kGeometric: {
      const std::uint64_t h = hash_words(fault_seed_, from, to, kDelaySalt);
      if (delay_.p >= 1.0) return 1;
      // 1 + Geometric(p) via inversion; clamp u away from 0 so log is finite.
      const double u = std::max(u01(h), 0x1.0p-53);
      const double extra = std::floor(std::log(u) / std::log(1.0 - delay_.p));
      // Cap at 2^20 rounds: far beyond any plausible schedule, keeps the
      // far-delivery map bounded even for absurd p.
      return 1 + static_cast<std::uint64_t>(std::min(extra, 1048576.0));
    }
  }
  return 1;
}

bool FaultPlan::drop(NodeId from, NodeId to, std::uint64_t round) const {
  if (drop_prob_ <= 0.0) return false;
  const std::uint64_t edge = (static_cast<std::uint64_t>(from) << 32) | to;
  return u01(hash_words(fault_seed_, edge, round, kDropSalt)) < drop_prob_;
}

bool FaultPlan::crash_scheduled(NodeId v) const {
  if (!crash_.active()) return false;
  return u01(hash_words(fault_seed_, v, 0, kCrashSalt)) < crash_.fraction;
}

bool FaultPlan::crashed(NodeId v, std::uint64_t round) const {
  if (!crash_.active()) return false;
  if (round < crash_.start || round >= crash_.start + crash_.duration) return false;
  return crash_scheduled(v);
}

std::uint64_t FaultPlan::crashed_node_count(NodeId n) const {
  if (!crash_.active()) return 0;
  std::uint64_t count = 0;
  for (NodeId v = 0; v < n; ++v) count += crash_scheduled(v) ? 1 : 0;
  return count;
}

std::uint64_t FaultPlan::crash_rejoin_round() const {
  // The crash window is [start, start + duration); the first round past it
  // is where crashed nodes silently resume stepping and receiving.
  return crash_.start + crash_.duration;
}

}  // namespace dhc::congest
