#include "congest/network.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <type_traits>

#include "congest/fault_plan.h"
#include "congest/reliable.h"
#include "support/quantile_sketch.h"
#include "support/require.h"

namespace dhc::congest {

namespace {

// Environment defaults for the sharding knobs: DHC_SHARDS / DHC_SHARD_GRAIN
// apply wherever the caller leaves NetworkConfig at 0, which is how the CI
// shard matrix runs the entire test suite sharded without per-test plumbing.
std::uint32_t env_or(const char* name, std::uint32_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0 || parsed > 1u << 20) return fallback;
  return static_cast<std::uint32_t>(parsed);
}

// Byte-count environment knob (DHC_ARENA_BUDGET): full u64 range, since
// budgets are sized in hundreds of megabytes.  0/absent/garbage → fallback.
std::uint64_t env_bytes_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || parsed == 0) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

std::uint32_t default_shards() { return env_or("DHC_SHARDS", 1); }

std::uint64_t message_bits(const Message& msg, NodeId n) {
  // One word holds a node id (0..n-1), an index, or a size: ⌈log₂ n⌉ bits.
  const std::uint64_t id_bits =
      std::max<std::uint64_t>(1, std::bit_width(std::uint64_t{n > 0 ? n - 1 : 0}));
  return message_bits_for(msg.words, id_bits);
}

std::uint64_t Metrics::max_node_messages_sent() const {
  std::uint64_t best = 0;
  for (const auto x : node_messages_sent) best = std::max(best, x);
  for (const auto x : node_sent32) best = std::max<std::uint64_t>(best, x);
  if (node_messages_sent.empty() && node_sent32.empty()) {
    best = static_cast<std::uint64_t>(sent_summary.max);
  }
  return best;
}

std::int64_t Metrics::max_node_peak_memory() const {
  std::int64_t best = 0;
  for (const auto x : node_peak_memory_words) best = std::max(best, x);
  for (const auto x : node_mem_peak32) best = std::max<std::int64_t>(best, x);
  if (node_peak_memory_words.empty() && node_mem_peak32.empty()) {
    best = static_cast<std::int64_t>(peak_memory_summary.max);
  }
  return best;
}

std::uint64_t Metrics::max_node_compute() const {
  std::uint64_t best = 0;
  for (const auto x : node_compute_ops) best = std::max(best, x);
  for (const auto x : node_compute32) best = std::max<std::uint64_t>(best, x);
  if (node_compute_ops.empty() && node_compute32.empty()) {
    best = static_cast<std::uint64_t>(compute_summary.max);
  }
  return best;
}

namespace {

// Exact digest of a per-node vector: nearest-rank quantiles over a sorted
// copy (kFull mode; runs once at the end of a run).
template <class T>
NodeStatSummary exact_summary(const std::vector<T>& values) {
  NodeStatSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<T> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (const T v : sorted) sum += static_cast<double>(v);
  s.sum = sum;
  s.max = static_cast<double>(sorted.back());
  const auto at = [&](double q) {
    const auto rank = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(sorted.size() - 1),
                         q * static_cast<double>(sorted.size() - 1) + 0.5));
    return static_cast<double>(sorted[rank]);
  };
  s.p50 = at(0.50);
  s.p95 = at(0.95);
  s.p99 = at(0.99);
  return s;
}

// Sketch-backed digest (kStreaming mode): count/sum/max exact, quantiles
// within support::QuantileSketch::relative_error().
template <class T>
NodeStatSummary sketch_summary(const std::vector<T>& values) {
  NodeStatSummary s;
  s.count = values.size();
  if (values.empty()) return s;
  support::QuantileSketch sketch;
  for (const T v : values) {
    if constexpr (std::is_signed_v<T>) {
      sketch.add(v < 0 ? 0 : static_cast<std::uint64_t>(v));
    } else {
      sketch.add(v);
    }
  }
  s.sum = sketch.sum();
  s.max = static_cast<double>(sketch.max());
  s.p50 = sketch.quantile(0.50);
  s.p95 = sketch.quantile(0.95);
  s.p99 = sketch.quantile(0.99);
  return s;
}

}  // namespace

void Metrics::finalize_node_stats() {
  switch (node_stats_mode) {
    case NodeStatsMode::kFull:
      sent_summary = exact_summary(node_messages_sent);
      received_summary = exact_summary(node_messages_received);
      peak_memory_summary = exact_summary(node_peak_memory_words);
      compute_summary = exact_summary(node_compute_ops);
      return;
    case NodeStatsMode::kStreaming:
      sent_summary = sketch_summary(node_sent32);
      received_summary = NodeStatSummary{};  // intentionally not tracked
      peak_memory_summary = sketch_summary(node_mem_peak32);
      compute_summary = sketch_summary(node_compute32);
      return;
    case NodeStatsMode::kOff:
      sent_summary = received_summary = peak_memory_summary = compute_summary =
          NodeStatSummary{};
      return;
  }
}

std::uint64_t Metrics::phase_rounds(const std::string& label) const {
  // A label may mark several spans (DHC2 re-marks "merge" every level); each
  // span runs to the next mark, the last one to rounds + 1.  Sum them all.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < phase_marks.size(); ++i) {
    if (phase_marks[i].first != label) continue;
    const std::uint64_t begin = phase_marks[i].second;
    const std::uint64_t end =
        (i + 1 < phase_marks.size()) ? phase_marks[i + 1].second : rounds + 1;
    if (end > begin) total += end - begin;
  }
  return total;
}

std::string to_string(NodeStatsMode mode) {
  switch (mode) {
    case NodeStatsMode::kFull:
      return "full";
    case NodeStatsMode::kStreaming:
      return "streaming";
    case NodeStatsMode::kOff:
      return "off";
  }
  return "full";
}

NodeStatsMode parse_node_stats_mode(const std::string& s) {
  if (s == "full") return NodeStatsMode::kFull;
  if (s == "streaming") return NodeStatsMode::kStreaming;
  if (s == "off") return NodeStatsMode::kOff;
  throw std::invalid_argument("unknown node_stats mode '" + s +
                              "' (expected full|streaming|off)");
}

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

Network::Network(const graph::Graph& g, NetworkConfig cfg) : graph_(&g), cfg_(cfg) {
  DHC_REQUIRE(cfg_.edge_capacity >= 1, "edge_capacity must be at least 1");
  shards_ = cfg_.shards != 0 ? cfg_.shards : default_shards();
  shard_grain_ = cfg_.shard_grain != 0 ? cfg_.shard_grain : env_or("DHC_SHARD_GRAIN", 32);
  arena_budget_bytes_ =
      cfg_.arena_budget_bytes != 0 ? cfg_.arena_budget_bytes : env_bytes_or("DHC_ARENA_BUDGET", 0);
  node_stats_ = cfg_.node_stats;
  const std::size_t n = g.n();
  bits_per_word_ = std::max<std::uint64_t>(
      1, std::bit_width(std::uint64_t{n > 0 ? n - 1 : 0}));
  inbox_count_.assign(n, 0);
  inbox_off_.assign(n, 0);
  inbox_len_.assign(n, 0);
  inbox_cursor_.assign(n, 0);
  has_mail_.assign(n, 0);
  // Directed-edge load table, indexed by the graph's CSR layout: the edge id
  // of u→v is row_offsets[u] + neighbor_rank(u, v).
  const auto offsets = g.row_offsets();
  edge_offsets_.assign(offsets.begin(), offsets.end());
  const std::size_t total_directed = edge_offsets_.empty() ? 0 : edge_offsets_.back();
  edge_load_.assign(total_directed, 0);
  edge_load_round_.assign(total_directed, static_cast<std::uint64_t>(-1));

  wheel_.resize(kWheelSize);

  faults_ = cfg_.faults;
  if (faults_ != nullptr) {
    delay_wheel_.resize(kWheelSize);
    link_free_at_.assign(total_directed, 0);
    if (faults_->round_limit() != 0) {
      cfg_.max_rounds = std::min(cfg_.max_rounds, faults_->round_limit());
    }
    // The reliable overlay engages only when the plan can actually lose
    // messages; a lossless reliability=ack run takes the exact
    // reliability=none path (bitwise, by construction).
    if (faults_->reliability().active() &&
        (faults_->drops_active() || faults_->crashes_active())) {
      reliable_ = std::make_unique<ReliableOverlay>(g, faults_->rto());
    }
  }

  const support::Rng base(cfg_.seed);
  rngs_.reserve(n);
  for (NodeId v = 0; v < g.n(); ++v) rngs_.push_back(base.stream(v));
}

Network::~Network() = default;

void Network::throw_non_neighbor(NodeId from, NodeId to) const {
  throw CongestViolation("node " + std::to_string(from) + " sent to non-neighbor " +
                         std::to_string(to) + " in round " + std::to_string(round_));
}

void Network::throw_over_capacity(const std::vector<Message>& round_outbox, NodeId from,
                                  NodeId to, const Message& msg) const {
  // All of this round's prior sends on (from → to) live in the sender's own
  // outbox log — sequential or shard-local alike — so the diagnostic is
  // identical for every shard count.
  std::string prior_tags;
  for (const Message& queued : round_outbox) {
    if (queued.from == from && queued.to == to) {
      prior_tags += ' ';
      prior_tags += std::to_string(queued.tag);
    }
  }
  throw CongestViolation("edge (" + std::to_string(from) + "→" + std::to_string(to) +
                         ") over capacity in round " + std::to_string(round_) +
                         ": CONGEST allows " + std::to_string(cfg_.edge_capacity) +
                         " message(s) per edge per round (new tag " + std::to_string(msg.tag) +
                         ", queued tags:" + prior_tags + ")");
}

void Network::wake(NodeId v) {
  DHC_REQUIRE(v < graph_->n(), "wake: node out of range");
  arm_wakeup(v, 1);
}

void Network::wake_all() {
  auto& bucket = wheel_[(round_ + 1) & kWheelMask];
  for (NodeId v = 0; v < graph_->n(); ++v) bucket.push_back(v);
  wheel_armed_ += graph_->n();
}

void Network::mark_phase(const std::string& label) {
  metrics_.phase_marks.emplace_back(label, round_ + 1);
  if (cfg_.trace != nullptr) cfg_.trace->on_phase(label, round_ + 1);
}

void Network::set_barrier_cost(std::uint64_t rounds_per_barrier) {
  metrics_.barrier_cost_rounds = rounds_per_barrier;
}

std::uint64_t Network::next_armed_round() const {
  // Every wheel entry's round lies in (round_, round_ + kWheelSize), so one
  // sweep of the wheel starting after the current slot finds the nearest
  // armed bucket; far-future wake-ups only need the heap minimum.
  std::uint64_t best = static_cast<std::uint64_t>(-1);
  if (wheel_armed_ != 0) {
    for (std::uint64_t r = round_ + 1; r < round_ + kWheelSize; ++r) {
      if (!wheel_[r & kWheelMask].empty()) {
        best = r;
        break;
      }
    }
  }
  if (!far_wakeups_.empty()) best = std::min(best, far_wakeups_.top().first);
  DHC_CHECK(best != static_cast<std::uint64_t>(-1),
            "next_armed_round() called with no wake-up armed");
  return best;
}

void Network::enqueue_async(NodeId from, NodeId to, const Message& msg) {
  const std::size_t edge_id = edge_offsets_[from] + graph_->neighbor_rank(from, to);
  if (reliable_ == nullptr) {
    file_async(from, to, edge_id, msg);
    return;
  }
  // Reliable overlay: stamp a fresh seq + piggyback ack and buffer the copy
  // *before* the drop decision — a first send lost in transit must still be
  // retransmittable.
  Message stamped = msg;
  stamped.from = from;
  stamped.to = to;
  reliable_->stamp_and_buffer(edge_id, stamped, round_);
  file_async(from, to, edge_id, stamped);
}

void Network::file_async(NodeId from, NodeId to, std::size_t edge_id, const Message& msg) {
  // Each directed link serializes at one message per round: a message
  // departs at the later of "now" and the link's next free slot, so a
  // same-round burst (legal here — a node answering several delayed
  // arrivals at once) queues behind itself instead of tripping the
  // synchronous capacity check.  Departures per edge are strictly
  // increasing and the base delay is a pure function of the edge, so
  // arrivals stay in send order (FIFO) with or without queueing; a
  // sync-legal schedule never queues, keeping latency-1 runs bitwise
  // equal to the synchronous engine.
  std::uint64_t& free_at = link_free_at_[edge_id];
  const std::uint64_t depart = std::max(round_, free_at);
  free_at = depart + 1;
  if (faults_->drop(from, to, round_)) {  // lost in transit; the slot is spent
    metrics_.dropped_messages += 1;
    return;
  }
  const std::uint64_t latency = (depart - round_) + faults_->delay(from, to);
  if (latency > 1) metrics_.delayed_messages += 1;
  const std::uint64_t target = round_ + latency;
  auto& bucket =
      latency < kWheelSize ? delay_wheel_[target & kWheelMask] : far_messages_[target];
  if (latency < kWheelSize) {
    ++delay_armed_;
  } else {
    ++far_msg_armed_;
  }
  Message& slot = bucket.emplace_back(msg);
  slot.from = from;
  slot.to = to;
}

void Network::service_transport() {
  // Retransmits and standalone acks the overlay owes this round, in
  // deterministic timer order, routed through the same link-FIFO/drop/delay
  // machinery as first sends (a retransmit can be dropped again — each round
  // is an independent drop hash, so it eventually gets through).  Transport
  // traffic counts in messages/bits (acks at header-only cost) but not in
  // the per-node send stats, which stay protocol-only.
  transport_batch_.clear();
  reliable_->collect_due(
      round_, [&](NodeId v) { return faults_->crashed(v, round_); }, transport_batch_);
  for (const Message& m : transport_batch_) {
    const std::size_t edge_id = edge_offsets_[m.from] + graph_->neighbor_rank(m.from, m.to);
    if (m.rel_seq != 0) {
      metrics_.retransmits += 1;
      metrics_.bits += message_bits_for(m.words, bits_per_word_);
    } else {
      metrics_.acks_sent += 1;
      metrics_.bits += message_bits_for(0, bits_per_word_);
    }
    metrics_.messages += 1;
    file_async(m.from, m.to, edge_id, m);
  }
}

std::uint64_t Network::next_delivery_round() const {
  std::uint64_t best = static_cast<std::uint64_t>(-1);
  if (delay_armed_ != 0) {
    for (std::uint64_t r = round_ + 1; r < round_ + kWheelSize; ++r) {
      if (!delay_wheel_[r & kWheelMask].empty()) {
        best = r;
        break;
      }
    }
  }
  if (!far_messages_.empty()) best = std::min(best, far_messages_.begin()->first);
  return best;
}

void Network::mature_async_messages() {
  // Overlay timers first: the retransmits/acks they file are sends *at* this
  // round (latency >= 1), so they never interact with this round's matured
  // arrivals below — the split is purely for a fixed service order.
  if (reliable_ != nullptr) service_transport();

  // Far entries mature before the wheel bucket: a far message due this round
  // was filed with latency >= kWheelSize, i.e. sent at least kWheelSize
  // rounds ago, while every wheel message due now was sent strictly later —
  // so far-then-wheel, each vector in append order, IS the global send
  // order, and per-node arrival order stays send-order just like the
  // synchronous scatter.
  const auto deliver_one = [&](const Message& m) {
    if (node_stats_ == NodeStatsMode::kFull) metrics_.node_messages_received[m.to] += 1;
    if (inbox_count_[m.to]++ == 0) next_active_.push_back(m.to);
    outbox_.push_back(m);
  };
  const auto deliver = [&](std::vector<Message>& msgs) {
    for (const Message& m : msgs) {
      if (faults_->crashed(m.to, round_)) {
        // Crashed receivers lose even overlay traffic — no ack forms, so the
        // sender's timer keeps the payload alive until after the rejoin.
        metrics_.crash_dropped_messages += 1;
        continue;
      }
      if (reliable_ == nullptr) {
        deliver_one(m);
        continue;
      }
      // Overlay arrival: process the piggybacked ack, then deliver / buffer /
      // suppress the payload.  Standalone acks and buffered/duplicate
      // payloads never reach the protocol (no activation, no received
      // count); an in-order payload releases any buffered successors with
      // it, in seq order.
      const std::size_t edge = edge_offsets_[m.from] + graph_->neighbor_rank(m.from, m.to);
      switch (reliable_->on_arrival(edge, m, round_)) {
        case ReliableOverlay::Arrival::kAck:
          break;
        case ReliableOverlay::Arrival::kBuffer:
          break;
        case ReliableOverlay::Arrival::kDuplicate:
          metrics_.dup_suppressed += 1;
          break;
        case ReliableOverlay::Arrival::kDeliver:
          deliver_one(m);
          drain_batch_.clear();
          reliable_->drain_in_order(edge, drain_batch_);
          for (const Message& d : drain_batch_) deliver_one(d);
          break;
      }
    }
  };
  const auto due = far_messages_.begin();
  if (due != far_messages_.end() && due->first <= round_) {
    DHC_CHECK(due->first == round_, "far async delivery overshot its round");
    deliver(due->second);
    far_msg_armed_ -= due->second.size();
    far_messages_.erase(due);
  }
  auto& bucket = delay_wheel_[round_ & kWheelMask];
  delay_armed_ -= bucket.size();
  deliver(bucket);
  bucket.clear();
}

void Network::filter_crashed_active() {
  // Serial pass over the freshly built active set: crashed nodes neither
  // step nor keep their wake-up activation (the wake-up was consumed from
  // the wheel; recovery is a silent rejoin, not a re-arm).  Mail-activated
  // nodes are never crashed here — their messages were already dropped at
  // maturation — so clearing inbox state is belt-and-braces only.
  std::size_t w = 0;
  for (const NodeId v : active_) {
    if (faults_->crashed(v, round_)) {
      has_mail_[v] = 0;
      inbox_len_[v] = 0;
      metrics_.crashed_steps += 1;
      continue;
    }
    active_[w++] = v;
  }
  active_.resize(w);
}

void Network::deliver_and_build_active_set() {
  // Async regime: move every message whose latency elapses this round into
  // the outbox first; the synchronous mail walk below then treats them
  // exactly like last round's sends.
  if (faults_ != nullptr) mature_async_messages();

  // Mail first: walk the receivers in first-touch order, carve each node's
  // contiguous slice out of the inbox arena, and reset its pending count.
  active_.clear();
  std::uint32_t cum = 0;
  for (const NodeId v : next_active_) {
    has_mail_[v] = 1;
    active_.push_back(v);
    inbox_off_[v] = cum;
    inbox_cursor_[v] = cum;
    inbox_len_[v] = inbox_count_[v];
    cum += inbox_count_[v];
    inbox_count_[v] = 0;
  }
  next_active_.clear();

  // Wake-ups for this round: the wheel bucket plus any matured far entries.
  auto& bucket = wheel_[round_ & kWheelMask];
  wheel_armed_ -= bucket.size();
  for (const NodeId v : bucket) {
    if (has_mail_[v] == 0) {
      has_mail_[v] = 1;
      active_.push_back(v);
    }
  }
  bucket.clear();
  while (!far_wakeups_.empty() && far_wakeups_.top().first == round_) {
    const NodeId v = far_wakeups_.top().second;
    far_wakeups_.pop();
    if (has_mail_[v] == 0) {
      has_mail_[v] = 1;
      active_.push_back(v);
    }
  }
  // Steps must run in ascending node order (protocol RNG draws, send order,
  // and the contiguity of shard slices all depend on it).  For dense rounds
  // — flood phases activate nearly every node — rebuilding the set from the
  // has_mail_ bitmap is linear and branch-predictable; the ascending scan is
  // sorted by construction, so no sort runs on this path (asserted in debug
  // builds).  Sparse rounds sort the activation-ordered list directly.
  if (active_.size() >= graph_->n() / 8) {
    active_.clear();
    const NodeId n = graph_->n();
    for (NodeId v = 0; v < n; ++v) {
      if (has_mail_[v] != 0) active_.push_back(v);
    }
#ifndef NDEBUG
    DHC_CHECK(std::is_sorted(active_.begin(), active_.end()),
              "dense active-set rebuild must be id-sorted by construction");
#endif
  } else {
    std::sort(active_.begin(), active_.end());
  }

  if (faults_ != nullptr && faults_->crashes_active()) filter_crashed_active();

  // Stable scatter: outbox send order becomes per-node arrival order.
  inbox_live_ = outbox_.size();
  if (inbox_arena_.size() < outbox_.size()) {
    // Budgeted runs reserve exactly what this round needs; unbudgeted runs
    // keep vector growth (amortized doubling) for raw speed.
    if (arena_budget_bytes_ != 0) inbox_arena_.reserve(outbox_.size());
    inbox_arena_.resize(outbox_.size());
  }
  for (const Message& m : outbox_) inbox_arena_[inbox_cursor_[m.to]++] = m;
  outbox_.clear();
}

void Network::sample_and_trim_arenas() {
  // Logical in-flight messages at the round epilogue: sends queued for next
  // round (outbox log), this round's delivered inboxes, and everything
  // parked in the async delay structures.  Logical counts only — vector
  // capacities differ across shard counts, these numbers never do.
  const std::uint64_t in_flight =
      static_cast<std::uint64_t>(outbox_.size()) + inbox_live_ + delay_armed_ + far_msg_armed_;
  const std::uint64_t bytes = in_flight * sizeof(Message);
  if (bytes > metrics_.arena_bytes_peak) metrics_.arena_bytes_peak = bytes;
  if (arena_budget_bytes_ == 0) return;

  // Budget enforcement is a pure capacity policy: reserved-but-idle slots
  // are released when they exceed the budget, contents are never touched.
  const auto bytes_of = [](const std::vector<Message>& v) {
    return v.capacity() * sizeof(Message);
  };
  std::size_t reserved = bytes_of(outbox_) + bytes_of(inbox_arena_);
  for (const auto& b : delay_wheel_) reserved += bytes_of(b);
  for (const ShardState& sh : shard_state_) reserved += bytes_of(sh.outbox);
  if (reserved <= arena_budget_bytes_) return;

  // The inbox arena was fully consumed by this round's steps; next round
  // rebuilds it from the outbox, so its floor is the current outbox size.
  inbox_arena_.resize(outbox_.size());
  inbox_arena_.shrink_to_fit();
  outbox_.shrink_to_fit();  // keeps contents, drops slack
  for (auto& b : delay_wheel_) {
    if (b.empty() && b.capacity() != 0) std::vector<Message>().swap(b);
  }
  for (ShardState& sh : shard_state_) {
    if (sh.outbox.empty()) sh.outbox.shrink_to_fit();
  }
}

void Network::step_active_set(Protocol& protocol) {
  // The shard engine pays a per-round dispatch (pool wake + serial merge);
  // rounds too small to amortize it step sequentially.  The gate depends
  // only on deterministic state — active-set size, shard knobs, and the
  // protocol's phase — so the choice of path is itself deterministic, and
  // both paths produce bitwise-identical results by construction.
  const bool shard_this_round = shards_ > 1 &&
                                active_.size() >= static_cast<std::size_t>(shards_) * shard_grain_ &&
                                protocol.parallel_step_safe();
  last_round_sharded_ = shard_this_round;
  if (!shard_this_round) {
    for (const NodeId v : active_) {
      Context ctx(*this, v, nullptr);
      protocol.step(ctx);
    }
    return;
  }
  step_sharded(protocol);
}

void Network::step_sharded(Protocol& protocol) {
  if (pool_ == nullptr) {
    shard_state_.resize(shards_);
    // The shard *partition* is fixed by shards_; the pool merely executes
    // it, so worker count is capped by the hardware without affecting
    // results (a 1-lane pool steps the shards back to back, in order).
    pool_ = std::make_unique<support::WorkerPool>(
        std::min<unsigned>(shards_, support::WorkerPool::hardware_lanes()));
  }
  const std::size_t count = active_.size();
  const std::size_t s = shards_;
  // Per-shard step timing for the flight recorder; the clocks run only when
  // a sink is attached so untraced runs keep the exact pre-trace hot path.
  const bool profile = cfg_.trace != nullptr;
  if (profile && trace_shard_wall_ns_.size() != s) {
    trace_shard_wall_ns_.assign(s, 0);
    trace_shard_active_.assign(s, 0);
  }
  pool_->run(s, [&](std::size_t shard_index) {
    ShardState& sh = shard_state_[shard_index];
    const std::size_t begin = count * shard_index / s;
    const std::size_t end = count * (shard_index + 1) / s;
    const auto t0 = profile ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point{};
    for (std::size_t i = begin; i < end; ++i) {
      Context ctx(*this, active_[i], &sh);
      protocol.step(ctx);
    }
    if (profile) {
      trace_shard_wall_ns_[shard_index] = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      trace_shard_active_[shard_index] = static_cast<std::uint32_t>(end - begin);
    }
  });
  merge_shard_logs();
}

void Network::merge_shard_logs() {
  // Serial replay of the receiver-side bookkeeping, in shard order.  Shards
  // are contiguous slices of the id-sorted active set and each shard's log
  // is in its own send order, so this loop walks the messages in exactly
  // the global sequential send order: next_active_ first-touch order, inbox
  // scatter order, wheel bucket contents, and the observer event stream all
  // come out identical to the sequential stepper's.
  for (ShardState& sh : shard_state_) {
    metrics_.messages += sh.messages;
    metrics_.bits += sh.bits;
    sh.messages = 0;
    sh.bits = 0;
    if (cfg_.observer != nullptr && !sh.events.empty()) {
      cfg_.observer->on_events({sh.events.data(), sh.events.size()});
      sh.events.clear();
    }
    if (faults_ != nullptr) {
      // Async regime: replay each send through the fault plan in the global
      // send order.  Every drop/delay decision is a pure hash of the edge
      // and round, so this serial replay makes exactly the decisions the
      // sequential path makes — shard invariance needs no extra argument.
      for (const Message& m : sh.outbox) enqueue_async(m.from, m.to, m);
    } else if (node_stats_ == NodeStatsMode::kFull) {
      for (const Message& m : sh.outbox) {
        metrics_.node_messages_received[m.to] += 1;
        if (inbox_count_[m.to]++ == 0) next_active_.push_back(m.to);
      }
      outbox_.insert(outbox_.end(), sh.outbox.begin(), sh.outbox.end());
    } else {
      for (const Message& m : sh.outbox) {
        if (inbox_count_[m.to]++ == 0) next_active_.push_back(m.to);
      }
      outbox_.insert(outbox_.end(), sh.outbox.begin(), sh.outbox.end());
    }
    sh.outbox.clear();
    for (const auto& [delay, v] : sh.wakeups) arm_wakeup(v, delay);
    sh.wakeups.clear();
  }
}

void Network::emit_round_trace(std::uint64_t sent, std::uint64_t bits, std::uint64_t wakeups,
                               std::uint64_t wall_ns) {
  RoundTrace rt;
  rt.round = round_;
  rt.active = active_.size();
  rt.sent = sent;
  rt.bits = bits;
  rt.wakeups = wakeups;
  rt.wall_ns = wall_ns;
  rt.sharded = last_round_sharded_;
  if (last_round_sharded_ && trace_shard_wall_ns_.size() == shards_) {
    rt.shard_wall_ns = {trace_shard_wall_ns_.data(), trace_shard_wall_ns_.size()};
    rt.shard_active = {trace_shard_active_.data(), trace_shard_active_.size()};
  }
  cfg_.trace->on_round(rt);
}

Metrics Network::run(Protocol& protocol) {
  const std::size_t n = graph_->n();
  metrics_ = Metrics{};
  metrics_.node_stats_mode = node_stats_;
  switch (node_stats_) {
    case NodeStatsMode::kFull:
      metrics_.node_messages_sent.assign(n, 0);
      metrics_.node_messages_received.assign(n, 0);
      metrics_.node_memory_words.assign(n, 0);
      metrics_.node_peak_memory_words.assign(n, 0);
      metrics_.node_compute_ops.assign(n, 0);
      break;
    case NodeStatsMode::kStreaming:
      metrics_.node_sent32.assign(n, 0);
      metrics_.node_mem_cur32.assign(n, 0);
      metrics_.node_mem_peak32.assign(n, 0);
      metrics_.node_compute32.assign(n, 0);
      break;
    case NodeStatsMode::kOff:
      break;
  }
  round_ = 0;
  protocol_ = &protocol;
  const bool tracing = cfg_.trace != nullptr;

  for (NodeId v = 0; v < graph_->n(); ++v) {
    Context ctx(*this, v, nullptr);
    protocol.begin(ctx);
  }

  bool rejoins_counted = false;
  while (true) {
    const bool delivery_pending = faults_ != nullptr && any_delivery_pending();
    const bool transport_pending = reliable_ != nullptr && reliable_->any_pending();
    if (outbox_.empty() && !any_wakeup_armed() && !delivery_pending && !transport_pending) {
      if (!protocol.on_quiescence(*this)) break;
      metrics_.barrier_count += 1;
      if (tracing) cfg_.trace->on_barrier(round_, metrics_.barrier_cost_rounds);
      DHC_CHECK(any_wakeup_armed(),
                "protocol continued past quiescence without waking any node (would spin forever)");
      continue;
    }

    // Advance to the next round with activity (idle gaps still count).  The
    // async regime jumps to the earliest event of either kind — a pending
    // delivery or an armed wake-up — so no delay-wheel bucket is ever
    // skipped past; the synchronous regime keeps the classic rule.
    if (faults_ != nullptr) {
      std::uint64_t next = next_delivery_round();
      if (reliable_ != nullptr) next = std::min(next, reliable_->next_event_round(round_));
      if (any_wakeup_armed()) next = std::min(next, next_armed_round());
      DHC_CHECK(next != static_cast<std::uint64_t>(-1),
                "async advance with neither deliveries, transport timers, nor wake-ups pending");
      round_ = next;
    } else {
      round_ = outbox_.empty() ? next_armed_round() : round_ + 1;
    }
    if (round_ > cfg_.max_rounds) {
      metrics_.hit_round_limit = true;
      // Stalled vs live: a run still moving traffic (sends queued, matured or
      // pending deliveries, armed retransmit/ack timers) hit the limit mid
      // flight — e.g. turau's delay livelock; one with only wake-up polling
      // left is the drop-stall signature (nothing will ever arrive again).
      metrics_.round_limit_live = !outbox_.empty() ||
                                  (faults_ != nullptr && any_delivery_pending()) ||
                                  (reliable_ != nullptr && reliable_->any_pending());
      break;
    }
    if (faults_ != nullptr && !rejoins_counted && faults_->crashes_active() &&
        round_ >= faults_->crash_rejoin_round()) {
      // First executed round past the crash window: the crashed nodes are
      // back, silently, with whatever state they crashed with (DESIGN.md
      // §8).  Count them once and mark the round so the masked failure mode
      // is visible in artifacts and traces.
      rejoins_counted = true;
      metrics_.crashed_rejoins = faults_->crashed_node_count(graph_->n());
      if (tracing && metrics_.crashed_rejoins != 0) {
        cfg_.trace->on_rejoin(round_, metrics_.crashed_rejoins);
      }
    }

    if (tracing) {
      // Counter snapshots bracket the round so the record carries this
      // round's deltas; the wall clock runs only on this traced path.
      const std::uint64_t msgs0 = metrics_.messages;
      const std::uint64_t bits0 = metrics_.bits;
      const std::uint64_t delayed0 = metrics_.delayed_messages;
      const std::uint64_t dropped0 = metrics_.dropped_messages;
      const std::uint64_t crash_dropped0 = metrics_.crash_dropped_messages;
      const std::uint64_t crashed0 = metrics_.crashed_steps;
      const std::uint64_t retrans0 = metrics_.retransmits;
      const std::uint64_t dup0 = metrics_.dup_suppressed;
      const std::uint64_t acks0 = metrics_.acks_sent;
      const auto t0 = std::chrono::steady_clock::now();
      deliver_and_build_active_set();
      const std::uint64_t wake0 = wheel_armed_ + far_wakeups_.size();
      step_active_set(protocol);
      const auto wall_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
      const std::uint64_t wake1 = wheel_armed_ + far_wakeups_.size();
      emit_round_trace(metrics_.messages - msgs0, metrics_.bits - bits0,
                       wake1 > wake0 ? wake1 - wake0 : 0, wall_ns);
      if (faults_ != nullptr) {
        FaultTrace ft;
        ft.round = round_;
        ft.delayed = metrics_.delayed_messages - delayed0;
        ft.dropped = metrics_.dropped_messages - dropped0;
        ft.crash_dropped = metrics_.crash_dropped_messages - crash_dropped0;
        ft.crashed_steps = metrics_.crashed_steps - crashed0;
        if (ft.delayed + ft.dropped + ft.crash_dropped + ft.crashed_steps > 0) {
          cfg_.trace->on_faults(ft);
        }
        if (reliable_ != nullptr) {
          RetransTrace rt2;
          rt2.round = round_;
          rt2.retransmits = metrics_.retransmits - retrans0;
          rt2.dup_suppressed = metrics_.dup_suppressed - dup0;
          rt2.acks_sent = metrics_.acks_sent - acks0;
          if (rt2.retransmits + rt2.dup_suppressed + rt2.acks_sent > 0) {
            cfg_.trace->on_retrans(rt2);
          }
        }
      }
    } else {
      deliver_and_build_active_set();
      step_active_set(protocol);
    }

    sample_and_trim_arenas();

    for (const NodeId v : active_) {
      inbox_len_[v] = 0;
      has_mail_[v] = 0;
    }
  }

  metrics_.rounds = round_;
  metrics_.finalize_node_stats();
  protocol_ = nullptr;
  return metrics_;
}

}  // namespace dhc::congest
