#include "congest/network.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/require.h"

namespace dhc::congest {

std::uint64_t message_bits(const Message& msg, NodeId n) {
  // One word holds a node id (0..n-1), an index, or a size: ⌈log₂ n⌉ bits.
  const std::uint64_t id_bits =
      std::max<std::uint64_t>(1, std::bit_width(std::uint64_t{n > 0 ? n - 1 : 0}));
  return msg.words * id_bits + 8;  // payload fields + tag byte
}

std::uint64_t Metrics::max_node_messages_sent() const {
  std::uint64_t best = 0;
  for (const auto x : node_messages_sent) best = std::max(best, x);
  return best;
}

std::int64_t Metrics::max_node_peak_memory() const {
  std::int64_t best = 0;
  for (const auto x : node_peak_memory_words) best = std::max(best, x);
  return best;
}

std::uint64_t Metrics::max_node_compute() const {
  std::uint64_t best = 0;
  for (const auto x : node_compute_ops) best = std::max(best, x);
  return best;
}

std::uint64_t Metrics::phase_rounds(const std::string& label) const {
  for (std::size_t i = 0; i < phase_marks.size(); ++i) {
    if (phase_marks[i].first == label) {
      const std::uint64_t begin = phase_marks[i].second;
      const std::uint64_t end = (i + 1 < phase_marks.size()) ? phase_marks[i + 1].second : rounds + 1;
      return end > begin ? end - begin : 0;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

std::uint64_t Context::round() const { return net_.round_; }

std::span<const NodeId> Context::neighbors() const { return net_.graph_->neighbors(self_); }

std::span<const Message> Context::inbox() const { return net_.inboxes_[self_]; }

void Context::send(NodeId to, Message msg) {
  msg.from = self_;
  msg.to = to;
  net_.send_from(self_, to, msg);
}

void Context::wake_in(std::uint64_t delay) {
  DHC_REQUIRE(delay >= 1, "wake_in delay must be at least 1 round");
  net_.wakeups_[net_.round_ + delay].push_back(self_);
}

support::Rng& Context::rng() { return net_.node_rng(self_); }

void Context::charge_memory(std::int64_t words) {
  auto& mem = net_.metrics_.node_memory_words[self_];
  mem += words;
  auto& peak = net_.metrics_.node_peak_memory_words[self_];
  peak = std::max(peak, mem);
}

void Context::charge_compute(std::uint64_t ops) { net_.metrics_.node_compute_ops[self_] += ops; }

// ---------------------------------------------------------------------------
// Network
// ---------------------------------------------------------------------------

Network::Network(const graph::Graph& g, NetworkConfig cfg) : graph_(&g), cfg_(cfg) {
  DHC_REQUIRE(cfg_.edge_capacity >= 1, "edge_capacity must be at least 1");
  const std::size_t n = g.n();
  inboxes_.resize(n);
  next_inboxes_.resize(n);
  has_mail_.assign(n, 0);
  // Directed-edge load table: one slot per (node, neighbor-index) pair.
  std::size_t total_directed = 0;
  for (NodeId v = 0; v < g.n(); ++v) total_directed += g.degree(v);
  edge_load_.assign(total_directed, 0);
  edge_load_round_.assign(total_directed, static_cast<std::uint64_t>(-1));
  edge_offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < g.n(); ++v) edge_offsets_[v + 1] = edge_offsets_[v] + g.degree(v);

  const support::Rng base(cfg_.seed);
  rngs_.reserve(n);
  for (NodeId v = 0; v < g.n(); ++v) rngs_.push_back(base.stream(v));
}

support::Rng& Network::node_rng(NodeId v) { return rngs_[v]; }

void Network::send_from(NodeId from, NodeId to, Message msg) {
  const auto nb = graph_->neighbors(from);
  const auto it = std::lower_bound(nb.begin(), nb.end(), to);
  if (it == nb.end() || *it != to) {
    throw CongestViolation("node " + std::to_string(from) + " sent to non-neighbor " +
                           std::to_string(to) + " in round " + std::to_string(round_));
  }
  const std::size_t edge_id =
      edge_offsets_[from] + static_cast<std::size_t>(std::distance(nb.begin(), it));
  if (edge_load_round_[edge_id] != round_) {
    edge_load_round_[edge_id] = round_;
    edge_load_[edge_id] = 0;
  }
  if (++edge_load_[edge_id] > cfg_.edge_capacity) {
    std::string prior_tags;
    for (const Message& queued : next_inboxes_[to]) {
      if (queued.from == from) prior_tags += " " + std::to_string(queued.tag);
    }
    throw CongestViolation("edge (" + std::to_string(from) + "→" + std::to_string(to) +
                           ") over capacity in round " + std::to_string(round_) +
                           ": CONGEST allows " + std::to_string(cfg_.edge_capacity) +
                           " message(s) per edge per round (new tag " + std::to_string(msg.tag) +
                           ", queued tags:" + prior_tags + ")");
  }
  DHC_CHECK(msg.words <= kMaxWords, "message exceeds payload word limit");

  metrics_.messages += 1;
  metrics_.bits += message_bits(msg, graph_->n());
  metrics_.node_messages_sent[from] += 1;
  metrics_.node_messages_received[to] += 1;
  if (cfg_.observer != nullptr) cfg_.observer->on_send(from, to, round_);

  auto& box = next_inboxes_[to];
  box.push_back(msg);
  ++pending_messages_;
  if (box.size() == 1) next_active_.push_back(to);
}

void Network::wake(NodeId v) {
  DHC_REQUIRE(v < graph_->n(), "wake: node out of range");
  wakeups_[round_ + 1].push_back(v);
}

void Network::wake_all() {
  auto& bucket = wakeups_[round_ + 1];
  for (NodeId v = 0; v < graph_->n(); ++v) bucket.push_back(v);
}

void Network::mark_phase(const std::string& label) {
  metrics_.phase_marks.emplace_back(label, round_ + 1);
}

void Network::set_barrier_cost(std::uint64_t rounds_per_barrier) {
  metrics_.barrier_cost_rounds = rounds_per_barrier;
}

Metrics Network::run(Protocol& protocol) {
  const std::size_t n = graph_->n();
  metrics_ = Metrics{};
  metrics_.node_messages_sent.assign(n, 0);
  metrics_.node_messages_received.assign(n, 0);
  metrics_.node_memory_words.assign(n, 0);
  metrics_.node_peak_memory_words.assign(n, 0);
  metrics_.node_compute_ops.assign(n, 0);
  round_ = 0;
  protocol_ = &protocol;

  for (NodeId v = 0; v < graph_->n(); ++v) {
    Context ctx(*this, v);
    protocol.begin(ctx);
  }

  while (true) {
    if (pending_messages_ == 0 && wakeups_.empty()) {
      if (!protocol.on_quiescence(*this)) break;
      metrics_.barrier_count += 1;
      DHC_CHECK(!wakeups_.empty(),
                "protocol continued past quiescence without waking any node (would spin forever)");
      continue;
    }

    // Advance to the next round with activity (idle gaps still count).
    std::uint64_t next_round = round_ + 1;
    if (pending_messages_ == 0) next_round = wakeups_.begin()->first;
    round_ = next_round;
    if (round_ > cfg_.max_rounds) {
      metrics_.hit_round_limit = true;
      break;
    }

    // Build this round's active set: nodes with mail + woken nodes.
    active_.clear();
    for (const NodeId v : next_active_) {
      if (has_mail_[v] == 0) {
        has_mail_[v] = 1;
        active_.push_back(v);
      }
    }
    next_active_.clear();
    if (const auto it = wakeups_.find(round_); it != wakeups_.end()) {
      for (const NodeId v : it->second) {
        if (has_mail_[v] == 0) {
          has_mail_[v] = 1;
          active_.push_back(v);
        }
      }
      wakeups_.erase(it);
    }
    std::sort(active_.begin(), active_.end());

    // Deliver mail, run steps, then clear consumed inboxes.
    for (const NodeId v : active_) {
      inboxes_[v].swap(next_inboxes_[v]);
      pending_messages_ -= inboxes_[v].size();
    }
    for (const NodeId v : active_) {
      Context ctx(*this, v);
      protocol.step(ctx);
    }
    for (const NodeId v : active_) {
      inboxes_[v].clear();
      has_mail_[v] = 0;
    }
  }

  metrics_.rounds = round_;
  protocol_ = nullptr;
  return metrics_;
}

}  // namespace dhc::congest
