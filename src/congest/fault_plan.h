// Seed-deterministic fault injection for the async execution model.
//
// A FaultPlan answers three questions the Network asks while running a
// protocol asynchronously (DESIGN.md §8):
//
//   delay(from, to)        how many rounds does a message on directed edge
//                          (from, to) take to arrive?  (>= 1; 1 == the
//                          synchronous schedule)
//   drop(from, to, round)  is the message sent on (from, to) this round
//                          lost in transit?
//   crashed(v, round)      is node v crashed (neither stepping nor
//                          receiving) at this round?
//
// Every answer is a *pure hash* of (fault_seed, arguments) — no mutable RNG
// state, no draw ordering.  That is the determinism argument for the async
// backend: because a decision depends only on the identity of the edge/node
// and the round, it is independent of the order in which sends are committed,
// so the sharded engine's serial merge replays the exact decisions the
// sequential path makes and shard-invariance holds for free.
//
// The hash is the splitmix64 word-absorption chain used for trial seed
// derivation (src/runner/scenario.cc), with a distinct salt per question.
// Probabilistic decisions compare a uniform [0,1) hash against the
// configured probability, so fault streams at different intensities are
// *nested*: a message dropped at drop_prob 0.05 is also dropped at 0.10
// under the same fault seed (common-random-numbers pairing across the
// drop_prob axis).
#pragma once

#include <cstdint>
#include <string>

#include "congest/message.h"
#include "congest/reliable.h"

namespace dhc::congest {

/// Per-directed-edge delivery latency distribution.  Spec strings use ':'
/// separators so comma-separated scenario axis lists stay parseable:
///   "none"          every message takes 1 round (synchronous schedule)
///   "fixed:K"       every message takes K rounds (K >= 1)
///   "uniform:A:B"   latency uniform over {A, ..., B} (1 <= A <= B)
///   "geometric:P"   latency 1 + Geometric(P) (0 < P <= 1)
struct DelaySpec {
  enum class Kind : std::uint8_t { kNone, kFixed, kUniform, kGeometric };

  Kind kind = Kind::kNone;
  std::uint64_t a = 1;  ///< fixed: the latency; uniform: lower bound
  std::uint64_t b = 1;  ///< uniform: upper bound (inclusive)
  double p = 1.0;       ///< geometric: success probability

  /// Parses a spec string; throws std::invalid_argument on malformed input.
  static DelaySpec parse(const std::string& spec);
  std::string to_string() const;

  bool active() const { return kind != Kind::kNone; }
};

/// Node crash schedule.  Spec strings:
///   "none"                    no crashes
///   "random:FRAC:START:DUR"   each node crashes with probability FRAC
///                             (hash-chosen per node), from round START for
///                             DUR rounds, then silently rejoins
struct CrashSpec {
  enum class Kind : std::uint8_t { kNone, kRandom };

  Kind kind = Kind::kNone;
  double fraction = 0.0;
  std::uint64_t start = 0;
  std::uint64_t duration = 0;

  /// Parses a spec string; throws std::invalid_argument on malformed input.
  static CrashSpec parse(const std::string& spec);
  std::string to_string() const;

  bool active() const { return kind != Kind::kNone && fraction > 0.0 && duration > 0; }
};

class FaultPlan {
 public:
  FaultPlan(DelaySpec delay, double drop_prob, CrashSpec crash, std::uint64_t fault_seed,
            std::uint64_t round_limit = 0);

  /// Delivery latency in rounds for a message on directed edge (from, to).
  /// Always >= 1; latency is a property of the edge, not the round, so a
  /// FIFO link never reorders its own messages.
  std::uint64_t delay(NodeId from, NodeId to) const;

  /// True when the message sent on (from, to) at `round` is lost.
  bool drop(NodeId from, NodeId to, std::uint64_t round) const;

  /// True when node v is inside its crash window at `round`.
  bool crashed(NodeId v, std::uint64_t round) const;

  /// True when v crashes at some point under this plan (round-independent).
  bool crash_scheduled(NodeId v) const;

  /// Number of nodes in [0, n) with a scheduled crash window.
  std::uint64_t crashed_node_count(NodeId n) const;

  /// First round at which crashed nodes are back ("rejoined", with whatever
  /// stale state they crashed with).  Meaningful only when crashes_active().
  std::uint64_t crash_rejoin_round() const;

  bool delays_active() const { return delay_.active(); }
  bool drops_active() const { return drop_prob_ > 0.0; }
  bool crashes_active() const { return crash_.active(); }

  const DelaySpec& delay_spec() const { return delay_; }
  double drop_prob() const { return drop_prob_; }
  const CrashSpec& crash_spec() const { return crash_; }
  std::uint64_t fault_seed() const { return fault_seed_; }

  /// Optional cap on simulated rounds (0 = simulator default).  Fault plans
  /// can make protocols diverge (drops starve a phase, crashes partition the
  /// graph); the cap turns a would-be hang into `hit_round_limit` reporting.
  std::uint64_t round_limit() const { return round_limit_; }

  /// Reliable-delivery overlay riding on this plan (congest/reliable.h).
  /// Carried here — rather than through every solver's config — because the
  /// plan already travels the whole algorithm-adapter path into the Network.
  /// The overlay consumes none of the hash streams above, so setting it
  /// never perturbs the drop/delay/crash decisions (paired runs stay
  /// paired).
  void set_reliability(ReliabilitySpec reliability, RtoSpec rto) {
    reliability_ = reliability;
    rto_ = rto;
  }
  const ReliabilitySpec& reliability() const { return reliability_; }
  const RtoSpec& rto() const { return rto_; }

 private:
  DelaySpec delay_;
  double drop_prob_ = 0.0;
  CrashSpec crash_;
  std::uint64_t fault_seed_ = 0;
  std::uint64_t round_limit_ = 0;
  ReliabilitySpec reliability_;
  RtoSpec rto_;
};

}  // namespace dhc::congest
