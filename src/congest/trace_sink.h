// Flight-recorder tap on a CONGEST execution.
//
// TraceSink is to per-round observability what MessageObserver is to
// per-message pricing: an abstract interface the simulator (and the
// k-machine pricing observer) feed, so congest/ never depends on how traces
// are stored or serialized.  The concrete recorder — NDJSON schema, phase
// spans, Chrome export — lives in src/trace/.
//
// Determinism contract: every field the simulator reports here is a pure
// function of (graph, seed, protocol) EXCEPT the wall-clock fields
// (RoundTrace::wall_ns, shard_wall_ns), and every counter is additionally
// shard-invariant (the sharded round engine reproduces the sequential
// execution bitwise; the only shard-dependent fields are the explicitly
// shard-profiling ones: `sharded`, `shard_active`, `shard_wall_ns`).
// Writers isolate those two field classes so traces can be compared bitwise
// across repeated runs and across shard counts (trace/recorder.h).
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace dhc::congest {

/// One simulated round, as reported to a TraceSink after the round stepped.
struct RoundTrace {
  std::uint64_t round = 0;    ///< Round index (1-based, matches Metrics).
  std::uint64_t active = 0;   ///< Nodes stepped this round.
  std::uint64_t sent = 0;     ///< Messages sent by this round's steps.
  std::uint64_t bits = 0;     ///< Payload bits of those messages.
  std::uint64_t wakeups = 0;  ///< Wake-ups armed by this round's steps.
  /// Wall-clock of delivery + stepping, nanoseconds.  The only
  /// nondeterministic fields of the record are this and shard_wall_ns.
  std::uint64_t wall_ns = 0;
  /// True when the round ran on the shard engine (shard-profiling field).
  bool sharded = false;
  /// Per-shard step wall-time / active-node counts; empty unless `sharded`.
  /// Views into simulator-owned storage, valid only during the callback.
  std::span<const std::uint64_t> shard_wall_ns;
  std::span<const std::uint32_t> shard_active;
};

/// Fault activity of one async-model round (only rounds with activity are
/// reported).  The delivery-side counters (crash_dropped) refer to messages
/// maturing at `round`; the send-side ones (delayed/dropped) to messages
/// sent by this round's steps.
struct FaultTrace {
  std::uint64_t round = 0;
  std::uint64_t delayed = 0;        ///< sends assigned latency > 1
  std::uint64_t dropped = 0;        ///< sends lost in transit
  std::uint64_t crash_dropped = 0;  ///< matured messages dropped at a crashed node
  std::uint64_t crashed_steps = 0;  ///< activations suppressed by crashes
};

/// Reliable-overlay activity of one async round (reliability=ack only, and
/// only rounds with activity): retransmit copies and standalone acks sent by
/// this round's timer service, duplicates suppressed among this round's
/// matured arrivals.
struct RetransTrace {
  std::uint64_t round = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t acks_sent = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A phase mark: rounds from `first_round` until the next mark belong to
  /// `label` (mirrors Metrics::phase_marks).
  virtual void on_phase(const std::string& label, std::uint64_t first_round) = 0;

  /// Called once per executed round, after its steps ran.
  virtual void on_round(const RoundTrace& t) = 0;

  /// A quiescence barrier after `round`, charged `charge_rounds` rounds.
  virtual void on_barrier(std::uint64_t round, std::uint64_t charge_rounds) = 0;

  /// A completed k-machine-priced CONGEST round: its busiest link load and
  /// the ⌈busiest/bandwidth⌉ charge (fed by kmachine::KMachineCost, not the
  /// simulator; default no-op so CONGEST-only sinks need not care).
  virtual void on_kround(std::uint64_t congest_round, std::uint64_t busiest_link,
                         std::uint64_t charge) {
    (void)congest_round;
    (void)busiest_link;
    (void)charge;
  }

  /// One async-model round's fault activity (fed by the simulator only under
  /// `--model=async`, and only for rounds where something was delayed,
  /// dropped, or crashed; default no-op so synchronous sinks need not care).
  virtual void on_faults(const FaultTrace& t) { (void)t; }

  /// One async round's reliable-overlay activity (reliability=ack runs only,
  /// rounds with activity only; default no-op).
  virtual void on_retrans(const RetransTrace& t) { (void)t; }

  /// Crashed nodes rejoining: the first executed round at (or after) the
  /// crash window's end, with the number of nodes that were crashed.  Fired
  /// at most once per run (default no-op).
  virtual void on_rejoin(std::uint64_t round, std::uint64_t nodes) {
    (void)round;
    (void)nodes;
  }
};

}  // namespace dhc::congest
