// Synchronous CONGEST network simulator.
//
// Executes a Protocol over a graph in discrete rounds (paper §I-A): messages
// sent in round r are delivered at the start of round r+1; each directed
// edge carries at most `edge_capacity` messages per round (violations
// throw).  Scheduling is event-driven — only nodes holding freshly delivered
// messages or armed wake-ups run — so simulation cost tracks message volume,
// not n × rounds.
//
// Phase barriers: when the network goes quiescent (no messages in flight, no
// wake-ups armed) the protocol's on_quiescence() hook runs; it can advance
// to a new phase and wake nodes, or end the run.  Each such transition is
// counted as a barrier in Metrics (it stands for a termination-detection
// convergecast a real deployment would pay O(D) rounds for — see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "congest/message.h"
#include "congest/metrics.h"
#include "graph/graph.h"
#include "support/rng.h"

namespace dhc::congest {

/// Thrown when a protocol exceeds the CONGEST per-edge bandwidth, sends to a
/// non-neighbor, or otherwise breaks the communication model.
class CongestViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Optional tap on the message stream, e.g. to re-price an execution under
/// a different cost model (the k-machine conversion of paper §IV).
class MessageObserver {
 public:
  virtual ~MessageObserver() = default;
  /// Called for every sent message with the round it was sent in.
  virtual void on_send(NodeId from, NodeId to, std::uint64_t round) = 0;
};

struct NetworkConfig {
  /// Messages allowed per directed edge per round (the paper's B; 1 is the
  /// strict CONGEST setting used everywhere in libdhc).
  std::uint32_t edge_capacity = 1;

  /// Hard stop: abort the run after this many rounds (safety net; a run that
  /// trips it reports hit_round_limit instead of looping forever).
  std::uint64_t max_rounds = 50'000'000;

  /// Seed from which all per-node RNG streams are derived.
  std::uint64_t seed = 0;

  /// Optional message tap (not owned; must outlive the run).
  MessageObserver* observer = nullptr;
};

class Network;

/// Per-node view handed to protocol code during a round.  Exposes only what
/// a real node would have: its id, its neighbors, this round's inbox, its
/// private RNG stream, and the ability to send to neighbors / schedule its
/// own future wake-up.
class Context {
 public:
  NodeId self() const { return self_; }
  std::uint64_t round() const;
  std::span<const NodeId> neighbors() const;
  std::size_t degree() const { return neighbors().size(); }

  /// Messages delivered to this node at the start of this round.
  std::span<const Message> inbox() const;

  /// Sends `msg` to neighbor `to` (delivered next round).  Throws
  /// CongestViolation if `to` is not a neighbor or the edge is saturated.
  void send(NodeId to, Message msg);

  /// Arms a wake-up `delay` rounds from now (>= 1); the node's step() runs
  /// in that round even with an empty inbox.
  void wake_in(std::uint64_t delay);

  /// This node's private RNG stream (deterministic per (seed, node)).
  support::Rng& rng();

  /// Registers `words` words of node-local memory (may be negative to
  /// release); peak per node is reported in Metrics.
  void charge_memory(std::int64_t words);

  /// Charges local computation (unit: operations) for load-balance metrics.
  void charge_compute(std::uint64_t ops);

 private:
  friend class Network;
  Context(Network& net, NodeId self) : net_(net), self_(self) {}
  Network& net_;
  NodeId self_;
};

/// A distributed algorithm run by the Network.  Implementations hold all
/// per-node state (indexed by NodeId) and must only touch state of the node
/// whose Context they are given — that discipline is what makes the
/// simulation faithful to a message-passing execution.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once per node before round 1 (round 0 setup).
  virtual void begin(Context& ctx) = 0;

  /// Called for every active node each round (nodes with inbox or wake-up).
  virtual void step(Context& ctx) = 0;

  /// Called when no messages are in flight and no wake-ups are armed.
  /// Return true to continue (after waking nodes / advancing a phase);
  /// false to end the run.  Default: end.
  virtual bool on_quiescence(Network& net) {
    (void)net;
    return false;
  }
};

/// The simulator.  Owns inboxes, wake-ups, and metrics for one run.
class Network {
 public:
  Network(const graph::Graph& g, NetworkConfig cfg);

  const graph::Graph& graph() const { return *graph_; }
  NodeId n() const { return graph_->n(); }
  std::uint64_t round() const { return round_; }

  /// Runs `protocol` to quiescence (or the round limit) and returns metrics.
  Metrics run(Protocol& protocol);

  /// --- calls available to Protocol::on_quiescence ---

  /// Wakes `v` in the next round.
  void wake(NodeId v);

  /// Wakes every node in the next round.
  void wake_all();

  /// Labels the upcoming rounds as a new phase (metrics bookkeeping).
  void mark_phase(const std::string& label);

  /// Sets the per-barrier round charge (e.g. 2·tree depth once known).
  void set_barrier_cost(std::uint64_t rounds_per_barrier);

  /// Metrics of the run in progress (valid during run()).
  Metrics& metrics() { return metrics_; }

 private:
  friend class Context;

  void deliver_outbox();
  void send_from(NodeId from, NodeId to, Message msg);
  support::Rng& node_rng(NodeId v);

  const graph::Graph* graph_;
  NetworkConfig cfg_;
  std::uint64_t round_ = 0;
  Protocol* protocol_ = nullptr;

  std::vector<std::vector<Message>> inboxes_;       // delivered this round
  std::vector<std::vector<Message>> next_inboxes_;  // being filled
  std::vector<std::uint32_t> edge_load_;            // per directed edge, this round
  std::vector<std::uint64_t> edge_load_round_;      // round tag for lazy reset
  std::vector<std::size_t> edge_offsets_;           // node -> first directed-edge id
  std::size_t pending_messages_ = 0;                // undelivered message count
  std::vector<NodeId> active_;                      // nodes to step this round
  std::vector<std::uint8_t> has_mail_;              // dedup for next active set
  std::vector<NodeId> next_active_;
  std::map<std::uint64_t, std::vector<NodeId>> wakeups_;  // round -> nodes
  std::vector<support::Rng> rngs_;
  Metrics metrics_;
};

}  // namespace dhc::congest
