// Synchronous CONGEST network simulator.
//
// Executes a Protocol over a graph in discrete rounds (paper §I-A): messages
// sent in round r are delivered at the start of round r+1; each directed
// edge carries at most `edge_capacity` messages per round (violations
// throw).  Scheduling is event-driven — only nodes holding freshly delivered
// messages or armed wake-ups run — so simulation cost tracks message volume,
// not n × rounds.
//
// Memory layout (DESIGN.md §4): the hot path is allocation-free in the
// steady state.  Sends append to a flat outbox log; at the next round's
// delivery the log is scattered — stably, so per-node arrival order is the
// global send order, exactly as the old per-node queues behaved — into a
// flat inbox arena in which every active node owns one contiguous slice.
// inbox() is a span over that slice.  Wake-ups live in a fixed-size bucket
// wheel indexed by round (far-future wake-ups overflow into a small heap)
// instead of a std::map.  Both arenas and all wheel buckets are reused
// across rounds.
//
// Sharded rounds (DESIGN.md §5): with cfg.shards > 1, large rounds step the
// id-sorted active set as contiguous shard slices on a persistent worker
// pool.  Each shard appends sends, wake-ups, and observer events to its own
// logs; a serial merge in shard order then replays the receiver-side
// bookkeeping.  Because the shards are contiguous slices of the id-sorted
// active set, concatenating the shard logs reproduces the sequential global
// send order exactly — the stable scatter, per-node inbox order, wheel
// bucket contents, per-node RNG streams, and every Metrics counter are
// bitwise identical for any shard count (including 1).  The shard partition
// is independent of how many pool threads execute it, so determinism never
// depends on the machine.
//
// Phase barriers: when the network goes quiescent (no messages in flight, no
// wake-ups armed) the protocol's on_quiescence() hook runs; it can advance
// to a new phase and wake nodes, or end the run.  Each such transition is
// counted as a barrier in Metrics (it stands for a termination-detection
// convergecast a real deployment would pay O(D) rounds for — see DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "congest/message.h"
#include "congest/metrics.h"
#include "congest/trace_sink.h"
#include "graph/graph.h"
#include "support/require.h"
#include "support/rng.h"
#include "support/worker_pool.h"

namespace dhc::congest {

class FaultPlan;        // congest/fault_plan.h — async delays/drops/crashes
class ReliableOverlay;  // congest/reliable.h — seq/ack/retransmit transport

/// Thrown when a protocol exceeds the CONGEST per-edge bandwidth, sends to a
/// non-neighbor, or otherwise breaks the communication model.
class CongestViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// One observed send, as recorded in a shard's event log.
struct SendEvent {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint64_t round = 0;
};

namespace internal {

/// Thread-local log of one shard's round: sends, wake-ups, observer events,
/// and the shard's slice of the global counters.  Merged serially in shard
/// order after the parallel section; cleared (capacity kept) every round.
/// Cache-line aligned so neighboring shards' counters never share a line.
struct alignas(64) ShardState {
  std::vector<Message> outbox;
  std::vector<std::pair<std::uint64_t, NodeId>> wakeups;  // (delay, node)
  std::vector<SendEvent> events;  // populated only when an observer is attached
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
};

}  // namespace internal

/// Optional tap on the message stream, e.g. to re-price an execution under
/// a different cost model (the k-machine conversion of paper §IV).
class MessageObserver {
 public:
  virtual ~MessageObserver() = default;
  /// Called for every sent message with the round it was sent in
  /// (sequential rounds only; sharded rounds deliver batches below).
  virtual void on_send(NodeId from, NodeId to, std::uint64_t round) = 0;
  /// Called once per merged shard log on sharded rounds; events arrive in
  /// the exact global send order, so the default — replaying them through
  /// on_send() — makes any observer shard-correct.  Observers on hot paths
  /// (KMachineCost) override this to consume the batch directly.
  virtual void on_events(std::span<const SendEvent> events) {
    for (const SendEvent& e : events) on_send(e.from, e.to, e.round);
  }
};

struct NetworkConfig {
  /// Messages allowed per directed edge per round (the paper's B; 1 is the
  /// strict CONGEST setting used everywhere in libdhc).
  std::uint32_t edge_capacity = 1;

  /// Hard stop: abort the run after this many rounds (safety net; a run that
  /// trips it reports hit_round_limit instead of looping forever).
  std::uint64_t max_rounds = 50'000'000;

  /// Seed from which all per-node RNG streams are derived.
  std::uint64_t seed = 0;

  /// Optional message tap (not owned; must outlive the run).
  MessageObserver* observer = nullptr;

  /// Shard count for intra-round parallelism.  0 resolves the DHC_SHARDS
  /// environment variable (absent/invalid → 1); 1 is the classic sequential
  /// stepper.  Results are bitwise identical for every value.
  std::uint32_t shards = 0;

  /// Minimum active nodes *per shard* before a round is dispatched to the
  /// pool; smaller rounds step sequentially (identical results, no dispatch
  /// overhead).  0 resolves DHC_SHARD_GRAIN (absent/invalid → 32).
  std::uint32_t shard_grain = 0;

  /// Optional flight-recorder sink fed one RoundTrace per executed round
  /// plus phase/barrier marks (not owned; must outlive the run).  Per-round
  /// wall clocks are read only when a sink is attached, so tracing off has
  /// zero timing overhead.
  TraceSink* trace = nullptr;

  /// Per-node accounting mode (congest/metrics.h).  kFull is the classic
  /// exact-vector mode every golden test pins; kStreaming trades exact
  /// per-node vectors for compact accumulators + quantile summaries.
  NodeStatsMode node_stats = NodeStatsMode::kFull;

  /// Byte budget for the message arenas (outbox log, inbox arena, async
  /// delay wheel).  0 resolves DHC_ARENA_BUDGET (absent → unbounded).  When
  /// bounded, arena growth reserves exactly what a round needs (no geometric
  /// doubling past the budget) and capacities shrink back to the in-flight
  /// footprint whenever the reserved bytes exceed the budget.  Purely a
  /// capacity policy: every counter and result is bitwise identical for
  /// every setting — Metrics::arena_bytes_peak reports logical occupancy,
  /// which the budget never changes.
  std::uint64_t arena_budget_bytes = 0;

  /// Optional fault plan (not owned; must outlive the run).  nullptr — the
  /// default — is the synchronous CONGEST model, bit-for-bit as before.
  /// Non-null switches the engine to the async delivery regime (DESIGN.md
  /// §8): sends are routed through the plan's drop/delay decisions into a
  /// message delay wheel and delivered when their latency elapses; crashed
  /// nodes neither step nor receive.
  const FaultPlan* faults = nullptr;
};

class Network;

/// The DHC_SHARDS environment default applied when NetworkConfig::shards is
/// left at 0 (absent/invalid → 1).  Exposed so the runner's thread-budget
/// arbitration and the artifact headers agree with what the simulator runs.
std::uint32_t default_shards();

/// Per-node view handed to protocol code during a round.  Exposes only what
/// a real node would have: its id, its neighbors, this round's inbox, its
/// private RNG stream, and the ability to send to neighbors / schedule its
/// own future wake-up.
class Context {
 public:
  NodeId self() const { return self_; }
  std::uint64_t round() const;
  std::span<const NodeId> neighbors() const;
  std::size_t degree() const { return neighbors().size(); }

  /// Messages delivered to this node at the start of this round, in send
  /// order (a contiguous slice of the round's inbox arena).
  std::span<const Message> inbox() const;

  /// Sends `msg` to neighbor `to` (delivered next round).  Throws
  /// CongestViolation if `to` is not a neighbor or the edge is saturated.
  void send(NodeId to, const Message& msg);

  /// Sends `msg` to neighbors()[rank].  Same semantics as send(), but O(1):
  /// flood loops that already walk the neighbor span skip the per-message
  /// O(log deg) rank lookup.  Requires rank < degree().
  void send_to_rank(std::size_t rank, const Message& msg);

  /// Arms a wake-up `delay` rounds from now (>= 1); the node's step() runs
  /// in that round even with an empty inbox.
  void wake_in(std::uint64_t delay);

  /// This node's private RNG stream (deterministic per (seed, node)).
  support::Rng& rng();

  /// Registers `words` words of node-local memory (may be negative to
  /// release); peak per node is reported in Metrics.
  void charge_memory(std::int64_t words);

  /// Charges local computation (unit: operations) for load-balance metrics.
  void charge_compute(std::uint64_t ops);

 private:
  friend class Network;
  Context(Network& net, NodeId self, internal::ShardState* shard)
      : net_(net), self_(self), shard_(shard) {}
  Network& net_;
  NodeId self_;
  internal::ShardState* shard_;  // nullptr on sequential rounds
};

/// A distributed algorithm run by the Network.  Implementations hold all
/// per-node state (indexed by NodeId) and must only touch state of the node
/// whose Context they are given — that discipline is what makes the
/// simulation faithful to a message-passing execution, and what makes
/// sharded rounds race-free.  Aggregate counters bumped inside step() must
/// be atomic (their sums are order-independent); anything else shared and
/// mutable disqualifies the affected rounds via parallel_step_safe().
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Called once per node before round 1 (round 0 setup).
  virtual void begin(Context& ctx) = 0;

  /// Called for every active node each round (nodes with inbox or wake-up).
  virtual void step(Context& ctx) = 0;

  /// Called when no messages are in flight and no wake-ups are armed.
  /// Return true to continue (after waking nodes / advancing a phase);
  /// false to end the run.  Default: end.
  virtual bool on_quiescence(Network& net) {
    (void)net;
    return false;
  }

  /// Whether step() currently honors the per-node discipline above, queried
  /// once per round (so phase flags flipped in on_quiescence are stable).
  /// Protocols that route shared mutable state through plain members in
  /// some phase (DHC1's hypernode walk) return false there; those rounds
  /// step sequentially regardless of the shard count.
  virtual bool parallel_step_safe() const { return true; }
};

/// The simulator.  Owns the message arenas, the wake-up wheel, the shard
/// worker pool, and metrics for one run.
class Network {
 public:
  Network(const graph::Graph& g, NetworkConfig cfg);
  ~Network();  // out of line: ReliableOverlay is incomplete here

  const graph::Graph& graph() const { return *graph_; }
  NodeId n() const { return graph_->n(); }
  std::uint64_t round() const { return round_; }

  /// Resolved shard count (cfg.shards, or the DHC_SHARDS default).
  std::uint32_t shards() const { return shards_; }

  /// Runs `protocol` to quiescence (or the round limit) and returns metrics.
  Metrics run(Protocol& protocol);

  /// --- calls available to Protocol::on_quiescence ---

  /// Wakes `v` in the next round.
  void wake(NodeId v);

  /// Wakes every node in the next round.
  void wake_all();

  /// Labels the upcoming rounds as a new phase (metrics bookkeeping).
  void mark_phase(const std::string& label);

  /// Sets the per-barrier round charge (e.g. 2·tree depth once known).
  void set_barrier_cost(std::uint64_t rounds_per_barrier);

  /// Metrics of the run in progress (valid during run()).
  Metrics& metrics() { return metrics_; }

  /// Wake-up wheel geometry: one bucket per upcoming round, indexed modulo
  /// the wheel size.  Every delay protocols use in practice is far below
  /// kWheelSize; longer delays overflow into a (round, node) min-heap.
  /// Rounds advance either by +1 or by jumping to the *minimum* armed round
  /// (wake-up or pending async delivery), so a bucket is always drained
  /// before its slot could be reused.  The async message delay wheel shares
  /// this geometry.  Public so the boundary tests can pin the wheel/heap
  /// hand-off at exactly kWheelSize-1 / kWheelSize / kWheelSize+1.
  static constexpr std::uint64_t kWheelBits = 10;
  static constexpr std::uint64_t kWheelSize = 1ull << kWheelBits;
  static constexpr std::uint64_t kWheelMask = kWheelSize - 1;

 private:
  friend class Context;

  using ShardState = internal::ShardState;

  void deliver_and_build_active_set();
  void step_active_set(Protocol& protocol);
  /// Per-round footprint sample + budget enforcement (run() epilogue): max
  /// logical in-flight bytes into metrics_.arena_bytes_peak, then — only
  /// when a budget is set and exceeded by *reserved* capacity — shrink the
  /// consumed arenas back to their in-flight footprint.
  void sample_and_trim_arenas();
  void step_sharded(Protocol& protocol);
  void merge_shard_logs();
  void emit_round_trace(std::uint64_t sent, std::uint64_t bits, std::uint64_t wakeups,
                        std::uint64_t wall_ns);
  std::uint64_t next_armed_round() const;
  void arm_wakeup(NodeId v, std::uint64_t delay);
  bool any_wakeup_armed() const { return wheel_armed_ != 0 || !far_wakeups_.empty(); }

  // --- async delivery (cfg.faults != nullptr) ---

  /// Routes one committed send through the fault plan: dropped messages
  /// vanish (counted), surviving ones are filed in the message delay wheel
  /// (or the far map) under round_ + latency.  With the reliable overlay
  /// engaged, the message is seq-stamped and buffered for retransmission
  /// first.  Serial only: called from the sequential send path and from the
  /// shard-log merge, never from inside a parallel section.
  void enqueue_async(NodeId from, NodeId to, const Message& msg);
  /// The transport tail of enqueue_async: link FIFO slot, drop decision,
  /// delay assignment, wheel filing.  Also carries the overlay's own traffic
  /// (retransmits, standalone acks), which shares the fate machinery of
  /// first sends.
  void file_async(NodeId from, NodeId to, std::size_t edge_id, const Message& msg);
  /// Fires the overlay timers due this round and files the resulting
  /// retransmit / standalone-ack messages (with Metrics accounting).
  void service_transport();
  /// Moves every message due this round from the delay wheel / far map into
  /// outbox_, applying crash-receiver drops and the receiver-side
  /// first-touch bookkeeping that the synchronous path does at send time.
  void mature_async_messages();
  /// Earliest round > round_ holding a pending delivery (UINT64_MAX: none).
  std::uint64_t next_delivery_round() const;
  bool any_delivery_pending() const { return delay_armed_ != 0 || !far_messages_.empty(); }
  /// Drops crashed nodes from the freshly built active set (serial pass).
  void filter_crashed_active();

  void send_from(ShardState* sh, NodeId from, NodeId to, const Message& msg);
  void send_ranked(ShardState* sh, NodeId from, std::size_t rank, const Message& msg);
  void commit_send(ShardState* sh, NodeId from, NodeId to, std::size_t edge_id,
                   const Message& msg);
  [[noreturn]] void throw_non_neighbor(NodeId from, NodeId to) const;
  [[noreturn]] void throw_over_capacity(const std::vector<Message>& round_outbox, NodeId from,
                                        NodeId to, const Message& msg) const;
  support::Rng& node_rng(NodeId v) { return rngs_[v]; }

  const graph::Graph* graph_;
  NetworkConfig cfg_;
  std::uint32_t shards_ = 1;       // resolved shard count
  std::uint32_t shard_grain_ = 32;  // resolved min active nodes per shard
  NodeStatsMode node_stats_ = NodeStatsMode::kFull;  // hoisted out of cfg_ for the send path
  std::uint64_t round_ = 0;
  Protocol* protocol_ = nullptr;
  std::uint64_t bits_per_word_ = 1;  // ⌈log₂ n⌉, hoisted out of the send path
  std::uint64_t arena_budget_bytes_ = 0;  // resolved cfg/DHC_ARENA_BUDGET (0 = unbounded)

  // Message arenas (double-buffered): sends append to outbox_ (directly on
  // sequential rounds, via the shard merge on sharded ones); delivery
  // scatters it into inbox_arena_, one contiguous slice per receiving node.
  std::vector<Message> outbox_;       // send order; size == messages in flight
  std::vector<Message> inbox_arena_;  // this round's inboxes, grouped by node
  std::vector<std::uint32_t> inbox_count_;   // per node: messages pending next round
  std::vector<std::uint32_t> inbox_off_;     // per node: slice start in inbox_arena_
  std::vector<std::uint32_t> inbox_len_;     // per node: slice length this round
  std::vector<std::uint32_t> inbox_cursor_;  // per node: scatter write cursor
  std::vector<NodeId> next_active_;          // first-touch receivers of outbox_
  std::uint64_t inbox_live_ = 0;             // messages scattered this round (logical)

  std::vector<std::uint32_t> edge_load_;        // per directed edge, this round
  std::vector<std::uint64_t> edge_load_round_;  // round tag for lazy reset
  std::vector<std::size_t> edge_offsets_;       // node -> first directed-edge id

  std::vector<NodeId> active_;          // nodes to step this round
  std::vector<std::uint8_t> has_mail_;  // dedup mail vs wake-up activation

  std::vector<std::vector<NodeId>> wheel_;  // kWheelSize buckets, reused
  std::size_t wheel_armed_ = 0;             // total nodes across wheel buckets
  std::priority_queue<std::pair<std::uint64_t, NodeId>,
                      std::vector<std::pair<std::uint64_t, NodeId>>,
                      std::greater<>>
      far_wakeups_;  // wake-ups ≥ kWheelSize rounds out (rare)

  // Async delivery state (allocated only when cfg.faults != nullptr).  The
  // message delay wheel mirrors the wake-up wheel: one bucket per upcoming
  // round; deliveries ≥ kWheelSize rounds out live in the ordered far map.
  // Bucket append order is the global send order, so maturation preserves
  // the arrival-order determinism the synchronous scatter guarantees.
  const FaultPlan* faults_ = nullptr;              // hoisted out of cfg_
  std::vector<std::uint64_t> link_free_at_;        // per directed edge: next free departure round
  std::vector<std::vector<Message>> delay_wheel_;  // kWheelSize buckets
  std::size_t delay_armed_ = 0;                    // messages across buckets
  std::map<std::uint64_t, std::vector<Message>> far_messages_;  // round → msgs
  std::size_t far_msg_armed_ = 0;                  // messages across the far map

  // Reliable-delivery overlay (congest/reliable.h).  Engaged only when the
  // plan requests reliability=ack AND can actually lose messages (drops or
  // crashes active): lossless runs bypass it entirely, which is what pins
  // reliability=ack bitwise-identical to reliability=none at drop=0.
  std::unique_ptr<ReliableOverlay> reliable_;
  std::vector<Message> transport_batch_;  // service_transport scratch
  std::vector<Message> drain_batch_;      // in-order release scratch

  std::vector<ShardState> shard_state_;          // size shards_ when sharding
  std::unique_ptr<support::WorkerPool> pool_;    // created on first sharded round

  // Shard-profiling scratch for the flight recorder (filled by step_sharded
  // only when a trace sink is attached; the RoundTrace spans point here).
  bool last_round_sharded_ = false;
  std::vector<std::uint64_t> trace_shard_wall_ns_;
  std::vector<std::uint32_t> trace_shard_active_;

  std::vector<support::Rng> rngs_;
  Metrics metrics_;
};

// ---------------------------------------------------------------------------
// Inline hot path.  One Context::send is one neighbor-rank lookup, one edge
// budget check, metric bumps, and a single 56-byte append — no intermediate
// Message copies (the old out-of-line path copied the struct three times)
// and no per-message allocation once the outbox has warmed up.  On sharded
// rounds the append, the global counters, and the receiver-side bookkeeping
// go to the shard log instead (one predictable branch); everything the send
// touches directly — the edge budget row and node_messages_sent[from] — is
// owned by the sending node and therefore by exactly one shard.
// ---------------------------------------------------------------------------

inline void Network::arm_wakeup(NodeId v, std::uint64_t delay) {
  const std::uint64_t target = round_ + delay;
  if (delay < kWheelSize) {
    wheel_[target & kWheelMask].push_back(v);
    ++wheel_armed_;
  } else {
    far_wakeups_.emplace(target, v);
  }
}

inline void Network::commit_send(ShardState* sh, NodeId from, NodeId to,
                                 std::size_t edge_id, const Message& msg) {
  if (edge_load_round_[edge_id] != round_) {
    edge_load_round_[edge_id] = round_;
    edge_load_[edge_id] = 0;
  }
  if (++edge_load_[edge_id] > cfg_.edge_capacity && faults_ == nullptr) {
    // The per-round capacity discipline is a synchronous-schedule invariant.
    // Under async delivery a node may legally answer several delayed
    // arrivals at once; excess sends serialize through the link's FIFO
    // queue (enqueue_async) instead of faulting.
    throw_over_capacity(sh == nullptr ? outbox_ : sh->outbox, from, to, msg);
  }
  DHC_CHECK(msg.words <= kMaxWords, "message exceeds payload word limit");

  // Sender-side accounting: node_messages_sent[from] (and its compact
  // streaming twin) is owned by the sending node, hence by exactly one
  // shard — no atomics needed in any mode.
  if (node_stats_ == NodeStatsMode::kFull) {
    metrics_.node_messages_sent[from] += 1;
  } else if (node_stats_ == NodeStatsMode::kStreaming) {
    metrics_.node_sent32[from] += 1;
  }
  if (sh == nullptr) {
    metrics_.messages += 1;
    metrics_.bits += message_bits_for(msg.words, bits_per_word_);
    if (cfg_.observer != nullptr) cfg_.observer->on_send(from, to, round_);
    if (faults_ != nullptr) {
      // Async regime: the receiver-side bookkeeping happens at maturation,
      // not send, time (messages counts *sends*; received counts arrivals).
      enqueue_async(from, to, msg);
      return;
    }
    if (node_stats_ == NodeStatsMode::kFull) metrics_.node_messages_received[to] += 1;
    if (inbox_count_[to]++ == 0) next_active_.push_back(to);
    Message& slot = outbox_.emplace_back(msg);
    slot.from = from;
    slot.to = to;
  } else {
    sh->messages += 1;
    sh->bits += message_bits_for(msg.words, bits_per_word_);
    if (cfg_.observer != nullptr) sh->events.push_back({from, to, round_});
    Message& slot = sh->outbox.emplace_back(msg);
    slot.from = from;
    slot.to = to;
  }
}

inline void Network::send_from(ShardState* sh, NodeId from, NodeId to, const Message& msg) {
  const std::size_t rank = graph_->neighbor_rank(from, to);
  if (rank == graph::Graph::kNoRank) throw_non_neighbor(from, to);
  commit_send(sh, from, to, edge_offsets_[from] + rank, msg);
}

inline void Network::send_ranked(ShardState* sh, NodeId from, std::size_t rank,
                                 const Message& msg) {
  const auto nb = graph_->neighbors(from);
  DHC_REQUIRE(rank < nb.size(), "send_to_rank: rank " << rank << " out of range for node " << from);
  commit_send(sh, from, nb[rank], edge_offsets_[from] + rank, msg);
}

inline std::uint64_t Context::round() const { return net_.round_; }

inline std::span<const NodeId> Context::neighbors() const {
  return net_.graph_->neighbors(self_);
}

inline std::span<const Message> Context::inbox() const {
  return {net_.inbox_arena_.data() + net_.inbox_off_[self_], net_.inbox_len_[self_]};
}

inline void Context::send(NodeId to, const Message& msg) {
  net_.send_from(shard_, self_, to, msg);
}

inline void Context::send_to_rank(std::size_t rank, const Message& msg) {
  net_.send_ranked(shard_, self_, rank, msg);
}

inline void Context::wake_in(std::uint64_t delay) {
  DHC_REQUIRE(delay >= 1, "wake_in delay must be at least 1 round");
  if (shard_ == nullptr) {
    net_.arm_wakeup(self_, delay);
  } else {
    shard_->wakeups.emplace_back(delay, self_);
  }
}

inline support::Rng& Context::rng() { return net_.node_rng(self_); }

inline void Context::charge_memory(std::int64_t words) {
  if (net_.node_stats_ == NodeStatsMode::kFull) {
    auto& mem = net_.metrics_.node_memory_words[self_];
    mem += words;
    auto& peak = net_.metrics_.node_peak_memory_words[self_];
    peak = std::max(peak, mem);
  } else if (net_.node_stats_ == NodeStatsMode::kStreaming) {
    auto& mem = net_.metrics_.node_mem_cur32[self_];
    mem = static_cast<std::int32_t>(mem + words);
    auto& peak = net_.metrics_.node_mem_peak32[self_];
    peak = std::max(peak, mem);
  }
}

inline void Context::charge_compute(std::uint64_t ops) {
  if (net_.node_stats_ == NodeStatsMode::kFull) {
    net_.metrics_.node_compute_ops[self_] += ops;
  } else if (net_.node_stats_ == NodeStatsMode::kStreaming) {
    // Saturating: compute is charged in arbitrary-size chunks.
    auto& acc = net_.metrics_.node_compute32[self_];
    const std::uint64_t next = acc + ops;
    acc = next > 0xffffffffull ? 0xffffffffu : static_cast<std::uint32_t>(next);
  }
}

}  // namespace dhc::congest
