// Cost accounting for simulated CONGEST executions.
//
// The paper's claims are about rounds, message size, per-node memory, and
// balanced local computation (§I, §I-A).  The simulator measures all of them
// directly; the "fully distributed" property is an experiment (EXP-L1), not
// an assertion.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dhc::congest {

/// Per-run cost measurements, populated by Network::run.
struct Metrics {
  /// Synchronous rounds executed (message rounds only; see barrier_count).
  std::uint64_t rounds = 0;

  /// Total messages delivered.
  std::uint64_t messages = 0;

  /// Total payload bits delivered (see message_bits()).
  std::uint64_t bits = 0;

  /// Number of global phase barriers the protocol used.  Each barrier models
  /// a termination-detection convergecast + broadcast over a global BFS tree
  /// and would cost O(D) rounds in a real deployment; report
  /// rounds + barrier_count·barrier_cost_rounds for the conservative total.
  std::uint64_t barrier_count = 0;

  /// Round cost charged per barrier (2·BFS-tree depth once known; protocols
  /// set it after building their tree, default small constant).
  std::uint64_t barrier_cost_rounds = 4;

  /// True when the run stopped because it hit the round limit.
  bool hit_round_limit = false;

  /// Per-node counts of messages sent (load-balance experiments).
  std::vector<std::uint64_t> node_messages_sent;

  /// Per-node counts of messages received.
  std::vector<std::uint64_t> node_messages_received;

  /// Per-node registered memory, in words, current and peak (charged
  /// explicitly by protocols at allocation sites).
  std::vector<std::int64_t> node_memory_words;
  std::vector<std::int64_t> node_peak_memory_words;

  /// Per-node local computation charge (unit: "operations").
  std::vector<std::uint64_t> node_compute_ops;

  /// Named phase boundaries: (phase label, first round of the phase).
  std::vector<std::pair<std::string, std::uint64_t>> phase_marks;

  /// rounds + barriers charged at barrier_cost_rounds each.
  std::uint64_t accounted_rounds() const { return rounds + barrier_count * barrier_cost_rounds; }

  /// Maximum over nodes of messages sent (congestion/load balance).
  std::uint64_t max_node_messages_sent() const;

  /// Maximum over nodes of peak registered memory.
  std::int64_t max_node_peak_memory() const;

  /// Maximum over nodes of compute charge.
  std::uint64_t max_node_compute() const;

  /// Rounds spent in the phase labelled `label` (to the next mark or end).
  std::uint64_t phase_rounds(const std::string& label) const;
};

}  // namespace dhc::congest
