// Cost accounting for simulated CONGEST executions.
//
// The paper's claims are about rounds, message size, per-node memory, and
// balanced local computation (§I, §I-A).  The simulator measures all of them
// directly; the "fully distributed" property is an experiment (EXP-L1), not
// an assertion.
//
// Per-node accounting has three modes (NodeStatsMode).  kFull keeps the five
// classic 64-bit per-node vectors (40 B/node) — the mode every golden and
// differential test pins.  kStreaming keeps compact 32-bit accumulators
// (16 B/node), skips the received-messages vector entirely (one fewer
// receiver-side cache-line touch per delivered message), and reports the
// per-node distributions as streaming summaries (count/sum/max +
// p50/p95/p99 through a support::QuantileSketch) — the million-node mode.
// kOff keeps nothing per node.  All modes leave the headline counters
// (rounds, messages, bits, barriers, phase marks) bitwise identical.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dhc::congest {

/// How much per-node accounting a run keeps (see file comment).
enum class NodeStatsMode : std::uint8_t { kFull, kStreaming, kOff };

/// Streaming digest of one per-node distribution (messages sent, peak
/// memory, compute ops), computed by Metrics::finalize_node_stats().  Exact
/// in kFull mode; in kStreaming the quantiles come from a fixed-size
/// QuantileSketch and carry its relative error bound (DESIGN.md §7).
struct NodeStatSummary {
  std::uint64_t count = 0;  ///< Nodes contributing (0 = not tracked).
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Per-run cost measurements, populated by Network::run.
struct Metrics {
  /// Synchronous rounds executed (message rounds only; see barrier_count).
  std::uint64_t rounds = 0;

  /// Total messages delivered.
  std::uint64_t messages = 0;

  /// Total payload bits delivered (see message_bits()).
  std::uint64_t bits = 0;

  /// Number of global phase barriers the protocol used.  Each barrier models
  /// a termination-detection convergecast + broadcast over a global BFS tree
  /// and would cost O(D) rounds in a real deployment; report
  /// rounds + barrier_count·barrier_cost_rounds for the conservative total.
  std::uint64_t barrier_count = 0;

  /// Round cost charged per barrier (2·BFS-tree depth once known; protocols
  /// set it after building their tree, default small constant).
  std::uint64_t barrier_cost_rounds = 4;

  /// True when the run stopped because it hit the round limit.
  bool hit_round_limit = false;

  /// High-water mark of the simulator's message arenas, in bytes: the
  /// per-round maximum of logical messages in flight (outbox log + inbox
  /// arena + async delay wheel/far map) × sizeof(Message).  Counts logical
  /// occupancy, never vector capacities, so it is bitwise identical across
  /// shard counts and arena-budget settings.
  std::uint64_t arena_bytes_peak = 0;

  /// Async-model fault accounting (all zero on synchronous runs).  Note the
  /// async `messages` counter counts *sends*; dropped/crash-dropped messages
  /// are sent but never arrive.
  std::uint64_t delayed_messages = 0;        ///< delivered with latency > 1
  std::uint64_t dropped_messages = 0;        ///< lost in transit (drop_prob)
  std::uint64_t crash_dropped_messages = 0;  ///< arrived at a crashed node
  std::uint64_t crashed_steps = 0;           ///< activations lost to crashes

  /// Reliable-delivery overlay accounting (reliability=ack runs; all zero
  /// otherwise).  Retransmits and standalone acks count in `messages`/`bits`
  /// (acks at header cost) but not in the per-node send vectors, which keep
  /// counting protocol sends only so load-balance stats stay comparable
  /// across reliability modes.
  std::uint64_t retransmits = 0;     ///< payload copies re-sent by the overlay
  std::uint64_t dup_suppressed = 0;  ///< arrivals discarded as duplicates
  std::uint64_t acks_sent = 0;       ///< standalone ack messages
  std::uint64_t crashed_rejoins = 0; ///< nodes back (with stale state) after their crash window

  /// Valid when hit_round_limit: true if traffic was still moving at the
  /// break (sends in flight or retransmit/ack timers armed — e.g. turau's
  /// delay livelock), false if the run was quiescent apart from wake-up
  /// polling (the PR 7 drop-stall signature).
  bool round_limit_live = false;

  /// Which per-node accounting mode populated this run (set by the Network
  /// from its config; determines which vectors below are non-empty).
  NodeStatsMode node_stats_mode = NodeStatsMode::kFull;

  /// Per-node counts of messages sent (load-balance experiments).
  /// kFull mode only.
  std::vector<std::uint64_t> node_messages_sent;

  /// Per-node counts of messages received.  kFull mode only.
  std::vector<std::uint64_t> node_messages_received;

  /// Per-node registered memory, in words, current and peak (charged
  /// explicitly by protocols at allocation sites).  kFull mode only.
  std::vector<std::int64_t> node_memory_words;
  std::vector<std::int64_t> node_peak_memory_words;

  /// Per-node local computation charge (unit: "operations").  kFull only.
  std::vector<std::uint64_t> node_compute_ops;

  /// kStreaming-mode compact accumulators (16 B/node vs kFull's 40; the
  /// received distribution is intentionally not tracked).  Sent counts and
  /// compute charges saturate at 2^32−1 per node — a bound no realistic run
  /// approaches, since it would imply > 4·10^9 total messages.
  std::vector<std::uint32_t> node_sent32;
  std::vector<std::int32_t> node_mem_cur32;
  std::vector<std::int32_t> node_mem_peak32;
  std::vector<std::uint32_t> node_compute32;

  /// Per-node distribution digests, filled by finalize_node_stats() at the
  /// end of Network::run.  received_summary has count 0 in kStreaming mode.
  NodeStatSummary sent_summary;
  NodeStatSummary received_summary;
  NodeStatSummary peak_memory_summary;
  NodeStatSummary compute_summary;

  /// Named phase boundaries: (phase label, first round of the phase).
  std::vector<std::pair<std::string, std::uint64_t>> phase_marks;

  /// rounds + barriers charged at barrier_cost_rounds each.
  std::uint64_t accounted_rounds() const { return rounds + barrier_count * barrier_cost_rounds; }

  /// Protocol-level sends only: `messages` minus the transport traffic the
  /// reliability overlay added.  The apples-to-apples message-complexity
  /// number for paired comparisons across reliability modes (and the one the
  /// bench gate pins for async presets).
  std::uint64_t payload_messages() const { return messages - retransmits - acks_sent; }

  /// Maximum over nodes of messages sent (congestion/load balance).  Reads
  /// whichever representation the mode kept (vector, compact vector, or the
  /// finalized summary).
  std::uint64_t max_node_messages_sent() const;

  /// Maximum over nodes of peak registered memory.
  std::int64_t max_node_peak_memory() const;

  /// Maximum over nodes of compute charge.
  std::uint64_t max_node_compute() const;

  /// Computes the four NodeStatSummary digests from the mode's vectors:
  /// exact (sorted nearest-rank) in kFull, sketch-backed in kStreaming,
  /// zeros in kOff.  Called by Network::run; idempotent.
  void finalize_node_stats();

  /// Total rounds spent under the label, summed over *every* span carrying
  /// it (protocols re-enter phases — DHC2 marks "merge" once per level; a
  /// span ends at the next mark, the last one at rounds + 1).
  std::uint64_t phase_rounds(const std::string& label) const;
};

std::string to_string(NodeStatsMode mode);

/// Parses full | streaming | off; throws std::invalid_argument otherwise.
NodeStatsMode parse_node_stats_mode(const std::string& s);

}  // namespace dhc::congest
