// CONGEST-model messages.
//
// The CONGEST model (Peleg [23]; paper §I-A) allows each node to send one
// O(log n)-bit message per incident edge per round.  We make that budget
// concrete: a message carries up to kMaxWords payload words, where one word
// is one Θ(log n)-bit field (a node id, an index, a size).  The bandwidth is
// therefore B = kMaxWords·⌈log₂ n⌉ + O(1) bits, the standard allowance; the
// network layer rejects attempts to push more than `edge_capacity` messages
// onto one directed edge in one round, so model violations fail loudly.
#pragma once

#include <array>
#include <cstdint>

#include "graph/graph.h"

namespace dhc::congest {

using graph::NodeId;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// Maximum payload words per message (each word ≈ one ⌈log₂ n⌉-bit field).
inline constexpr std::size_t kMaxWords = 4;

/// One CONGEST message.  `tag` identifies the protocol-level message type;
/// `data[0..words)` are the payload fields.
///
/// `rel_seq`/`rel_ack` are the reliable-delivery overlay header
/// (congest/reliable.h): a per-directed-link sequence number (0 = unstamped
/// — synchronous runs and reliability=none leave both fields untouched) and
/// the piggybacked cumulative ack for the reverse direction.  A message with
/// rel_seq == 0 and rel_ack > 0 is a standalone ack (transport-only, never
/// delivered to the protocol).  The header rides free in the bit accounting:
/// real stacks fold seq/ack numbers into the O(1) framing the tag byte
/// already stands for.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  std::uint16_t tag = 0;
  std::uint16_t words = 0;
  std::uint32_t rel_seq = 0;
  std::uint32_t rel_ack = 0;
  std::array<std::int64_t, kMaxWords> data{};

  /// Convenience constructor: tag + up to kMaxWords payload words.
  static Message make(std::uint16_t tag, std::initializer_list<std::int64_t> payload = {}) {
    Message m;
    m.tag = tag;
    for (const std::int64_t w : payload) {
      m.data[m.words++] = w;
    }
    return m;
  }
};

/// Bits for a message of `words` payload words when one word costs
/// `id_bits` bits: the single definition of the CONGEST bit model, shared
/// by message_bits() and the simulator's inline send path (which hoists
/// id_bits = ⌈log₂ n⌉ out of the loop).
inline std::uint64_t message_bits_for(std::uint64_t words, std::uint64_t id_bits) {
  return words * id_bits + 8;  // payload fields + tag byte
}

/// Bits consumed by a message in a network of n nodes: words·⌈log₂ n⌉ plus a
/// constant tag byte.  Used for the bit-complexity metrics (EXP-M1).
std::uint64_t message_bits(const Message& msg, NodeId n);

}  // namespace dhc::congest
