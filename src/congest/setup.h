// Group setup: leader election + BFS spanning tree + size/depth aggregation.
//
// Every algorithm in the paper needs this scaffolding before its real work:
// DHC1/DHC2 Phase 1 run it per color class (partition leaders seed the
// rotation algorithm and the tree carries rotation broadcasts), DHC1 Phase 2
// and the Upcast algorithm run it globally.  The component is embedded in an
// enclosing Protocol, which forwards step() calls and drives phase
// advancement from its on_quiescence() hook:
//
//   Share  — every node tells its neighbors its group id (1 round; skipped
//            when there is a single group),
//   Elect  — min-id improvement flooding inside each group; quiesces with
//            every node knowing its group's minimum id (the leader),
//   Bfs    — leaders start a synchronous BFS; announcements carry (level,
//            parent), so parents learn their children for free,
//   Up     — convergecast of subtree sizes and max level to the leader,
//   Down   — leaders broadcast (group size, tree depth) down the tree.
//
// Each phase ends at network quiescence.  Groups that are disconnected end
// up with one leader/tree per connected component — detectable because the
// component's size is smaller than the group; the enclosing algorithm
// reports failure instead of hanging (failure injection tests rely on this).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.h"

namespace dhc::congest {

class SetupComponent {
 public:
  /// Phases advance strictly in declaration order.
  enum class Phase : std::uint8_t { kIdle, kShare, kElect, kBfs, kUp, kDown, kDone };

  /// `group_of[v]` is v's group (color); communication stays inside groups.
  /// `base_tag` reserves message tags base_tag..base_tag+3 for this component.
  SetupComponent(NodeId n, std::uint16_t base_tag, std::vector<std::uint32_t> group_of);

  /// Single-group convenience (global tree over the whole graph).
  SetupComponent(NodeId n, std::uint16_t base_tag);

  /// Runs this node's part of the current phase; call from Protocol::step for
  /// every active node while !done().  Consumes only this component's tags.
  void step(Context& ctx);

  /// Advances to the next phase and wakes all nodes; call from
  /// Protocol::on_quiescence while !done().
  void advance(Network& net);

  Phase phase() const { return phase_; }
  bool done() const { return phase_ == Phase::kDone; }

  /// --- results, valid once done() ---

  /// The group leader v knows (its component's minimum id).
  NodeId leader(NodeId v) const { return min_seen_[v]; }
  bool is_leader(NodeId v) const { return min_seen_[v] == v; }

  /// BFS tree: parent (kNoNode for leaders), children, level from leader.
  NodeId parent(NodeId v) const { return parent_[v]; }
  const std::vector<NodeId>& children(NodeId v) const { return children_[v]; }
  std::uint32_t level(NodeId v) const { return level_[v]; }

  /// Size of v's connected same-group component and depth of its BFS tree
  /// (as broadcast by the leader in the Down phase).
  std::uint32_t component_size(NodeId v) const { return comp_size_[v]; }
  std::uint32_t tree_depth(NodeId v) const { return comp_depth_[v]; }

  std::uint32_t group_of(NodeId v) const { return group_of_[v]; }

  /// True if v and w are in the same group.
  bool same_group(NodeId v, NodeId w) const { return group_of_[v] == group_of_[w]; }

  /// Sends `msg` along every tree edge incident to v except `exclude`
  /// (parent and children) — the building block for tree broadcasts from an
  /// arbitrary origin, which reach every tree node within 2·depth rounds.
  void forward_on_tree(Context& ctx, const Message& msg, NodeId exclude) const;

  /// Sends `msg` to v's tree parent in O(1): the parent's neighbor rank is
  /// cached at adoption time, so convergecast pipelines (one record per
  /// round, millions of sends) skip the per-message neighbor search.
  /// Requires parent(v) != kNoNode.
  void send_to_parent(Context& ctx, const Message& msg) const {
    ctx.send_to_rank(parent_rank_[ctx.self()], msg);
  }

  /// Sends `msg` to every tree child of v except `exclude`, by cached rank.
  void send_to_children(Context& ctx, const Message& msg, NodeId exclude = kNoNode) const {
    const auto& kids = children_[ctx.self()];
    const auto& ranks = child_ranks_[ctx.self()];
    for (std::size_t i = 0; i < kids.size(); ++i) {
      if (kids[i] != exclude) ctx.send_to_rank(ranks[i], msg);
    }
  }

 private:
  void start_phase(Context& ctx);
  void handle(Context& ctx, const Message& msg);
  void announce_bfs(Context& ctx);
  void maybe_send_up(Context& ctx);
  void flood_group(Context& ctx, const Message& msg) const;

  std::uint16_t tag_share() const { return base_tag_; }
  std::uint16_t tag_elect() const { return static_cast<std::uint16_t>(base_tag_ + 1); }
  std::uint16_t tag_bfs() const { return static_cast<std::uint16_t>(base_tag_ + 2); }
  std::uint16_t tag_up() const { return static_cast<std::uint16_t>(base_tag_ + 3); }
  std::uint16_t tag_down() const { return static_cast<std::uint16_t>(base_tag_ + 4); }

  std::uint16_t base_tag_;
  Phase phase_ = Phase::kIdle;
  bool multi_group_;

  std::vector<std::uint32_t> group_of_;
  std::vector<std::uint8_t> phase_seen_;  // last phase each node initialized
  std::vector<NodeId> min_seen_;
  std::vector<std::uint32_t> level_;
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> parent_rank_;  // parent's index in neighbors(v)
  std::vector<std::vector<NodeId>> children_;
  std::vector<std::vector<std::uint32_t>> child_ranks_;  // parallel to children_
  std::vector<std::uint32_t> up_reports_;
  std::vector<std::uint32_t> up_size_;
  std::vector<std::uint32_t> up_depth_;
  std::vector<std::uint32_t> comp_size_;
  std::vector<std::uint32_t> comp_depth_;
};

}  // namespace dhc::congest
