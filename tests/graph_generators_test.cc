// Tests for the random and structured graph generators, including the
// distributional properties the paper's analysis relies on (edge-count
// concentration of G(n,p), exact edge count of G(n,M), regularity).
#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/algorithms.h"

namespace dhc::graph {
namespace {

TEST(Gnp, EdgeCountConcentratesAroundExpectation) {
  support::Rng rng(1);
  const NodeId n = 500;
  const double p = 0.05;
  const double expected = p * n * (n - 1) / 2.0;
  const Graph g = gnp(n, p, rng);
  // stddev ≈ sqrt(expected·(1-p)) ≈ 77; allow 6 sigma.
  EXPECT_NEAR(static_cast<double>(g.m()), expected, 6.0 * std::sqrt(expected));
}

TEST(Gnp, ZeroProbabilityYieldsEmptyGraph) {
  support::Rng rng(2);
  const Graph g = gnp(100, 0.0, rng);
  EXPECT_EQ(g.m(), 0u);
}

TEST(Gnp, OneProbabilityYieldsCompleteGraph) {
  support::Rng rng(2);
  const Graph g = gnp(20, 1.0, rng);
  EXPECT_EQ(g.m(), 190u);
}

TEST(Gnp, Deterministic) {
  support::Rng a(77);
  support::Rng b(77);
  const Graph g1 = gnp(200, 0.03, a);
  const Graph g2 = gnp(200, 0.03, b);
  EXPECT_EQ(g1.edges(), g2.edges());
}

TEST(Gnp, DifferentSeedsDiffer) {
  support::Rng a(1);
  support::Rng b(2);
  EXPECT_NE(gnp(200, 0.03, a).edges(), gnp(200, 0.03, b).edges());
}

TEST(Gnp, RejectsBadProbability) {
  support::Rng rng(1);
  EXPECT_THROW(gnp(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(gnp(10, 1.1, rng), std::invalid_argument);
}

TEST(Gnp, AboveConnectivityThresholdIsConnected) {
  // p = 4 ln n / n is far above the ln n / n connectivity threshold.
  support::Rng rng(3);
  const NodeId n = 1000;
  const double p = 4.0 * std::log(n) / n;
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(is_connected(gnp(n, p, rng)));
  }
}

TEST(Gnm, ExactEdgeCount) {
  support::Rng rng(5);
  for (const std::uint64_t m : {0ULL, 1ULL, 50ULL, 300ULL}) {
    const Graph g = gnm(50, m, rng);
    EXPECT_EQ(g.m(), m);
    EXPECT_EQ(g.n(), 50u);
  }
}

TEST(Gnm, FullGraph) {
  support::Rng rng(5);
  const Graph g = gnm(10, 45, rng);
  EXPECT_EQ(g.m(), 45u);
}

TEST(Gnm, TooManyEdgesRejected) {
  support::Rng rng(5);
  EXPECT_THROW(gnm(10, 46, rng), std::invalid_argument);
}

TEST(Gnm, Deterministic) {
  support::Rng a(11);
  support::Rng b(11);
  EXPECT_EQ(gnm(60, 100, a).edges(), gnm(60, 100, b).edges());
}

TEST(RandomRegular, DegreesAreExact) {
  support::Rng rng(7);
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    const Graph g = random_regular(50, d, rng);
    for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(g.degree(v), d);
  }
}

TEST(RandomRegular, OddProductRejected) {
  support::Rng rng(7);
  EXPECT_THROW(random_regular(5, 3, rng), std::invalid_argument);
}

TEST(RandomRegular, DegreeTooLargeRejected) {
  support::Rng rng(7);
  EXPECT_THROW(random_regular(4, 4, rng), std::invalid_argument);
}

TEST(RandomRegular, ZeroDegree) {
  support::Rng rng(7);
  const Graph g = random_regular(6, 0, rng);
  EXPECT_EQ(g.m(), 0u);
}

TEST(EdgeProbability, MatchesFormula) {
  // p = c ln n / n^δ.
  EXPECT_NEAR(edge_probability(1000, 2.0, 1.0), 2.0 * std::log(1000.0) / 1000.0, 1e-12);
  EXPECT_NEAR(edge_probability(1024, 3.0, 0.5), 3.0 * std::log(1024.0) / 32.0, 1e-12);
}

TEST(EdgeProbability, ClampsToOne) {
  EXPECT_DOUBLE_EQ(edge_probability(4, 100.0, 0.1), 1.0);
}

TEST(EdgeProbability, RejectsBadParameters) {
  EXPECT_THROW(edge_probability(1, 2.0, 0.5), std::invalid_argument);
  EXPECT_THROW(edge_probability(100, -1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(edge_probability(100, 2.0, 0.0), std::invalid_argument);
  EXPECT_THROW(edge_probability(100, 2.0, 1.5), std::invalid_argument);
}

TEST(StructuredGraphs, CycleGraph) {
  const Graph g = cycle_graph(5);
  EXPECT_EQ(g.m(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(4, 0));
}

TEST(StructuredGraphs, CompleteGraph) {
  const Graph g = complete_graph(6);
  EXPECT_EQ(g.m(), 15u);
  EXPECT_EQ(g.max_degree(), 5u);
}

TEST(StructuredGraphs, StarAndPath) {
  EXPECT_EQ(star_graph(7).m(), 6u);
  EXPECT_EQ(star_graph(7).max_degree(), 6u);
  EXPECT_EQ(path_graph(7).m(), 6u);
  EXPECT_EQ(path_graph(7).max_degree(), 2u);
}

TEST(StructuredGraphs, PetersenIsCubicAndConnected) {
  const Graph g = petersen_graph();
  EXPECT_EQ(g.n(), 10u);
  EXPECT_EQ(g.m(), 15u);
  for (NodeId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_TRUE(is_connected(g));
}

TEST(StructuredGraphs, CompleteBipartite) {
  const Graph g = complete_bipartite_graph(3, 4);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.m(), 12u);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 3));   // across
}

}  // namespace
}  // namespace dhc::graph
