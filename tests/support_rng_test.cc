// Unit tests for dhc::support::Rng — determinism, distribution sanity,
// stream independence, and the sampling helpers used by the generators.
#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace dhc::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // xoshiro must not be seeded into the all-zero state; outputs must vary.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(r.next_u64());
  EXPECT_GT(values.size(), 90u);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng r(11);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBound)];
  // Each bucket expects 10000; allow 5% relative deviation (>6 sigma).
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<int>(kBound), 500);
  }
}

TEST(Rng, UniformInclusiveRange) {
  Rng r(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformEmptyRangeThrows) {
  Rng r(3);
  EXPECT_THROW(r.uniform(2, 1), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng r(6);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Rng, GeometricSkipMeanMatchesTheory) {
  Rng r(8);
  const double p = 0.1;
  const double log1mp = std::log1p(-p);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += static_cast<double>(r.geometric_skip(log1mp));
  // E[floor(ln U / ln(1-p))] = (1-p)/p = 9 for p = 0.1.
  EXPECT_NEAR(sum / kDraws, 9.0, 0.3);
}

TEST(Rng, PickReturnsElementAndCoversAll) {
  Rng r(13);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(r.pick(std::span<const int>(items)));
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(Rng, PickEmptyThrows) {
  Rng r(13);
  const std::vector<int> empty;
  EXPECT_THROW(r.pick(std::span<const int>(empty)), std::invalid_argument);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng r(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng r(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  r.shuffle(std::span<int>(v));
  EXPECT_NE(v, original);  // probability 1/100! of flaking
}

TEST(Rng, SampleDistinctProducesDistinctValuesInRange) {
  Rng r(19);
  const auto sample = r.sample_distinct(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto x : sample) EXPECT_LT(x, 100u);
}

TEST(Rng, SampleDistinctFullRange) {
  Rng r(19);
  const auto sample = r.sample_distinct(10, 10);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleDistinctTooManyThrows) {
  Rng r(19);
  EXPECT_THROW(r.sample_distinct(5, 6), std::invalid_argument);
}

TEST(Rng, StreamsAreDeterministicAndDistinct) {
  const Rng parent(99);
  Rng s0a = parent.stream(0);
  Rng s0b = parent.stream(0);
  Rng s1 = parent.stream(1);
  int equal01 = 0;
  for (int i = 0; i < 500; ++i) {
    const auto a = s0a.next_u64();
    EXPECT_EQ(a, s0b.next_u64());
    if (a == s1.next_u64()) ++equal01;
  }
  EXPECT_LT(equal01, 3);
}

TEST(Rng, ManyStreamsPairwiseDistinctPrefix) {
  const Rng parent(123);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Rng s = parent.stream(i);
    firsts.insert(s.next_u64());
  }
  EXPECT_EQ(firsts.size(), 1000u);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace dhc::support
