// Shared test helper: a per-node activation journal for shard-invariance
// tests (congest_shard_test, congest_fuzz_test).
//
// Sharded rounds step nodes concurrently, so test protocols may not write
// to a shared log stream; instead each node appends (round, line) records
// to its own journal (self-indexed — the same discipline production
// protocols follow), and flatten() k-way-merges them afterwards in
// (round asc, node asc) order — exactly the order the sequential stepper
// (and the fuzz suite's reference model) emits lines in.  Keeping this
// merge in one place means both suites pin the same flattening semantics.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dhc::congest::testutil {

class PerNodeJournal {
 public:
  explicit PerNodeJournal(std::size_t n) : entries_(n) {}

  /// Appends a line for `node` at `round`; a node's calls must come in
  /// nondecreasing round order (one activation per round guarantees it).
  void append(std::size_t node, std::uint64_t round, std::string line) {
    entries_[node].emplace_back(round, std::move(line));
  }

  /// All lines in (round asc, node asc) order, newline-terminated.
  std::string flatten() const {
    const std::size_t n = entries_.size();
    std::vector<std::size_t> pos(n, 0);
    std::string out;
    while (true) {
      std::uint64_t round = static_cast<std::uint64_t>(-1);
      for (std::size_t v = 0; v < n; ++v) {
        if (pos[v] < entries_[v].size()) {
          round = std::min(round, entries_[v][pos[v]].first);
        }
      }
      if (round == static_cast<std::uint64_t>(-1)) break;
      for (std::size_t v = 0; v < n; ++v) {
        if (pos[v] < entries_[v].size() && entries_[v][pos[v]].first == round) {
          out += entries_[v][pos[v]].second;
          out += '\n';
          ++pos[v];
        }
      }
    }
    return out;
  }

 private:
  std::vector<std::vector<std::pair<std::uint64_t, std::string>>> entries_;
};

}  // namespace dhc::congest::testutil
