// Arena: the bump allocator backing the solvers' flattened per-node slabs.
// Pins the contracts the flattening relies on: value-initialized disjoint
// spans, live/peak byte accounting, exact blocks for oversized requests, and
// alignment across mixed element types.
#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>

namespace dhc::support {
namespace {

TEST(Arena, AllocatesValueInitializedDisjointSpans) {
  Arena arena(/*block_bytes=*/256);
  std::span<std::uint32_t> a = arena.alloc_array<std::uint32_t>(10);
  std::span<std::uint32_t> b = arena.alloc_array<std::uint32_t>(10);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 10u);
  for (std::uint32_t x : a) EXPECT_EQ(x, 0u);
  for (std::uint32_t x : b) EXPECT_EQ(x, 0u);
  std::iota(a.begin(), a.end(), 100u);
  std::iota(b.begin(), b.end(), 900u);
  EXPECT_EQ(a[0], 100u);
  EXPECT_EQ(a[9], 109u);
  EXPECT_EQ(b[0], 900u);
  EXPECT_EQ(b[9], 909u);
}

TEST(Arena, TracksLiveAndPeakBytes) {
  Arena arena(/*block_bytes=*/1024);
  EXPECT_EQ(arena.bytes_live(), 0u);
  arena.alloc_array<std::uint64_t>(8);
  EXPECT_EQ(arena.bytes_live(), 64u);
  arena.alloc_array<std::uint8_t>(3);
  EXPECT_EQ(arena.bytes_live(), 67u);
  EXPECT_EQ(arena.bytes_peak(), 67u);
  arena.release();
  EXPECT_EQ(arena.bytes_live(), 0u);
  // Peak survives release: it is a lifetime high-water mark.
  EXPECT_EQ(arena.bytes_peak(), 67u);
  arena.alloc_array<std::uint8_t>(5);
  EXPECT_EQ(arena.bytes_live(), 5u);
  EXPECT_EQ(arena.bytes_peak(), 67u);
}

TEST(Arena, OversizedRequestGetsExactBlock) {
  Arena arena(/*block_bytes=*/64);
  std::span<std::uint32_t> big = arena.alloc_array<std::uint32_t>(1 << 16);
  ASSERT_EQ(big.size(), std::size_t{1} << 16);
  const std::size_t payload = (std::size_t{1} << 16) * sizeof(std::uint32_t);
  EXPECT_EQ(arena.bytes_live(), payload);
  // No geometric rounding: a 256 KB slab must not reserve 512 KB.
  EXPECT_GE(arena.bytes_reserved(), payload);
  EXPECT_LE(arena.bytes_reserved(), payload + 64 + alignof(std::uint32_t));
  big[0] = 7;
  big[big.size() - 1] = 9;
  EXPECT_EQ(big[0], 7u);
  EXPECT_EQ(big[big.size() - 1], 9u);
}

TEST(Arena, AlignsMixedTypes) {
  Arena arena(/*block_bytes=*/128);
  arena.alloc_array<std::uint8_t>(1);
  std::span<std::uint64_t> wide = arena.alloc_array<std::uint64_t>(4);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(wide.data()) % alignof(std::uint64_t), 0u);
  wide[3] = 0xdeadbeefULL;
  EXPECT_EQ(wide[3], 0xdeadbeefULL);
}

TEST(Arena, ZeroCountReturnsEmptySpan) {
  Arena arena;
  std::span<std::uint32_t> empty = arena.alloc_array<std::uint32_t>(0);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(arena.bytes_live(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
}

}  // namespace
}  // namespace dhc::support
