// Golden-artifact test for the dhc_run pipeline: runs a tiny scenario
// in-process through the exact stages the CLI uses (spec → expand →
// run_trials → aggregate → write_json/write_csv) and pins the artifact
// schema — field names and order, cell count, digest keys — so a schema
// regression fails here in ctest instead of in downstream scripts.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace dhc::runner {
namespace {

/// Every JSON object key in order of appearance: a quoted string directly
/// followed by a colon.  String *values* are followed by ',' or '}', never
/// ':', so the scan cannot mistake them for keys.
std::vector<std::string> json_keys(const std::string& json) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] != '"') continue;
    const auto end = json.find('"', i + 1);
    if (end == std::string::npos) break;
    std::size_t after = end + 1;
    while (after < json.size() && std::isspace(static_cast<unsigned char>(json[after]))) ++after;
    if (after < json.size() && json[after] == ':') {
      keys.push_back(json.substr(i + 1, end - i - 1));
    }
    i = end;
  }
  return keys;
}

struct Artifact {
  Scenario scenario;
  std::vector<ConfigSummary> summaries;
  std::string json;
  std::string csv;
};

Artifact tiny_artifact() {
  // The in-process equivalent of
  //   dhc_run --algos=sequential --sizes=16,24 --deltas=1.0 --cs=8 --seeds=2
  Artifact a;
  a.scenario = scenario_from_spec({{"name", "golden"},
                                   {"algos", "sequential"},
                                   {"sizes", "16,24"},
                                   {"deltas", "1.0"},
                                   {"cs", "8"},
                                   {"seeds", "2"}});
  const auto trials = expand(a.scenario);
  const auto results = run_trials(trials, {.threads = 2});
  a.summaries = aggregate(trials, results);
  std::ostringstream js, cs;
  write_json(js, a.scenario.name, a.summaries);
  a.json = js.str();
  write_csv(cs, a.summaries);
  a.csv = cs.str();
  return a;
}

TEST(Artifact, JsonSchemaIsPinned) {
  const Artifact a = tiny_artifact();
  ASSERT_EQ(a.summaries.size(), 2u);  // 2 sizes × 1 algo × 1 delta × 1 c

  const auto keys = json_keys(a.json);
  ASSERT_GE(keys.size(), 2u);
  EXPECT_EQ(keys[0], "scenario");
  EXPECT_EQ(keys[1], "configs");

  // Per-config schema: the fixed prefix, then one six-key digest per
  // measurement, then the open-ended stats map.
  const std::vector<std::string> config_prefix = {
      "algo",   "family",    "n",     "delta",     "c",        "merge",
      "machines", "bandwidth", "trials", "successes", "success_rate"};
  const std::vector<std::string> digest_keys = {"count", "mean", "median", "p95", "min", "max"};
  const std::vector<std::string> metrics = {"rounds", "messages", "bits", "memory"};

  std::size_t cursor = 2;
  for (std::size_t cell = 0; cell < a.summaries.size(); ++cell) {
    for (const auto& want : config_prefix) {
      ASSERT_LT(cursor, keys.size()) << "cell " << cell;
      EXPECT_EQ(keys[cursor++], want) << "cell " << cell;
    }
    for (const auto& metric : metrics) {
      ASSERT_LT(cursor, keys.size());
      EXPECT_EQ(keys[cursor++], metric) << "cell " << cell;
      for (const auto& want : digest_keys) {
        ASSERT_LT(cursor, keys.size());
        EXPECT_EQ(keys[cursor++], want) << "cell " << cell << " metric " << metric;
      }
    }
    ASSERT_LT(cursor, keys.size());
    EXPECT_EQ(keys[cursor++], "stats") << "cell " << cell;
    // The stats map is algorithm-specific but always carries the instance
    // facts; skip its keys up to the next cell's "algo".
    std::size_t stats_begin = cursor;
    while (cursor < keys.size() && keys[cursor] != "algo") ++cursor;
    const std::vector<std::string> stat_keys(keys.begin() + stats_begin, keys.begin() + cursor);
    for (const char* fact : {"graph_m", "graph_connected", "mean_degree"}) {
      EXPECT_NE(std::find(stat_keys.begin(), stat_keys.end(), fact), stat_keys.end())
          << "cell " << cell << " missing instance fact " << fact;
    }
  }
  EXPECT_EQ(cursor, keys.size()) << "unexpected trailing keys";
}

TEST(Artifact, JsonCarriesScenarioNameAndCellValues) {
  const Artifact a = tiny_artifact();
  EXPECT_NE(a.json.find("\"scenario\": \"golden\""), std::string::npos);
  EXPECT_NE(a.json.find("\"algo\": \"sequential\""), std::string::npos);
  EXPECT_NE(a.json.find("\"n\": 16"), std::string::npos);
  EXPECT_NE(a.json.find("\"n\": 24"), std::string::npos);
  EXPECT_NE(a.json.find("\"trials\": 2"), std::string::npos);
}

TEST(Artifact, CsvHeaderIsPinned) {
  const Artifact a = tiny_artifact();
  const auto newline = a.csv.find('\n');
  ASSERT_NE(newline, std::string::npos);
  EXPECT_EQ(a.csv.substr(0, newline),
            "algo,family,n,delta,c,merge,machines,bandwidth,trials,successes,success_rate,"
            "rounds_mean,rounds_median,rounds_p95,messages_mean,messages_median,messages_p95,"
            "bits_median,memory_median");
  // One data row per cell after the header; every line is newline-terminated.
  ASSERT_EQ(a.csv.back(), '\n');
  const auto lines = static_cast<std::size_t>(std::count(a.csv.begin(), a.csv.end(), '\n'));
  EXPECT_EQ(lines, 1 + a.summaries.size());
}

}  // namespace
}  // namespace dhc::runner
