// Golden-artifact test for the dhc_run pipeline: runs a tiny scenario
// in-process through the exact stages the CLI uses (spec → expand →
// run_trials → aggregate → write_json/write_csv) and pins the artifact
// schema — field names and order, cell count, digest keys — so a schema
// regression fails here in ctest instead of in downstream scripts.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace dhc::runner {
namespace {

/// Every JSON object key in order of appearance: a quoted string directly
/// followed by a colon.  String *values* are followed by ',' or '}', never
/// ':', so the scan cannot mistake them for keys.
std::vector<std::string> json_keys(const std::string& json) {
  std::vector<std::string> keys;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] != '"') continue;
    const auto end = json.find('"', i + 1);
    if (end == std::string::npos) break;
    std::size_t after = end + 1;
    while (after < json.size() && std::isspace(static_cast<unsigned char>(json[after]))) ++after;
    if (after < json.size() && json[after] == ':') {
      keys.push_back(json.substr(i + 1, end - i - 1));
    }
    i = end;
  }
  return keys;
}

struct Artifact {
  Scenario scenario;
  std::vector<ConfigSummary> summaries;
  std::string json;
  std::string csv;
};

Artifact tiny_artifact() {
  // The in-process equivalent of
  //   dhc_run --algos=sequential --sizes=16,24 --deltas=1.0 --cs=8 --seeds=2
  Artifact a;
  a.scenario = scenario_from_spec({{"name", "golden"},
                                   {"algos", "sequential"},
                                   {"sizes", "16,24"},
                                   {"deltas", "1.0"},
                                   {"cs", "8"},
                                   {"seeds", "2"}});
  const auto trials = expand(a.scenario);
  const auto results = run_trials(trials, {.threads = 2});
  a.summaries = aggregate(trials, results);
  std::ostringstream js, cs;
  write_json(js, a.scenario.name, a.summaries);
  a.json = js.str();
  write_csv(cs, a.summaries);
  a.csv = cs.str();
  return a;
}

TEST(Artifact, JsonSchemaIsPinned) {
  const Artifact a = tiny_artifact();
  ASSERT_EQ(a.summaries.size(), 2u);  // 2 sizes × 1 algo × 1 delta × 1 c

  const auto keys = json_keys(a.json);
  ASSERT_GE(keys.size(), 2u);
  EXPECT_EQ(keys[0], "scenario");
  EXPECT_EQ(keys[1], "configs");

  // Per-config schema: the fixed prefix, then one six-key digest per
  // measurement, then the open-ended stats map.
  const std::vector<std::string> config_prefix = {
      "algo",   "model",  "family",    "n",     "delta",     "c",        "merge",
      "machines", "bandwidth", "trials", "successes", "success_rate"};
  const std::vector<std::string> digest_keys = {"count", "mean", "median", "p95", "min", "max"};
  const std::vector<std::string> metrics = {"rounds", "messages", "bits", "memory"};

  std::size_t cursor = 2;
  for (std::size_t cell = 0; cell < a.summaries.size(); ++cell) {
    for (const auto& want : config_prefix) {
      ASSERT_LT(cursor, keys.size()) << "cell " << cell;
      EXPECT_EQ(keys[cursor++], want) << "cell " << cell;
    }
    for (const auto& metric : metrics) {
      ASSERT_LT(cursor, keys.size());
      EXPECT_EQ(keys[cursor++], metric) << "cell " << cell;
      for (const auto& want : digest_keys) {
        ASSERT_LT(cursor, keys.size());
        EXPECT_EQ(keys[cursor++], want) << "cell " << cell << " metric " << metric;
      }
    }
    ASSERT_LT(cursor, keys.size());
    EXPECT_EQ(keys[cursor++], "stats") << "cell " << cell;
    // The stats map is algorithm-specific but always carries the instance
    // facts; skip its keys up to the next cell's "algo".
    std::size_t stats_begin = cursor;
    while (cursor < keys.size() && keys[cursor] != "algo") ++cursor;
    const std::vector<std::string> stat_keys(keys.begin() + stats_begin, keys.begin() + cursor);
    for (const char* fact : {"graph_m", "graph_connected", "mean_degree"}) {
      EXPECT_NE(std::find(stat_keys.begin(), stat_keys.end(), fact), stat_keys.end())
          << "cell " << cell << " missing instance fact " << fact;
    }
  }
  EXPECT_EQ(cursor, keys.size()) << "unexpected trailing keys";
}

TEST(Artifact, JsonCarriesScenarioNameAndCellValues) {
  const Artifact a = tiny_artifact();
  EXPECT_NE(a.json.find("\"scenario\": \"golden\""), std::string::npos);
  EXPECT_NE(a.json.find("\"algo\": \"sequential\""), std::string::npos);
  EXPECT_NE(a.json.find("\"model\": \"congest\""), std::string::npos);
  EXPECT_NE(a.json.find("\"n\": 16"), std::string::npos);
  EXPECT_NE(a.json.find("\"n\": 24"), std::string::npos);
  EXPECT_NE(a.json.find("\"trials\": 2"), std::string::npos);
}

TEST(Artifact, CsvHeaderIsPinned) {
  const Artifact a = tiny_artifact();
  const auto newline = a.csv.find('\n');
  ASSERT_NE(newline, std::string::npos);
  // Fixed columns, then the sorted union of stat-mean keys as `stat_<key>`
  // columns (for the pinned sequential scenario: its three solver counters
  // plus the three instance facts).
  EXPECT_EQ(a.csv.substr(0, newline),
            "algo,model,family,n,delta,c,merge,machines,bandwidth,trials,successes,"
            "success_rate,"
            "rounds_mean,rounds_median,rounds_p95,messages_mean,messages_median,messages_p95,"
            "bits_median,memory_median,"
            "stat_extensions,stat_graph_connected,stat_graph_m,stat_mean_degree,"
            "stat_rotations,stat_steps");
  // One data row per cell after the header; every line is newline-terminated.
  ASSERT_EQ(a.csv.back(), '\n');
  const auto lines = static_cast<std::size_t>(std::count(a.csv.begin(), a.csv.end(), '\n'));
  EXPECT_EQ(lines, 1 + a.summaries.size());
}

// The k-machine execution backend end to end through the runner: a model =
// kmachine scenario over two algorithms runs, aggregates converted rounds,
// and exports the pricing stats (busiest_link_peak above all) in both
// artifacts.
TEST(Artifact, KMachineModelArtifactsCarryPricingStats) {
  Artifact a;
  a.scenario = scenario_from_spec({{"name", "kmachine-golden"},
                                   {"algos", "dhc2,turau"},
                                   {"model", "kmachine"},
                                   {"sizes", "64"},
                                   {"deltas", "0.5"},
                                   {"cs", "4"},
                                   {"k_list", "2,4"},
                                   {"bandwidth", "8"},
                                   {"seeds", "2"}});
  const auto trials = expand(a.scenario);
  ASSERT_EQ(trials.size(), 8u);  // 2 algos × 2 machine counts × 2 seeds
  const auto results = run_trials(trials, {.threads = 2});
  a.summaries = aggregate(trials, results);
  std::ostringstream js, cs;
  write_json(js, a.scenario.name, a.summaries);
  a.json = js.str();
  write_csv(cs, a.summaries);
  a.csv = cs.str();

  EXPECT_NE(a.json.find("\"model\": \"kmachine\""), std::string::npos);
  for (const char* stat : {"kmachine_rounds", "congest_rounds", "cross_messages",
                           "local_messages", "busiest_link_peak"}) {
    EXPECT_NE(a.json.find(std::string("\"") + stat + "\": "), std::string::npos) << stat;
    EXPECT_NE(a.csv.find(std::string("stat_") + stat), std::string::npos) << stat;
  }
  for (const auto& s : a.summaries) {
    EXPECT_EQ(s.config.model, ExecutionModel::kKMachine);
    ASSERT_TRUE(s.stat_means.contains("busiest_link_peak"));
    if (s.successes > 0) {
      // Aggregated headline rounds are the *converted* k-machine rounds.
      EXPECT_GT(s.rounds.median, 0.0);
      EXPECT_GT(s.stat_means.at("busiest_link_peak"), 0.0);
    }
  }
}

}  // namespace
}  // namespace dhc::runner
