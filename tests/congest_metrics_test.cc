// Unit tests for Metrics accounting helpers — most importantly the
// phase_rounds() repeated-label semantics (DHC2 marks "merge" once per
// level, so a label's total must sum over every span carrying it).
#include "congest/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dhc::congest {
namespace {

TEST(Metrics, PhaseRoundsSumsRepeatedLabels) {
  Metrics m;
  m.rounds = 12;
  m.phase_marks = {{"a", 1}, {"b", 5}, {"a", 9}};
  // Spans: a = [1,5) + [9,13) = 4 + 4, b = [5,9) = 4 (last span ends at
  // rounds + 1).
  EXPECT_EQ(m.phase_rounds("a"), 8u);
  EXPECT_EQ(m.phase_rounds("b"), 4u);
  EXPECT_EQ(m.phase_rounds("missing"), 0u);
}

TEST(Metrics, PhaseRoundsSingleMarkCoversWholeRun) {
  Metrics m;
  m.rounds = 100;
  m.phase_marks = {{"all", 1}};
  EXPECT_EQ(m.phase_rounds("all"), 100u);
}

TEST(Metrics, PhaseRoundsNoMarks) {
  Metrics m;
  m.rounds = 7;
  EXPECT_EQ(m.phase_rounds("anything"), 0u);
}

TEST(Metrics, PhaseSpansPartitionTheRun) {
  // Whatever the labels, the per-label totals must partition [1, rounds+1):
  // sum over distinct labels == rounds.
  Metrics m;
  m.rounds = 445;
  m.phase_marks = {{"global_setup", 1}, {"partition_setup", 11}, {"dra", 23}, {"merge", 398}};
  EXPECT_EQ(m.phase_rounds("global_setup") + m.phase_rounds("partition_setup") +
                m.phase_rounds("dra") + m.phase_rounds("merge"),
            m.rounds);
}

TEST(Metrics, AccountedRoundsChargesBarriers) {
  Metrics m;
  m.rounds = 100;
  m.barrier_count = 18;
  m.barrier_cost_rounds = 4;
  EXPECT_EQ(m.accounted_rounds(), 172u);
}

TEST(NodeStatsMode, ToStringParseRoundTrip) {
  for (const NodeStatsMode mode :
       {NodeStatsMode::kFull, NodeStatsMode::kStreaming, NodeStatsMode::kOff}) {
    EXPECT_EQ(parse_node_stats_mode(to_string(mode)), mode);
  }
  EXPECT_THROW(parse_node_stats_mode("verbose"), std::invalid_argument);
}

TEST(Metrics, FinalizeNodeStatsFullIsExact) {
  Metrics m;
  m.node_stats_mode = NodeStatsMode::kFull;
  m.node_messages_sent = {1, 2, 3, 4, 100};
  m.node_messages_received = {5, 5, 5, 5, 5};
  m.node_peak_memory_words = {10, 20, 30, 40, 50};
  m.node_compute_ops = {0, 0, 0, 0, 7};
  m.finalize_node_stats();
  EXPECT_EQ(m.sent_summary.count, 5u);
  EXPECT_DOUBLE_EQ(m.sent_summary.sum, 110.0);
  EXPECT_DOUBLE_EQ(m.sent_summary.max, 100.0);
  EXPECT_DOUBLE_EQ(m.sent_summary.p50, 3.0);
  EXPECT_EQ(m.received_summary.count, 5u);
  EXPECT_DOUBLE_EQ(m.received_summary.p99, 5.0);
  EXPECT_DOUBLE_EQ(m.peak_memory_summary.max, 50.0);
  EXPECT_DOUBLE_EQ(m.compute_summary.sum, 7.0);
}

TEST(Metrics, FinalizeNodeStatsOffKeepsZeros) {
  Metrics m;
  m.node_stats_mode = NodeStatsMode::kOff;
  m.finalize_node_stats();
  EXPECT_EQ(m.sent_summary.count, 0u);
  EXPECT_EQ(m.received_summary.count, 0u);
  EXPECT_EQ(m.max_node_messages_sent(), 0u);
  EXPECT_EQ(m.max_node_peak_memory(), 0);
  EXPECT_EQ(m.max_node_compute(), 0u);
}

}  // namespace
}  // namespace dhc::congest
