// Unit tests for the CSR Graph core: construction, adjacency queries,
// canonicalization, induced subgraphs, and the CSR representation
// invariants the CONGEST hot path depends on (sorted deduplicated rows,
// degree-consistent offsets, iteration order matching a reference
// adjacency built independently with ordered sets).
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "support/rng.h"

namespace dhc::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(0, {});
  EXPECT_EQ(g.n(), 0u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, SingleNodeNoEdges) {
  const Graph g(1, {});
  EXPECT_EQ(g.n(), 1u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, TriangleBasics) {
  const Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 3u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, DuplicateAndReversedEdgesMerged) {
  const Graph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.m(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{7, 1}}), std::invalid_argument);
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}});
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, HasEdgeNegativeCases) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_THROW(g.has_edge(0, 4), std::invalid_argument);
}

TEST(Graph, EdgesRoundTripCanonical) {
  const std::vector<Edge> in{{2, 0}, {1, 3}, {0, 1}};
  const Graph g(4, in);
  const auto out = g.edges();
  EXPECT_EQ(out, (std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}}));
}

TEST(Graph, MaxDegreeStar) {
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(InducedSubgraph, PreservesInternalEdgesOnly) {
  // Square 0-1-2-3 plus diagonal 0-2; induce on {0, 1, 2}.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const std::vector<NodeId> nodes{0, 1, 2};
  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.n(), 3u);
  EXPECT_EQ(sub.graph.m(), 3u);  // edges 0-1, 1-2, 0-2
  EXPECT_EQ(sub.to_original, nodes);
  EXPECT_TRUE(sub.graph.has_edge(0, 2));
}

TEST(InducedSubgraph, RespectsNodeOrderMapping) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<NodeId> nodes{3, 1, 2};
  const auto sub = induced_subgraph(g, nodes);
  // new ids: 3->0, 1->1, 2->2; edges 1-2 (old) -> 1-2 (new), 2-3 (old) -> 2-0.
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_TRUE(sub.graph.has_edge(0, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 1));
}

TEST(InducedSubgraph, DuplicateNodesRejected) {
  const Graph g(3, {{0, 1}});
  const std::vector<NodeId> nodes{0, 0};
  EXPECT_THROW(induced_subgraph(g, nodes), std::invalid_argument);
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g(3, {{0, 1}});
  const std::vector<NodeId> nodes;
  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.n(), 0u);
}

// --- CSR representation invariants -----------------------------------------

// Reference adjacency built with ordered sets — deliberately independent of
// the CSR scatter/sort machinery inside Graph's constructor.
std::vector<std::vector<NodeId>> reference_adjacency(NodeId n, const std::vector<Edge>& edges) {
  std::vector<std::set<NodeId>> sets(n);
  for (const auto& [u, v] : edges) {
    sets[u].insert(v);
    sets[v].insert(u);
  }
  std::vector<std::vector<NodeId>> out(n);
  for (NodeId v = 0; v < n; ++v) out[v].assign(sets[v].begin(), sets[v].end());
  return out;
}

void expect_csr_invariants(const Graph& g, const std::vector<Edge>& edges) {
  const auto offsets = g.row_offsets();
  const auto adjacency = g.adjacency();
  ASSERT_EQ(offsets.size(), static_cast<std::size_t>(g.n()) + 1);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), adjacency.size());
  EXPECT_EQ(adjacency.size(), 2 * g.m());

  const auto reference = reference_adjacency(g.n(), edges);
  std::size_t degree_sum = 0;
  for (NodeId v = 0; v < g.n(); ++v) {
    const auto nb = g.neighbors(v);
    // Sorted, deduplicated, and degree-consistent with the offset table.
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    EXPECT_EQ(std::adjacent_find(nb.begin(), nb.end()), nb.end());
    EXPECT_EQ(nb.size(), g.degree(v));
    EXPECT_EQ(nb.size(), offsets[v + 1] - offsets[v]);
    degree_sum += nb.size();
    // Iteration order is pinned to the reference order — the guarantee the
    // representation change must not move (protocol RNG draws and message
    // order depend on it).
    ASSERT_EQ(nb.size(), reference[v].size()) << "degree mismatch at node " << v;
    EXPECT_TRUE(std::equal(nb.begin(), nb.end(), reference[v].begin()))
        << "neighbor order diverged at node " << v;
    // neighbor_rank agrees with the row layout for every present neighbor
    // and reports absences.
    for (std::size_t i = 0; i < nb.size(); ++i) EXPECT_EQ(g.neighbor_rank(v, nb[i]), i);
    EXPECT_EQ(g.neighbor_rank(v, v), Graph::kNoRank);
  }
  EXPECT_EQ(degree_sum, 2 * g.m());
}

TEST(GraphCsr, InvariantsOnHandBuiltGraphs) {
  const std::vector<Edge> edges{{4, 2}, {2, 4}, {0, 4}, {3, 1}, {1, 3}, {0, 1}, {2, 0}};
  expect_csr_invariants(Graph(5, edges), edges);
}

TEST(GraphCsr, InvariantsOnRandomGraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    support::Rng rng(seed);
    const NodeId n = 64 + static_cast<NodeId>(rng.below(64));
    std::vector<Edge> edges;
    const std::size_t want = 4 * n;
    for (std::size_t i = 0; i < want; ++i) {
      const auto u = static_cast<NodeId>(rng.below(n));
      const auto v = static_cast<NodeId>(rng.below(n));
      if (u != v) edges.emplace_back(u, v);  // duplicates + both orientations on purpose
    }
    expect_csr_invariants(Graph(n, edges), edges);
  }
}

TEST(GraphCsr, InvariantsOnGeneratorOutputs) {
  support::Rng rng(99);
  const Graph g = gnp(200, 0.1, rng);
  expect_csr_invariants(g, g.edges());
  support::Rng rng2(7);
  const Graph r = random_regular(120, 6, rng2);
  expect_csr_invariants(r, r.edges());
}

TEST(GraphCsr, NeighborRankMatchesHasEdge) {
  const Graph g(6, {{0, 1}, {0, 3}, {0, 5}, {2, 4}});
  EXPECT_EQ(g.neighbor_rank(0, 1), 0u);
  EXPECT_EQ(g.neighbor_rank(0, 3), 1u);
  EXPECT_EQ(g.neighbor_rank(0, 5), 2u);
  EXPECT_EQ(g.neighbor_rank(0, 2), Graph::kNoRank);
  EXPECT_EQ(g.neighbor_rank(1, 0), 0u);
  EXPECT_EQ(g.neighbor_rank(4, 2), 0u);
}

}  // namespace
}  // namespace dhc::graph
