// Unit tests for the CSR Graph core: construction, adjacency queries,
// canonicalization, and induced subgraphs.
#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace dhc::graph {
namespace {

TEST(Graph, EmptyGraph) {
  const Graph g(0, {});
  EXPECT_EQ(g.n(), 0u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, SingleNodeNoEdges) {
  const Graph g(1, {});
  EXPECT_EQ(g.n(), 1u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, TriangleBasics) {
  const Graph g(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 3u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, DuplicateAndReversedEdgesMerged) {
  const Graph g(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(g.m(), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
}

TEST(Graph, SelfLoopRejected) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, OutOfRangeEdgeRejected) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{7, 1}}), std::invalid_argument);
}

TEST(Graph, NeighborsAreSorted) {
  const Graph g(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}});
  const auto nb = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  EXPECT_EQ(nb.size(), 4u);
}

TEST(Graph, HasEdgeNegativeCases) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_THROW(g.has_edge(0, 4), std::invalid_argument);
}

TEST(Graph, EdgesRoundTripCanonical) {
  const std::vector<Edge> in{{2, 0}, {1, 3}, {0, 1}};
  const Graph g(4, in);
  const auto out = g.edges();
  EXPECT_EQ(out, (std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}}));
}

TEST(Graph, MaxDegreeStar) {
  const Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(g.max_degree(), 4u);
}

TEST(InducedSubgraph, PreservesInternalEdgesOnly) {
  // Square 0-1-2-3 plus diagonal 0-2; induce on {0, 1, 2}.
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  const std::vector<NodeId> nodes{0, 1, 2};
  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.n(), 3u);
  EXPECT_EQ(sub.graph.m(), 3u);  // edges 0-1, 1-2, 0-2
  EXPECT_EQ(sub.to_original, nodes);
  EXPECT_TRUE(sub.graph.has_edge(0, 2));
}

TEST(InducedSubgraph, RespectsNodeOrderMapping) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::vector<NodeId> nodes{3, 1, 2};
  const auto sub = induced_subgraph(g, nodes);
  // new ids: 3->0, 1->1, 2->2; edges 1-2 (old) -> 1-2 (new), 2-3 (old) -> 2-0.
  EXPECT_TRUE(sub.graph.has_edge(1, 2));
  EXPECT_TRUE(sub.graph.has_edge(0, 2));
  EXPECT_FALSE(sub.graph.has_edge(0, 1));
}

TEST(InducedSubgraph, DuplicateNodesRejected) {
  const Graph g(3, {{0, 1}});
  const std::vector<NodeId> nodes{0, 0};
  EXPECT_THROW(induced_subgraph(g, nodes), std::invalid_argument);
}

TEST(InducedSubgraph, EmptySelection) {
  const Graph g(3, {{0, 1}});
  const std::vector<NodeId> nodes;
  const auto sub = induced_subgraph(g, nodes);
  EXPECT_EQ(sub.graph.n(), 0u);
}

}  // namespace
}  // namespace dhc::graph
