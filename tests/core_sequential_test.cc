// Tests for the sequential solvers: exact backtracking against known graphs,
// and the Angluin–Valiant rotation algorithm against the exact oracle, the
// verifier, and Theorem 2's step bound.
#include "core/sequential.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

TEST(ExactSolver, CycleGraphHasItsCycle) {
  const Graph g = graph::cycle_graph(7);
  const auto cycle = exact_hamiltonian_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(graph::verify_cycle_order(g, *cycle).ok());
}

TEST(ExactSolver, CompleteGraph) {
  const Graph g = graph::complete_graph(8);
  const auto cycle = exact_hamiltonian_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(graph::verify_cycle_order(g, *cycle).ok());
}

TEST(ExactSolver, PetersenGraphIsNotHamiltonian) {
  // The canonical non-Hamiltonian 3-regular graph.
  EXPECT_FALSE(exact_hamiltonian_cycle(graph::petersen_graph()).has_value());
}

TEST(ExactSolver, PathAndStarAreNotHamiltonian) {
  EXPECT_FALSE(exact_hamiltonian_cycle(graph::path_graph(6)).has_value());
  EXPECT_FALSE(exact_hamiltonian_cycle(graph::star_graph(6)).has_value());
}

TEST(ExactSolver, CompleteBipartiteBalancedVsUnbalanced) {
  // K_{a,b} is Hamiltonian iff a == b >= 2.
  EXPECT_TRUE(exact_hamiltonian_cycle(graph::complete_bipartite_graph(3, 3)).has_value());
  EXPECT_TRUE(exact_hamiltonian_cycle(graph::complete_bipartite_graph(4, 4)).has_value());
  EXPECT_FALSE(exact_hamiltonian_cycle(graph::complete_bipartite_graph(3, 4)).has_value());
  EXPECT_FALSE(exact_hamiltonian_cycle(graph::complete_bipartite_graph(2, 5)).has_value());
}

TEST(ExactSolver, TinyGraphs) {
  EXPECT_FALSE(exact_hamiltonian_cycle(Graph(0, {})).has_value());
  EXPECT_FALSE(exact_hamiltonian_cycle(Graph(2, {{0, 1}})).has_value());
  const auto triangle = exact_hamiltonian_cycle(graph::cycle_graph(3));
  EXPECT_TRUE(triangle.has_value());
}

TEST(ExactSolver, CycleWithChords) {
  // A cycle plus chords stays Hamiltonian.
  auto edges = graph::cycle_graph(9).edges();
  edges.emplace_back(0, 4);
  edges.emplace_back(2, 7);
  const Graph g(9, edges);
  const auto cycle = exact_hamiltonian_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(graph::verify_cycle_order(g, *cycle).ok());
}

TEST(Rotation, SolvesCompleteGraph) {
  support::Rng rng(1);
  const Graph g = graph::complete_graph(32);
  const auto r = rotation_hamiltonian_cycle(g, rng);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_order(g, r.cycle).ok());
  EXPECT_EQ(r.stats.extensions, 31u);
}

TEST(Rotation, TinyGraphFailsGracefully) {
  support::Rng rng(1);
  const Graph g(2, {{0, 1}});
  const auto r = rotation_hamiltonian_cycle(g, rng);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(Rotation, StarGraphFailsWithoutCrashing) {
  support::Rng rng(2);
  const auto r = rotation_hamiltonian_cycle(graph::star_graph(16), rng);
  EXPECT_FALSE(r.success);
}

TEST(Rotation, SparseDisconnectedGraphFails) {
  support::Rng rng(3);
  const Graph g(10, {{0, 1}, {1, 2}, {2, 0}, {4, 5}});
  const auto r = rotation_hamiltonian_cycle(g, rng);
  EXPECT_FALSE(r.success);
}

TEST(Rotation, DeterministicGivenRngState) {
  const Graph g = graph::complete_graph(20);
  support::Rng a(42);
  support::Rng b(42);
  const auto ra = rotation_hamiltonian_cycle(g, a);
  const auto rb = rotation_hamiltonian_cycle(g, b);
  ASSERT_TRUE(ra.success);
  EXPECT_EQ(ra.cycle.order, rb.cycle.order);
  EXPECT_EQ(ra.stats.steps, rb.stats.steps);
}

TEST(Rotation, StepBudgetOverrideIsRespected) {
  support::Rng rng(4);
  const Graph g = graph::complete_graph(64);
  RotationConfig cfg;
  cfg.max_steps_override = 5;  // far too few to build a 64-cycle
  const auto r = rotation_hamiltonian_cycle(g, rng, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.stats.steps, 5u);
  EXPECT_NE(r.failure_reason.find("budget"), std::string::npos);
}

TEST(Rotation, Theorem2BoundFormula) {
  EXPECT_NEAR(theorem2_step_bound(1000), 7.0 * 1000.0 * std::log(1000.0), 1e-9);
}

// Theorem 2 regime: G(n, p) with p = c·ln n / n.  The paper proves success
// whp for c ≥ 86 within 7·n·ln n steps; practically much smaller c works.
class RotationOnGnp : public ::testing::TestWithParam<std::tuple<std::uint64_t, graph::NodeId>> {};

TEST_P(RotationOnGnp, FindsVerifiedCycleWithinStepBound) {
  const auto [seed, n] = GetParam();
  support::Rng graph_rng(seed);
  const double p = graph::edge_probability(n, /*c=*/6.0, /*delta=*/1.0);
  const Graph g = graph::gnp(n, p, graph_rng);
  support::Rng algo_rng(seed + 1000);
  const auto r = rotation_hamiltonian_cycle(g, algo_rng);
  ASSERT_TRUE(r.success) << "n=" << n << " seed=" << seed << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_order(g, r.cycle).ok());
  // Theorem 2's step bound (the constant 7 holds for c >= 86; with c = 6 we
  // still comfortably observe it at these sizes).
  EXPECT_LE(static_cast<double>(r.stats.steps), theorem2_step_bound(n));
  // Every step is an extension or a rotation except the final closing draw.
  EXPECT_EQ(r.stats.extensions + r.stats.rotations + 1, r.stats.steps);
  EXPECT_EQ(r.stats.extensions, static_cast<std::uint64_t>(n) - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RotationOnGnp,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values<graph::NodeId>(64, 256, 1024)));

TEST(Rotation, AgreesWithExactOracleOnSmallRandomGraphs) {
  // Where the exact solver says "no cycle", rotation must fail; where the
  // rotation succeeds, the cycle must verify.
  support::Rng meta(7);
  for (int trial = 0; trial < 30; ++trial) {
    support::Rng graph_rng(meta.next_u64());
    const graph::NodeId n = 12;
    const Graph g = graph::gnp(n, 0.3, graph_rng);
    support::Rng algo_rng(meta.next_u64());
    const auto r = rotation_hamiltonian_cycle(g, algo_rng);
    const auto exact = exact_hamiltonian_cycle(g);
    if (r.success) {
      EXPECT_TRUE(exact.has_value());
      EXPECT_TRUE(graph::verify_cycle_order(g, r.cycle).ok());
    }
    if (!exact.has_value()) {
      EXPECT_FALSE(r.success);
    }
  }
}

}  // namespace
}  // namespace dhc::core
