// Lint fixture: every construct here is legal — the scanner must report
// ZERO findings for this file.  Each line is a near-miss for one rule.
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace fixture {

struct Node {
  int id;
  // R5 near-miss: static member FUNCTIONS are fine (no mutable state).
  static Node make(int id) { return Node{id}; }
};

// R5 near-miss: immutable statics are fine.
static constexpr std::uint64_t kWheelSize = 1024;
static const char* kLabel = "fixture";

// R4 near-miss: pointers as VALUES are fine; only pointer KEYS are ASLR.
std::map<std::uint64_t, Node*> node_by_id;

// R3 near-miss: steady_clock is the sanctioned measurement clock, and
// identifiers merely containing banned words (time_point, wall_time,
// rand_state) must not trip the call-site matchers.
double wall_time() {
  const std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  std::uint64_t rand_state = static_cast<std::uint64_t>(t0.time_since_epoch().count());
  rand_state ^= rand_state >> 31;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// R1/R2/R3 near-miss: banned tokens in comments and string literals are
// stripped before matching: thread_local, unordered_map, rand(), time(...).
const std::string kProse =
    "thread_local unordered_set rand( time( system_clock random_device";

// R5 near-miss: static_cast / static_assert share a prefix, not the keyword.
static_assert(kWheelSize == 1024, "fixture invariant");
int widen(short x) { return static_cast<int>(x); }

}  // namespace fixture
