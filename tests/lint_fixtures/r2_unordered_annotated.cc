// Lint fixture: R2 suppressed by an inline annotation with a written reason.
#include <cstdint>
#include <unordered_set>

namespace fixture {

bool seen_before(std::uint64_t key) {
  // dhc-lint: allow(R2) -- membership-only rejection filter; never iterated
  static thread_local std::unordered_set<std::uint64_t> seen;  // dhc-lint: allow(R1,R5) -- fixture exercises same-line multi-rule suppression
  return !seen.insert(key).second;
}

}  // namespace fixture
