// Lint fixture: R5 suppressed by an inline annotation with a written reason.
#include <cstdint>

namespace fixture {

int step() {
  // dhc-lint: allow(R5) -- written once under the spawn-once lock before workers start
  static std::uint64_t rounds_seen = 0;
  return static_cast<int>(++rounds_seen);
}

}  // namespace fixture
