// Lint fixture: R4 suppressed by an inline annotation with a written reason.
#include <set>

namespace fixture {

struct Node {
  int id;
};

// dhc-lint: allow(R4) -- debug-only leak tracker; contents counted, never iterated in order
std::set<Node*> live_nodes;

}  // namespace fixture
