// Lint fixture: R2 must trip.  Never compiled — scanned by tools_dhc_lint_test.
//
// Draining a hash map on the step path makes message order depend on the
// libstdc++ hash policy — a different standard library is a different run.
#include <cstdint>
#include <unordered_map>

namespace fixture {

int drain() {
  std::unordered_map<std::uint32_t, int> pending;
  pending[3] = 1;
  int sum = 0;
  for (const auto& [node, count] : pending) sum += count;
  return sum;
}

}  // namespace fixture
