// Lint fixture: R3 must trip (five banned sources).  Never compiled.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace fixture {

unsigned roll() {
  std::srand(42);
  unsigned sum = static_cast<unsigned>(std::rand());
  sum += static_cast<unsigned>(time(nullptr));
  std::random_device entropy;
  sum += entropy();
  sum += static_cast<unsigned>(
      std::chrono::system_clock::now().time_since_epoch().count());
  sum += static_cast<unsigned>(
      std::chrono::high_resolution_clock::now().time_since_epoch().count());
  return sum;
}

}  // namespace fixture
