// Lint fixture: R3 suppressed by inline annotations with written reasons.
#include <chrono>
#include <random>

namespace fixture {

unsigned seed_material() {
  // dhc-lint: allow(R3) -- operator-facing default seed; every trial logs the resolved value
  std::random_device entropy;
  unsigned sum = entropy();
  sum += static_cast<unsigned>(
      // dhc-lint: allow(R3) -- wall-clock timestamp for the artifact header, never a seed
      std::chrono::system_clock::now().time_since_epoch().count());
  return sum;
}

}  // namespace fixture
