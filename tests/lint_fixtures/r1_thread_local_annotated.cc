// Lint fixture: R1 suppressed by an inline annotation with a written reason.
namespace fixture {

// dhc-lint: allow(R1) -- reset at trial entry and merged serially before any read
thread_local int upcast_scratch = 0;

int touch() { return ++upcast_scratch; }

}  // namespace fixture
