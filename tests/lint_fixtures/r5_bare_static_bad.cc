// Lint fixture: R5 must trip.  Never compiled — scanned by tools_dhc_lint_test.
//
// A bare mutable static on the step path is shared by every worker thread
// and every trial: a data race under shards > 1 and cross-trial coupling
// even at shards = 1.  Aggregates belong in ShardCounter / serial merges.
#include <cstdint>

namespace fixture {

int step() {
  static std::uint64_t rounds_seen = 0;
  return static_cast<int>(++rounds_seen);
}

}  // namespace fixture
