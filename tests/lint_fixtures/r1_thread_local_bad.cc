// Lint fixture: R1 must trip.  Never compiled — scanned by tools_dhc_lint_test.
//
// The shape of the PR 5 bug: a per-thread scratch buffer on the persistent
// WorkerPool outlives the trial that grew it, so trial N+1 observes trial N.
namespace fixture {

thread_local int upcast_scratch = 0;

int touch() { return ++upcast_scratch; }

}  // namespace fixture
