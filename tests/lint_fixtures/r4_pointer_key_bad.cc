// Lint fixture: R4 must trip.  Never compiled — scanned by tools_dhc_lint_test.
//
// Pointer comparison order is the allocator's address order, i.e. ASLR:
// iterating this map visits nodes in a different order every process run.
#include <map>
#include <set>

namespace fixture {

struct Node {
  int id;
};

int sum_ranks(const std::map<const Node*, int>& rank_by_node) {
  int sum = 0;
  for (const auto& [node, rank] : rank_by_node) sum += rank;
  return sum;
}

std::set<Node*> live_nodes;

}  // namespace fixture
