// Tests for the distributed rotation algorithm (paper Algorithm 1 /
// Theorem 2): end-to-end cycles on G(n,p), CONGEST compliance, broadcast
// mode equivalence, determinism, failure injection, and step accounting.
#include "core/dra.h"

#include <gtest/gtest.h>

#include "core/sequential.h"
#include "graph/algorithms.h"
#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

Graph dense_gnp(graph::NodeId n, double c, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, c, 1.0), rng);
}

TEST(Dra, SolvesCompleteGraph) {
  const Graph g = graph::complete_graph(24);
  const auto r = run_dra(g, /*seed=*/1);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

TEST(Dra, SolvesTriangle) {
  const Graph g = graph::cycle_graph(3);
  const auto r = run_dra(g, 2);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

TEST(Dra, TinyGraphFails) {
  const Graph g(2, {{0, 1}});
  const auto r = run_dra(g, 1);
  EXPECT_FALSE(r.success);
}

TEST(Dra, StarGraphFailsGracefully) {
  const auto r = run_dra(graph::star_graph(12), 3);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);  // aborts, doesn't spin
}

TEST(Dra, DisconnectedGraphFails) {
  // Two triangles: each component "closes" a 3-cycle, but the global result
  // is not a Hamiltonian cycle of the 6-node graph.
  const Graph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const auto r = run_dra(g, 4);
  if (r.success) {
    EXPECT_FALSE(graph::verify_cycle_incidence(g, r.cycle).ok());
  }
}

TEST(Dra, DeterministicAcrossRuns) {
  const Graph g = dense_gnp(128, 6.0, 11);
  const auto a = run_dra(g, 42);
  const auto b = run_dra(g, 42);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Dra, DifferentSeedsGiveDifferentCycles) {
  const Graph g = graph::complete_graph(32);
  const auto a = run_dra(g, 1);
  const auto b = run_dra(g, 2);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_NE(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Dra, FloodAndTreeBroadcastsAgreeOnOutcome) {
  const Graph g = dense_gnp(96, 6.0, 13);
  DraConfig tree_cfg;
  tree_cfg.broadcast = BroadcastMode::kTree;
  DraConfig flood_cfg;
  flood_cfg.broadcast = BroadcastMode::kFlood;
  const auto rt = run_dra(g, 7, tree_cfg);
  const auto rf = run_dra(g, 7, flood_cfg);
  ASSERT_TRUE(rt.success) << rt.failure_reason;
  ASSERT_TRUE(rf.success) << rf.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, rt.cycle).ok());
  EXPECT_TRUE(graph::verify_cycle_incidence(g, rf.cycle).ok());
  // Flooding pushes a copy of every rotation across every edge; the tree
  // broadcast is strictly cheaper in messages.
  EXPECT_LT(rt.metrics.messages, rf.metrics.messages);
}

TEST(Dra, StepBudgetInjectionAbortsInsteadOfHanging) {
  DraConfig cfg;
  cfg.step_multiplier = 0.01;  // absurdly small budget
  const auto r = run_dra(graph::complete_graph(64), 5, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
  EXPECT_NE(r.failure_reason.find("aborted"), std::string::npos);
}

TEST(Dra, StatsAreConsistent) {
  const Graph g = dense_gnp(128, 6.0, 17);
  const auto r = run_dra(g, 3);
  ASSERT_TRUE(r.success);
  EXPECT_EQ(r.stat("extensions"), 127.0);  // n-1 path growths
  EXPECT_GE(r.stat("steps"), 128.0);       // at least n steps to close
  EXPECT_GT(r.metrics.rounds, 0u);
  EXPECT_GT(r.metrics.messages, 0u);
}

TEST(Dra, MemoryStaysLinearInDegree) {
  // Fully-distributed claim at the DRA level: peak node memory is O(deg),
  // far below n for sparse graphs.
  const Graph g = dense_gnp(512, 5.0, 19);
  const auto r = run_dra(g, 23);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const auto max_mem = static_cast<std::size_t>(r.metrics.max_node_peak_memory());
  EXPECT_LE(max_mem, 3 * g.max_degree() + 8);
}

// Theorem 2 sweep: p = c ln n / n with c = 6; every seed must produce a
// verified cycle within the step bound.
class DraOnGnp : public ::testing::TestWithParam<std::tuple<std::uint64_t, graph::NodeId>> {};

TEST_P(DraOnGnp, FindsVerifiedCycle) {
  const auto [seed, n] = GetParam();
  const Graph g = dense_gnp(n, 6.0, seed);
  const auto r = run_dra(g, seed * 31 + 7);
  ASSERT_TRUE(r.success) << "n=" << n << " seed=" << seed << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_LE(r.stat("steps"), theorem2_step_bound(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DraOnGnp,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                       ::testing::Values<graph::NodeId>(48, 96, 192, 384)));

}  // namespace
}  // namespace dhc::core
