// Shard-invariance suite for the sharded round engine (DESIGN.md §5).
//
// The engine's contract is *bitwise* equivalence: for any shard count, a run
// must produce the same per-node inbox logs (content and order), the same
// metrics, the same wake-up timing (including far wake-ups that overflow the
// wheel), and — when an observer is attached — the same event stream in the
// same order.  These tests drive scripted protocols whose per-node state is
// strictly self-indexed (the discipline sharding relies on) and compare
// every observable against the shards=1 run.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "congest/network.h"
#include "graph/generators.h"
#include "per_node_journal.h"

namespace dhc::congest {
namespace {

using graph::Graph;

constexpr std::uint32_t kShardCounts[] = {1, 2, 4, 8};

// A deterministic scripted protocol: each activation logs its inbox into a
// per-node journal (self-indexed — shard-safe) and acts as a pure function
// of (seed, node, round): sends to a pseudo-random subset of neighbors,
// occasionally arms a short or far (beyond-the-wheel) wake-up.
class JournalProtocol : public Protocol {
 public:
  JournalProtocol(NodeId n, std::uint64_t seed, std::uint64_t horizon)
      : seed_(seed), horizon_(horizon), journal_(n) {}

  void begin(Context& ctx) override {
    if (ctx.self() % 3 == 0) act(ctx);
  }

  void step(Context& ctx) override {
    std::ostringstream line;
    line << "r" << ctx.round() << " v" << ctx.self() << ":";
    for (const Message& m : ctx.inbox()) {
      line << " (" << m.from << "," << m.tag << "," << m.data[0] << ")";
    }
    journal_.append(ctx.self(), ctx.round(), line.str());
    act(ctx);
  }

  /// All journal lines flattened in (round, node) order — the sequential
  /// activation order.
  std::string flattened() const { return journal_.flatten(); }

 private:
  void act(Context& ctx) {
    const NodeId v = ctx.self();
    const std::uint64_t round = ctx.round();
    if (round >= horizon_) return;
    std::uint64_t state = seed_ ^ (0x9e3779b97f4a7c15ULL * (v + 1)) ^ (round << 18);
    const auto nb = ctx.neighbors();
    for (std::size_t i = 0; i < nb.size(); ++i) {
      if ((support::splitmix64(state) & 3) == 0) {
        ctx.send_to_rank(i, Message::make(9, {static_cast<std::int64_t>(round + i)}));
      }
    }
    // Mix in this node's private RNG so shard invariance also covers the
    // per-node stream positions.
    const std::uint64_t coin = ctx.rng().below(7);
    if (coin == 1) ctx.wake_in(1 + (support::splitmix64(state) % 3));
    if (coin == 2) ctx.wake_in(1100 + (support::splitmix64(state) % 64));  // far heap
  }

  std::uint64_t seed_;
  std::uint64_t horizon_;
  testutil::PerNodeJournal journal_;
};

/// Records the full observer event stream (order-sensitive).
class EventRecorder : public MessageObserver {
 public:
  void on_send(NodeId from, NodeId to, std::uint64_t round) override {
    log_.push_back({from, to, round});
  }
  // Deliberately no on_events override: exercises the default batch replay.
  const std::vector<SendEvent>& log() const { return log_; }

 private:
  std::vector<SendEvent> log_;
};

struct Observed {
  std::string journal;
  Metrics metrics;
  std::vector<SendEvent> events;
};

Observed run_once(const Graph& g, std::uint64_t seed, std::uint32_t shards,
                  bool with_observer) {
  NetworkConfig cfg;
  cfg.seed = seed * 77 + 5;
  cfg.shards = shards;
  cfg.shard_grain = 1;  // engage sharding even on tiny rounds
  EventRecorder recorder;
  if (with_observer) cfg.observer = &recorder;
  Network net(g, cfg);
  JournalProtocol protocol(g.n(), seed, /*horizon=*/40);
  Observed out;
  out.metrics = net.run(protocol);
  out.journal = protocol.flattened();
  out.events = recorder.log();
  return out;
}

void expect_metrics_equal(const Metrics& a, const Metrics& b, std::uint32_t shards) {
  EXPECT_EQ(a.rounds, b.rounds) << "shards=" << shards;
  EXPECT_EQ(a.messages, b.messages) << "shards=" << shards;
  EXPECT_EQ(a.bits, b.bits) << "shards=" << shards;
  EXPECT_EQ(a.node_messages_sent, b.node_messages_sent) << "shards=" << shards;
  EXPECT_EQ(a.node_messages_received, b.node_messages_received) << "shards=" << shards;
  EXPECT_EQ(a.node_compute_ops, b.node_compute_ops) << "shards=" << shards;
  EXPECT_EQ(a.node_memory_words, b.node_memory_words) << "shards=" << shards;
}

class ShardInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardInvariance, JournalsMetricsAndEventsMatchSequential) {
  const std::uint64_t seed = GetParam();
  support::Rng grng(seed * 17 + 3);
  const Graph g = graph::gnp(90 + static_cast<graph::NodeId>(seed % 30), 0.1, grng);

  const Observed base = run_once(g, seed, /*shards=*/1, /*with_observer=*/true);
  ASSERT_GT(base.metrics.messages, 0u);
  ASSERT_EQ(base.events.size(), base.metrics.messages);

  for (const std::uint32_t shards : kShardCounts) {
    if (shards == 1) continue;
    const Observed sharded = run_once(g, seed, shards, /*with_observer=*/true);
    EXPECT_EQ(sharded.journal, base.journal) << "shards=" << shards;
    expect_metrics_equal(sharded.metrics, base.metrics, shards);
    // The observer event stream must be identical *in order*, not just as a
    // multiset — k-machine pricing depends on per-round load sequences.
    ASSERT_EQ(sharded.events.size(), base.events.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < base.events.size(); ++i) {
      EXPECT_EQ(sharded.events[i].from, base.events[i].from) << "i=" << i;
      EXPECT_EQ(sharded.events[i].to, base.events[i].to) << "i=" << i;
      EXPECT_EQ(sharded.events[i].round, base.events[i].round) << "i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardInvariance, ::testing::Range<std::uint64_t>(0, 8));

TEST(ShardEngine, ShardCountBeyondActiveSetIsHarmless) {
  support::Rng grng(11);
  const Graph g = graph::gnp(24, 0.3, grng);
  const Observed base = run_once(g, 4, 1, false);
  const Observed wide = run_once(g, 4, 64, false);  // more shards than nodes
  EXPECT_EQ(wide.journal, base.journal);
  expect_metrics_equal(wide.metrics, base.metrics, 64);
}

TEST(ShardEngine, ResolvesShardsFromEnvironmentWhenUnset) {
  support::Rng grng(3);
  const Graph g = graph::gnp(16, 0.4, grng);
  NetworkConfig cfg;  // shards = 0 → env or 1
  Network net(g, cfg);
  const char* env = std::getenv("DHC_SHARDS");
  const std::uint32_t expected = default_shards();
  EXPECT_EQ(net.shards(), expected);
  if (env == nullptr) {
    EXPECT_EQ(expected, 1u);
  }
}

TEST(ShardEngine, CapacityViolationDiagnosticIdenticalWhenSharded) {
  // A protocol that double-sends on one edge in a wide round; the violation
  // is thrown from inside a shard and must carry the same diagnostic.
  class DoubleSend : public Protocol {
   public:
    void begin(Context& ctx) override {
      if (ctx.self() == 0) ctx.wake_in(1);
    }
    void step(Context& ctx) override {
      if (ctx.round() == 1 && ctx.self() == 0) {
        // Wake everyone so round 2 is wide enough to shard.
        for (std::size_t i = 0; i < ctx.degree(); ++i) {
          ctx.send_to_rank(i, Message::make(1));
        }
        ctx.wake_in(1);
        return;
      }
      if (ctx.self() == 0 && ctx.degree() > 0) {
        ctx.send_to_rank(0, Message::make(2, {1}));
        ctx.send_to_rank(0, Message::make(3, {2}));  // violates capacity 1
      }
    }
  };

  support::Rng grng(7);
  const Graph g = graph::gnp(40, 0.5, grng);
  auto run_and_catch = [&](std::uint32_t shards) -> std::string {
    NetworkConfig cfg;
    cfg.seed = 1;
    cfg.shards = shards;
    cfg.shard_grain = 1;
    Network net(g, cfg);
    DoubleSend protocol;
    try {
      net.run(protocol);
    } catch (const CongestViolation& e) {
      return e.what();
    }
    return "<no violation>";
  };
  const std::string seq = run_and_catch(1);
  ASSERT_NE(seq, "<no violation>");
  EXPECT_EQ(run_and_catch(4), seq);
}

}  // namespace
}  // namespace dhc::congest
