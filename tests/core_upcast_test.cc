// Tests for the Upcast algorithm (paper §III) and the CollectAll baseline:
// end-to-end cycles, the root's memory/traffic asymmetry (the "not fully
// distributed" property), sampling behaviour, and failure handling.
#include "core/upcast.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

Graph upcast_gnp(graph::NodeId n, double c, double delta, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, c, delta), rng);
}

TEST(Upcast, EndToEndOnPaperRegime) {
  // Theorem 17's regime: p = Θ(log n / √n).
  const Graph g = upcast_gnp(1024, 2.0, 0.5, 1);
  const auto r = run_upcast(g, 7);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

TEST(Upcast, GeneralDeltaRegime) {
  // Theorem 19: p = Θ(log n / n^{1−ε}).
  const Graph g = upcast_gnp(2048, 3.0, 2.0 / 3.0, 2);
  const auto r = run_upcast(g, 11);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

TEST(Upcast, RootConcentratesMemoryAndWork) {
  // The paper's own caveat (§I, §III): the root needs Ω(n) memory, so the
  // algorithm is not fully distributed.  Verify the asymmetry is real.
  const Graph g = upcast_gnp(1024, 2.0, 0.5, 3);
  const auto r = run_upcast(g, 13);
  ASSERT_TRUE(r.success) << r.failure_reason;
  // Root is the global minimum id = node 0 for connected G(n,p).
  const auto root_mem = r.metrics.node_peak_memory_words[0];
  EXPECT_GE(root_mem, static_cast<std::int64_t>(g.n()));  // Θ(n log n) stored
  // Typical (median) node memory stays tiny compared to the root.
  std::vector<std::int64_t> mems = r.metrics.node_peak_memory_words;
  std::nth_element(mems.begin(), mems.begin() + static_cast<std::ptrdiff_t>(mems.size() / 2), mems.end());
  EXPECT_GT(root_mem, 10 * mems[mems.size() / 2]);
  // Root compute (the local solve) dominates any other node's.
  EXPECT_EQ(r.metrics.max_node_compute(), r.metrics.node_compute_ops[0]);
  EXPECT_GT(r.stat("root_solve_steps"), 0.0);
}

TEST(Upcast, SampleSizeTracksConfiguredC) {
  const Graph g = upcast_gnp(512, 2.0, 0.5, 4);
  UpcastConfig small;
  small.sample_c = 2.0;
  UpcastConfig large;
  large.sample_c = 6.0;
  const auto rs = run_upcast(g, 17, small);
  const auto rl = run_upcast(g, 17, large);
  EXPECT_GT(rl.stat("sampled_edges"), rs.stat("sampled_edges") * 2.0);
}

TEST(Upcast, CollectAllShipsEverythingAndIsSlower) {
  const Graph g = upcast_gnp(512, 2.0, 0.5, 5);
  UpcastConfig all;
  all.collect_all = true;
  const auto ra = run_upcast(g, 19, all);
  const auto rs = run_upcast(g, 19);
  ASSERT_TRUE(ra.success) << ra.failure_reason;
  ASSERT_TRUE(rs.success) << rs.failure_reason;
  // Every edge is shipped twice (once per endpoint).
  EXPECT_EQ(ra.stat("sampled_edges"), 2.0 * static_cast<double>(g.m()));
  // The trivial baseline pays for it in rounds and messages.
  EXPECT_GT(ra.metrics.rounds, rs.metrics.rounds);
  EXPECT_GT(ra.metrics.messages, rs.metrics.messages);
}

TEST(Upcast, DeterministicAcrossRuns) {
  const Graph g = upcast_gnp(512, 2.0, 0.5, 6);
  const auto a = run_upcast(g, 23);
  const auto b = run_upcast(g, 23);
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Upcast, TooSparseSampleFailsGracefully) {
  // A sample far below the Hamiltonicity threshold of the sampled graph
  // makes the root's local solve fail; the protocol must report it.
  const Graph g = upcast_gnp(512, 2.0, 0.5, 7);
  UpcastConfig cfg;
  cfg.sample_c = 0.1;  // ~1 edge per node
  const auto r = run_upcast(g, 29, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
  EXPECT_NE(r.failure_reason.find("root failed"), std::string::npos);
}

TEST(Upcast, DisconnectedGraphFailsGracefully) {
  support::Rng rng(8);
  const Graph a = graph::gnp(40, 0.5, rng);
  const Graph b = graph::gnp(40, 0.5, rng);
  std::vector<graph::Edge> edges = a.edges();
  for (const auto& [u, v] : b.edges()) {
    edges.emplace_back(static_cast<graph::NodeId>(u + 40), static_cast<graph::NodeId>(v + 40));
  }
  const Graph g(80, edges);
  const auto r = run_upcast(g, 31);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
}

TEST(Upcast, TinyGraphRejected) {
  const Graph g(2, {{0, 1}});
  EXPECT_FALSE(run_upcast(g, 1).success);
}

TEST(Upcast, PhaseBreakdownRecorded) {
  const Graph g = upcast_gnp(512, 2.0, 0.5, 9);
  const auto r = run_upcast(g, 37);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.metrics.phase_rounds("upcast"), 0u);
  EXPECT_GT(r.metrics.phase_rounds("downcast"), 0u);
  // Downcast routes the same volume back, so it should be within a small
  // factor of the upcast (paper §III-A step 4).
  const double up = static_cast<double>(r.metrics.phase_rounds("upcast"));
  const double down = static_cast<double>(r.metrics.phase_rounds("downcast"));
  EXPECT_LT(down, 4.0 * up + 64.0);
}

class UpcastSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(UpcastSweep, VerifiedCycleAcrossSeedsAndDeltas) {
  const auto [seed, delta] = GetParam();
  const Graph g = upcast_gnp(1024, 2.5, delta, seed * 50);
  const auto r = run_upcast(g, seed);
  ASSERT_TRUE(r.success) << "seed=" << seed << " delta=" << delta << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpcastSweep,
                         ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3),
                                            ::testing::Values(0.4, 0.5, 0.75)));

}  // namespace
}  // namespace dhc::core
