// Tests for the distributed output-verification protocol: it must accept
// exactly what the offline verifier accepts, reject corrupted claims, and
// never crash or break CONGEST on garbage input.
#include "core/distributed_verify.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/dhc2.h"
#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

graph::CycleIncidence planted_instance(graph::NodeId n, std::uint64_t seed, Graph* out_graph) {
  // Plant a random Hamiltonian cycle in a random graph.
  support::Rng rng(seed);
  graph::CycleOrder order;
  order.order.resize(n);
  std::iota(order.order.begin(), order.order.end(), 0);
  rng.shuffle(std::span<graph::NodeId>(order.order));
  auto edges = graph::cycle_edges(order);
  const Graph noise = graph::gnp(n, 4.0 * std::log(n) / n, rng);
  const auto extra = noise.edges();
  edges.insert(edges.end(), extra.begin(), extra.end());
  *out_graph = Graph(n, edges);
  return graph::incidence_from_order(order);
}

TEST(DistributedVerify, AcceptsPlantedCycle) {
  Graph g(0, {});
  const auto claim = planted_instance(64, 1, &g);
  const auto r = run_distributed_verify(g, claim);
  EXPECT_TRUE(r.accepted) << r.reason;
  // Claims (2 rounds) + walk (n+1) + verdict: O(n) total.
  EXPECT_GE(r.metrics.phase_rounds("walk"), 64u);
}

TEST(DistributedVerify, AcceptsSolverOutput) {
  support::Rng rng(2);
  const Graph g = graph::gnp(256, 0.3, rng);
  Dhc2Config cfg;
  cfg.num_colors_override = 4;
  const auto solved = run_dhc2(g, 5, cfg);
  ASSERT_TRUE(solved.success) << solved.failure_reason;
  const auto r = run_distributed_verify(g, solved.cycle);
  EXPECT_TRUE(r.accepted) << r.reason;
}

TEST(DistributedVerify, RejectsTwoDisjointCycles) {
  // Two disjoint planted cycles over 0..31 and 32..63: locally perfect,
  // globally wrong — only the token walk can catch this.
  const graph::NodeId n = 64;
  graph::CycleOrder first;
  first.order.resize(32);
  std::iota(first.order.begin(), first.order.end(), 0);
  graph::CycleOrder second;
  second.order.resize(32);
  std::iota(second.order.begin(), second.order.end(), 32);
  auto edges = graph::cycle_edges(first);
  const auto more = graph::cycle_edges(second);
  edges.insert(edges.end(), more.begin(), more.end());
  // Connect the components so the graph itself is connected.
  edges.emplace_back(0, 32);
  const Graph g(n, edges);

  graph::CycleIncidence claim;
  claim.neighbors_of.resize(n);
  const auto inc1 = graph::incidence_from_order(first);
  const auto inc2 = graph::incidence_from_order(second);
  for (graph::NodeId v = 0; v < 32; ++v) claim.neighbors_of[v] = inc1.neighbors_of[v];
  for (graph::NodeId v = 32; v < 64; ++v) claim.neighbors_of[v] = inc2.neighbors_of[v];

  const auto r = run_distributed_verify(g, claim);
  EXPECT_FALSE(r.accepted);
  EXPECT_NE(r.reason.find("hop count"), std::string::npos);
}

TEST(DistributedVerify, RejectsAsymmetricClaim) {
  Graph g(0, {});
  auto claim = planted_instance(48, 3, &g);
  // Node 5 claims an unrelated (but physically adjacent) neighbor.
  const auto victim = 5u;
  for (const auto w : g.neighbors(victim)) {
    if (w != claim.neighbors_of[victim][0] && w != claim.neighbors_of[victim][1]) {
      claim.neighbors_of[victim][0] = w;
      break;
    }
  }
  const auto r = run_distributed_verify(g, claim);
  EXPECT_FALSE(r.accepted);
}

TEST(DistributedVerify, RejectsNonEdgeClaimWithoutCrashing) {
  Graph g(0, {});
  auto claim = planted_instance(48, 4, &g);
  claim.neighbors_of[7][1] = 7 == 0 ? 1 : 0;  // likely not adjacent; maybe not even valid
  claim.neighbors_of[7][0] = 7;               // self-claim: definitely garbage
  const auto r = run_distributed_verify(g, claim);
  EXPECT_FALSE(r.accepted);
  EXPECT_FALSE(r.reason.empty());
}

TEST(DistributedVerify, RejectsOutOfRangeClaim) {
  Graph g(0, {});
  auto claim = planted_instance(32, 5, &g);
  claim.neighbors_of[3][0] = 9999;
  const auto r = run_distributed_verify(g, claim);
  EXPECT_FALSE(r.accepted);
}

TEST(DistributedVerify, RejectsWrongSizeClaim) {
  Graph g(0, {});
  auto claim = planted_instance(32, 6, &g);
  claim.neighbors_of.pop_back();
  const auto r = run_distributed_verify(g, claim);
  EXPECT_FALSE(r.accepted);
}

TEST(DistributedVerify, AgreesWithOfflineVerifierOnRandomCorruptions) {
  // Property sweep: randomly corrupt entries; in-model and offline verdicts
  // must agree (modulo both rejecting).
  support::Rng meta(7);
  for (int trial = 0; trial < 15; ++trial) {
    Graph g(0, {});
    auto claim = planted_instance(40, 100 + static_cast<std::uint64_t>(trial), &g);
    const bool corrupt = meta.bernoulli(0.6);
    if (corrupt) {
      const auto victim = static_cast<graph::NodeId>(meta.below(40));
      claim.neighbors_of[victim][meta.below(2)] = static_cast<graph::NodeId>(meta.below(40));
    }
    const bool offline = graph::verify_cycle_incidence(g, claim).ok();
    const auto distributed = run_distributed_verify(g, claim, meta.next_u64());
    EXPECT_EQ(distributed.accepted, offline) << "trial " << trial << ": " << distributed.reason;
  }
}

}  // namespace
}  // namespace dhc::core
