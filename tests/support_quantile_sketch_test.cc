// Unit tests for the streaming quantile sketch behind --node_stats=streaming.
#include "support/quantile_sketch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace dhc::support {
namespace {

/// Nearest-rank quantile on a sorted copy — the exact reference the sketch is
/// checked against.
double exact_quantile(std::vector<std::uint64_t> v, double q) {
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1) + 0.5);
  return static_cast<double>(v[std::min(rank, v.size() - 1)]);
}

TEST(QuantileSketch, EmptyIsAllZero) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(QuantileSketch, SideStatsAreExact) {
  QuantileSketch s;
  std::uint64_t sum = 0;
  for (std::uint64_t v : {3u, 141u, 59u, 0u, 2653589u, 79u}) {
    s.add(v);
    sum += v;
  }
  EXPECT_EQ(s.count(), 6u);
  EXPECT_DOUBLE_EQ(s.sum(), static_cast<double>(sum));
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 2653589u);
}

TEST(QuantileSketch, LinearRegionIsExact) {
  // Everything below kLinearCutoff lands in its own bucket, so quantiles of
  // small per-node totals (the common case) carry no approximation at all.
  QuantileSketch s;
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < QuantileSketch::kLinearCutoff; ++v) {
    s.add(v);
    values.push_back(v);
  }
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.quantile(q), exact_quantile(values, q)) << "q=" << q;
  }
}

TEST(QuantileSketch, LogRegionWithinRelativeErrorBound) {
  // Log-normal-ish spread across the log region; every reported quantile must
  // be within relative_error() of the exact nearest-rank value.
  std::mt19937_64 rng(12345);
  QuantileSketch s;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    const double e = std::uniform_real_distribution<double>(10.0, 30.0)(rng);
    const auto v = static_cast<std::uint64_t>(std::pow(2.0, e));
    s.add(v);
    values.push_back(v);
  }
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double est = s.quantile(q);
    EXPECT_NEAR(est, exact, exact * QuantileSketch::relative_error())
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
}

TEST(QuantileSketch, ExtremesReturnMinAndMax) {
  QuantileSketch s;
  for (std::uint64_t v : {17u, 100000u, 31u, 999999937u}) s.add(v);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 17.0);
  // q=1 reports the exact max, not a bucket representative.
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 999999937.0);
}

TEST(QuantileSketch, MergeEqualsSingleStream) {
  // merge() is bucket-wise addition, so (A ∪ B) sketched in two halves must
  // equal the single-stream sketch bit for bit — that is what makes the
  // streaming summaries shard-invariant.
  std::mt19937_64 rng(777);
  QuantileSketch whole, a, b;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng() % 5000000;
    whole.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_DOUBLE_EQ(a.sum(), whole.sum());
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), whole.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketch, InsertionOrderDoesNotMatter) {
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 4096; ++v) values.push_back(v * 37);
  QuantileSketch fwd, rev;
  for (const std::uint64_t v : values) fwd.add(v);
  for (auto it = values.rbegin(); it != values.rend(); ++it) rev.add(*it);
  for (const double q : {0.0, 0.33, 0.5, 0.66, 1.0}) {
    EXPECT_DOUBLE_EQ(fwd.quantile(q), rev.quantile(q)) << "q=" << q;
  }
}

}  // namespace
}  // namespace dhc::support
