// FlatQueue: FIFO semantics and the in-place stable filter (retain), which
// replaced the scratch-buffer idiom the upcast downcast pump used to rely on.
#include "support/flat_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dhc::support {
namespace {

std::vector<int> drain(FlatQueue<int>& q) {
  std::vector<int> out;
  while (!q.empty()) {
    out.push_back(q.front());
    q.pop_front();
  }
  return out;
}

TEST(FlatQueue, FifoOrderAndSizes) {
  FlatQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 5; ++i) q.push_back(i);
  EXPECT_EQ(q.size(), 5u);
  EXPECT_EQ(q.front(), 0);
  q.pop_front();
  EXPECT_EQ(q.front(), 1);
  EXPECT_EQ(drain(q), (std::vector<int>{1, 2, 3, 4}));
  EXPECT_TRUE(q.empty());
}

TEST(FlatQueue, RetainKeepsMatchingElementsInOrder) {
  FlatQueue<int> q;
  for (int i = 0; i < 10; ++i) q.push_back(i);
  q.retain([](int v) { return v % 3 == 0; });
  EXPECT_EQ(drain(q), (std::vector<int>{0, 3, 6, 9}));
}

TEST(FlatQueue, RetainOperatesOnTheLiveWindowAfterPops) {
  // Popped elements must not resurrect: retain sees only [head, end).
  FlatQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push_back(i);
  q.pop_front();  // drop 0
  q.pop_front();  // drop 1
  q.retain([](int v) { return v % 2 == 0; });
  EXPECT_EQ(drain(q), (std::vector<int>{2, 4, 6}));
}

TEST(FlatQueue, RetainAllAndRetainNone) {
  FlatQueue<int> q;
  for (int i = 0; i < 4; ++i) q.push_back(i);
  q.retain([](int) { return true; });
  EXPECT_EQ(q.size(), 4u);
  q.retain([](int) { return false; });
  EXPECT_TRUE(q.empty());
}

TEST(FlatQueue, QueueIsReusableAfterRetain) {
  FlatQueue<int> q;
  for (int i = 0; i < 6; ++i) q.push_back(i);
  q.retain([](int v) { return v >= 4; });
  q.push_back(100);
  EXPECT_EQ(drain(q), (std::vector<int>{4, 5, 100}));
  q.push_back(7);
  EXPECT_EQ(q.front(), 7);
}

}  // namespace
}  // namespace dhc::support
