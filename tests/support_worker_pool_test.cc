// Tests for the spawn-once barrier-dispatch worker pool that backs both the
// runner's trial parallelism and the simulator's sharded rounds.
#include "support/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dhc::support {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(WorkerPool, SingleLanePoolRunsInlineInTaskOrder) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  std::vector<std::size_t> order;
  pool.run(16, [&](std::size_t i) { order.push_back(i); });  // no races: inline
  std::vector<std::size_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(WorkerPool, ReusableAcrossManyGenerations) {
  // The simulator dispatches once per round; hammer the generation path.
  WorkerPool pool(3);
  std::atomic<std::uint64_t> total{0};
  for (int gen = 0; gen < 500; ++gen) {
    pool.run(7, [&](std::size_t i) { total.fetch_add(i + 1); });
  }
  EXPECT_EQ(total.load(), 500ull * (7 * 8 / 2));
}

TEST(WorkerPool, PropagatesFirstTaskException) {
  WorkerPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(64,
               [&](std::size_t i) {
                 if (i % 5 == 3) throw std::runtime_error("task failed");
                 completed.fetch_add(1);
               }),
      std::runtime_error);
  // Every non-throwing task still ran to completion before the rethrow.
  int throwers = 0;
  for (int i = 0; i < 64; ++i) throwers += (i % 5 == 3) ? 1 : 0;
  EXPECT_EQ(completed.load(), 64 - throwers);
  // The pool survives a failed generation.
  std::atomic<int> after{0};
  pool.run(8, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(WorkerPool, ZeroTasksIsANoOp) {
  WorkerPool pool(2);
  pool.run(0, [&](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkerPool, MoreTasksThanWorkersAndViceVersa) {
  WorkerPool pool(8);
  std::atomic<int> n{0};
  pool.run(3, [&](std::size_t) { n.fetch_add(1); });  // fewer tasks than lanes
  EXPECT_EQ(n.load(), 3);
  pool.run(100, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 103);
}

}  // namespace
}  // namespace dhc::support
