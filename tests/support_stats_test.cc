// Unit tests for the statistics toolkit backing the benchmark harness.
#include "support/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dhc::support {
namespace {

TEST(OnlineStats, MeanAndVarianceMatchClosedForm) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.14);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.14);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.14);
  EXPECT_DOUBLE_EQ(s.max(), 3.14);
}

TEST(OnlineStats, NegativeValues) {
  OnlineStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, MedianOfEvenSampleInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.25), 7.0);
}

TEST(Quantile, RejectsEmptyAndBadLevels) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(Summarize, FullSummary) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(FitLine, ExactLine) {
  const auto fit = fit_line({1.0, 2.0, 3.0}, {5.0, 7.0, 9.0});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
}

TEST(FitLine, LeastSquaresOfNoisyData) {
  // y = 1 + x with symmetric residuals; least squares recovers the line.
  const auto fit = fit_line({0.0, 1.0, 2.0, 3.0}, {1.1, 1.9, 3.1, 3.9});
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
  EXPECT_NEAR(fit.intercept, 1.0, 0.1);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1.0, 2.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({2.0, 2.0}, {1.0, 3.0}), std::invalid_argument);
}

TEST(LogLogSlope, RecoversPolynomialExponent) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {64.0, 128.0, 256.0, 512.0, 1024.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  EXPECT_NEAR(loglog_slope(xs, ys), 1.5, 1e-9);
}

TEST(LogLogSlope, SqrtScaling) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {100.0, 400.0, 1600.0}) {
    xs.push_back(x);
    ys.push_back(std::sqrt(x));
  }
  EXPECT_NEAR(loglog_slope(xs, ys), 0.5, 1e-9);
}

TEST(LogLogSlope, RejectsNonPositive) {
  EXPECT_THROW(loglog_slope({1.0, -2.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(loglog_slope({1.0, 2.0}, {0.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace dhc::support
