// Tests for the k-machine model backend (paper §IV): the pricing observer,
// its mid-run idempotency, and the algorithm-agnostic execution driver.
#include "kmachine/kmachine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "graph/generators.h"
#include "graph/hamiltonian.h"

namespace dhc::kmachine {
namespace {

TEST(KMachineCost, PartitionCoversAllMachinesAndIsDeterministic) {
  KMachineCost a(1000, 8, 4, 42);
  KMachineCost b(1000, 8, 4, 42);
  std::vector<int> seen(8, 0);
  for (NodeId v = 0; v < 1000; ++v) {
    EXPECT_EQ(a.machine_of(v), b.machine_of(v));
    EXPECT_LT(a.machine_of(v), 8u);
    seen[a.machine_of(v)] += 1;
  }
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(KMachineCost, LocalMessagesAreFree) {
  KMachineCost cost(10, 2, 1, 1);
  // Find two co-located nodes and two separated nodes.
  NodeId same_a = 0, same_b = 0, cross_a = 0, cross_b = 0;
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u == v) continue;
      if (cost.machine_of(u) == cost.machine_of(v)) {
        same_a = u;
        same_b = v;
      } else {
        cross_a = u;
        cross_b = v;
      }
    }
  }
  cost.on_send(same_a, same_b, 1);
  EXPECT_EQ(cost.kmachine_rounds(), 0u);
  EXPECT_EQ(cost.local_messages(), 1u);
  cost.on_send(cross_a, cross_b, 2);
  EXPECT_EQ(cost.kmachine_rounds(), 1u);
  EXPECT_EQ(cost.cross_messages(), 1u);
}

TEST(KMachineCost, BandwidthDividesLinkLoad) {
  // 6 messages over one link in one round: bandwidth 1 -> 6 rounds,
  // bandwidth 4 -> 2 rounds.
  for (const auto& [bw, expect] : {std::pair<std::uint64_t, std::uint64_t>{1, 6}, {4, 2}}) {
    KMachineCost cost(4, 2, bw, 3);
    NodeId u = 0, v = 0;
    for (NodeId x = 1; x < 4; ++x) {
      if (cost.machine_of(x) != cost.machine_of(0)) v = x;
    }
    ASSERT_NE(v, 0u);
    for (int i = 0; i < 6; ++i) cost.on_send(u, v, 1);
    EXPECT_EQ(cost.kmachine_rounds(), expect) << "bw=" << bw;
  }
}

TEST(KMachineCost, RoundsAccumulateAcrossCongestRounds) {
  KMachineCost cost(4, 2, 1, 3);
  NodeId u = 0, v = 0;
  for (NodeId x = 1; x < 4; ++x) {
    if (cost.machine_of(x) != cost.machine_of(0)) v = x;
  }
  cost.on_send(u, v, 1);
  cost.on_send(u, v, 2);
  cost.on_send(u, v, 5);
  EXPECT_EQ(cost.kmachine_rounds(), 3u);
}

// Regression for the mid-run pricing bug: kmachine_rounds() used to
// flush_round() — zeroing round_load_/touched_links_ for a round still
// receiving sends — so a mid-round read split that round's link load L into
// fragments a + b priced ⌈a/bw⌉ + ⌈b/bw⌉ instead of ⌈L/bw⌉.  With bw = 4
// and a 2+2 split the pre-fix total is 2, the correct total 1; this test
// fails against the old flushing implementation.
TEST(KMachineCost, MidRoundReadDoesNotSplitTheRoundCharge) {
  KMachineCost probed(4, 2, /*bandwidth=*/4, 3);
  KMachineCost clean(4, 2, /*bandwidth=*/4, 3);
  NodeId u = 0, v = 0;
  for (NodeId x = 1; x < 4; ++x) {
    if (probed.machine_of(x) != probed.machine_of(0)) v = x;
  }
  ASSERT_NE(v, 0u);

  for (int i = 0; i < 2; ++i) probed.on_send(u, v, 1);
  EXPECT_EQ(probed.kmachine_rounds(), 1u);  // mid-round read: ceil(2/4)
  for (int i = 0; i < 2; ++i) probed.on_send(u, v, 1);

  for (int i = 0; i < 4; ++i) clean.on_send(u, v, 1);

  // 4 messages on one link in one round at bandwidth 4: exactly 1 round,
  // regardless of the mid-round read.
  EXPECT_EQ(clean.kmachine_rounds(), 1u);
  EXPECT_EQ(probed.kmachine_rounds(), clean.kmachine_rounds());
}

TEST(KMachineCost, RepeatedReadsAreIdempotent) {
  KMachineCost cost(4, 2, 2, 3);
  NodeId u = 0, v = 0;
  for (NodeId x = 1; x < 4; ++x) {
    if (cost.machine_of(x) != cost.machine_of(0)) v = x;
  }
  for (int i = 0; i < 5; ++i) cost.on_send(u, v, 1);
  const auto first = cost.kmachine_rounds();
  EXPECT_EQ(cost.kmachine_rounds(), first);
  EXPECT_EQ(cost.kmachine_rounds(), first);
  cost.on_send(u, v, 2);
  EXPECT_EQ(cost.kmachine_rounds(), first + 1);
}

/// Forwards every send to the wrapped cost and immediately reads the price —
/// the hostile consumer the pre-fix flush-on-read implementation corrupted.
class ProbingTap : public congest::MessageObserver {
 public:
  explicit ProbingTap(KMachineCost& inner) : inner_(inner) {}
  void on_send(NodeId from, NodeId to, std::uint64_t round) override {
    inner_.on_send(from, to, round);
    last_probe_ = inner_.kmachine_rounds();
  }
  // on_events is left defaulted: the base class replays batches through
  // on_send, so sharded rounds are probed per message too.
  std::uint64_t last_probe() const { return last_probe_; }

 private:
  KMachineCost& inner_;
  std::uint64_t last_probe_ = 0;
};

// End-to-end regression (the satellite's acceptance shape): attach one
// pricing observer that is read after *every* message of a real DHC2 run
// and one that is read only at the end — the final counts must match.
TEST(KMachineCost, MidRunReadsMatchEndOfRunRead) {
  support::Rng rng(11);
  const auto g = graph::gnp(128, graph::edge_probability(128, 2.5, 0.5), rng);

  KMachineCost probed_cost(g.n(), /*k=*/8, /*bandwidth=*/4, /*seed=*/23);
  ProbingTap tap(probed_cost);
  core::Dhc2Config cfg;
  cfg.delta = 0.5;
  cfg.observer = &tap;
  const auto r_probed = core::run_dhc2(g, /*seed=*/23, cfg);

  KMachineCost clean_cost(g.n(), /*k=*/8, /*bandwidth=*/4, /*seed=*/23);
  core::Dhc2Config clean_cfg;
  clean_cfg.delta = 0.5;
  clean_cfg.observer = &clean_cost;
  const auto r_clean = core::run_dhc2(g, /*seed=*/23, clean_cfg);

  ASSERT_EQ(r_probed.success, r_clean.success);
  EXPECT_EQ(probed_cost.kmachine_rounds(), clean_cost.kmachine_rounds());
  EXPECT_EQ(probed_cost.cross_messages(), clean_cost.cross_messages());
  EXPECT_EQ(probed_cost.busiest_link_peak(), clean_cost.busiest_link_peak());
  EXPECT_EQ(tap.last_probe(), clean_cost.kmachine_rounds());
}

TEST(KMachineCost, RejectsDegenerateParameters) {
  EXPECT_THROW(KMachineCost(10, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(KMachineCost(10, 2, 0, 1), std::invalid_argument);
}

// The k-machine conversion consumes the simulator's merged event log on
// sharded rounds (on_events) and the live on_send feed on sequential ones.
// Both feeds must price the execution identically: converted rounds, the
// cross/local split, and the busiest-link peak all depend on per-round link
// load *sequences*, so this pin fails if the merged log ever reorders or
// drops an event relative to sequential send order.
TEST(ConvertDhc2, LiveAndMergedEventLogPricingIdentical) {
  struct Priced {
    bool success;
    std::uint64_t congest_rounds;
    std::uint64_t kmachine_rounds;
    std::uint64_t cross_messages;
    std::uint64_t local_messages;
    std::uint64_t busiest_link_peak;
  };
  support::Rng rng(21);
  const auto g = graph::gnp(256, graph::edge_probability(256, 2.5, 0.5), rng);

  const char* old_grain = std::getenv("DHC_SHARD_GRAIN");
  setenv("DHC_SHARD_GRAIN", "1", 1);  // shard even sparse rounds
  const auto price = [&](std::uint32_t shards) -> Priced {
    KMachineCost cost(g.n(), /*k=*/8, /*bandwidth=*/4, /*seed=*/17);
    core::Dhc2Config cfg;
    cfg.delta = 0.5;
    cfg.observer = &cost;
    cfg.shards = shards;
    const core::Result r = core::run_dhc2(g, /*seed=*/17, cfg);
    return {r.success,          r.metrics.rounds,      cost.kmachine_rounds(),
            cost.cross_messages(), cost.local_messages(), cost.busiest_link_peak()};
  };

  const Priced live = price(/*shards=*/1);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const Priced merged = price(shards);
    EXPECT_EQ(merged.success, live.success) << "shards=" << shards;
    EXPECT_EQ(merged.congest_rounds, live.congest_rounds) << "shards=" << shards;
    EXPECT_EQ(merged.kmachine_rounds, live.kmachine_rounds) << "shards=" << shards;
    EXPECT_EQ(merged.cross_messages, live.cross_messages) << "shards=" << shards;
    EXPECT_EQ(merged.local_messages, live.local_messages) << "shards=" << shards;
    EXPECT_EQ(merged.busiest_link_peak, live.busiest_link_peak) << "shards=" << shards;
  }
  if (old_grain == nullptr) {
    unsetenv("DHC_SHARD_GRAIN");
  } else {
    setenv("DHC_SHARD_GRAIN", old_grain, 1);
  }
}

TEST(KMachineCost, BatchEventsMatchSingleSends) {
  // Unit-level pin of on_events == repeated on_send on a hand-built stream.
  KMachineCost a(32, 4, 2, 9);
  KMachineCost b(32, 4, 2, 9);
  std::vector<congest::SendEvent> events;
  support::Rng rng(33);
  std::uint64_t round = 1;
  for (int i = 0; i < 500; ++i) {
    if (rng.bernoulli(0.2)) round += 1 + rng.below(3);
    const auto from = static_cast<NodeId>(rng.below(32));
    auto to = static_cast<NodeId>(rng.below(32));
    if (to == from) to = (to + 1) % 32;
    events.push_back({from, to, round});
  }
  for (const auto& e : events) a.on_send(e.from, e.to, e.round);
  // Deliver to b in per-round batches (as the merged shard logs would).
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t j = i;
    while (j < events.size() && events[j].round == events[i].round) ++j;
    b.on_events({events.data() + i, j - i});
    i = j;
  }
  EXPECT_EQ(a.kmachine_rounds(), b.kmachine_rounds());
  EXPECT_EQ(a.cross_messages(), b.cross_messages());
  EXPECT_EQ(a.local_messages(), b.local_messages());
  EXPECT_EQ(a.busiest_link_peak(), b.busiest_link_peak());
}

TEST(ConvertDhc2, EndToEndAndMoreMachinesHelp) {
  support::Rng rng(5);
  const auto g = graph::gnp(512, graph::edge_probability(512, 2.5, 0.5), rng);
  core::Dhc2Config cfg;
  cfg.delta = 0.5;
  const auto r4 = convert_dhc2(g, 9, /*k=*/4, /*bandwidth=*/16, cfg);
  const auto r16 = convert_dhc2(g, 9, /*k=*/16, /*bandwidth=*/16, cfg);
  ASSERT_TRUE(r4.success);
  ASSERT_TRUE(r16.success);
  EXPECT_EQ(r4.congest_rounds, r16.congest_rounds);  // same underlying run
  EXPECT_GT(r4.kmachine_rounds, 0u);
  // More machines spread the same traffic over more links: fewer converted
  // rounds (the busiest link carries less).
  EXPECT_LT(r16.kmachine_rounds, r4.kmachine_rounds);
  EXPECT_GT(r16.cross_messages, r4.cross_messages);  // fewer co-located pairs
  EXPECT_GT(r4.busiest_link_peak, 0u);
}

// ---------------------------------------------------------------------------
// The execution backend: run_kmachine() over the registered algorithms.
// ---------------------------------------------------------------------------

TEST(RunKMachine, MatchesLegacyConvertDhc2) {
  support::Rng rng(7);
  const auto g = graph::gnp(192, graph::edge_probability(192, 2.5, 0.5), rng);
  core::Dhc2Config base;
  base.delta = 0.5;

  const auto legacy = convert_dhc2(g, 13, /*k=*/8, /*bandwidth=*/8, base);

  KMachineConfig cfg;
  cfg.k = 8;
  cfg.bandwidth = 8;
  const auto backend = run_kmachine(dhc2_algorithm(base), g, 13, cfg).report;

  EXPECT_EQ(backend.success, legacy.success);
  EXPECT_EQ(backend.congest_rounds, legacy.congest_rounds);
  EXPECT_EQ(backend.kmachine_rounds, legacy.kmachine_rounds);
  EXPECT_EQ(backend.cross_messages, legacy.cross_messages);
  EXPECT_EQ(backend.local_messages, legacy.local_messages);
  EXPECT_EQ(backend.busiest_link_peak, legacy.busiest_link_peak);
}

TEST(RunKMachine, AlgorithmByNameKnowsTheRegistry) {
  for (const char* name : {"dra", "dhc1", "dhc2", "turau", "upcast", "collect-all"}) {
    EXPECT_NE(algorithm_by_name(name), nullptr) << name;
  }
  EXPECT_THROW(algorithm_by_name("sequential"), std::invalid_argument);
  EXPECT_THROW(algorithm_by_name("nope"), std::invalid_argument);
}

// The acceptance pin: for every registered algorithm the backend's full
// report — converted rounds above all — is bitwise identical between a live
// sequential run (shards = 1) and a sharded run (shards = 4, the CI
// DHC_SHARDS matrix value), with the shard grain forced down so even sparse
// rounds exercise the merged event log.  Also end-to-end sanity: a
// successful run's cycle verifies against the input graph.
TEST(RunKMachine, ReportShardInvariantForEveryAlgorithm) {
  support::Rng rng(31);
  const auto g = graph::gnp(256, graph::edge_probability(256, 2.5, 0.5), rng);

  const char* old_grain = std::getenv("DHC_SHARD_GRAIN");
  setenv("DHC_SHARD_GRAIN", "1", 1);

  const struct {
    const char* name;
    CongestAlgorithm algo;
  } algorithms[] = {
      {"dra", dra_algorithm()},
      {"dhc1", dhc1_algorithm()},
      {"dhc2", dhc2_algorithm()},
      {"turau", turau_algorithm()},
  };

  for (const auto& [name, algo] : algorithms) {
    const auto run_with = [&](std::uint32_t shards) {
      KMachineConfig cfg;
      cfg.k = 8;
      cfg.bandwidth = 4;
      cfg.shards = shards;
      return run_kmachine(algo, g, /*seed=*/29, cfg);
    };
    const auto live = run_with(/*shards=*/1);
    const auto sharded = run_with(/*shards=*/4);

    EXPECT_EQ(sharded.report.success, live.report.success) << name;
    EXPECT_EQ(sharded.report.congest_rounds, live.report.congest_rounds) << name;
    EXPECT_EQ(sharded.report.kmachine_rounds, live.report.kmachine_rounds) << name;
    EXPECT_EQ(sharded.report.cross_messages, live.report.cross_messages) << name;
    EXPECT_EQ(sharded.report.local_messages, live.report.local_messages) << name;
    EXPECT_EQ(sharded.report.busiest_link_peak, live.report.busiest_link_peak) << name;
    EXPECT_GT(live.report.kmachine_rounds, 0u) << name;

    if (live.report.success) {
      const auto v = graph::verify_cycle_incidence(g, live.result.cycle);
      EXPECT_TRUE(v.ok()) << name << ": " << (v.failure ? *v.failure : "");
    }
  }

  if (old_grain == nullptr) {
    unsetenv("DHC_SHARD_GRAIN");
  } else {
    setenv("DHC_SHARD_GRAIN", old_grain, 1);
  }
}

TEST(RunKMachine, MoreMachinesHelpBeyondDhc2) {
  support::Rng rng(3);
  const auto g = graph::gnp(256, graph::edge_probability(256, 2.5, 0.5), rng);
  for (const char* name : {"turau", "dra"}) {
    const auto run_with = [&](std::uint32_t k) {
      KMachineConfig cfg;
      cfg.k = k;
      cfg.bandwidth = 16;
      return run_kmachine(algorithm_by_name(name), g, /*seed=*/41, cfg).report;
    };
    const auto r4 = run_with(4);
    const auto r16 = run_with(16);
    ASSERT_TRUE(r4.success) << name;
    ASSERT_TRUE(r16.success) << name;
    EXPECT_EQ(r4.congest_rounds, r16.congest_rounds) << name;  // same underlying run
    EXPECT_LT(r16.kmachine_rounds, r4.kmachine_rounds) << name;
  }
}

}  // namespace
}  // namespace dhc::kmachine
