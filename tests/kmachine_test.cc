// Tests for the k-machine model conversion (paper §IV).
#include "kmachine/kmachine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "graph/generators.h"

namespace dhc::kmachine {
namespace {

TEST(KMachineCost, PartitionCoversAllMachinesAndIsDeterministic) {
  KMachineCost a(1000, 8, 4, 42);
  KMachineCost b(1000, 8, 4, 42);
  std::vector<int> seen(8, 0);
  for (NodeId v = 0; v < 1000; ++v) {
    EXPECT_EQ(a.machine_of(v), b.machine_of(v));
    EXPECT_LT(a.machine_of(v), 8u);
    seen[a.machine_of(v)] += 1;
  }
  for (const int count : seen) EXPECT_GT(count, 0);
}

TEST(KMachineCost, LocalMessagesAreFree) {
  KMachineCost cost(10, 2, 1, 1);
  // Find two co-located nodes and two separated nodes.
  NodeId same_a = 0, same_b = 0, cross_a = 0, cross_b = 0;
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u == v) continue;
      if (cost.machine_of(u) == cost.machine_of(v)) {
        same_a = u;
        same_b = v;
      } else {
        cross_a = u;
        cross_b = v;
      }
    }
  }
  cost.on_send(same_a, same_b, 1);
  EXPECT_EQ(cost.kmachine_rounds(), 0u);
  EXPECT_EQ(cost.local_messages(), 1u);
  cost.on_send(cross_a, cross_b, 2);
  EXPECT_EQ(cost.kmachine_rounds(), 1u);
  EXPECT_EQ(cost.cross_messages(), 1u);
}

TEST(KMachineCost, BandwidthDividesLinkLoad) {
  // 6 messages over one link in one round: bandwidth 1 -> 6 rounds,
  // bandwidth 4 -> 2 rounds.
  for (const auto& [bw, expect] : {std::pair<std::uint64_t, std::uint64_t>{1, 6}, {4, 2}}) {
    KMachineCost cost(4, 2, bw, 3);
    NodeId u = 0, v = 0;
    for (NodeId x = 1; x < 4; ++x) {
      if (cost.machine_of(x) != cost.machine_of(0)) v = x;
    }
    ASSERT_NE(v, 0u);
    for (int i = 0; i < 6; ++i) cost.on_send(u, v, 1);
    EXPECT_EQ(cost.kmachine_rounds(), expect) << "bw=" << bw;
  }
}

TEST(KMachineCost, RoundsAccumulateAcrossCongestRounds) {
  KMachineCost cost(4, 2, 1, 3);
  NodeId u = 0, v = 0;
  for (NodeId x = 1; x < 4; ++x) {
    if (cost.machine_of(x) != cost.machine_of(0)) v = x;
  }
  cost.on_send(u, v, 1);
  cost.on_send(u, v, 2);
  cost.on_send(u, v, 5);
  EXPECT_EQ(cost.kmachine_rounds(), 3u);
}

TEST(KMachineCost, RejectsDegenerateParameters) {
  EXPECT_THROW(KMachineCost(10, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(KMachineCost(10, 2, 0, 1), std::invalid_argument);
}

// The k-machine conversion consumes the simulator's merged event log on
// sharded rounds (on_events) and the live on_send feed on sequential ones.
// Both feeds must price the execution identically: converted rounds, the
// cross/local split, and the busiest-link peak all depend on per-round link
// load *sequences*, so this pin fails if the merged log ever reorders or
// drops an event relative to sequential send order.
TEST(ConvertDhc2, LiveAndMergedEventLogPricingIdentical) {
  struct Priced {
    bool success;
    std::uint64_t congest_rounds;
    std::uint64_t kmachine_rounds;
    std::uint64_t cross_messages;
    std::uint64_t local_messages;
    std::uint64_t busiest_link_total;
  };
  support::Rng rng(21);
  const auto g = graph::gnp(256, graph::edge_probability(256, 2.5, 0.5), rng);

  const char* old_grain = std::getenv("DHC_SHARD_GRAIN");
  setenv("DHC_SHARD_GRAIN", "1", 1);  // shard even sparse rounds
  const auto price = [&](std::uint32_t shards) -> Priced {
    KMachineCost cost(g.n(), /*k=*/8, /*bandwidth=*/4, /*seed=*/17);
    core::Dhc2Config cfg;
    cfg.delta = 0.5;
    cfg.observer = &cost;
    cfg.shards = shards;
    const core::Result r = core::run_dhc2(g, /*seed=*/17, cfg);
    return {r.success,          r.metrics.rounds,      cost.kmachine_rounds(),
            cost.cross_messages(), cost.local_messages(), cost.busiest_link_total()};
  };

  const Priced live = price(/*shards=*/1);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    const Priced merged = price(shards);
    EXPECT_EQ(merged.success, live.success) << "shards=" << shards;
    EXPECT_EQ(merged.congest_rounds, live.congest_rounds) << "shards=" << shards;
    EXPECT_EQ(merged.kmachine_rounds, live.kmachine_rounds) << "shards=" << shards;
    EXPECT_EQ(merged.cross_messages, live.cross_messages) << "shards=" << shards;
    EXPECT_EQ(merged.local_messages, live.local_messages) << "shards=" << shards;
    EXPECT_EQ(merged.busiest_link_total, live.busiest_link_total) << "shards=" << shards;
  }
  if (old_grain == nullptr) {
    unsetenv("DHC_SHARD_GRAIN");
  } else {
    setenv("DHC_SHARD_GRAIN", old_grain, 1);
  }
}

TEST(KMachineCost, BatchEventsMatchSingleSends) {
  // Unit-level pin of on_events == repeated on_send on a hand-built stream.
  KMachineCost a(32, 4, 2, 9);
  KMachineCost b(32, 4, 2, 9);
  std::vector<congest::SendEvent> events;
  support::Rng rng(33);
  std::uint64_t round = 1;
  for (int i = 0; i < 500; ++i) {
    if (rng.bernoulli(0.2)) round += 1 + rng.below(3);
    const auto from = static_cast<NodeId>(rng.below(32));
    auto to = static_cast<NodeId>(rng.below(32));
    if (to == from) to = (to + 1) % 32;
    events.push_back({from, to, round});
  }
  for (const auto& e : events) a.on_send(e.from, e.to, e.round);
  // Deliver to b in per-round batches (as the merged shard logs would).
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t j = i;
    while (j < events.size() && events[j].round == events[i].round) ++j;
    b.on_events({events.data() + i, j - i});
    i = j;
  }
  EXPECT_EQ(a.kmachine_rounds(), b.kmachine_rounds());
  EXPECT_EQ(a.cross_messages(), b.cross_messages());
  EXPECT_EQ(a.local_messages(), b.local_messages());
  EXPECT_EQ(a.busiest_link_total(), b.busiest_link_total());
}

TEST(ConvertDhc2, EndToEndAndMoreMachinesHelp) {
  support::Rng rng(5);
  const auto g = graph::gnp(512, graph::edge_probability(512, 2.5, 0.5), rng);
  core::Dhc2Config cfg;
  cfg.delta = 0.5;
  const auto r4 = convert_dhc2(g, 9, /*k=*/4, /*bandwidth=*/16, cfg);
  const auto r16 = convert_dhc2(g, 9, /*k=*/16, /*bandwidth=*/16, cfg);
  ASSERT_TRUE(r4.success);
  ASSERT_TRUE(r16.success);
  EXPECT_EQ(r4.congest_rounds, r16.congest_rounds);  // same underlying run
  EXPECT_GT(r4.kmachine_rounds, 0u);
  // More machines spread the same traffic over more links: fewer converted
  // rounds (the busiest link carries less).
  EXPECT_LT(r16.kmachine_rounds, r4.kmachine_rounds);
  EXPECT_GT(r16.cross_messages, r4.cross_messages);  // fewer co-located pairs
}

}  // namespace
}  // namespace dhc::kmachine
