// End-to-end tests for the async execution backend (--model=async):
// equivalence with the synchronous schedule at latency 1, golden-seed
// determinism per solver under delays + drops, shard invariance of the
// faulted engine, graceful crash behaviour, and the runner/artifact
// integration (fault axes, paired seeds, async stats columns).
#include "async/async.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "graph/generators.h"
#include "graph/hamiltonian.h"
#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace dhc::async {
namespace {

using graph::Graph;

const char* const kSolvers[] = {"dra", "dhc1", "dhc2", "turau", "upcast"};

Graph test_instance(graph::NodeId n, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, 2.5, 0.5), rng);
}

void expect_outcomes_equal(const AsyncOutcome& a, const AsyncOutcome& b, const char* what) {
  EXPECT_EQ(a.report.success, b.report.success) << what;
  EXPECT_EQ(a.report.rounds, b.report.rounds) << what;
  EXPECT_EQ(a.report.messages, b.report.messages) << what;
  EXPECT_EQ(a.report.delayed_messages, b.report.delayed_messages) << what;
  EXPECT_EQ(a.report.dropped_messages, b.report.dropped_messages) << what;
  EXPECT_EQ(a.report.crash_dropped_messages, b.report.crash_dropped_messages) << what;
  EXPECT_EQ(a.report.crashed_steps, b.report.crashed_steps) << what;
  EXPECT_EQ(a.report.crashed_rejoins, b.report.crashed_rejoins) << what;
  EXPECT_EQ(a.report.retransmits, b.report.retransmits) << what;
  EXPECT_EQ(a.report.dup_suppressed, b.report.dup_suppressed) << what;
  EXPECT_EQ(a.report.acks_sent, b.report.acks_sent) << what;
  EXPECT_EQ(a.report.payload_messages, b.report.payload_messages) << what;
  EXPECT_EQ(a.report.hit_round_limit, b.report.hit_round_limit) << what;
  EXPECT_EQ(a.report.round_limit_live, b.report.round_limit_live) << what;
  EXPECT_EQ(a.result.metrics.bits, b.result.metrics.bits) << what;
  EXPECT_EQ(a.result.metrics.node_messages_sent, b.result.metrics.node_messages_sent) << what;
  EXPECT_EQ(a.result.metrics.node_messages_received, b.result.metrics.node_messages_received)
      << what;
  EXPECT_EQ(a.result.stats, b.result.stats) << what;
  EXPECT_EQ(a.result.failure_reason, b.result.failure_reason) << what;
  EXPECT_EQ(a.result.cycle.neighbors_of, b.result.cycle.neighbors_of) << what;
}

TEST(AsyncBackend, DeriveFaultSeedIsStableAndSalted) {
  EXPECT_EQ(derive_fault_seed(5), derive_fault_seed(5));
  EXPECT_NE(derive_fault_seed(5), 5u);
  EXPECT_NE(derive_fault_seed(5), derive_fault_seed(6));
}

TEST(AsyncBackend, LatencyOneMatchesTheSynchronousRunBitwise) {
  // delay = fixed:1, no drops, no crashes *is* the synchronous schedule; the
  // async machinery must reproduce the plain run exactly, for every solver.
  const Graph g = test_instance(256, 41);
  for (const char* name : kSolvers) {
    const auto algo = kmachine::algorithm_by_name(name);
    auto plain = algo(g, /*seed=*/7, nullptr, /*shards=*/0, /*faults=*/nullptr);

    AsyncConfig cfg;
    cfg.delay = congest::DelaySpec::parse("fixed:1");
    const AsyncOutcome faulted = run_async(algo, g, /*seed=*/7, cfg);

    EXPECT_EQ(faulted.report.delayed_messages, 0u) << name;
    EXPECT_EQ(faulted.report.dropped_messages, 0u) << name;
    EXPECT_EQ(faulted.result.success, plain.success) << name;
    EXPECT_EQ(faulted.report.rounds, plain.metrics.rounds) << name;
    EXPECT_EQ(faulted.report.messages, plain.metrics.messages) << name;
    EXPECT_EQ(faulted.result.metrics.bits, plain.metrics.bits) << name;
    EXPECT_EQ(faulted.result.metrics.node_messages_received,
              plain.metrics.node_messages_received)
        << name;
    EXPECT_EQ(faulted.result.stats, plain.stats) << name;
    EXPECT_EQ(faulted.result.cycle.neighbors_of, plain.cycle.neighbors_of) << name;
  }
}

TEST(AsyncBackend, GoldenSeedDeterminismPerSolverUnderDelaysAndDrops) {
  const Graph g = test_instance(192, 23);
  AsyncConfig cfg;
  cfg.delay = congest::DelaySpec::parse("uniform:1:4");
  cfg.drop_prob = 0.01;
  cfg.max_rounds = 200000;
  for (const char* name : kSolvers) {
    const auto algo = kmachine::algorithm_by_name(name);
    const AsyncOutcome first = run_async(algo, g, /*seed=*/11, cfg);
    const AsyncOutcome again = run_async(algo, g, /*seed=*/11, cfg);
    expect_outcomes_equal(first, again, name);
    // The run did experience faults (otherwise the test is vacuous).
    EXPECT_GT(first.report.delayed_messages, 0u) << name;
  }
}

TEST(AsyncBackend, ShardCountIsBitwiseNeutralUnderFaults) {
  // Force the sharded engine on even for small rounds, as the CI shard
  // matrix does; the per-message fault decisions are pure hashes, so the
  // serial shard merge must replay the sequential decisions exactly.
  setenv("DHC_SHARD_GRAIN", "1", 1);
  const Graph g = test_instance(160, 57);
  AsyncConfig cfg;
  cfg.delay = congest::DelaySpec::parse("uniform:1:3");
  cfg.drop_prob = 0.02;
  cfg.max_rounds = 200000;
  for (const char* name : {"dhc2", "turau", "upcast"}) {
    const auto algo = kmachine::algorithm_by_name(name);
    cfg.shards = 1;
    const AsyncOutcome base = run_async(algo, g, /*seed=*/29, cfg);
    for (const std::uint32_t shards : {2u, 4u}) {
      cfg.shards = shards;
      const AsyncOutcome sharded = run_async(algo, g, /*seed=*/29, cfg);
      expect_outcomes_equal(base, sharded,
                            (std::string(name) + " shards=" + std::to_string(shards)).c_str());
    }
  }
  unsetenv("DHC_SHARD_GRAIN");
}

TEST(AsyncBackend, MassCrashFailsGracefullyInsteadOfHanging) {
  // More than half the nodes crash early and never rejoin within any
  // plausible run: the protocol cannot finish, and the backend must turn
  // that into reporting (hit_round_limit or a clean failure), not a hang.
  const Graph g = test_instance(128, 3);
  AsyncConfig cfg;
  cfg.crash = congest::CrashSpec::parse("random:0.6:2:100000000");
  cfg.max_rounds = 2000;
  const AsyncOutcome out = run_async(kmachine::algorithm_by_name("dhc2"), g, /*seed=*/5, cfg);
  EXPECT_FALSE(out.report.success);
  EXPECT_GT(out.report.crashed_nodes, 0u);
  EXPECT_TRUE(out.report.hit_round_limit || !out.result.failure_reason.empty());
}

// --- reliable-delivery overlay (reliability=ack) ---------------------------

TEST(AsyncReliable, AckWithNoLossIsBitwiseIdenticalToNone) {
  // The overlay only engages when the plan can actually lose messages, so a
  // lossless ack run must reproduce the none run exactly — for every solver.
  const Graph g = test_instance(128, 17);
  AsyncConfig cfg;
  cfg.delay = congest::DelaySpec::parse("fixed:2");
  cfg.max_rounds = 200000;
  for (const char* name : kSolvers) {
    const auto algo = kmachine::algorithm_by_name(name);
    const AsyncOutcome none = run_async(algo, g, /*seed=*/13, cfg);

    AsyncConfig ack_cfg = cfg;
    ack_cfg.reliability = congest::ReliabilitySpec::parse("ack");
    const AsyncOutcome ack = run_async(algo, g, /*seed=*/13, ack_cfg);

    EXPECT_EQ(ack.report.retransmits, 0u) << name;
    EXPECT_EQ(ack.report.acks_sent, 0u) << name;
    EXPECT_EQ(ack.report.dup_suppressed, 0u) << name;
    expect_outcomes_equal(none, ack, name);
  }
}

TEST(AsyncReliable, AckOverlayDeliversWhereNoneStalls) {
  // The drop-stall headline: at a 2% per-message drop rate the bare async
  // model cannot finish (no solver re-sends), while the overlay retransmits
  // its way through and the verified cycle comes out intact.
  const Graph g = test_instance(128, 61);
  AsyncConfig cfg;
  cfg.delay = congest::DelaySpec::parse("fixed:1");
  cfg.drop_prob = 0.02;
  cfg.max_rounds = 200000;
  const auto algo = kmachine::algorithm_by_name("dhc2");

  const AsyncOutcome bare = run_async(algo, g, /*seed=*/3, cfg);
  EXPECT_FALSE(bare.report.success);

  cfg.reliability = congest::ReliabilitySpec::parse("ack");
  const AsyncOutcome ack = run_async(algo, g, /*seed=*/3, cfg);
  EXPECT_TRUE(ack.report.success) << ack.result.failure_reason;
  EXPECT_GT(ack.report.retransmits, 0u);
  EXPECT_EQ(ack.report.payload_messages,
            ack.report.messages - ack.report.retransmits - ack.report.acks_sent);

  // Golden-seed determinism over the retransmission paths: same config,
  // same seeds, bitwise-equal outcome.
  const AsyncOutcome again = run_async(algo, g, /*seed=*/3, cfg);
  expect_outcomes_equal(ack, again, "ack rerun");
}

TEST(AsyncReliable, AckShardInvarianceUnderDrops) {
  // The overlay's bookkeeping all runs on the engine's serial paths, so the
  // retransmit/ack schedule must be bitwise shard-invariant like everything
  // else — forced-sharded via DHC_SHARD_GRAIN as in the CI matrix.
  setenv("DHC_SHARD_GRAIN", "1", 1);
  const Graph g = test_instance(128, 61);
  AsyncConfig cfg;
  cfg.delay = congest::DelaySpec::parse("fixed:1");
  cfg.drop_prob = 0.02;
  cfg.max_rounds = 200000;
  cfg.reliability = congest::ReliabilitySpec::parse("ack");
  const auto algo = kmachine::algorithm_by_name("dhc2");
  cfg.shards = 1;
  const AsyncOutcome base = run_async(algo, g, /*seed=*/3, cfg);
  EXPECT_GT(base.report.retransmits, 0u);
  for (const std::uint32_t shards : {2u, 4u}) {
    cfg.shards = shards;
    const AsyncOutcome sharded = run_async(algo, g, /*seed=*/3, cfg);
    expect_outcomes_equal(base, sharded,
                          ("ack shards=" + std::to_string(shards)).c_str());
  }
  unsetenv("DHC_SHARD_GRAIN");
}

// --- runner integration ----------------------------------------------------

runner::Scenario async_scenario() {
  runner::Scenario s;
  s.name = "async-test";
  s.model = runner::ExecutionModel::kAsync;
  s.algos = {runner::Algorithm::kDhc2};
  s.sizes = {96};
  s.deltas = {0.5};
  s.cs = {2.5};
  s.delay_dists = {"fixed:2"};
  s.drop_probs = {0.0, 0.1};
  s.seeds = 2;
  s.base_seed = 99;
  return s;
}

TEST(AsyncRunner, FaultAxesMultiplyCellsButNotSeeds) {
  const auto trials = runner::expand(async_scenario());
  ASSERT_EQ(trials.size(), 4u);  // 2 drop probs x 2 seeds
  EXPECT_EQ(trials[0].model, runner::ExecutionModel::kAsync);
  EXPECT_EQ(trials[0].delay_dist, "fixed:2");
  EXPECT_DOUBLE_EQ(trials[0].drop_prob, 0.0);
  EXPECT_DOUBLE_EQ(trials[2].drop_prob, 0.1);
  EXPECT_NE(trials[0].config_index, trials[2].config_index);
  // Paired degradation sweeps: trials differing only in fault intensity run
  // the same instance with the same protocol randomness.
  EXPECT_EQ(trials[0].graph_seed, trials[2].graph_seed);
  EXPECT_EQ(trials[0].algo_seed, trials[2].algo_seed);
  EXPECT_NE(trials[0].algo_seed, trials[1].algo_seed);
}

TEST(AsyncRunner, NonAsyncScenariosRejectFaultAxes) {
  runner::Scenario s = async_scenario();
  s.model = runner::ExecutionModel::kCongest;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.model = runner::ExecutionModel::kAsync;
  EXPECT_NO_THROW(s.validate());
  s.drop_probs = {1.0};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.drop_probs = {0.0};
  s.delay_dists = {"bogus:3"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(AsyncRunner, ReliabilityAxisMultipliesCellsButNotSeeds) {
  runner::Scenario s = async_scenario();
  s.drop_probs = {0.1};
  s.reliabilities = {"none", "ack"};
  const auto trials = runner::expand(s);
  ASSERT_EQ(trials.size(), 4u);  // 2 reliability modes x 2 seeds
  EXPECT_EQ(trials[0].reliability, "none");
  EXPECT_EQ(trials[2].reliability, "ack");
  EXPECT_EQ(trials[2].rto, s.rto);
  EXPECT_NE(trials[0].config_index, trials[2].config_index);
  // ack rows stay paired (common random numbers) with their none controls.
  EXPECT_EQ(trials[0].graph_seed, trials[2].graph_seed);
  EXPECT_EQ(trials[0].algo_seed, trials[2].algo_seed);
  EXPECT_NE(trials[0].algo_seed, trials[1].algo_seed);
}

TEST(AsyncRunner, NonAsyncScenariosRejectReliability) {
  runner::Scenario s = async_scenario();
  s.reliabilities = {"none", "ack"};
  EXPECT_NO_THROW(s.validate());
  s.model = runner::ExecutionModel::kCongest;
  s.drop_probs = {0.0};
  s.delay_dists = {"none"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.reliabilities = {"none"};
  s.rto = "rto:9";
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.rto = runner::Scenario{}.rto;
  EXPECT_NO_THROW(s.validate());
  // Malformed specs are rejected on any model.
  s.model = runner::ExecutionModel::kAsync;
  s.reliabilities = {"bogus"};
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s.reliabilities = {"ack"};
  s.rto = "rto:0";
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(AsyncRunner, RoundLimitFailuresClassifyStalledVersusLive) {
  // A run that trips the round limit gets classified: live (messages still
  // in flight — turau's delay livelock) vs stalled (only wake-up polling
  // left, the drop-stall signature), both in the failure reason suffix and
  // as the round_limit_live stat.
  runner::RunnerOptions opt;
  opt.threads = 1;

  runner::Scenario live = async_scenario();
  live.algos = {runner::Algorithm::kTurau};
  live.delay_dists = {"uniform:1:3"};
  live.drop_probs = {0.0};
  live.seeds = 1;
  live.max_rounds = 3000;
  const auto live_results = runner::run_trials(runner::expand(live), opt);
  ASSERT_EQ(live_results.size(), 1u);
  ASSERT_FALSE(live_results[0].success);
  ASSERT_EQ(live_results[0].stats.at("hit_round_limit"), 1.0);
  EXPECT_EQ(live_results[0].stats.at("round_limit_live"), 1.0);
  EXPECT_NE(live_results[0].failure_reason.find(" (live)"), std::string::npos)
      << live_results[0].failure_reason;

  runner::Scenario mixed = async_scenario();
  mixed.algos = {runner::Algorithm::kDra};
  mixed.delay_dists = {"uniform:1:8"};
  mixed.drop_probs = {0.0};
  mixed.seeds = 2;
  mixed.max_rounds = 3000;
  const auto mixed_results = runner::run_trials(runner::expand(mixed), opt);
  ASSERT_EQ(mixed_results.size(), 2u);
  bool saw_stalled = false;
  for (const auto& r : mixed_results) {
    if (r.stats.at("hit_round_limit") == 0.0) continue;
    const bool is_live = r.stats.at("round_limit_live") != 0.0;
    saw_stalled |= !is_live;
    EXPECT_NE(r.failure_reason.find(is_live ? " (live)" : " (stalled)"), std::string::npos)
        << r.failure_reason;
  }
  EXPECT_TRUE(saw_stalled) << "dra/uniform:1:8 seed pair should include a quiescent stall";
}

TEST(AsyncRunner, NonAsyncExpansionIsUnchangedByTheFaultAxesDefaults) {
  // The no-fault singletons must leave non-async trial lists (cells and
  // seeds) exactly as they were before the async model existed.
  runner::Scenario s;
  s.algos = {runner::Algorithm::kDhc2};
  s.sizes = {64};
  s.seeds = 3;
  s.base_seed = 7;
  const auto trials = runner::expand(s);
  ASSERT_EQ(trials.size(), 3u);
  for (const auto& t : trials) {
    EXPECT_EQ(t.model, runner::ExecutionModel::kCongest);
    EXPECT_EQ(t.delay_dist, "none");
    EXPECT_DOUBLE_EQ(t.drop_prob, 0.0);
    EXPECT_EQ(t.crash_schedule, "none");
  }
}

TEST(AsyncRunner, TrialsCarryFaultStatsIntoArtifacts) {
  const auto trials = runner::expand(async_scenario());
  runner::RunnerOptions opt;
  opt.threads = 2;
  const auto results = runner::run_trials(trials, opt);
  ASSERT_EQ(results.size(), trials.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    ASSERT_TRUE(r.stats.contains("delayed_messages")) << i;
    ASSERT_TRUE(r.stats.contains("dropped_messages")) << i;
    ASSERT_TRUE(r.stats.contains("crashed_steps")) << i;
    ASSERT_TRUE(r.stats.contains("hit_round_limit")) << i;
    ASSERT_TRUE(r.stats.contains("retransmits")) << i;
    ASSERT_TRUE(r.stats.contains("payload_messages")) << i;
    ASSERT_TRUE(r.stats.contains("crashed_rejoins")) << i;
    EXPECT_GT(r.stats.at("delayed_messages"), 0.0) << i;  // fixed:2 delays all
    if (trials[i].drop_prob == 0.0) {
      EXPECT_EQ(r.stats.at("dropped_messages"), 0.0) << i;
      EXPECT_TRUE(r.success) << i << ": " << r.failure_reason;
    }
  }

  const auto summaries = runner::aggregate(trials, results);
  std::ostringstream os;
  runner::write_json(os, "async-test", summaries);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"model\": \"async\""), std::string::npos);
  EXPECT_NE(json.find("\"delay_dist\": \"fixed:2\""), std::string::npos);
  EXPECT_NE(json.find("\"crash_schedule\": \"none\""), std::string::npos);
  EXPECT_NE(json.find("\"reliability\": \"none\""), std::string::npos);
  EXPECT_NE(json.find("\"rto\": \"rto:4:2:16\""), std::string::npos);
  EXPECT_NE(json.find("\"delayed_messages\""), std::string::npos);
}

TEST(AsyncRunner, AsyncTrialsAreThreadCountInvariant) {
  const auto trials = runner::expand(async_scenario());
  runner::RunnerOptions serial;
  serial.threads = 1;
  runner::RunnerOptions wide;
  wide.threads = 4;
  const auto a = runner::run_trials(trials, serial);
  const auto b = runner::run_trials(trials, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].success, b[i].success) << i;
    EXPECT_DOUBLE_EQ(a[i].rounds, b[i].rounds) << i;
    EXPECT_DOUBLE_EQ(a[i].messages, b[i].messages) << i;
    EXPECT_EQ(a[i].stats, b[i].stats) << i;
  }
}

}  // namespace
}  // namespace dhc::async
