// Unit tests for the table printer and CLI flag parser.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "support/cli.h"
#include "support/table.h"

namespace dhc::support {
namespace {

TEST(Table, PrintsAlignedColumnsWithRule) {
  Table t({"n", "rounds"});
  t.add_row({"64", "123"});
  t.add_row({"1024", "4567"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("n"), std::string::npos);
  EXPECT_NE(out.find("rounds"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("4567"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderListThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 4), "3.1416");
  EXPECT_EQ(Table::num(static_cast<std::uint64_t>(42)), "42");
}

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, ParsesTypedFlags) {
  const auto cli = make_cli({"--n=4096", "--c=3.5", "--name=dhc2", "--verbose"});
  EXPECT_EQ(cli.get_int("n", 0), 4096);
  EXPECT_DOUBLE_EQ(cli.get_double("c", 0.0), 3.5);
  EXPECT_EQ(cli.get_string("name", ""), "dhc2");
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto cli = make_cli({});
  EXPECT_EQ(cli.get_int("n", 128), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("c", 2.5), 2.5);
  EXPECT_EQ(cli.get_string("algo", "dra"), "dra");
  EXPECT_FALSE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.has("n"));
}

TEST(Cli, ListFlags) {
  const auto cli = make_cli({"--sizes=256,512,1024", "--deltas=0.3,0.5"});
  EXPECT_EQ(cli.get_int_list("sizes", {}), (std::vector<std::int64_t>{256, 512, 1024}));
  EXPECT_EQ(cli.get_double_list("deltas", {}), (std::vector<double>{0.3, 0.5}));
  EXPECT_EQ(cli.get_int_list("absent", {7}), (std::vector<std::int64_t>{7}));
}

TEST(Cli, StringListFlags) {
  const auto cli = make_cli({"--algos=dhc2,turau", "--empty=", "--holey=dhc2,,turau"});
  EXPECT_EQ(cli.get_string_list("algos", {}),
            (std::vector<std::string>{"dhc2", "turau"}));
  EXPECT_EQ(cli.get_string_list("absent", {"dra"}), (std::vector<std::string>{"dra"}));
  EXPECT_THROW(cli.get_string_list("empty", {}), std::invalid_argument);
  EXPECT_THROW(cli.get_string_list("holey", {}), std::invalid_argument);
}

TEST(Cli, MalformedValuesThrow) {
  const auto cli = make_cli({"--n=abc", "--flag=maybe"});
  EXPECT_THROW(cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(cli.get_bool("flag", false), std::invalid_argument);
}

TEST(Cli, PositionalArgumentRejected) {
  std::vector<const char*> argv{"prog", "positional"};
  EXPECT_THROW(Cli(2, argv.data()), std::invalid_argument);
}

}  // namespace
}  // namespace dhc::support
