// The arena byte budget (NetworkConfig::arena_budget_bytes / the
// DHC_ARENA_BUDGET environment default) is a capacity policy, not a behavior
// knob: it decides when the simulator returns buffer memory to the
// allocator, never which messages exist.  These tests pin that contract by
// running real solvers with and without an aggressively small budget and
// requiring the entire Result — headline metrics, per-node vectors,
// arena_bytes_peak itself, solver stats, and the returned cycle — to be
// bitwise identical.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/dhc2.h"
#include "core/dra.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace dhc::core {
namespace {

using graph::Graph;

// Runs `body` with DHC_ARENA_BUDGET set to `value` ("" = unset), restoring
// the previous state afterwards so other tests see a clean environment.
template <typename Body>
auto with_budget_env(const std::string& value, Body body) {
  const char* old = std::getenv("DHC_ARENA_BUDGET");
  const std::string saved = old != nullptr ? old : "";
  const bool had = old != nullptr;
  if (value.empty()) {
    unsetenv("DHC_ARENA_BUDGET");
  } else {
    setenv("DHC_ARENA_BUDGET", value.c_str(), 1);
  }
  auto result = body();
  if (had) {
    setenv("DHC_ARENA_BUDGET", saved.c_str(), 1);
  } else {
    unsetenv("DHC_ARENA_BUDGET");
  }
  return result;
}

void expect_results_identical(const Result& a, const Result& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.failure_reason, b.failure_reason);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.bits, b.metrics.bits);
  EXPECT_EQ(a.metrics.barrier_count, b.metrics.barrier_count);
  EXPECT_EQ(a.metrics.arena_bytes_peak, b.metrics.arena_bytes_peak);
  EXPECT_EQ(a.metrics.node_messages_sent, b.metrics.node_messages_sent);
  EXPECT_EQ(a.metrics.node_messages_received, b.metrics.node_messages_received);
  EXPECT_EQ(a.metrics.node_compute_ops, b.metrics.node_compute_ops);
  EXPECT_EQ(a.metrics.node_memory_words, b.metrics.node_memory_words);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(ArenaBudget, Dhc2IdenticalUnderTinyBudget) {
  support::Rng grng(21);
  const Graph g = graph::gnp(192, 0.12, grng);
  const auto base = with_budget_env("", [&] { return run_dhc2(g, 9); });
  ASSERT_GT(base.metrics.messages, 0u);
  ASSERT_GT(base.metrics.arena_bytes_peak, 0u);
  // 4 KB: far below any round's in-flight volume, so the trim path engages
  // every round.
  const auto budgeted = with_budget_env("4096", [&] { return run_dhc2(g, 9); });
  expect_results_identical(base, budgeted);
}

TEST(ArenaBudget, DraIdenticalAcrossBudgetSettings) {
  support::Rng grng(5);
  const Graph g = graph::gnp(160, 0.15, grng);
  const auto base = with_budget_env("", [&] { return run_dra(g, 3); });
  const auto small = with_budget_env("4096", [&] { return run_dra(g, 3); });
  const auto large = with_budget_env("1073741824", [&] { return run_dra(g, 3); });
  expect_results_identical(base, small);
  expect_results_identical(base, large);
}

TEST(ArenaBudget, ExplicitConfigBeatsEnvironment) {
  // A nonzero NetworkConfig::arena_budget_bytes must win over the env var —
  // pinned indirectly: a malformed env value falls back to "no budget" and
  // still changes nothing observable.
  support::Rng grng(8);
  const Graph g = graph::gnp(96, 0.15, grng);
  const auto base = with_budget_env("", [&] { return run_dhc2(g, 4); });
  const auto junk = with_budget_env("not-a-number", [&] { return run_dhc2(g, 4); });
  expect_results_identical(base, junk);
}

}  // namespace
}  // namespace dhc::core
