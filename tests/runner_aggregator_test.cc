// Unit tests for the runner's aggregation and artifact serialization.
#include "runner/aggregator.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/stats.h"

namespace dhc::runner {
namespace {

TrialConfig make_config(std::size_t cell, std::uint64_t trial) {
  TrialConfig t;
  t.config_index = cell;
  t.trial_index = trial;
  t.algo = Algorithm::kDhc2;
  t.n = 256;
  t.delta = 0.5;
  t.c = 2.5;
  return t;
}

TrialResult make_result(bool success, double rounds, double messages) {
  TrialResult r;
  r.success = success;
  r.rounds = rounds;
  r.messages = messages;
  r.stats["num_colors"] = 16.0;
  r.stats["graph_connected"] = success ? 1.0 : 0.0;
  return r;
}

TEST(Aggregate, QuantilesMatchSupportStats) {
  std::vector<TrialConfig> trials;
  std::vector<TrialResult> results;
  const std::vector<double> rounds = {10.0, 20.0, 30.0, 40.0, 50.0};
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    trials.push_back(make_config(0, i));
    results.push_back(make_result(true, rounds[i], rounds[i] * 100));
  }
  // One failed trial: excluded from cost digests, counted in success_rate.
  trials.push_back(make_config(0, rounds.size()));
  results.push_back(make_result(false, 999.0, 999.0));

  const auto summaries = aggregate(trials, results);
  ASSERT_EQ(summaries.size(), 1u);
  const auto& s = summaries[0];
  EXPECT_EQ(s.trials, 6u);
  EXPECT_EQ(s.successes, 5u);
  EXPECT_DOUBLE_EQ(s.success_rate, 5.0 / 6.0);

  const auto expected = support::summarize(rounds);
  EXPECT_EQ(s.rounds.count, 5u);
  EXPECT_DOUBLE_EQ(s.rounds.mean, expected.mean);
  EXPECT_DOUBLE_EQ(s.rounds.median, support::quantile(rounds, 0.5));
  EXPECT_DOUBLE_EQ(s.rounds.p95, support::quantile(rounds, 0.95));
  EXPECT_DOUBLE_EQ(s.rounds.min, expected.min);
  EXPECT_DOUBLE_EQ(s.rounds.max, expected.max);
  EXPECT_DOUBLE_EQ(s.messages.median, support::quantile({1000, 2000, 3000, 4000, 5000}, 0.5));

  // Stat means run over all six trials, failures included.
  EXPECT_DOUBLE_EQ(s.stat_means.at("num_colors"), 16.0);
  EXPECT_DOUBLE_EQ(s.stat_means.at("graph_connected"), 5.0 / 6.0);
}

TEST(Aggregate, GroupsInterleavedCellsByConfigIndex) {
  std::vector<TrialConfig> trials;
  std::vector<TrialResult> results;
  // Cells 0 and 1 interleaved, as a multi-threaded run would complete them.
  for (const std::size_t cell : {0u, 1u, 0u, 1u}) {
    trials.push_back(make_config(cell, trials.size()));
    results.push_back(make_result(true, cell == 0 ? 10.0 : 100.0, 1.0));
  }
  const auto summaries = aggregate(trials, results);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].config.config_index, 0u);
  EXPECT_DOUBLE_EQ(summaries[0].rounds.mean, 10.0);
  EXPECT_EQ(summaries[1].config.config_index, 1u);
  EXPECT_DOUBLE_EQ(summaries[1].rounds.mean, 100.0);
}

TEST(Aggregate, RejectsMismatchedLengths) {
  EXPECT_THROW(aggregate({make_config(0, 0)}, {}), std::invalid_argument);
}

TEST(Aggregate, AllFailedCellHasEmptyDigests) {
  const auto summaries =
      aggregate({make_config(0, 0)}, {make_result(false, 7.0, 7.0)});
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].successes, 0u);
  EXPECT_EQ(summaries[0].rounds.count, 0u);
  EXPECT_DOUBLE_EQ(summaries[0].success_rate, 0.0);
}

TEST(WriteJson, IsDeterministicAndWellFormed) {
  std::vector<TrialConfig> trials = {make_config(0, 0), make_config(0, 1)};
  std::vector<TrialResult> results = {make_result(true, 12.0, 340.0),
                                      make_result(true, 14.0, 360.0)};
  // wall_seconds must not leak into the artifact (it varies across runs).
  results[0].wall_seconds = 1.25;
  results[1].wall_seconds = 9.75;
  const auto summaries = aggregate(trials, results);

  std::ostringstream a, b;
  write_json(a, "demo", summaries);
  results[0].wall_seconds = 0.0;
  results[1].wall_seconds = 123.0;
  write_json(b, "demo", aggregate(trials, results));
  EXPECT_EQ(a.str(), b.str());

  EXPECT_NE(a.str().find("\"scenario\": \"demo\""), std::string::npos);
  EXPECT_NE(a.str().find("\"algo\": \"dhc2\""), std::string::npos);
  EXPECT_NE(a.str().find("\"median\": 13"), std::string::npos);
  EXPECT_EQ(a.str().find("wall"), std::string::npos);
}

TEST(WriteCsv, OneRowPerCellPlusHeader) {
  std::vector<TrialConfig> trials = {make_config(0, 0), make_config(1, 0)};
  trials[1].algo = Algorithm::kDra;
  const std::vector<TrialResult> results = {make_result(true, 10.0, 20.0),
                                            make_result(true, 30.0, 40.0)};
  std::ostringstream os;
  write_csv(os, aggregate(trials, results));
  std::istringstream lines(os.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 3u);
  EXPECT_NE(os.str().find("dra"), std::string::npos);
}

TEST(SummaryTable, OneRowPerCell) {
  const std::vector<TrialConfig> trials = {make_config(0, 0), make_config(1, 0)};
  const std::vector<TrialResult> results = {make_result(true, 10.0, 20.0),
                                            make_result(false, 0.0, 0.0)};
  EXPECT_EQ(summary_table(aggregate(trials, results)).rows(), 2u);
}

}  // namespace
}  // namespace dhc::runner
