// Cross-algorithm integration: every solver on the same instance must
// produce a cycle that passes both the offline verifier and the in-model
// distributed verifier; their costs must sit in the relationships the paper
// claims (upcast root hotspot, fully-distributed memory profile, CONGEST
// compliance everywhere).
#include <gtest/gtest.h>

#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/distributed_verify.h"
#include "core/dra.h"
#include "core/upcast.h"
#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

class CrossAlgorithm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossAlgorithm, AllSolversAgreeOnSolvabilityAndVerify) {
  const std::uint64_t seed = GetParam();
  // The common regime all four algorithms accept: p = c·ln n / √n.
  const graph::NodeId n = 768;
  support::Rng rng(seed * 9001);
  const Graph g = graph::gnp(n, graph::edge_probability(n, 2.5, 0.5), rng);

  Dhc2Config d2;
  d2.delta = 0.5;
  UpcastConfig up;

  struct Run {
    const char* name;
    Result result;
  };
  Run runs[] = {
      {"dhc1", run_dhc1(g, seed * 3 + 1)},
      {"dhc2", run_dhc2(g, seed * 5 + 2, d2)},
      {"upcast", run_upcast(g, seed * 7 + 3, up)},
  };

  for (const auto& [name, r] : runs) {
    ASSERT_TRUE(r.success) << name << " seed=" << seed << ": " << r.failure_reason;
    // Offline check.
    EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok()) << name;
    // In-model check.
    const auto dv = run_distributed_verify(g, r.cycle, seed + 17);
    EXPECT_TRUE(dv.accepted) << name << ": " << dv.reason;
    // Output convention: every node names exactly two incident edges.
    for (graph::NodeId v = 0; v < n; ++v) {
      const auto [a, b] = r.cycle.neighbors_of[v];
      EXPECT_NE(a, b);
      EXPECT_TRUE(g.has_edge(v, a));
      EXPECT_TRUE(g.has_edge(v, b));
    }
  }

  // The paper's load profile: the upcast root stores Ω(n); the
  // fully-distributed algorithms never approach n on any node.
  const auto upcast_max_mem = runs[2].result.metrics.max_node_peak_memory();
  EXPECT_GE(upcast_max_mem, static_cast<std::int64_t>(n));
  for (int i = 0; i < 2; ++i) {
    EXPECT_LT(runs[i].result.metrics.max_node_peak_memory(),
              static_cast<std::int64_t>(4 * g.max_degree() + 64))
        << runs[i].name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossAlgorithm, ::testing::Range<std::uint64_t>(1, 5));

TEST(CrossAlgorithm, DifferentAlgorithmsFindDifferentCyclesOfTheSameGraph) {
  const graph::NodeId n = 512;
  support::Rng rng(77);
  const Graph g = graph::gnp(n, graph::edge_probability(n, 2.5, 0.5), rng);
  Dhc2Config d2;
  d2.delta = 0.5;
  const auto a = run_dhc2(g, 1, d2);
  const auto b = run_upcast(g, 2);
  ASSERT_TRUE(a.success) << a.failure_reason;
  ASSERT_TRUE(b.success) << b.failure_reason;
  // Exponentially many Hamiltonian cycles exist ([14], [7]); randomized
  // solvers find distinct ones.
  EXPECT_NE(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

}  // namespace
}  // namespace dhc::core
