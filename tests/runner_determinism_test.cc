// End-to-end runner tests: trial execution is a pure function of the
// TrialConfig, so results — and the serialized JSON artifact — must be
// bitwise independent of worker-thread count and scheduling order.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include <algorithm>

#include "congest/network.h"
#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"
#include "support/worker_pool.h"

namespace dhc::runner {
namespace {

void expect_same_results(const std::vector<TrialResult>& a, const std::vector<TrialResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].success, b[i].success) << "trial " << i;
    EXPECT_EQ(a[i].failure_reason, b[i].failure_reason) << "trial " << i;
    EXPECT_EQ(a[i].rounds, b[i].rounds) << "trial " << i;
    EXPECT_EQ(a[i].messages, b[i].messages) << "trial " << i;
    EXPECT_EQ(a[i].bits, b[i].bits) << "trial " << i;
    EXPECT_EQ(a[i].peak_memory, b[i].peak_memory) << "trial " << i;
    EXPECT_EQ(a[i].stats, b[i].stats) << "trial " << i;
  }
}

std::string json_of(const Scenario& s, const std::vector<TrialConfig>& trials,
                    const std::vector<TrialResult>& results) {
  std::ostringstream os;
  write_json(os, s.name, aggregate(trials, results));
  return os.str();
}

TEST(TrialRunner, DraResultsAreThreadCountInvariant) {
  Scenario s;
  s.algos = {Algorithm::kDra};
  s.sizes = {48};
  s.deltas = {1.0};
  s.cs = {6.0};
  s.seeds = 6;
  s.base_seed = 3;
  const auto trials = expand(s);

  const auto serial = run_trials(trials, {.threads = 1});
  const auto parallel = run_trials(trials, {.threads = 8});
  expect_same_results(serial, parallel);
  EXPECT_EQ(json_of(s, trials, serial), json_of(s, trials, parallel));
}

TEST(TrialRunner, MixedAlgorithmScenarioIsThreadCountInvariant) {
  Scenario s;
  s.algos = {Algorithm::kSequential, Algorithm::kDhc2, Algorithm::kUpcast};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.seeds = 3;
  s.base_seed = 11;
  const auto trials = expand(s);

  const auto serial = run_trials(trials, {.threads = 1});
  const auto parallel = run_trials(trials, {.threads = 4});
  expect_same_results(serial, parallel);
  EXPECT_EQ(json_of(s, trials, serial), json_of(s, trials, parallel));
}

TEST(TrialRunner, SuccessfulTrialsVerifyAndRecordGraphStats) {
  Scenario s;
  s.algos = {Algorithm::kDra};
  s.sizes = {48};
  s.deltas = {1.0};
  s.cs = {8.0};
  s.seeds = 4;
  const auto trials = expand(s);
  const auto results = run_trials(trials, {.threads = 2});

  std::size_t successes = 0;
  for (const auto& r : results) {
    if (r.success) ++successes;
    // Instance facts are recorded for every trial.
    EXPECT_TRUE(r.stats.contains("graph_m"));
    EXPECT_TRUE(r.stats.contains("graph_connected"));
    EXPECT_GT(r.stats.at("mean_degree"), 0.0);
  }
  // c = 8 at n = 48 is far above the practical threshold: DRA (with its
  // built-in restarts) should essentially always succeed.
  EXPECT_GE(successes, 3u);
}

TEST(TrialRunner, ExceptionsBecomeFailedTrialsNotCrashes) {
  // gnm with c so large the edge count clamps to the complete graph still
  // runs; an intentionally absurd n = 4, delta tiny combination may starve
  // but must never throw out of run_trials.
  Scenario s;
  s.algos = {Algorithm::kDhc1};
  s.sizes = {4};
  s.deltas = {0.05};
  s.cs = {0.1};
  s.seeds = 2;
  const auto trials = expand(s);
  std::vector<TrialResult> results;
  EXPECT_NO_THROW(results = run_trials(trials, {.threads = 2}));
  for (const auto& r : results) {
    if (!r.success) {
      EXPECT_FALSE(r.failure_reason.empty());
    }
  }
}

TEST(TrialRunner, KMachinePricingRunsAndScalesWithMachines) {
  Scenario s;
  s.algos = {Algorithm::kDhc2KMachine};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.machines = {2, 8};
  s.bandwidth = 8;
  s.seeds = 2;
  const auto trials = expand(s);
  const auto results = run_trials(trials, {.threads = 2});
  const auto summaries = aggregate(trials, results);
  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& sum : summaries) {
    EXPECT_TRUE(sum.stat_means.contains("kmachine_rounds"));
    EXPECT_TRUE(sum.stat_means.contains("congest_rounds"));
  }
}

TEST(TrialRunner, ResultsAreShardCountInvariant) {
  Scenario s;
  s.algos = {Algorithm::kDhc2, Algorithm::kTurau};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.seeds = 3;
  s.base_seed = 19;
  const auto trials = expand(s);

  const auto sequential = run_trials(trials, {.threads = 1, .shards = 1});
  const auto sharded = run_trials(trials, {.threads = 1, .shards = 4});
  expect_same_results(sequential, sharded);
  EXPECT_EQ(json_of(s, trials, sequential), json_of(s, trials, sharded));
}

TEST(TrialRunner, KMachineModelResultsAreShardCountInvariant) {
  // The k-machine backend consumes the merged event log on sharded rounds;
  // converted rounds (and the whole artifact) must not depend on the split.
  Scenario s;
  s.model = ExecutionModel::kKMachine;
  s.algos = {Algorithm::kDra, Algorithm::kDhc2, Algorithm::kTurau};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.machines = {4};
  s.bandwidth = 8;
  s.seeds = 2;
  s.base_seed = 23;
  const auto trials = expand(s);

  const auto sequential = run_trials(trials, {.threads = 1, .shards = 1});
  const auto sharded = run_trials(trials, {.threads = 1, .shards = 4});
  expect_same_results(sequential, sharded);
  EXPECT_EQ(json_of(s, trials, sequential), json_of(s, trials, sharded));
}

TEST(ResolveParallelism, ClampsThreadsToHardwareBeforeTrialCountMin) {
  const unsigned hw = support::WorkerPool::hardware_lanes();
  RunnerOptions opt;
  opt.threads = hw * 64;  // absurd request
  const auto par = resolve_parallelism(/*trial_count=*/1000, opt);
  EXPECT_LE(par.threads, hw);  // hardware clamp applied first
  // Many trials: trial-parallelism wins (a DHC_SHARDS environment default,
  // as in the CI shard matrix, is honored like an explicit flag).
  EXPECT_EQ(par.shards, congest::default_shards());
}

TEST(ResolveParallelism, HonorsExplicitShardsAndClampsTrialThreads) {
  RunnerOptions opt;
  opt.threads = 1;
  opt.shards = 8;  // explicit: the partition count is a determinism knob
  const auto par = resolve_parallelism(/*trial_count=*/10, opt);
  EXPECT_EQ(par.shards, 8u);
  EXPECT_EQ(par.threads, 1u);  // budget 1: no concurrent trials
}

TEST(ResolveParallelism, AutoPrefersTrialParallelismForManySmallTrials) {
  RunnerOptions opt;
  opt.threads = 0;  // whole machine
  const unsigned hw = support::WorkerPool::hardware_lanes();
  const auto par = resolve_parallelism(/*trial_count=*/hw * 4, opt);
  EXPECT_EQ(par.shards, congest::default_shards());  // 1 without DHC_SHARDS
  EXPECT_EQ(par.threads, hw);
}

TEST(ResolveParallelism, AutoShardsWhenTrialsCannotFillTheBudget) {
  // Simulate an 8-lane budget with 2 huge trials on any machine: the split
  // must keep threads × shards within min(8, hardware).
  RunnerOptions opt;
  opt.threads = 8;
  const unsigned hw = support::WorkerPool::hardware_lanes();
  const unsigned budget = std::min(8u, hw);
  const auto par = resolve_parallelism(/*trial_count=*/2, opt);
  if (congest::default_shards() == 1) {
    EXPECT_EQ(par.shards, std::max(1u, budget / 2));
  }
  EXPECT_LE(static_cast<unsigned>(par.threads) * std::min<unsigned>(par.shards, budget),
            budget * 2);  // never oversubscribes beyond the lanes-per-trial clamp
  EXPECT_LE(par.threads, 2u);
}

TEST(ResolveParallelism, NeverReturnsZero) {
  const auto par = resolve_parallelism(0, RunnerOptions{.threads = 0, .shards = 0});
  EXPECT_GE(par.threads, 1u);
  EXPECT_GE(par.shards, 1u);
}

TEST(ResolveParallelism, ZeroTrialsResolveToTheNeutralSplit) {
  // An empty trial list used to fall into the few-huge-trials branch and
  // hand the entire budget to the shard axis of trials that don't exist;
  // bench artifacts then recorded that fictional split.
  RunnerOptions opt;
  opt.threads = 8;
  const auto par = resolve_parallelism(/*trial_count=*/0, opt);
  EXPECT_EQ(par.threads, 1u);
  EXPECT_EQ(par.shards, 1u);
}

TEST(ResolveParallelism, ThreadsTimesLanesNeverExceedTheBudget) {
  const unsigned hw = support::WorkerPool::hardware_lanes();
  for (const unsigned threads : {1u, 2u, 5u, 8u, 64u}) {
    for (const std::size_t trials : {1ul, 2ul, 3ul, 7ul, 100ul}) {
      RunnerOptions opt;
      opt.threads = threads;
      const unsigned budget = std::max(1u, std::min(threads, hw));
      const auto par = resolve_parallelism(trials, opt);
      const unsigned lanes_per_trial = std::min<unsigned>(par.shards, budget);
      EXPECT_LE(par.threads * lanes_per_trial, budget)
          << "threads=" << threads << " trials=" << trials;
      EXPECT_LE(par.threads, trials) << "threads=" << threads << " trials=" << trials;
    }
  }
}

TEST(TrialRunner, BackToBackTrialsOnAPersistentPoolAreBitwiseIdentical) {
  // Regression for cross-trial state on reused pool threads: upcast's
  // downcast pump once kept a `static thread_local` scratch buffer, so a
  // worker thread's second trial started with a different allocator/footprint
  // state than a fresh thread's first.  Running the same scenario twice
  // through one persistent 1-thread pool (same worker thread serves every
  // trial) must reproduce the fresh-run results bitwise.
  Scenario s;
  s.algos = {Algorithm::kUpcast, Algorithm::kCollectAll};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.seeds = 2;
  s.base_seed = 31;
  const auto trials = expand(s);

  const auto fresh = run_trials(trials, {.threads = 1});
  const auto first = run_trials(trials, {.threads = 1});
  const auto second = run_trials(trials, {.threads = 1});
  expect_same_results(fresh, first);
  expect_same_results(first, second);
  EXPECT_EQ(json_of(s, trials, first), json_of(s, trials, second));
}

}  // namespace
}  // namespace dhc::runner
