// End-to-end runner tests: trial execution is a pure function of the
// TrialConfig, so results — and the serialized JSON artifact — must be
// bitwise independent of worker-thread count and scheduling order.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace dhc::runner {
namespace {

void expect_same_results(const std::vector<TrialResult>& a, const std::vector<TrialResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].success, b[i].success) << "trial " << i;
    EXPECT_EQ(a[i].failure_reason, b[i].failure_reason) << "trial " << i;
    EXPECT_EQ(a[i].rounds, b[i].rounds) << "trial " << i;
    EXPECT_EQ(a[i].messages, b[i].messages) << "trial " << i;
    EXPECT_EQ(a[i].bits, b[i].bits) << "trial " << i;
    EXPECT_EQ(a[i].peak_memory, b[i].peak_memory) << "trial " << i;
    EXPECT_EQ(a[i].stats, b[i].stats) << "trial " << i;
  }
}

std::string json_of(const Scenario& s, const std::vector<TrialConfig>& trials,
                    const std::vector<TrialResult>& results) {
  std::ostringstream os;
  write_json(os, s.name, aggregate(trials, results));
  return os.str();
}

TEST(TrialRunner, DraResultsAreThreadCountInvariant) {
  Scenario s;
  s.algos = {Algorithm::kDra};
  s.sizes = {48};
  s.deltas = {1.0};
  s.cs = {6.0};
  s.seeds = 6;
  s.base_seed = 3;
  const auto trials = expand(s);

  const auto serial = run_trials(trials, {.threads = 1});
  const auto parallel = run_trials(trials, {.threads = 8});
  expect_same_results(serial, parallel);
  EXPECT_EQ(json_of(s, trials, serial), json_of(s, trials, parallel));
}

TEST(TrialRunner, MixedAlgorithmScenarioIsThreadCountInvariant) {
  Scenario s;
  s.algos = {Algorithm::kSequential, Algorithm::kDhc2, Algorithm::kUpcast};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.seeds = 3;
  s.base_seed = 11;
  const auto trials = expand(s);

  const auto serial = run_trials(trials, {.threads = 1});
  const auto parallel = run_trials(trials, {.threads = 4});
  expect_same_results(serial, parallel);
  EXPECT_EQ(json_of(s, trials, serial), json_of(s, trials, parallel));
}

TEST(TrialRunner, SuccessfulTrialsVerifyAndRecordGraphStats) {
  Scenario s;
  s.algos = {Algorithm::kDra};
  s.sizes = {48};
  s.deltas = {1.0};
  s.cs = {8.0};
  s.seeds = 4;
  const auto trials = expand(s);
  const auto results = run_trials(trials, {.threads = 2});

  std::size_t successes = 0;
  for (const auto& r : results) {
    if (r.success) ++successes;
    // Instance facts are recorded for every trial.
    EXPECT_TRUE(r.stats.contains("graph_m"));
    EXPECT_TRUE(r.stats.contains("graph_connected"));
    EXPECT_GT(r.stats.at("mean_degree"), 0.0);
  }
  // c = 8 at n = 48 is far above the practical threshold: DRA (with its
  // built-in restarts) should essentially always succeed.
  EXPECT_GE(successes, 3u);
}

TEST(TrialRunner, ExceptionsBecomeFailedTrialsNotCrashes) {
  // gnm with c so large the edge count clamps to the complete graph still
  // runs; an intentionally absurd n = 4, delta tiny combination may starve
  // but must never throw out of run_trials.
  Scenario s;
  s.algos = {Algorithm::kDhc1};
  s.sizes = {4};
  s.deltas = {0.05};
  s.cs = {0.1};
  s.seeds = 2;
  const auto trials = expand(s);
  std::vector<TrialResult> results;
  EXPECT_NO_THROW(results = run_trials(trials, {.threads = 2}));
  for (const auto& r : results) {
    if (!r.success) {
      EXPECT_FALSE(r.failure_reason.empty());
    }
  }
}

TEST(TrialRunner, KMachinePricingRunsAndScalesWithMachines) {
  Scenario s;
  s.algos = {Algorithm::kDhc2KMachine};
  s.sizes = {64};
  s.deltas = {0.5};
  s.cs = {4.0};
  s.machines = {2, 8};
  s.bandwidth = 8;
  s.seeds = 2;
  const auto trials = expand(s);
  const auto results = run_trials(trials, {.threads = 2});
  const auto summaries = aggregate(trials, results);
  ASSERT_EQ(summaries.size(), 2u);
  for (const auto& sum : summaries) {
    EXPECT_TRUE(sum.stat_means.contains("kmachine_rounds"));
    EXPECT_TRUE(sum.stat_means.contains("congest_rounds"));
  }
}

}  // namespace
}  // namespace dhc::runner
