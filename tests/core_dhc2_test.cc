// End-to-end tests for DHC2 (paper Algorithm 3 / Theorem 10): partitioned
// rotation + tree merging, across partition counts, densities, and merge
// strategies, plus failure injection.
#include "core/dhc2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

Graph make_gnp(graph::NodeId n, double p, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, p, rng);
}

Dhc2Config colors_cfg(std::uint32_t colors) {
  Dhc2Config cfg;
  cfg.num_colors_override = colors;
  return cfg;
}

TEST(Dhc2, TwoColorsSingleMergeLevel) {
  const Graph g = make_gnp(120, 0.4, 1);
  const auto r = run_dhc2(g, 7, colors_cfg(2));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("merge_levels"), 1.0);
  EXPECT_EQ(r.stat("bridges_built"), 1.0);
}

TEST(Dhc2, FourColorsTwoLevels) {
  const Graph g = make_gnp(200, 0.35, 2);
  const auto r = run_dhc2(g, 9, colors_cfg(4));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("merge_levels"), 2.0);
  // Merging K cycles into one takes exactly K−1 bridges.
  EXPECT_EQ(r.stat("bridges_built"), 3.0);
}

TEST(Dhc2, NonPowerOfTwoColorsLeaveOneOut) {
  // K = 5: one cycle sits out a level (paper: "at most one cycle will be
  // left out") and joins later; 4 bridges total.
  const Graph g = make_gnp(300, 0.3, 3);
  const auto r = run_dhc2(g, 11, colors_cfg(5));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("merge_levels"), 3.0);
  EXPECT_EQ(r.stat("bridges_built"), 4.0);
}

TEST(Dhc2, DeltaOneIsPureDra) {
  // δ = 1 means a single partition: Phase 2 is skipped entirely.
  const Graph g = make_gnp(256, graph::edge_probability(256, 6.0, 1.0), 4);
  Dhc2Config cfg;
  cfg.delta = 1.0;
  const auto r = run_dhc2(g, 13, cfg);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("num_colors"), 1.0);
  EXPECT_EQ(r.stat("merge_levels"), 0.0);
}

TEST(Dhc2, DeltaHalfRegime) {
  // The paper's p = c·ln n / n^δ with δ = 1/2 (the DHC1 regime): K ≈ √n
  // partitions of size ≈ √n.
  const graph::NodeId n = 1024;
  const Graph g = make_gnp(n, graph::edge_probability(n, 2.5, 0.5), 5);
  Dhc2Config cfg;
  cfg.delta = 0.5;
  const auto r = run_dhc2(g, 17, cfg);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("num_colors"), 32.0);
  EXPECT_EQ(r.stat("bridges_built"), 31.0);
}

TEST(Dhc2, BothMergeStrategiesSucceed) {
  const Graph g = make_gnp(240, 0.35, 6);
  Dhc2Config min_cfg = colors_cfg(4);
  min_cfg.merge_strategy = MergeStrategy::kMinForward;
  Dhc2Config full_cfg = colors_cfg(4);
  full_cfg.merge_strategy = MergeStrategy::kFullQueue;

  const auto rm = run_dhc2(g, 19, min_cfg);
  const auto rf = run_dhc2(g, 19, full_cfg);
  ASSERT_TRUE(rm.success) << rm.failure_reason;
  ASSERT_TRUE(rf.success) << rf.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, rm.cycle).ok());
  EXPECT_TRUE(graph::verify_cycle_incidence(g, rf.cycle).ok());
  // The literal Alg. 3 (full queue) serializes every verify query on cycle
  // edges; the min-forward variant checks one candidate per passive node.
  EXPECT_LE(rm.metrics.phase_rounds("merge"), rf.metrics.phase_rounds("merge"));
}

TEST(Dhc2, DeterministicAcrossRuns) {
  const Graph g = make_gnp(200, 0.35, 8);
  const auto a = run_dhc2(g, 23, colors_cfg(4));
  const auto b = run_dhc2(g, 23, colors_cfg(4));
  ASSERT_TRUE(a.success) << a.failure_reason;
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Dhc2, Phase1FailureInjectionReportsCleanly) {
  const Graph g = make_gnp(200, 0.35, 9);
  Dhc2Config cfg = colors_cfg(4);
  cfg.dra.step_multiplier = 0.01;  // starve every partition's step budget
  const auto r = run_dhc2(g, 29, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
  EXPECT_NE(r.failure_reason.find("Phase 1"), std::string::npos);
}

TEST(Dhc2, DisconnectedGraphFailsGracefully) {
  // Two dense blobs with no cross edges: partitions straddle both, so
  // Phase 1 partitions are disconnected and abort (or close non-spanning
  // cycles); the run must terminate with a failure, never hang.
  support::Rng rng(10);
  const Graph a = graph::gnp(60, 0.5, rng);
  const Graph b = graph::gnp(60, 0.5, rng);
  std::vector<graph::Edge> edges = a.edges();
  for (const auto& [u, v] : b.edges()) {
    edges.emplace_back(static_cast<graph::NodeId>(u + 60), static_cast<graph::NodeId>(v + 60));
  }
  const Graph g(120, edges);
  const auto r = run_dhc2(g, 31, colors_cfg(2));
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
}

TEST(Dhc2, FarBelowThresholdFailsGracefully) {
  // p far below ln n / n: the graph is a scattering of tiny components.
  const Graph g = make_gnp(400, 0.002, 11);
  const auto r = run_dhc2(g, 37, colors_cfg(4));
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
}

TEST(Dhc2, TinyGraphRejected) {
  const Graph g(2, {{0, 1}});
  const auto r = run_dhc2(g, 1);
  EXPECT_FALSE(r.success);
}

TEST(Dhc2, PhaseRoundsAndBarrierAccounting) {
  const Graph g = make_gnp(200, 0.35, 12);
  const auto r = run_dhc2(g, 41, colors_cfg(4));
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.metrics.phase_rounds("dra"), 0u);
  EXPECT_GT(r.metrics.phase_rounds("merge"), 0u);
  EXPECT_GT(r.metrics.barrier_count, 0u);
  EXPECT_GT(r.metrics.barrier_cost_rounds, 0u);
  EXPECT_GT(r.metrics.accounted_rounds(), r.metrics.rounds);
  EXPECT_GT(r.stat("global_tree_depth"), 0.0);
}

TEST(Dhc2, MemoryStaysNearDegree) {
  // Fully-distributed claim: no node's memory approaches n (the Upcast root
  // will be the contrast in EXP-L1).
  const graph::NodeId n = 1024;
  const Graph g = make_gnp(n, graph::edge_probability(n, 2.5, 0.5), 13);
  Dhc2Config cfg;
  cfg.delta = 0.5;
  const auto r = run_dhc2(g, 43, cfg);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const auto max_mem = static_cast<std::size_t>(r.metrics.max_node_peak_memory());
  EXPECT_LE(max_mem, 4 * g.max_degree() + 64);
}

// Seed/size sweep: every run must either produce a verified cycle or report
// a clean failure; at these densities failures should be rare.
class Dhc2Sweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(Dhc2Sweep, VerifiedCycleAcrossSeedsAndColors) {
  const auto [seed, colors] = GetParam();
  // Keep expected partition size near 64 so in-partition degree stays in
  // the rotation algorithm's working regime (see EXPERIMENTS.md, EXP-P1).
  const auto n = static_cast<graph::NodeId>(64 * colors);
  const Graph g = make_gnp(n, 0.35, seed * 1000 + colors);
  const auto r = run_dhc2(g, seed, colors_cfg(colors));
  ASSERT_TRUE(r.success) << "seed=" << seed << " colors=" << colors << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("bridges_built"), static_cast<double>(colors - 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Dhc2Sweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4),
                       ::testing::Values<std::uint32_t>(2, 3, 4, 8)));

}  // namespace
}  // namespace dhc::core
