// Tests for the Hamiltonian-cycle verifier — the oracle every solver result
// is checked against.  Includes property-style sweeps: valid cycles under
// random relabelings must verify; random single-field corruptions must not.
#include "graph/hamiltonian.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"
#include "support/rng.h"

namespace dhc::graph {
namespace {

CycleOrder identity_cycle(NodeId n) {
  CycleOrder c;
  c.order.resize(n);
  std::iota(c.order.begin(), c.order.end(), 0);
  return c;
}

TEST(VerifyOrder, AcceptsCycleGraphIdentity) {
  const Graph g = cycle_graph(8);
  EXPECT_TRUE(verify_cycle_order(g, identity_cycle(8)).ok());
}

TEST(VerifyOrder, AcceptsRotationsAndReversal) {
  const Graph g = cycle_graph(6);
  CycleOrder c = identity_cycle(6);
  std::rotate(c.order.begin(), c.order.begin() + 2, c.order.end());
  EXPECT_TRUE(verify_cycle_order(g, c).ok());
  std::reverse(c.order.begin(), c.order.end());
  EXPECT_TRUE(verify_cycle_order(g, c).ok());
}

TEST(VerifyOrder, RejectsWrongLength) {
  const Graph g = cycle_graph(6);
  CycleOrder c = identity_cycle(5);
  EXPECT_FALSE(verify_cycle_order(g, c).ok());
}

TEST(VerifyOrder, RejectsRepeatedNode) {
  const Graph g = cycle_graph(5);
  CycleOrder c{{0, 1, 2, 3, 0}};
  const auto r = verify_cycle_order(g, c);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failure->find("twice"), std::string::npos);
}

TEST(VerifyOrder, RejectsNonEdge) {
  const Graph g = cycle_graph(5);
  CycleOrder c{{0, 2, 4, 1, 3}};  // pentagram order: chords, not edges
  EXPECT_FALSE(verify_cycle_order(g, c).ok());
}

TEST(VerifyOrder, RejectsOutOfRangeNode) {
  const Graph g = cycle_graph(5);
  CycleOrder c{{0, 1, 2, 3, 9}};
  EXPECT_FALSE(verify_cycle_order(g, c).ok());
}

TEST(VerifyOrder, TinyGraphsRejected) {
  const Graph g(2, {{0, 1}});
  CycleOrder c{{0, 1}};
  EXPECT_FALSE(verify_cycle_order(g, c).ok());
}

TEST(VerifyOrder, CompleteGraphAcceptsAnyPermutation) {
  support::Rng rng(1);
  const Graph g = complete_graph(12);
  CycleOrder c = identity_cycle(12);
  for (int trial = 0; trial < 20; ++trial) {
    rng.shuffle(std::span<NodeId>(c.order));
    EXPECT_TRUE(verify_cycle_order(g, c).ok());
  }
}

TEST(Incidence, RoundTripOrderToIncidenceToOrder) {
  support::Rng rng(2);
  const Graph g = complete_graph(9);
  CycleOrder c = identity_cycle(9);
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(std::span<NodeId>(c.order));
    const auto inc = incidence_from_order(c);
    EXPECT_TRUE(verify_cycle_incidence(g, inc).ok());
    const auto back = order_from_incidence(inc);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(verify_cycle_order(g, *back).ok());
  }
}

TEST(Incidence, RejectsTwoDisjointTriangles) {
  // Two triangles: 0-1-2 and 3-4-5.  Every node has degree 2 and symmetry
  // holds, but this is not a single 6-cycle.
  const Graph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  CycleIncidence inc;
  inc.neighbors_of = {{2, 1}, {0, 2}, {1, 0}, {5, 4}, {3, 5}, {4, 3}};
  const auto r = verify_cycle_incidence(g, inc);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.failure->find("disjoint"), std::string::npos);
}

TEST(Incidence, RejectsAsymmetricNaming) {
  const Graph g = complete_graph(4);
  CycleIncidence inc;
  inc.neighbors_of = {{1, 3}, {0, 2}, {1, 3}, {2, 1}};  // 3 names 1, 1 doesn't name 3
  EXPECT_FALSE(verify_cycle_incidence(g, inc).ok());
}

TEST(Incidence, RejectsSelfNaming) {
  const Graph g = complete_graph(4);
  CycleIncidence inc;
  inc.neighbors_of = {{0, 1}, {0, 2}, {1, 3}, {2, 0}};
  EXPECT_FALSE(verify_cycle_incidence(g, inc).ok());
}

TEST(Incidence, RejectsDuplicateNeighbor) {
  const Graph g = complete_graph(4);
  CycleIncidence inc;
  inc.neighbors_of = {{1, 1}, {0, 2}, {1, 3}, {2, 0}};
  EXPECT_FALSE(verify_cycle_incidence(g, inc).ok());
}

TEST(Incidence, RejectsNonGraphEdge) {
  const Graph g = cycle_graph(4);  // square without diagonals
  CycleIncidence inc;
  inc.neighbors_of = {{2, 1}, {0, 3}, {3, 0}, {1, 2}};  // uses diagonals 0-2, 1-3
  EXPECT_FALSE(verify_cycle_incidence(g, inc).ok());
}

TEST(Incidence, RejectsWrongNodeCount) {
  const Graph g = cycle_graph(5);
  CycleIncidence inc;
  inc.neighbors_of = {{4, 1}, {0, 2}, {1, 3}, {2, 4}};  // only 4 entries
  EXPECT_FALSE(verify_cycle_incidence(g, inc).ok());
}

TEST(CycleEdges, CanonicalEdgeList) {
  CycleOrder c{{2, 0, 1}};
  const auto edges = cycle_edges(c);
  EXPECT_EQ(edges.size(), 3u);
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{0, 2}), edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{0, 1}), edges.end());
  EXPECT_NE(std::find(edges.begin(), edges.end(), Edge{1, 2}), edges.end());
}

// Property sweep: random Hamiltonian cycles planted in random graphs verify;
// corrupting any single incidence entry must break verification.
class IncidenceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncidenceProperty, PlantedCycleVerifiesAndCorruptionFails) {
  support::Rng rng(GetParam());
  const NodeId n = 24;
  // Plant a random cycle, then add random chords.
  CycleOrder planted = identity_cycle(n);
  rng.shuffle(std::span<NodeId>(planted.order));
  auto edges = cycle_edges(planted);
  for (int extra = 0; extra < 40; ++extra) {
    const auto u = static_cast<NodeId>(rng.below(n));
    const auto v = static_cast<NodeId>(rng.below(n));
    if (u != v) edges.emplace_back(std::min(u, v), std::max(u, v));
  }
  const Graph g(n, edges);
  EXPECT_TRUE(verify_cycle_order(g, planted).ok());

  auto inc = incidence_from_order(planted);
  EXPECT_TRUE(verify_cycle_incidence(g, inc).ok());

  // Corrupt one entry: point node v's first cycle neighbor at a random node.
  const auto victim = static_cast<NodeId>(rng.below(n));
  const auto wrong = static_cast<NodeId>(rng.below(n));
  auto corrupted = inc;
  corrupted.neighbors_of[victim][0] = wrong;
  if (corrupted.neighbors_of[victim] != inc.neighbors_of[victim]) {
    EXPECT_FALSE(verify_cycle_incidence(g, corrupted).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncidenceProperty, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace dhc::graph
