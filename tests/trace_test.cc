// Flight-recorder tests: NDJSON schema golden, shard invariance of every
// counter, phase-span accounting, the k-machine kround stream, the reader
// round trip, and the run_trial trace-file integration.
//
// The golden file pins the byte-exact schema-v4 output (wall fields zeroed,
// shard-profile fields omitted — the deterministic projection).  Regenerate
// after a reviewed schema change with:
//
//   DHC_UPDATE_GOLDEN=1 ./trace_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "congest/fault_plan.h"
#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/dra.h"
#include "core/turau.h"
#include "core/upcast.h"
#include "graph/generators.h"
#include "kmachine/kmachine.h"
#include "runner/trial_runner.h"
#include "trace/reader.h"
#include "trace/recorder.h"
#include "trace/summary.h"

#ifndef DHC_TRACE_GOLDEN_FILE
#define DHC_TRACE_GOLDEN_FILE "tests/golden/trace_golden.ndjson"
#endif

namespace dhc::trace {
namespace {

graph::Graph instance(graph::NodeId n, double c, double delta, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, c, delta), rng);
}

TraceMeta meta_for(const char* algo, graph::NodeId n, std::uint64_t m, std::uint64_t seed) {
  TraceMeta meta;
  meta.algo = algo;
  meta.family = "gnp";
  meta.n = n;
  meta.m = m;
  meta.delta = 1.0;
  meta.c = 3.0;
  meta.graph_seed = 42;
  meta.algo_seed = seed;
  return meta;
}

/// Runs DHC2 on the pinned golden instance with a recorder attached and
/// returns the deterministic projection (walls zeroed, shard fields off).
std::string golden_projection(std::uint32_t shards) {
  const graph::Graph g = instance(96, 3.0, 1.0, 42);
  TraceRecorder rec;
  rec.set_meta(meta_for("dhc2", 96, g.m(), 7));
  core::Dhc2Config cfg;
  cfg.trace = &rec;
  cfg.shards = shards;
  const auto r = core::run_dhc2(g, 7, cfg);
  rec.finalize(r.metrics);
  rec.set_outcome(r.success, r.failure_reason);
  std::ostringstream os;
  rec.write_ndjson(os, {.walls = false, .shard_profile = false});
  return os.str();
}

TEST(TraceGolden, SchemaV3IsPinned) {
  const std::string got = golden_projection(/*shards=*/1);
  const std::string path = DHC_TRACE_GOLDEN_FILE;

  if (std::getenv("DHC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << got;
    GTEST_SKIP() << "golden trace updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run DHC_UPDATE_GOLDEN=1 ./trace_test once";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str()) << "trace schema or counters changed — review, then regenerate "
                                "with DHC_UPDATE_GOLDEN=1 ./trace_test";
}

TEST(TraceDeterminism, RepeatedRunsAreByteIdentical) {
  EXPECT_EQ(golden_projection(1), golden_projection(1));
}

TEST(TraceDeterminism, CountersAreShardInvariant) {
  // Every non-wall, non-shard-profile byte must be independent of the shard
  // count (the ISSUE acceptance criterion, at the network level).
  const std::string one = golden_projection(1);
  EXPECT_EQ(one, golden_projection(2));
  EXPECT_EQ(one, golden_projection(4));
}

TEST(TraceSpans, SumToMetricsRoundsForEverySolver) {
  const graph::Graph g = instance(96, 4.0, 0.75, 9);
  struct Case {
    const char* name;
    std::function<core::Result(congest::TraceSink*)> run;
  };
  const std::vector<Case> cases = {
      {"dra",
       [&](congest::TraceSink* t) {
         core::DraConfig c;
         c.trace = t;
         return core::run_dra(g, 3, c);
       }},
      {"dhc1",
       [&](congest::TraceSink* t) {
         core::Dhc1Config c;
         c.trace = t;
         return core::run_dhc1(g, 3, c);
       }},
      {"dhc2",
       [&](congest::TraceSink* t) {
         core::Dhc2Config c;
         c.trace = t;
         return core::run_dhc2(g, 3, c);
       }},
      {"turau",
       [&](congest::TraceSink* t) {
         core::TurauConfig c;
         c.trace = t;
         return core::run_turau(g, 3, c);
       }},
      {"upcast",
       [&](congest::TraceSink* t) {
         core::UpcastConfig c;
         c.trace = t;
         return core::run_upcast(g, 3, c);
       }},
  };
  for (const Case& c : cases) {
    TraceRecorder rec;
    const auto r = c.run(&rec);
    rec.finalize(r.metrics);
    std::uint64_t span_rounds = 0, span_sent = 0, span_bits = 0, span_barriers = 0;
    for (const PhaseSpan& s : rec.spans()) {
      span_rounds += s.rounds;
      span_sent += s.sent;
      span_bits += s.bits;
      span_barriers += s.barriers;
    }
    // Spans partition [1, rounds+1); messages/bits/barriers attach to the
    // span containing their round, so the totals must match exactly.
    EXPECT_EQ(span_rounds, r.metrics.rounds) << c.name;
    EXPECT_EQ(span_sent, r.metrics.messages) << c.name;
    EXPECT_EQ(span_bits, r.metrics.bits) << c.name;
    EXPECT_EQ(span_barriers, r.metrics.barrier_count) << c.name;
    EXPECT_EQ(rec.phases().size(), r.metrics.phase_marks.size()) << c.name;
  }
}

TEST(TraceKMachine, KRoundChargesSumToReportRounds) {
  const graph::Graph g = instance(64, 4.0, 0.5, 21);
  TraceRecorder rec;
  core::Dhc2Config base;
  base.trace = &rec;
  kmachine::KMachineConfig kcfg;
  kcfg.k = 4;
  kcfg.bandwidth = 16;
  kcfg.trace = &rec;
  const auto out = kmachine::run_kmachine(kmachine::dhc2_algorithm(base), g, 5, kcfg);
  rec.finalize(out.result.metrics);

  ASSERT_FALSE(rec.krounds().empty());
  std::uint64_t charge_sum = 0;
  for (const KRoundRecord& k : rec.krounds()) {
    EXPECT_GT(k.busiest, 0u);
    EXPECT_GE(k.charge, 1u);
    charge_sum += k.charge;
  }
  EXPECT_EQ(charge_sum, out.report.kmachine_rounds);
  EXPECT_EQ(rec.kmachine_rounds_total(), out.report.kmachine_rounds);
  // Network rounds recorded alongside the pricing stream.
  EXPECT_EQ(rec.metrics().rounds, out.report.congest_rounds);
}

TEST(TraceReader, RoundTripPreservesEveryRecord) {
  const graph::Graph g = instance(80, 3.0, 1.0, 33);
  TraceRecorder rec;
  rec.set_meta(meta_for("turau", 80, g.m(), 13));
  core::TurauConfig cfg;
  cfg.trace = &rec;
  const auto r = core::run_turau(g, 13, cfg);
  rec.finalize(r.metrics);
  rec.set_outcome(r.success, r.failure_reason);

  std::stringstream ss;
  rec.write_ndjson(ss);  // full output: walls + shard profile on
  const TraceData data = read_trace(ss);

  EXPECT_EQ(data.schema, 4u);
  EXPECT_EQ(data.meta_str("algo"), "turau");
  EXPECT_EQ(data.meta_u64("n"), 80u);
  EXPECT_EQ(data.meta_u64("m"), g.m());
  EXPECT_EQ(data.meta_u64("algo_seed"), 13u);
  EXPECT_EQ(data.phases.size(), rec.phases().size());
  EXPECT_EQ(data.rounds.size(), rec.rounds().size());
  EXPECT_EQ(data.barriers.size(), rec.barriers().size());
  EXPECT_EQ(data.spans.size(), rec.spans().size());
  EXPECT_EQ(data.summary_u64("rounds"), r.metrics.rounds);
  EXPECT_EQ(data.summary_u64("messages"), r.metrics.messages);
  EXPECT_EQ(data.summary_u64("bits"), r.metrics.bits);
  EXPECT_EQ(data.summary_u64("barriers"), r.metrics.barrier_count);
  ASSERT_TRUE(data.has_outcome);
  EXPECT_EQ(data.success, r.success);

  for (std::size_t i = 0; i < data.rounds.size(); ++i) {
    EXPECT_EQ(data.rounds[i].round, rec.rounds()[i].round);
    EXPECT_EQ(data.rounds[i].active, rec.rounds()[i].active);
    EXPECT_EQ(data.rounds[i].sent, rec.rounds()[i].sent);
    EXPECT_EQ(data.rounds[i].bits, rec.rounds()[i].bits);
  }
  for (std::size_t i = 0; i < data.spans.size(); ++i) {
    EXPECT_EQ(data.spans[i].label, rec.spans()[i].label);
    EXPECT_EQ(data.spans[i].rounds, rec.spans()[i].rounds);
  }
}

TEST(TraceReader, FaultRecordsRoundTripFromAnAsyncRun) {
  // Schema v2: async runs interleave "fault" lines with the round stream and
  // append the fault totals to the summary; both must survive the reader.
  const graph::Graph g = instance(96, 3.0, 0.75, 18);
  TraceRecorder rec;
  rec.set_meta(meta_for("dhc2", 96, g.m(), 3));
  const congest::FaultPlan plan(congest::DelaySpec::parse("fixed:2"), /*drop_prob=*/0.05,
                                congest::CrashSpec{}, /*fault_seed=*/91);
  core::Dhc2Config cfg;
  cfg.trace = &rec;
  cfg.faults = &plan;
  const auto r = core::run_dhc2(g, 3, cfg);
  rec.finalize(r.metrics);
  rec.set_outcome(r.success, r.failure_reason);

  ASSERT_FALSE(rec.faults().empty());
  std::stringstream ss;
  rec.write_ndjson(ss);
  const TraceData data = read_trace(ss);

  EXPECT_EQ(data.schema, 4u);
  ASSERT_EQ(data.faults.size(), rec.faults().size());
  std::uint64_t delayed = 0, dropped = 0;
  for (std::size_t i = 0; i < data.faults.size(); ++i) {
    EXPECT_EQ(data.faults[i].round, rec.faults()[i].round);
    EXPECT_EQ(data.faults[i].delayed, rec.faults()[i].delayed);
    EXPECT_EQ(data.faults[i].dropped, rec.faults()[i].dropped);
    EXPECT_EQ(data.faults[i].crash_dropped, rec.faults()[i].crash_dropped);
    EXPECT_EQ(data.faults[i].crashed_steps, rec.faults()[i].crashed_steps);
    delayed += data.faults[i].delayed;
    dropped += data.faults[i].dropped;
  }
  // Per-round fault deltas sum to the run totals, which the summary carries.
  EXPECT_EQ(delayed, r.metrics.delayed_messages);
  EXPECT_EQ(dropped, r.metrics.dropped_messages);
  EXPECT_EQ(data.summary_u64("delayed_messages"), r.metrics.delayed_messages);
  EXPECT_EQ(data.summary_u64("dropped_messages"), r.metrics.dropped_messages);
}

TEST(TraceReader, RetransAndRejoinRecordsRoundTripFromAReliableRun) {
  // Schema v3: reliability=ack runs interleave "retrans" lines with the
  // round stream (and crash-window runs a "rejoin" line); the per-round
  // deltas must survive the reader and sum to the summary totals.
  const graph::Graph g = instance(96, 3.0, 0.75, 18);
  TraceRecorder rec;
  rec.set_meta(meta_for("dhc2", 96, g.m(), 3));
  congest::FaultPlan plan(congest::DelaySpec::parse("fixed:1"), /*drop_prob=*/0.05,
                          congest::CrashSpec::parse("random:0.2:40:30"), /*fault_seed=*/91,
                          /*max_rounds=*/200000);
  plan.set_reliability(congest::ReliabilitySpec::parse("ack"), congest::RtoSpec{});
  core::Dhc2Config cfg;
  cfg.trace = &rec;
  cfg.faults = &plan;
  const auto r = core::run_dhc2(g, 3, cfg);
  rec.finalize(r.metrics);
  rec.set_outcome(r.success, r.failure_reason);

  ASSERT_FALSE(rec.retrans().empty());
  std::stringstream ss;
  rec.write_ndjson(ss);
  const TraceData data = read_trace(ss);

  EXPECT_EQ(data.schema, 4u);
  ASSERT_EQ(data.retrans.size(), rec.retrans().size());
  std::uint64_t retransmits = 0, dups = 0, acks = 0;
  for (std::size_t i = 0; i < data.retrans.size(); ++i) {
    EXPECT_EQ(data.retrans[i].round, rec.retrans()[i].round);
    EXPECT_EQ(data.retrans[i].retransmits, rec.retrans()[i].retransmits);
    EXPECT_EQ(data.retrans[i].dup_suppressed, rec.retrans()[i].dup_suppressed);
    EXPECT_EQ(data.retrans[i].acks_sent, rec.retrans()[i].acks_sent);
    retransmits += data.retrans[i].retransmits;
    dups += data.retrans[i].dup_suppressed;
    acks += data.retrans[i].acks_sent;
  }
  EXPECT_EQ(retransmits, r.metrics.retransmits);
  EXPECT_EQ(dups, r.metrics.dup_suppressed);
  EXPECT_EQ(acks, r.metrics.acks_sent);
  EXPECT_EQ(data.summary_u64("retransmits"), r.metrics.retransmits);
  EXPECT_EQ(data.summary_u64("payload_messages"), r.metrics.payload_messages());

  // The crash window closed mid-run, so the rejoin mark must round-trip too.
  ASSERT_EQ(data.rejoins.size(), rec.rejoins().size());
  ASSERT_EQ(data.rejoins.size(), 1u);
  EXPECT_EQ(data.rejoins[0].round, rec.rejoins()[0].round);
  EXPECT_EQ(data.rejoins[0].nodes, rec.rejoins()[0].nodes);
  EXPECT_EQ(data.rejoins[0].nodes, r.metrics.crashed_rejoins);
  EXPECT_GT(data.rejoins[0].nodes, 0u);
  EXPECT_GE(data.rejoins[0].round, 70u);  // window [40, 70) closes at 70
  EXPECT_EQ(data.summary_u64("crashed_rejoins"), r.metrics.crashed_rejoins);
}

TEST(TraceReader, SeedsSurviveExactly) {
  // 64-bit seeds do not fit a double; the reader must keep them integral.
  TraceRecorder rec;
  TraceMeta meta = meta_for("dhc2", 8, 28, 1);
  meta.graph_seed = 2443007606088161615ull;
  meta.algo_seed = 18446744073709551557ull;  // largest prime below 2^64
  rec.set_meta(meta);
  congest::Metrics m;
  rec.finalize(m);
  std::stringstream ss;
  rec.write_ndjson(ss);
  const TraceData data = read_trace(ss);
  EXPECT_EQ(data.meta_u64("graph_seed"), 2443007606088161615ull);
  EXPECT_EQ(data.meta_u64("algo_seed"), 18446744073709551557ull);
}

TEST(TraceSummary, PhaseRoundsSumToMetricsRounds) {
  // dhc_trace --summarize invariant: the per-phase table's TOTAL rounds row
  // equals the summary "rounds" counter.
  const graph::Graph g = instance(96, 3.0, 1.0, 42);
  TraceRecorder rec;
  rec.set_meta(meta_for("dhc2", 96, g.m(), 7));
  core::Dhc2Config cfg;
  cfg.trace = &rec;
  const auto r = core::run_dhc2(g, 7, cfg);
  rec.finalize(r.metrics);
  rec.set_outcome(r.success, r.failure_reason);
  std::stringstream ss;
  rec.write_ndjson(ss);
  const TraceData data = read_trace(ss);

  std::uint64_t table_rounds = 0;
  for (const PhaseSpan& s : data.spans) table_rounds += s.rounds;
  EXPECT_EQ(table_rounds, data.summary_u64("rounds"));

  std::ostringstream report;
  print_summary(data, report);
  EXPECT_NE(report.str().find("TOTAL"), std::string::npos);
  EXPECT_NE(report.str().find("algo=dhc2"), std::string::npos);
}

TEST(TraceIntegration, RunTrialWritesReadableTraceFile) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dhc_trace_test_out").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  runner::TrialConfig t;
  t.algo = runner::Algorithm::kDhc2;
  t.n = 64;
  t.delta = 1.0;
  t.c = 3.0;
  t.graph_seed = 101;
  t.algo_seed = 202;
  t.config_index = 3;
  t.trial_index = 1;
  runner::TrialOptions opt;
  opt.trace_dir = dir;
  const auto r = runner::run_trial(t, opt);

  EXPECT_EQ(r.trace_file, dir + "/trace_c3_t1.ndjson");
  const TraceData data = read_trace_file(r.trace_file);
  EXPECT_EQ(data.meta_str("algo"), "dhc2");
  EXPECT_EQ(data.meta_u64("n"), 64u);
  EXPECT_EQ(data.meta_u64("graph_seed"), t.graph_seed);
  EXPECT_EQ(data.meta_u64("config_index"), 3u);
  EXPECT_EQ(data.meta_u64("trial_index"), 1u);
  EXPECT_EQ(data.summary_u64("rounds"), static_cast<std::uint64_t>(r.rounds));
  ASSERT_TRUE(data.has_outcome);
  EXPECT_EQ(data.success, r.success);

  // The runner's phase stats and the trace agree (the synthetic "(untagged)"
  // span has no Metrics mark and therefore no runner stat).
  for (const PhaseSpan& s : data.spans) {
    if (s.label == "(untagged)") continue;
    const auto it = r.stats.find("phase_" + s.label + "_rounds");
    ASSERT_NE(it, r.stats.end()) << s.label;
  }
  std::filesystem::remove_all(dir);
}

TEST(TraceIntegration, SequentialTrialsDoNotTrace) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dhc_trace_test_seq").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  runner::TrialConfig t;
  t.algo = runner::Algorithm::kSequential;
  t.n = 32;
  t.delta = 1.0;
  t.c = 4.0;
  t.graph_seed = 7;
  t.algo_seed = 8;
  runner::TrialOptions opt;
  opt.trace_dir = dir;
  const auto r = runner::run_trial(t, opt);
  EXPECT_TRUE(r.trace_file.empty());
  EXPECT_TRUE(std::filesystem::is_empty(dir));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace dhc::trace
