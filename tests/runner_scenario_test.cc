// Unit tests for scenario parsing, validation, and cross-product expansion.
#include "runner/scenario.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <stdexcept>
#include <string>

namespace dhc::runner {
namespace {

TEST(ParseAlgorithm, AcceptsAllSpellings) {
  EXPECT_EQ(parse_algorithm("sequential"), Algorithm::kSequential);
  EXPECT_EQ(parse_algorithm("seq"), Algorithm::kSequential);
  EXPECT_EQ(parse_algorithm("dra"), Algorithm::kDra);
  EXPECT_EQ(parse_algorithm("dhc1"), Algorithm::kDhc1);
  EXPECT_EQ(parse_algorithm("dhc2"), Algorithm::kDhc2);
  EXPECT_EQ(parse_algorithm("upcast"), Algorithm::kUpcast);
  EXPECT_EQ(parse_algorithm("collect-all"), Algorithm::kCollectAll);
  EXPECT_EQ(parse_algorithm("dhc2-kmachine"), Algorithm::kDhc2KMachine);
  EXPECT_EQ(parse_algorithm("turau"), Algorithm::kTurau);
}

TEST(ParseAlgorithm, RoundTripsThroughToString) {
  for (const Algorithm a :
       {Algorithm::kSequential, Algorithm::kDra, Algorithm::kDhc1, Algorithm::kDhc2,
        Algorithm::kUpcast, Algorithm::kCollectAll, Algorithm::kDhc2KMachine,
        Algorithm::kTurau}) {
    EXPECT_EQ(parse_algorithm(to_string(a)), a);
  }
}

TEST(ParseAlgorithm, RejectsUnknown) {
  EXPECT_THROW(parse_algorithm("dhc3"), std::invalid_argument);
  EXPECT_THROW(parse_algorithm(""), std::invalid_argument);
}

TEST(ParseExecutionModel, RoundTripsAndRejects) {
  for (const ExecutionModel m : {ExecutionModel::kCongest, ExecutionModel::kKMachine}) {
    EXPECT_EQ(parse_execution_model(to_string(m)), m);
  }
  EXPECT_EQ(parse_execution_model("k-machine"), ExecutionModel::kKMachine);
  EXPECT_THROW(parse_execution_model("pram"), std::invalid_argument);
  EXPECT_THROW(parse_execution_model(""), std::invalid_argument);
}

TEST(ParseGraphFamily, RoundTripsAndRejects) {
  for (const GraphFamily f : {GraphFamily::kGnp, GraphFamily::kGnm, GraphFamily::kRegular,
                              GraphFamily::kPowerlaw}) {
    EXPECT_EQ(parse_graph_family(to_string(f)), f);
  }
  EXPECT_THROW(parse_graph_family("smallworld"), std::invalid_argument);
}

TEST(ParseGraphFamily, PowerlawSpellingsAndSpec) {
  EXPECT_EQ(parse_graph_family("powerlaw"), GraphFamily::kPowerlaw);
  EXPECT_EQ(parse_graph_family("power-law"), GraphFamily::kPowerlaw);
  EXPECT_EQ(parse_graph_family("chung-lu"), GraphFamily::kPowerlaw);
  const Scenario s = scenario_from_spec({{"family", "powerlaw"}, {"sizes", "64"}});
  EXPECT_EQ(s.family, GraphFamily::kPowerlaw);
  const auto trials = expand(s);
  ASSERT_FALSE(trials.empty());
  EXPECT_EQ(trials[0].family, GraphFamily::kPowerlaw);
}

TEST(ParseMergeStrategy, RoundTripsAndRejects) {
  EXPECT_EQ(parse_merge_strategy("minforward"), core::MergeStrategy::kMinForward);
  EXPECT_EQ(parse_merge_strategy("fullqueue"), core::MergeStrategy::kFullQueue);
  EXPECT_THROW(parse_merge_strategy("greedy"), std::invalid_argument);
}

TEST(ScenarioValidate, DefaultIsValid) { EXPECT_NO_THROW(Scenario{}.validate()); }

TEST(ScenarioValidate, RejectsOutOfRangeFields) {
  {
    Scenario s;
    s.algos.clear();
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.sizes = {2};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.deltas = {0.0};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.deltas = {1.5};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.cs = {-1.0};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.seeds = 0;
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    Scenario s;
    s.machines = {1};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
  {
    // The sequential baseline has no CONGEST execution to price.
    Scenario s;
    s.model = ExecutionModel::kKMachine;
    s.algos = {Algorithm::kSequential};
    EXPECT_THROW(s.validate(), std::invalid_argument);
  }
}

TEST(Expand, CrossProductCountsAndOrder) {
  Scenario s;
  s.algos = {Algorithm::kDhc2};
  s.sizes = {64, 128};
  s.deltas = {0.5, 1.0};
  s.cs = {2.0, 3.0};
  s.merges = {core::MergeStrategy::kMinForward, core::MergeStrategy::kFullQueue};
  s.seeds = 3;
  const auto trials = expand(s);
  // 2 sizes × 2 deltas × 2 cs × 2 merges = 16 cells, 3 trials each.
  EXPECT_EQ(trials.size(), 48u);
  EXPECT_EQ(trials.back().config_index, 15u);
  for (std::size_t i = 0; i < trials.size(); ++i) {
    EXPECT_EQ(trials[i].config_index, i / 3);
    EXPECT_EQ(trials[i].trial_index, i % 3);
  }
}

TEST(Expand, MergeStrategiesOnlyMultiplyDhc2Algorithms) {
  Scenario s;
  s.algos = {Algorithm::kDra};
  s.merges = {core::MergeStrategy::kMinForward, core::MergeStrategy::kFullQueue};
  s.seeds = 2;
  // DRA has no merge phase: one cell, not two.
  EXPECT_EQ(expand(s).size(), 2u);
}

TEST(Expand, MachinesOnlyMultiplyKMachineAlgorithm) {
  Scenario s;
  s.algos = {Algorithm::kDhc2, Algorithm::kDhc2KMachine};
  s.machines = {4, 8, 16};
  s.seeds = 1;
  const auto trials = expand(s);
  // dhc2: 1 cell; dhc2-kmachine: 3 cells.
  EXPECT_EQ(trials.size(), 4u);
  EXPECT_EQ(trials[0].machines, 0u);
  EXPECT_EQ(trials[0].model, ExecutionModel::kCongest);
  EXPECT_EQ(trials[1].machines, 4u);
  EXPECT_EQ(trials[1].model, ExecutionModel::kKMachine);  // legacy spelling
  EXPECT_EQ(trials[3].machines, 16u);
  EXPECT_EQ(trials[3].bandwidth, static_cast<std::uint64_t>(s.bandwidth));
}

TEST(Expand, KMachineModelSweepsMachinesForEveryAlgorithm) {
  Scenario s;
  s.model = ExecutionModel::kKMachine;
  s.algos = {Algorithm::kDra, Algorithm::kTurau};
  s.machines = {4, 8, 16};
  s.seeds = 2;
  const auto trials = expand(s);
  // 2 algorithms × 3 machine counts = 6 cells, 2 trials each.
  EXPECT_EQ(trials.size(), 12u);
  for (const auto& t : trials) {
    EXPECT_EQ(t.model, ExecutionModel::kKMachine);
    EXPECT_GE(t.machines, 4u);
    EXPECT_EQ(t.bandwidth, static_cast<std::uint64_t>(s.bandwidth));
  }
  EXPECT_EQ(trials[0].algo, Algorithm::kDra);
  EXPECT_EQ(trials.back().algo, Algorithm::kTurau);
  EXPECT_EQ(trials.back().machines, 16u);
  // Cells differing only in the machine count share graph *and* algorithm
  // seeds: they price the same underlying execution at different k.
  for (const auto& a : trials) {
    for (const auto& b : trials) {
      if (a.algo == b.algo && a.trial_index == b.trial_index) {
        EXPECT_EQ(a.algo_seed, b.algo_seed);
        EXPECT_EQ(a.graph_seed, b.graph_seed);
      } else if (a.algo != b.algo && a.trial_index == b.trial_index) {
        EXPECT_NE(a.algo_seed, b.algo_seed);
      }
    }
  }
}

TEST(Expand, GraphSeedsPairTrialsAcrossAlgorithmsAndMerges) {
  Scenario s;
  s.algos = {Algorithm::kDhc1, Algorithm::kDhc2, Algorithm::kUpcast};
  s.merges = {core::MergeStrategy::kMinForward, core::MergeStrategy::kFullQueue};
  s.seeds = 2;
  const auto trials = expand(s);
  // Same (family, n, delta, c, trial) → same instance, regardless of
  // algorithm or merge strategy; solver randomness stays per-cell.
  for (const auto& a : trials) {
    for (const auto& b : trials) {
      if (a.trial_index == b.trial_index) {
        EXPECT_EQ(a.graph_seed, b.graph_seed);
      } else {
        EXPECT_NE(a.graph_seed, b.graph_seed);
      }
      if (a.config_index != b.config_index || a.trial_index != b.trial_index) {
        EXPECT_NE(a.algo_seed, b.algo_seed);
      }
    }
  }
  // Different instance parameters break the pairing.
  Scenario other = s;
  other.cs = {9.0};
  EXPECT_NE(expand(other)[0].graph_seed, trials[0].graph_seed);
}

TEST(Expand, SeedsAreDeterministicAndDistinct) {
  Scenario s;
  s.seeds = 4;
  const auto a = expand(s);
  const auto b = expand(s);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].graph_seed, b[i].graph_seed);
    EXPECT_EQ(a[i].algo_seed, b[i].algo_seed);
    EXPECT_NE(a[i].graph_seed, a[i].algo_seed);
    for (std::size_t j = i + 1; j < a.size(); ++j) {
      EXPECT_NE(a[i].graph_seed, a[j].graph_seed);
    }
  }
  Scenario other = s;
  other.base_seed = s.base_seed + 1;
  EXPECT_NE(expand(other)[0].graph_seed, a[0].graph_seed);
}

TEST(ScenarioFromSpec, ParsesEveryKey) {
  const auto s = scenario_from_spec({{"name", "sweep"},
                                     {"algos", "dra,dhc2"},
                                     {"model", "kmachine"},
                                     {"family", "gnm"},
                                     {"sizes", "128,256"},
                                     {"deltas", "0.5,0.75"},
                                     {"cs", "2.5"},
                                     {"merges", "fullqueue"},
                                     {"machines", "4,8"},
                                     {"bandwidth", "16"},
                                     {"seeds", "7"},
                                     {"seed", "42"}});
  EXPECT_EQ(s.name, "sweep");
  ASSERT_EQ(s.algos.size(), 2u);
  EXPECT_EQ(s.algos[1], Algorithm::kDhc2);
  EXPECT_EQ(s.model, ExecutionModel::kKMachine);
  EXPECT_EQ(s.family, GraphFamily::kGnm);
  EXPECT_EQ(s.sizes, (std::vector<std::int64_t>{128, 256}));
  EXPECT_EQ(s.deltas, (std::vector<double>{0.5, 0.75}));
  EXPECT_EQ(s.merges, (std::vector<core::MergeStrategy>{core::MergeStrategy::kFullQueue}));
  EXPECT_EQ(s.machines, (std::vector<std::int64_t>{4, 8}));
  EXPECT_EQ(s.bandwidth, 16);
  EXPECT_EQ(s.seeds, 7u);
  EXPECT_EQ(s.base_seed, 42u);
}

TEST(ScenarioFromSpec, KListIsAnAliasForMachines) {
  const auto s = scenario_from_spec({{"model", "kmachine"}, {"k_list", "2,4,8"}});
  EXPECT_EQ(s.machines, (std::vector<std::int64_t>{2, 4, 8}));
  // Both aliases at once is ambiguous, in files and on the CLI alike.
  EXPECT_THROW(scenario_from_spec({{"machines", "8"}, {"k_list", "2,4"}}),
               std::invalid_argument);
}

TEST(ScenarioFromSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(scenario_from_spec({{"bogus_key", "1"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_spec({{"sizes", "128,abc"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_spec({{"deltas", "0.5,,1.0"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_spec({{"algos", "dhc9"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_spec({{"seeds", "0"}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_spec({{"cs", ""}}), std::invalid_argument);
  EXPECT_THROW(scenario_from_spec({{"sizes", "12x"}}), std::invalid_argument);
}

class ScenarioFileTest : public ::testing::Test {
 protected:
  std::string write_file(const std::string& contents) {
    const std::string path = ::testing::TempDir() + "dhc_scenario_test.scn";
    std::ofstream out(path);
    out << contents;
    return path;
  }
};

TEST_F(ScenarioFileTest, ParsesKeyValueLinesWithCommentsAndBlanks) {
  const auto path = write_file(
      "# threshold sweep\n"
      "name = threshold\n"
      "\n"
      "algos = dra\n"
      "sizes = 64,128   # two sizes\n"
      "deltas = 1.0\n"
      "seeds = 9\n");
  const auto s = scenario_from_file(path);
  EXPECT_EQ(s.name, "threshold");
  EXPECT_EQ(s.algos, (std::vector<Algorithm>{Algorithm::kDra}));
  EXPECT_EQ(s.sizes, (std::vector<std::int64_t>{64, 128}));
  EXPECT_EQ(s.seeds, 9u);
}

TEST_F(ScenarioFileTest, RejectsMalformedFiles) {
  EXPECT_THROW(scenario_from_file("/nonexistent/path.scn"), std::invalid_argument);
  EXPECT_THROW(scenario_from_file(write_file("just some words\n")), std::invalid_argument);
  EXPECT_THROW(scenario_from_file(write_file("= 3\n")), std::invalid_argument);
  EXPECT_THROW(scenario_from_file(write_file("seeds = 3\nseeds = 4\n")), std::invalid_argument);
  EXPECT_THROW(scenario_from_file(write_file("frobnicate = yes\n")), std::invalid_argument);
}

TEST(ScenarioFromCli, FlagsOverrideDefaults) {
  const char* argv[] = {"prog", "--algos=dra,upcast", "--sizes=96", "--deltas=0.75",
                        "--seeds=11", "--seed=5"};
  const support::Cli cli(6, argv);
  const auto s = scenario_from_cli(cli);
  EXPECT_EQ(s.algos, (std::vector<Algorithm>{Algorithm::kDra, Algorithm::kUpcast}));
  EXPECT_EQ(s.sizes, (std::vector<std::int64_t>{96}));
  EXPECT_EQ(s.deltas, (std::vector<double>{0.75}));
  EXPECT_EQ(s.seeds, 11u);
  EXPECT_EQ(s.base_seed, 5u);
}

TEST(ScenarioFromCli, ModelAndKFlagsSelectTheKMachineBackend) {
  const char* argv[] = {"prog", "--model=kmachine", "--algos=turau", "--k=4,8",
                        "--bandwidth=64"};
  const support::Cli cli(5, argv);
  const auto s = scenario_from_cli(cli);
  EXPECT_EQ(s.model, ExecutionModel::kKMachine);
  EXPECT_EQ(s.machines, (std::vector<std::int64_t>{4, 8}));
  EXPECT_EQ(s.bandwidth, 64);
  const auto trials = expand(s);
  ASSERT_FALSE(trials.empty());
  EXPECT_EQ(trials[0].model, ExecutionModel::kKMachine);
  EXPECT_EQ(trials[0].algo, Algorithm::kTurau);
  EXPECT_EQ(trials[0].machines, 4u);
}

TEST(ScenarioFromCli, RejectsMalformedFlags) {
  const char* argv[] = {"prog", "--algos=warp"};
  const support::Cli cli(2, argv);
  EXPECT_THROW(scenario_from_cli(cli), std::invalid_argument);
}

}  // namespace
}  // namespace dhc::runner
