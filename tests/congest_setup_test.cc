// Tests for SetupComponent: leader election, BFS-tree construction, and
// size/depth aggregation — globally and per color class, including the
// disconnected-group behaviour the failure-injection paths rely on.
#include "congest/setup.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/algorithms.h"
#include "graph/generators.h"

namespace dhc::congest {
namespace {

using graph::Graph;

// Minimal protocol that just drives a SetupComponent to completion.
class SetupProtocol : public Protocol {
 public:
  SetupProtocol(NodeId n, std::vector<std::uint32_t> groups)
      : setup(n, /*base_tag=*/100, std::move(groups)) {}
  explicit SetupProtocol(NodeId n) : setup(n, /*base_tag=*/100) {}

  void begin(Context&) override {}
  void step(Context& ctx) override { setup.step(ctx); }
  bool on_quiescence(Network& net) override {
    if (setup.done()) return false;
    setup.advance(net);
    return !setup.done();
  }

  SetupComponent setup;
};

void check_tree_invariants(const Graph& g, const SetupComponent& s,
                           const std::vector<std::uint32_t>& groups) {
  // Leaders are the minimum id of each connected same-group component.
  // Build the expected components by BFS over same-group edges.
  const NodeId n = g.n();
  std::vector<std::uint32_t> comp(n, graph::kUnreachable);
  std::uint32_t ncomp = 0;
  for (NodeId root = 0; root < n; ++root) {
    if (comp[root] != graph::kUnreachable) continue;
    comp[root] = ncomp;
    std::vector<NodeId> stack{root};
    while (!stack.empty()) {
      const NodeId v = stack.back();
      stack.pop_back();
      for (const NodeId w : g.neighbors(v)) {
        if (groups[v] == groups[w] && comp[w] == graph::kUnreachable) {
          comp[w] = ncomp;
          stack.push_back(w);
        }
      }
    }
    ++ncomp;
  }
  std::vector<NodeId> expected_leader(ncomp, kNoNode);
  std::vector<std::uint32_t> expected_size(ncomp, 0);
  for (NodeId v = 0; v < n; ++v) {
    expected_leader[comp[v]] = std::min(expected_leader[comp[v]], v);
    expected_size[comp[v]] += 1;
  }

  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(s.leader(v), expected_leader[comp[v]]) << "node " << v;
    EXPECT_EQ(s.component_size(v), expected_size[comp[v]]) << "node " << v;
    if (s.is_leader(v)) {
      EXPECT_EQ(s.parent(v), kNoNode);
      EXPECT_EQ(s.level(v), 0u);
    } else {
      const NodeId p = s.parent(v);
      ASSERT_NE(p, kNoNode) << "non-leader node " << v << " has no parent";
      EXPECT_TRUE(g.has_edge(v, p));
      EXPECT_EQ(groups[v], groups[p]);
      EXPECT_EQ(s.level(v), s.level(p) + 1);
      // Parent lists v among its children.
      const auto& kids = s.children(p);
      EXPECT_NE(std::find(kids.begin(), kids.end(), v), kids.end());
    }
    EXPECT_LE(s.level(v), s.tree_depth(v));
  }
}

TEST(Setup, GlobalTreeOnPath) {
  const Graph g = graph::path_graph(6);
  Network net(g, {});
  SetupProtocol p(g.n());
  net.run(p);
  ASSERT_TRUE(p.setup.done());
  const std::vector<std::uint32_t> groups(6, 0);
  check_tree_invariants(g, p.setup, groups);
  EXPECT_TRUE(p.setup.is_leader(0));
  EXPECT_EQ(p.setup.tree_depth(3), 5u);  // path rooted at 0
  EXPECT_EQ(p.setup.component_size(5), 6u);
}

TEST(Setup, GlobalTreeOnStarRootedAtCenterNeighborhood) {
  const Graph g = graph::star_graph(8);
  Network net(g, {});
  SetupProtocol p(g.n());
  net.run(p);
  const std::vector<std::uint32_t> groups(8, 0);
  check_tree_invariants(g, p.setup, groups);
  EXPECT_TRUE(p.setup.is_leader(0));
  EXPECT_EQ(p.setup.tree_depth(0), 1u);
  EXPECT_EQ(p.setup.children(0).size(), 7u);
}

TEST(Setup, BfsTreeLevelsMatchBfsDistances) {
  support::Rng rng(5);
  const Graph g = graph::gnp(300, 0.03, rng);
  ASSERT_TRUE(graph::is_connected(g));
  Network net(g, {});
  SetupProtocol p(g.n());
  net.run(p);
  // Leader is node 0 (global min id); levels must equal BFS distances.
  ASSERT_TRUE(p.setup.is_leader(0));
  const auto dist = graph::bfs_distances(g, 0);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(p.setup.level(v), dist[v]);
  const std::vector<std::uint32_t> groups(g.n(), 0);
  check_tree_invariants(g, p.setup, groups);
}

TEST(Setup, PerGroupTreesOnRandomGraph) {
  support::Rng rng(7);
  const NodeId n = 400;
  const Graph g = graph::gnp(n, 0.08, rng);
  // 4 random groups.
  std::vector<std::uint32_t> groups(n);
  for (auto& c : groups) c = static_cast<std::uint32_t>(rng.below(4));
  Network net(g, {});
  SetupProtocol p(n, groups);
  const auto metrics = net.run(p);
  ASSERT_TRUE(p.setup.done());
  check_tree_invariants(g, p.setup, groups);
  EXPECT_GT(metrics.messages, 0u);
  // 5 phases => 5 quiescence barriers at most (plus final).
  EXPECT_LE(metrics.barrier_count, 6u);
}

TEST(Setup, SingletonGroupsElectThemselves) {
  const Graph g = graph::path_graph(3);
  // Every node its own group: no same-group neighbors at all.
  std::vector<std::uint32_t> groups{0, 1, 2};
  Network net(g, {});
  SetupProtocol p(3, groups);
  net.run(p);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_TRUE(p.setup.is_leader(v));
    EXPECT_EQ(p.setup.component_size(v), 1u);
    EXPECT_EQ(p.setup.tree_depth(v), 0u);
    EXPECT_TRUE(p.setup.children(v).empty());
  }
}

TEST(Setup, DisconnectedGroupGetsPerComponentLeaders) {
  // 0-1   2-3 all in one group, but the graph is 0-1, 2-3 disconnected...
  // make it connected overall but group-disconnected: path 0-1-2-3 with
  // groups {A, B, B, A}: group A = {0, 3} is not connected via A-edges.
  const Graph g = graph::path_graph(4);
  std::vector<std::uint32_t> groups{0, 1, 1, 0};
  Network net(g, {});
  SetupProtocol p(4, groups);
  net.run(p);
  EXPECT_TRUE(p.setup.is_leader(0));
  EXPECT_TRUE(p.setup.is_leader(3));  // separate A-component
  EXPECT_EQ(p.setup.component_size(0), 1u);
  EXPECT_EQ(p.setup.component_size(3), 1u);
  EXPECT_TRUE(p.setup.is_leader(1));
  EXPECT_EQ(p.setup.component_size(1), 2u);
  EXPECT_EQ(p.setup.leader(2), 1u);
  check_tree_invariants(g, p.setup, groups);
}

TEST(Setup, RespectsCongestCapacity) {
  // Setup must never violate the 1-message-per-edge-per-round budget; a
  // dense graph with many groups stresses simultaneous floods.
  support::Rng rng(11);
  const NodeId n = 150;
  const Graph g = graph::gnp(n, 0.2, rng);
  std::vector<std::uint32_t> groups(n);
  for (auto& c : groups) c = static_cast<std::uint32_t>(rng.below(8));
  NetworkConfig cfg;  // capacity 1
  Network net(g, cfg);
  SetupProtocol p(n, groups);
  EXPECT_NO_THROW(net.run(p));
  check_tree_invariants(g, p.setup, groups);
}

TEST(Setup, ForwardOnTreeReachesEveryone) {
  // After setup, flood a message from an arbitrary origin over tree edges;
  // every node must receive it exactly once, within 2·depth rounds.
  support::Rng rng(13);
  const Graph g = graph::gnp(200, 0.05, rng);
  ASSERT_TRUE(graph::is_connected(g));

  class FloodProtocol : public SetupProtocol {
   public:
    explicit FloodProtocol(NodeId n) : SetupProtocol(n), got(n, 0) {}
    void step(Context& ctx) override {
      if (!flood_started) {
        SetupProtocol::step(ctx);
        return;
      }
      if (ctx.self() == origin && ctx.inbox().empty()) {
        got[origin] = 1;
        setup.forward_on_tree(ctx, Message::make(900), kNoNode);
        flood_start_round = ctx.round();
      }
      for (const auto& m : ctx.inbox()) {
        if (m.tag == 900) {
          got[ctx.self()] += 1;
          last_arrival = ctx.round();
          setup.forward_on_tree(ctx, m, m.from);
        }
      }
    }
    bool on_quiescence(Network& net) override {
      if (!setup.done()) {
        setup.advance(net);
        if (!setup.done()) return true;
        flood_started = true;
        net.wake(origin);
        return true;
      }
      return false;
    }
    NodeId origin = 137;
    bool flood_started = false;
    std::vector<int> got;
    std::uint64_t flood_start_round = 0;
    std::uint64_t last_arrival = 0;
  };

  Network net(g, {});
  FloodProtocol p(g.n());
  net.run(p);
  for (NodeId v = 0; v < g.n(); ++v) EXPECT_EQ(p.got[v], 1) << "node " << v;
  EXPECT_LE(p.last_arrival - p.flood_start_round, 2u * p.setup.tree_depth(0));
}

TEST(Setup, DeterministicAcrossRuns) {
  support::Rng rng(17);
  const Graph g = graph::gnp(120, 0.06, rng);
  std::vector<std::vector<NodeId>> parents;
  for (int run = 0; run < 2; ++run) {
    NetworkConfig cfg;
    cfg.seed = 4;
    Network net(g, cfg);
    SetupProtocol p(g.n());
    net.run(p);
    std::vector<NodeId> par(g.n());
    for (NodeId v = 0; v < g.n(); ++v) par[v] = p.setup.parent(v);
    parents.push_back(std::move(par));
  }
  EXPECT_EQ(parents[0], parents[1]);
}

}  // namespace
}  // namespace dhc::congest
