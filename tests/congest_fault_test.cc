// Tests for the fault-injection layer of the async execution model:
// DelaySpec / CrashSpec parsing, FaultPlan hash purity and nesting, the
// Network's delayed/dropped/crashed delivery semantics, and the boundary
// behaviour of both wheels (wake-up and message delay) at kWheelSize.
#include "congest/fault_plan.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "congest/network.h"
#include "graph/generators.h"

namespace dhc::congest {
namespace {

using graph::Graph;

class LambdaProtocol : public Protocol {
 public:
  std::function<void(Context&)> on_begin = [](Context&) {};
  std::function<void(Context&)> on_step = [](Context&) {};
  std::function<bool(Network&)> on_quiet = [](Network&) { return false; };

  void begin(Context& ctx) override { on_begin(ctx); }
  void step(Context& ctx) override { on_step(ctx); }
  bool on_quiescence(Network& net) override { return on_quiet(net); }
};

// --- spec parsing ----------------------------------------------------------

TEST(DelaySpec, ParsesEveryKind) {
  EXPECT_EQ(DelaySpec::parse("none").kind, DelaySpec::Kind::kNone);

  const DelaySpec fixed = DelaySpec::parse("fixed:7");
  EXPECT_EQ(fixed.kind, DelaySpec::Kind::kFixed);
  EXPECT_EQ(fixed.a, 7u);

  const DelaySpec uniform = DelaySpec::parse("uniform:2:9");
  EXPECT_EQ(uniform.kind, DelaySpec::Kind::kUniform);
  EXPECT_EQ(uniform.a, 2u);
  EXPECT_EQ(uniform.b, 9u);

  const DelaySpec geo = DelaySpec::parse("geometric:0.25");
  EXPECT_EQ(geo.kind, DelaySpec::Kind::kGeometric);
  EXPECT_DOUBLE_EQ(geo.p, 0.25);
}

TEST(DelaySpec, RoundTripsThroughToString) {
  for (const char* spec : {"none", "fixed:3", "uniform:1:4", "geometric:0.5"}) {
    const DelaySpec parsed = DelaySpec::parse(spec);
    EXPECT_EQ(DelaySpec::parse(parsed.to_string()).to_string(), parsed.to_string()) << spec;
  }
}

TEST(DelaySpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "nope", "fixed", "fixed:0", "fixed:x", "uniform:3",
                          "uniform:5:2", "uniform:0:4", "geometric:0", "geometric:1.5",
                          "fixed:1:2"}) {
    EXPECT_THROW(DelaySpec::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(CrashSpec, ParsesAndRejects) {
  EXPECT_EQ(CrashSpec::parse("none").kind, CrashSpec::Kind::kNone);
  const CrashSpec c = CrashSpec::parse("random:0.25:10:40");
  EXPECT_EQ(c.kind, CrashSpec::Kind::kRandom);
  EXPECT_DOUBLE_EQ(c.fraction, 0.25);
  EXPECT_EQ(c.start, 10u);
  EXPECT_EQ(c.duration, 40u);
  EXPECT_TRUE(c.active());
  EXPECT_FALSE(CrashSpec::parse("none").active());

  for (const char* bad : {"", "crash", "random", "random:0.5", "random:0.5:1",
                          "random:1.0:1:1", "random:-0.1:1:1", "random:0.5:1:1:9"}) {
    EXPECT_THROW(CrashSpec::parse(bad), std::invalid_argument) << bad;
  }
}

// --- FaultPlan hash purity -------------------------------------------------

TEST(FaultPlan, DecisionsArePureFunctionsOfTheArguments) {
  const FaultPlan plan(DelaySpec::parse("uniform:1:6"), 0.3,
                       CrashSpec::parse("random:0.4:5:10"), /*fault_seed=*/123);
  const FaultPlan again(DelaySpec::parse("uniform:1:6"), 0.3,
                        CrashSpec::parse("random:0.4:5:10"), /*fault_seed=*/123);
  for (NodeId u = 0; u < 20; ++u) {
    for (NodeId v = 0; v < 20; ++v) {
      EXPECT_EQ(plan.delay(u, v), plan.delay(u, v));
      EXPECT_EQ(plan.delay(u, v), again.delay(u, v));
      EXPECT_EQ(plan.drop(u, v, 7), again.drop(u, v, 7));
    }
    EXPECT_EQ(plan.crashed(u, 8), again.crashed(u, 8));
  }
}

TEST(FaultPlan, DistinctSeedsGiveDistinctStreams) {
  const FaultPlan a(DelaySpec::parse("uniform:1:100"), 0.5, {}, 1);
  const FaultPlan b(DelaySpec::parse("uniform:1:100"), 0.5, {}, 2);
  bool any_delay_differs = false;
  bool any_drop_differs = false;
  for (NodeId u = 0; u < 40 && !(any_delay_differs && any_drop_differs); ++u) {
    for (NodeId v = 0; v < 40; ++v) {
      any_delay_differs |= a.delay(u, v) != b.delay(u, v);
      any_drop_differs |= a.drop(u, v, 3) != b.drop(u, v, 3);
    }
  }
  EXPECT_TRUE(any_delay_differs);
  EXPECT_TRUE(any_drop_differs);
}

TEST(FaultPlan, DelayRespectsTheConfiguredDistribution) {
  const FaultPlan none({}, 0.0, {}, 9);
  const FaultPlan fixed(DelaySpec::parse("fixed:5"), 0.0, {}, 9);
  const FaultPlan uniform(DelaySpec::parse("uniform:2:4"), 0.0, {}, 9);
  const FaultPlan geo(DelaySpec::parse("geometric:0.5"), 0.0, {}, 9);
  std::set<std::uint64_t> uniform_values;
  for (NodeId u = 0; u < 50; ++u) {
    for (NodeId v = 0; v < 50; ++v) {
      EXPECT_EQ(none.delay(u, v), 1u);
      EXPECT_EQ(fixed.delay(u, v), 5u);
      const std::uint64_t d = uniform.delay(u, v);
      EXPECT_GE(d, 2u);
      EXPECT_LE(d, 4u);
      uniform_values.insert(d);
      EXPECT_GE(geo.delay(u, v), 1u);
    }
  }
  // All three values of {2,3,4} appear over 2500 edges.
  EXPECT_EQ(uniform_values.size(), 3u);
}

TEST(FaultPlan, DropStreamsAreNestedAcrossProbabilities) {
  // Common-random-numbers pairing: the messages lost at p=0.05 are a subset
  // of those lost at p=0.3 under the same fault seed.
  const FaultPlan lo({}, 0.05, {}, 77);
  const FaultPlan hi({}, 0.3, {}, 77);
  std::uint64_t lo_drops = 0;
  std::uint64_t hi_drops = 0;
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = 0; v < 40; ++v) {
      for (std::uint64_t r = 1; r <= 4; ++r) {
        const bool lo_drop = lo.drop(u, v, r);
        const bool hi_drop = hi.drop(u, v, r);
        lo_drops += lo_drop;
        hi_drops += hi_drop;
        if (lo_drop) {
          EXPECT_TRUE(hi_drop) << u << "->" << v << " r" << r;
        }
      }
    }
  }
  EXPECT_GT(lo_drops, 0u);
  EXPECT_GT(hi_drops, lo_drops);
}

TEST(FaultPlan, CrashWindowMatchesTheSchedule) {
  const CrashSpec spec = CrashSpec::parse("random:0.5:10:5");
  const FaultPlan plan({}, 0.0, spec, 31);
  const NodeId n = 64;
  const std::uint64_t scheduled = plan.crashed_node_count(n);
  EXPECT_GT(scheduled, 0u);
  EXPECT_LT(scheduled, static_cast<std::uint64_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    for (std::uint64_t r = 0; r < 20; ++r) {
      const bool in_window = r >= 10 && r < 15;
      EXPECT_EQ(plan.crashed(v, r), plan.crash_scheduled(v) && in_window)
          << "v=" << v << " r=" << r;
    }
  }
}

TEST(FaultPlan, RejectsOutOfRangeDropProbability) {
  EXPECT_THROW(FaultPlan({}, 1.0, {}, 1), std::invalid_argument);
  EXPECT_THROW(FaultPlan({}, -0.1, {}, 1), std::invalid_argument);
}

// --- network delivery semantics under a plan -------------------------------

TEST(AsyncNetwork, FixedDelayPostponesDeliveryAndCounts) {
  const Graph g = graph::path_graph(2);
  const FaultPlan plan(DelaySpec::parse("fixed:3"), 0.0, {}, 5);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  std::uint64_t arrival_round = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, Message::make(7, {42}));
  };
  p.on_step = [&](Context& ctx) {
    for (const auto& m : ctx.inbox()) {
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.data[0], 42);
      arrival_round = ctx.round();
    }
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(arrival_round, 3u);
  EXPECT_EQ(metrics.messages, 1u);
  EXPECT_EQ(metrics.delayed_messages, 1u);
  EXPECT_EQ(metrics.dropped_messages, 0u);
  EXPECT_EQ(metrics.rounds, 3u);
}

TEST(AsyncNetwork, NoFaultPlanFieldsStayZeroWithNullPlan) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, Message::make(1));
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(metrics.delayed_messages, 0u);
  EXPECT_EQ(metrics.dropped_messages, 0u);
  EXPECT_EQ(metrics.crash_dropped_messages, 0u);
  EXPECT_EQ(metrics.crashed_steps, 0u);
}

TEST(AsyncNetwork, DropsAreAccountedAndNeverDelivered) {
  // Star: every leaf floods the center for several rounds at drop_prob 0.5.
  const Graph g = graph::star_graph(32);
  const FaultPlan plan({}, 0.5, {}, 21);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  std::uint64_t received = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() != 0) {
      ctx.send(0, Message::make(1));
      ctx.wake_in(1);
    }
  };
  p.on_step = [&](Context& ctx) {
    received += ctx.inbox().size();
    if (ctx.self() != 0 && ctx.round() < 4) {
      ctx.send(0, Message::make(1));
      ctx.wake_in(1);
    }
  };
  const auto metrics = net.run(p);
  EXPECT_GT(metrics.dropped_messages, 0u);
  EXPECT_GT(received, 0u);
  EXPECT_EQ(received + metrics.dropped_messages, metrics.messages);
}

TEST(AsyncNetwork, CrashedReceiverLosesMessagesAndSkipsSteps) {
  // Find a fault seed where exactly node 1 of a 2-path has a crash window
  // over rounds [1, 4); send into the window and assert the message is
  // charged to crash_dropped_messages and the node never observes it.
  const CrashSpec spec = CrashSpec::parse("random:0.5:1:3");
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 200; ++s) {
    const FaultPlan probe({}, 0.0, spec, s);
    if (probe.crash_scheduled(1) && !probe.crash_scheduled(0)) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);
  const FaultPlan plan({}, 0.0, spec, seed);

  const Graph g = graph::path_graph(2);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  std::uint64_t node1_arrivals = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, Message::make(4));  // arrives round 1: crashed
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 1) node1_arrivals += ctx.inbox().size();
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(node1_arrivals, 0u);
  EXPECT_EQ(metrics.crash_dropped_messages, 1u);
}

TEST(AsyncNetwork, CrashedNodeDoesNotStepInsideItsWindow) {
  const CrashSpec spec = CrashSpec::parse("random:0.5:2:2");
  std::uint64_t seed = 0;
  for (std::uint64_t s = 1; s < 200; ++s) {
    if (FaultPlan({}, 0.0, spec, s).crash_scheduled(1)) {
      seed = s;
      break;
    }
  }
  ASSERT_NE(seed, 0u);
  const FaultPlan plan({}, 0.0, spec, seed);

  const Graph g = graph::path_graph(2);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  std::vector<std::uint64_t> node1_steps;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 1) ctx.wake_in(1);
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() != 1) return;
    node1_steps.push_back(ctx.round());
    if (ctx.round() < 5) ctx.wake_in(1);
  };
  const auto metrics = net.run(p);
  for (const std::uint64_t r : node1_steps) {
    EXPECT_TRUE(r < 2 || r >= 4) << "stepped at crashed round " << r;
  }
  EXPECT_GT(metrics.crashed_steps, 0u);
}

// --- wheel boundaries ------------------------------------------------------

class WheelBoundary : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WheelBoundary, WakeInAroundTheWheelCapacityFiresExactly) {
  const std::uint64_t delay = GetParam();
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  std::uint64_t woke_at = 0;
  p.on_begin = [&](Context& ctx) {
    if (ctx.self() == 0) ctx.wake_in(delay);
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 0) woke_at = ctx.round();
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(woke_at, delay);
  EXPECT_EQ(metrics.rounds, delay);
}

TEST_P(WheelBoundary, MessageDelayAroundTheWheelCapacityArrivesExactly) {
  const std::uint64_t delay = GetParam();
  const Graph g = graph::path_graph(2);
  DelaySpec spec;
  spec.kind = DelaySpec::Kind::kFixed;
  spec.a = delay;
  const FaultPlan plan(spec, 0.0, {}, 13);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  std::uint64_t arrival_round = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, Message::make(2, {9}));
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 1 && !ctx.inbox().empty()) arrival_round = ctx.round();
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(arrival_round, delay);
  EXPECT_EQ(metrics.rounds, delay);
  EXPECT_EQ(metrics.delayed_messages, 1u);
}

INSTANTIATE_TEST_SUITE_P(AroundKWheelSize, WheelBoundary,
                         ::testing::Values(Network::kWheelSize - 1, Network::kWheelSize,
                                           Network::kWheelSize + 1));

TEST(AsyncNetwork, FarDelaysBeyondTheWheelPreserveSendOrderPerEdge) {
  // Two messages on the same directed edge, sent in consecutive rounds with
  // a far (beyond-the-wheel) fixed latency, must arrive in send order.
  const Graph g = graph::path_graph(2);
  DelaySpec spec;
  spec.kind = DelaySpec::Kind::kFixed;
  spec.a = Network::kWheelSize + 50;
  const FaultPlan plan(spec, 0.0, {}, 3);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  std::vector<std::int64_t> arrivals;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) {
      ctx.send(1, Message::make(1, {10}));
      ctx.wake_in(1);
    }
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 0 && ctx.round() == 1) ctx.send(1, Message::make(1, {11}));
    for (const auto& m : ctx.inbox()) arrivals.push_back(m.data[0]);
  };
  net.run(p);
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 10);
  EXPECT_EQ(arrivals[1], 11);
}

TEST(AsyncNetwork, RoundLimitFromThePlanTurnsDivergenceIntoReporting) {
  const Graph g = graph::path_graph(2);
  const FaultPlan plan({}, 0.0, {}, 5, /*round_limit=*/8);
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) { ctx.wake_in(1); };
  p.on_step = [](Context& ctx) { ctx.wake_in(1); };  // ping forever
  const auto metrics = net.run(p);
  EXPECT_TRUE(metrics.hit_round_limit);
}

}  // namespace
}  // namespace dhc::congest
