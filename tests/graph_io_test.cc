// Tests for graph/cycle serialization round trips and malformed input.
#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.h"

namespace dhc::graph {
namespace {

TEST(GraphIo, EdgeListRoundTrip) {
  support::Rng rng(1);
  const Graph g = gnp(100, 0.1, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.n(), g.n());
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, EmptyGraphRoundTrip) {
  std::stringstream ss;
  write_edge_list(ss, Graph(5, {}));
  const Graph back = read_edge_list(ss);
  EXPECT_EQ(back.n(), 5u);
  EXPECT_EQ(back.m(), 0u);
}

TEST(GraphIo, MalformedInputsThrow) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("4 2\n0 1\n");  // promises 2 edges, has 1
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("4 1\n0 9\n");  // out-of-range endpoint
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("3 1\n1 1\n");  // self loop rejected by Graph
    EXPECT_THROW(read_edge_list(ss), std::invalid_argument);
  }
}

TEST(GraphIo, CycleRoundTrip) {
  CycleOrder cycle{{4, 2, 0, 1, 3}};
  std::stringstream ss;
  write_cycle(ss, cycle);
  const CycleOrder back = read_cycle(ss);
  EXPECT_EQ(back.order, cycle.order);
}

TEST(GraphIo, FileRoundTrip) {
  support::Rng rng(2);
  const Graph g = gnp(50, 0.2, rng);
  const std::string path = ::testing::TempDir() + "/dhc_io_test_graph.txt";
  save_edge_list(path, g);
  const Graph back = load_edge_list(path);
  EXPECT_EQ(back.edges(), g.edges());
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/dir/graph.txt"), std::invalid_argument);
}

TEST(ChungLu, ExpectedDegreesTrackWeights) {
  // Uniform weights w: reduces to G(n, w/n)-ish; degree ≈ w.
  support::Rng rng(3);
  const graph::NodeId n = 2000;
  std::vector<double> weights(n, 20.0);
  const Graph g = chung_lu(weights, rng);
  const double avg_deg = 2.0 * static_cast<double>(g.m()) / n;
  EXPECT_NEAR(avg_deg, 20.0, 1.5);
}

TEST(ChungLu, HeavyNodesGetMoreEdges) {
  support::Rng rng(4);
  const graph::NodeId n = 1000;
  std::vector<double> weights(n, 5.0);
  weights[0] = 100.0;  // one hub
  const Graph g = chung_lu(weights, rng);
  EXPECT_GT(g.degree(0), 50u);
  const double avg_other = 2.0 * static_cast<double>(g.m()) / n;
  EXPECT_GT(static_cast<double>(g.degree(0)), 3.0 * avg_other);
}

TEST(ChungLu, ZeroWeightsAndTinyInputs) {
  support::Rng rng(5);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_EQ(chung_lu(zeros, rng).m(), 0u);
  const std::vector<double> one{3.0};
  EXPECT_EQ(chung_lu(one, rng).n(), 1u);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(chung_lu(negative, rng), std::invalid_argument);
}

TEST(ChungLu, Deterministic) {
  const auto weights = power_law_weights(500, 2.5, 12.0);
  support::Rng a(6);
  support::Rng b(6);
  EXPECT_EQ(chung_lu(weights, a).edges(), chung_lu(weights, b).edges());
}

TEST(PowerLawWeights, MeanMatchesTarget) {
  const auto weights = power_law_weights(5000, 2.5, 10.0);
  double sum = 0.0;
  for (const double w : weights) sum += w;
  EXPECT_NEAR(sum / 5000.0, 10.0, 1e-9);
  // Heavy head, light tail.
  EXPECT_GT(weights.front(), weights.back() * 10.0);
}

TEST(PowerLawWeights, RejectsBadParameters) {
  EXPECT_THROW(power_law_weights(10, 2.0, 5.0), std::invalid_argument);
  EXPECT_THROW(power_law_weights(10, 3.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace dhc::graph
