// Randomized protocol fuzzing for the CONGEST simulator: seeded random
// gossip protocols must (a) never trip the bandwidth checker when they send
// compliantly, (b) conserve messages (sent == delivered), and (c) replay
// bit-identically for equal seeds.  A second suite drives seeded random
// send/wake-up schedules through the arena simulator and through a naive
// reference delivery model (plain per-node queues, no arenas, no wheel) and
// requires byte-identical inbox logs — delivery order, timing, and
// round-skipping must match the definitionally-correct model.  Both suites
// run at several shard counts (DESIGN.md §5): the sharded engine must match
// the reference model byte for byte too, so the test protocols keep their
// logs per node (self-indexed state, the discipline sharding requires) and
// flatten them deterministically afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "congest/network.h"
#include "graph/generators.h"
#include "per_node_journal.h"

namespace dhc::congest {
namespace {

using graph::Graph;

// Each active node relays a random subset of neighbors, one message per
// neighbor per round (compliant by construction), for a bounded lifetime.
// All tallies are per node (self-indexed — shard-safe) and reduced in node
// order afterwards, so the combined observables are shard-invariant.
class GossipProtocol : public Protocol {
 public:
  GossipProtocol(graph::NodeId n, int max_generation)
      : max_generation_(max_generation), received_(n, 0), sent_(n, 0), checksum_(n, 0) {}

  void begin(Context& ctx) override {
    if (ctx.self() % 7 == 0) {
      send_wave(ctx, 0);
    }
  }

  void step(Context& ctx) override {
    const graph::NodeId v = ctx.self();
    std::int64_t best_gen = -1;
    for (const Message& msg : ctx.inbox()) {
      received_[v] += 1;
      checksum_[v] = checksum_[v] * 1099511628211ULL + msg.from * 31 +
                     static_cast<std::uint64_t>(msg.data[0]);
      best_gen = std::max(best_gen, msg.data[0]);
    }
    if (best_gen >= 0 && best_gen < max_generation_) {
      send_wave(ctx, best_gen + 1);
    }
  }

  std::uint64_t received() const { return sum(received_); }
  std::uint64_t sent() const { return sum(sent_); }
  std::uint64_t checksum() const {
    std::uint64_t h = 14695981039346656037ULL;
    for (const auto c : checksum_) h = h * 1099511628211ULL + c;
    return h;
  }

 private:
  static std::uint64_t sum(const std::vector<std::uint64_t>& xs) {
    std::uint64_t total = 0;
    for (const auto x : xs) total += x;
    return total;
  }

  void send_wave(Context& ctx, std::int64_t generation) {
    for (const graph::NodeId w : ctx.neighbors()) {
      if (ctx.rng().bernoulli(0.5)) {
        ctx.send(w, Message::make(1, {generation}));
        sent_[ctx.self()] += 1;
      }
    }
  }

  int max_generation_;
  std::vector<std::uint64_t> received_;
  std::vector<std::uint64_t> sent_;
  std::vector<std::uint64_t> checksum_;
};

// All begin()-round messages are delivered in round 1 (none lost); helper
// kept for clarity of the conservation equation.
std::uint64_t count_begin_wave_losses() { return 0; }

// (seed, shard count): every suite below must be invariant in the second
// coordinate.
using FuzzParam = std::tuple<std::uint64_t, std::uint32_t>;

class GossipFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(GossipFuzz, ConservesMessagesAndReplaysDeterministically) {
  const auto [seed, shards] = GetParam();
  support::Rng grng(seed);
  const Graph g = graph::gnp(120, 0.08, grng);

  std::uint64_t checksums[2];
  std::uint64_t rounds[2];
  for (int run = 0; run < 2; ++run) {
    NetworkConfig cfg;
    cfg.seed = seed * 13 + 1;
    // First run sequential, second at the parametrized shard count: the
    // equality assertions below therefore pin shard invariance, not just
    // replay determinism.
    cfg.shards = run == 0 ? 1 : shards;
    cfg.shard_grain = 1;
    Network net(g, cfg);
    GossipProtocol protocol(g.n(), /*max_generation=*/6);
    const Metrics metrics = net.run(protocol);
    // Conservation: everything sent was delivered (and counted once).
    EXPECT_EQ(protocol.sent(), protocol.received() + count_begin_wave_losses());
    EXPECT_EQ(metrics.messages, protocol.sent());
    std::uint64_t traffic_sent = 0;
    std::uint64_t traffic_recv = 0;
    for (const auto x : metrics.node_messages_sent) traffic_sent += x;
    for (const auto x : metrics.node_messages_received) traffic_recv += x;
    EXPECT_EQ(traffic_sent, metrics.messages);
    EXPECT_EQ(traffic_recv, metrics.messages);
    checksums[run] = protocol.checksum();
    rounds[run] = metrics.rounds;
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(rounds[0], rounds[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipFuzz,
                         ::testing::Combine(::testing::Range<std::uint64_t>(0, 12),
                                            ::testing::Values(1u, 4u)));

// --- differential fuzz: Network vs a naive reference delivery model --------

// A node's action in a round is a pure function of (seed, node, round): which
// neighbors to message, what payload, and how long to sleep.  Both the real
// protocol below and the reference simulator evaluate this same function, so
// any divergence in the logs is a delivery-model bug, not test noise.
struct Plan {
  std::vector<std::size_t> send_ranks;  // neighbor ranks to message
  std::int64_t payload = 0;
  std::uint64_t wake_delay = 0;  // 0 = no wake-up
};

Plan plan_for(std::uint64_t seed, graph::NodeId v, std::uint64_t round, std::size_t degree,
              std::uint64_t horizon) {
  Plan plan;
  if (round >= horizon) return plan;  // quiesce eventually
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)) ^ (round << 20);
  std::uint64_t h = support::splitmix64(state);
  plan.payload = static_cast<std::int64_t>(h & 0xffff);
  for (std::size_t i = 0; i < degree; ++i) {
    h = support::splitmix64(state);
    if ((h & 3) == 0) plan.send_ranks.push_back(i);  // ~1/4 of neighbors
  }
  h = support::splitmix64(state);
  switch (h % 5) {
    case 0:
      plan.wake_delay = 1 + (h >> 8) % 4;  // short: stays in the wheel
      break;
    case 1:
      plan.wake_delay = 1200 + (h >> 8) % 64;  // beyond the wheel: far heap
      break;
    default:
      break;  // no wake-up
  }
  return plan;
}

// Executes the plan through the real simulator, journaling every delivered
// message and every activation *per node* (self-indexed, so sharded rounds
// never write across nodes); the full log is flattened afterwards in
// (round, node) order — exactly the order the sequential stepper (and the
// reference model) emits lines in.
class ScriptedProtocol : public Protocol {
 public:
  ScriptedProtocol(graph::NodeId n, std::uint64_t seed, std::uint64_t horizon)
      : seed_(seed), horizon_(horizon), journal_(n) {}

  void begin(Context& ctx) override {
    if (ctx.self() % 3 == 0) act(ctx);  // seeders; round() == 0 here
  }

  void step(Context& ctx) override {
    std::ostringstream line;
    line << "r" << ctx.round() << " v" << ctx.self() << ":";
    for (const Message& m : ctx.inbox()) {
      line << " (" << m.from << "," << m.tag << "," << m.data[0] << ")";
    }
    journal_.append(ctx.self(), ctx.round(), line.str());
    act(ctx);
  }

  /// Flattened journal in (round asc, node asc) order — the sequential log.
  std::string log() const { return journal_.flatten(); }

 private:
  void act(Context& ctx) {
    const Plan plan = plan_for(seed_, ctx.self(), ctx.round(), ctx.degree(), horizon_);
    const auto nb = ctx.neighbors();
    for (const std::size_t rank : plan.send_ranks) {
      ctx.send(nb[rank], Message::make(7, {plan.payload, static_cast<std::int64_t>(rank)}));
    }
    if (plan.wake_delay != 0) ctx.wake_in(plan.wake_delay);
  }

  std::uint64_t seed_;
  std::uint64_t horizon_;
  testutil::PerNodeJournal journal_;
};

// The reference model: plain per-round maps and per-node vectors, written
// for obviousness.  Messages sent in round r arrive in round r+1; active
// nodes run in ascending id order; per-node arrival order is global send
// order; idle gaps are skipped but still numbered.
std::string reference_run(const Graph& g, std::uint64_t seed, std::uint64_t horizon,
                          std::uint64_t* rounds_out) {
  struct Pending {
    graph::NodeId from;
    std::int64_t payload;
    std::int64_t rank;
  };
  std::ostringstream log;
  std::map<std::uint64_t, std::map<graph::NodeId, std::vector<Pending>>> mail;
  std::map<std::uint64_t, std::set<graph::NodeId>> wake;

  const auto act = [&](graph::NodeId v, std::uint64_t round) {
    const Plan plan = plan_for(seed, v, round, g.degree(v), horizon);
    const auto nb = g.neighbors(v);
    for (const std::size_t rank : plan.send_ranks) {
      mail[round + 1][nb[rank]].push_back(
          {v, plan.payload, static_cast<std::int64_t>(rank)});
    }
    if (plan.wake_delay != 0) wake[round + plan.wake_delay].insert(v);
  };

  for (graph::NodeId v = 0; v < g.n(); ++v) {
    if (v % 3 == 0) act(v, 0);
  }
  std::uint64_t round = 0;
  while (!mail.empty() || !wake.empty()) {
    // Next active round: earliest mail (always next round) or wake-up.
    std::uint64_t next = static_cast<std::uint64_t>(-1);
    if (!mail.empty()) next = std::min(next, mail.begin()->first);
    if (!wake.empty()) next = std::min(next, wake.begin()->first);
    round = next;
    std::set<graph::NodeId> active;
    auto mail_it = mail.find(round);
    if (mail_it != mail.end()) {
      for (const auto& [v, box] : mail_it->second) active.insert(v);
    }
    if (const auto wake_it = wake.find(round); wake_it != wake.end()) {
      active.insert(wake_it->second.begin(), wake_it->second.end());
      wake.erase(wake_it);
    }
    for (const graph::NodeId v : active) {  // std::set iterates ascending
      log << "r" << round << " v" << v << ":";
      if (mail_it != mail.end()) {
        if (const auto box = mail_it->second.find(v); box != mail_it->second.end()) {
          for (const auto& p : box->second) {
            log << " (" << p.from << ",7," << p.payload << ")";
          }
        }
      }
      log << "\n";
      act(v, round);
      mail_it = mail.find(round);  // act() may invalidate via map inserts
    }
    if (mail_it != mail.end()) mail.erase(mail_it);
  }
  *rounds_out = round;
  return log.str();
}

class DeliveryFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(DeliveryFuzz, MatchesNaiveReferenceModel) {
  const auto [seed, shards] = GetParam();
  support::Rng grng(seed * 31 + 5);
  const Graph g = graph::gnp(60 + static_cast<graph::NodeId>(seed % 40), 0.12, grng);
  const std::uint64_t horizon = 30;

  NetworkConfig cfg;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.shard_grain = 1;  // shard even the sparse rounds of these small graphs
  Network net(g, cfg);
  ScriptedProtocol protocol(g.n(), seed, horizon);
  const Metrics metrics = net.run(protocol);

  std::uint64_t ref_rounds = 0;
  const std::string expected = reference_run(g, seed, horizon, &ref_rounds);

  EXPECT_EQ(protocol.log(), expected)
      << "arena delivery diverged from the reference model (seed " << seed << ", shards "
      << shards << ")";
  EXPECT_EQ(metrics.rounds, ref_rounds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryFuzz,
                         ::testing::Combine(::testing::Range<std::uint64_t>(0, 10),
                                            ::testing::Values(1u, 2u, 4u, 8u)));

}  // namespace
}  // namespace dhc::congest
