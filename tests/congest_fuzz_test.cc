// Randomized protocol fuzzing for the CONGEST simulator: seeded random
// gossip protocols must (a) never trip the bandwidth checker when they send
// compliantly, (b) conserve messages (sent == delivered), and (c) replay
// bit-identically for equal seeds.
#include <gtest/gtest.h>

#include <map>

#include "congest/network.h"
#include "graph/generators.h"

namespace dhc::congest {
namespace {

using graph::Graph;

// Each active node relays a random subset of neighbors, one message per
// neighbor per round (compliant by construction), for a bounded lifetime.
class GossipProtocol : public Protocol {
 public:
  explicit GossipProtocol(int max_generation) : max_generation_(max_generation) {}

  void begin(Context& ctx) override {
    if (ctx.self() % 7 == 0) {
      send_wave(ctx, 0);
    }
  }

  void step(Context& ctx) override {
    std::int64_t best_gen = -1;
    for (const Message& msg : ctx.inbox()) {
      received_ += 1;
      checksum_ = checksum_ * 1099511628211ULL + msg.from * 31 + static_cast<std::uint64_t>(msg.data[0]);
      best_gen = std::max(best_gen, msg.data[0]);
    }
    if (best_gen >= 0 && best_gen < max_generation_) {
      send_wave(ctx, best_gen + 1);
    }
  }

  std::uint64_t received() const { return received_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t checksum() const { return checksum_; }

 private:
  void send_wave(Context& ctx, std::int64_t generation) {
    for (const graph::NodeId w : ctx.neighbors()) {
      if (ctx.rng().bernoulli(0.5)) {
        ctx.send(w, Message::make(1, {generation}));
        sent_ += 1;
      }
    }
  }

  int max_generation_;
  std::uint64_t received_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t checksum_ = 14695981039346656037ULL;
};

// All begin()-round messages are delivered in round 1 (none lost); helper
// kept for clarity of the conservation equation.
std::uint64_t count_begin_wave_losses() { return 0; }

class GossipFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GossipFuzz, ConservesMessagesAndReplaysDeterministically) {
  const std::uint64_t seed = GetParam();
  support::Rng grng(seed);
  const Graph g = graph::gnp(120, 0.08, grng);

  std::uint64_t checksums[2];
  std::uint64_t rounds[2];
  for (int run = 0; run < 2; ++run) {
    NetworkConfig cfg;
    cfg.seed = seed * 13 + 1;
    Network net(g, cfg);
    GossipProtocol protocol(/*max_generation=*/6);
    const Metrics metrics = net.run(protocol);
    // Conservation: everything sent was delivered (and counted once).
    EXPECT_EQ(protocol.sent(), protocol.received() + count_begin_wave_losses());
    EXPECT_EQ(metrics.messages, protocol.sent());
    std::uint64_t traffic_sent = 0;
    std::uint64_t traffic_recv = 0;
    for (const auto x : metrics.node_messages_sent) traffic_sent += x;
    for (const auto x : metrics.node_messages_received) traffic_recv += x;
    EXPECT_EQ(traffic_sent, metrics.messages);
    EXPECT_EQ(traffic_recv, metrics.messages);
    checksums[run] = protocol.checksum();
    rounds[run] = metrics.rounds;
  }
  EXPECT_EQ(checksums[0], checksums[1]);
  EXPECT_EQ(rounds[0], rounds[1]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GossipFuzz, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace dhc::congest
