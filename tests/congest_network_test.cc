// Tests for the CONGEST network simulator: delivery timing, bandwidth
// enforcement, event-driven scheduling, wake-ups, quiescence barriers,
// metrics, and determinism.
#include "congest/network.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace dhc::congest {
namespace {

using graph::Graph;

// Protocol shells for targeted behaviours.
class LambdaProtocol : public Protocol {
 public:
  std::function<void(Context&)> on_begin = [](Context&) {};
  std::function<void(Context&)> on_step = [](Context&) {};
  std::function<bool(Network&)> on_quiet = [](Network&) { return false; };

  void begin(Context& ctx) override { on_begin(ctx); }
  void step(Context& ctx) override { on_step(ctx); }
  bool on_quiescence(Network& net) override { return on_quiet(net); }
};

TEST(Network, MessageSentInBeginArrivesInRoundOne) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  std::uint64_t arrival_round = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, Message::make(7, {42}));
  };
  p.on_step = [&](Context& ctx) {
    for (const auto& m : ctx.inbox()) {
      EXPECT_EQ(m.tag, 7);
      EXPECT_EQ(m.data[0], 42);
      EXPECT_EQ(m.from, 0u);
      EXPECT_EQ(m.to, 1u);
      arrival_round = ctx.round();
    }
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(arrival_round, 1u);
  EXPECT_EQ(metrics.messages, 1u);
  EXPECT_EQ(metrics.rounds, 1u);
}

TEST(Network, RelayTakesOneRoundPerHop) {
  const Graph g = graph::path_graph(5);
  Network net(g, {});
  LambdaProtocol p;
  std::uint64_t arrival_at_4 = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, Message::make(1));
  };
  p.on_step = [&](Context& ctx) {
    for (const auto& m : ctx.inbox()) {
      if (ctx.self() < 4) {
        ctx.send(static_cast<NodeId>(ctx.self() + 1), Message::make(m.tag));
      } else {
        arrival_at_4 = ctx.round();
      }
    }
  };
  net.run(p);
  EXPECT_EQ(arrival_at_4, 4u);  // 4 hops
}

TEST(Network, SendToNonNeighborThrows) {
  const Graph g = graph::path_graph(3);  // 0-1-2; 0 and 2 not adjacent
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.send(2, Message::make(1));
  };
  EXPECT_THROW(net.run(p), CongestViolation);
}

TEST(Network, EdgeCapacityEnforced) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) {
      ctx.send(1, Message::make(1));
      ctx.send(1, Message::make(2));  // second message on same edge, same round
    }
  };
  EXPECT_THROW(net.run(p), CongestViolation);
}

TEST(Network, HigherCapacityAllowsMoreMessages) {
  const Graph g = graph::path_graph(2);
  NetworkConfig cfg;
  cfg.edge_capacity = 2;
  Network net(g, cfg);
  LambdaProtocol p;
  int received = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) {
      ctx.send(1, Message::make(1));
      ctx.send(1, Message::make(2));
    }
  };
  p.on_step = [&](Context& ctx) { received += static_cast<int>(ctx.inbox().size()); };
  net.run(p);
  EXPECT_EQ(received, 2);
}

TEST(Network, OppositeDirectionsAreIndependentEdges) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  int received = 0;
  p.on_begin = [](Context& ctx) {
    // Both endpoints send simultaneously across the same undirected edge.
    ctx.send(ctx.self() == 0 ? 1 : 0, Message::make(1));
  };
  p.on_step = [&](Context& ctx) { received += static_cast<int>(ctx.inbox().size()); };
  net.run(p);
  EXPECT_EQ(received, 2);
}

TEST(Network, CapacityResetsEachRound) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  int received = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) {
      ctx.send(1, Message::make(1));
      ctx.wake_in(1);
    }
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 0 && ctx.round() == 1) ctx.send(1, Message::make(2));
    received += static_cast<int>(ctx.inbox().size());
  };
  net.run(p);
  EXPECT_EQ(received, 2);
}

TEST(Network, WakeInSkipsIdleRoundsButCountsThem) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  std::uint64_t woke_at = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.wake_in(10);
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 0) woke_at = ctx.round();
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(woke_at, 10u);
  EXPECT_EQ(metrics.rounds, 10u);
  EXPECT_EQ(metrics.messages, 0u);
}

TEST(Network, WakeInZeroThrows) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.wake_in(0);
  };
  EXPECT_THROW(net.run(p), std::invalid_argument);
}

TEST(Network, QuiescenceHookCanExtendTheRun) {
  const Graph g = graph::path_graph(3);
  Network net(g, {});
  LambdaProtocol p;
  int phases = 0;
  std::vector<std::uint64_t> step_rounds;
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 0) step_rounds.push_back(ctx.round());
  };
  p.on_quiet = [&](Network& n) {
    if (++phases > 3) return false;
    n.wake(0);
    return true;
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(phases, 4);
  EXPECT_EQ(metrics.barrier_count, 3u);
  EXPECT_EQ(step_rounds.size(), 3u);
}

TEST(Network, QuiescenceWithoutWakeIsAProtocolBug) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  p.on_quiet = [](Network&) { return true; };  // continue but wake nobody
  EXPECT_THROW(net.run(p), support::InvariantViolation);
}

TEST(Network, RoundLimitStopsRunsGracefully) {
  const Graph g = graph::path_graph(2);
  NetworkConfig cfg;
  cfg.max_rounds = 5;
  Network net(g, cfg);
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) { ctx.wake_in(1); };
  p.on_step = [](Context& ctx) { ctx.wake_in(1); };  // ping forever
  const auto metrics = net.run(p);
  EXPECT_TRUE(metrics.hit_round_limit);
  EXPECT_GT(metrics.rounds, 5u);
}

TEST(Network, MetricsCountTrafficPerNode) {
  const Graph g = graph::star_graph(4);  // center 0
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() != 0) ctx.send(0, Message::make(1, {1, 2}));
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(metrics.messages, 3u);
  EXPECT_EQ(metrics.node_messages_sent[1], 1u);
  EXPECT_EQ(metrics.node_messages_sent[0], 0u);
  EXPECT_EQ(metrics.node_messages_received[0], 3u);
  // Each message: 2 words × ⌈log₂ 4⌉ bits + 8-bit tag = 2·2+8 = 12 bits.
  EXPECT_EQ(metrics.bits, 3u * 12u);
}

TEST(Network, MemoryAndComputeCharging) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) {
      ctx.charge_memory(100);
      ctx.charge_memory(-40);
      ctx.charge_compute(7);
    }
  };
  const auto metrics = net.run(p);
  EXPECT_EQ(metrics.node_memory_words[0], 60);
  EXPECT_EQ(metrics.node_peak_memory_words[0], 100);
  EXPECT_EQ(metrics.max_node_peak_memory(), 100);
  EXPECT_EQ(metrics.node_compute_ops[0], 7u);
  EXPECT_EQ(metrics.max_node_compute(), 7u);
}

TEST(Network, PhaseMarksAndPhaseRounds) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  int phase = 0;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) ctx.wake_in(1);
  };
  p.on_step = [](Context& ctx) {
    if (ctx.round() < 3) ctx.wake_in(1);
  };
  p.on_quiet = [&](Network& n) {
    if (phase++ == 0) {
      n.mark_phase("second");
      n.wake(0);
      return true;
    }
    return false;
  };
  const auto metrics = net.run(p);
  ASSERT_EQ(metrics.phase_marks.size(), 1u);
  EXPECT_EQ(metrics.phase_marks[0].first, "second");
  EXPECT_EQ(metrics.barrier_count, 1u);
}

TEST(Network, PerNodeRngStreamsAreDeterministic) {
  const Graph g = graph::path_graph(3);
  std::vector<std::uint64_t> draws_a;
  std::vector<std::uint64_t> draws_b;
  for (auto* out : {&draws_a, &draws_b}) {
    NetworkConfig cfg;
    cfg.seed = 99;
    Network net(g, cfg);
    LambdaProtocol p;
    p.on_begin = [out](Context& ctx) { out->push_back(ctx.rng().next_u64()); };
    net.run(p);
  }
  EXPECT_EQ(draws_a, draws_b);
  // Distinct nodes draw distinct streams.
  EXPECT_NE(draws_a[0], draws_a[1]);
}

TEST(Network, InboxClearedBetweenRounds) {
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  std::vector<std::size_t> inbox_sizes;
  p.on_begin = [](Context& ctx) {
    if (ctx.self() == 0) {
      ctx.send(1, Message::make(1));
      ctx.wake_in(2);
    }
  };
  p.on_step = [&](Context& ctx) {
    if (ctx.self() == 1) inbox_sizes.push_back(ctx.inbox().size());
    if (ctx.self() == 0 && ctx.round() == 2) ctx.send(1, Message::make(2));
  };
  net.run(p);
  ASSERT_EQ(inbox_sizes.size(), 2u);
  EXPECT_EQ(inbox_sizes[0], 1u);
  EXPECT_EQ(inbox_sizes[1], 1u);  // old message must not linger
}

TEST(Network, MessageBitsScaleWithN) {
  Message m = Message::make(1, {5, 6, 7});
  // Ids 0..n-1 need ⌈log₂ n⌉ bits: 10 for n=1024, 10 for n=1023, 11 for 1025.
  EXPECT_EQ(message_bits(m, 1024), 3u * 10u + 8u);
  EXPECT_EQ(message_bits(m, 1023), 3u * 10u + 8u);
  EXPECT_EQ(message_bits(m, 1025), 3u * 11u + 8u);
}

TEST(Network, MaxWordsEnforced) {
  Message m;
  m.tag = 1;
  m.words = kMaxWords + 1;
  const Graph g = graph::path_graph(2);
  Network net(g, {});
  LambdaProtocol p;
  p.on_begin = [&](Context& ctx) {
    if (ctx.self() == 0) ctx.send(1, m);
  };
  EXPECT_THROW(net.run(p), support::InvariantViolation);
}

}  // namespace
}  // namespace dhc::congest
