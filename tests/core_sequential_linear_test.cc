// Tests for the CRE linear-space oracle (core/sequential_linear.h):
// differential agreement with the exact backtracking solver and the rotation
// solver on small random graphs, a success-rate pin above the
// p = c·log n / n threshold, and the structural step identities.
#include "core/sequential_linear.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sequential.h"
#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

TEST(Cre, SolvesCompleteGraph) {
  support::Rng rng(1);
  const Graph g = graph::complete_graph(32);
  const auto r = cre_hamiltonian_cycle(g, rng);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_order(g, r.cycle).ok());
  EXPECT_EQ(r.stats.extensions, 31u);
}

TEST(Cre, TinyGraphFailsGracefully) {
  support::Rng rng(1);
  const Graph g(2, {{0, 1}});
  const auto r = cre_hamiltonian_cycle(g, rng);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.failure_reason.empty());
}

TEST(Cre, StarGraphFailsWithoutCrashing) {
  support::Rng rng(2);
  const auto r = cre_hamiltonian_cycle(graph::star_graph(16), rng);
  EXPECT_FALSE(r.success);
}

TEST(Cre, DeterministicGivenRngState) {
  const Graph g = graph::complete_graph(20);
  support::Rng a(42);
  support::Rng b(42);
  const auto ra = cre_hamiltonian_cycle(g, a);
  const auto rb = cre_hamiltonian_cycle(g, b);
  ASSERT_TRUE(ra.success);
  EXPECT_EQ(ra.cycle.order, rb.cycle.order);
  EXPECT_EQ(ra.stats.steps, rb.stats.steps);
  EXPECT_EQ(ra.stats.resamples, rb.stats.resamples);
}

TEST(Cre, StepBudgetOverrideIsRespected) {
  support::Rng rng(4);
  const Graph g = graph::complete_graph(64);
  CreConfig cfg;
  cfg.max_steps_override = 5;  // far too few to build a 64-cycle
  const auto r = cre_hamiltonian_cycle(g, rng, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_LE(r.stats.steps, 5u);
  EXPECT_NE(r.failure_reason.find("budget"), std::string::npos);
}

// Same regime as the rotation solver's sweep: G(n, p) with p = c·ln n / n at
// c = 6 succeeds on every (seed, n) cell, and the structural identities hold.
class CreOnGnp : public ::testing::TestWithParam<std::tuple<std::uint64_t, graph::NodeId>> {};

TEST_P(CreOnGnp, FindsVerifiedCycleWithStepIdentities) {
  const auto [seed, n] = GetParam();
  support::Rng graph_rng(seed);
  const double p = graph::edge_probability(n, /*c=*/6.0, /*delta=*/1.0);
  const Graph g = graph::gnp(n, p, graph_rng);
  support::Rng algo_rng(seed + 1000);
  const auto r = cre_hamiltonian_cycle(g, algo_rng);
  ASSERT_TRUE(r.success) << "n=" << n << " seed=" << seed << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_order(g, r.cycle).ok());
  // Every step is an extension or a rotation except the final closing draw.
  EXPECT_EQ(r.stats.extensions + r.stats.rotations + 1, r.stats.steps);
  EXPECT_EQ(r.stats.extensions, static_cast<std::uint64_t>(n) - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CreOnGnp,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values<graph::NodeId>(64, 256, 1024)));

TEST(Cre, AgreesWithExactOracleOnSmallRandomGraphs) {
  // Where the exact solver says "no cycle", cre must fail; where cre
  // succeeds, the cycle must verify against the input graph.
  support::Rng meta(7);
  for (int trial = 0; trial < 30; ++trial) {
    support::Rng graph_rng(meta.next_u64());
    const graph::NodeId n = 12;
    const Graph g = graph::gnp(n, 0.3, graph_rng);
    support::Rng algo_rng(meta.next_u64());
    const auto r = cre_hamiltonian_cycle(g, algo_rng);
    const auto exact = exact_hamiltonian_cycle(g);
    if (r.success) {
      EXPECT_TRUE(exact.has_value());
      EXPECT_TRUE(graph::verify_cycle_order(g, r.cycle).ok());
    }
    if (!exact.has_value()) {
      EXPECT_FALSE(r.success);
    }
  }
}

TEST(Cre, MatchesRotationSuccessAboveThreshold) {
  // Differential pin against the rotation solver: in the supercritical regime
  // (p = 6·ln n / n at n = 128, 20 fixed seeds) both randomized solvers
  // succeed on essentially every instance — the linear-space rewrite changes
  // the working set, not the algorithm's success profile.  The counts are
  // deterministic (fixed seeds); the floors leave slack for one marginal
  // instance per solver.
  const graph::NodeId n = 128;
  const double p = graph::edge_probability(n, /*c=*/6.0, /*delta=*/1.0);
  int cre_ok = 0;
  int rotation_ok = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    support::Rng graph_rng(900 + seed);
    const Graph g = graph::gnp(n, p, graph_rng);
    support::Rng cre_rng(1900 + seed);
    if (cre_hamiltonian_cycle(g, cre_rng).success) ++cre_ok;
    support::Rng rot_rng(1900 + seed);
    if (rotation_hamiltonian_cycle(g, rot_rng).success) ++rotation_ok;
  }
  EXPECT_GE(cre_ok, 19);
  EXPECT_GE(rotation_ok, 19);
  EXPECT_GE(cre_ok, rotation_ok);
}

}  // namespace
}  // namespace dhc::core
