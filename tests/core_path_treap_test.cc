// Tests for the implicit treap behind the sequential rotation solver,
// validated against a naive std::vector reference model.
#include "core/path_treap.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "support/rng.h"

namespace dhc::core {
namespace {

TEST(PathTreap, AppendAndOrder) {
  PathTreap t(10);
  EXPECT_EQ(t.size(), 0u);
  for (NodeId v : {3u, 1u, 4u, 0u}) t.append(v);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.to_vector(), (std::vector<NodeId>{3, 1, 4, 0}));
}

TEST(PathTreap, PositionsAndAt) {
  PathTreap t(10);
  for (NodeId v : {5u, 2u, 8u}) t.append(v);
  EXPECT_EQ(t.position(5), 1u);
  EXPECT_EQ(t.position(2), 2u);
  EXPECT_EQ(t.position(8), 3u);
  EXPECT_EQ(t.at(1), 5u);
  EXPECT_EQ(t.at(2), 2u);
  EXPECT_EQ(t.at(3), 8u);
}

TEST(PathTreap, ContainsAndDuplicateAppendRejected) {
  PathTreap t(5);
  t.append(2);
  EXPECT_TRUE(t.contains(2));
  EXPECT_FALSE(t.contains(3));
  EXPECT_THROW(t.append(2), std::invalid_argument);
  EXPECT_THROW(t.append(7), std::invalid_argument);
}

TEST(PathTreap, RotateSuffixMatchesDefinition) {
  // Path 0 1 2 3 4 5; rotate at j=2 -> 0 1 5 4 3 2 (suffix reversed).
  PathTreap t(6);
  for (NodeId v = 0; v < 6; ++v) t.append(v);
  t.rotate_suffix(2);
  EXPECT_EQ(t.to_vector(), (std::vector<NodeId>{0, 1, 5, 4, 3, 2}));
  EXPECT_EQ(t.at(6), 2u);  // new head
  EXPECT_EQ(t.position(5), 3u);
}

TEST(PathTreap, RotateAtEndIsNoop) {
  PathTreap t(4);
  for (NodeId v = 0; v < 4; ++v) t.append(v);
  t.rotate_suffix(4);
  EXPECT_EQ(t.to_vector(), (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(PathTreap, RotateWholePathReverses) {
  PathTreap t(4);
  for (NodeId v = 0; v < 4; ++v) t.append(v);
  t.rotate_suffix(1);  // suffix 2..4 reversed: 0 3 2 1
  EXPECT_EQ(t.to_vector(), (std::vector<NodeId>{0, 3, 2, 1}));
}

TEST(PathTreap, OutOfRangeQueriesThrow) {
  PathTreap t(4);
  t.append(0);
  EXPECT_THROW(t.at(0), std::invalid_argument);
  EXPECT_THROW(t.at(2), std::invalid_argument);
  EXPECT_THROW(t.position(1), std::invalid_argument);
  EXPECT_THROW(t.rotate_suffix(0), std::invalid_argument);
  EXPECT_THROW(t.rotate_suffix(2), std::invalid_argument);
}

// Randomized differential test against a vector reference model.
class TreapDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreapDifferential, MatchesNaiveModelUnderRandomOps) {
  support::Rng rng(GetParam());
  const NodeId capacity = 200;
  PathTreap treap(capacity, rng.next_u64());
  std::vector<NodeId> model;
  std::vector<bool> used(capacity, false);

  for (int op = 0; op < 600; ++op) {
    const bool can_append = model.size() < capacity;
    const bool do_append = model.size() < 2 || (can_append && rng.bernoulli(0.4));
    if (do_append) {
      NodeId v;
      do {
        v = static_cast<NodeId>(rng.below(capacity));
      } while (used[v]);
      used[v] = true;
      treap.append(v);
      model.push_back(v);
    } else {
      const auto j = static_cast<std::uint32_t>(1 + rng.below(model.size()));
      treap.rotate_suffix(j);
      std::reverse(model.begin() + j, model.end());
    }
    // Spot-check a few positions every iteration; full check periodically.
    const auto probe = static_cast<std::size_t>(rng.below(model.size()));
    ASSERT_EQ(treap.at(static_cast<std::uint32_t>(probe + 1)), model[probe]);
    ASSERT_EQ(treap.position(model[probe]), probe + 1);
    if (op % 100 == 99) {
      ASSERT_EQ(treap.to_vector(), model);
    }
  }
  EXPECT_EQ(treap.to_vector(), model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreapDifferential, ::testing::Range<std::uint64_t>(0, 10));

// Rotation-heavy differential test with *full* sequence verification after
// every operation.  The spot checks above probe single positions; this
// variant catches split/merge bookkeeping bugs that leave the tree shape
// self-consistent at the probed node but wrong elsewhere (e.g. a lazy-flip
// flag pushed down one subtree but not the other), and deliberately hits
// the boundary rotations j = 1 (maximal reverse: positions 2..size) and
// j = size (no-op).
class TreapRotationStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreapRotationStress, FullSequenceMatchesModelAfterEveryOp) {
  support::Rng rng(0x72ea9ULL ^ GetParam());
  const NodeId capacity = 64;
  PathTreap treap(capacity, rng.next_u64());
  std::vector<NodeId> model;

  // Build the full path first so every rotation acts on a fixed node set.
  std::vector<NodeId> order(capacity);
  for (NodeId v = 0; v < capacity; ++v) order[v] = v;
  rng.shuffle(std::span<NodeId>(order));
  for (const NodeId v : order) {
    treap.append(v);
    model.push_back(v);
  }

  for (int op = 0; op < 200; ++op) {
    std::uint32_t j;
    if (op % 10 == 0) {
      j = 1;  // maximal suffix reverse (position 1 stays fixed by the API)
    } else if (op % 10 == 5) {
      j = static_cast<std::uint32_t>(model.size());  // no-op boundary
    } else {
      j = static_cast<std::uint32_t>(1 + rng.below(model.size()));
    }
    treap.rotate_suffix(j);
    std::reverse(model.begin() + j, model.end());
    ASSERT_EQ(treap.to_vector(), model) << "op " << op << " j=" << j;
    ASSERT_EQ(treap.size(), model.size());
    // Positions must agree with the sequence, not just the sequence itself.
    const auto probe = static_cast<std::size_t>(rng.below(model.size()));
    ASSERT_EQ(treap.position(model[probe]), probe + 1) << "op " << op;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreapRotationStress, ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace dhc::core
