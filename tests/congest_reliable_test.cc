// Tests for the reliable-delivery overlay (congest/reliable.h): spec
// parsing, and the end-to-end exactly-once in-order delivery contract under
// lossy FaultPlans — a flood fuzz that checks every directed link's receive
// stream against the naive reference channel (the sequence 1..K), plus
// metrics identities and run-to-run determinism.
#include "congest/reliable.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "congest/fault_plan.h"
#include "congest/network.h"
#include "graph/generators.h"
#include "support/rng.h"

namespace dhc::congest {
namespace {

using graph::Graph;

// --- spec parsing ----------------------------------------------------------

TEST(RtoSpec, ParsesEveryForm) {
  const RtoSpec full = RtoSpec::parse("rto:4:2:16");
  EXPECT_EQ(full.initial, 4u);
  EXPECT_EQ(full.mult, 2u);
  EXPECT_EQ(full.max, 16u);

  // The "rto:" prefix is optional.
  const RtoSpec bare = RtoSpec::parse("4:2:16");
  EXPECT_EQ(bare.initial, 4u);
  EXPECT_EQ(bare.mult, 2u);
  EXPECT_EQ(bare.max, 16u);

  // Omitted multiplier defaults to 2; omitted cap to max(16, initial).
  const RtoSpec just_k = RtoSpec::parse("rto:6");
  EXPECT_EQ(just_k.initial, 6u);
  EXPECT_EQ(just_k.mult, 2u);
  EXPECT_EQ(just_k.max, 16u);

  const RtoSpec big_k = RtoSpec::parse("rto:40");
  EXPECT_EQ(big_k.max, 40u) << "cap must never undercut the timeout";

  const RtoSpec no_cap = RtoSpec::parse("rto:5:3");
  EXPECT_EQ(no_cap.initial, 5u);
  EXPECT_EQ(no_cap.mult, 3u);
  EXPECT_EQ(no_cap.max, 16u);
}

TEST(RtoSpec, DefaultMatchesTheDocumentedSpec) {
  // rto:4:2:16 — the tightest spurious-free timeout at unit delays (round
  // trip = 3).  Pinned because the solvers' skew tolerance depends on it.
  const RtoSpec def;
  EXPECT_EQ(def.to_string(), "rto:4:2:16");
}

TEST(RtoSpec, RoundTripsThroughToString) {
  for (const char* spec : {"rto:4:2:16", "rto:8:2:64", "rto:1:1:1", "3:4:100"}) {
    const RtoSpec parsed = RtoSpec::parse(spec);
    EXPECT_EQ(RtoSpec::parse(parsed.to_string()).to_string(), parsed.to_string()) << spec;
  }
}

TEST(RtoSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "rto", "rto:", "rto:0", "rto:x", "rto:4:0", "rto:4:x",
                          "rto:4:2:2", "rto:4:2:x", "rto:4:2:16:9", "4:2:16:9",
                          "rto:2000000000", "rto:4:2:2000000000"}) {
    EXPECT_THROW(RtoSpec::parse(bad), std::invalid_argument) << bad;
  }
}

TEST(ReliabilitySpec, ParsesAndRejects) {
  EXPECT_EQ(ReliabilitySpec::parse("none").kind, ReliabilitySpec::Kind::kNone);
  EXPECT_EQ(ReliabilitySpec::parse("ack").kind, ReliabilitySpec::Kind::kAck);
  EXPECT_FALSE(ReliabilitySpec::parse("none").active());
  EXPECT_TRUE(ReliabilitySpec::parse("ack").active());
  EXPECT_EQ(ReliabilitySpec::parse("ack").to_string(), "ack");
  EXPECT_EQ(ReliabilitySpec::parse("none").to_string(), "none");
  for (const char* bad : {"", "ACK", "yes", "ack:4", "retransmit"}) {
    EXPECT_THROW(ReliabilitySpec::parse(bad), std::invalid_argument) << bad;
  }
}

// --- end-to-end delivery contract ------------------------------------------

/// Every node sends the numbered messages 1..K to every neighbor, one per
/// round, then goes quiet.  Receivers journal each arrival per directed
/// link.  The reference channel is trivial: a reliable in-order link must
/// deliver exactly the sequence 1..K on every directed edge.
class FloodProtocol : public Protocol {
 public:
  explicit FloodProtocol(std::uint64_t k) : k_(k) {}

  void begin(Context& ctx) override {
    if (sent_.size() <= ctx.self()) sent_.resize(ctx.self() + 1, 0);
    ctx.wake_in(1);
  }

  void step(Context& ctx) override {
    for (const Message& m : ctx.inbox()) {
      received_[{m.from, m.to}].push_back(m.data[0]);
    }
    if (sent_.size() <= ctx.self()) sent_.resize(ctx.self() + 1, 0);
    if (sent_[ctx.self()] < k_) {
      const std::int64_t seq = static_cast<std::int64_t>(++sent_[ctx.self()]);
      for (const NodeId v : ctx.neighbors()) ctx.send(v, Message::make(1, {seq}));
      if (sent_[ctx.self()] < k_) ctx.wake_in(1);
    }
  }

  const std::map<std::pair<NodeId, NodeId>, std::vector<std::int64_t>>& received() const {
    return received_;
  }

 private:
  std::uint64_t k_;
  std::vector<std::uint64_t> sent_;
  std::map<std::pair<NodeId, NodeId>, std::vector<std::int64_t>> received_;
};

struct FloodRun {
  Metrics metrics;
  std::map<std::pair<NodeId, NodeId>, std::vector<std::int64_t>> received;
};

FloodRun run_flood(const Graph& g, std::uint64_t k, const DelaySpec& delay, double drop,
                   std::uint64_t fault_seed) {
  FaultPlan plan(delay, drop, {}, fault_seed, /*round_limit=*/200000);
  plan.set_reliability(ReliabilitySpec::parse("ack"), RtoSpec{});
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);
  FloodProtocol p(k);
  FloodRun out;
  out.metrics = net.run(p);
  out.received = p.received();
  return out;
}

void expect_every_link_got_one_through_k(const Graph& g, std::uint64_t k, const FloodRun& run) {
  std::uint64_t directed_edges = 0;
  for (NodeId u = 0; u < g.n(); ++u) {
    for (const NodeId v : g.neighbors(u)) {
      ++directed_edges;
      const auto it = run.received.find({u, v});
      ASSERT_NE(it, run.received.end()) << "link " << u << "->" << v << " delivered nothing";
      ASSERT_EQ(it->second.size(), k) << "link " << u << "->" << v;
      for (std::uint64_t i = 0; i < k; ++i) {
        EXPECT_EQ(it->second[i], static_cast<std::int64_t>(i + 1))
            << "link " << u << "->" << v << " position " << i;
      }
    }
  }
  EXPECT_FALSE(run.metrics.hit_round_limit);
  // The protocol's own sends — what payload_messages() isolates — are
  // exactly K per directed edge, whatever the overlay had to add on top.
  EXPECT_EQ(run.metrics.payload_messages(), k * directed_edges);
  EXPECT_EQ(run.metrics.messages,
            run.metrics.payload_messages() + run.metrics.retransmits + run.metrics.acks_sent);
}

TEST(ReliableOverlay, FloodFuzzDeliversInOrderExactlyOnceUnderDrops) {
  constexpr std::uint64_t kK = 8;
  support::Rng rng(4242);
  const Graph graphs[] = {graph::cycle_graph(12), graph::gnp(20, 0.25, rng)};
  bool any_retransmit = false;
  bool any_duplicate = false;
  for (const Graph& g : graphs) {
    for (const double drop : {0.05, 0.25, 0.4}) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const FloodRun run = run_flood(g, kK, {}, drop, seed);
        expect_every_link_got_one_through_k(g, kK, run);
        any_retransmit |= run.metrics.retransmits > 0;
        any_duplicate |= run.metrics.dup_suppressed > 0;
      }
    }
  }
  // Across 18 lossy runs the overlay must actually have worked for a living.
  EXPECT_TRUE(any_retransmit);
  EXPECT_TRUE(any_duplicate);
}

TEST(ReliableOverlay, SurvivesNonUnitAndHeterogeneousLatencies) {
  constexpr std::uint64_t kK = 6;
  const Graph g = graph::cycle_graph(10);
  for (const char* delay : {"fixed:3", "uniform:1:4"}) {
    const FloodRun run = run_flood(g, kK, DelaySpec::parse(delay), 0.2, 7);
    expect_every_link_got_one_through_k(g, kK, run);
  }
}

TEST(ReliableOverlay, OneWayTrafficForcesStandaloneAcks) {
  // Node 0 streams to node 1; node 1 never sends payload back, so every ack
  // must travel as a standalone transport message.
  const Graph g = graph::path_graph(2);
  FaultPlan plan({}, 0.3, {}, 11, /*round_limit=*/100000);
  plan.set_reliability(ReliabilitySpec::parse("ack"), RtoSpec{});
  NetworkConfig cfg;
  cfg.faults = &plan;
  Network net(g, cfg);

  constexpr std::int64_t kK = 6;
  std::vector<std::int64_t> arrivals;
  class OneWay : public Protocol {
   public:
    std::vector<std::int64_t>* arrivals = nullptr;
    std::int64_t sent = 0;
    void begin(Context& ctx) override {
      if (ctx.self() == 0) ctx.wake_in(1);
    }
    void step(Context& ctx) override {
      for (const Message& m : ctx.inbox()) arrivals->push_back(m.data[0]);
      if (ctx.self() == 0 && sent < kK) {
        ctx.send(1, Message::make(1, {++sent}));
        if (sent < kK) ctx.wake_in(1);
      }
    }
  } p;
  p.arrivals = &arrivals;
  const Metrics metrics = net.run(p);

  ASSERT_EQ(arrivals.size(), static_cast<std::size_t>(kK));
  for (std::int64_t i = 0; i < kK; ++i) EXPECT_EQ(arrivals[i], i + 1);
  EXPECT_GT(metrics.acks_sent, 0u);
  EXPECT_GT(metrics.retransmits, 0u) << "drop 0.3 over 6 sends should lose something (seed 11)";
  EXPECT_EQ(metrics.payload_messages(), static_cast<std::uint64_t>(kK));
}

TEST(ReliableOverlay, LosslessPlanNeverEngagesTheOverlay) {
  // reliability=ack with drop 0 and no crashes must be bitwise the plain
  // async run: the overlay is bypassed entirely, so no overlay counter can
  // move and no ack traffic can exist.
  const Graph g = graph::cycle_graph(8);
  const std::uint64_t k = 4;

  FaultPlan ack_plan({}, 0.0, {}, 5);
  ack_plan.set_reliability(ReliabilitySpec::parse("ack"), RtoSpec{});
  NetworkConfig cfg;
  cfg.faults = &ack_plan;
  Network ack_net(g, cfg);
  FloodProtocol ack_p(k);
  const Metrics with_ack = ack_net.run(ack_p);

  const FaultPlan none_plan({}, 0.0, {}, 5);
  cfg.faults = &none_plan;
  Network none_net(g, cfg);
  FloodProtocol none_p(k);
  const Metrics without = none_net.run(none_p);

  EXPECT_EQ(with_ack.retransmits, 0u);
  EXPECT_EQ(with_ack.dup_suppressed, 0u);
  EXPECT_EQ(with_ack.acks_sent, 0u);
  EXPECT_EQ(with_ack.messages, without.messages);
  EXPECT_EQ(with_ack.rounds, without.rounds);
  EXPECT_EQ(with_ack.bits, without.bits);
  EXPECT_EQ(ack_p.received(), none_p.received());
}

TEST(ReliableOverlay, ReplaysBitwiseIdenticallyAcrossRuns) {
  const Graph g = graph::cycle_graph(14);
  const FloodRun a = run_flood(g, 8, {}, 0.25, 99);
  const FloodRun b = run_flood(g, 8, {}, 0.25, 99);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.retransmits, b.metrics.retransmits);
  EXPECT_EQ(a.metrics.dup_suppressed, b.metrics.dup_suppressed);
  EXPECT_EQ(a.metrics.acks_sent, b.metrics.acks_sent);
  EXPECT_EQ(a.metrics.dropped_messages, b.metrics.dropped_messages);
  EXPECT_EQ(a.received, b.received);
}

}  // namespace
}  // namespace dhc::congest
