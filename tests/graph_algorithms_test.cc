// Tests for BFS / diameter / connectivity, including the random-graph
// diameter behaviour (Chung–Lu) that the paper's round accounting uses.
#include "graph/algorithms.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace dhc::graph {
namespace {

TEST(Bfs, PathGraphDistances) {
  const Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  const Graph g(4, {{0, 1}, {2, 3}});
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, SourceOutOfRangeThrows) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(bfs_distances(g, 5), std::invalid_argument);
}

TEST(Bfs, CycleDistances) {
  const Graph g = cycle_graph(8);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
  EXPECT_EQ(d[3], 3u);
}

TEST(Eccentricity, CenterVsLeafOfPath) {
  const Graph g = path_graph(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(ExactDiameter, KnownGraphs) {
  EXPECT_EQ(exact_diameter(path_graph(10)), 9u);
  EXPECT_EQ(exact_diameter(cycle_graph(10)), 5u);
  EXPECT_EQ(exact_diameter(cycle_graph(11)), 5u);
  EXPECT_EQ(exact_diameter(complete_graph(10)), 1u);
  EXPECT_EQ(exact_diameter(star_graph(10)), 2u);
  EXPECT_EQ(exact_diameter(petersen_graph()), 2u);
}

TEST(ExactDiameter, TrivialGraphs) {
  EXPECT_EQ(exact_diameter(Graph(0, {})), 0u);
  EXPECT_EQ(exact_diameter(Graph(1, {})), 0u);
}

TEST(ExactDiameter, DisconnectedThrows) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(exact_diameter(g), std::invalid_argument);
}

TEST(EstimatedDiameter, MatchesExactOnStructuredGraphs) {
  support::Rng rng(3);
  for (const Graph& g : {path_graph(30), cycle_graph(24), star_graph(12)}) {
    EXPECT_EQ(estimated_diameter(g, rng, 4), exact_diameter(g));
  }
}

TEST(EstimatedDiameter, NeverExceedsExact) {
  support::Rng rng(4);
  support::Rng grng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = gnp(200, 0.05, grng);
    if (!is_connected(g)) continue;
    EXPECT_LE(estimated_diameter(g, rng, 4), exact_diameter(g));
  }
}

TEST(RandomGraphDiameter, LogarithmicForDenseRandomGraphs) {
  // [5] (Chung–Lu): diameter of G(n, c ln n / n) is Θ(ln n / ln ln n);
  // for n = 1024, ln n / ln ln n ≈ 3.6 — the diameter must be tiny.
  support::Rng rng(6);
  const NodeId n = 1024;
  const Graph g = gnp(n, edge_probability(n, 4.0, 1.0), rng);
  ASSERT_TRUE(is_connected(g));
  const auto diam = exact_diameter(g);
  EXPECT_GE(diam, 2u);
  EXPECT_LE(diam, 8u);
}

TEST(Connectivity, BasicCases) {
  EXPECT_TRUE(is_connected(Graph(0, {})));
  EXPECT_TRUE(is_connected(Graph(1, {})));
  EXPECT_FALSE(is_connected(Graph(2, {})));
  EXPECT_TRUE(is_connected(path_graph(5)));
  EXPECT_FALSE(is_connected(Graph(4, {{0, 1}, {2, 3}})));
}

TEST(Components, LabelsAndCount) {
  const Graph g(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto comp = connected_components(g);
  EXPECT_EQ(comp.count, 3u);
  EXPECT_EQ(comp.label[0], comp.label[1]);
  EXPECT_EQ(comp.label[1], comp.label[2]);
  EXPECT_EQ(comp.label[3], comp.label[4]);
  EXPECT_NE(comp.label[0], comp.label[3]);
  EXPECT_NE(comp.label[3], comp.label[5]);
}

TEST(Components, SingleComponent) {
  const auto comp = connected_components(cycle_graph(9));
  EXPECT_EQ(comp.count, 1u);
}

}  // namespace
}  // namespace dhc::graph
