// Tests for tools/lint — the determinism linter (DESIGN.md §11).
//
// The fixture files under tests/lint_fixtures/ are the rule-by-rule
// contract: every *_bad.cc must trip exactly its own rule, every
// *_annotated.cc must scan clean because its inline suppressions carry
// written reasons, and clean_negatives.cc (a file of near-misses) must
// produce zero findings.  The inline-source cases pin the scanner
// mechanics: comment/string stripping, suppression grammar, allowlist
// parsing, and step-path classification.
#include "dhc_lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using dhc::lint::FileReport;
using dhc::lint::Options;
using dhc::lint::scan_source;

std::string fixture_path(const std::string& name) {
  return std::string(DHC_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Fixtures live outside src/, so step-path classification keys on the
/// directory name instead — every fixture is treated as step-path code,
/// which is the strictest regime (R2 hard, R5 active).
Options fixture_options() {
  Options options;
  options.step_path_markers = {"lint_fixtures"};
  return options;
}

FileReport scan_fixture(const std::string& name) {
  const std::string path = fixture_path(name);
  return scan_source(path, read_file(path), fixture_options());
}

TEST(DhcLintFixtures, EveryBadFixtureTripsExactlyItsRule) {
  const struct {
    const char* file;
    const char* rule;
    int min_findings;
  } kCases[] = {
      {"r1_thread_local_bad.cc", "R1", 1},
      {"r2_unordered_bad.cc", "R2", 1},
      {"r3_entropy_bad.cc", "R3", 6},  // srand, rand, time, random_device, 2 clocks
      {"r4_pointer_key_bad.cc", "R4", 2},  // pointer-keyed map and set
      {"r5_bare_static_bad.cc", "R5", 1},
  };
  for (const auto& c : kCases) {
    const FileReport report = scan_fixture(c.file);
    EXPECT_GE(report.unsuppressed, c.min_findings) << c.file;
    ASSERT_FALSE(report.findings.empty()) << c.file;
    for (const auto& finding : report.findings) {
      EXPECT_EQ(finding.rule, c.rule) << c.file << ":" << finding.line;
      EXPECT_FALSE(finding.suppressed) << c.file << ":" << finding.line;
    }
  }
}

TEST(DhcLintFixtures, EveryAnnotatedFixtureScansClean) {
  for (const char* file :
       {"r1_thread_local_annotated.cc", "r2_unordered_annotated.cc", "r3_entropy_annotated.cc",
        "r4_pointer_key_annotated.cc", "r5_bare_static_annotated.cc"}) {
    const FileReport report = scan_fixture(file);
    EXPECT_EQ(report.unsuppressed, 0) << file;
    ASSERT_FALSE(report.findings.empty()) << file << " should still record suppressed findings";
    for (const auto& finding : report.findings) {
      EXPECT_TRUE(finding.suppressed) << file << ":" << finding.line;
      EXPECT_FALSE(finding.suppress_reason.empty()) << file << ":" << finding.line;
    }
    for (const auto& ann : report.annotations) {
      EXPECT_TRUE(ann.used) << file << ":" << ann.line << " stale annotation";
    }
  }
}

TEST(DhcLintFixtures, CleanNegativesProduceZeroFindings) {
  const FileReport report = scan_fixture("clean_negatives.cc");
  for (const auto& finding : report.findings) {
    ADD_FAILURE() << "clean_negatives.cc:" << finding.line << " [" << finding.rule << "] "
                  << finding.message;
  }
}

TEST(DhcLintFixtures, MultiRuleSameLineSuppression) {
  // r2_unordered_annotated.cc declares `static thread_local unordered_set`,
  // which trips R1, R2, and R5 at once; the same-line allow(R1,R5) plus the
  // line-above allow(R2) must cover all three.
  const FileReport report = scan_fixture("r2_unordered_annotated.cc");
  std::vector<std::string> rules;
  for (const auto& finding : report.findings) rules.push_back(finding.rule);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "R1"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "R2"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "R5"), rules.end());
  EXPECT_EQ(report.unsuppressed, 0);
}

TEST(DhcLintScanner, CommentsAndStringsNeverTrip) {
  const char* text =
      "// thread_local unordered_map rand( time( system_clock\n"
      "/* std::random_device high_resolution_clock */\n"
      "const char* s = \"thread_local rand( \";\n"
      "const char* r = R\"(std::unordered_set time( )\";\n";
  const FileReport report = scan_source("src/core/x.cc", text, Options{});
  EXPECT_TRUE(report.findings.empty());
}

TEST(DhcLintScanner, AllowWithoutReasonDoesNotSuppress) {
  const char* text =
      "// dhc-lint: allow(R1)\n"
      "thread_local int scratch = 0;\n";
  const FileReport report = scan_source("src/core/x.cc", text, Options{});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_FALSE(report.findings[0].suppressed);
  EXPECT_EQ(report.unsuppressed, 1);
}

TEST(DhcLintScanner, AnnotationOnlyCoversAdjacentLine) {
  const char* text =
      "// dhc-lint: allow(R1) -- only reaches the next line\n"
      "int pad = 0;\n"
      "thread_local int scratch = 0;\n";
  const FileReport report = scan_source("src/core/x.cc", text, Options{});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_FALSE(report.findings[0].suppressed);
}

TEST(DhcLintScanner, StepPathControlsR5AndR2Severity) {
  const char* text = "int step() { static int calls = 0; return ++calls; }\n";
  EXPECT_EQ(scan_source("src/congest/net.cc", text, Options{}).unsuppressed, 1);
  EXPECT_EQ(scan_source("src/graph/gen.cc", text, Options{}).unsuppressed, 0)
      << "R5 is a step-path rule";
  const char* unordered = "std::unordered_set<int> seen;\n";
  const FileReport on = scan_source("src/core/a.cc", unordered, Options{});
  const FileReport off = scan_source("src/support/a.cc", unordered, Options{});
  ASSERT_EQ(on.findings.size(), 1u);
  ASSERT_EQ(off.findings.size(), 1u);
  EXPECT_NE(on.findings[0].message, off.findings[0].message)
      << "step-path R2 should demand conversion, elsewhere an audit rationale";
}

TEST(DhcLintScanner, StaticFunctionsAndConstantsPass) {
  const char* text =
      "struct S { static S parse(const std::string& spec); };\n"
      "static constexpr int kSlots = 1024;\n"
      "static const char* kName = \"x\";\n"
      "static std::vector<int> make_table() { return {}; }\n";
  const FileReport report = scan_source("src/congest/net.cc", text, Options{});
  EXPECT_TRUE(report.findings.empty());
}

TEST(DhcLintScanner, PointerValuesPassPointerKeysTrip) {
  Options options;
  EXPECT_EQ(scan_source("src/core/a.cc", "std::map<int, Node*> by_id;\n", options).unsuppressed, 0);
  EXPECT_EQ(scan_source("src/core/a.cc", "std::map<const Node*, int> rank;\n", options).unsuppressed,
            1);
  EXPECT_EQ(scan_source("src/core/a.cc", "std::set<Node*> live;\n", options).unsuppressed, 1);
  // Nested template in the key position, pointer only in the value: fine.
  EXPECT_EQ(scan_source("src/core/a.cc", "std::map<std::pair<int, int>, Node*> m;\n", options)
                .unsuppressed,
            0);
}

TEST(DhcLintScanner, SteadyClockAndNearMissIdentifiersPass) {
  const char* text =
      "auto t0 = std::chrono::steady_clock::now();\n"
      "std::uint64_t rand_state = 1;\n"
      "double wall_time(int x);\n"
      "auto dt = t0.time_since_epoch();\n";
  EXPECT_TRUE(scan_source("src/runner/bench.cc", text, Options{}).findings.empty());
}

TEST(DhcLintAllowlist, ParsesEntriesAndRejectsMalformedOnes) {
  const char* text =
      "# comment\n"
      "\n"
      "R2 src/graph/generators.cc -- membership-only rejection filter\n"
      "R3 bench/ -- wall-clock harness\n"
      "R2 missing-reason\n"
      "R9 also-missing --\n";
  std::vector<std::string> errors;
  const auto entries = dhc::lint::parse_allowlist(text, &errors);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "R2");
  EXPECT_EQ(entries[0].path_substring, "src/graph/generators.cc");
  EXPECT_EQ(entries[0].reason, "membership-only rejection filter");
  EXPECT_EQ(errors.size(), 2u);
}

TEST(DhcLintAllowlist, FileLevelEntriesSuppressByPathSubstring) {
  Options options;
  options.allowlist.push_back({"R2", "graph/generators", "membership-only", false});
  const char* text = "std::unordered_set<std::uint64_t> seen;\n";
  const FileReport hit = scan_source("src/graph/generators.cc", text, options);
  EXPECT_EQ(hit.unsuppressed, 0);
  EXPECT_TRUE(hit.findings[0].suppressed);
  const FileReport miss = scan_source("src/graph/other.cc", text, options);
  EXPECT_EQ(miss.unsuppressed, 1);
}

TEST(DhcLintRunner, EndToEndOverFixtureDirectory) {
  // The full directory contains the five bad fixtures: exit code 1 and one
  // diagnostic line per unsuppressed finding.
  std::ostringstream out;
  const int rc = dhc::lint::run_lint({std::string(DHC_LINT_FIXTURE_DIR)}, fixture_options(), out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("[R1]"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("[R5]"), std::string::npos) << out.str();

  // The annotated + clean fixtures alone scan green.
  std::ostringstream clean_out;
  const int clean_rc = dhc::lint::run_lint(
      {fixture_path("r1_thread_local_annotated.cc"), fixture_path("r2_unordered_annotated.cc"),
       fixture_path("r3_entropy_annotated.cc"), fixture_path("r4_pointer_key_annotated.cc"),
       fixture_path("r5_bare_static_annotated.cc"), fixture_path("clean_negatives.cc")},
      fixture_options(), clean_out);
  EXPECT_EQ(clean_rc, 0) << clean_out.str();
}

TEST(DhcLintRunner, StaleAnnotationIsReportedButNotFatal) {
  const char* text = "// dhc-lint: allow(R1) -- nothing here trips R1\nint x = 0;\n";
  const FileReport report = scan_source("src/core/x.cc", text, Options{});
  ASSERT_EQ(report.annotations.size(), 1u);
  EXPECT_FALSE(report.annotations[0].used);
  EXPECT_EQ(report.unsuppressed, 0);
}

}  // namespace
