// Tests for Turau's O(log n)-time protocol (arXiv:1805.06728, DESIGN.md
// §2.4): verified Hamiltonian cycles on dense G(n,p), logarithmic merge
// depth, determinism, and graceful failure on hostile inputs.
#include "core/turau.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/hamiltonian.h"

namespace dhc::core {
namespace {

using graph::Graph;

Graph dense_gnp(graph::NodeId n, double c, double delta, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, c, delta), rng);
}

TEST(Turau, SolvesCompleteGraph) {
  const Graph g = graph::complete_graph(24);
  const auto r = run_turau(g, /*seed=*/1);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

TEST(Turau, SolvesTriangle) {
  const Graph g = graph::cycle_graph(3);
  const auto r = run_turau(g, 2);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

TEST(Turau, TinyGraphFails) {
  const Graph g(2, {{0, 1}});
  EXPECT_FALSE(run_turau(g, 1).success);
}

TEST(Turau, DisconnectedGraphFailsGracefully) {
  const Graph g(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
  const auto r = run_turau(g, 4);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);  // aborts, doesn't spin
  EXPECT_NE(r.failure_reason.find("disconnected"), std::string::npos);
}

TEST(Turau, StarGraphFailsGracefully) {
  const auto r = run_turau(graph::star_graph(12), 3);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
}

TEST(Turau, PathGraphCannotClose) {
  // Connected but not Hamiltonian: the closing stage must exhaust its
  // rotation budget instead of hanging.
  const auto r = run_turau(graph::path_graph(16), 5);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
}

TEST(Turau, DeterministicAcrossRuns) {
  const Graph g = dense_gnp(192, 2.5, 0.5, 11);
  const auto a = run_turau(g, 42);
  const auto b = run_turau(g, 42);
  ASSERT_TRUE(a.success) << a.failure_reason;
  ASSERT_TRUE(b.success);
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.metrics.messages, b.metrics.messages);
  EXPECT_EQ(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Turau, DifferentSeedsGiveDifferentCycles) {
  const Graph g = graph::complete_graph(32);
  const auto a = run_turau(g, 1);
  const auto b = run_turau(g, 2);
  ASSERT_TRUE(a.success);
  ASSERT_TRUE(b.success);
  EXPECT_NE(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Turau, MergeDepthIsLogarithmic) {
  // The headline property: the number of merge levels (the quantity Turau's
  // O(log n) bound is about — see DESIGN.md §2.4 on what the relays cost in
  // strict CONGEST) stays within a small multiple of log2 n.
  const Graph g = dense_gnp(512, 2.5, 0.5, 7);
  const auto r = run_turau(g, 19);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.stat("initial_paths"), 1.0);
  EXPECT_GE(r.stat("merge_levels"), std::log2(r.stat("initial_paths")));
  EXPECT_LE(r.stat("merge_levels"), 8.0 * std::log2(512.0));
  ASSERT_FALSE(r.series.at("paths_per_level").empty());
  EXPECT_EQ(r.series.at("paths_per_level").back(), 1.0);
}

TEST(Turau, MemoryStaysLinearInDegree) {
  // Fully-distributed claim: peak node memory is the setup scaffolding's
  // O(deg) plus the O(log n) edge sample and constant path state — never
  // anything global.
  const Graph g = dense_gnp(512, 2.5, 0.5, 13);
  const auto r = run_turau(g, 23);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const auto max_mem = static_cast<std::size_t>(r.metrics.max_node_peak_memory());
  EXPECT_LE(max_mem, g.max_degree() + 8 * static_cast<std::size_t>(std::log2(512.0)) + 16);
}

// The acceptance regime of the issue: p = 2.5 ln n / sqrt n (well above the
// connectivity threshold), every seed must produce a verified cycle.
class TurauOnGnp : public ::testing::TestWithParam<std::tuple<std::uint64_t, graph::NodeId>> {};

TEST_P(TurauOnGnp, FindsVerifiedCycle) {
  const auto [seed, n] = GetParam();
  const Graph g = dense_gnp(n, 2.5, 0.5, seed);
  const auto r = run_turau(g, seed * 31 + 7);
  ASSERT_TRUE(r.success) << "n=" << n << " seed=" << seed << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TurauOnGnp,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values<graph::NodeId>(64, 128, 256, 512)));

}  // namespace
}  // namespace dhc::core
