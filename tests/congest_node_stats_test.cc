// --node_stats mode equivalence: full / streaming / off must agree on every
// headline counter (rounds, messages, bits, barriers, phase marks) and the
// streaming summaries must match the full-mode exact digests within the
// sketch's published error bound.
#include <gtest/gtest.h>

#include <cmath>

#include "congest/metrics.h"
#include "core/turau.h"
#include "graph/generators.h"
#include "support/quantile_sketch.h"

namespace dhc::congest {
namespace {

graph::Graph instance(graph::NodeId n, std::uint64_t seed) {
  // Dense enough (delta = 0.5) that Turau solves every pinned seed.
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, 3.0, 0.5), rng);
}

core::Result run_with_mode(const graph::Graph& g, NodeStatsMode mode) {
  core::TurauConfig cfg;
  cfg.node_stats = mode;
  return core::run_turau(g, /*seed=*/11, cfg);
}

TEST(NodeStats, HeadlineCountersIdenticalAcrossModes) {
  const graph::Graph g = instance(192, 501);
  const auto full = run_with_mode(g, NodeStatsMode::kFull);
  const auto streaming = run_with_mode(g, NodeStatsMode::kStreaming);
  const auto off = run_with_mode(g, NodeStatsMode::kOff);
  ASSERT_TRUE(full.success) << full.failure_reason;

  for (const auto* r : {&streaming, &off}) {
    EXPECT_EQ(r->success, full.success);
    EXPECT_EQ(r->metrics.rounds, full.metrics.rounds);
    EXPECT_EQ(r->metrics.messages, full.metrics.messages);
    EXPECT_EQ(r->metrics.bits, full.metrics.bits);
    EXPECT_EQ(r->metrics.barrier_count, full.metrics.barrier_count);
    EXPECT_EQ(r->metrics.phase_marks, full.metrics.phase_marks);
  }
}

TEST(NodeStats, StreamingSummariesMatchFullWithinSketchBound) {
  const graph::Graph g = instance(192, 502);
  const auto full = run_with_mode(g, NodeStatsMode::kFull);
  const auto streaming = run_with_mode(g, NodeStatsMode::kStreaming);
  ASSERT_TRUE(full.success) << full.failure_reason;

  const auto check = [](const NodeStatSummary& exact, const NodeStatSummary& sketch) {
    // count/sum/max are tracked exactly on the side in streaming mode.
    EXPECT_EQ(sketch.count, exact.count);
    EXPECT_DOUBLE_EQ(sketch.sum, exact.sum);
    EXPECT_DOUBLE_EQ(sketch.max, exact.max);
    const double tol = support::QuantileSketch::relative_error();
    // Quantiles: exact below the linear cutoff, within relative_error above.
    for (const auto& [e, s] : {std::pair{exact.p50, sketch.p50},
                              std::pair{exact.p95, sketch.p95},
                              std::pair{exact.p99, sketch.p99}}) {
      if (e < static_cast<double>(support::QuantileSketch::kLinearCutoff)) {
        EXPECT_DOUBLE_EQ(s, e);
      } else {
        EXPECT_NEAR(s, e, e * tol);
      }
    }
  };
  check(full.metrics.sent_summary, streaming.metrics.sent_summary);
  check(full.metrics.peak_memory_summary, streaming.metrics.peak_memory_summary);
  check(full.metrics.compute_summary, streaming.metrics.compute_summary);

  // Streaming intentionally drops the receiver-side distribution.
  EXPECT_EQ(streaming.metrics.received_summary.count, 0u);
  EXPECT_TRUE(streaming.metrics.node_messages_sent.empty());
  EXPECT_TRUE(streaming.metrics.node_messages_received.empty());
}

TEST(NodeStats, StreamingMaxMatchesFullMax) {
  const graph::Graph g = instance(128, 503);
  const auto full = run_with_mode(g, NodeStatsMode::kFull);
  const auto streaming = run_with_mode(g, NodeStatsMode::kStreaming);
  EXPECT_EQ(streaming.metrics.max_node_messages_sent(), full.metrics.max_node_messages_sent());
  EXPECT_EQ(streaming.metrics.max_node_peak_memory(), full.metrics.max_node_peak_memory());
  EXPECT_EQ(streaming.metrics.max_node_compute(), full.metrics.max_node_compute());
}

TEST(NodeStats, OffModeKeepsNoPerNodeState) {
  const graph::Graph g = instance(128, 504);
  const auto off = run_with_mode(g, NodeStatsMode::kOff);
  EXPECT_TRUE(off.metrics.node_messages_sent.empty());
  EXPECT_TRUE(off.metrics.node_sent32.empty());
  EXPECT_EQ(off.metrics.sent_summary.count, 0u);
  EXPECT_EQ(off.metrics.node_stats_mode, NodeStatsMode::kOff);
}

TEST(NodeStats, StreamingIsShardInvariant) {
  // The compact accumulators are indexed by node id, so shard count must not
  // change a single per-node total.
  const graph::Graph g = instance(160, 505);
  core::TurauConfig cfg;
  cfg.node_stats = NodeStatsMode::kStreaming;
  cfg.shards = 1;
  const auto one = core::run_turau(g, 13, cfg);
  cfg.shards = 4;
  const auto four = core::run_turau(g, 13, cfg);
  EXPECT_EQ(one.metrics.node_sent32, four.metrics.node_sent32);
  EXPECT_EQ(one.metrics.node_mem_peak32, four.metrics.node_mem_peak32);
  EXPECT_EQ(one.metrics.node_compute32, four.metrics.node_compute32);
  EXPECT_EQ(one.metrics.rounds, four.metrics.rounds);
  EXPECT_EQ(one.metrics.messages, four.metrics.messages);
}

}  // namespace
}  // namespace dhc::congest
