// Paired-graph regression test: the DESIGN.md §3 guarantee that trials
// differing only in Algorithm (or merge strategy / machine count) receive
// bitwise-identical generated graphs for the same base seed — what makes
// every head-to-head sweep a paired comparison.  Pinned against the actual
// generated instances, not just the derived seeds.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace dhc::runner {
namespace {

Scenario three_way() {
  Scenario s;
  s.algos = {Algorithm::kDhc1, Algorithm::kDhc2, Algorithm::kTurau};
  s.sizes = {32, 48};
  // δ = 1 keeps p = c·ln n / n well below 1 at these sizes; δ = 0.5 would
  // clamp p to 1 and make every instance the (seed-independent) clique.
  s.deltas = {1.0};
  s.cs = {2.5};
  s.seeds = 3;
  s.base_seed = 7;
  return s;
}

TEST(Pairing, AlgorithmsShareIdenticalInstances) {
  const auto trials = expand(three_way());
  // Group by instance parameters; every group must span all three
  // algorithms and agree on the generated graph edge-for-edge.
  std::map<std::tuple<graph::NodeId, std::uint64_t>, std::vector<const TrialConfig*>> groups;
  for (const auto& t : trials) groups[{t.n, t.trial_index}].push_back(&t);
  ASSERT_EQ(groups.size(), 2u * 3u);  // 2 sizes × 3 trial indices
  for (const auto& [key, members] : groups) {
    ASSERT_EQ(members.size(), 3u) << "n=" << std::get<0>(key);
    const auto reference = make_trial_instance(*members[0]).edges();
    for (const auto* t : members) {
      EXPECT_EQ(t->graph_seed, members[0]->graph_seed);
      // Solver randomness stays per-cell even though the instance is shared.
      if (t != members[0]) {
        EXPECT_NE(t->algo_seed, members[0]->algo_seed);
      }
      const auto edges = make_trial_instance(*t).edges();
      EXPECT_EQ(edges, reference)
          << to_string(t->algo) << " got a different instance than "
          << to_string(members[0]->algo) << " at n=" << t->n << " trial " << t->trial_index;
    }
  }
}

TEST(Pairing, MergeStrategyAndMachineCountDoNotPerturbInstances) {
  Scenario s;
  s.algos = {Algorithm::kDhc2, Algorithm::kDhc2KMachine};
  s.merges = {core::MergeStrategy::kMinForward, core::MergeStrategy::kFullQueue};
  s.machines = {4, 8};
  s.sizes = {32};
  s.deltas = {1.0};
  s.cs = {2.5};
  s.seeds = 2;
  const auto trials = expand(s);
  std::map<std::uint64_t, std::vector<const TrialConfig*>> by_trial;
  for (const auto& t : trials) by_trial[t.trial_index].push_back(&t);
  for (const auto& [index, members] : by_trial) {
    const auto reference = make_trial_instance(*members[0]).edges();
    for (const auto* t : members) {
      EXPECT_EQ(make_trial_instance(*t).edges(), reference)
          << "trial " << index << " cell " << t->config_index;
    }
  }
}

TEST(Pairing, PowerlawFamilyPairsInstancesToo) {
  Scenario s = three_way();
  s.family = GraphFamily::kPowerlaw;
  const auto trials = expand(s);
  std::map<std::tuple<graph::NodeId, std::uint64_t>, std::vector<const TrialConfig*>> groups;
  for (const auto& t : trials) groups[{t.n, t.trial_index}].push_back(&t);
  ASSERT_EQ(groups.size(), 2u * 3u);
  for (const auto& [key, members] : groups) {
    ASSERT_EQ(members.size(), 3u);
    const auto reference = make_trial_instance(*members[0]);
    EXPECT_GT(reference.m(), 0u) << "powerlaw instance came out empty at n=" << std::get<0>(key);
    const auto reference_edges = reference.edges();
    for (const auto* t : members) {
      EXPECT_EQ(make_trial_instance(*t).edges(), reference_edges)
          << to_string(t->algo) << " got a different powerlaw instance at n=" << t->n
          << " trial " << t->trial_index;
    }
  }
  // Different family, same everything else → different instances (the family
  // is folded into the graph seed, so cross-family sweeps are not aliased).
  const auto gnp_trials = expand(three_way());
  EXPECT_NE(trials[0].graph_seed, gnp_trials[0].graph_seed);
}

TEST(Pairing, DifferentBaseSeedsBreakThePairingOnPurpose) {
  Scenario a = three_way();
  Scenario b = three_way();
  b.base_seed = a.base_seed + 1;
  const auto ta = expand(a);
  const auto tb = expand(b);
  ASSERT_EQ(ta.size(), tb.size());
  EXPECT_NE(make_trial_instance(ta[0]).edges(), make_trial_instance(tb[0]).edges());
}

}  // namespace
}  // namespace dhc::runner
