// End-to-end tests for DHC1 (paper Algorithm 2 / Theorem 1): partitioned
// rotation plus the hypernode Phase 2 with port tracking.
#include "core/dhc1.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace dhc::core {
namespace {

using graph::Graph;

Graph dhc1_gnp(graph::NodeId n, double c, std::uint64_t seed) {
  support::Rng rng(seed);
  return graph::gnp(n, graph::edge_probability(n, c, 0.5), rng);
}

TEST(Dhc1, EndToEndOnPaperRegime) {
  // p = c·ln n / √n with n = 1024: K = 32 hypernodes over 32-node partitions.
  const Graph g = dhc1_gnp(1024, 2.5, 1);
  const auto r = run_dhc1(g, 7);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("num_colors"), 32.0);
  EXPECT_EQ(r.stat("live_hypernodes"), 32.0);
}

TEST(Dhc1, SmallColorCountOverride) {
  // K = 8 hypernodes: each port has ≈ 2·(K−1)·p ≈ 8 usable edges, the edge
  // of the hypernode rotation's working regime (restarts cover the rest).
  support::Rng rng(2);
  const Graph g = graph::gnp(320, 0.6, rng);
  Dhc1Config cfg;
  cfg.num_colors_override = 8;
  const auto r = run_dhc1(g, 11, cfg);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
  EXPECT_EQ(r.stat("live_hypernodes"), 8.0);
  // K-1 extensions plus the closing draw at minimum; rejects and rotations
  // add more steps.
  EXPECT_GE(r.stat("hyper_steps"), 8.0);
}

TEST(Dhc1, PortRejectsAreCountedAndBounded) {
  // The port-orientation clarification (DESIGN.md §2.1): roughly half of
  // rotation attempts land on the wrong port.  The counter must exist and
  // stay within a small multiple of the accepted steps.
  const Graph g = dhc1_gnp(1024, 2.5, 3);
  const auto r = run_dhc1(g, 13);
  ASSERT_TRUE(r.success) << r.failure_reason;
  const double steps = r.stat("hyper_steps");
  const double rejects = r.stat("wrong_port_rejects");
  EXPECT_GE(steps, 1.0);
  EXPECT_LE(rejects, steps);  // every reject consumed a step
}

TEST(Dhc1, DeterministicAcrossRuns) {
  const Graph g = dhc1_gnp(512, 2.5, 4);
  const auto a = run_dhc1(g, 17);
  const auto b = run_dhc1(g, 17);
  ASSERT_TRUE(a.success) << a.failure_reason;
  EXPECT_EQ(a.metrics.rounds, b.metrics.rounds);
  EXPECT_EQ(a.cycle.neighbors_of, b.cycle.neighbors_of);
}

TEST(Dhc1, TinyGraphRejected) {
  const Graph g = graph::complete_graph(8);
  const auto r = run_dhc1(g, 1);
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("12 nodes"), std::string::npos);
}

TEST(Dhc1, Phase1FailureInjection) {
  const Graph g = dhc1_gnp(512, 2.5, 5);
  Dhc1Config cfg;
  cfg.dra.step_multiplier = 0.01;
  cfg.dra.max_attempts = 1;
  const auto r = run_dhc1(g, 19, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
  EXPECT_NE(r.failure_reason.find("Phase 1"), std::string::npos);
}

TEST(Dhc1, Phase2BudgetInjection) {
  const Graph g = dhc1_gnp(512, 2.5, 6);
  Dhc1Config cfg;
  cfg.hyper_step_multiplier = 0.001;
  const auto r = run_dhc1(g, 23, cfg);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
  EXPECT_NE(r.failure_reason.find("Phase 2"), std::string::npos);
}

TEST(Dhc1, SparseGraphFailsGracefully) {
  support::Rng rng(7);
  const Graph g = graph::gnp(400, 0.004, rng);
  const auto r = run_dhc1(g, 29);
  EXPECT_FALSE(r.success);
  EXPECT_FALSE(r.metrics.hit_round_limit);
}

TEST(Dhc1, PhaseBreakdownRecorded) {
  const Graph g = dhc1_gnp(512, 2.5, 8);
  const auto r = run_dhc1(g, 31);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_GT(r.metrics.phase_rounds("dra"), 0u);
  EXPECT_GT(r.metrics.phase_rounds("hyper"), 0u);
  EXPECT_GT(r.stat("global_tree_depth"), 0.0);
}

class Dhc1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Dhc1Sweep, VerifiedCycleAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  const Graph g = dhc1_gnp(768, 2.5, seed * 100);
  const auto r = run_dhc1(g, seed);
  ASSERT_TRUE(r.success) << "seed=" << seed << ": " << r.failure_reason;
  EXPECT_TRUE(graph::verify_cycle_incidence(g, r.cycle).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dhc1Sweep, ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace dhc::core
