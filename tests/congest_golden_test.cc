// Differential golden-seed test: the observable behavior of every CONGEST
// solver, pinned bit-for-bit.
//
// Each row of tests/golden/congest_golden.txt records one (algorithm, n,
// delta, c, seed) cell: success, every scalar in congest::Metrics, and an
// FNV-1a digest of all per-node metric vectors, the phase marks, and the
// returned cycle incidence.  The goldens were captured from the pre-arena
// simulator (std::map wake-ups, per-node vector inboxes), so any memory-
// layout refactor of graph/ or congest/ that changes *anything* observable —
// round counts, message order, RNG consumption, metrics, or the cycle
// itself — fails here with a field-level diff.
//
// Regenerate (only when an intentional semantic change is reviewed):
//   DHC_UPDATE_GOLDEN=1 ./congest_golden_test
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/dra.h"
#include "core/result.h"
#include "core/turau.h"
#include "core/upcast.h"
#include "graph/hamiltonian.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

#ifndef DHC_GOLDEN_FILE
#define DHC_GOLDEN_FILE "tests/golden/congest_golden.txt"
#endif

namespace dhc {
namespace {

struct GoldenCell {
  runner::Algorithm algo;
  graph::NodeId n;
  double delta;
  double c;
  std::uint64_t trial;  // trial index within the cell (seed derivation input)
};

// The pinned grid: every CONGEST solver over two sizes, the paper's two
// density regimes, two seeded trials each.  Kept small enough that the whole
// sweep runs in a few seconds even under sanitizers.
std::vector<GoldenCell> golden_grid() {
  const std::vector<runner::Algorithm> algos = {
      runner::Algorithm::kDra,    runner::Algorithm::kDhc1,
      runner::Algorithm::kDhc2,   runner::Algorithm::kUpcast,
      runner::Algorithm::kTurau,
  };
  const std::vector<std::pair<double, double>> regimes = {{0.5, 2.5}, {1.0, 4.0}};
  std::vector<GoldenCell> grid;
  for (const auto algo : algos) {
    for (const graph::NodeId n : {48u, 96u}) {
      for (const auto& [delta, c] : regimes) {
        for (std::uint64_t trial = 0; trial < 2; ++trial) {
          grid.push_back({algo, n, delta, c, trial});
        }
      }
    }
  }
  return grid;
}

class Fnv1a {
 public:
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ ((x >> (8 * i)) & 0xff)) * 1099511628211ULL;
    }
  }
  void mix_str(const std::string& s) {
    for (const char ch : s) h_ = (h_ ^ static_cast<unsigned char>(ch)) * 1099511628211ULL;
    mix(s.size());
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

// One observation line: every scalar metric in the clear (so diffs are
// readable) plus a digest covering the per-node vectors, phase marks, and
// the cycle itself.  `shards` is the simulator shard count (0 = the
// DHC_SHARDS environment default, which is how the CI shard matrix gates
// the pinned file against sharded execution).
std::string observe(const GoldenCell& cell, std::uint32_t shards = 0) {
  runner::TrialConfig tc;
  tc.algo = cell.algo;
  tc.family = runner::GraphFamily::kGnp;
  tc.n = cell.n;
  tc.delta = cell.delta;
  tc.c = cell.c;
  tc.trial_index = cell.trial;
  // Derive the seeds exactly like runner::expand() so the goldens also pin
  // the seed-derivation scheme (base_seed 7101 is this test's namespace).
  runner::Scenario s;
  s.algos = {cell.algo};
  s.sizes = {static_cast<std::int64_t>(cell.n)};
  s.deltas = {cell.delta};
  s.cs = {cell.c};
  s.seeds = cell.trial + 1;
  s.base_seed = 7101;
  const auto trials = runner::expand(s);
  const auto& expanded = trials.at(cell.trial);
  tc.graph_seed = expanded.graph_seed;
  tc.algo_seed = expanded.algo_seed;

  const graph::Graph g = runner::make_trial_instance(tc);

  core::Result r;
  switch (cell.algo) {
    case runner::Algorithm::kDra: {
      core::DraConfig cfg;
      cfg.shards = shards;
      r = core::run_dra(g, tc.algo_seed, cfg);
      break;
    }
    case runner::Algorithm::kDhc1: {
      core::Dhc1Config cfg;
      cfg.shards = shards;
      r = core::run_dhc1(g, tc.algo_seed, cfg);
      break;
    }
    case runner::Algorithm::kDhc2: {
      core::Dhc2Config cfg;
      cfg.delta = cell.delta;
      cfg.shards = shards;
      r = core::run_dhc2(g, tc.algo_seed, cfg);
      break;
    }
    case runner::Algorithm::kUpcast: {
      core::UpcastConfig cfg;
      cfg.shards = shards;
      r = core::run_upcast(g, tc.algo_seed, cfg);
      break;
    }
    case runner::Algorithm::kTurau: {
      core::TurauConfig cfg;
      cfg.shards = shards;
      r = core::run_turau(g, tc.algo_seed, cfg);
      break;
    }
    default:
      ADD_FAILURE() << "unsupported golden algorithm";
  }

  bool cycle_ok = false;
  if (r.success) {
    cycle_ok = graph::verify_cycle_incidence(g, r.cycle).ok();
  }

  Fnv1a digest;
  const auto& m = r.metrics;
  for (const auto x : m.node_messages_sent) digest.mix(x);
  for (const auto x : m.node_messages_received) digest.mix(x);
  for (const auto x : m.node_memory_words) digest.mix(static_cast<std::uint64_t>(x));
  for (const auto x : m.node_peak_memory_words) digest.mix(static_cast<std::uint64_t>(x));
  for (const auto x : m.node_compute_ops) digest.mix(x);
  digest.mix(m.phase_marks.size());
  for (const auto& [label, round] : m.phase_marks) {
    digest.mix_str(label);
    digest.mix(round);
  }
  if (r.success) {
    for (const auto& pair : r.cycle.neighbors_of) {
      digest.mix(pair[0]);
      digest.mix(pair[1]);
    }
  }
  digest.mix_str(r.failure_reason);
  for (const auto& [key, value] : r.stats) {
    digest.mix_str(key);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    digest.mix(bits);
  }

  std::ostringstream os;
  os << runner::to_string(cell.algo) << ' ' << cell.n << ' ' << cell.delta << ' ' << cell.c
     << ' ' << cell.trial << " | success=" << (r.success ? 1 : 0)
     << " cycle_ok=" << (cycle_ok ? 1 : 0) << " rounds=" << m.rounds
     << " messages=" << m.messages << " bits=" << m.bits << " barriers=" << m.barrier_count
     << " barrier_cost=" << m.barrier_cost_rounds << " limit=" << (m.hit_round_limit ? 1 : 0)
     << " max_sent=" << m.max_node_messages_sent() << " peak_mem=" << m.max_node_peak_memory()
     << " max_compute=" << m.max_node_compute() << " digest=" << std::hex << digest.value();
  return os.str();
}

std::vector<std::string> observe_all() {
  std::vector<std::string> lines;
  for (const auto& cell : golden_grid()) lines.push_back(observe(cell));
  return lines;
}

TEST(CongestGolden, MatchesPinnedObservations) {
  const std::string path = DHC_GOLDEN_FILE;
  const auto lines = observe_all();

  if (std::getenv("DHC_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << "# congest golden observations — regenerate with DHC_UPDATE_GOLDEN=1\n"
        << "# (see tests/congest_golden_test.cc; regenerate only for reviewed semantic changes)\n";
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "golden file updated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run DHC_UPDATE_GOLDEN=1 ./congest_golden_test once";
  std::vector<std::string> expected;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') expected.push_back(line);
  }

  ASSERT_EQ(expected.size(), lines.size())
      << "golden grid changed shape; regenerate deliberately";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(expected[i], lines[i]) << "golden row " << i << " diverged";
  }
}

// Shard invariance over the pinned grid: every solver, every regime, run at
// shards ∈ {2, 4, 8} with grain 1 (so even the 48-node cells actually shard)
// must reproduce the shards=1 observation line byte for byte — metrics,
// digests, stats, cycles, everything.
TEST(CongestGolden, ShardInvarianceAcrossTheGrid) {
  // Grain 1 via the environment (the config structs deliberately expose only
  // the shard count; the grain is a performance knob).
  const char* old_grain = std::getenv("DHC_SHARD_GRAIN");
  setenv("DHC_SHARD_GRAIN", "1", /*overwrite=*/1);

  const auto grid = golden_grid();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const auto& cell = grid[i];
    const std::string base = observe(cell, /*shards=*/1);
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      EXPECT_EQ(observe(cell, shards), base)
          << "golden cell " << i << " diverged at shards=" << shards;
    }
  }

  if (old_grain == nullptr) {
    unsetenv("DHC_SHARD_GRAIN");
  } else {
    setenv("DHC_SHARD_GRAIN", old_grain, 1);
  }
}

}  // namespace
}  // namespace dhc
