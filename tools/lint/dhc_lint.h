// dhc_lint — determinism and shard-discipline linter for the dhc source tree.
//
// Every experimental claim in this repo rests on one invariant: a trial is
// bitwise identical across shard counts, thread counts, and reruns.  The
// worst bugs in the project's history were violations a source-level check
// would have caught at review time (a `static thread_local` scratch buffer
// that leaked state across trials on persistent WorkerPool threads; a
// flush-on-read pricing query that made k-machine costs depend on *when*
// they were read).  dhc_lint turns the prose rules of DESIGN.md §11 into a
// machine-checked gate:
//
//   R1  no `thread_local` — per-thread state outlives the trial on a
//       persistent worker pool and silently couples consecutive trials.
//   R2  no `std::unordered_map` / `std::unordered_set` (any flavour) —
//       hash-order iteration is libstdc++-version- and seed-dependent;
//       step-path files must use flat/ordered containers or sorted drains,
//       and membership-only uses elsewhere must carry a written rationale.
//   R3  no banned entropy or wall-clock sources (`rand(`, `srand(`,
//       `std::random_device`, `time(`, `system_clock`,
//       `high_resolution_clock`) — all randomness flows from seeded
//       splitmix64 streams; wall-clock measurement uses `steady_clock`,
//       which is deliberately NOT banned.
//   R4  no pointer-keyed `std::map` / `std::set` — comparison order of
//       unrelated pointers is ASLR, so iteration order changes per run.
//   R5  no bare mutable `static` data in step-path files — aggregate
//       counters on the sharded step path must go through ShardCounter or a
//       serial-merge path; function-local statics are shared across worker
//       threads and across trials.
//
// The scanner is a token/line-level pass (no libclang): comments and string
// literals are stripped before matching, so prose mentioning a banned token
// never trips a rule.  Suppressions are explicit and audited:
//
//   * inline: `// dhc-lint: allow(R2) -- membership-only, never iterated`
//     on the finding's line or the line directly above.  The reason after
//     `--` is mandatory; an allow() without one does not suppress.  The
//     marker must start its comment — a mid-sentence mention (like the one
//     above) is prose about the grammar, not a suppression.
//   * file-level: entries in tools/dhc_lint_allowlist.txt
//     (`<rule> <path-substring> -- <reason>`).
//
// The shipped allowlist plus the inline annotations ARE the audit: every
// hazard is either fixed or carries a written justification.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dhc::lint {

/// One rule violation (or suppressed would-be violation) at a source line.
struct Finding {
  std::string file;     ///< path as given to the scanner (label, not canonical)
  int line = 0;         ///< 1-based line number
  std::string rule;     ///< "R1".."R5"
  std::string message;  ///< human-readable description of the hazard
  bool suppressed = false;
  std::string suppress_reason;  ///< the written rationale, when suppressed
};

/// An inline `dhc-lint: allow(...)` annotation discovered while scanning.
struct Annotation {
  int line = 0;                    ///< 1-based line the comment sits on
  std::vector<std::string> rules;  ///< rules it covers, e.g. {"R2"}
  std::string reason;              ///< text after `--` (may be empty = invalid)
  bool used = false;               ///< set when it suppresses at least one finding
};

/// One `<rule> <path-substring> -- <reason>` entry from the allowlist file.
struct AllowlistEntry {
  std::string rule;
  std::string path_substring;
  std::string reason;
  bool used = false;
};

struct Options {
  /// A file whose path contains any of these markers is on the "step path":
  /// code executed (or reachable) inside Protocol::step / parallel_step_safe,
  /// where R2 is a hard hazard and R5 applies.
  std::vector<std::string> step_path_markers = {
      "src/core/", "src/congest/", "src/kmachine/", "src/async/", "src/trace/"};
  std::vector<AllowlistEntry> allowlist;
};

/// Scan result for one translation unit.
struct FileReport {
  std::vector<Finding> findings;          ///< suppressed and unsuppressed
  std::vector<Annotation> annotations;    ///< all inline allow() comments seen
  int unsuppressed = 0;                   ///< count of findings with !suppressed
};

/// Scans one file's text.  `path_label` is used for step-path classification,
/// allowlist matching, and reporting; it is not opened.
FileReport scan_source(std::string_view path_label, std::string_view text, const Options& options);

/// Parses an allowlist file's text (see header comment for the grammar).
/// Malformed lines (missing rule, path, or reason) are returned in `errors`
/// as "line N: why" strings — the driver treats any as fatal, so an
/// allowlist entry can never silently fail to carry a reason.
std::vector<AllowlistEntry> parse_allowlist(std::string_view text, std::vector<std::string>* errors);

/// Runs the full lint: walks `paths` (files, or directories scanned
/// recursively for .h/.hpp/.cc/.cpp), scans each file, prints findings and
/// stale-suppression warnings to `out`, and returns the process exit code
/// (0 = clean, 1 = unsuppressed findings or I/O / allowlist errors).
/// Paths are visited in sorted order so output is deterministic.
int run_lint(const std::vector<std::string>& paths, const Options& options, std::ostream& out);

}  // namespace dhc::lint
