#include "dhc_lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

namespace dhc::lint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// A comment's text and the 1-based line it starts on, harvested during
/// stripping so annotations survive while banned tokens in prose do not.
struct CommentSpan {
  int line = 0;
  std::string text;
};

/// Replaces comments, string literals, and char literals with spaces
/// (newlines preserved, so offsets keep their line numbers) and returns the
/// comment spans for annotation parsing.  Handles raw string literals, which
/// otherwise could smuggle an unescaped quote past the state machine.
struct StrippedSource {
  std::string text;
  std::vector<CommentSpan> comments;
};

StrippedSource strip_comments_and_strings(std::string_view src) {
  StrippedSource out;
  out.text.assign(src.begin(), src.end());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;       // the )delim" terminator of an active raw string
  CommentSpan current_comment;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto blank = [&](std::size_t pos) {
    if (out.text[pos] != '\n') out.text[pos] = ' ';
  };
  while (i < n) {
    const char c = src[i];
    switch (state) {
      case State::kCode:
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
          state = State::kLineComment;
          current_comment = {line, ""};
          blank(i);
          blank(i + 1);
          i += 2;
          continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
          state = State::kBlockComment;
          current_comment = {line, ""};
          blank(i);
          blank(i + 1);
          i += 2;
          continue;
        }
        if (c == '"') {
          // R"delim( ... )delim" — only when R directly abuts the quote and
          // is not the tail of a longer identifier (e.g. `LR` or `myR`).
          if (i > 0 && src[i - 1] == 'R' && (i < 2 || !is_ident_char(src[i - 2]))) {
            std::size_t j = i + 1;
            while (j < n && src[j] != '(' && src[j] != '\n') ++j;
            if (j < n && src[j] == '(') {
              raw_delim = ")" + std::string(src.substr(i + 1, j - (i + 1))) + "\"";
              state = State::kRawString;
              for (std::size_t k = i; k <= j; ++k) blank(k);
              i = j + 1;
              continue;
            }
          }
          state = State::kString;
          blank(i);
          ++i;
          continue;
        }
        if (c == '\'') {
          state = State::kChar;
          blank(i);
          ++i;
          continue;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          out.comments.push_back(current_comment);
          state = State::kCode;
        } else {
          current_comment.text.push_back(c);
          blank(i);
        }
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < n && src[i + 1] == '/') {
          out.comments.push_back(current_comment);
          state = State::kCode;
          blank(i);
          blank(i + 1);
          i += 2;
          if (c == '\n') ++line;  // unreachable ('*'), keeps the pattern uniform
          continue;
        }
        current_comment.text.push_back(c);
        blank(i);
        break;
      case State::kString:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (c == '"') {
          state = State::kCode;
        }
        blank(i);
        break;
      case State::kChar:
        if (c == '\\' && i + 1 < n) {
          blank(i);
          blank(i + 1);
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (c == '\'') {
          state = State::kCode;
        }
        blank(i);
        break;
      case State::kRawString:
        if (c == ')' && src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (std::size_t k = 0; k < raw_delim.size(); ++k) blank(i + k);
          i += raw_delim.size();
          state = State::kCode;
          continue;
        }
        blank(i);
        break;
    }
    if (c == '\n') ++line;
    ++i;
  }
  if (state == State::kLineComment || state == State::kBlockComment) {
    out.comments.push_back(current_comment);
  }
  return out;
}

/// `dhc-lint: allow(R1,R5) -- reason` inside a comment's text.
void parse_annotations(const std::vector<CommentSpan>& comments, std::vector<Annotation>* out) {
  constexpr std::string_view kMarker = "dhc-lint:";
  for (const CommentSpan& comment : comments) {
    const std::size_t marker = comment.text.find(kMarker);
    if (marker == std::string::npos) continue;
    // The marker must START the comment (after doc-comment furniture): a
    // mid-sentence `dhc-lint: allow(...)` is prose about the grammar (this
    // file's own docs, say), not a suppression.
    const bool at_start = [&] {
      for (std::size_t k = 0; k < marker; ++k) {
        const char c = comment.text[k];
        if (c != ' ' && c != '\t' && c != '/' && c != '*' && c != '!' && c != '<') return false;
      }
      return true;
    }();
    if (!at_start) continue;
    std::size_t pos = marker + kMarker.size();
    while (pos < comment.text.size() && std::isspace(static_cast<unsigned char>(comment.text[pos]))) ++pos;
    if (pos + 6 > comment.text.size() || comment.text.compare(pos, 6, "allow(") != 0) continue;
    const std::size_t open = pos + 6;
    const std::size_t close = comment.text.find(')', open);
    if (close == std::string::npos) continue;
    Annotation ann;
    ann.line = comment.line;
    std::string rule;
    for (std::size_t k = open; k <= close; ++k) {
      const char c = comment.text[k];
      if (c == ',' || c == ')') {
        if (!rule.empty()) ann.rules.push_back(rule);
        rule.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        rule.push_back(c);
      }
    }
    const std::size_t dashes = comment.text.find("--", close);
    if (dashes != std::string::npos) {
      std::size_t r = dashes + 2;
      while (r < comment.text.size() && std::isspace(static_cast<unsigned char>(comment.text[r]))) ++r;
      std::size_t e = comment.text.size();
      while (e > r && std::isspace(static_cast<unsigned char>(comment.text[e - 1]))) --e;
      ann.reason = comment.text.substr(r, e - r);
    }
    if (!ann.rules.empty()) out->push_back(ann);
  }
}

/// Maps an offset in the stripped text to its 1-based line number.
class LineIndex {
 public:
  explicit LineIndex(std::string_view text) {
    starts_.push_back(0);
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (text[i] == '\n') starts_.push_back(i + 1);
    }
  }
  int line_of(std::size_t offset) const {
    const auto it = std::upper_bound(starts_.begin(), starts_.end(), offset);
    return static_cast<int>(it - starts_.begin());
  }

 private:
  std::vector<std::size_t> starts_;
};

bool word_at(std::string_view text, std::size_t pos, std::string_view word) {
  if (text.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && is_ident_char(text[pos - 1])) return false;
  const std::size_t end = pos + word.size();
  if (end < text.size() && is_ident_char(text[end])) return false;
  return true;
}

/// Finds every word-bounded occurrence of `word`; when `call_only` is set the
/// next non-space character must be '(' (so `time(` trips but `time_point`,
/// `timer`, and `wall_time(` do not).
void find_word(std::string_view text, const LineIndex& lines, std::string_view word, bool call_only,
               std::string_view rule, std::string_view message, std::vector<Finding>* out) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string_view::npos) {
    if (word_at(text, pos, word)) {
      bool hit = true;
      if (call_only) {
        std::size_t j = pos + word.size();
        while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
        hit = j < text.size() && text[j] == '(';
      }
      if (hit) {
        out->push_back({"", lines.line_of(pos), std::string(rule), std::string(message), false, ""});
      }
    }
    pos += word.size();
  }
}

/// R4: `std::map<K*, ...>` / `std::set<K*>` — extracts the first template
/// argument (angle-depth aware) and flags it if it names a pointer type.
void scan_pointer_keys(std::string_view text, const LineIndex& lines, std::vector<Finding>* out) {
  for (std::string_view container : {std::string_view("map"), std::string_view("set")}) {
    std::size_t pos = 0;
    const std::string needle = "std::" + std::string(container);
    while ((pos = text.find(needle, pos)) != std::string_view::npos) {
      const std::size_t word_start = pos + 5;  // after "std::"
      if (!word_at(text, word_start, container)) {
        pos += needle.size();
        continue;
      }
      std::size_t j = word_start + container.size();
      while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) ++j;
      if (j >= text.size() || text[j] != '<') {
        pos += needle.size();
        continue;
      }
      // Walk the first template argument at depth 1.
      int depth = 1;
      bool key_has_pointer = false;
      std::size_t k = j + 1;
      for (; k < text.size() && depth > 0; ++k) {
        const char c = text[k];
        if (c == '<') {
          ++depth;
        } else if (c == '>') {
          --depth;
        } else if (c == ',' && depth == 1) {
          break;
        } else if (c == '*' && depth == 1) {
          key_has_pointer = true;
        }
      }
      if (key_has_pointer) {
        out->push_back({"", lines.line_of(pos), "R4",
                        "pointer-keyed std::" + std::string(container) +
                            " — iteration order is the allocator's address order (ASLR); key by a "
                            "stable id instead",
                        false, ""});
      }
      pos = j;
    }
  }
}

/// R5: `static` declaring mutable data (no '(' before the declarator ends,
/// no const/constexpr qualifier).  `static_cast` / `static_assert` never
/// match because the word boundary fails on the '_'.
void scan_bare_static(std::string_view text, const LineIndex& lines, std::vector<Finding>* out) {
  std::size_t pos = 0;
  while ((pos = text.find("static", pos)) != std::string_view::npos) {
    if (!word_at(text, pos, "static")) {
      pos += 6;
      continue;
    }
    std::size_t j = pos + 6;
    int angle_depth = 0;
    bool is_function = false;
    bool is_const = false;
    while (j < text.size()) {
      const char c = text[j];
      if (c == '<') {
        ++angle_depth;
      } else if (c == '>') {
        if (angle_depth > 0) --angle_depth;
      } else if (c == '(' && angle_depth == 0) {
        is_function = true;  // declarator reached a parameter list first
        break;
      } else if ((c == ';' || c == '=' || c == '{') && angle_depth == 0) {
        break;  // data declarator ended before any parameter list
      } else if (is_ident_char(c)) {
        std::size_t e = j;
        while (e < text.size() && is_ident_char(text[e])) ++e;
        const std::string_view tok = text.substr(j, e - j);
        if (tok == "const" || tok == "constexpr" || tok == "consteval" || tok == "constinit") {
          is_const = true;
        }
        j = e;
        continue;
      }
      ++j;
    }
    if (!is_function && !is_const) {
      out->push_back({"", lines.line_of(pos), "R5",
                      "bare mutable static state on the step path — shared across worker threads "
                      "and across trials on the persistent pool; use ShardCounter or per-node "
                      "state merged serially",
                      false, ""});
    }
    pos += 6;
  }
}

bool on_step_path(std::string_view path, const Options& options) {
  for (const std::string& marker : options.step_path_markers) {
    if (path.find(marker) != std::string_view::npos) return true;
  }
  return false;
}

}  // namespace

FileReport scan_source(std::string_view path_label, std::string_view text, const Options& options) {
  FileReport report;
  StrippedSource stripped = strip_comments_and_strings(text);
  parse_annotations(stripped.comments, &report.annotations);
  // Blank #include directives: `#include <unordered_map>` names a banned
  // token but the hazard is the *use*; flagging both would demand two
  // annotations for one decision.
  for (std::size_t bol = 0; bol < stripped.text.size();) {
    std::size_t eol = stripped.text.find('\n', bol);
    if (eol == std::string::npos) eol = stripped.text.size();
    std::size_t p = bol;
    while (p < eol && (stripped.text[p] == ' ' || stripped.text[p] == '\t')) ++p;
    if (stripped.text[p] == '#') {
      ++p;
      while (p < eol && (stripped.text[p] == ' ' || stripped.text[p] == '\t')) ++p;
      if (stripped.text.compare(p, 7, "include") == 0) {
        for (std::size_t k = bol; k < eol; ++k) stripped.text[k] = ' ';
      }
    }
    bol = eol + 1;
  }
  const LineIndex lines(stripped.text);
  const bool step_path = on_step_path(path_label, options);

  std::vector<Finding>& f = report.findings;
  find_word(stripped.text, lines, "thread_local", /*call_only=*/false, "R1",
            "thread_local state outlives the trial on persistent WorkerPool threads and couples "
            "consecutive trials",
            &f);
  const std::string r2_message =
      step_path
          ? "unordered container on the step path — hash iteration order is not part of the "
            "determinism contract; use a flat/ordered container or a sorted drain"
          : "unordered container — audit required: annotate why hash order can never reach "
            "observable state (membership-only), or convert to an ordered container";
  for (std::string_view word :
       {std::string_view("unordered_map"), std::string_view("unordered_set"),
        std::string_view("unordered_multimap"), std::string_view("unordered_multiset")}) {
    find_word(stripped.text, lines, word, /*call_only=*/false, "R2", r2_message, &f);
  }
  find_word(stripped.text, lines, "rand", /*call_only=*/true, "R3",
            "rand() draws from unseeded global state; use the trial's splitmix64 stream", &f);
  find_word(stripped.text, lines, "srand", /*call_only=*/true, "R3",
            "srand() reseeds global state shared across trials; use per-trial Rng streams", &f);
  find_word(stripped.text, lines, "random_device", /*call_only=*/false, "R3",
            "random_device is hardware entropy — unreproducible by construction", &f);
  find_word(stripped.text, lines, "time", /*call_only=*/true, "R3",
            "time() leaks the wall clock into the run; seeds and schedules must be explicit", &f);
  find_word(stripped.text, lines, "system_clock", /*call_only=*/false, "R3",
            "system_clock is the adjustable wall clock; use steady_clock for measurement only", &f);
  find_word(stripped.text, lines, "high_resolution_clock", /*call_only=*/false, "R3",
            "high_resolution_clock is an alias with no stability guarantee; use steady_clock", &f);
  scan_pointer_keys(stripped.text, lines, &f);
  if (step_path) {
    scan_bare_static(stripped.text, lines, &f);
  }

  for (Finding& finding : f) {
    finding.file.assign(path_label.begin(), path_label.end());
  }
  std::sort(f.begin(), f.end(), [](const Finding& a, const Finding& b) {
    return a.line != b.line ? a.line < b.line : a.rule < b.rule;
  });

  // Apply inline suppressions: an allow() on the finding's line or the line
  // directly above, covering the rule, with a non-empty `-- reason`.
  for (Finding& finding : f) {
    for (Annotation& ann : report.annotations) {
      if (ann.line != finding.line && ann.line != finding.line - 1) continue;
      if (std::find(ann.rules.begin(), ann.rules.end(), finding.rule) == ann.rules.end()) continue;
      if (ann.reason.empty()) continue;  // an allow() without a reason does not count
      finding.suppressed = true;
      finding.suppress_reason = ann.reason;
      ann.used = true;
      break;
    }
  }
  // File-level allowlist entries.
  for (Finding& finding : f) {
    if (finding.suppressed) continue;
    for (const AllowlistEntry& entry : options.allowlist) {
      if (entry.rule != finding.rule) continue;
      if (finding.file.find(entry.path_substring) == std::string::npos) continue;
      finding.suppressed = true;
      finding.suppress_reason = entry.reason;
      // `used` is tracked on the caller's copy in run_lint.
      break;
    }
  }
  for (const Finding& finding : f) {
    if (!finding.suppressed) ++report.unsuppressed;
  }
  return report;
}

std::vector<AllowlistEntry> parse_allowlist(std::string_view text, std::vector<std::string>* errors) {
  std::vector<AllowlistEntry> entries;
  std::istringstream in{std::string(text)};
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    std::istringstream fields(line);
    AllowlistEntry entry;
    fields >> entry.rule >> entry.path_substring;
    const std::size_t dashes = line.find("--");
    if (entry.rule.empty() || entry.path_substring.empty() || entry.path_substring == "--" ||
        dashes == std::string::npos || dashes + 2 >= line.size()) {
      if (errors) {
        errors->push_back("line " + std::to_string(lineno) +
                          ": expected `<rule> <path-substring> -- <reason>`");
      }
      continue;
    }
    std::size_t r = dashes + 2;
    while (r < line.size() && std::isspace(static_cast<unsigned char>(line[r]))) ++r;
    entry.reason = line.substr(r);
    if (entry.reason.empty()) {
      if (errors) {
        errors->push_back("line " + std::to_string(lineno) + ": suppression reason is empty");
      }
      continue;
    }
    entries.push_back(entry);
  }
  return entries;
}

int run_lint(const std::vector<std::string>& paths, const Options& options, std::ostream& out) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  bool io_error = false;
  const auto wants = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
  };
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (it->is_regular_file(ec) && wants(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
      if (ec) {
        out << "dhc_lint: error walking " << path << ": " << ec.message() << "\n";
        io_error = true;
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(fs::path(path).generic_string());
    } else {
      out << "dhc_lint: no such file or directory: " << path << "\n";
      io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  Options scan_options = options;  // local copy so allowlist `used` bits accumulate
  int total_findings = 0;
  int total_suppressed = 0;
  int total_unsuppressed = 0;
  int stale_annotations = 0;
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      out << "dhc_lint: cannot read " << file << "\n";
      io_error = true;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    FileReport report = scan_source(file, text, scan_options);
    for (const Finding& finding : report.findings) {
      ++total_findings;
      if (finding.suppressed) {
        ++total_suppressed;
        // Mark matching allowlist entries used (inline suppressions marked in scan).
        for (AllowlistEntry& entry : scan_options.allowlist) {
          if (entry.rule == finding.rule && entry.reason == finding.suppress_reason &&
              finding.file.find(entry.path_substring) != std::string::npos) {
            entry.used = true;
          }
        }
        continue;
      }
      ++total_unsuppressed;
      out << finding.file << ":" << finding.line << ": [" << finding.rule << "] "
          << finding.message << "\n";
    }
    for (const Annotation& ann : report.annotations) {
      if (ann.reason.empty()) {
        out << file << ":" << ann.line
            << ": error: dhc-lint allow() without a `-- <reason>`: suppressions must be "
               "justified\n";
        ++total_unsuppressed;  // treat as a finding: the annotation is the hazard marker
        continue;
      }
      if (!ann.used) {
        out << file << ":" << ann.line << ": warning: stale dhc-lint annotation (";
        for (std::size_t i = 0; i < ann.rules.size(); ++i) {
          out << (i ? "," : "") << ann.rules[i];
        }
        out << ") — suppresses nothing; delete it\n";
        ++stale_annotations;
      }
    }
  }
  for (const AllowlistEntry& entry : scan_options.allowlist) {
    if (!entry.used) {
      out << "dhc_lint: warning: stale allowlist entry `" << entry.rule << " "
          << entry.path_substring << "` — suppresses nothing; delete it\n";
      ++stale_annotations;
    }
  }
  out << "dhc_lint: " << files.size() << " files, " << total_findings << " findings ("
      << total_suppressed << " suppressed, " << total_unsuppressed << " unsuppressed, "
      << stale_annotations << " stale suppressions)\n";
  return (total_unsuppressed > 0 || io_error) ? 1 : 0;
}

}  // namespace dhc::lint
