// dhc_lint CLI — see dhc_lint.h for the rules and the suppression grammar.
//
// Usage:
//   dhc_lint [--root=DIR] [--allowlist=FILE] [--no-allowlist] [paths...]
//
// With no paths, scans `src` under --root (default: the current directory).
// The allowlist defaults to <root>/tools/dhc_lint_allowlist.txt when that
// file exists.  Exit code 0 = clean; 1 = unsuppressed findings, a malformed
// allowlist, or an I/O error.  Output order is deterministic (sorted paths).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dhc_lint.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = ".";
  std::string allowlist_path;
  bool no_allowlist = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--allowlist=", 0) == 0) {
      allowlist_path = arg.substr(12);
    } else if (arg == "--no-allowlist") {
      no_allowlist = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: dhc_lint [--root=DIR] [--allowlist=FILE] [--no-allowlist] [paths...]\n"
                   "Determinism lint for the dhc source tree (rules R1-R5, DESIGN.md §11).\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dhc_lint: unknown flag " << arg << "\n";
      return 1;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) paths.push_back("src");
  for (std::string& p : paths) {
    if (!fs::path(p).is_absolute()) p = (fs::path(root) / p).generic_string();
  }

  dhc::lint::Options options;
  if (!no_allowlist) {
    if (allowlist_path.empty()) {
      const fs::path candidate = fs::path(root) / "tools" / "dhc_lint_allowlist.txt";
      std::error_code ec;
      if (fs::is_regular_file(candidate, ec)) allowlist_path = candidate.generic_string();
    }
    if (!allowlist_path.empty()) {
      std::ifstream in(allowlist_path, std::ios::binary);
      if (!in) {
        std::cerr << "dhc_lint: cannot read allowlist " << allowlist_path << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      std::vector<std::string> errors;
      options.allowlist = dhc::lint::parse_allowlist(buffer.str(), &errors);
      for (const std::string& error : errors) {
        std::cerr << "dhc_lint: " << allowlist_path << ": " << error << "\n";
      }
      if (!errors.empty()) return 1;
    }
  }
  return dhc::lint::run_lint(paths, options, std::cout);
}
