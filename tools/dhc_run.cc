// dhc_run — the unified experiment driver for libdhc.
//
// Declares a scenario (from flags, a scenario file, or both), expands it to
// the cross-product of seeded trials, executes them on a worker pool, and
// prints per-configuration aggregates plus JSON/CSV artifacts.  Aggregates
// are bitwise independent of --threads; only wall-clock changes.
//
//   ./dhc_run --algo=dhc2 --sizes=256,512 --deltas=0.5 --seeds=20 --threads=8
//   ./dhc_run --scenario=sweep.scn --threads=0        # 0 = all hardware threads
//
// Flags (all optional; scenario-file keys use the same names):
//   --scenario=FILE   key = value scenario file; other flags override it
//   --name=STR        scenario name recorded in the artifacts
//   --algos=LIST      sequential|dra|dhc1|dhc2|upcast|collect-all|dhc2-kmachine|
//                     turau|cre (cre = the linear-space sequential oracle)
//   --model=STR       congest (default) | kmachine | async — kmachine runs
//                     every selected algorithm through the k-machine
//                     execution backend (paper §IV) and sweeps --k; async
//                     runs them under seed-deterministic delivery delays,
//                     drops, and node crashes and sweeps the fault axes
//   --family=STR      gnp|gnm|regular|powerlaw
//   --sizes=LIST      graph sizes n
//   --deltas=LIST     density exponents, p = c·ln n / n^delta
//   --cs=LIST         density constants
//   --merges=LIST     minforward|fullqueue (DHC2-based algorithms)
//   --k=LIST          machine counts for --model=kmachine (aliases:
//                     --machines, --k_list; also the legacy dhc2-kmachine)
//   --bandwidth=N     per-link messages/round for the k-machine pricing
//   --delay_dist=LIST per-edge latency specs for --model=async, each
//                     none | fixed:K | uniform:A:B | geometric:P
//   --drop_prob=LIST  per-message loss probabilities in [0, 1) (async)
//   --crash_schedule=LIST  node crash windows for --model=async, each
//                     none | random:FRAC:START:DURATION
//   --reliability=LIST  async transport reliability, each none | ack — ack
//                     adds the per-link seq/ack + retransmit overlay
//                     (congest/reliable.h) so solvers survive drops/crashes
//   --rto=SPEC        retransmit timeout for --reliability=ack:
//                     rto:K[:MULT[:MAX]] (default rto:4:2:16)
//   --max_rounds=N    per-trial round budget for --model=async (0 = engine
//                     default; faulted runs that stall fail fast with
//                     hit_round_limit instead of crawling to the ceiling)
//   --seeds=N         trials per configuration cell
//   --seed=N          root seed
//   --threads=N       worker-thread budget shared by trial- and
//                     shard-parallelism (0 = hardware concurrency; default 1;
//                     always clamped to the hardware)
//   --shards=N        simulator shards per trial (0 = auto: many small trials
//                     run trial-parallel, few huge trials get the leftover
//                     budget as shards; results are identical either way)
//   --json=PATH       JSON artifact path ("" disables; default dhc_run.json)
//   --csv=PATH        CSV artifact path (default: none)
//   --verify=BOOL     check returned cycles against the graph (default true)
//   --trace=DIR       write one flight-recorder NDJSON trace per CONGEST
//                     trial into DIR (created if missing); paths land in the
//                     JSON artifact as "trace_files".  Inspect with dhc_trace.
//   --node_stats=STR  per-node accounting: full (default) | streaming | off;
//                     streaming keeps fixed-size quantile digests instead of
//                     per-node vectors (the large-n mode)
//   --track_rss=BOOL  record stats["rss_peak_kb"] (process peak RSS at each
//                     trial's end) on every result (default false — the value
//                     is machine-dependent, so artifacts that must be
//                     bitwise-comparable across thread counts leave it off)
//
// Benchmark mode (perf trajectory; see README "Performance tracking"):
//   --bench=LIST      run the named presets (or "all"); prints throughput and
//                     writes the BENCH artifact instead of scenario output
//   --bench-json=PATH BENCH artifact path (default BENCH_congest.json)
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "runner/aggregator.h"
#include "runner/bench.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"
#include "support/cli.h"

namespace {

// Shared flag validation: negative or absurd values are rejected with exit
// code 2 (the env path, congest::default_shards(), applies the same bounds).
unsigned checked_unsigned(const dhc::support::Cli& cli, const char* flag, long max_value) {
  const long raw = cli.get_int(flag, 0);
  if (raw < 0 || raw > max_value) {
    throw std::invalid_argument(std::string("flag --") + flag + " must be in [0, " +
                                std::to_string(max_value) + "], got " + std::to_string(raw));
  }
  return static_cast<unsigned>(raw);
}

void write_artifact(const std::string& path, const std::string& what,
                    const std::function<void(std::ostream&)>& emit) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + what + " artifact '" + path + "'");
  emit(out);
  std::cout << what << " artifact: " << path << "\n";
}

int run_bench_mode(const dhc::support::Cli& cli) {
  using namespace dhc;
  runner::RunnerOptions opt;
  opt.threads = cli.has("threads") ? checked_unsigned(cli, "threads", 1 << 20) : 1;
  opt.verify = cli.get_bool("verify", true);
  opt.shards = checked_unsigned(cli, "shards", 1 << 20);

  std::vector<const runner::BenchPreset*> selected;
  // A bare `--bench` is stored by Cli as "true"; treat it like "all".
  const std::string spec = cli.get_string("bench", "all");
  if (spec.empty() || spec == "all" || spec == "true") {
    for (const auto& p : runner::bench_presets()) selected.push_back(&p);
  } else {
    std::istringstream is(spec);
    std::string name;
    while (std::getline(is, name, ',')) {
      const auto* p = runner::find_bench_preset(name);
      if (p == nullptr) {
        std::string known;
        for (const auto& q : runner::bench_presets()) known += " " + q.name;
        throw std::invalid_argument("unknown bench preset '" + name + "' (known:" + known + ")");
      }
      selected.push_back(p);
    }
  }
  if (selected.empty()) throw std::invalid_argument("--bench selected no presets");

  std::vector<runner::BenchMeasurement> measurements;
  for (const auto* p : selected) {
    std::cout << "bench '" << p->name << "': " << p->description << "\n";
    measurements.push_back(runner::run_bench_preset(*p, opt));
    const auto& m = measurements.back();
    std::cout << "  " << m.trials << " trials (" << m.successes << " ok, " << m.threads
              << " thread(s) x " << m.shards << " shard(s)) in " << m.wall_seconds
              << " s — " << m.trials_per_sec << " trials/s, " << m.messages_per_sec
              << " msgs/s, peak RSS " << m.rss_peak_kb << " kB, arena peak "
              << m.arena_bytes_peak << " B\n";
  }

  const std::string path = cli.get_string("bench-json", "BENCH_congest.json");
  if (!path.empty()) {
    write_artifact(path, "BENCH", [&](std::ostream& os) {
      runner::write_bench_json(os, measurements, opt.threads, opt.shards);
    });
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhc;
  try {
    const support::Cli cli(argc, argv);
    if (cli.has("help")) {
      std::cout << "usage: dhc_run [--scenario=FILE] [--algos=...] "
                   "[--model=congest|kmachine|async] "
                   "[--sizes=...] [--deltas=...] [--cs=...] [--k=...] [--bandwidth=N] "
                   "[--delay_dist=...] [--drop_prob=...] [--crash_schedule=...] "
                   "[--reliability=none|ack] [--rto=SPEC] [--max_rounds=N] "
                   "[--seeds=N] [--threads=N] [--json=PATH] [--csv=PATH]\n"
                   "algorithms: sequential|dra|dhc1|dhc2|upcast|collect-all|"
                   "dhc2-kmachine|turau|cre\n"
                   "--model=kmachine prices any algorithm in the k-machine model "
                   "(sweeps --k machine counts).\n"
                   "--model=async injects seed-deterministic delivery delays "
                   "(--delay_dist), drops (--drop_prob), and crashes "
                   "(--crash_schedule); --reliability=ack adds the "
                   "retransmit overlay (tune with --rto).\n"
                   "See the header of tools/dhc_run.cc for the full flag list.\n";
      return EXIT_SUCCESS;
    }
    const std::string bench_spec = cli.get_string("bench", "");
    if (cli.has("bench") && bench_spec != "false" && bench_spec != "0") {
      return run_bench_mode(cli);
    }
    const runner::Scenario scenario = runner::scenario_from_cli(cli);
    runner::RunnerOptions opt;
    opt.threads = cli.has("threads") ? checked_unsigned(cli, "threads", 1 << 20) : 1;
    opt.verify = cli.get_bool("verify", true);
    opt.shards = checked_unsigned(cli, "shards", 1 << 20);
    opt.node_stats = scenario.node_stats;
    opt.track_rss = cli.get_bool("track_rss", false);
    if (cli.has("trace")) {
      opt.trace_dir = cli.get_string("trace", "");
      if (opt.trace_dir.empty() || opt.trace_dir == "true") {
        throw std::invalid_argument("--trace needs a directory: --trace=DIR");
      }
      std::filesystem::create_directories(opt.trace_dir);
    }

    const auto trials = runner::expand(scenario);
    const auto par = runner::resolve_parallelism(trials.size(), opt);
    std::cout << "scenario '" << scenario.name << "': " << trials.size() << " trials over "
              << (trials.empty() ? 0 : trials.back().config_index + 1) << " configurations, "
              << par.threads << " thread(s) x " << par.shards << " shard(s)\n\n";

    const auto start = std::chrono::steady_clock::now();
    const auto results = runner::run_trials(trials, opt);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

    const auto summaries = runner::aggregate(trials, results);
    runner::summary_table(summaries).print(std::cout);

    std::uint64_t failures = 0;
    double trial_seconds = 0.0;
    for (const auto& r : results) {
      if (!r.success) ++failures;
      trial_seconds += r.wall_seconds;
    }
    std::cout << "\n" << trials.size() << " trials, " << failures << " failed; wall "
              << wall << " s (" << trial_seconds << " s of trial work)\n";

    const std::string json_path = cli.get_string("json", "dhc_run.json");
    if (!json_path.empty()) {
      write_artifact(json_path, "JSON", [&](std::ostream& os) {
        runner::write_json(os, scenario.name, summaries);
      });
    }
    const std::string csv_path = cli.get_string("csv", "");
    if (!csv_path.empty()) {
      write_artifact(csv_path, "CSV",
                     [&](std::ostream& os) { runner::write_csv(os, summaries); });
    }
    return EXIT_SUCCESS;
  } catch (const std::invalid_argument& e) {
    std::cerr << "dhc_run: " << e.what() << "\n(run with --help for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dhc_run: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
