// dhc_trace — inspector for flight-recorder traces (src/trace/) and the
// perf-regression gate over BENCH artifacts.
//
// Modes (pick exactly one):
//   --summarize=TRACE        per-phase rounds/messages/bits table + totals
//   --diff=TRACE_A,TRACE_B   phase- and counter-level comparison; exit 1
//                            when any non-wall counter differs (the
//                            determinism / shard-invariance check as a tool)
//   --imbalance=TRACE        per-shard active/wall split and imbalance
//                            factors (traces recorded with DHC_SHARDS>1)
//   --chrome=TRACE           convert to Chrome trace_event JSON
//                            (--out=PATH, default TRACE.chrome.json); load
//                            in chrome://tracing or ui.perfetto.dev
//   --bench-gate=BENCH_JSON  compare against --baseline=BENCH_JSON: exit 1
//                            when any preset's trials_per_sec regressed by
//                            more than --tolerance (default 0.15), or when
//                            the workload counter changed at all (a behavior
//                            change masquerading as a perf delta).  The
//                            workload counter is payload_messages_total when
//                            both artifacts carry it (schema 4+; overlay
//                            retransmit/ack traffic excluded so async preset
//                            baselines survive RTO tuning), messages_total
//                            otherwise.  When both artifacts carry
//                            rss_peak_kb (schema 5+) it is additionally
//                            pinned within the tolerance (32 MB slack floor).
//   --trajectory=J1,J2,...   chronological bench artifacts: every shared
//                            preset must be no slower at each step than
//                            --tolerance below the previous artifact (the
//                            CI-enforced pre -> CSR -> sharded perf curve)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/json.h"
#include "trace/chrome.h"
#include "trace/reader.h"
#include "trace/summary.h"

namespace {

using dhc::support::JsonValue;

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int bench_gate(const std::string& current_path, const std::string& baseline_path,
               double tolerance) {
  const JsonValue current = dhc::support::parse_json(slurp(current_path));
  const JsonValue baseline = dhc::support::parse_json(slurp(baseline_path));

  int failures = 0;
  for (const JsonValue& cur : current.get("scenarios").as_array()) {
    const std::string& name = cur.str("name");
    const JsonValue* base = nullptr;
    for (const JsonValue& b : baseline.get("scenarios").as_array()) {
      if (b.str("name") == name) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) {
      std::cout << "bench-gate: " << name << ": no baseline entry (new preset, skipped)\n";
      continue;
    }
    const double cur_tps = cur.number("trials_per_sec");
    const double base_tps = base->number("trials_per_sec");
    const double ratio = base_tps > 0.0 ? cur_tps / base_tps : 1.0;
    const bool tps_ok = ratio >= 1.0 - tolerance;
    std::cout << "bench-gate: " << name << ": " << base_tps << " -> " << cur_tps
              << " trials/s (x" << ratio << (tps_ok ? ", ok" : ", REGRESSION") << ")\n";
    if (!tps_ok) ++failures;

    // The workload counter is machine-independent: a change means the
    // workload itself changed, which invalidates the throughput comparison.
    // Prefer payload_messages_total (schema 4+) — it excludes overlay
    // retransmit/ack traffic, so async-preset baselines compare the solver
    // workload rather than the retransmit weather.
    const bool have_payload = cur.find("payload_messages_total") != nullptr &&
                              base->find("payload_messages_total") != nullptr;
    const char* counter = have_payload ? "payload_messages_total" : "messages_total";
    const std::uint64_t cur_msgs = cur.u64(counter);
    const std::uint64_t base_msgs = base->u64(counter);
    if (cur_msgs != base_msgs) {
      std::cout << "bench-gate: " << name << ": " << counter << " " << base_msgs << " -> "
                << cur_msgs << " (WORKLOAD CHANGED — refresh the baseline)\n";
      ++failures;
    }

    // Footprint gate: rss_peak_kb within the tolerance, engaged only when
    // BOTH artifacts carry the schema-5 key (older baselines keep working).
    // Small presets jitter by whole pages, so the slack never drops below a
    // 32 MB floor.
    const bool have_rss =
        cur.find("rss_peak_kb") != nullptr && base->find("rss_peak_kb") != nullptr;
    if (have_rss) {
      const double cur_rss = cur.number("rss_peak_kb");
      const double base_rss = base->number("rss_peak_kb");
      const double slack = std::max(base_rss * tolerance, 32.0 * 1024.0);
      const bool rss_ok = cur_rss <= base_rss + slack;
      std::cout << "bench-gate: " << name << ": rss " << base_rss << " -> " << cur_rss
                << " kB" << (rss_ok ? " (ok)" : " (FOOTPRINT REGRESSION)") << "\n";
      if (!rss_ok) ++failures;
    }
  }
  if (failures > 0) {
    std::cout << "bench-gate: FAILED (" << failures << " check(s))\n";
    return EXIT_FAILURE;
  }
  std::cout << "bench-gate: ok (tolerance " << tolerance << ")\n";
  return EXIT_SUCCESS;
}

// The perf-trajectory check: given bench artifacts in chronological order
// (pre -> CSR -> sharded -> ...), every preset they share must be no slower
// in each successive artifact than `tolerance` below its predecessor — the
// "the curve only bends upward" property CI enforces on the committed
// baselines themselves.
int bench_trajectory(const std::vector<std::string>& paths, double tolerance) {
  if (paths.size() < 2) {
    throw std::invalid_argument("--trajectory needs at least two artifacts: --trajectory=A,B,...");
  }
  std::vector<JsonValue> artifacts;
  for (const auto& p : paths) artifacts.push_back(dhc::support::parse_json(slurp(p)));

  int failures = 0;
  for (std::size_t i = 1; i < artifacts.size(); ++i) {
    for (const JsonValue& cur : artifacts[i].get("scenarios").as_array()) {
      const std::string& name = cur.str("name");
      const JsonValue* prev = nullptr;
      for (const JsonValue& b : artifacts[i - 1].get("scenarios").as_array()) {
        if (b.str("name") == name) {
          prev = &b;
          break;
        }
      }
      if (prev == nullptr) continue;  // preset introduced at step i
      const double prev_tps = prev->number("trials_per_sec");
      const double cur_tps = cur.number("trials_per_sec");
      const bool ok = cur_tps >= prev_tps * (1.0 - tolerance);
      std::cout << "trajectory: " << name << " [" << paths[i - 1] << " -> " << paths[i]
                << "]: " << prev_tps << " -> " << cur_tps << " trials/s"
                << (ok ? " (ok)" : " (CURVE BENT DOWN)") << "\n";
      if (!ok) ++failures;
    }
  }
  if (failures > 0) {
    std::cout << "trajectory: FAILED (" << failures << " check(s))\n";
    return EXIT_FAILURE;
  }
  std::cout << "trajectory: ok (" << paths.size() << " artifacts, tolerance " << tolerance
            << ")\n";
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhc;
  try {
    const support::Cli cli(argc, argv);
    if (cli.has("help") || argc == 1) {
      std::cout << "usage: dhc_trace --summarize=TRACE | --diff=A,B | --imbalance=TRACE | "
                   "--chrome=TRACE [--out=PATH] | --bench-gate=JSON --baseline=JSON "
                   "[--tolerance=0.15] | --trajectory=JSON,JSON,... [--tolerance=0.15]\n"
                   "See the header of tools/dhc_trace.cc for details.\n";
      return EXIT_SUCCESS;
    }

    if (cli.has("summarize")) {
      const auto data = trace::read_trace_file(cli.get_string("summarize", ""));
      trace::print_summary(data, std::cout);
      return EXIT_SUCCESS;
    }

    if (cli.has("diff")) {
      const auto paths = cli.get_string_list("diff", {});
      if (paths.size() != 2) {
        throw std::invalid_argument("--diff needs exactly two traces: --diff=A,B");
      }
      const auto a = trace::read_trace_file(paths[0]);
      const auto b = trace::read_trace_file(paths[1]);
      return trace::print_diff(a, b, std::cout) == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
    }

    if (cli.has("imbalance")) {
      const auto data = trace::read_trace_file(cli.get_string("imbalance", ""));
      trace::print_imbalance(data, std::cout);
      return EXIT_SUCCESS;
    }

    if (cli.has("chrome")) {
      const std::string in_path = cli.get_string("chrome", "");
      const auto data = trace::read_trace_file(in_path);
      const std::string out_path = cli.get_string("out", in_path + ".chrome.json");
      std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
      if (!os) throw std::runtime_error("cannot open '" + out_path + "'");
      trace::write_chrome_trace(data, os);
      os.flush();
      if (!os) throw std::runtime_error("failed writing '" + out_path + "'");
      std::cout << "chrome trace: " << out_path << "\n";
      return EXIT_SUCCESS;
    }

    if (cli.has("trajectory")) {
      const double tolerance = cli.get_double("tolerance", 0.15);
      if (tolerance < 0.0 || tolerance >= 1.0) {
        throw std::invalid_argument("--tolerance must be in [0, 1)");
      }
      return bench_trajectory(cli.get_string_list("trajectory", {}), tolerance);
    }

    if (cli.has("bench-gate")) {
      if (!cli.has("baseline")) {
        throw std::invalid_argument("--bench-gate needs --baseline=BENCH_JSON");
      }
      const double tolerance = cli.get_double("tolerance", 0.15);
      if (tolerance < 0.0 || tolerance >= 1.0) {
        throw std::invalid_argument("--tolerance must be in [0, 1)");
      }
      return bench_gate(cli.get_string("bench-gate", ""), cli.get_string("baseline", ""),
                        tolerance);
    }

    throw std::invalid_argument(
        "pick a mode: --summarize, --diff, --imbalance, --chrome, --bench-gate, "
        "or --trajectory");
  } catch (const std::invalid_argument& e) {
    std::cerr << "dhc_trace: " << e.what() << "\n(run with --help for usage)\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "dhc_trace: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
