// Scenario: build a token-passing ring overlay for a peer-to-peer network.
//
// A classic use of Hamiltonian cycles in distributed systems: a ring overlay
// that visits every peer exactly once gives mutual exclusion by token
// passing, fair round-robin scheduling, and a bounded-latency gossip order —
// with per-node state of exactly two overlay links.  P2P membership graphs
// are well modeled by dense random graphs, which is precisely the setting
// where the paper's algorithms shine.
//
//   ./token_ring_overlay [--peers=1024] [--c=2.5] [--seed=3] [--laps=2]
//
// The example builds the ring with DHC2, then actually simulates token
// circulation over the CONGEST network to demonstrate that the overlay
// works: the token visits all peers per lap using only ring edges.
#include <cstdlib>
#include <iostream>

#include "congest/network.h"
#include "core/dhc2.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/cli.h"

namespace {

using namespace dhc;

/// Token circulation over the ring overlay: each node forwards the token to
/// its ring successor; one full lap must visit every peer exactly once.
class TokenRing : public congest::Protocol {
 public:
  TokenRing(const graph::CycleIncidence& ring, graph::NodeId start, int laps)
      : ring_(ring), start_(start), laps_(laps) {}

  void begin(congest::Context& ctx) override {
    if (ctx.self() == start_) {
      visits_ = 1;
      // Pick one of the two ring edges as "successor"; direction then stays
      // fixed because every hop forwards away from its arrival edge.
      const auto next = ring_.neighbors_of[start_][1];
      ctx.send(next, congest::Message::make(kToken, {start_}));
    }
  }

  void step(congest::Context& ctx) override {
    for (const auto& msg : ctx.inbox()) {
      if (msg.tag != kToken) continue;
      ++visits_;
      if (ctx.self() == start_ && ++laps_done_ == laps_) return;  // done
      // Forward along the ring: the neighbor we did not receive from.
      const auto [a, b] = ring_.neighbors_of[ctx.self()];
      const auto next = (a == msg.from) ? b : a;
      ctx.send(next, congest::Message::make(kToken, {msg.data[0]}));
    }
  }

  std::uint64_t visits() const { return visits_; }

 private:
  static constexpr std::uint16_t kToken = 200;
  const graph::CycleIncidence& ring_;
  graph::NodeId start_;
  int laps_;
  int laps_done_ = 0;
  std::uint64_t visits_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const auto peers = static_cast<graph::NodeId>(cli.get_int("peers", 1024));
  const double c = cli.get_double("c", 2.5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  const int laps = static_cast<int>(cli.get_int("laps", 2));

  // The P2P membership graph: each pair of peers knows each other with
  // probability p = c·ln n / √n.
  const double p = graph::edge_probability(peers, c, 0.5);
  support::Rng rng(seed);
  const graph::Graph g = graph::gnp(peers, p, rng);
  std::cout << "membership graph: " << peers << " peers, " << g.m() << " links\n";

  // Build the ring overlay with the fully-distributed DHC2.
  core::Dhc2Config cfg;
  cfg.delta = 0.5;
  const core::Result ring = core::run_dhc2(g, seed + 1, cfg);
  if (!ring.success) {
    std::cout << "overlay construction failed: " << ring.failure_reason << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "ring overlay built in " << ring.metrics.accounted_rounds()
            << " accounted rounds, " << ring.metrics.messages << " messages\n";
  std::cout << "per-peer overlay state: 2 links (vs " << g.max_degree()
            << " membership links at the busiest peer)\n";

  // Demonstrate the overlay: circulate a token for a few laps.
  congest::NetworkConfig net_cfg;
  net_cfg.seed = seed + 2;
  congest::Network net(g, net_cfg);
  TokenRing token(ring.cycle, /*start=*/0, laps);
  const auto metrics = net.run(token);
  std::cout << "token circulated " << laps << " lap(s): " << token.visits() << " visits in "
            << metrics.rounds << " rounds ("
            << (token.visits() == static_cast<std::uint64_t>(laps) * peers + 1 ? "every peer, once per lap"
                                                                               : "UNEXPECTED")
            << ")\n";
  return token.visits() == static_cast<std::uint64_t>(laps) * peers + 1 ? EXIT_SUCCESS
                                                                        : EXIT_FAILURE;
}
