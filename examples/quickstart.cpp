// Quickstart: generate a random graph, find a Hamiltonian cycle with DHC2,
// verify it, and print the CONGEST cost.
//
//   ./quickstart [--n=2048] [--c=2.5] [--delta=0.5] [--seed=1]
//
// This is the 60-second tour of the library: graph generation, the
// fully-distributed solver, the paper's per-node output convention, and the
// metrics the experiments are built on.
#include <cstdlib>
#include <iostream>

#include "core/dhc2.h"
#include "core/distributed_verify.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/cli.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 2048));
  const double c = cli.get_double("c", 2.5);
  const double delta = cli.get_double("delta", 0.5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  // 1. Generate G(n, p) with p = c·ln n / n^δ — the paper's input model.
  const double p = graph::edge_probability(n, c, delta);
  support::Rng graph_rng(seed);
  const graph::Graph g = graph::gnp(n, p, graph_rng);
  std::cout << "G(n=" << n << ", p=" << p << "): " << g.m() << " edges, "
            << (graph::is_connected(g) ? "connected" : "DISCONNECTED") << "\n";

  // 2. Run DHC2 — the paper's general fully-distributed algorithm.
  core::Dhc2Config cfg;
  cfg.delta = delta;
  const core::Result r = core::run_dhc2(g, seed + 1, cfg);
  if (!r.success) {
    std::cout << "DHC2 failed: " << r.failure_reason << "\n";
    return EXIT_FAILURE;
  }

  // 3. The output is distributed: each node knows its two cycle edges.
  const graph::NodeId probe = n / 2;
  const auto [a, b] = r.cycle.neighbors_of[probe];
  std::cout << "node " << probe << " knows its cycle neighbors: " << a << " and " << b << "\n";

  // 4. Verify — offline, and in-model with the distributed verifier (the
  //    deployment never has to trust the solver).
  const auto verdict = graph::verify_cycle_incidence(g, r.cycle);
  std::cout << "offline verifier:     "
            << (verdict.ok() ? "valid Hamiltonian cycle" : *verdict.failure) << "\n";
  const auto dv = core::run_distributed_verify(g, r.cycle, seed + 2);
  std::cout << "distributed verifier: " << (dv.accepted ? "accepted" : "REJECTED: " + dv.reason)
            << " (" << dv.metrics.rounds << " rounds)\n";
  std::cout << "rounds:   " << r.metrics.rounds << " (+" << r.metrics.barrier_count
            << " barriers x " << r.metrics.barrier_cost_rounds << " rounds)\n";
  std::cout << "messages: " << r.metrics.messages << ", bits: " << r.metrics.bits << "\n";
  std::cout << "phases:   dra=" << r.metrics.phase_rounds("dra")
            << " merge=" << r.metrics.phase_rounds("merge")
            << " (levels=" << r.stat("merge_levels") << ", bridges=" << r.stat("bridges_built")
            << ")\n";
  std::cout << "max node memory: " << r.metrics.max_node_peak_memory() << " words (n=" << n
            << ", max degree " << g.max_degree() << ") — fully distributed\n";
  return EXIT_SUCCESS;
}
