// Scenario: plan a rolling upgrade order for a server fleet.
//
// Constraint: shards are handed off between consecutive machines in the
// upgrade order, so consecutive machines must share a direct network link —
// and the order must return to the first machine so the schedule can repeat
// next quarter.  That is exactly a Hamiltonian cycle of the fleet's
// connectivity graph.
//
// The example contrasts the two deployment styles the paper discusses:
//   * a coordinator-based plan (Upcast): fine for a small fleet, but the
//     coordinator stores the whole sampled topology (Ω(n) memory), and
//   * a fully-distributed plan (DHC2): every machine ends up knowing just
//     its two schedule neighbors, with o(n) memory everywhere.
//
//   ./rolling_upgrade [--servers=512] [--c=2.5] [--seed=5]
#include <cstdlib>
#include <iostream>

#include "core/dhc2.h"
#include "core/upcast.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "support/cli.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto servers = static_cast<graph::NodeId>(cli.get_int("servers", 512));
  const double c = cli.get_double("c", 2.5);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  const double p = graph::edge_probability(servers, c, 0.5);
  support::Rng rng(seed);
  const graph::Graph fleet = graph::gnp(servers, p, rng);
  std::cout << "fleet connectivity: " << servers << " servers, " << fleet.m() << " links\n\n";

  // Plan A: coordinator-based (Upcast).
  const core::Result a = core::run_upcast(fleet, seed + 1);
  // Plan B: fully distributed (DHC2).
  core::Dhc2Config cfg;
  cfg.delta = 0.5;
  const core::Result b = core::run_dhc2(fleet, seed + 2, cfg);

  support::Table table({"plan", "ok", "rounds", "messages", "coordinator memory (words)",
                        "typical node memory"});
  for (const auto& [name, r] : {std::pair<const char*, const core::Result&>{"upcast", a},
                                {"dhc2", b}}) {
    std::vector<std::int64_t> mems = r.metrics.node_peak_memory_words;
    std::nth_element(mems.begin(), mems.begin() + static_cast<std::ptrdiff_t>(mems.size() / 2), mems.end());
    table.add_row({name, r.success ? "yes" : "no", support::Table::num(r.metrics.rounds),
                   support::Table::num(r.metrics.messages),
                   support::Table::num(static_cast<std::uint64_t>(r.metrics.max_node_peak_memory())),
                   support::Table::num(static_cast<std::uint64_t>(mems[mems.size() / 2]))});
  }
  table.print(std::cout);

  const core::Result& plan = b.success ? b : a;
  if (!plan.success) {
    std::cout << "\nno upgrade schedule found: " << plan.failure_reason << "\n";
    return EXIT_FAILURE;
  }

  // Reconstruct the global order from the distributed output and print the
  // first hops of the schedule.
  const auto order = graph::order_from_incidence(plan.cycle);
  if (!order.has_value()) {
    std::cout << "\nschedule reconstruction failed\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nupgrade order (first 10 of " << servers << "): ";
  for (int i = 0; i < 10; ++i) std::cout << order->order[static_cast<std::size_t>(i)] << " → ";
  std::cout << "…\nevery hop is a direct link; the order closes back on server "
            << order->order.front() << ".\n";
  return EXIT_SUCCESS;
}
