// EXP-M1: message and bit complexity across algorithms.
//
// CONGEST restricts bandwidth, not message count, but the paper's
// fully-distributed pitch implies the total communication stays near-linear
// in m.  We chart messages and bits per run against n and m for every
// algorithm, including the broadcast-mode effect on DRA (cross-reference
// EXP-A1).
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/upcast.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048});

  bench::banner("EXP-M1", "total communication: messages and bits vs n and m, per algorithm",
                "p = c ln n / sqrt n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "m", "algorithm", "median messages", "messages/m", "median Mbits"});
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    double m_edges = 0;
    struct Algo {
      const char* name;
      std::vector<double> messages;
      std::vector<double> bits;
    };
    Algo algos[] = {{"dhc1", {}, {}}, {"dhc2", {}, {}}, {"upcast", {}, {}}};
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 0.5, s + 610);
      m_edges = static_cast<double>(g.m());
      core::Result rs[3];
      rs[0] = core::run_dhc1(g, s * 3 + 1);
      core::Dhc2Config d2;
      d2.delta = 0.5;
      rs[1] = core::run_dhc2(g, s * 5 + 2, d2);
      rs[2] = core::run_upcast(g, s * 7 + 3);
      for (int i = 0; i < 3; ++i) {
        if (!rs[i].success) continue;
        algos[i].messages.push_back(static_cast<double>(rs[i].metrics.messages));
        algos[i].bits.push_back(static_cast<double>(rs[i].metrics.bits));
      }
    }
    for (auto& algo : algos) {
      if (algo.messages.empty()) continue;
      const double msgs = support::quantile(algo.messages, 0.5);
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                     support::Table::num(m_edges, 0), algo.name, support::Table::num(msgs, 0),
                     support::Table::num(msgs / m_edges, 2),
                     support::Table::num(support::quantile(algo.bits, 0.5) / 1e6, 1)});
    }
  }
  table.print(std::cout);

  bench::verdict(true,
                 "communication stays within small multiples of m for every algorithm "
                 "(tree broadcasts keep DRA's rotations at O(n') messages each)");
  return 0;
}
