// EXP-A3 (ablation): DHC2's merge strategy — min-forward vs the literal
// full queue.
//
// DESIGN.md §2.2: Algorithm 3 has each passive node query its cycle
// neighbors about *every* received verify message; in CONGEST those queries
// serialize on the two cycle edges, costing Θ(p·|C|) rounds per node at late
// merge levels — which exceeds the Õ(n^δ) budget when δ < 1/2.  The
// min-forward variant checks only each node's minimum candidate in O(1)
// rounds, matching Theorem 10's accounting.  Both must succeed; the ablation
// quantifies the round gap in the merge phase.
//
// Flags: --sizes=..., --seeds=N, --c=X, --delta=X.
#include "bench_util.h"
#include "core/dhc2.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const double delta = cli.get_double("delta", 0.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048, 4096});

  bench::banner("EXP-A3",
                "ablation: merge discovery — literal Alg. 3 (full queue, Theta(p|C|) "
                "serialized rounds) vs min-forward (constant rounds per level)",
                "delta = " + support::Table::num(delta, 2) + ", c = " +
                    support::Table::num(c, 1) + ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "strategy", "merge rounds", "total rounds", "success"});
  std::vector<double> gap;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    double merge_rounds[2] = {0, 0};
    int idx = 0;
    for (const auto strategy : {core::MergeStrategy::kMinForward, core::MergeStrategy::kFullQueue}) {
      std::vector<double> merge;
      std::vector<double> total;
      int ok = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto g = bench::make_instance(n, c, delta, s + 550);
        core::Dhc2Config cfg;
        cfg.delta = delta;
        cfg.merge_strategy = strategy;
        const auto r = core::run_dhc2(g, s * 61 + 31, cfg);
        if (!r.success) continue;
        ++ok;
        merge.push_back(static_cast<double>(r.metrics.phase_rounds("merge")));
        total.push_back(static_cast<double>(r.metrics.rounds));
      }
      if (merge.empty()) continue;
      merge_rounds[idx++] = support::quantile(merge, 0.5);
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                     strategy == core::MergeStrategy::kMinForward ? "min-forward" : "full-queue",
                     support::Table::num(support::quantile(merge, 0.5), 0),
                     support::Table::num(support::quantile(total, 0.5), 0),
                     std::to_string(ok) + "/" + std::to_string(seeds)});
    }
    if (merge_rounds[0] > 0 && merge_rounds[1] > 0) gap.push_back(merge_rounds[1] / merge_rounds[0]);
  }
  table.print(std::cout);

  std::cout << "\nfull-queue / min-forward merge-round ratio by n:";
  for (const double g : gap) std::cout << ' ' << support::Table::num(g, 1) << 'x';
  std::cout << '\n';
  bench::verdict(!gap.empty() && gap.back() >= gap.front(),
                 "the literal Alg. 3 serialization grows with n while min-forward stays "
                 "near-constant per level — the accounting gap DESIGN.md SS2.2 documents");
  return 0;
}
