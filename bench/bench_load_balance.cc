// EXP-L1: the "fully distributed" property, measured.
//
// §I-A defines fully distributed as o(n) memory per node with balanced
// computation, and §III concedes the Upcast root needs Ω(n) memory.  We run
// DHC2 and Upcast on identical graphs and compare the busiest node against
// the median node in memory, traffic, and local computation.  The claim:
// DHC2's maxima track the degree (o(n)); Upcast's root tracks n·log n and
// the ratio grows with n.
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dhc2.h"
#include "core/upcast.h"

namespace {

double median_of(std::vector<std::int64_t> v) {
  std::vector<double> d(v.begin(), v.end());
  return dhc::support::quantile(d, 0.5);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048, 4096});

  bench::banner("EXP-L1",
                "Fully distributed (o(n) memory, balanced work) vs the Upcast root's "
                "Omega(n) concentration (paper SS I-A, SS III)",
                "p = c ln n / sqrt n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "algorithm", "max node mem", "median node mem", "max/median mem",
                        "max node msgs", "max node compute"});
  std::vector<double> upcast_mem_ratio;
  std::vector<double> dhc2_mem_over_n;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    for (const char* algo : {"dhc2", "upcast"}) {
      std::vector<double> max_mem;
      std::vector<double> med_mem;
      std::vector<double> max_msgs;
      std::vector<double> max_comp;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto g = bench::make_instance(n, c, 0.5, s + 300);
        core::Result r;
        if (std::string(algo) == "dhc2") {
          core::Dhc2Config cfg;
          cfg.delta = 0.5;
          r = core::run_dhc2(g, s * 41 + 5, cfg);
        } else {
          r = core::run_upcast(g, s * 43 + 6);
        }
        if (!r.success) continue;
        max_mem.push_back(static_cast<double>(r.metrics.max_node_peak_memory()));
        med_mem.push_back(median_of(r.metrics.node_peak_memory_words));
        max_msgs.push_back(static_cast<double>(r.metrics.max_node_messages_sent()));
        max_comp.push_back(static_cast<double>(r.metrics.max_node_compute()));
      }
      if (max_mem.empty()) continue;
      const double mx = support::quantile(max_mem, 0.5);
      const double md = std::max(1.0, support::quantile(med_mem, 0.5));
      if (std::string(algo) == "upcast") upcast_mem_ratio.push_back(mx / md);
      if (std::string(algo) == "dhc2") dhc2_mem_over_n.push_back(mx / static_cast<double>(n));
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)), algo,
                     support::Table::num(mx, 0), support::Table::num(md, 0),
                     support::Table::num(mx / md, 1),
                     support::Table::num(support::quantile(max_msgs, 0.5), 0),
                     support::Table::num(support::quantile(max_comp, 0.5), 0)});
    }
  }
  table.print(std::cout);

  const bool upcast_skews = !upcast_mem_ratio.empty() &&
                            upcast_mem_ratio.back() > upcast_mem_ratio.front();
  bench::verdict(upcast_skews,
                 "Upcast's max/median memory ratio grows with n (root hotspot) while DHC2's "
                 "busiest node stays near its degree — the fully-distributed separation");
  return 0;
}
