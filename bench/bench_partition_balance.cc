// EXP-L4: concentration of the random partition sizes.
//
// Lemma 4 (and Lemma 7 for general δ): with K = n^{1−δ} colors drawn
// uniformly at random, every color class has size within [½, 3/2]·n^δ whp.
// We draw colorings across n and δ and report the min/max class size against
// that interval, plus the fraction of trials where *all* classes fall inside
// (the event A of Definition 1).
//
// Flags: --sizes=..., --deltas=..., --trials=N.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials", 50));
  const auto sizes = cli.get_int_list("sizes", {1024, 4096, 16384, 65536});
  const auto deltas = cli.get_double_list("deltas", {0.5, 0.75});

  bench::banner("EXP-L4",
                "Lemmas 4/7: all K = n^{1-delta} partition sizes lie in [1/2, 3/2] n^delta whp",
                "trials = " + std::to_string(trials));

  support::Table table(
      {"n", "delta", "K", "E[size]", "min size", "max size", "Pr[all in bounds]"});
  bool all_ok = true;
  for (const double delta : deltas) {
    for (const auto size : sizes) {
      const auto n = static_cast<graph::NodeId>(size);
      const auto k = static_cast<std::uint32_t>(std::max<std::int64_t>(
          1, std::llround(std::pow(static_cast<double>(n), 1.0 - delta))));
      const double expected = static_cast<double>(n) / k;
      std::uint64_t within = 0;
      std::uint64_t global_min = n;
      std::uint64_t global_max = 0;
      support::Rng rng(n * 31 + static_cast<std::uint64_t>(delta * 100));
      for (std::uint64_t t = 0; t < trials; ++t) {
        std::vector<std::uint64_t> counts(k, 0);
        for (graph::NodeId v = 0; v < n; ++v) ++counts[rng.below(k)];
        const auto mn = *std::min_element(counts.begin(), counts.end());
        const auto mx = *std::max_element(counts.begin(), counts.end());
        global_min = std::min(global_min, mn);
        global_max = std::max(global_max, mx);
        if (static_cast<double>(mn) >= 0.5 * expected && static_cast<double>(mx) <= 1.5 * expected) {
          ++within;
        }
      }
      const double frac = static_cast<double>(within) / static_cast<double>(trials);
      // Concentration strengthens with n^delta (the class size), so demand
      // high mass only for comfortably sized classes.
      if (expected >= 64.0 && frac < 0.9) all_ok = false;
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                     support::Table::num(delta, 2),
                     support::Table::num(static_cast<std::uint64_t>(k)),
                     support::Table::num(expected, 1), support::Table::num(global_min),
                     support::Table::num(global_max), support::Table::num(frac, 2)});
    }
  }
  table.print(std::cout);

  bench::verdict(all_ok,
                 "partition sizes concentrate in [1/2, 3/2] of the mean, tightening as n grows "
                 "— event A of Definition 1 holds whp");
  return 0;
}
