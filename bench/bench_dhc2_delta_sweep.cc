// EXP-T10: DHC2's round complexity across density exponents δ.
//
// Theorem 10: on G(n, p = c·ln n / n^δ), DHC2 succeeds whp in Õ(n^δ) rounds
// — "the denser the random graph, the smaller the running time".  We sweep
// both δ and n: per δ, the log-log slope of rounds vs n should track δ; at
// fixed n, rounds must increase with δ (denser ⇒ faster).
//
// Trials run through the runner subsystem (src/runner/); each δ is one
// scenario (its density constant is adjusted per δ, see below) and all
// seeds execute on the worker pool.
//
// Flags: --sizes=..., --deltas=..., --seeds=N, --c=X, --threads=N.
#include "bench_util.h"

#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  // c = 4 keeps every partition's degree comfortably inside the rotation
  // algorithm's working regime across the delta sweep (see EXP-P1).
  const double c = cli.get_double("c", 4.0);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048});
  const auto deltas = cli.get_double_list("deltas", {0.5, 0.75, 1.0});
  runner::RunnerOptions opt;
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 0));

  bench::banner("EXP-T10",
                "Theorem 10: DHC2 runs in O~(n^delta) rounds; denser graph => faster",
                "p = c ln n / n^delta, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"delta", "n", "K", "median rounds", "rounds/(n^d polylog)", "success"});
  // rounds at the largest n per delta, for the denser-is-faster check.
  std::vector<std::pair<double, double>> at_largest;
  bool slopes_ok = true;
  for (const double delta : deltas) {
    runner::Scenario scenario;
    scenario.name = "exp-t10-delta";
    scenario.algos = {runner::Algorithm::kDhc2};
    scenario.deltas = {delta};
    // Large partitions need a larger density constant for one-shot whp
    // success (EXP-P1: the practical threshold scales with partition
    // size); δ = 1 is a single n-sized partition.
    scenario.cs = {(delta >= 0.999) ? std::max(c, 8.0) : c};
    scenario.seeds = seeds;
    scenario.base_seed = 100;
    scenario.sizes.clear();
    for (const auto size : sizes) {
      // Skip combinations whose partitions are below the rotation
      // algorithm's working size (EXP-P1).
      if (std::pow(static_cast<double>(size), delta) >= 22.0) scenario.sizes.push_back(size);
    }
    if (scenario.sizes.empty()) continue;

    const auto trials = runner::expand(scenario);
    const auto summaries = runner::aggregate(trials, runner::run_trials(trials, opt));

    std::vector<double> ns;
    std::vector<double> rounds_series;
    for (const auto& s : summaries) {
      if (s.successes == 0) continue;
      const auto n = static_cast<double>(s.config.n);
      const double med = s.rounds.median;
      const double normalized = med / (std::pow(n, delta) * bench::polylog_factor(n));
      ns.push_back(n);
      rounds_series.push_back(med);
      if (s.config.n == static_cast<graph::NodeId>(sizes.back())) {
        at_largest.emplace_back(delta, med);
      }
      table.add_row({support::Table::num(delta, 2),
                     support::Table::num(static_cast<std::uint64_t>(s.config.n)),
                     support::Table::num(s.stat_means.at("num_colors"), 0),
                     support::Table::num(med, 0), support::Table::num(normalized, 3),
                     std::to_string(s.successes) + "/" + std::to_string(s.trials)});
    }
    if (ns.size() >= 2) {
      const double slope = support::loglog_slope(ns, rounds_series);
      std::cout << "  delta=" << support::Table::num(delta, 2)
                << ": log-log slope of rounds vs n = " << support::Table::num(slope, 2)
                << " (theory ~" << support::Table::num(delta, 2) << " + polylog drift)\n";
      if (slope > delta + 0.55) slopes_ok = false;
    }
  }
  std::cout << '\n';
  table.print(std::cout);

  // Denser ⇒ faster: at the largest n, rounds must increase with δ (a 20%
  // tolerance absorbs seed noise).
  bool ordered = true;
  for (std::size_t i = 1; i < at_largest.size(); ++i) {
    ordered = ordered && (at_largest[i].second >= at_largest[i - 1].second * 0.8);
  }
  bench::verdict(slopes_ok && ordered,
                 "per-delta scaling tracks n^delta and rounds grow with delta at fixed n "
                 "(denser => faster, as the paper claims)");
  return 0;
}
