// EXP-T10: DHC2's round complexity across density exponents δ.
//
// Theorem 10: on G(n, p = c·ln n / n^δ), DHC2 succeeds whp in Õ(n^δ) rounds
// — "the denser the random graph, the smaller the running time".  We sweep
// both δ and n: per δ, the log-log slope of rounds vs n should track δ; at
// fixed n, rounds must increase with δ (denser ⇒ faster).
//
// Flags: --sizes=..., --deltas=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dhc2.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  // c = 4 keeps every partition's degree comfortably inside the rotation
  // algorithm's working regime across the delta sweep (see EXP-P1).
  const double c = cli.get_double("c", 4.0);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048});
  const auto deltas = cli.get_double_list("deltas", {0.5, 0.75, 1.0});

  bench::banner("EXP-T10",
                "Theorem 10: DHC2 runs in O~(n^delta) rounds; denser graph => faster",
                "p = c ln n / n^delta, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"delta", "n", "K", "median rounds", "rounds/(n^d polylog)", "success"});
  // rounds at the largest n per delta, for the denser-is-faster check.
  std::vector<std::pair<double, double>> at_largest;
  bool slopes_ok = true;
  for (const double delta : deltas) {
    std::vector<double> ns;
    std::vector<double> rounds_series;
    for (const auto size : sizes) {
      const auto n = static_cast<graph::NodeId>(size);
      // Skip combinations whose partitions are below the rotation
      // algorithm's working size (EXP-P1).
      if (std::pow(static_cast<double>(n), delta) < 22.0) continue;
      // Large partitions need a larger density constant for one-shot whp
      // success (EXP-P1: the practical threshold scales with partition
      // size); δ = 1 is a single n-sized partition.
      const double c_eff = (delta >= 0.999) ? std::max(c, 8.0) : c;
      std::vector<double> rounds;
      double colors = 0;
      int successes = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto g = bench::make_instance(n, c_eff, delta, s + 100);
        core::Dhc2Config cfg;
        cfg.delta = delta;
        const auto r = core::run_dhc2(g, s * 211 + 17, cfg);
        colors = r.stat("num_colors");
        if (!r.success) continue;
        ++successes;
        rounds.push_back(static_cast<double>(r.metrics.rounds));
      }
      if (rounds.empty()) continue;
      const double med = support::quantile(rounds, 0.5);
      const double normalized =
          med / (std::pow(static_cast<double>(n), delta) *
                 bench::polylog_factor(static_cast<double>(n)));
      ns.push_back(static_cast<double>(n));
      rounds_series.push_back(med);
      if (size == sizes.back()) at_largest.emplace_back(delta, med);
      table.add_row({support::Table::num(delta, 2),
                     support::Table::num(static_cast<std::uint64_t>(n)),
                     support::Table::num(colors, 0), support::Table::num(med, 0),
                     support::Table::num(normalized, 3),
                     std::to_string(successes) + "/" + std::to_string(seeds)});
    }
    if (ns.size() >= 2) {
      const double slope = support::loglog_slope(ns, rounds_series);
      std::cout << "  delta=" << support::Table::num(delta, 2)
                << ": log-log slope of rounds vs n = " << support::Table::num(slope, 2)
                << " (theory ~" << support::Table::num(delta, 2) << " + polylog drift)\n";
      if (slope > delta + 0.55) slopes_ok = false;
    }
  }
  std::cout << '\n';
  table.print(std::cout);

  // Denser ⇒ faster: at the largest n, rounds must increase with δ (a 20%
  // tolerance absorbs seed noise).
  bool ordered = true;
  for (std::size_t i = 1; i < at_largest.size(); ++i) {
    ordered = ordered && (at_largest[i].second >= at_largest[i - 1].second * 0.8);
  }
  bench::verdict(slopes_ok && ordered,
                 "per-delta scaling tracks n^delta and rounds grow with delta at fixed n "
                 "(denser => faster, as the paper claims)");
  return 0;
}
