// EXP-T2 (+ Fig. 2): the rotation algorithm's step complexity.
//
// Theorem 2: on G(n, p) with p ≥ 86·ln n / n, the (distributed) rotation
// algorithm builds a Hamiltonian cycle within 7·n·ln n steps with
// probability 1 − O(1/n³).
//
// Two series:
//  * the step model at scale — the sequential implementation draws edges in
//    exactly the same order statistics, so steps/(n·ln n) can be measured up
//    to n = 32768 cheaply; the claim is a constant well below 7;
//  * the full CONGEST execution (run_dra) at moderate n — rounds per step
//    stay Θ(tree depth), and the extension/rotation mix (Fig. 2's two cases)
//    is reported.
//
// Flags: --sizes=..., --big-sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dra.h"
#include "core/sequential.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  const double c = cli.get_double("c", 6.0);
  const auto big_sizes = cli.get_int_list("big-sizes", {1024, 4096, 16384, 32768});
  const auto sizes = cli.get_int_list("sizes", {256, 512, 1024, 2048});

  bench::banner("EXP-T2", "Theorem 2: rotation builds a HC in <= 7 n ln n steps whp",
                "p = c ln n / n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  std::cout << "-- step model (sequential implementation, large n) --\n";
  support::Table steps_table(
      {"n", "median steps", "steps/(n ln n)", "extensions", "rotations", "success"});
  std::vector<double> ratios;
  for (const auto size : big_sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    std::vector<double> steps;
    std::vector<double> exts;
    std::vector<double> rots;
    int successes = 0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 1.0, s);
      support::Rng rng(s * 1337 + n);
      const auto r = core::rotation_hamiltonian_cycle(g, rng);
      if (!r.success) continue;
      ++successes;
      steps.push_back(static_cast<double>(r.stats.steps));
      exts.push_back(static_cast<double>(r.stats.extensions));
      rots.push_back(static_cast<double>(r.stats.rotations));
    }
    if (steps.empty()) continue;
    const double med = support::quantile(steps, 0.5);
    const double ratio = med / (static_cast<double>(n) * std::log(n));
    ratios.push_back(ratio);
    steps_table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                         support::Table::num(med, 0), support::Table::num(ratio, 3),
                         support::Table::num(support::quantile(exts, 0.5), 0),
                         support::Table::num(support::quantile(rots, 0.5), 0),
                         std::to_string(successes) + "/" + std::to_string(seeds)});
  }
  steps_table.print(std::cout);

  std::cout << "\n-- CONGEST execution (distributed DRA) --\n";
  support::Table round_table({"n", "median rounds", "rounds/(steps*depth)", "steps", "tree depth",
                              "success"});
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    std::vector<double> rounds;
    std::vector<double> norm;
    std::vector<double> steps;
    std::vector<double> depth;
    int successes = 0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 1.0, s);
      const auto r = core::run_dra(g, s * 31 + 7);
      if (!r.success) continue;
      ++successes;
      rounds.push_back(static_cast<double>(r.metrics.rounds));
      steps.push_back(r.stat("steps"));
      depth.push_back(r.stat("tree_depth"));
      norm.push_back(static_cast<double>(r.metrics.rounds) /
                     (r.stat("steps") * std::max(1.0, r.stat("tree_depth"))));
    }
    if (rounds.empty()) continue;
    round_table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                         support::Table::num(support::quantile(rounds, 0.5), 0),
                         support::Table::num(support::quantile(norm, 0.5), 2),
                         support::Table::num(support::quantile(steps, 0.5), 0),
                         support::Table::num(support::quantile(depth, 0.5), 0),
                         std::to_string(successes) + "/" + std::to_string(seeds)});
  }
  round_table.print(std::cout);

  const double worst = ratios.empty() ? 99.0 : *std::max_element(ratios.begin(), ratios.end());
  bench::verdict(worst < 7.0,
                 "max steps/(n ln n) = " + support::Table::num(worst, 3) +
                     " — Theorem 2 predicts <= 7 (proof constant); rounds track steps x depth");
  return 0;
}
