// EXP-C1: head-to-head comparison of every algorithm in the repository.
//
// The paper's positioning (§I): the fully distributed DHC1/DHC2 run in
// Õ(1/p) rounds, the Upcast algorithm matches that bound without being
// fully distributed, and the trivial collect-everything approach costs
// O(m / √(bandwidth))-ish rounds and is asymptotically worse.  We run all
// four on identical graphs (p = c·ln n / √n) and check who wins and whether
// the gap to CollectAll grows with n.
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dhc1.h"
#include "core/dhc2.h"
#include "core/upcast.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048});

  bench::banner("EXP-C1",
                "Who wins: DHC1/DHC2 and Upcast in O~(1/p) rounds vs the trivial O(m) "
                "collect-all baseline; the gap must widen with n",
                "p = c ln n / sqrt n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "algorithm", "median rounds", "median messages", "success"});
  std::vector<double> collect_ratio;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    struct Row {
      const char* name;
      std::vector<double> rounds;
      std::vector<double> messages;
      int ok = 0;
    };
    Row rows[] = {{"dhc1", {}, {}, 0},
                  {"dhc2", {}, {}, 0},
                  {"upcast", {}, {}, 0},
                  {"collect-all", {}, {}, 0}};
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 0.5, s + 800);
      core::Result results[4];
      results[0] = core::run_dhc1(g, s * 11 + 1);
      core::Dhc2Config d2;
      d2.delta = 0.5;
      results[1] = core::run_dhc2(g, s * 13 + 2, d2);
      results[2] = core::run_upcast(g, s * 17 + 3);
      core::UpcastConfig all;
      all.collect_all = true;
      results[3] = core::run_upcast(g, s * 19 + 4, all);
      for (int i = 0; i < 4; ++i) {
        if (!results[i].success) continue;
        ++rows[i].ok;
        rows[i].rounds.push_back(static_cast<double>(results[i].metrics.rounds));
        rows[i].messages.push_back(static_cast<double>(results[i].metrics.messages));
      }
    }
    double best_distributed = 1e18;
    double collect_all_rounds = 0;
    for (auto& row : rows) {
      if (row.rounds.empty()) {
        table.add_row({support::Table::num(static_cast<std::uint64_t>(n)), row.name, "-", "-",
                       "0/" + std::to_string(seeds)});
        continue;
      }
      const double med = support::quantile(row.rounds, 0.5);
      if (std::string(row.name) != "collect-all") best_distributed = std::min(best_distributed, med);
      if (std::string(row.name) == "collect-all") collect_all_rounds = med;
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)), row.name,
                     support::Table::num(med, 0),
                     support::Table::num(support::quantile(row.messages, 0.5), 0),
                     std::to_string(row.ok) + "/" + std::to_string(seeds)});
    }
    if (collect_all_rounds > 0 && best_distributed < 1e17) {
      collect_ratio.push_back(collect_all_rounds / best_distributed);
    }
  }
  table.print(std::cout);

  std::cout << "\ncollect-all / best-sublinear round ratio by n:";
  for (const double r : collect_ratio) std::cout << ' ' << support::Table::num(r, 1) << 'x';
  std::cout << '\n';

  // Prior work reference (not implemented — see DESIGN.md S15): Levy et
  // al. [18] run in O(n^{3/4+eps}) rounds and only for p = omega(log^0.5 n /
  // n^0.25); the paper's algorithms are polynomially faster.
  std::cout << "Levy et al. [18] reference curve n^0.75:";
  for (const auto size : sizes) {
    std::cout << ' ' << support::Table::num(std::pow(static_cast<double>(size), 0.75), 0);
  }
  std::cout << " rounds (asymptotic shape only)\n";
  const bool widening = collect_ratio.size() >= 2 && collect_ratio.back() > collect_ratio.front();
  bench::verdict(widening,
                 "the sublinear algorithms beat the trivial baseline and the gap widens with n "
                 "— the paper's headline separation");
  return 0;
}
