// EXP-C1: head-to-head comparison of every algorithm in the repository.
//
// The paper's positioning (§I): the fully distributed DHC1/DHC2 run in
// Õ(1/p) rounds, the Upcast algorithm matches that bound without being
// fully distributed, and the trivial collect-everything approach costs
// O(m / √(bandwidth))-ish rounds and is asymptotically worse.  Turau's
// O(log n)-time protocol (arXiv:1805.06728, DESIGN.md §2.4) is the modern
// point of comparison and is *measured* here, not plotted as an analytic
// reference shape.  We run all five on identical graphs (p = c·ln n / √n)
// and check who wins and whether the gap to CollectAll grows with n.
//
// One runner scenario covers the whole sweep (5 algorithms × sizes × seeds),
// executed on the worker pool; aggregates are independent of --threads.
// Graph seeds depend only on (n, seed index), so all five algorithms run on
// identical instances — the comparison is paired.
//
// Flags: --sizes=..., --seeds=N, --c=X, --threads=N.
#include "bench_util.h"

#include <map>

#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048});
  runner::RunnerOptions opt;
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 0));

  bench::banner("EXP-C1",
                "Who wins: DHC1/DHC2 and Upcast in O~(1/p) rounds vs the trivial O(m) "
                "collect-all baseline; the gap must widen with n",
                "p = c ln n / sqrt n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  runner::Scenario scenario;
  scenario.name = "exp-c1-comparison";
  scenario.algos = {runner::Algorithm::kDhc1, runner::Algorithm::kDhc2,
                    runner::Algorithm::kTurau, runner::Algorithm::kUpcast,
                    runner::Algorithm::kCollectAll};
  scenario.sizes = sizes;
  scenario.deltas = {0.5};
  scenario.cs = {c};
  scenario.seeds = seeds;
  scenario.base_seed = 800;

  const auto trials = runner::expand(scenario);
  const auto summaries = runner::aggregate(trials, runner::run_trials(trials, opt));

  // Index the cells by (algorithm, n) so rows print grouped by n, the
  // paper-table layout, regardless of expansion order.
  std::map<std::pair<runner::Algorithm, std::int64_t>, const runner::ConfigSummary*> cells;
  for (const auto& s : summaries) {
    cells[{s.config.algo, static_cast<std::int64_t>(s.config.n)}] = &s;
  }

  support::Table table({"n", "algorithm", "median rounds", "median messages", "success"});
  std::vector<double> collect_ratio;
  for (const auto size : sizes) {
    double best_distributed = 1e18;
    double collect_all_rounds = 0;
    for (const auto algo : scenario.algos) {
      const auto* s = cells.at({algo, size});
      const std::string name = runner::to_string(algo);
      if (s->successes == 0) {
        table.add_row({support::Table::num(static_cast<std::uint64_t>(size)), name, "-", "-",
                       "0/" + std::to_string(seeds)});
        continue;
      }
      const double med = s->rounds.median;
      if (algo == runner::Algorithm::kCollectAll) {
        collect_all_rounds = med;
      } else {
        best_distributed = std::min(best_distributed, med);
      }
      table.add_row({support::Table::num(static_cast<std::uint64_t>(size)), name,
                     support::Table::num(med, 0), support::Table::num(s->messages.median, 0),
                     std::to_string(s->successes) + "/" + std::to_string(s->trials)});
    }
    if (collect_all_rounds > 0 && best_distributed < 1e17) {
      collect_ratio.push_back(collect_all_rounds / best_distributed);
    }
  }
  table.print(std::cout);

  std::cout << "\ncollect-all / best-sublinear round ratio by n:";
  for (const double r : collect_ratio) std::cout << ' ' << support::Table::num(r, 1) << 'x';
  std::cout << '\n';

  // Turau's merge depth is the quantity its O(log n) bound is about; print
  // it next to log2 n so the measured cells replace the old analytic
  // reference curves (prior work that remains unimplemented — Levy et al.'s
  // O(n^{3/4+eps}) — is discussed in DESIGN.md S15).
  std::cout << "turau mean merge levels vs log2 n:";
  for (const auto size : sizes) {
    const auto* s = cells.at({runner::Algorithm::kTurau, size});
    const auto it = s->stat_means.find("merge_levels");
    std::cout << ' ' << (it == s->stat_means.end() ? "-" : support::Table::num(it->second, 1))
              << '/' << support::Table::num(std::log2(static_cast<double>(size)), 1);
  }
  std::cout << '\n';
  const bool widening = collect_ratio.size() >= 2 && collect_ratio.back() > collect_ratio.front();
  bench::verdict(widening,
                 "the sublinear algorithms beat the trivial baseline and the gap widens with n "
                 "— the paper's headline separation");
  return 0;
}
