// EXP-P1: success probability versus the density constant c.
//
// The paper proves whp success for c ≥ 86 (Theorem 2) — a proof constant.
// This experiment charts where the rotation algorithm *actually* starts
// working: per-attempt success of the step model vs c at several n, and the
// distributed DRA with and without restarts.  Two reproduction findings are
// quantified here: (a) the practical threshold is c ≈ 2–4, far below 86 but
// clearly above the Hamiltonicity threshold c = 1; (b) per-attempt failure
// at marginal densities is a small constant that restarts drive to zero.
//
// Flags: --n=..., --cs=..., --trials=N.
#include "bench_util.h"

#include "graph/algorithms.h"
#include "core/dra.h"
#include "core/sequential.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials", 30));
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 1024));
  const auto cs = cli.get_double_list("cs", {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0});

  bench::banner("EXP-P1",
                "Theorem 2 proves success whp at c >= 86; where does the algorithm really "
                "start working?  (HC existence threshold is c = 1, Palmer [21])",
                "n = " + std::to_string(n) + ", p = c ln n / n, trials = " +
                    std::to_string(trials));

  support::Table table({"c", "mean degree", "graph connected", "rotation (1 attempt)",
                        "DRA + restarts"});
  double first_reliable_c = -1.0;
  for (const double c : cs) {
    const double p = graph::edge_probability(n, c, 1.0);
    std::uint64_t connected = 0;
    std::uint64_t seq_ok = 0;
    std::uint64_t dra_ok = 0;
    // Distributed runs are pricier; sample fewer.
    const std::uint64_t dra_trials = std::max<std::uint64_t>(trials / 3, 5);
    for (std::uint64_t t = 1; t <= trials; ++t) {
      support::Rng grng(t * 6151 + static_cast<std::uint64_t>(c * 1000));
      const auto g = graph::gnp(n, p, grng);
      if (graph::is_connected(g)) ++connected;
      support::Rng arng(t * 131 + 7);
      core::RotationConfig one_shot;
      if (core::rotation_hamiltonian_cycle(g, arng, one_shot).success) ++seq_ok;
      if (t <= dra_trials) {
        core::DraConfig cfg;
        const auto r = core::run_dra(g, t * 17 + 1, cfg);
        if (r.success) ++dra_ok;
      }
    }
    const double seq_rate = static_cast<double>(seq_ok) / static_cast<double>(trials);
    const double dra_rate = static_cast<double>(dra_ok) / static_cast<double>(dra_trials);
    if (first_reliable_c < 0 && seq_rate >= 0.95) first_reliable_c = c;
    table.add_row({support::Table::num(c, 1),
                   support::Table::num(p * (n - 1), 1),
                   support::Table::num(static_cast<double>(connected) / static_cast<double>(trials), 2),
                   support::Table::num(seq_rate, 2), support::Table::num(dra_rate, 2)});
  }
  table.print(std::cout);

  bench::verdict(first_reliable_c > 1.0 && first_reliable_c <= 8.0,
                 "sharp rise above the existence threshold; reliable from c ~ " +
                     support::Table::num(first_reliable_c, 1) +
                     " — far below the proof constant 86, and restarts close the gap at "
                     "marginal c");
  return 0;
}
