// EXP-P1: success probability versus the density constant c.
//
// The paper proves whp success for c ≥ 86 (Theorem 2) — a proof constant.
// This experiment charts where the rotation algorithm *actually* starts
// working: per-attempt success of the step model vs c at several n, and the
// distributed DRA with and without restarts.  Two reproduction findings are
// quantified here: (a) the practical threshold is c ≈ 2–4, far below 86 but
// clearly above the Hamiltonicity threshold c = 1; (b) per-attempt failure
// at marginal densities is a small constant that restarts drive to zero.
//
// Trials run through the runner subsystem (src/runner/) on a worker pool;
// aggregates are independent of --threads.
//
// Flags: --n=..., --cs=..., --trials=N, --threads=N (0 = all cores).
#include "bench_util.h"

#include "runner/aggregator.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto trials = static_cast<std::uint64_t>(cli.get_int("trials", 30));
  const auto n = cli.get_int("n", 1024);
  const auto cs = cli.get_double_list("cs", {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0});
  runner::RunnerOptions opt;
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 0));

  bench::banner("EXP-P1",
                "Theorem 2 proves success whp at c >= 86; where does the algorithm really "
                "start working?  (HC existence threshold is c = 1, Palmer [21])",
                "n = " + std::to_string(n) + ", p = c ln n / n, trials = " +
                    std::to_string(trials));

  // One-shot rotation attempts (the paper's step model) across the full c
  // sweep, and the distributed DRA — whose restarts are the point — on a
  // smaller sample (distributed runs are pricier).  Both scenarios share
  // base_seed, and graph seeds depend only on the instance parameters, so
  // DRA runs on a prefix of the exact graphs the rotation attempts saw —
  // the per-c columns are a paired comparison.
  runner::Scenario seq;
  seq.name = "exp-p1-rotation";
  seq.algos = {runner::Algorithm::kSequential};
  seq.sizes = {n};
  seq.deltas = {1.0};
  seq.cs = cs;
  seq.seeds = trials;
  seq.base_seed = 6151;

  runner::Scenario dra = seq;
  dra.name = "exp-p1-dra";
  dra.algos = {runner::Algorithm::kDra};
  dra.seeds = std::max<std::uint64_t>(trials / 3, 5);

  const auto seq_trials = runner::expand(seq);
  const auto dra_trials = runner::expand(dra);
  const auto seq_summaries = runner::aggregate(seq_trials, runner::run_trials(seq_trials, opt));
  const auto dra_summaries = runner::aggregate(dra_trials, runner::run_trials(dra_trials, opt));

  support::Table table({"c", "mean degree", "graph connected", "rotation (1 attempt)",
                        "DRA + restarts"});
  double first_reliable_c = -1.0;
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const auto& sq = seq_summaries[i];
    const auto& dr = dra_summaries[i];
    if (first_reliable_c < 0 && sq.success_rate >= 0.95) first_reliable_c = cs[i];
    table.add_row({support::Table::num(cs[i], 1),
                   support::Table::num(sq.stat_means.at("mean_degree"), 1),
                   support::Table::num(sq.stat_means.at("graph_connected"), 2),
                   support::Table::num(sq.success_rate, 2),
                   support::Table::num(dr.success_rate, 2)});
  }
  table.print(std::cout);

  bench::verdict(first_reliable_c > 1.0 && first_reliable_c <= 8.0,
                 "sharp rise above the existence threshold; reliable from c ~ " +
                     support::Table::num(first_reliable_c, 1) +
                     " — far below the proof constant 86, and restarts close the gap at "
                     "marginal c");
  return 0;
}
