// EXP-D1: the diameter of the partition-scale random graphs.
//
// The round accounting of Theorems 1 and 10 multiplies rotation steps by the
// broadcast diameter and cites Chung–Lu [5]: G(n', c·ln n'/n') has diameter
// Θ(ln n' / ln ln n').  We measure exact diameters across n' and report the
// ratio to ln n'/ln ln n' — the claim is a bounded, slowly varying constant.
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "graph/algorithms.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  const double c = cli.get_double("c", 3.0);
  const auto sizes = cli.get_int_list("sizes", {64, 256, 1024, 4096});

  bench::banner("EXP-D1",
                "Chung-Lu [5] (used by Thm 1/10 round accounting): "
                "diam G(n, c ln n / n) = Theta(ln n / ln ln n)",
                "c = " + support::Table::num(c, 1) + ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "median diameter", "ln n/ln ln n", "ratio", "connected"});
  std::vector<double> ratios;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    std::vector<double> diams;
    int connected = 0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 1.0, s + 900);
      if (!graph::is_connected(g)) continue;
      ++connected;
      diams.push_back(static_cast<double>(graph::exact_diameter(g)));
    }
    if (diams.empty()) continue;
    const double med = support::quantile(diams, 0.5);
    const double theory = std::log(static_cast<double>(n)) / std::log(std::log(static_cast<double>(n)));
    ratios.push_back(med / theory);
    table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                   support::Table::num(med, 1), support::Table::num(theory, 2),
                   support::Table::num(med / theory, 2),
                   std::to_string(connected) + "/" + std::to_string(seeds)});
  }
  table.print(std::cout);

  const auto [lo, hi] = std::minmax_element(ratios.begin(), ratios.end());
  bench::verdict(!ratios.empty() && *hi / std::max(0.1, *lo) < 4.0,
                 "diameter / (ln n / ln ln n) stays within a narrow constant band "
                 "— broadcasts inside partitions cost Theta(ln n / ln ln n) rounds");
  return 0;
}
