// EXP-D1: the diameter of the partition-scale random graphs.
//
// The round accounting of Theorems 1 and 10 multiplies rotation steps by the
// broadcast diameter and cites Chung–Lu [5]: G(n', c·ln n'/n') has diameter
// Θ(ln n' / ln ln n').  We measure exact diameters across n' and report the
// ratio to ln n'/ln ln n' — the claim is a bounded, slowly varying constant.
//
// The instances come from the runner's scenario pipeline
// (runner::make_trial_instance over an expanded Scenario), so this
// experiment measures exactly the graphs every runner sweep solves — and for
// sizes up to --dra_cap it also *runs* DRA on those same instances through
// the trial runner, reporting the mean rounds of its "dra" phase (the
// runner's new phase_dra_rounds stat) next to the diameter it should track.
//
// Flags: --sizes=..., --seeds=N, --c=X, --dra_cap=N (0 disables the DRA
// column; default 1024), --threads=N.
#include "bench_util.h"
#include "graph/algorithms.h"
#include "runner/aggregator.h"
#include "runner/trial_runner.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  const double c = cli.get_double("c", 3.0);
  const auto sizes = cli.get_int_list("sizes", {64, 256, 1024, 4096});
  const auto dra_cap = static_cast<graph::NodeId>(cli.get_int("dra_cap", 1024));

  bench::banner("EXP-D1",
                "Chung-Lu [5] (used by Thm 1/10 round accounting): "
                "diam G(n, c ln n / n) = Theta(ln n / ln ln n)",
                "c = " + support::Table::num(c, 1) + ", seeds = " + std::to_string(seeds));

  // One scenario declares every instance of the experiment; the diameter
  // pass and the DRA pass read the same expanded trial list, so they see
  // bitwise-identical graphs (the runner's pairing guarantee).
  runner::Scenario scenario;
  scenario.name = "exp-d1-diameter";
  scenario.algos = {runner::Algorithm::kDra};
  scenario.family = runner::GraphFamily::kGnp;
  scenario.sizes = sizes;
  scenario.deltas = {1.0};
  scenario.cs = {c};
  scenario.seeds = seeds;
  scenario.base_seed = 900;
  const auto trials = runner::expand(scenario);

  // DRA trials only below the cap: rotation walks on near-threshold-sparse
  // graphs get slow well before exact_diameter does.
  std::vector<runner::TrialConfig> dra_trials;
  for (const auto& t : trials) {
    if (dra_cap != 0 && t.n <= dra_cap) dra_trials.push_back(t);
  }
  runner::RunnerOptions opt;
  opt.threads = static_cast<unsigned>(cli.get_int("threads", 1));
  const auto dra_summaries =
      runner::aggregate(dra_trials, runner::run_trials(dra_trials, opt));
  const auto dra_rounds_for = [&](graph::NodeId n) -> double {
    for (const auto& s : dra_summaries) {
      if (s.config.n != n) continue;
      const auto it = s.stat_means.find("phase_dra_rounds");
      return it == s.stat_means.end() ? -1.0 : it->second;
    }
    return -1.0;
  };

  support::Table table(
      {"n", "median diameter", "ln n/ln ln n", "ratio", "connected", "dra rounds"});
  std::vector<double> ratios;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    std::vector<double> diams;
    std::uint64_t cell_trials = 0;
    int connected = 0;
    for (const auto& t : trials) {
      if (t.n != n) continue;
      ++cell_trials;
      const auto g = runner::make_trial_instance(t);
      if (!graph::is_connected(g)) continue;
      ++connected;
      diams.push_back(static_cast<double>(graph::exact_diameter(g)));
    }
    if (diams.empty()) continue;
    const double med = support::quantile(diams, 0.5);
    const double theory = std::log(static_cast<double>(n)) / std::log(std::log(static_cast<double>(n)));
    ratios.push_back(med / theory);
    const double dra_rounds = dra_rounds_for(n);
    table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                   support::Table::num(med, 1), support::Table::num(theory, 2),
                   support::Table::num(med / theory, 2),
                   std::to_string(connected) + "/" + std::to_string(cell_trials),
                   dra_rounds < 0.0 ? "-" : support::Table::num(dra_rounds, 0)});
  }
  table.print(std::cout);

  const auto [lo, hi] = std::minmax_element(ratios.begin(), ratios.end());
  bench::verdict(!ratios.empty() && *hi / std::max(0.1, *lo) < 4.0,
                 "diameter / (ln n / ln ln n) stays within a narrow constant band "
                 "— broadcasts inside partitions cost Theta(ln n / ln ln n) rounds");
  return 0;
}
