// EXP-T17 / EXP-T19 (+ Cor. 20): Upcast round complexity.
//
// Theorem 17: at p = Θ(log n / √n), Upcast solves HC in O(√n log²n) rounds.
// Theorem 19: at p = Θ(log n / n^{1−ε}), it takes O(log n / p) = O(n^{1−ε})
// rounds.  Corollary 20 is the ε = 1/3 special case.  We sweep ε and n and
// report rounds·p/log n — Theorem 19 says this is O(1) (bounded) — plus the
// phase split (upcast vs downcast should be comparable).
//
// Flags: --sizes=..., --epsilons=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/upcast.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.0);
  const auto sizes = cli.get_int_list("sizes", {1024, 2048, 4096});
  const auto epsilons = cli.get_double_list("epsilons", {1.0 / 3.0, 0.5, 2.0 / 3.0});

  bench::banner("EXP-T17/T19",
                "Theorems 17/19: Upcast solves HC in O(log n / p) rounds "
                "(O(sqrt n log^2 n) at p = Theta(log n / sqrt n))",
                "p = c ln n / n^{1-eps}, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"eps", "n", "p", "median rounds", "rounds*p/ln n", "upcast", "downcast",
                        "success"});
  double worst_norm = 0.0;
  for (const double eps : epsilons) {
    const double delta = 1.0 - eps;
    for (const auto size : sizes) {
      const auto n = static_cast<graph::NodeId>(size);
      const double p = graph::edge_probability(n, c, delta);
      if (p >= 0.999) continue;  // degenerate (complete graph)
      std::vector<double> rounds;
      std::vector<double> up;
      std::vector<double> down;
      int successes = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto g = bench::make_instance(n, c, delta, s + 500);
        const auto r = core::run_upcast(g, s * 307 + 29);
        if (!r.success) continue;
        ++successes;
        rounds.push_back(static_cast<double>(r.metrics.rounds));
        up.push_back(static_cast<double>(r.metrics.phase_rounds("upcast")));
        down.push_back(static_cast<double>(r.metrics.phase_rounds("downcast")));
      }
      if (rounds.empty()) continue;
      const double med = support::quantile(rounds, 0.5);
      const double normalized = med * p / std::log(static_cast<double>(n));
      worst_norm = std::max(worst_norm, normalized);
      table.add_row({support::Table::num(eps, 2),
                     support::Table::num(static_cast<std::uint64_t>(n)),
                     support::Table::num(p, 3), support::Table::num(med, 0),
                     support::Table::num(normalized, 2),
                     support::Table::num(support::quantile(up, 0.5), 0),
                     support::Table::num(support::quantile(down, 0.5), 0),
                     std::to_string(successes) + "/" + std::to_string(seeds)});
    }
  }
  table.print(std::cout);

  bench::verdict(worst_norm < 40.0,
                 "rounds * p / ln n bounded by " + support::Table::num(worst_norm, 1) +
                     " across the sweep — Theorem 19's O(log n / p) shape holds");
  return 0;
}
