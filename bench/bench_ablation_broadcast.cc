// EXP-A1 (ablation): rotation broadcasts — BFS-tree vs flooding.
//
// The paper says "vj broadcasts the values h and j" without fixing a
// mechanism.  Flooding every partition edge is the literal reading
// (O(m_partition) messages per rotation); relaying over the partition's BFS
// tree costs O(n_partition) messages at the same Θ(depth) round cost.  Both
// engines must produce valid cycles; the ablation quantifies the message
// gap (the round counts may differ slightly since edge draws differ).
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dra.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 6.0);
  const auto sizes = cli.get_int_list("sizes", {256, 512, 1024});

  bench::banner("EXP-A1",
                "ablation: rotation broadcast engine — BFS tree (O(n) msgs/rotation) vs "
                "flooding (O(m) msgs/rotation), same Theta(depth) rounds",
                "standalone DRA, p = c ln n / n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "mode", "median rounds", "median messages", "msgs/rotation",
                        "success"});
  std::vector<double> message_gap;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    double per_mode_msgs[2] = {0, 0};
    int mode_idx = 0;
    for (const auto mode : {core::BroadcastMode::kTree, core::BroadcastMode::kFlood}) {
      std::vector<double> rounds;
      std::vector<double> msgs;
      std::vector<double> per_rot;
      int ok = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto g = bench::make_instance(n, c, 1.0, s + 350);
        core::DraConfig cfg;
        cfg.broadcast = mode;
        const auto r = core::run_dra(g, s * 23 + 11, cfg);
        if (!r.success) continue;
        ++ok;
        rounds.push_back(static_cast<double>(r.metrics.rounds));
        msgs.push_back(static_cast<double>(r.metrics.messages));
        per_rot.push_back(static_cast<double>(r.metrics.messages) /
                          std::max(1.0, r.stat("rotations")));
      }
      if (rounds.empty()) continue;
      per_mode_msgs[mode_idx++] = support::quantile(msgs, 0.5);
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                     mode == core::BroadcastMode::kTree ? "tree" : "flood",
                     support::Table::num(support::quantile(rounds, 0.5), 0),
                     support::Table::num(support::quantile(msgs, 0.5), 0),
                     support::Table::num(support::quantile(per_rot, 0.5), 0),
                     std::to_string(ok) + "/" + std::to_string(seeds)});
    }
    if (per_mode_msgs[0] > 0) message_gap.push_back(per_mode_msgs[1] / per_mode_msgs[0]);
  }
  table.print(std::cout);

  std::cout << "\nflood/tree message ratio by n:";
  for (const double g : message_gap) std::cout << ' ' << support::Table::num(g, 1) << 'x';
  std::cout << '\n';
  bench::verdict(!message_gap.empty() && message_gap.back() > 1.5,
                 "tree broadcasts cut rotation messages by the graph's average degree while "
                 "keeping the same round asymptotics");
  return 0;
}
