// EXP-V1 (extension, paper §IV): other random graph models.
//
// The conclusion suggests the ideas extend to G(n, M) and random regular
// graphs.  We run the standalone rotation algorithm (Theorem 2's regime) on
// G(n, p), the equal-density G(n, M = E[m]), and random d-regular graphs
// with d ≈ np, and compare success and cost — the algorithm never looks at
// the model, only at its unused edge lists, so the behaviour should carry
// over whenever degrees are in the working regime.
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dra.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  const double c = cli.get_double("c", 6.0);
  const auto sizes = cli.get_int_list("sizes", {256, 512, 1024});

  bench::banner("EXP-V1",
                "SS IV extension: DRA on G(n,p) vs G(n,M) vs random d-regular at matched "
                "density — same success and cost profile",
                "p = c ln n / n, d = round(np), seeds = " + std::to_string(seeds));

  support::Table table({"n", "model", "median rounds", "median steps", "success"});
  bool all_models_work = true;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    const double p = graph::edge_probability(n, c, 1.0);
    for (const char* model : {"gnp", "gnm", "regular"}) {
      std::vector<double> rounds;
      std::vector<double> steps;
      int ok = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        support::Rng grng(s * 701 + n);
        graph::Graph g(0, {});
        if (std::string(model) == "gnp") {
          g = graph::gnp(n, p, grng);
        } else if (std::string(model) == "gnm") {
          const auto m = static_cast<std::uint64_t>(p * n * (n - 1) / 2.0);
          g = graph::gnm(n, m, grng);
        } else {
          auto d = static_cast<std::uint32_t>(std::llround(p * n));
          if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;
          g = graph::random_regular(n, d, grng);
        }
        const auto r = core::run_dra(g, s * 67 + 41);
        if (!r.success) continue;
        ++ok;
        rounds.push_back(static_cast<double>(r.metrics.rounds));
        steps.push_back(r.stat("steps"));
      }
      if (ok == 0) {
        all_models_work = false;
        table.add_row({support::Table::num(static_cast<std::uint64_t>(n)), model, "-", "-",
                       "0/" + std::to_string(seeds)});
        continue;
      }
      table.add_row({support::Table::num(static_cast<std::uint64_t>(n)), model,
                     support::Table::num(support::quantile(rounds, 0.5), 0),
                     support::Table::num(support::quantile(steps, 0.5), 0),
                     std::to_string(ok) + "/" + std::to_string(seeds)});
    }
  }
  table.print(std::cout);

  bench::verdict(all_models_work,
                 "the rotation algorithm carries over to G(n,M) and random regular graphs at "
                 "matched density, as the paper's SS IV anticipates");
  return 0;
}
